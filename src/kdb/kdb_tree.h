// K-D-B-tree (Robinson, SIGMOD 1981) — the disjoint-partition baseline of
// Section 2.1.
//
// Region pages hold disjoint rectangles that exactly partition the parent
// region; point pages hold the data points. Splitting a region page can
// force splits of descendants that cross the split plane, which is why the
// K-D-B-tree cannot guarantee minimum storage utilization — the weakness
// the paper measures. Following Section 3.1, split planes are chosen
// R+-tree style (minimizing forced splits) rather than by cyclic dimension
// choice.

#ifndef SRTREE_KDB_KDB_TREE_H_
#define SRTREE_KDB_KDB_TREE_H_

#include <vector>

#include "src/geometry/kernel.h"
#include "src/geometry/rect.h"
#include "src/index/knn.h"
#include "src/index/point_index.h"
#include "src/storage/buffer_pool.h"
#include "src/storage/page_file.h"

namespace srtree {

class KdbTree : public PointIndex {
 public:
  struct Options {
    int dim = 2;
    size_t page_size = kDefaultPageSize;
    size_t leaf_data_size = 512;
    // The indexed domain; the root region page partitions exactly this
    // rectangle, so inserts outside it are rejected.
    double domain_lo = -1e9;
    double domain_hi = 1e9;
  };

  explicit KdbTree(const Options& options);

  // Type tag embedded in the v2 index-image container.
  static constexpr char kImageTag[] = "kdbtree";

  // Checksummed atomic image persistence (see PointIndex::Save).
  Status Save(const std::string& path) const override;
  static StatusOr<std::unique_ptr<KdbTree>> Open(const std::string& path);

  int dim() const override { return options_.dim; }
  size_t size() const override { return size_; }
  std::string name() const override { return "K-D-B-tree"; }

  Status Insert(PointView point, uint32_t oid) override;

  // Removes the point. Underfull pages are left in place (the joining
  // reorganization of Robinson's paper is not needed by any experiment);
  // the partition invariant is preserved.
  Status Delete(PointView point, uint32_t oid) override;

  TreeStats GetTreeStats() const override;
  Status CheckInvariants() const override;
  void VisitNodes(const NodeVisitor& visitor) const override;
  AuditSpec GetAuditSpec() const override;

  // Reports the MBR of the points in each point page (the K-D-B-tree's own
  // regions tile the whole domain, so their raw volumes are meaningless for
  // the Figure 5-style comparisons).
  RegionSummary LeafRegionSummary() const override;

  MaintenanceStats GetMaintenanceStats() const override {
    return maintenance_;
  }

  // Forwarders to the page file's counters. io_stats() is the deprecated
  // unlocked reference (single-threaded benches only); the reset is locked
  // but only meaningful on a quiesced index — see PointIndex::ResetIoStats
  // for the exclusion contract the concurrent fuzzer asserts.
  const IoStats& io_stats() const override { return file_.stats(); }
  void ResetIoStats() override { file_.ResetStats(); }
  IoStats GetIoStats() const override { return file_.GetIoStats(); }

  void SimulateBufferPool(size_t capacity) override {
    file_.SimulateCache(capacity);
  }
  void UseBufferPool(size_t capacity) override {
    pool_ = capacity > 0 ? std::make_unique<BufferPool>(&file_, capacity)
                         : nullptr;
  }

  size_t leaf_capacity() const override { return leaf_cap_; }
  size_t node_capacity() const override { return node_cap_; }
  int height() const { return root_level_ + 1; }

 protected:
  std::vector<Neighbor> KnnDfsImpl(PointView query, int k,
                                   IoStatsDelta* io) const override;
  std::vector<Neighbor> KnnBestFirstImpl(PointView query, int k,
                                         IoStatsDelta* io) const override;
  std::vector<Neighbor> RangeImpl(PointView query, double radius,
                                  IoStatsDelta* io) const override;

 private:
  struct LeafEntry {
    Point point;
    uint32_t oid;
  };

  struct NodeEntry {
    Rect region;
    PageId child;
  };

  struct Node {
    PageId id = kInvalidPageId;
    int level = 0;
    std::vector<NodeEntry> children;
    std::vector<LeafEntry> points;

    bool is_leaf() const { return level == 0; }
    size_t count() const { return is_leaf() ? points.size() : children.size(); }
  };

  // --- page I/O ---
  Node ReadNode(PageId id, int level,
                IoStatsDelta* io = nullptr) const;
  Node PeekNode(PageId id) const;
  void WriteNode(const Node& node);
  void SerializeNode(const Node& node, char* buf) const;
  Node DeserializeNode(const char* buf, PageId id) const;

  size_t Capacity(const Node& node) const {
    return node.is_leaf() ? leaf_cap_ : node_cap_;
  }

  Rect Domain() const;

  // --- split machinery ---
  // Splits an over-full node (recursively if a half still overflows) and
  // appends the resulting (region, child) entries to `out`. `region` is the
  // region the node was responsible for; the produced entries partition it.
  void SplitToEntries(Node&& node, const Rect& region,
                      std::vector<NodeEntry>& out);
  // Chooses the split plane for an over-full node: point pages split at the
  // most balanced distinct value on the max-spread dimension; region pages
  // pick the child boundary minimizing forced splits.
  void ChoosePlane(const Node& node, const Rect& region, int& dim,
                   double& value) const;
  // Splits the subtree rooted at `entry` with the plane <dim, value>, which
  // strictly crosses its region; returns the two half entries. This is the
  // "forced split" that propagates downward.
  std::pair<NodeEntry, NodeEntry> ForceSplit(const NodeEntry& entry,
                                             int node_level, int dim,
                                             double value);
  static Rect ClipLo(const Rect& region, int dim, double value);
  static Rect ClipHi(const Rect& region, int dim, double value);

  // --- search ---
  void SearchKnn(PageId id, int level, PointView query,
                 KnnCandidates& cand, KernelScratch& scratch,
                 IoStatsDelta* io) const;
  void SearchRange(PageId id, int level, PointView query,
                   double radius, std::vector<Neighbor>& out,
                   KernelScratch& scratch, IoStatsDelta* io) const;
  bool DeleteFrom(PageId id, int level, PointView point, uint32_t oid);

  // --- validation / stats ---
  void VisitSubtree(const Node& node, std::vector<int>& path,
                    const NodeVisitor& visitor) const;
  void CollectStats(const Node& node, TreeStats& stats) const;
  void CollectRegions(const Node& node, RegionStatsCollector& collector) const;

  Options options_;
  size_t leaf_cap_;
  size_t node_cap_;

  mutable PageFile file_;
  // Optional warm cache on the query path (UseBufferPool); WriteNode
  // invalidates its frames so single-writer mutation stays coherent.
  std::unique_ptr<BufferPool> pool_;
  PageId root_id_;
  int root_level_ = 0;
  size_t size_ = 0;
  MaintenanceStats maintenance_;
};

}  // namespace srtree

#endif  // SRTREE_KDB_KDB_TREE_H_
