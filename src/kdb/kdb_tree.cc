#include "src/kdb/kdb_tree.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <queue>

#include "src/common/check.h"
#include "src/debug/structural_auditor.h"
#include "src/geometry/kernel.h"
#include "src/storage/image_io.h"

namespace srtree {
namespace {

constexpr size_t kHeaderBytes = 8;

bool SamePoint(PointView a, PointView b) {
  return std::equal(a.begin(), a.end(), b.begin(), b.end());
}

}  // namespace

KdbTree::KdbTree(const Options& options) : options_(options), file_(options.page_size) {
  CHECK_GT(options_.dim, 0);
  CHECK_LT(options_.domain_lo, options_.domain_hi);

  const size_t dim = static_cast<size_t>(options_.dim);
  const size_t leaf_entry =
      dim * sizeof(double) + sizeof(uint32_t) + options_.leaf_data_size;
  const size_t node_entry = 2 * dim * sizeof(double) + sizeof(uint32_t);
  leaf_cap_ = (options_.page_size - kHeaderBytes) / leaf_entry;
  node_cap_ = (options_.page_size - kHeaderBytes) / node_entry;
  CHECK_GE(leaf_cap_, 2u);
  CHECK_GE(node_cap_, 2u);

  Node root;
  root.id = file_.Allocate();
  root.level = 0;
  WriteNode(root);
  root_id_ = root.id;
}

Rect KdbTree::Domain() const {
  return Rect(Point(options_.dim, options_.domain_lo),
              Point(options_.dim, options_.domain_hi));
}

// --------------------------------------------------------------------------
// Persistence
// --------------------------------------------------------------------------

namespace {

// v2 header record embedded in the SRIX container (src/storage/image_io.h);
// the container carries the magic, tag, and a CRC32C over these bytes.
struct KdbImageHeader {
  int32_t dim;
  uint32_t pad0;
  uint64_t page_size;
  uint64_t leaf_data_size;
  double domain_lo;
  double domain_hi;
  uint32_t root_id;
  int32_t root_level;
  uint64_t size;
};

// True iff `o` would pass every constructor CHECK, so Open() can reject a
// forged header with Corruption instead of crashing the process. The
// negated comparison also rejects NaN domain bounds.
bool PlausibleOptions(const KdbTree::Options& o) {
  if (o.dim <= 0 || o.dim > (1 << 16)) return false;
  if (!(o.domain_lo < o.domain_hi)) return false;
  if (o.page_size <= kHeaderBytes || o.page_size > (1u << 28)) return false;
  if (o.leaf_data_size > o.page_size) return false;
  const size_t dim = static_cast<size_t>(o.dim);
  const size_t leaf_entry =
      dim * sizeof(double) + sizeof(uint32_t) + o.leaf_data_size;
  const size_t node_entry = 2 * dim * sizeof(double) + sizeof(uint32_t);
  return (o.page_size - kHeaderBytes) / leaf_entry >= 2 &&
         (o.page_size - kHeaderBytes) / node_entry >= 2;
}

}  // namespace

Status KdbTree::Save(const std::string& path) const {
  KdbImageHeader header = {};
  header.dim = options_.dim;
  header.page_size = options_.page_size;
  header.leaf_data_size = options_.leaf_data_size;
  header.domain_lo = options_.domain_lo;
  header.domain_hi = options_.domain_hi;
  header.root_id = root_id_;
  header.root_level = root_level_;
  header.size = size_;
  return AtomicWriteFile(path, [&](std::ostream& out) {
    RETURN_IF_ERROR(
        WriteIndexImageTo(out, kImageTag, &header, sizeof(header)));
    return file_.SaveTo(out);
  });
}

StatusOr<std::unique_ptr<KdbTree>> KdbTree::Open(const std::string& path) {
  KdbImageHeader header = {};
  IndexImageFile image;
  RETURN_IF_ERROR(image.Open(path, kImageTag, &header, sizeof(header)));

  Options options;
  options.dim = header.dim;
  options.page_size = header.page_size;
  options.leaf_data_size = header.leaf_data_size;
  options.domain_lo = header.domain_lo;
  options.domain_hi = header.domain_hi;
  if (!PlausibleOptions(options) || header.root_level < 0 ||
      header.root_level > 64) {
    return Status::Corruption("implausible K-D-B-tree header");
  }
  auto tree = std::make_unique<KdbTree>(options);
  RETURN_IF_ERROR(tree->file_.LoadFrom(image.stream()));
  if (!tree->file_.is_live(header.root_id)) {
    return Status::Corruption("K-D-B-tree root page is not live in the image");
  }
  tree->root_id_ = header.root_id;
  tree->root_level_ = header.root_level;
  tree->size_ = header.size;
  tree->maintenance_ = MaintenanceStats{};
  RETURN_IF_ERROR(tree->CheckInvariants());
  return tree;
}

// --------------------------------------------------------------------------
// Page I/O
// --------------------------------------------------------------------------

void KdbTree::SerializeNode(const Node& node, char* buf) const {
  CHECK_LE(node.count(), Capacity(node));
  PageWriter w(buf, options_.page_size);
  w.PutU8(static_cast<uint8_t>(node.level));
  w.PutU8(0);
  w.PutU16(static_cast<uint16_t>(node.count()));
  w.PutU32(0);
  if (node.is_leaf()) {
    for (const LeafEntry& e : node.points) {
      w.PutDoubles(e.point);
      w.PutU32(e.oid);
      w.Skip(options_.leaf_data_size);
    }
  } else {
    for (const NodeEntry& e : node.children) {
      w.PutDoubles(e.region.lo());
      w.PutDoubles(e.region.hi());
      w.PutU32(e.child);
    }
  }
}

KdbTree::Node KdbTree::DeserializeNode(const char* buf, PageId id) const {
  PageReader r(buf, options_.page_size);
  Node node;
  node.id = id;
  node.level = r.GetU8();
  r.GetU8();
  const size_t count = r.GetU16();
  r.GetU32();
  const size_t dim = static_cast<size_t>(options_.dim);
  if (node.level == 0) {
    node.points.resize(count);
    for (LeafEntry& e : node.points) {
      e.point.resize(dim);
      r.GetDoubles(e.point);
      e.oid = r.GetU32();
      r.Skip(options_.leaf_data_size);
    }
  } else {
    node.children.resize(count);
    for (NodeEntry& e : node.children) {
      Point lo(dim), hi(dim);
      r.GetDoubles(lo);
      r.GetDoubles(hi);
      e.region = Rect(std::move(lo), std::move(hi));
      e.child = r.GetU32();
    }
  }
  return node;
}

KdbTree::Node KdbTree::ReadNode(PageId id, int level, IoStatsDelta* io) const {
  std::vector<char> buf(options_.page_size);
  if (pool_ != nullptr) {
    pool_->Read(id, buf.data(), level, io);
  } else {
    file_.Read(id, buf.data(), level, io);
  }
  Node node = DeserializeNode(buf.data(), id);
  DCHECK_EQ(node.level, level);
  return node;
}

KdbTree::Node KdbTree::PeekNode(PageId id) const {
  return DeserializeNode(file_.PeekPage(id), id);
}

void KdbTree::WriteNode(const Node& node) {
  std::vector<char> buf(options_.page_size);
  SerializeNode(node, buf.data());
  if (pool_ != nullptr) pool_->Discard(node.id);  // invalidate stale frame
  file_.Write(node.id, buf.data());  // srlint: allow(R6) frozen-tree write path (no snapshot readers)
}

// --------------------------------------------------------------------------
// Insertion & splitting
// --------------------------------------------------------------------------

Status KdbTree::Insert(PointView point, uint32_t oid) {
  if (static_cast<int>(point.size()) != options_.dim) {
    return Status::InvalidArgument("point dimensionality mismatch");
  }
  if (!Domain().Contains(point)) {
    return Status::InvalidArgument("point outside the indexed domain");
  }

  // Descend to the point page responsible for `point`. Regions on one level
  // partition the domain, so exactly one child's interior (or boundary)
  // contains the point; the first containing child wins on shared faces.
  std::vector<Node> path;
  std::vector<int> idx;
  Node cur = ReadNode(root_id_, root_level_);
  while (!cur.is_leaf()) {
    int chosen = -1;
    for (size_t i = 0; i < cur.children.size(); ++i) {
      if (cur.children[i].region.Contains(point)) {
        chosen = static_cast<int>(i);
        break;
      }
    }
    CHECK_GE(chosen, 0);  // the partition invariant guarantees a match
    const PageId child = cur.children[chosen].child;
    const int child_level = cur.level - 1;
    path.push_back(std::move(cur));
    idx.push_back(chosen);
    cur = ReadNode(child, child_level);
  }
  cur.points.push_back(LeafEntry{Point(point.begin(), point.end()), oid});
  ++size_;

  if (cur.points.size() <= leaf_cap_) {
    WriteNode(cur);
    return Status::OK();
  }

  // Split the overflowing page; replace the parent's entry with the new
  // entries and propagate overflow upward. Regions never change shape above
  // the split, so no ancestor updates are needed beyond the replacement.
  Rect region = path.empty() ? Domain() : path.back().children[idx.back()].region;
  std::vector<NodeEntry> new_entries;
  SplitToEntries(std::move(cur), region, new_entries);

  for (int i = static_cast<int>(path.size()) - 1; i >= 0; --i) {
    Node& parent = path[i];
    parent.children.erase(parent.children.begin() + idx[i]);
    parent.children.insert(parent.children.end(), new_entries.begin(),
                           new_entries.end());
    if (parent.children.size() <= node_cap_) {
      WriteNode(parent);
      return Status::OK();
    }
    region = (i > 0) ? path[i - 1].children[idx[i - 1]].region : Domain();
    new_entries.clear();
    SplitToEntries(std::move(parent), region, new_entries);
  }

  // The root itself split: grow the tree (repeatedly, in the degenerate
  // case where even the new root overflows).
  int level = root_level_;
  while (true) {
    Node root;
    root.id = file_.Allocate();
    root.level = ++level;
    root.children = std::move(new_entries);
    if (root.children.size() <= node_cap_) {
      WriteNode(root);
      root_id_ = root.id;
      root_level_ = root.level;
      return Status::OK();
    }
    new_entries.clear();
    SplitToEntries(std::move(root), Domain(), new_entries);
  }
}

void KdbTree::SplitToEntries(Node&& node, const Rect& region,
                             std::vector<NodeEntry>& out) {
  if (node.count() <= Capacity(node)) {
    WriteNode(node);
    out.push_back(NodeEntry{region, node.id});
    return;
  }

  ++maintenance_.splits;
  int dim = 0;
  double value = 0.0;
  ChoosePlane(node, region, dim, value);

  Node left, right;
  left.id = node.id;
  right.id = file_.Allocate();
  left.level = right.level = node.level;
  if (node.is_leaf()) {
    for (LeafEntry& e : node.points) {
      (e.point[dim] < value ? left.points : right.points)
          .push_back(std::move(e));
    }
  } else {
    for (NodeEntry& e : node.children) {
      if (e.region.hi()[dim] <= value) {
        left.children.push_back(std::move(e));
      } else if (e.region.lo()[dim] >= value) {
        right.children.push_back(std::move(e));
      } else {
        auto [l, r] = ForceSplit(e, node.level - 1, dim, value);
        left.children.push_back(std::move(l));
        right.children.push_back(std::move(r));
      }
    }
  }
  SplitToEntries(std::move(left), ClipHi(region, dim, value), out);
  SplitToEntries(std::move(right), ClipLo(region, dim, value), out);
}

void KdbTree::ChoosePlane(const Node& node, const Rect& region, int& dim,
                          double& value) const {
  if (node.is_leaf()) {
    // Max-spread dimension, most balanced distinct split value. Duplicates
    // beyond a page's capacity cannot be separated by any plane.
    int best_dim = -1;
    double best_spread = 0.0;
    for (int d = 0; d < options_.dim; ++d) {
      double lo = std::numeric_limits<double>::infinity();
      double hi = -lo;
      for (const LeafEntry& e : node.points) {
        lo = std::min(lo, e.point[d]);
        hi = std::max(hi, e.point[d]);
      }
      if (hi - lo > best_spread) {
        best_spread = hi - lo;
        best_dim = d;
      }
    }
    CHECK(best_dim >= 0);  // more duplicates than a point page can hold
    std::vector<double> coords(node.points.size());
    for (size_t i = 0; i < node.points.size(); ++i) {
      coords[i] = node.points[i].point[best_dim];
    }
    std::sort(coords.begin(), coords.end());
    // Candidate values are distinct coordinates > min; pick the one closest
    // to the median position.
    const size_t half = coords.size() / 2;
    double best_value = coords.back();
    size_t best_skew = coords.size();
    for (size_t i = 1; i < coords.size(); ++i) {
      if (coords[i] == coords[i - 1]) continue;
      const size_t skew = i > half ? i - half : half - i;
      if (skew < best_skew) {
        best_skew = skew;
        best_value = coords[i];
      }
    }
    dim = best_dim;
    value = best_value;
    return;
  }

  // Region page: candidates are child boundaries strictly inside the
  // region; minimize forced splits (children crossing the plane), then
  // imbalance. R+-tree-style choice (Section 3.1 of the paper).
  int best_dim = -1;
  double best_value = 0.0;
  size_t best_crossings = std::numeric_limits<size_t>::max();
  size_t best_skew = std::numeric_limits<size_t>::max();
  for (int d = 0; d < options_.dim; ++d) {
    std::vector<double> candidates;
    for (const NodeEntry& e : node.children) {
      for (const double v : {e.region.lo()[d], e.region.hi()[d]}) {
        if (v > region.lo()[d] && v < region.hi()[d]) candidates.push_back(v);
      }
    }
    std::sort(candidates.begin(), candidates.end());
    candidates.erase(std::unique(candidates.begin(), candidates.end()),
                     candidates.end());
    for (const double v : candidates) {
      size_t left = 0, right = 0, crossing = 0;
      for (const NodeEntry& e : node.children) {
        if (e.region.hi()[d] <= v) {
          ++left;
        } else if (e.region.lo()[d] >= v) {
          ++right;
        } else {
          ++crossing;
        }
      }
      if (left + crossing == 0 || right + crossing == 0) continue;
      const size_t skew = left > right ? left - right : right - left;
      if (crossing < best_crossings ||
          (crossing == best_crossings && skew < best_skew)) {
        best_crossings = crossing;
        best_skew = skew;
        best_dim = d;
        best_value = v;
      }
    }
  }
  CHECK_GE(best_dim, 0);  // >= 2 children partitioning the region
  dim = best_dim;
  value = best_value;
}

std::pair<KdbTree::NodeEntry, KdbTree::NodeEntry> KdbTree::ForceSplit(
    const NodeEntry& entry, int node_level, int dim, double value) {
  ++maintenance_.forced_splits;
  Node node = ReadNode(entry.child, node_level);
  Node left, right;
  left.id = node.id;
  right.id = file_.Allocate();
  left.level = right.level = node.level;
  if (node.is_leaf()) {
    for (LeafEntry& e : node.points) {
      (e.point[dim] < value ? left.points : right.points)
          .push_back(std::move(e));
    }
  } else {
    for (NodeEntry& e : node.children) {
      if (e.region.hi()[dim] <= value) {
        left.children.push_back(std::move(e));
      } else if (e.region.lo()[dim] >= value) {
        right.children.push_back(std::move(e));
      } else {
        auto [l, r] = ForceSplit(e, node.level - 1, dim, value);
        left.children.push_back(std::move(l));
        right.children.push_back(std::move(r));
      }
    }
  }
  WriteNode(left);
  WriteNode(right);
  return {NodeEntry{ClipHi(entry.region, dim, value), left.id},
          NodeEntry{ClipLo(entry.region, dim, value), right.id}};
}

Rect KdbTree::ClipHi(const Rect& region, int dim, double value) {
  Point hi = region.hi();
  hi[dim] = value;
  return Rect(region.lo(), std::move(hi));
}

Rect KdbTree::ClipLo(const Rect& region, int dim, double value) {
  Point lo = region.lo();
  lo[dim] = value;
  return Rect(std::move(lo), region.hi());
}

// --------------------------------------------------------------------------
// Deletion
// --------------------------------------------------------------------------

Status KdbTree::Delete(PointView point, uint32_t oid) {
  if (static_cast<int>(point.size()) != options_.dim) {
    return Status::InvalidArgument("point dimensionality mismatch");
  }
  if (!DeleteFrom(root_id_, root_level_, point, oid)) {
    return Status::NotFound("point not present");
  }
  --size_;
  return Status::OK();
}

bool KdbTree::DeleteFrom(PageId id, int level, PointView point, uint32_t oid) {
  Node node = ReadNode(id, level);
  if (node.is_leaf()) {
    for (size_t i = 0; i < node.points.size(); ++i) {
      if (node.points[i].oid == oid && SamePoint(node.points[i].point, point)) {
        node.points.erase(node.points.begin() + i);
        WriteNode(node);
        return true;
      }
    }
    return false;
  }
  // A boundary point may sit in either adjacent page: try every region that
  // contains it.
  for (const NodeEntry& e : node.children) {
    if (e.region.Contains(point) &&
        DeleteFrom(e.child, level - 1, point, oid)) {
      return true;
    }
  }
  return false;
}

// --------------------------------------------------------------------------
// Search
// --------------------------------------------------------------------------

std::vector<Neighbor> KdbTree::KnnDfsImpl(PointView query, int k,
                                     IoStatsDelta* io) const {
  CHECK_EQ(static_cast<int>(query.size()), options_.dim);
  KnnCandidates candidates(k);
  KernelScratch scratch;
  if (size_ > 0) {
    SearchKnn(root_id_, root_level_, query, candidates, scratch, io);
  }
  return candidates.TakeSorted();
}

void KdbTree::SearchKnn(PageId id, int level, PointView query,
                   KnnCandidates& cand, KernelScratch& scratch,
                   IoStatsDelta* io) const {
  Node node = ReadNode(id, level, io);
  if (node.is_leaf()) {
    // SoA leaf scan with partial-distance pruning against the bound at
    // block start (conservative: the bound only shrinks as we offer).
    const double bound_sq = cand.PruneDistanceSquared();
    const std::vector<double>& d2 = BatchSquaredL2(
        scratch, query, node.points.size(),
        [&](size_t i) { return PointView(node.points[i].point); }, bound_sq);
    for (size_t i = 0; i < node.points.size(); ++i) {
      if (d2[i] <= bound_sq) cand.OfferSquared(d2[i], node.points[i].oid);
    }
    return;
  }
  const std::vector<double>& m2 = BatchRectMinDistSq(
      scratch, query, node.children.size(),
      [&](size_t i) -> const Rect& { return node.children[i].region; });
  // Copy out of the scratch before recursing — the callee reuses it.
  std::vector<std::pair<double, size_t>> order(node.children.size());
  for (size_t i = 0; i < node.children.size(); ++i) order[i] = {m2[i], i};
  std::sort(order.begin(), order.end());
  for (const auto& [mindist_sq, i] : order) {
    if (mindist_sq > cand.PruneDistanceSquared()) break;
    SearchKnn(node.children[i].child, level - 1, query, cand, scratch, io);
  }
}


std::vector<Neighbor> KdbTree::KnnBestFirstImpl(PointView query, int k,
                                           IoStatsDelta* io) const {
  CHECK_EQ(static_cast<int>(query.size()), options_.dim);
  KnnCandidates candidates(k);
  if (size_ == 0) return candidates.TakeSorted();

  // Global best-first traversal: always expand the pending subtree with the
  // smallest MINDIST. Stops once that bound exceeds the k-th candidate.
  struct Pending {
    double mindist_sq;
    PageId id;
    int level;
    bool operator>(const Pending& other) const {
      return mindist_sq > other.mindist_sq;
    }
  };
  std::priority_queue<Pending, std::vector<Pending>, std::greater<Pending>>
      frontier;
  KernelScratch scratch;
  frontier.push(Pending{0.0, root_id_, root_level_});
  while (!frontier.empty()) {
    const Pending next = frontier.top();
    frontier.pop();
    if (next.mindist_sq > candidates.PruneDistanceSquared()) break;
    Node node = ReadNode(next.id, next.level, io);
    if (node.is_leaf()) {
      const double bound_sq = candidates.PruneDistanceSquared();
      const std::vector<double>& d2 = BatchSquaredL2(
          scratch, query, node.points.size(),
          [&](size_t i) { return PointView(node.points[i].point); }, bound_sq);
      for (size_t i = 0; i < node.points.size(); ++i) {
        if (d2[i] <= bound_sq) {
          candidates.OfferSquared(d2[i], node.points[i].oid);
        }
      }
      continue;
    }
    const std::vector<double>& m2 = BatchRectMinDistSq(
        scratch, query, node.children.size(),
        [&](size_t i) -> const Rect& { return node.children[i].region; });
    for (size_t i = 0; i < node.children.size(); ++i) {
      if (m2[i] <= candidates.PruneDistanceSquared()) {
        frontier.push(Pending{m2[i], node.children[i].child, node.level - 1});
      }
    }
  }
  return candidates.TakeSorted();
}

std::vector<Neighbor> KdbTree::RangeImpl(PointView query, double radius,
                                    IoStatsDelta* io) const {
  CHECK_EQ(static_cast<int>(query.size()), options_.dim);
  std::vector<Neighbor> result;
  KernelScratch scratch;
  if (size_ > 0) {
    SearchRange(root_id_, root_level_, query, radius, result, scratch, io);
  }
  std::sort(result.begin(), result.end());  // canonical (distance, oid)
  return result;
}

void KdbTree::SearchRange(PageId id, int level, PointView query,
                     double radius, std::vector<Neighbor>& out,
                     KernelScratch& scratch, IoStatsDelta* io) const {
  Node node = ReadNode(id, level, io);
  const double radius_sq = radius * radius;
  if (node.is_leaf()) {
    const std::vector<double>& d2 = BatchSquaredL2(
        scratch, query, node.points.size(),
        [&](size_t i) { return PointView(node.points[i].point); }, radius_sq);
    for (size_t i = 0; i < node.points.size(); ++i) {
      if (d2[i] <= radius_sq) {
        out.push_back(Neighbor{std::sqrt(d2[i]), node.points[i].oid});
      }
    }
    return;
  }
  const std::vector<double>& m2 = BatchRectMinDistSq(
      scratch, query, node.children.size(),
      [&](size_t i) -> const Rect& { return node.children[i].region; });
  // Copy out of the scratch before recursing — the callee reuses it.
  std::vector<PageId> hits;
  for (size_t i = 0; i < node.children.size(); ++i) {
    if (m2[i] <= radius_sq) hits.push_back(node.children[i].child);
  }
  for (const PageId child : hits) {
    SearchRange(child, level - 1, query, radius, out, scratch, io);
  }
}

// --------------------------------------------------------------------------
// Stats & validation
// --------------------------------------------------------------------------

TreeStats KdbTree::GetTreeStats() const {
  TreeStats stats;
  stats.height = root_level_ + 1;
  CollectStats(PeekNode(root_id_), stats);
  return stats;
}

void KdbTree::CollectStats(const Node& node, TreeStats& stats) const {
  if (node.is_leaf()) {
    ++stats.leaf_count;
    stats.entry_count += node.points.size();
    return;
  }
  ++stats.node_count;
  for (const NodeEntry& e : node.children) {
    CollectStats(PeekNode(e.child), stats);
  }
}

RegionSummary KdbTree::LeafRegionSummary() const {
  RegionStatsCollector collector;
  CollectRegions(PeekNode(root_id_), collector);
  return collector.Finish();
}

void KdbTree::CollectRegions(const Node& node,
                             RegionStatsCollector& collector) const {
  if (node.is_leaf()) {
    if (node.points.empty()) return;
    collector.CountLeaf();
    Rect bound = Rect::Empty(options_.dim);
    for (const LeafEntry& e : node.points) bound.Expand(e.point);
    collector.AddRect(bound);
    return;
  }
  for (const NodeEntry& e : node.children) {
    CollectRegions(PeekNode(e.child), collector);
  }
}

Status KdbTree::CheckInvariants() const { return debug::AuditIndex(*this); }

void KdbTree::VisitNodes(const NodeVisitor& visitor) const {
  std::vector<int> path;
  VisitSubtree(PeekNode(root_id_), path, visitor);
}

void KdbTree::VisitSubtree(const Node& node, std::vector<int>& path,
                           const NodeVisitor& visitor) const {
  NodeView view;
  view.level = node.level;
  view.capacity = Capacity(node);
  view.min_entries = 0;  // the K-D-B-tree gives no utilization guarantee
  view.entries.reserve(node.children.size());
  for (const NodeEntry& e : node.children) {
    view.entries.push_back(EntryView{&e.region, /*sphere=*/nullptr,
                                     /*weight=*/0, /*has_weight=*/false});
  }
  view.points.reserve(node.points.size());
  for (const LeafEntry& e : node.points) view.points.push_back(e.point);
  visitor(path, view);
  for (size_t i = 0; i < node.children.size(); ++i) {
    path.push_back(static_cast<int>(i));
    VisitSubtree(PeekNode(node.children[i].child), path, visitor);
    path.pop_back();
  }
}

AuditSpec KdbTree::GetAuditSpec() const {
  AuditSpec spec;
  spec.dim = options_.dim;
  // Child regions tile their parent disjointly; the root tiles the domain.
  spec.rect_semantics = RectSemantics::kPartition;
  spec.domain = Domain();
  return spec;
}

}  // namespace srtree
