#include "src/vamsplit/vam_split_r_tree.h"

#include <algorithm>
#include <cmath>
#include <queue>
#include <numeric>

#include "src/common/check.h"
#include "src/debug/structural_auditor.h"
#include "src/geometry/kernel.h"
#include "src/storage/image_io.h"

namespace srtree {
namespace {

constexpr size_t kHeaderBytes = 8;

}  // namespace

VamSplitRTree::VamSplitRTree(const Options& options) : options_(options), file_(options.page_size) {
  CHECK_GT(options_.dim, 0);
  const size_t dim = static_cast<size_t>(options_.dim);
  const size_t leaf_entry =
      dim * sizeof(double) + sizeof(uint32_t) + options_.leaf_data_size;
  const size_t node_entry = 2 * dim * sizeof(double) + sizeof(uint32_t);
  leaf_cap_ = (options_.page_size - kHeaderBytes) / leaf_entry;
  node_cap_ = (options_.page_size - kHeaderBytes) / node_entry;
  CHECK_GE(leaf_cap_, 2u);
  CHECK_GE(node_cap_, 2u);

  Node root;
  root.id = file_.Allocate();
  root.level = 0;
  WriteNode(root);
  root_id_ = root.id;
}

// --------------------------------------------------------------------------
// Persistence
// --------------------------------------------------------------------------

namespace {

// v2 header record embedded in the SRIX container (src/storage/image_io.h);
// the container carries the magic, tag, and a CRC32C over these bytes.
struct VamImageHeader {
  int32_t dim;
  uint32_t pad0;
  uint64_t page_size;
  uint64_t leaf_data_size;
  uint32_t root_id;
  int32_t root_level;
  uint64_t size;
};

// True iff `o` would pass every constructor CHECK, so Open() can reject a
// forged header with Corruption instead of crashing the process.
bool PlausibleOptions(const VamSplitRTree::Options& o) {
  if (o.dim <= 0 || o.dim > (1 << 16)) return false;
  if (o.page_size <= kHeaderBytes || o.page_size > (1u << 28)) return false;
  if (o.leaf_data_size > o.page_size) return false;
  const size_t dim = static_cast<size_t>(o.dim);
  const size_t leaf_entry =
      dim * sizeof(double) + sizeof(uint32_t) + o.leaf_data_size;
  const size_t node_entry = 2 * dim * sizeof(double) + sizeof(uint32_t);
  return (o.page_size - kHeaderBytes) / leaf_entry >= 2 &&
         (o.page_size - kHeaderBytes) / node_entry >= 2;
}

}  // namespace

Status VamSplitRTree::Save(const std::string& path) const {
  VamImageHeader header = {};
  header.dim = options_.dim;
  header.page_size = options_.page_size;
  header.leaf_data_size = options_.leaf_data_size;
  header.root_id = root_id_;
  header.root_level = root_level_;
  header.size = size_;
  return AtomicWriteFile(path, [&](std::ostream& out) {
    RETURN_IF_ERROR(
        WriteIndexImageTo(out, kImageTag, &header, sizeof(header)));
    return file_.SaveTo(out);
  });
}

StatusOr<std::unique_ptr<VamSplitRTree>> VamSplitRTree::Open(
    const std::string& path) {
  VamImageHeader header = {};
  IndexImageFile image;
  RETURN_IF_ERROR(image.Open(path, kImageTag, &header, sizeof(header)));

  Options options;
  options.dim = header.dim;
  options.page_size = header.page_size;
  options.leaf_data_size = header.leaf_data_size;
  if (!PlausibleOptions(options) || header.root_level < 0 ||
      header.root_level > 64) {
    return Status::Corruption("implausible VAMSplit R-tree header");
  }
  auto tree = std::make_unique<VamSplitRTree>(options);
  RETURN_IF_ERROR(tree->file_.LoadFrom(image.stream()));
  if (!tree->file_.is_live(header.root_id)) {
    return Status::Corruption(
        "VAMSplit R-tree root page is not live in the image");
  }
  tree->root_id_ = header.root_id;
  tree->root_level_ = header.root_level;
  tree->size_ = header.size;
  RETURN_IF_ERROR(tree->CheckInvariants());
  return tree;
}

// --------------------------------------------------------------------------
// Page I/O
// --------------------------------------------------------------------------

void VamSplitRTree::SerializeNode(const Node& node, char* buf) const {
  CHECK_LE(node.count(), Capacity(node));
  PageWriter w(buf, options_.page_size);
  w.PutU8(static_cast<uint8_t>(node.level));
  w.PutU8(0);
  w.PutU16(static_cast<uint16_t>(node.count()));
  w.PutU32(0);
  if (node.is_leaf()) {
    for (const LeafEntry& e : node.points) {
      w.PutDoubles(e.point);
      w.PutU32(e.oid);
      w.Skip(options_.leaf_data_size);
    }
  } else {
    for (const NodeEntry& e : node.children) {
      w.PutDoubles(e.rect.lo());
      w.PutDoubles(e.rect.hi());
      w.PutU32(e.child);
    }
  }
}

VamSplitRTree::Node VamSplitRTree::DeserializeNode(const char* buf,
                                                   PageId id) const {
  PageReader r(buf, options_.page_size);
  Node node;
  node.id = id;
  node.level = r.GetU8();
  r.GetU8();
  const size_t count = r.GetU16();
  r.GetU32();
  const size_t dim = static_cast<size_t>(options_.dim);
  if (node.level == 0) {
    node.points.resize(count);
    for (LeafEntry& e : node.points) {
      e.point.resize(dim);
      r.GetDoubles(e.point);
      e.oid = r.GetU32();
      r.Skip(options_.leaf_data_size);
    }
  } else {
    node.children.resize(count);
    for (NodeEntry& e : node.children) {
      Point lo(dim), hi(dim);
      r.GetDoubles(lo);
      r.GetDoubles(hi);
      e.rect = Rect(std::move(lo), std::move(hi));
      e.child = r.GetU32();
    }
  }
  return node;
}

VamSplitRTree::Node VamSplitRTree::ReadNode(PageId id, int level, IoStatsDelta* io) const {
  std::vector<char> buf(options_.page_size);
  if (pool_ != nullptr) {
    pool_->Read(id, buf.data(), level, io);
  } else {
    file_.Read(id, buf.data(), level, io);
  }
  Node node = DeserializeNode(buf.data(), id);
  DCHECK_EQ(node.level, level);
  return node;
}

VamSplitRTree::Node VamSplitRTree::PeekNode(PageId id) const {
  return DeserializeNode(file_.PeekPage(id), id);
}

void VamSplitRTree::WriteNode(const Node& node) {
  std::vector<char> buf(options_.page_size);
  SerializeNode(node, buf.data());
  if (pool_ != nullptr) pool_->Discard(node.id);  // invalidate stale frame
  file_.Write(node.id, buf.data());  // srlint: allow(R6) frozen-tree write path (no snapshot readers)
}

// --------------------------------------------------------------------------
// Construction
// --------------------------------------------------------------------------

Status VamSplitRTree::Insert(PointView, uint32_t) {
  return Status::Unimplemented(
      "VAMSplit R-tree is static; rebuild with BulkLoad");
}

Status VamSplitRTree::Delete(PointView, uint32_t) {
  return Status::Unimplemented(
      "VAMSplit R-tree is static; rebuild with BulkLoad");
}

uint64_t VamSplitRTree::SubtreeCapacity(int height) const {
  uint64_t cap = leaf_cap_;
  for (int h = 0; h < height; ++h) cap *= node_cap_;
  return cap;
}

Status VamSplitRTree::BulkLoad(const std::vector<Point>& points,
                               const std::vector<uint32_t>& oids) {
  if (points.size() != oids.size()) {
    return Status::InvalidArgument("points/oids size mismatch");
  }
  if (size_ != 0) {
    return Status::FailedPrecondition("BulkLoad requires an empty index");
  }
  for (const Point& p : points) {
    if (static_cast<int>(p.size()) != options_.dim) {
      return Status::InvalidArgument("point dimensionality mismatch");
    }
  }
  if (points.size() > 0xffffffffull) {
    return Status::InvalidArgument("too many points for 32-bit object slots");
  }
  if (points.empty()) return Status::OK();

  int height = 0;
  while (SubtreeCapacity(height) < points.size()) ++height;

  std::vector<uint32_t> items(points.size());
  std::iota(items.begin(), items.end(), 0);

  file_.Free(root_id_);  // replace the empty placeholder root
  Rect mbr = Rect::Empty(options_.dim);
  root_id_ = Build(points, oids, items, height, mbr);
  root_level_ = height;
  size_ = points.size();
  return Status::OK();
}

int VamSplitRTree::MaxVarianceDim(const std::vector<Point>& points,
                                  ItemSpan items) const {
  int best_dim = 0;
  double best_var = -1.0;
  for (int d = 0; d < options_.dim; ++d) {
    double sum = 0.0, sum_sq = 0.0;
    for (const uint32_t i : items) {
      const double x = points[i][d];
      sum += x;
      sum_sq += x * x;
    }
    const double n = static_cast<double>(items.size());
    const double mean = sum / n;
    const double var = sum_sq / n - mean * mean;
    if (var > best_var) {
      best_var = var;
      best_dim = d;
    }
  }
  return best_dim;
}

void VamSplitRTree::SplitIntoPieces(const std::vector<Point>& points,
                                    ItemSpan items, uint64_t piece_cap,
                                    std::vector<ItemSpan>& pieces) const {
  if (items.size() <= piece_cap) {
    pieces.push_back(items);
    return;
  }
  const int dim = MaxVarianceDim(points, items);
  // The VAM split point: the multiple of the maximal-subtree capacity
  // closest to the median, so that the left side packs full subtrees and
  // the total number of blocks is minimal.
  const uint64_t n = items.size();
  uint64_t mult = static_cast<uint64_t>(
      std::llround(static_cast<double>(n) / 2.0 / static_cast<double>(piece_cap)));
  mult = std::max<uint64_t>(mult, 1);
  uint64_t left = mult * piece_cap;
  if (left >= n) left = ((n - 1) / piece_cap) * piece_cap;
  CHECK_GT(left, 0u);
  CHECK_LT(left, n);

  std::nth_element(items.begin(),
                   items.begin() + static_cast<ptrdiff_t>(left), items.end(),
                   [&](uint32_t a, uint32_t b) {
                     return points[a][dim] < points[b][dim];
                   });
  SplitIntoPieces(points, items.subspan(0, left), piece_cap, pieces);
  SplitIntoPieces(points, items.subspan(left), piece_cap, pieces);
}

PageId VamSplitRTree::Build(const std::vector<Point>& points,
                            const std::vector<uint32_t>& oids, ItemSpan items,
                            int height, Rect& mbr) {
  mbr = Rect::Empty(options_.dim);
  if (height == 0) {
    CHECK_LE(items.size(), leaf_cap_);
    Node leaf;
    leaf.id = file_.Allocate();
    leaf.level = 0;
    for (const uint32_t i : items) {
      leaf.points.push_back(LeafEntry{points[i], oids[i]});
      mbr.Expand(points[i]);
    }
    WriteNode(leaf);
    return leaf.id;
  }

  std::vector<ItemSpan> pieces;
  SplitIntoPieces(points, items, SubtreeCapacity(height - 1), pieces);
  CHECK_LE(pieces.size(), node_cap_);

  Node node;
  node.id = file_.Allocate();
  node.level = height;
  for (const ItemSpan piece : pieces) {
    Rect child_mbr = Rect::Empty(options_.dim);
    const PageId child = Build(points, oids, piece, height - 1, child_mbr);
    node.children.push_back(NodeEntry{child_mbr, child});
    mbr.Expand(child_mbr);
  }
  WriteNode(node);
  return node.id;
}

// --------------------------------------------------------------------------
// Search
// --------------------------------------------------------------------------

std::vector<Neighbor> VamSplitRTree::KnnDfsImpl(PointView query, int k,
                                     IoStatsDelta* io) const {
  CHECK_EQ(static_cast<int>(query.size()), options_.dim);
  KnnCandidates candidates(k);
  KernelScratch scratch;
  if (size_ > 0) {
    SearchKnn(root_id_, root_level_, query, candidates, scratch, io);
  }
  return candidates.TakeSorted();
}

void VamSplitRTree::SearchKnn(PageId id, int level, PointView query,
                   KnnCandidates& cand, KernelScratch& scratch,
                   IoStatsDelta* io) const {
  Node node = ReadNode(id, level, io);
  if (node.is_leaf()) {
    // SoA leaf scan with partial-distance pruning against the bound at
    // block start (conservative: the bound only shrinks as we offer).
    const double bound_sq = cand.PruneDistanceSquared();
    const std::vector<double>& d2 = BatchSquaredL2(
        scratch, query, node.points.size(),
        [&](size_t i) { return PointView(node.points[i].point); }, bound_sq);
    for (size_t i = 0; i < node.points.size(); ++i) {
      if (d2[i] <= bound_sq) cand.OfferSquared(d2[i], node.points[i].oid);
    }
    return;
  }
  const std::vector<double>& m2 = BatchRectMinDistSq(
      scratch, query, node.children.size(),
      [&](size_t i) -> const Rect& { return node.children[i].rect; });
  // Copy out of the scratch before recursing — the callee reuses it.
  std::vector<std::pair<double, size_t>> order(node.children.size());
  for (size_t i = 0; i < node.children.size(); ++i) order[i] = {m2[i], i};
  std::sort(order.begin(), order.end());
  for (const auto& [mindist_sq, i] : order) {
    if (mindist_sq > cand.PruneDistanceSquared()) break;
    SearchKnn(node.children[i].child, level - 1, query, cand, scratch, io);
  }
}


std::vector<Neighbor> VamSplitRTree::KnnBestFirstImpl(PointView query, int k,
                                           IoStatsDelta* io) const {
  CHECK_EQ(static_cast<int>(query.size()), options_.dim);
  KnnCandidates candidates(k);
  if (size_ == 0) return candidates.TakeSorted();

  // Global best-first traversal: always expand the pending subtree with the
  // smallest MINDIST. Stops once that bound exceeds the k-th candidate.
  struct Pending {
    double mindist_sq;
    PageId id;
    int level;
    bool operator>(const Pending& other) const {
      return mindist_sq > other.mindist_sq;
    }
  };
  std::priority_queue<Pending, std::vector<Pending>, std::greater<Pending>>
      frontier;
  KernelScratch scratch;
  frontier.push(Pending{0.0, root_id_, root_level_});
  while (!frontier.empty()) {
    const Pending next = frontier.top();
    frontier.pop();
    if (next.mindist_sq > candidates.PruneDistanceSquared()) break;
    Node node = ReadNode(next.id, next.level, io);
    if (node.is_leaf()) {
      const double bound_sq = candidates.PruneDistanceSquared();
      const std::vector<double>& d2 = BatchSquaredL2(
          scratch, query, node.points.size(),
          [&](size_t i) { return PointView(node.points[i].point); }, bound_sq);
      for (size_t i = 0; i < node.points.size(); ++i) {
        if (d2[i] <= bound_sq) {
          candidates.OfferSquared(d2[i], node.points[i].oid);
        }
      }
      continue;
    }
    const std::vector<double>& m2 = BatchRectMinDistSq(
        scratch, query, node.children.size(),
        [&](size_t i) -> const Rect& { return node.children[i].rect; });
    for (size_t i = 0; i < node.children.size(); ++i) {
      if (m2[i] <= candidates.PruneDistanceSquared()) {
        frontier.push(Pending{m2[i], node.children[i].child, node.level - 1});
      }
    }
  }
  return candidates.TakeSorted();
}

std::vector<Neighbor> VamSplitRTree::RangeImpl(PointView query, double radius,
                                    IoStatsDelta* io) const {
  CHECK_EQ(static_cast<int>(query.size()), options_.dim);
  std::vector<Neighbor> result;
  KernelScratch scratch;
  if (size_ > 0) {
    SearchRange(root_id_, root_level_, query, radius, result, scratch, io);
  }
  std::sort(result.begin(), result.end());  // canonical (distance, oid)
  return result;
}

void VamSplitRTree::SearchRange(PageId id, int level, PointView query,
                     double radius, std::vector<Neighbor>& out,
                     KernelScratch& scratch, IoStatsDelta* io) const {
  Node node = ReadNode(id, level, io);
  const double radius_sq = radius * radius;
  if (node.is_leaf()) {
    const std::vector<double>& d2 = BatchSquaredL2(
        scratch, query, node.points.size(),
        [&](size_t i) { return PointView(node.points[i].point); }, radius_sq);
    for (size_t i = 0; i < node.points.size(); ++i) {
      if (d2[i] <= radius_sq) {
        out.push_back(Neighbor{std::sqrt(d2[i]), node.points[i].oid});
      }
    }
    return;
  }
  const std::vector<double>& m2 = BatchRectMinDistSq(
      scratch, query, node.children.size(),
      [&](size_t i) -> const Rect& { return node.children[i].rect; });
  // Copy out of the scratch before recursing — the callee reuses it.
  std::vector<PageId> hits;
  for (size_t i = 0; i < node.children.size(); ++i) {
    if (m2[i] <= radius_sq) hits.push_back(node.children[i].child);
  }
  for (const PageId child : hits) {
    SearchRange(child, level - 1, query, radius, out, scratch, io);
  }
}

// --------------------------------------------------------------------------
// Stats & validation
// --------------------------------------------------------------------------

TreeStats VamSplitRTree::GetTreeStats() const {
  TreeStats stats;
  stats.height = root_level_ + 1;
  CollectStats(PeekNode(root_id_), stats);
  return stats;
}

void VamSplitRTree::CollectStats(const Node& node, TreeStats& stats) const {
  if (node.is_leaf()) {
    ++stats.leaf_count;
    stats.entry_count += node.points.size();
    return;
  }
  ++stats.node_count;
  for (const NodeEntry& e : node.children) {
    CollectStats(PeekNode(e.child), stats);
  }
}

RegionSummary VamSplitRTree::LeafRegionSummary() const {
  RegionStatsCollector collector;
  CollectRegions(PeekNode(root_id_), collector);
  return collector.Finish();
}

void VamSplitRTree::CollectRegions(const Node& node,
                                   RegionStatsCollector& collector) const {
  if (node.is_leaf()) {
    if (node.points.empty()) return;
    collector.CountLeaf();
    Rect bound = Rect::Empty(options_.dim);
    for (const LeafEntry& e : node.points) bound.Expand(e.point);
    collector.AddRect(bound);
    return;
  }
  for (const NodeEntry& e : node.children) {
    CollectRegions(PeekNode(e.child), collector);
  }
}

Status VamSplitRTree::CheckInvariants() const { return debug::AuditIndex(*this); }

void VamSplitRTree::VisitNodes(const NodeVisitor& visitor) const {
  std::vector<int> path;
  VisitSubtree(PeekNode(root_id_), path, visitor);
}

void VamSplitRTree::VisitSubtree(const Node& node, std::vector<int>& path,
                                 const NodeVisitor& visitor) const {
  NodeView view;
  view.level = node.level;
  view.capacity = Capacity(node);
  view.min_entries = 0;  // bulk-loaded: no minimum is enforced
  view.entries.reserve(node.children.size());
  for (const NodeEntry& e : node.children) {
    view.entries.push_back(EntryView{&e.rect, /*sphere=*/nullptr,
                                     /*weight=*/0, /*has_weight=*/false});
  }
  view.points.reserve(node.points.size());
  for (const LeafEntry& e : node.points) view.points.push_back(e.point);
  visitor(path, view);
  for (size_t i = 0; i < node.children.size(); ++i) {
    path.push_back(static_cast<int>(i));
    VisitSubtree(PeekNode(node.children[i].child), path, visitor);
    path.pop_back();
  }
}

AuditSpec VamSplitRTree::GetAuditSpec() const {
  AuditSpec spec;
  spec.dim = options_.dim;
  spec.rect_semantics = RectSemantics::kExactMbr;
  return spec;
}

}  // namespace srtree
