// VAMSplit R-tree (White & Jain, SPIE 1996) — the optimized static baseline
// of Section 2.4.
//
// The tree is built top-down from the full data set: each recursion splits
// the points with a plane orthogonal to the dimension of highest variance,
// placing the split at the "variance approximate median" rounded to a
// multiple of the capacity of a maximal subtree — guaranteeing the minimum
// number of disk blocks. The resulting structure is an R-tree (MBR node
// entries) queried exactly like the R*-tree, but it is static: Insert and
// Delete return Unimplemented.

#ifndef SRTREE_VAMSPLIT_VAM_SPLIT_R_TREE_H_
#define SRTREE_VAMSPLIT_VAM_SPLIT_R_TREE_H_

#include <vector>

#include "src/geometry/kernel.h"
#include "src/geometry/rect.h"
#include "src/index/knn.h"
#include "src/index/point_index.h"
#include "src/storage/buffer_pool.h"
#include "src/storage/page_file.h"

namespace srtree {

class VamSplitRTree : public PointIndex {
 public:
  struct Options {
    int dim = 2;
    size_t page_size = kDefaultPageSize;
    size_t leaf_data_size = 512;
  };

  explicit VamSplitRTree(const Options& options);

  // Type tag embedded in the v2 index-image container.
  static constexpr char kImageTag[] = "vamsplit";

  // Checksummed atomic image persistence (see PointIndex::Save).
  Status Save(const std::string& path) const override;
  static StatusOr<std::unique_ptr<VamSplitRTree>> Open(
      const std::string& path);

  int dim() const override { return options_.dim; }
  size_t size() const override { return size_; }
  std::string name() const override { return "VAMSplit R-tree"; }

  // Static index: the only way to populate it is BulkLoad.
  Status Insert(PointView point, uint32_t oid) override;
  Status Delete(PointView point, uint32_t oid) override;
  Status BulkLoad(const std::vector<Point>& points,
                  const std::vector<uint32_t>& oids) override;

  TreeStats GetTreeStats() const override;
  Status CheckInvariants() const override;
  void VisitNodes(const NodeVisitor& visitor) const override;
  AuditSpec GetAuditSpec() const override;
  RegionSummary LeafRegionSummary() const override;

  // Forwarders to the page file's counters. io_stats() is the deprecated
  // unlocked reference (single-threaded benches only); the reset is locked
  // but only meaningful on a quiesced index — see PointIndex::ResetIoStats
  // for the exclusion contract the concurrent fuzzer asserts.
  const IoStats& io_stats() const override { return file_.stats(); }
  void ResetIoStats() override { file_.ResetStats(); }
  IoStats GetIoStats() const override { return file_.GetIoStats(); }

  void SimulateBufferPool(size_t capacity) override {
    file_.SimulateCache(capacity);
  }
  void UseBufferPool(size_t capacity) override {
    pool_ = capacity > 0 ? std::make_unique<BufferPool>(&file_, capacity)
                         : nullptr;
  }

  size_t leaf_capacity() const override { return leaf_cap_; }
  size_t node_capacity() const override { return node_cap_; }
  int height() const { return root_level_ + 1; }

 protected:
  std::vector<Neighbor> KnnDfsImpl(PointView query, int k,
                                   IoStatsDelta* io) const override;
  std::vector<Neighbor> KnnBestFirstImpl(PointView query, int k,
                                         IoStatsDelta* io) const override;
  std::vector<Neighbor> RangeImpl(PointView query, double radius,
                                  IoStatsDelta* io) const override;

 private:
  struct LeafEntry {
    Point point;
    uint32_t oid;
  };

  struct NodeEntry {
    Rect rect;
    PageId child;
  };

  struct Node {
    PageId id = kInvalidPageId;
    int level = 0;
    std::vector<NodeEntry> children;
    std::vector<LeafEntry> points;

    bool is_leaf() const { return level == 0; }
    size_t count() const { return is_leaf() ? points.size() : children.size(); }
  };

  // Item = index into the bulk-load arrays; Build permutes a shared vector.
  using ItemSpan = std::span<uint32_t>;

  // --- page I/O ---
  Node ReadNode(PageId id, int level,
                IoStatsDelta* io = nullptr) const;
  Node PeekNode(PageId id) const;
  void WriteNode(const Node& node);
  void SerializeNode(const Node& node, char* buf) const;
  Node DeserializeNode(const char* buf, PageId id) const;

  size_t Capacity(const Node& node) const {
    return node.is_leaf() ? leaf_cap_ : node_cap_;
  }

  // --- construction ---
  // Capacity of a full subtree of the given height (0 = leaf).
  uint64_t SubtreeCapacity(int height) const;
  // Builds the subtree over `items` at `height`; returns its page id and
  // the MBR of its points.
  PageId Build(const std::vector<Point>& points,
               const std::vector<uint32_t>& oids, ItemSpan items, int height,
               Rect& mbr);
  // Recursively partitions `items` into pieces of at most `piece_cap`
  // points using variance-approximate-median binary splits.
  void SplitIntoPieces(const std::vector<Point>& points, ItemSpan items,
                       uint64_t piece_cap, std::vector<ItemSpan>& pieces) const;
  int MaxVarianceDim(const std::vector<Point>& points, ItemSpan items) const;

  // --- search ---
  void SearchKnn(PageId id, int level, PointView query,
                 KnnCandidates& cand, KernelScratch& scratch,
                 IoStatsDelta* io) const;
  void SearchRange(PageId id, int level, PointView query,
                   double radius, std::vector<Neighbor>& out,
                   KernelScratch& scratch, IoStatsDelta* io) const;

  // --- validation / stats ---
  void VisitSubtree(const Node& node, std::vector<int>& path,
                    const NodeVisitor& visitor) const;
  void CollectStats(const Node& node, TreeStats& stats) const;
  void CollectRegions(const Node& node, RegionStatsCollector& collector) const;

  Options options_;
  size_t leaf_cap_;
  size_t node_cap_;

  mutable PageFile file_;
  // Optional warm cache on the query path (UseBufferPool); WriteNode
  // invalidates its frames so single-writer mutation stays coherent.
  std::unique_ptr<BufferPool> pool_;
  PageId root_id_;
  int root_level_ = 0;
  size_t size_ = 0;
};

}  // namespace srtree

#endif  // SRTREE_VAMSPLIT_VAM_SPLIT_R_TREE_H_
