// The unified query interface: one Search() entry point driven by a
// QuerySpec, returning a QueryResult that carries the neighbors together
// with per-query I/O and latency accounting.
//
// This replaced the three legacy per-kind entry points (since removed from
// PointIndex) and the ResetIoStats()-then-peek measurement pattern: a
// QueryResult is self-contained, so any number of queries can run
// concurrently without sharing mutable counters.

#ifndef SRTREE_INDEX_QUERY_H_
#define SRTREE_INDEX_QUERY_H_

#include <cstdint>
#include <vector>

#include "src/common/status.h"
#include "src/storage/io_stats.h"

namespace srtree {

// One k-NN / range-search result: the point's object id and its distance
// from the query.
struct Neighbor {
  double distance = 0.0;
  uint32_t oid = 0;

  bool operator==(const Neighbor&) const = default;

  // Canonical result ordering: by (distance, oid). Every sorted neighbor
  // list uses exactly this relation, so results with duplicate distances
  // come back in the same order from every index structure.
  bool operator<(const Neighbor& other) const {
    if (distance != other.distance) return distance < other.distance;
    return oid < other.oid;
  }
};

enum class QueryKind {
  kKnn,           // depth-first branch-and-bound (Roussopoulos et al.)
  kKnnBestFirst,  // global priority queue (Hjaltason & Samet)
  kRange,         // all points within a closed ball
};

// What to run: the traversal, and k or the radius. Built via the factory
// helpers so call sites read as Search(q, QuerySpec::Knn(10)).
struct QuerySpec {
  QueryKind kind = QueryKind::kKnn;
  int k = 0;            // kKnn / kKnnBestFirst: must be >= 1
  double radius = 0.0;  // kRange: must be >= 0 and finite

  static QuerySpec Knn(int k) {
    return QuerySpec{QueryKind::kKnn, k, 0.0};
  }
  static QuerySpec KnnBestFirst(int k) {
    return QuerySpec{QueryKind::kKnnBestFirst, k, 0.0};
  }
  static QuerySpec Range(double radius) {
    return QuerySpec{QueryKind::kRange, 0, radius};
  }
};

// Everything one query produced. `io` covers exactly the page reads this
// query performed (the same reads also land in the index's global IoStats,
// which the paper benches keep using); `elapsed_seconds` is wall-clock
// latency, the right notion under a concurrent engine.
struct QueryResult {
  Status status;  // OK, or InvalidArgument for a malformed spec/query
  std::vector<Neighbor> neighbors;
  IoStatsDelta io;
  double elapsed_seconds = 0.0;
};

}  // namespace srtree

#endif  // SRTREE_INDEX_QUERY_H_
