#include "src/index/point_index.h"

#include <cmath>

#include "src/common/timer.h"

namespace srtree {

QueryResult RunValidatedSearch(const SearchDispatch& dispatch, int dim,
                               PointView query, const QuerySpec& spec) {
  QueryResult result;
  const WallTimer timer;
  if (static_cast<int>(query.size()) != dim) {
    result.status = Status::InvalidArgument(
        "query dimensionality does not match the index");
    result.elapsed_seconds = timer.ElapsedSeconds();
    return result;
  }
  switch (spec.kind) {
    case QueryKind::kKnn:
    case QueryKind::kKnnBestFirst:
      if (spec.k <= 0) {
        result.status = Status::InvalidArgument("k must be >= 1");
        break;
      }
      result.neighbors =
          (spec.kind == QueryKind::kKnn)
              ? dispatch.KnnDfsImpl(query, spec.k, &result.io)
              : dispatch.KnnBestFirstImpl(query, spec.k, &result.io);
      break;
    case QueryKind::kRange:
      if (!(spec.radius >= 0.0) || std::isinf(spec.radius)) {
        result.status =
            Status::InvalidArgument("radius must be finite and >= 0");
        break;
      }
      result.neighbors = dispatch.RangeImpl(query, spec.radius, &result.io);
      break;
  }
  result.elapsed_seconds = timer.ElapsedSeconds();
  return result;
}

QueryResult PointIndex::Search(PointView query, const QuerySpec& spec) const {
  return RunValidatedSearch(*this, dim(), query, spec);
}

std::unique_ptr<IndexSnapshot> PointIndex::AcquireSnapshot() const {
  return std::make_unique<IndexSnapshot>(this);
}

QueryResult IndexSnapshot::Search(PointView query,
                                  const QuerySpec& spec) const {
  // Frozen-tree pass-through: with no concurrent writer (that structure's
  // contract), the live index IS the pinned view.
  return index_->Search(query, spec);
}

size_t IndexSnapshot::size() const { return index_->size(); }

Status PointIndex::BulkLoad(const std::vector<Point>& points,
                            const std::vector<uint32_t>& oids) {
  if (points.size() != oids.size()) {
    return Status::InvalidArgument("points/oids size mismatch");
  }
  if (size() != 0) {
    return Status::FailedPrecondition("BulkLoad requires an empty index");
  }
  for (size_t i = 0; i < points.size(); ++i) {
    RETURN_IF_ERROR(Insert(points[i], oids[i]));
  }
  return Status::OK();
}

}  // namespace srtree
