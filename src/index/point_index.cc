#include "src/index/point_index.h"

namespace srtree {

Status PointIndex::BulkLoad(const std::vector<Point>& points,
                            const std::vector<uint32_t>& oids) {
  if (points.size() != oids.size()) {
    return Status::InvalidArgument("points/oids size mismatch");
  }
  if (size() != 0) {
    return Status::FailedPrecondition("BulkLoad requires an empty index");
  }
  for (size_t i = 0; i < points.size(); ++i) {
    RETURN_IF_ERROR(Insert(points[i], oids[i]));
  }
  return Status::OK();
}

}  // namespace srtree
