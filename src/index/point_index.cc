#include "src/index/point_index.h"

#include <cmath>

#include "src/common/timer.h"

namespace srtree {

QueryResult PointIndex::Search(PointView query, const QuerySpec& spec) const {
  QueryResult result;
  const WallTimer timer;
  if (static_cast<int>(query.size()) != dim()) {
    result.status = Status::InvalidArgument(
        "query dimensionality does not match the index");
    result.elapsed_seconds = timer.ElapsedSeconds();
    return result;
  }
  switch (spec.kind) {
    case QueryKind::kKnn:
    case QueryKind::kKnnBestFirst:
      if (spec.k <= 0) {
        result.status = Status::InvalidArgument("k must be >= 1");
        break;
      }
      result.neighbors = (spec.kind == QueryKind::kKnn)
                             ? KnnDfsImpl(query, spec.k, &result.io)
                             : KnnBestFirstImpl(query, spec.k, &result.io);
      break;
    case QueryKind::kRange:
      if (!(spec.radius >= 0.0) || std::isinf(spec.radius)) {
        result.status =
            Status::InvalidArgument("radius must be finite and >= 0");
        break;
      }
      result.neighbors = RangeImpl(query, spec.radius, &result.io);
      break;
  }
  result.elapsed_seconds = timer.ElapsedSeconds();
  return result;
}

Status PointIndex::BulkLoad(const std::vector<Point>& points,
                            const std::vector<uint32_t>& oids) {
  if (points.size() != oids.size()) {
    return Status::InvalidArgument("points/oids size mismatch");
  }
  if (size() != 0) {
    return Status::FailedPrecondition("BulkLoad requires an empty index");
  }
  for (size_t i = 0; i < points.size(); ++i) {
    RETURN_IF_ERROR(Insert(points[i], oids[i]));
  }
  return Status::OK();
}

}  // namespace srtree
