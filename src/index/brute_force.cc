#include "src/index/brute_force.h"

#include <algorithm>
#include <cmath>

#include "src/common/check.h"
#include "src/geometry/kernel.h"
#include "src/index/knn.h"

namespace srtree {

BruteForceIndex::BruteForceIndex(const Options& options) : options_(options) {
  CHECK_GT(options_.dim, 0);
}

Status BruteForceIndex::Insert(PointView point, uint32_t oid) {
  if (static_cast<int>(point.size()) != options_.dim) {
    return Status::InvalidArgument("point dimensionality mismatch");
  }
  points_.emplace_back(point.begin(), point.end());
  oids_.push_back(oid);
  MutexLock lock(stats_mu_);
  stats_.RecordWrite();
  return Status::OK();
}

Status BruteForceIndex::Delete(PointView point, uint32_t oid) {
  for (size_t i = 0; i < points_.size(); ++i) {
    if (oids_[i] == oid && std::equal(point.begin(), point.end(),
                                      points_[i].begin(), points_[i].end())) {
      points_[i] = std::move(points_.back());
      points_.pop_back();
      oids_[i] = oids_.back();
      oids_.pop_back();
      MutexLock lock(stats_mu_);
      stats_.RecordWrite();
      return Status::OK();
    }
  }
  return Status::NotFound("point not present");
}

size_t BruteForceIndex::leaf_capacity() const {
  const size_t entry_bytes = options_.dim * sizeof(double) +
                             sizeof(uint32_t) + options_.leaf_data_size;
  return std::max<size_t>(1, options_.page_size / entry_bytes);
}

void BruteForceIndex::ChargeScan(IoStatsDelta* io) const {
  const size_t entries_per_page = leaf_capacity();
  const size_t pages =
      (points_.size() + entries_per_page - 1) / entries_per_page;
  MutexLock lock(stats_mu_);
  for (size_t i = 0; i < pages; ++i) {
    stats_.RecordRead(/*level=*/0);
    if (io != nullptr) io->RecordRead(/*level=*/0);
  }
}

// The scan transposes fixed-size runs of points into the kernel's SoA block
// layout; per-element distances are block-size independent (see
// src/geometry/kernel.h), so results match the per-node blocks the trees
// feed the same kernel exactly.
constexpr size_t kScanBlock = 256;

std::vector<Neighbor> BruteForceIndex::KnnDfsImpl(PointView query, int k,
                                                  IoStatsDelta* io) const {
  ChargeScan(io);
  KnnCandidates candidates(k);
  KernelScratch scratch;
  for (size_t base = 0; base < points_.size(); base += kScanBlock) {
    const size_t n = std::min(kScanBlock, points_.size() - base);
    const double bound_sq = candidates.PruneDistanceSquared();
    const std::vector<double>& d2 = BatchSquaredL2(
        scratch, query, n,
        [&](size_t i) { return PointView(points_[base + i]); }, bound_sq);
    for (size_t i = 0; i < n; ++i) {
      if (d2[i] <= bound_sq) candidates.OfferSquared(d2[i], oids_[base + i]);
    }
  }
  return candidates.TakeSorted();
}

std::vector<Neighbor> BruteForceIndex::RangeImpl(PointView query,
                                                 double radius,
                                                 IoStatsDelta* io) const {
  ChargeScan(io);
  std::vector<Neighbor> result;
  KernelScratch scratch;
  const double radius_sq = radius * radius;
  for (size_t base = 0; base < points_.size(); base += kScanBlock) {
    const size_t n = std::min(kScanBlock, points_.size() - base);
    const std::vector<double>& d2 = BatchSquaredL2(
        scratch, query, n,
        [&](size_t i) { return PointView(points_[base + i]); }, radius_sq);
    for (size_t i = 0; i < n; ++i) {
      if (d2[i] <= radius_sq) {
        result.push_back(Neighbor{std::sqrt(d2[i]), oids_[base + i]});
      }
    }
  }
  std::sort(result.begin(), result.end());  // canonical (distance, oid)
  return result;
}

TreeStats BruteForceIndex::GetTreeStats() const {
  TreeStats stats;
  stats.height = 1;
  stats.leaf_count = 1;
  stats.entry_count = points_.size();
  return stats;
}

}  // namespace srtree
