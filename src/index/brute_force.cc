#include "src/index/brute_force.h"

#include <algorithm>

#include "src/common/check.h"
#include "src/index/knn.h"

namespace srtree {

BruteForceIndex::BruteForceIndex(const Options& options) : options_(options) {
  CHECK_GT(options_.dim, 0);
}

Status BruteForceIndex::Insert(PointView point, uint32_t oid) {
  if (static_cast<int>(point.size()) != options_.dim) {
    return Status::InvalidArgument("point dimensionality mismatch");
  }
  points_.emplace_back(point.begin(), point.end());
  oids_.push_back(oid);
  MutexLock lock(stats_mu_);
  stats_.RecordWrite();
  return Status::OK();
}

Status BruteForceIndex::Delete(PointView point, uint32_t oid) {
  for (size_t i = 0; i < points_.size(); ++i) {
    if (oids_[i] == oid && std::equal(point.begin(), point.end(),
                                      points_[i].begin(), points_[i].end())) {
      points_[i] = std::move(points_.back());
      points_.pop_back();
      oids_[i] = oids_.back();
      oids_.pop_back();
      MutexLock lock(stats_mu_);
      stats_.RecordWrite();
      return Status::OK();
    }
  }
  return Status::NotFound("point not present");
}

size_t BruteForceIndex::leaf_capacity() const {
  const size_t entry_bytes = options_.dim * sizeof(double) +
                             sizeof(uint32_t) + options_.leaf_data_size;
  return std::max<size_t>(1, options_.page_size / entry_bytes);
}

void BruteForceIndex::ChargeScan(IoStatsDelta* io) const {
  const size_t entries_per_page = leaf_capacity();
  const size_t pages =
      (points_.size() + entries_per_page - 1) / entries_per_page;
  MutexLock lock(stats_mu_);
  for (size_t i = 0; i < pages; ++i) {
    stats_.RecordRead(/*level=*/0);
    if (io != nullptr) io->RecordRead(/*level=*/0);
  }
}

std::vector<Neighbor> BruteForceIndex::KnnDfsImpl(PointView query, int k,
                                                  IoStatsDelta* io) const {
  ChargeScan(io);
  KnnCandidates candidates(k);
  for (size_t i = 0; i < points_.size(); ++i) {
    candidates.Offer(Distance(points_[i], query), oids_[i]);
  }
  return candidates.TakeSorted();
}

std::vector<Neighbor> BruteForceIndex::RangeImpl(PointView query,
                                                 double radius,
                                                 IoStatsDelta* io) const {
  ChargeScan(io);
  std::vector<Neighbor> result;
  for (size_t i = 0; i < points_.size(); ++i) {
    const double d = Distance(points_[i], query);
    if (d <= radius) result.push_back(Neighbor{d, oids_[i]});
  }
  std::sort(result.begin(), result.end());  // canonical (distance, oid)
  return result;
}

TreeStats BruteForceIndex::GetTreeStats() const {
  TreeStats stats;
  stats.height = 1;
  stats.leaf_count = 1;
  stats.entry_count = points_.size();
  return stats;
}

}  // namespace srtree
