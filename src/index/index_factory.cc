#include "src/index/index_factory.h"

#include <utility>

#include "src/common/check.h"
#include "src/storage/image_io.h"
#include "src/core/sr_tree.h"
#include "src/index/brute_force.h"
#include "src/kdb/kdb_tree.h"
#include "src/statictier/static_sr_tree.h"
#include "src/statictier/tiered_index.h"
#include "src/rstar/rstar_tree.h"
#include "src/sstree/ss_tree.h"
#include "src/tvtree/tv_r_tree.h"
#include "src/vamsplit/vam_split_r_tree.h"
#include "src/xtree/x_tree.h"

namespace srtree {

const char* IndexTypeName(IndexType type) {
  switch (type) {
    case IndexType::kSRTree:
      return "SR-tree";
    case IndexType::kSSTree:
      return "SS-tree";
    case IndexType::kRStarTree:
      return "R*-tree";
    case IndexType::kKdbTree:
      return "K-D-B-tree";
    case IndexType::kVamSplitRTree:
      return "VAMSplit R-tree";
    case IndexType::kXTree:
      return "X-tree";
    case IndexType::kTvTree:
      return "TV-tree";
    case IndexType::kScan:
      return "scan";
    case IndexType::kStaticSRTree:
      return "Static SR-tree";
    case IndexType::kTieredSRTree:
      return "Tiered SR-tree";
  }
  return "unknown";
}

std::vector<IndexType> AllTreeTypes() {
  return {IndexType::kKdbTree, IndexType::kRStarTree, IndexType::kSSTree,
          IndexType::kVamSplitRTree, IndexType::kSRTree};
}

std::vector<IndexType> DynamicTreeTypes() {
  return {IndexType::kRStarTree, IndexType::kSSTree, IndexType::kSRTree};
}

std::unique_ptr<PointIndex> MakeIndex(IndexType type,
                                      const IndexConfig& config) {
  switch (type) {
    case IndexType::kSRTree: {
      SRTree::Options options;
      options.dim = config.dim;
      options.page_size = config.page_size;
      options.leaf_data_size = config.leaf_data_size;
      options.min_utilization = config.min_utilization;
      options.reinsert_fraction = config.reinsert_fraction;
      return std::make_unique<SRTree>(options);
    }
    case IndexType::kSSTree: {
      SSTree::Options options;
      options.dim = config.dim;
      options.page_size = config.page_size;
      options.leaf_data_size = config.leaf_data_size;
      options.min_utilization = config.min_utilization;
      options.reinsert_fraction = config.reinsert_fraction;
      return std::make_unique<SSTree>(options);
    }
    case IndexType::kRStarTree: {
      RStarTree::Options options;
      options.dim = config.dim;
      options.page_size = config.page_size;
      options.leaf_data_size = config.leaf_data_size;
      options.min_utilization = config.min_utilization;
      options.reinsert_fraction = config.reinsert_fraction;
      return std::make_unique<RStarTree>(options);
    }
    case IndexType::kKdbTree: {
      KdbTree::Options options;
      options.dim = config.dim;
      options.page_size = config.page_size;
      options.leaf_data_size = config.leaf_data_size;
      return std::make_unique<KdbTree>(options);
    }
    case IndexType::kVamSplitRTree: {
      VamSplitRTree::Options options;
      options.dim = config.dim;
      options.page_size = config.page_size;
      options.leaf_data_size = config.leaf_data_size;
      return std::make_unique<VamSplitRTree>(options);
    }
    case IndexType::kXTree: {
      XTree::Options options;
      options.dim = config.dim;
      options.page_size = config.page_size;
      options.leaf_data_size = config.leaf_data_size;
      options.min_utilization = config.min_utilization;
      return std::make_unique<XTree>(options);
    }
    case IndexType::kTvTree: {
      TvRTree::Options options;
      options.dim = config.dim;
      options.page_size = config.page_size;
      options.leaf_data_size = config.leaf_data_size;
      options.min_utilization = config.min_utilization;
      options.reinsert_fraction = config.reinsert_fraction;
      return std::make_unique<TvRTree>(options);
    }
    case IndexType::kScan: {
      BruteForceIndex::Options options;
      options.dim = config.dim;
      options.page_size = config.page_size;
      options.leaf_data_size = config.leaf_data_size;
      return std::make_unique<BruteForceIndex>(options);
    }
    case IndexType::kStaticSRTree: {
      StaticSRTree::Options options;
      options.dim = config.dim;
      options.page_size = config.page_size;
      return std::make_unique<StaticSRTree>(options);
    }
    case IndexType::kTieredSRTree: {
      TieredIndex::Options options;
      options.dim = config.dim;
      options.page_size = config.page_size;
      options.leaf_data_size = config.leaf_data_size;
      options.min_utilization = config.min_utilization;
      options.reinsert_fraction = config.reinsert_fraction;
      return std::make_unique<TieredIndex>(options);
    }
  }
  CHECK(false);
  return nullptr;
}

namespace {

// Adapts a concrete tree's static Open() to the PointIndex result type.
template <typename Tree>
StatusOr<std::unique_ptr<PointIndex>> OpenAs(const std::string& path) {
  StatusOr<std::unique_ptr<Tree>> tree = Tree::Open(path);
  if (!tree.ok()) return tree.status();
  return StatusOr<std::unique_ptr<PointIndex>>(std::move(*tree));
}

}  // namespace

StatusOr<std::unique_ptr<PointIndex>> OpenIndex(const std::string& path) {
  StatusOr<std::string> tag = PeekIndexImageTag(path);
  if (!tag.ok()) return tag.status();
  if (*tag == SRTree::kImageTag) return OpenAs<SRTree>(path);
  if (*tag == "legacy-sr-v1") {
    return Status::InvalidArgument(
        "pre-v2 SR-tree image is no longer readable; re-save with v2 "
        "(PointIndex::Save) using a release that still reads it");
  }
  if (*tag == StaticSRTree::kImageTag) return OpenAs<StaticSRTree>(path);
  if (*tag == TieredIndex::kImageTag) return OpenAs<TieredIndex>(path);
  if (*tag == SSTree::kImageTag) return OpenAs<SSTree>(path);
  if (*tag == RStarTree::kImageTag) return OpenAs<RStarTree>(path);
  if (*tag == KdbTree::kImageTag) return OpenAs<KdbTree>(path);
  if (*tag == VamSplitRTree::kImageTag) return OpenAs<VamSplitRTree>(path);
  if (*tag == XTree::kImageTag) return OpenAs<XTree>(path);
  if (*tag == TvRTree::kImageTag) return OpenAs<TvRTree>(path);
  return Status::Corruption("unknown index image type tag: " + *tag);
}

}  // namespace srtree
