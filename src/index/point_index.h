// PointIndex: the common interface of every index structure in this library.
//
// All five trees (SR, SS, R*, K-D-B, VAMSplit R) plus the brute-force
// baseline implement this interface, which is what lets the experiment
// harness, the invariant checkers, and the property tests treat them
// uniformly.

#ifndef SRTREE_INDEX_POINT_INDEX_H_
#define SRTREE_INDEX_POINT_INDEX_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/geometry/point.h"
#include "src/index/node_view.h"
#include "src/index/query.h"
#include "src/index/region_stats.h"
#include "src/storage/io_stats.h"

namespace srtree {

class EpochManager;
class PointIndex;

// The three traversal hooks every query entry point dispatches to, split
// out of PointIndex so snapshot objects (IndexSnapshot implementations that
// traverse a pinned version) can share the exact validation shell —
// RunValidatedSearch below — with the live index. Implementations are
// called only with a validated spec and a query of the right
// dimensionality; they record every page read into `io` (never null) and
// must be const + re-entrant, carrying all traversal state on the stack.
class SearchDispatch {
 public:
  virtual std::vector<Neighbor> KnnDfsImpl(PointView query, int k,
                                           IoStatsDelta* io) const = 0;
  virtual std::vector<Neighbor> KnnBestFirstImpl(PointView query, int k,
                                                 IoStatsDelta* io) const = 0;
  virtual std::vector<Neighbor> RangeImpl(PointView query, double radius,
                                          IoStatsDelta* io) const = 0;

 protected:
  ~SearchDispatch() = default;  // deleted only through concrete owners
};

// The single validation + dispatch + timing shell behind every Search():
// checks the spec (k >= 1 for the k-NN kinds, radius finite and >= 0 for
// range, query dimensionality == `dim`), returns InvalidArgument with an
// empty neighbor list when malformed (no traversal runs), and otherwise
// routes to the matching SearchDispatch hook, stamping elapsed time either
// way.
[[nodiscard]] QueryResult RunValidatedSearch(const SearchDispatch& dispatch,
                                             int dim, PointView query,
                                             const QuerySpec& spec);

// A read view of an index pinned at acquisition time. What "pinned" means
// is the implementation's contract:
//
//   * This base class is a pass-through for the frozen-tree structures
//     (everything except the SR-tree): no writer may run concurrently by
//     contract, so forwarding to the live index IS a stable snapshot, and
//     version() reports 0.
//   * The SR-tree returns a snapshot-isolated view (see SRTree): queries
//     against it observe exactly the committed version that was current at
//     AcquireSnapshot() time, unaffected by concurrent Insert/Delete
//     commits, and version() reports that committed version.
//
// The snapshot must not outlive the index it was acquired from.
class IndexSnapshot {
 public:
  explicit IndexSnapshot(const PointIndex* index) : index_(index) {}
  virtual ~IndexSnapshot() = default;

  IndexSnapshot(const IndexSnapshot&) = delete;
  IndexSnapshot& operator=(const IndexSnapshot&) = delete;

  // Same contract as PointIndex::Search, evaluated against the pinned view.
  [[nodiscard]] virtual QueryResult Search(PointView query,
                                           const QuerySpec& spec) const;

  // The committed version this snapshot pins, or 0 when the structure has
  // no versioning (frozen-tree pass-through).
  virtual uint64_t version() const { return 0; }

  // Number of points in the pinned view.
  virtual size_t size() const;

 protected:
  const PointIndex* index_;
};

// Structural statistics gathered by walking the tree (no I/O accounting).
struct TreeStats {
  int height = 0;           // number of levels; a lone leaf has height 1
  uint64_t node_count = 0;  // non-leaf pages
  uint64_t leaf_count = 0;  // leaf pages
  uint64_t entry_count = 0; // indexed points
};

// Counters of structural maintenance performed since construction. Which
// fields a structure uses depends on its algorithms: the R*/SS/SR trees
// split and force-reinsert; the K-D-B-tree splits and force-splits
// descendants; static structures report zeros.
struct MaintenanceStats {
  uint64_t splits = 0;         // page splits (leaf or node)
  uint64_t reinsertions = 0;   // forced-reinsertion events
  uint64_t forced_splits = 0;  // K-D-B downward forced splits
};

class PointIndex : private SearchDispatch {
 public:
  virtual ~PointIndex() = default;

  virtual int dim() const = 0;

  // Number of points currently indexed.
  virtual size_t size() const = 0;

  // Short identifier used in reports, e.g. "SR-tree".
  virtual std::string name() const = 0;

  virtual Status Insert(PointView point, uint32_t oid) = 0;

  // Removes one (point, oid) pair. NotFound if absent. Static structures
  // return Unimplemented.
  virtual Status Delete(PointView point, uint32_t oid) = 0;

  // Builds the index from scratch. The default implementation inserts
  // sequentially; bulk-loaded structures (VAMSplit R-tree) override it.
  // Fails if the index is non-empty.
  virtual Status BulkLoad(const std::vector<Point>& points,
                          const std::vector<uint32_t>& oids);

  // Reorganizes the physical representation without changing the logical
  // contents (the tiered index rebuilds its static tier from static + delta
  // and drops its tombstones). Structures without a compaction concept —
  // every single-tier tree — treat it as a no-op.
  virtual Status Compact() { return Status::OK(); }

  // Enumerates every stored (point, oid) pair, in unspecified order. The
  // compaction/merge feed. Unimplemented by default; the SR-tree family
  // members that participate in tiering override it.
  virtual Status ExportEntries(
      const std::function<void(PointView, uint32_t)>& fn) const {
    (void)fn;
    return Status::Unimplemented(name() + " does not support ExportEntries()");
  }

  // Persists the index — options, tree metadata, and the full page file —
  // as a single checksummed image at `path`, written atomically (temp file
  // + fsync + rename; see src/storage/image_io.h): the destination always
  // holds either the previous image or the complete new one. Reopen with
  // OpenIndex() (src/index/index_factory.h) or the concrete tree's static
  // Open(). Structures without a page representation (the brute-force
  // scan) return Unimplemented.
  virtual Status Save(const std::string& path) const {
    (void)path;
    return Status::Unimplemented(name() + " does not support Save()");
  }

  // The unified query entry point. Validates the spec (k >= 1 for the k-NN
  // kinds, radius >= 0 and finite for range, query dimensionality matching
  // dim()) and returns InvalidArgument with an empty neighbor list when it
  // is malformed — no traversal runs. The read path is const and
  // re-entrant: any number of Search() calls may run concurrently. Whether
  // they may also run concurrently with mutations is per-structure: the
  // SR-tree serves every Search() from a pinned committed snapshot and is
  // safe against its (single) writer; the other structures keep the legacy
  // frozen-tree contract — no mutation
  // (Insert/Delete/BulkLoad/ResetIoStats/...) while queries are in flight.
  //
  // Neighbors come back closest first, ties broken by oid:
  //   kKnn          — the paper's depth-first branch-and-bound
  //                   (Roussopoulos et al.); at most k results.
  //   kKnnBestFirst — the same result set via the best-first traversal of
  //                   Hjaltason & Samet, which reads no more pages than any
  //                   algorithm using the same MINDIST bound.
  //   kRange        — all points within spec.radius (closed ball).
  [[nodiscard]] QueryResult Search(PointView query, const QuerySpec& spec) const;

  // Pins a read view of the index (see IndexSnapshot for what that means
  // per structure). The default is the frozen-tree pass-through; the
  // SR-tree overrides it with real snapshot isolation.
  [[nodiscard]] virtual std::unique_ptr<IndexSnapshot> AcquireSnapshot()
      const;

  // Fanout limits implied by the serialized page layout (the paper's
  // Table 1). node_capacity() is 0 for flat structures without nodes.
  virtual size_t leaf_capacity() const = 0;
  virtual size_t node_capacity() const = 0;

  virtual TreeStats GetTreeStats() const = 0;

  // Structural maintenance counters (see MaintenanceStats).
  virtual MaintenanceStats GetMaintenanceStats() const { return {}; }

  // Preorder walk over the index's node pages, presenting each as a
  // tree-agnostic NodeView (see src/index/node_view.h). Uses no I/O
  // accounting. Flat structures visit nothing; that is the default.
  virtual void VisitNodes(const NodeVisitor& visitor) const {
    (void)visitor;
  }

  // Declares which structural rules this index's VisitNodes() output obeys;
  // consumed by debug::StructuralAuditor. The default describes a structure
  // with no nodes.
  virtual AuditSpec GetAuditSpec() const { return {}; }

  // Deep structural validation (region containment, utilization, balance).
  // Used by tests and debug builds; walks pages without I/O accounting.
  // Every tree routes this through debug::StructuralAuditor, which reports
  // the first violation (with its node path) as a Corruption status.
  virtual Status CheckInvariants() const = 0;

  // Geometry of leaf-level regions — volumes and diameters for the
  // Figure 5/6/12/13 experiments.
  virtual RegionSummary LeafRegionSummary() const = 0;

  // Disk access counters for the measurements; reset between experiment
  // phases. io_stats() returns a reference into mutable counters — a
  // dangling/race hazard under the concurrent engine — so it is kept only
  // for the single-threaded paper benches; prefer GetIoStats().
  virtual const IoStats& io_stats() const = 0;

  // Zeroes the global counters. The reset itself is locked in every
  // implementation, but the reset-then-measure pattern it exists for is
  // not: a Search() racing the reset lands its reads on an unknown side of
  // the zeroing, corrupting the measurement. Callers must quiesce the index
  // (join every query thread) before resetting — the contract
  // debug::RunConcurrentQueryFuzz asserts after its workers join.
  // Concurrent-safe accounting uses QueryResult::io deltas instead; srlint
  // rule R1 flags new call sites of this method.
  virtual void ResetIoStats() = 0;

  // By-value snapshot of the global counters, safe to take while queries
  // are in flight (implementations lock against concurrent readers).
  virtual IoStats GetIoStats() const { return io_stats(); }

  // Enables LRU-cache simulation on the underlying page file (see
  // PageFile::SimulateCache). No-op for structures without one.
  virtual void SimulateBufferPool(size_t capacity) { (void)capacity; }

  // Test hook: the epoch-reclamation domain behind this structure's
  // snapshot machinery, or nullptr for frozen-tree structures that have
  // none. The mixed read/write fuzz uses it to assert the retire backlog
  // drains to zero once every reader has quiesced — the leak check epoch
  // reclamation owes its callers.
  virtual EpochManager* epoch_domain_for_test() const { return nullptr; }

  // Routes the query read path through a real sharded BufferPool of
  // `capacity` pages over the structure's page file (0 detaches it). Pool
  // hits cost no disk read, so the paper's uncached figures require the
  // default detached state. No-op for structures without pages. Not
  // thread-safe against in-flight queries.
  virtual void UseBufferPool(size_t capacity) { (void)capacity; }

 protected:
  // Traversal hooks behind Search(), inherited from SearchDispatch (see its
  // contract comment). Redeclared here — still pure — so they are protected
  // members of every index: the base is a private one, and implementations
  // override these, not callers.
  std::vector<Neighbor> KnnDfsImpl(PointView query, int k,
                                   IoStatsDelta* io) const override = 0;
  std::vector<Neighbor> KnnBestFirstImpl(PointView query, int k,
                                         IoStatsDelta* io) const override = 0;
  std::vector<Neighbor> RangeImpl(PointView query, double radius,
                                  IoStatsDelta* io) const override = 0;
};

}  // namespace srtree

#endif  // SRTREE_INDEX_POINT_INDEX_H_
