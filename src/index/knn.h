// Bounded candidate set for the depth-first k-NN search of Roussopoulos,
// Kelley & Vincent (SIGMOD'95), shared by every tree.
//
// The set operates in SQUARED distance space: leaf scans feed it squared L2
// distances straight from the DistanceKernel (no sqrt on the hot path), and
// regions are pruned against PruneDistanceSquared(). Squared-space
// comparisons are exact — sqrt is monotone, so the k best by squared
// distance are the k best by distance — and rectangle MINDIST pruning gets
// strictly more faithful because neither side passes through a sqrt
// rounding. TakeSorted() converts to real distances at the end (one sqrt
// per reported neighbor) and sorts by the canonical (distance, oid) order.
//
// PruneDistance() exposes the bound in distance space for the sphere-region
// trees (SS/SR), whose MINDIST is inherently a distance.

#ifndef SRTREE_INDEX_KNN_H_
#define SRTREE_INDEX_KNN_H_

#include <queue>
#include <vector>

#include "src/index/point_index.h"

namespace srtree {

class KnnCandidates {
 public:
  explicit KnnCandidates(int k);

  // Current pruning radius: infinite until the set fills, then the current
  // k-th distance. A region whose MINDIST exceeds this cannot contribute.
  double PruneDistance() const;

  // The same bound in squared space, for squared-MINDIST comparisons.
  double PruneDistanceSquared() const;

  // Offers a candidate by SQUARED distance; kept only if it beats the
  // current k-th. Ties are broken toward smaller oid for determinism.
  void OfferSquared(double distance_sq, uint32_t oid);

  bool full() const { return static_cast<int>(heap_.size()) == k_; }

  // Extracts the final result, closest first, with real distances.
  std::vector<Neighbor> TakeSorted();

 private:
  struct Worse {
    bool operator()(const Neighbor& a, const Neighbor& b) const {
      return a < b;  // canonical (distance, oid): larger = worse, on top
    }
  };

  int k_;
  // Heap entries carry squared distances in Neighbor::distance until
  // TakeSorted() converts them.
  std::priority_queue<Neighbor, std::vector<Neighbor>, Worse> heap_;
};

}  // namespace srtree

#endif  // SRTREE_INDEX_KNN_H_
