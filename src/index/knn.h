// Bounded candidate set for the depth-first k-NN search of Roussopoulos,
// Kelley & Vincent (SIGMOD'95), shared by every tree.
//
// The set keeps the k best (distance, oid) pairs seen so far in a max-heap;
// PruneDistance() is the radius below which a region can still contribute —
// infinite until the set fills, then the current k-th distance.

#ifndef SRTREE_INDEX_KNN_H_
#define SRTREE_INDEX_KNN_H_

#include <queue>
#include <vector>

#include "src/index/point_index.h"

namespace srtree {

class KnnCandidates {
 public:
  explicit KnnCandidates(int k);

  // Current pruning radius (see above). A subtree whose MINDIST exceeds
  // this cannot improve the result set.
  double PruneDistance() const;

  // Offers a candidate; kept only if it beats the current k-th distance.
  // Ties on distance are broken toward smaller oid for determinism.
  void Offer(double distance, uint32_t oid);

  bool full() const { return static_cast<int>(heap_.size()) == k_; }

  // Extracts the final result, closest first.
  std::vector<Neighbor> TakeSorted();

 private:
  struct Worse {
    bool operator()(const Neighbor& a, const Neighbor& b) const {
      return a < b;  // canonical (distance, oid): larger = worse, on top
    }
  };

  int k_;
  std::priority_queue<Neighbor, std::vector<Neighbor>, Worse> heap_;
};

}  // namespace srtree

#endif  // SRTREE_INDEX_KNN_H_
