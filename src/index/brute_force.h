// Linear-scan index: ground truth for tests and the "no index" baseline.
//
// Disk accounting models a sequential scan: each query charges the number
// of 8 KB blocks a flat file of (point + 512-byte data area) entries would
// occupy, which makes the brute-force baseline comparable to the trees in
// the harness.

#ifndef SRTREE_INDEX_BRUTE_FORCE_H_
#define SRTREE_INDEX_BRUTE_FORCE_H_

#include <vector>

#include "src/base/mutex.h"
#include "src/base/thread_annotations.h"
#include "src/index/point_index.h"
#include "src/storage/page.h"

namespace srtree {

class BruteForceIndex : public PointIndex {
 public:
  struct Options {
    int dim = 2;
    size_t page_size = kDefaultPageSize;
    size_t leaf_data_size = 512;
  };

  explicit BruteForceIndex(const Options& options);

  int dim() const override { return options_.dim; }
  size_t size() const override { return points_.size(); }
  std::string name() const override { return "scan"; }

  Status Insert(PointView point, uint32_t oid) override;
  Status Delete(PointView point, uint32_t oid) override;

  // A scan file packs leaf entries sequentially; there are no nodes.
  size_t leaf_capacity() const override;
  size_t node_capacity() const override { return 0; }

  TreeStats GetTreeStats() const override;
  Status CheckInvariants() const override { return Status::OK(); }
  RegionSummary LeafRegionSummary() const override { return {}; }

  // DEPRECATED: unsynchronized reference into the counters; sound only
  // under the external-exclusion contract (no concurrent Search() while the
  // reference is read) that the analysis opt-out stands in for.
  const IoStats& io_stats() const override NO_THREAD_SAFETY_ANALYSIS {
    return stats_;
  }
  // The reset itself is locked, but the reset-then-peek *measurement
  // pattern* is not: queries running between the reset and the peek corrupt
  // the reading. Callers must exclude concurrent Search() around the whole
  // pattern (the concurrent fuzzer asserts the quiesced-reset contract);
  // new code uses Search()'s per-query deltas instead. srlint rule R1
  // flags any new call site.
  void ResetIoStats() override EXCLUDES(stats_mu_) {
    MutexLock lock(stats_mu_);
    stats_.Reset();
  }
  IoStats GetIoStats() const override EXCLUDES(stats_mu_) {
    MutexLock lock(stats_mu_);
    return stats_;
  }

 protected:
  std::vector<Neighbor> KnnDfsImpl(PointView query, int k,
                                   IoStatsDelta* io) const override;
  std::vector<Neighbor> KnnBestFirstImpl(PointView query, int k,
                                         IoStatsDelta* io) const override {
    return KnnDfsImpl(query, k, io);  // a scan has no traversal order
  }
  std::vector<Neighbor> RangeImpl(PointView query, double radius,
                                  IoStatsDelta* io) const override;

 private:
  void ChargeScan(IoStatsDelta* io) const EXCLUDES(stats_mu_);

  const Options options_;
  std::vector<Point> points_ UNGUARDED_OK(
      "frozen-tree contract: mutations require external exclusion");
  std::vector<uint32_t> oids_ UNGUARDED_OK(
      "frozen-tree contract: mutations require external exclusion");
  // Queries are const yet charge simulated scan reads, so the global
  // counters are mutable and locked; per-query deltas need no lock.
  mutable Mutex stats_mu_;
  mutable IoStats stats_ GUARDED_BY(stats_mu_);
};

}  // namespace srtree

#endif  // SRTREE_INDEX_BRUTE_FORCE_H_
