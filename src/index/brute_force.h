// Linear-scan index: ground truth for tests and the "no index" baseline.
//
// Disk accounting models a sequential scan: each query charges the number
// of 8 KB blocks a flat file of (point + 512-byte data area) entries would
// occupy, which makes the brute-force baseline comparable to the trees in
// the harness.

#ifndef SRTREE_INDEX_BRUTE_FORCE_H_
#define SRTREE_INDEX_BRUTE_FORCE_H_

#include <mutex>
#include <vector>

#include "src/index/point_index.h"
#include "src/storage/page.h"

namespace srtree {

class BruteForceIndex : public PointIndex {
 public:
  struct Options {
    int dim = 2;
    size_t page_size = kDefaultPageSize;
    size_t leaf_data_size = 512;
  };

  explicit BruteForceIndex(const Options& options);

  int dim() const override { return options_.dim; }
  size_t size() const override { return points_.size(); }
  std::string name() const override { return "scan"; }

  Status Insert(PointView point, uint32_t oid) override;
  Status Delete(PointView point, uint32_t oid) override;

  // A scan file packs leaf entries sequentially; there are no nodes.
  size_t leaf_capacity() const override;
  size_t node_capacity() const override { return 0; }

  TreeStats GetTreeStats() const override;
  Status CheckInvariants() const override { return Status::OK(); }
  RegionSummary LeafRegionSummary() const override { return {}; }

  const IoStats& io_stats() const override { return stats_; }
  void ResetIoStats() override {
    std::lock_guard<std::mutex> lock(stats_mu_);
    stats_.Reset();
  }
  IoStats GetIoStats() const override {
    std::lock_guard<std::mutex> lock(stats_mu_);
    return stats_;
  }

 protected:
  std::vector<Neighbor> KnnDfsImpl(PointView query, int k,
                                   IoStatsDelta* io) const override;
  std::vector<Neighbor> KnnBestFirstImpl(PointView query, int k,
                                         IoStatsDelta* io) const override {
    return KnnDfsImpl(query, k, io);  // a scan has no traversal order
  }
  std::vector<Neighbor> RangeImpl(PointView query, double radius,
                                  IoStatsDelta* io) const override;

 private:
  void ChargeScan(IoStatsDelta* io) const;

  Options options_;
  std::vector<Point> points_;
  std::vector<uint32_t> oids_;
  // Queries are const yet charge simulated scan reads, so the global
  // counters are mutable and locked; per-query deltas need no lock.
  mutable std::mutex stats_mu_;
  mutable IoStats stats_;
};

}  // namespace srtree

#endif  // SRTREE_INDEX_BRUTE_FORCE_H_
