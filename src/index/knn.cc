#include "src/index/knn.h"

#include <algorithm>
#include <limits>

#include "src/common/check.h"

namespace srtree {

KnnCandidates::KnnCandidates(int k) : k_(k) { CHECK_GT(k, 0); }

double KnnCandidates::PruneDistance() const {
  if (!full()) return std::numeric_limits<double>::infinity();
  return heap_.top().distance;
}

void KnnCandidates::Offer(double distance, uint32_t oid) {
  const Neighbor candidate{distance, oid};
  if (!full()) {
    heap_.push(candidate);
    return;
  }
  if (Worse()(candidate, heap_.top())) {
    heap_.pop();
    heap_.push(candidate);
  }
}

std::vector<Neighbor> KnnCandidates::TakeSorted() {
  std::vector<Neighbor> result;
  result.reserve(heap_.size());
  while (!heap_.empty()) {
    result.push_back(heap_.top());
    heap_.pop();
  }
  std::reverse(result.begin(), result.end());
  return result;
}

}  // namespace srtree
