#include "src/index/knn.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "src/common/check.h"

namespace srtree {

KnnCandidates::KnnCandidates(int k) : k_(k) { CHECK_GT(k, 0); }

double KnnCandidates::PruneDistance() const {
  if (!full()) return std::numeric_limits<double>::infinity();
  return std::sqrt(heap_.top().distance);
}

double KnnCandidates::PruneDistanceSquared() const {
  if (!full()) return std::numeric_limits<double>::infinity();
  return heap_.top().distance;
}

void KnnCandidates::OfferSquared(double distance_sq, uint32_t oid) {
  const Neighbor candidate{distance_sq, oid};
  if (!full()) {
    heap_.push(candidate);
    return;
  }
  if (Worse()(candidate, heap_.top())) {
    heap_.pop();
    heap_.push(candidate);
  }
}

std::vector<Neighbor> KnnCandidates::TakeSorted() {
  std::vector<Neighbor> result;
  result.reserve(heap_.size());
  while (!heap_.empty()) {
    Neighbor n = heap_.top();
    heap_.pop();
    n.distance = std::sqrt(n.distance);
    result.push_back(n);
  }
  // Selection happened in squared space; the canonical order is by real
  // distance, and sqrt can map distinct squared values to one double, so
  // re-sort rather than just reverse.
  std::sort(result.begin(), result.end());
  return result;
}

}  // namespace srtree
