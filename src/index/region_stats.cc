#include "src/index/region_stats.h"

namespace srtree {

void RegionStatsCollector::AddSphere(const Sphere& sphere) {
  ++sphere_count_;
  sphere_volume_sum_ += sphere.Volume();
  sphere_diameter_sum_ += sphere.Diameter();
}

void RegionStatsCollector::AddRect(const Rect& rect) {
  ++rect_count_;
  rect_volume_sum_ += rect.Volume();
  rect_diagonal_sum_ += rect.Diagonal();
}

RegionSummary RegionStatsCollector::Finish() const {
  RegionSummary summary;
  summary.leaf_count = leaf_count_;
  summary.has_spheres = sphere_count_ > 0;
  summary.has_rects = rect_count_ > 0;
  if (sphere_count_ > 0) {
    summary.avg_sphere_volume = sphere_volume_sum_ / sphere_count_;
    summary.avg_sphere_diameter = sphere_diameter_sum_ / sphere_count_;
  }
  if (rect_count_ > 0) {
    summary.avg_rect_volume = rect_volume_sum_ / rect_count_;
    summary.avg_rect_diagonal = rect_diagonal_sum_ / rect_count_;
  }
  return summary;
}

}  // namespace srtree
