// Aggregation of leaf-region geometry (Figures 5, 6, 12, 13).
//
// For sphere-shaped regions the "diameter" is 2r; for rectangles it is the
// main diagonal — exactly the quantities the paper plots. The SR-tree
// reports both of its shapes; its true region (the intersection) is bounded
// above by each, as Section 5.2 notes.

#ifndef SRTREE_INDEX_REGION_STATS_H_
#define SRTREE_INDEX_REGION_STATS_H_

#include <cstdint>

#include "src/geometry/rect.h"
#include "src/geometry/sphere.h"

namespace srtree {

struct RegionSummary {
  uint64_t leaf_count = 0;
  bool has_spheres = false;
  bool has_rects = false;
  double avg_sphere_volume = 0.0;
  double avg_sphere_diameter = 0.0;
  double avg_rect_volume = 0.0;
  double avg_rect_diagonal = 0.0;
};

class RegionStatsCollector {
 public:
  void AddSphere(const Sphere& sphere);
  void AddRect(const Rect& rect);

  // Marks one leaf processed (a leaf may contribute a sphere, a rect, or —
  // for the SR-tree — both).
  void CountLeaf() { ++leaf_count_; }

  RegionSummary Finish() const;

 private:
  uint64_t leaf_count_ = 0;
  uint64_t sphere_count_ = 0;
  uint64_t rect_count_ = 0;
  double sphere_volume_sum_ = 0.0;
  double sphere_diameter_sum_ = 0.0;
  double rect_volume_sum_ = 0.0;
  double rect_diagonal_sum_ = 0.0;
};

}  // namespace srtree

#endif  // SRTREE_INDEX_REGION_STATS_H_
