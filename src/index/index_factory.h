// Index factory: the one place that names every concrete index structure.
//
// Everything downstream of the PointIndex interface — the experiment
// harness, the benches, the CLI, the query engine — constructs indexes
// through MakeIndex() so it never includes a tree header itself. srlint
// rule R3 holds src/engine/ and src/benchlib/ to that layering.

#ifndef SRTREE_INDEX_INDEX_FACTORY_H_
#define SRTREE_INDEX_INDEX_FACTORY_H_

#include <memory>
#include <string>
#include <vector>

#include "src/index/point_index.h"

namespace srtree {

enum class IndexType {
  kSRTree,
  kSSTree,
  kRStarTree,
  kKdbTree,
  kVamSplitRTree,
  kXTree,   // extension: Section 2.6 related work, not in the paper's tests
  kTvTree,  // extension: Section 2.5 related work (fixed-telescope TV-tree)
  kScan,
  // Tiered serving arrangement (src/statictier/): an immutable bulk tier
  // plus the dynamic SR-tree delta, and the bulk tier on its own.
  kStaticSRTree,
  kTieredSRTree,
};

const char* IndexTypeName(IndexType type);

// The five index structures of the paper's evaluation.
std::vector<IndexType> AllTreeTypes();
// The dynamic trees whose insertion cost Figure 9 compares.
std::vector<IndexType> DynamicTreeTypes();

struct IndexConfig {
  int dim = 16;
  size_t page_size = 8192;
  size_t leaf_data_size = 512;
  double min_utilization = 0.4;
  double reinsert_fraction = 0.3;
};

std::unique_ptr<PointIndex> MakeIndex(IndexType type,
                                      const IndexConfig& config);

// Opens an index image written by PointIndex::Save(), dispatching on the
// type tag embedded in the file (including the legacy pre-v2 SR-tree
// format). The returned index is fully validated: a corrupt, truncated, or
// foreign file yields a non-OK status, never a crash or a silently broken
// tree.
StatusOr<std::unique_ptr<PointIndex>> OpenIndex(const std::string& path);

}  // namespace srtree

#endif  // SRTREE_INDEX_INDEX_FACTORY_H_
