// Tree-agnostic structural introspection: the vocabulary through which any
// PointIndex exposes its node pages to external walkers.
//
// PointIndex::VisitNodes() presents every node as a NodeView — level,
// fanout limits, the regions recorded for each child, and the leaf points —
// without leaking any tree's private Node type. PointIndex::GetAuditSpec()
// declares which structural rules those views must obey (exact MBRs vs.
// disjoint K-D-B partitions, bounding spheres, entry weights, ...). The
// debug::StructuralAuditor consumes both to verify the shared invariants of
// all six tree variants with one implementation.

#ifndef SRTREE_INDEX_NODE_VIEW_H_
#define SRTREE_INDEX_NODE_VIEW_H_

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "src/geometry/point.h"
#include "src/geometry/rect.h"
#include "src/geometry/sphere.h"

namespace srtree {

// One child entry of an internal node, as recorded in the parent page.
// Pointers refer to tree-owned storage and are valid only for the duration
// of the NodeVisitor callback.
struct EntryView {
  const Rect* rect = nullptr;      // nullptr when the tree stores no rect
  const Sphere* sphere = nullptr;  // nullptr when the tree stores no sphere
  uint64_t weight = 0;             // claimed subtree point count
  bool has_weight = false;         // false when the tree tracks no weights
};

// Snapshot of one node page. `capacity`/`min_entries` are the fanout limits
// for THIS node (X-tree supernodes have multi-page capacities; bulk-loaded
// structures report min_entries = 0, meaning "no minimum is enforced").
struct NodeView {
  int level = 0;              // 0 = leaf
  size_t capacity = 0;        // maximum entries this node may hold
  size_t min_entries = 0;     // structural minimum for non-root nodes
  size_t page_count = 1;      // pages occupied (> 1 only for supernodes)
  size_t per_page_capacity = 0;  // entries per page; 0 = single-page layout
  std::vector<EntryView> entries;  // internal node: one per child
  std::vector<PointView> points;   // leaf node: the stored points
};

// Callback invoked once per node in preorder (parent before children).
// `path` is the sequence of child indexes from the root; empty = root.
using NodeVisitor =
    std::function<void(const std::vector<int>& path, const NodeView& node)>;

// What the rectangles recorded in parent entries mean for a given tree.
enum class RectSemantics {
  kNone,      // the tree stores no rectangles (SS-tree)
  kExactMbr,  // entry rect == exact MBR of the child's contents (R*-family)
  kPartition, // child regions tile the parent region disjointly (K-D-B)
};

// The structural rules a tree's VisitNodes() output must satisfy, consumed
// by debug::StructuralAuditor. The defaults describe a flat structure with
// no nodes (brute-force scan), for which every check is vacuous.
struct AuditSpec {
  // Dimensionality of the stored shapes. The TV-tree stores regions over
  // its active subspace only, so this may be smaller than PointIndex::dim().
  int dim = 0;
  RectSemantics rect_semantics = RectSemantics::kNone;
  // Entry spheres must contain every point of their subtree (SS/SR).
  bool has_spheres = false;
  // SR-tree Section 4.2: radius = min(d_s, d_r) implies the sphere never
  // exceeds the farthest corner of the entry's own rectangle.
  bool sphere_bounded_by_rect = false;
  // Entry weights must equal the actual subtree point counts (SS/SR).
  bool has_weights = false;
  // An internal root must hold at least two children.
  bool internal_root_min2 = false;
  // kPartition only: the region the root is responsible for tiling.
  std::optional<Rect> domain;
};

}  // namespace srtree

#endif  // SRTREE_INDEX_NODE_VIEW_H_
