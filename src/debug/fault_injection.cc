#include "src/debug/fault_injection.h"

#include <algorithm>
#include <cmath>
#include <memory>
#include <utility>
#include <vector>

#include "src/common/check.h"
#include "src/common/random.h"
#include "src/index/point_index.h"

namespace srtree::debug {
namespace {

// Same tolerance rationale as the mutation fuzzer: index and oracle compute
// distances with the same arithmetic, so this only absorbs benign
// summation-order differences.
constexpr double kDistEps = 1e-9;

using QueryList = std::vector<std::pair<Point, int>>;

std::vector<std::vector<Neighbor>> Answers(const PointIndex& index,
                                           const QueryList& queries) {
  std::vector<std::vector<Neighbor>> out;
  out.reserve(queries.size());
  for (const auto& [point, k] : queries) {
    out.push_back(index.Search(point, QuerySpec::Knn(k)).neighbors);
  }
  return out;
}

bool SameAnswers(const std::vector<std::vector<Neighbor>>& a,
                 const std::vector<std::vector<Neighbor>>& b) {
  if (a.size() != b.size()) return false;
  for (size_t q = 0; q < a.size(); ++q) {
    if (a[q].size() != b[q].size()) return false;
    for (size_t i = 0; i < a[q].size(); ++i) {
      if (a[q][i].oid != b[q][i].oid ||
          std::abs(a[q][i].distance - b[q][i].distance) > kDistEps) {
        return false;
      }
    }
  }
  return true;
}

StatusOr<std::unique_ptr<PointIndex>> BuildIndex(
    IndexType type, const IndexConfig& config, const std::vector<Point>& pts,
    const std::vector<uint32_t>& oids) {
  std::unique_ptr<PointIndex> index = MakeIndex(type, config);
  RETURN_IF_ERROR(index->BulkLoad(pts, oids));
  return StatusOr<std::unique_ptr<PointIndex>>(std::move(index));
}

}  // namespace

const char* FaultKindName(FaultKind kind) {
  switch (kind) {
    case FaultKind::kShortWrite:
      return "short-write";
    case FaultKind::kFailedFlush:
      return "failed-flush";
    case FaultKind::kFailedRename:
      return "failed-rename";
    case FaultKind::kTruncate:
      return "truncate";
    case FaultKind::kTornWrite:
      return "torn-write";
    case FaultKind::kBitFlip:
      return "bit-flip";
  }
  return "unknown";
}

void FaultInjector::Arm(FaultKind kind, double fraction) {
  CHECK(kind == FaultKind::kShortWrite || kind == FaultKind::kFailedFlush ||
        kind == FaultKind::kFailedRename);
  kind_ = kind;
  fraction_ = fraction;
  armed_ = true;
}

bool FaultInjector::OnWrite(std::string* image) {
  if (!armed_ || kind_ != FaultKind::kShortWrite) return true;
  armed_ = false;
  ++faults_delivered_;
  image->resize(static_cast<size_t>(fraction_ * image->size()));
  return false;
}

bool FaultInjector::OnFlush() {
  if (!armed_ || kind_ != FaultKind::kFailedFlush) return true;
  armed_ = false;
  ++faults_delivered_;
  return false;
}

bool FaultInjector::OnRename() {
  if (!armed_ || kind_ != FaultKind::kFailedRename) return true;
  armed_ = false;
  ++faults_delivered_;
  return false;
}

std::string FlipBit(const std::string& image, size_t bit) {
  CHECK_LT(bit, image.size() * 8);
  std::string out = image;
  out[bit / 8] = static_cast<char>(out[bit / 8] ^ (1 << (bit % 8)));
  return out;
}

std::string SpliceImages(const std::string& newer, const std::string& older,
                         size_t boundary) {
  const size_t cut = std::min(boundary, newer.size());
  std::string out = newer.substr(0, cut);
  if (older.size() > cut) out += older.substr(cut);
  return out;
}

Status RunPersistenceFaultFuzz(IndexType type,
                               const PersistenceFaultFuzzOptions& options) {
  IndexConfig config;
  config.dim = options.dim;
  config.page_size = options.page_size;
  config.leaf_data_size = options.leaf_data_size;

  Xoshiro256 rng(options.seed);
  const auto random_point = [&]() {
    Point p(static_cast<size_t>(options.dim));
    for (double& c : p) c = rng.NextDouble();
    return p;
  };
  const auto make_queries = [&]() {
    QueryList queries;
    queries.reserve(static_cast<size_t>(options.queries_per_check));
    for (int q = 0; q < options.queries_per_check; ++q) {
      queries.emplace_back(
          random_point(),
          1 + static_cast<int>(rng.NextBounded(
                  static_cast<uint64_t>(options.max_k))));
    }
    return queries;
  };

  // Two saved states: the planted "old" image A and the "new" image B a
  // torn overwrite mixes in. B is a superset of A so the pair models a
  // save, more inserts, and a crashed re-save.
  std::vector<Point> points_a;
  std::vector<uint32_t> oids_a;
  for (size_t i = 0; i < options.num_points; ++i) {
    points_a.push_back(random_point());
    oids_a.push_back(static_cast<uint32_t>(i));
  }
  std::vector<Point> points_b = points_a;
  std::vector<uint32_t> oids_b = oids_a;
  for (size_t i = 0; i < options.extra_points; ++i) {
    points_b.push_back(random_point());
    oids_b.push_back(static_cast<uint32_t>(options.num_points + i));
  }

  StatusOr<std::unique_ptr<PointIndex>> index_a =
      BuildIndex(type, config, points_a, oids_a);
  RETURN_IF_ERROR(index_a.status());
  StatusOr<std::unique_ptr<PointIndex>> index_b =
      BuildIndex(type, config, points_b, oids_b);
  RETURN_IF_ERROR(index_b.status());
  StatusOr<std::unique_ptr<PointIndex>> oracle_a =
      BuildIndex(IndexType::kScan, config, points_a, oids_a);
  RETURN_IF_ERROR(oracle_a.status());
  StatusOr<std::unique_ptr<PointIndex>> oracle_b =
      BuildIndex(IndexType::kScan, config, points_b, oids_b);
  RETURN_IF_ERROR(oracle_b.status());

  const std::string stem =
      options.scratch_dir + "/fault_fuzz_" +
      std::to_string(static_cast<int>(type)) + "_" +
      std::to_string(options.seed);
  const std::string path_a = stem + "_a.img";
  const std::string path_b = stem + "_b.img";
  const std::string target = stem + "_target.img";

  RETURN_IF_ERROR((*index_a)->Save(path_a));
  RETURN_IF_ERROR((*index_b)->Save(path_b));
  std::string image_a, image_b;
  RETURN_IF_ERROR(ReadFileToString(path_a, &image_a));
  RETURN_IF_ERROR(ReadFileToString(path_b, &image_b));
  RETURN_IF_ERROR(WriteStringToFileForTest(image_a, target));

  // "" on success, else a description of how the loaded index is wrong.
  const auto verify_loaded = [&](PointIndex& loaded) -> std::string {
    const Status audit = loaded.CheckInvariants();
    if (!audit.ok()) {
      return "loaded index fails the auditor: " + audit.ToString();
    }
    const QueryList queries = make_queries();
    const auto got = Answers(loaded, queries);
    if (SameAnswers(got, Answers(**oracle_a, queries))) return "";
    if (SameAnswers(got, Answers(**oracle_b, queries))) return "";
    return "loaded index answers k-NN like neither saved state";
  };

  FaultInjector injector;
  for (size_t round = 0; round < options.num_faults; ++round) {
    const FaultKind kind = static_cast<FaultKind>(round % kNumFaultKinds);
    const auto fail = [&](const std::string& message) {
      return Status::Corruption(
          "persistence fault fuzz: seed=" + std::to_string(options.seed) +
          " type=" + IndexTypeName(type) + " round=" + std::to_string(round) +
          " fault=" + FaultKindName(kind) + ": " + message);
    };

    if (kind == FaultKind::kShortWrite || kind == FaultKind::kFailedFlush ||
        kind == FaultKind::kFailedRename) {
      // Fault DURING a save of the newer state over the planted old image.
      injector.Arm(kind, rng.NextDouble());
      SetSaveFailpointsForTest(&injector);
      const Status save_status = (*index_b)->Save(target);
      SetSaveFailpointsForTest(nullptr);
      if (save_status.ok()) {
        return fail("Save() reported success under an injected fault");
      }
      std::string bytes;
      RETURN_IF_ERROR(ReadFileToString(target, &bytes));
      if (bytes != image_a) {
        return fail("failed Save() disturbed the previous on-disk image");
      }
      std::string tmp_bytes;
      if (ReadFileToString(target + ".tmp", &tmp_bytes).ok()) {
        return fail("failed Save() left its temp file behind");
      }
    } else {
      // Corrupt the image bytes the way a crashed or lying disk would.
      std::string corrupted;
      if (kind == FaultKind::kTruncate) {
        corrupted = image_a.substr(0, rng.NextBounded(image_a.size()));
      } else if (kind == FaultKind::kBitFlip) {
        corrupted = FlipBit(image_a, rng.NextBounded(image_a.size() * 8));
      } else {
        const size_t max_pages =
            std::min(image_a.size(), image_b.size()) / options.page_size;
        corrupted = SpliceImages(image_b, image_a,
                                 rng.NextBounded(max_pages + 1) *
                                     options.page_size);
      }
      RETURN_IF_ERROR(WriteStringToFileForTest(corrupted, target));
      StatusOr<std::unique_ptr<PointIndex>> loaded = OpenIndex(target);
      if (loaded.ok()) {
        const std::string error = verify_loaded(**loaded);
        if (!error.empty()) return fail(error);
      } else if (!loaded.status().IsCorruption() &&
                 !loaded.status().IsInvalidArgument()) {
        return fail("load failed with an unexpected status: " +
                    loaded.status().ToString());
      }
      RETURN_IF_ERROR(WriteStringToFileForTest(image_a, target));
    }

    // Periodically confirm the fault loop has disturbed neither the
    // pristine image nor the in-memory index the failed saves came from.
    if (round % 64 == 0) {
      StatusOr<std::unique_ptr<PointIndex>> reopened = OpenIndex(target);
      if (!reopened.ok()) {
        return fail("pristine image no longer loads: " +
                    reopened.status().ToString());
      }
      const std::string error = verify_loaded(**reopened);
      if (!error.empty()) return fail(error);
      const QueryList queries = make_queries();
      if (!SameAnswers(Answers(**index_b, queries),
                       Answers(**oracle_b, queries))) {
        return fail("in-memory index disturbed by failed saves");
      }
    }
  }

  // Close the loop: with no fault armed, the newer state saves and reopens
  // cleanly over the battered target path.
  RETURN_IF_ERROR((*index_b)->Save(target));
  StatusOr<std::unique_ptr<PointIndex>> final_index = OpenIndex(target);
  RETURN_IF_ERROR(final_index.status());
  RETURN_IF_ERROR((*final_index)->CheckInvariants());
  const QueryList queries = make_queries();
  if (!SameAnswers(Answers(**final_index, queries),
                   Answers(**oracle_b, queries))) {
    return Status::Corruption(
        "persistence fault fuzz: final clean round-trip diverged from the "
        "oracle (seed=" + std::to_string(options.seed) + ")");
  }
  return Status::OK();
}

}  // namespace srtree::debug
