#include "src/debug/fuzzer.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "src/base/mutex.h"
#include "src/common/check.h"
#include "src/common/random.h"
#include "src/debug/structural_auditor.h"
#include "src/geometry/kernel.h"
#include "src/index/brute_force.h"
#include "src/storage/epoch.h"

namespace srtree::debug {
namespace {

// Distances are computed by the same kernel on the same doubles in the
// index and the oracle, so in practice they agree bitwise; the tolerance
// only guards against benign summation-order differences.
constexpr double kDistEps = 1e-9;

std::string FormatNeighbors(const std::vector<Neighbor>& n, size_t limit = 8) {
  std::string s = "[";
  for (size_t i = 0; i < n.size() && i < limit; ++i) {
    if (i > 0) s += ", ";
    s += "(" + std::to_string(n[i].oid) + ", d=" +
         std::to_string(n[i].distance) + ")";
  }
  if (n.size() > limit) s += ", ...";
  return s + "]";
}

}  // namespace

Status RunConcurrentQueryFuzz(PointIndex& index,
                              const ConcurrentFuzzOptions& options) {
  if (index.size() != 0) {
    return Status::InvalidArgument(
        "RunConcurrentQueryFuzz needs an empty index to load");
  }
  const int dim = index.dim();
  CHECK_GT(options.num_threads, 0);
  // Schedule generation and the post-reset probe both index into `points`;
  // a zero-point run has nothing to fuzz against.
  CHECK_GT(options.num_points, 0u);

  Xoshiro256 rng(options.seed);
  const auto random_point = [&](Xoshiro256& r) {
    Point p(static_cast<size_t>(dim));
    for (double& c : p) c = r.Uniform(options.coord_lo, options.coord_hi);
    return p;
  };

  std::vector<Point> points;
  std::vector<uint32_t> oids;
  points.reserve(options.num_points);
  for (size_t i = 0; i < options.num_points; ++i) {
    points.push_back(random_point(rng));
    oids.push_back(static_cast<uint32_t>(i));
  }
  RETURN_IF_ERROR(index.BulkLoad(points, oids));

  BruteForceIndex::Options oracle_options;
  oracle_options.dim = dim;
  BruteForceIndex oracle(oracle_options);
  RETURN_IF_ERROR(oracle.BulkLoad(points, oids));

  if (options.buffer_pool_pages > 0) {
    index.UseBufferPool(options.buffer_pool_pages);
  }
  const IoStats before = index.GetIoStats();

  // Pre-generate every thread's schedule so the run is deterministic no
  // matter how the threads interleave.
  struct FuzzQuery {
    Point point;
    QuerySpec spec;
  };
  std::vector<std::vector<FuzzQuery>> schedules(options.num_threads);
  for (int t = 0; t < options.num_threads; ++t) {
    Xoshiro256 trng(options.seed + 0x9e3779b9u * (t + 1));
    schedules[t].reserve(options.queries_per_thread);
    for (size_t i = 0; i < options.queries_per_thread; ++i) {
      FuzzQuery fq;
      if (trng.NextDouble() < 0.5) {
        fq.point = points[trng.NextBounded(points.size())];
        const double scale = 0.01 * (options.coord_hi - options.coord_lo);
        for (double& c : fq.point) c += trng.Gaussian() * scale;
      } else {
        fq.point = random_point(trng);
      }
      switch (i % 3) {
        case 0:
          fq.spec = QuerySpec::Knn(
              1 + static_cast<int>(trng.NextBounded(
                      static_cast<uint64_t>(options.max_k))));
          break;
        case 1:
          fq.spec = QuerySpec::KnnBestFirst(
              1 + static_cast<int>(trng.NextBounded(
                      static_cast<uint64_t>(options.max_k))));
          break;
        default: {
          const Point& anchor = points[trng.NextBounded(points.size())];
          fq.spec = QuerySpec::Range(GetDistanceKernel().L2(fq.point, anchor) *
                                     trng.Uniform(0.8, 1.2));
          break;
        }
      }
      schedules[t].push_back(std::move(fq));
    }
  }

  Mutex fail_mu;
  std::vector<std::string> failures;
  std::vector<IoStatsDelta> per_thread_io(options.num_threads);

  const auto worker = [&](int t) {
    IoStatsDelta io_sum;
    for (size_t i = 0; i < schedules[t].size(); ++i) {
      const FuzzQuery& fq = schedules[t][i];
      const QueryResult got = index.Search(fq.point, fq.spec);
      const QueryResult want = oracle.Search(fq.point, fq.spec);
      io_sum.MergeFrom(got.io);
      std::string error;
      if (!got.status.ok()) {
        error = "status not OK: " + got.status.ToString();
      } else if (got.neighbors.size() != want.neighbors.size()) {
        error = "size mismatch: index returned " +
                std::to_string(got.neighbors.size()) + ", oracle " +
                std::to_string(want.neighbors.size());
      } else {
        for (size_t r = 0; r < got.neighbors.size(); ++r) {
          if (got.neighbors[r].oid != want.neighbors[r].oid ||
              std::abs(got.neighbors[r].distance -
                       want.neighbors[r].distance) > kDistEps) {
            error = "rank " + std::to_string(r) + " mismatch: index=" +
                    FormatNeighbors(got.neighbors) +
                    " oracle=" + FormatNeighbors(want.neighbors);
            break;
          }
        }
      }
      if (!error.empty()) {
        MutexLock lock(fail_mu);
        failures.push_back("thread=" + std::to_string(t) +
                           " query=" + std::to_string(i) + " " + error);
        return;
      }
    }
    per_thread_io[t] = io_sum;
  };

  std::vector<std::thread> threads;
  threads.reserve(options.num_threads);
  for (int t = 0; t < options.num_threads; ++t) threads.emplace_back(worker, t);
  for (std::thread& t : threads) t.join();

  const IoStats after = index.GetIoStats();
  if (options.buffer_pool_pages > 0) index.UseBufferPool(0);

  const auto fail = [&](const std::string& what) {
    return Status::Corruption("concurrent-fuzz[" + index.name() +
                              " seed=" + std::to_string(options.seed) + "] " +
                              what);
  };
  if (!failures.empty()) return fail(failures[0]);

  // Accounting parity: the per-query deltas of the whole run must add up to
  // exactly the movement of the global counters.
  IoStatsDelta total;
  for (const IoStatsDelta& d : per_thread_io) total.MergeFrom(d);
  IoStatsDelta global;
  global.reads = after.reads - before.reads;
  global.leaf_reads = after.leaf_reads() - before.leaf_reads();
  global.nonleaf_reads = after.nonleaf_reads() - before.nonleaf_reads();
  global.cache_misses = after.cache_misses - before.cache_misses;
  if (!(total == global)) {
    return fail(
        "io accounting parity broken: sum of per-query deltas {reads=" +
        std::to_string(total.reads) + " leaf=" +
        std::to_string(total.leaf_reads) + " nonleaf=" +
        std::to_string(total.nonleaf_reads) + " cache_misses=" +
        std::to_string(total.cache_misses) + "} vs global movement {reads=" +
        std::to_string(global.reads) + " leaf=" +
        std::to_string(global.leaf_reads) + " nonleaf=" +
        std::to_string(global.nonleaf_reads) + " cache_misses=" +
        std::to_string(global.cache_misses) + "}");
  }

  // ResetIoStats() is only meaningful on a quiesced index (see
  // PointIndex::ResetIoStats): with every query thread joined, a reset must
  // leave the counters at zero, and the next query's per-query delta must
  // equal the counters' movement exactly. Running this after the join
  // asserts the documented exclusion contract without racing it.
  index.ResetIoStats();  // srlint: allow(R1) asserting the quiesced-reset contract
  const IoStats zeroed = index.GetIoStats();
  if (zeroed.reads != 0 || zeroed.writes != 0 || zeroed.cache_misses != 0) {
    return fail("quiesced ResetIoStats left nonzero counters: reads=" +
                std::to_string(zeroed.reads) + " writes=" +
                std::to_string(zeroed.writes) + " cache_misses=" +
                std::to_string(zeroed.cache_misses));
  }
  const QueryResult probe = index.Search(points[0], QuerySpec::Knn(1));
  if (!probe.status.ok()) {
    return fail("post-reset probe query failed: " + probe.status.ToString());
  }
  const IoStats after_probe = index.GetIoStats();
  if (after_probe.reads != probe.io.reads ||
      after_probe.cache_misses != probe.io.cache_misses) {
    return fail("post-reset accounting diverged: probe delta {reads=" +
                std::to_string(probe.io.reads) + " cache_misses=" +
                std::to_string(probe.io.cache_misses) +
                "} vs global {reads=" + std::to_string(after_probe.reads) +
                " cache_misses=" + std::to_string(after_probe.cache_misses) +
                "}");
  }
  return Status::OK();
}

Status RunMixedReadWriteFuzz(PointIndex& index,
                             const MixedFuzzOptions& options) {
  if (index.size() != 0) {
    return Status::InvalidArgument(
        "RunMixedReadWriteFuzz needs an empty index to load");
  }
  const int dim = index.dim();
  CHECK_GT(options.num_reader_threads, 0);
  CHECK_GT(options.initial_points, 0u);
  CHECK_GT(options.num_mutations, 0u);
  CHECK_GT(options.queries_per_snapshot, 0);

  Xoshiro256 rng(options.seed);
  const auto random_point = [&](Xoshiro256& r) {
    Point p(static_cast<size_t>(dim));
    for (double& c : p) c = r.Uniform(options.coord_lo, options.coord_hi);
    return p;
  };

  std::vector<Point> initial_points;
  std::vector<uint32_t> initial_oids;
  initial_points.reserve(options.initial_points);
  for (size_t i = 0; i < options.initial_points; ++i) {
    initial_points.push_back(random_point(rng));
    initial_oids.push_back(static_cast<uint32_t>(i));
  }
  RETURN_IF_ERROR(index.BulkLoad(initial_points, initial_oids));

  // The whole test hinges on version() advancing by one per committed
  // mutation; a pass-through snapshot (version 0) has nothing to verify.
  const uint64_t v0 = index.AcquireSnapshot()->version();
  if (v0 == 0) {
    return Status::InvalidArgument(
        "RunMixedReadWriteFuzz requires snapshot isolation (" + index.name() +
        " reports version 0)");
  }

  // Pre-generate the writer's schedule against a simulated live set, so
  // every delete targets a pair that is live at its point in writer order
  // and every op is guaranteed to succeed. A snapshot at version v0 + k
  // then corresponds to exactly ops[0..k).
  struct MutationOp {
    bool is_delete = false;
    Point point;
    uint32_t oid = 0;
  };
  std::vector<MutationOp> ops;
  ops.reserve(options.num_mutations);
  {
    std::vector<std::pair<Point, uint32_t>> sim_live;
    sim_live.reserve(options.initial_points + options.num_mutations);
    for (size_t i = 0; i < options.initial_points; ++i) {
      sim_live.emplace_back(initial_points[i], initial_oids[i]);
    }
    uint32_t next_oid = static_cast<uint32_t>(options.initial_points);
    for (size_t i = 0; i < options.num_mutations; ++i) {
      MutationOp mop;
      if (!sim_live.empty() && rng.NextDouble() < options.delete_fraction) {
        const size_t pick = rng.NextBounded(sim_live.size());
        mop.is_delete = true;
        mop.point = sim_live[pick].first;
        mop.oid = sim_live[pick].second;
        sim_live[pick] = std::move(sim_live.back());
        sim_live.pop_back();
      } else {
        mop.point = random_point(rng);
        mop.oid = next_oid++;
        sim_live.emplace_back(mop.point, mop.oid);
      }
      ops.push_back(std::move(mop));
    }
  }

  if (options.buffer_pool_pages > 0) {
    index.UseBufferPool(options.buffer_pool_pages);
  }

  Mutex fail_mu;
  std::vector<std::string> failures;
  const auto report = [&](std::string what) {
    MutexLock lock(fail_mu);
    failures.push_back(std::move(what));
  };
  std::atomic<bool> writer_done{false};

  const auto writer = [&]() {
    for (size_t i = 0; i < ops.size(); ++i) {
      const MutationOp& mop = ops[i];
      const Status st = mop.is_delete ? index.Delete(mop.point, mop.oid)
                                      : index.Insert(mop.point, mop.oid);
      if (!st.ok()) {
        report("writer op=" + std::to_string(i) + " (" +
               (mop.is_delete ? "delete" : "insert") + " oid=" +
               std::to_string(mop.oid) + ") failed: " + st.ToString());
        break;
      }
      if (options.compact_every > 0 &&
          (i + 1) % options.compact_every == 0) {
        if (Status cst = index.Compact(); !cst.ok()) {
          report("writer Compact() after op=" + std::to_string(i) +
                 " failed: " + cst.ToString());
          break;
        }
      }
    }
    writer_done.store(true, std::memory_order_seq_cst);
  };

  const auto reader = [&](int t) {
    // Thread-local oracle tracking the committed prefix this reader has
    // replayed so far. Snapshot versions are monotone within one reader, so
    // the replay only ever moves forward.
    BruteForceIndex::Options oracle_options;
    oracle_options.dim = dim;
    BruteForceIndex oracle(oracle_options);
    if (Status st = oracle.BulkLoad(initial_points, initial_oids); !st.ok()) {
      report("reader=" + std::to_string(t) +
             " oracle bulk load failed: " + st.ToString());
      return;
    }
    size_t applied = 0;
    Xoshiro256 trng(options.seed + 0x9e3779b9u * (t + 1));
    uint64_t iter = 0;
    uint64_t query_counter = 0;
    // One extra pass after the writer finishes so the fully-committed state
    // is always verified at least once per reader.
    bool final_pass_done = false;
    while (!final_pass_done) {
      if (writer_done.load(std::memory_order_seq_cst)) final_pass_done = true;
      const std::unique_ptr<IndexSnapshot> snap = index.AcquireSnapshot();
      const uint64_t version = snap->version();
      const auto fail = [&](const std::string& what) {
        report("reader=" + std::to_string(t) + " iter=" +
               std::to_string(iter) + " version=" + std::to_string(version) +
               " " + what);
      };
      if (version < v0 + applied) {
        fail("version went backwards (already replayed " +
             std::to_string(applied) + " ops past v0=" + std::to_string(v0) +
             ")");
        return;
      }
      const size_t k = static_cast<size_t>(version - v0);
      if (k > ops.size()) {
        fail("version beyond the schedule (" + std::to_string(k) + " > " +
             std::to_string(ops.size()) + " ops)");
        return;
      }
      // Replay the committed prefix the snapshot claims to pin.
      for (; applied < k; ++applied) {
        const MutationOp& mop = ops[applied];
        const Status st = mop.is_delete ? oracle.Delete(mop.point, mop.oid)
                                        : oracle.Insert(mop.point, mop.oid);
        if (!st.ok()) {
          fail("oracle replay of op=" + std::to_string(applied) +
               " failed: " + st.ToString());
          return;
        }
      }
      if (snap->size() != oracle.size()) {
        fail("snapshot size " + std::to_string(snap->size()) +
             " != oracle size " + std::to_string(oracle.size()));
        return;
      }
      for (int q = 0; q < options.queries_per_snapshot; ++q) {
        Point point;
        if (trng.NextDouble() < 0.5) {
          point = initial_points[trng.NextBounded(initial_points.size())];
          const double scale = 0.01 * (options.coord_hi - options.coord_lo);
          for (double& c : point) c += trng.Gaussian() * scale;
        } else {
          point = random_point(trng);
        }
        QuerySpec spec;
        switch (query_counter++ % 3) {
          case 0:
            spec = QuerySpec::Knn(
                1 + static_cast<int>(trng.NextBounded(
                        static_cast<uint64_t>(options.max_k))));
            break;
          case 1:
            spec = QuerySpec::KnnBestFirst(
                1 + static_cast<int>(trng.NextBounded(
                        static_cast<uint64_t>(options.max_k))));
            break;
          default: {
            const Point& anchor =
                initial_points[trng.NextBounded(initial_points.size())];
            spec = QuerySpec::Range(GetDistanceKernel().L2(point, anchor) *
                                    trng.Uniform(0.8, 1.2));
            break;
          }
        }
        const QueryResult got = snap->Search(point, spec);
        const QueryResult want = oracle.Search(point, spec);
        std::string error;
        if (!got.status.ok()) {
          error = "status not OK: " + got.status.ToString();
        } else if (got.neighbors.size() != want.neighbors.size()) {
          error = "size mismatch: snapshot returned " +
                  std::to_string(got.neighbors.size()) + ", oracle " +
                  std::to_string(want.neighbors.size());
        } else {
          for (size_t r = 0; r < got.neighbors.size(); ++r) {
            if (got.neighbors[r].oid != want.neighbors[r].oid ||
                std::abs(got.neighbors[r].distance -
                         want.neighbors[r].distance) > kDistEps) {
              error = "rank " + std::to_string(r) + " mismatch: snapshot=" +
                      FormatNeighbors(got.neighbors) +
                      " oracle=" + FormatNeighbors(want.neighbors);
              break;
            }
          }
        }
        if (!error.empty()) {
          fail("query=" + std::to_string(q) + " " + error);
          return;
        }
      }
      ++iter;
    }
  };

  std::vector<std::thread> threads;
  threads.reserve(static_cast<size_t>(options.num_reader_threads) + 1);
  for (int t = 0; t < options.num_reader_threads; ++t) {
    threads.emplace_back(reader, t);
  }
  threads.emplace_back(writer);
  for (std::thread& t : threads) t.join();

  if (options.buffer_pool_pages > 0) index.UseBufferPool(0);

  const auto fail = [&](const std::string& what) {
    return Status::Corruption("mixed-fuzz[" + index.name() +
                              " seed=" + std::to_string(options.seed) + "] " +
                              what);
  };
  if (!failures.empty()) return fail(failures[0]);

  // Quiesced epilogue: the final committed version must account for every
  // scheduled mutation, the tree must still audit clean, and the live state
  // must match a full oracle replay.
  std::unique_ptr<IndexSnapshot> final_snap = index.AcquireSnapshot();
  if (final_snap->version() != v0 + ops.size()) {
    return fail("final version " + std::to_string(final_snap->version()) +
                " != v0 + mutations = " + std::to_string(v0 + ops.size()));
  }
  if (Status st = index.CheckInvariants(); !st.ok()) {
    return fail("final invariant check failed: " + st.ToString());
  }
  BruteForceIndex::Options oracle_options;
  oracle_options.dim = dim;
  BruteForceIndex oracle(oracle_options);
  RETURN_IF_ERROR(oracle.BulkLoad(initial_points, initial_oids));
  for (size_t i = 0; i < ops.size(); ++i) {
    const Status st = ops[i].is_delete
                          ? oracle.Delete(ops[i].point, ops[i].oid)
                          : oracle.Insert(ops[i].point, ops[i].oid);
    if (!st.ok()) {
      return fail("final oracle replay of op=" + std::to_string(i) +
                  " failed: " + st.ToString());
    }
  }
  if (index.size() != oracle.size()) {
    return fail("final size " + std::to_string(index.size()) +
                " != oracle size " + std::to_string(oracle.size()));
  }

  // Leak check: with every reader joined and the final snapshot still
  // pinned above, only that one guard may hold retirees back. Release is
  // the caller's job for final_snap, so reclaim against the live state:
  // everything retired before the final commit must free now — a nonzero
  // residue (beyond what final_snap pins) means unlink-before-retire or
  // the epoch tags are wrong, exactly what ASan/LSan cannot see because
  // the memory is still referenced.
  if (EpochManager* epochs = index.epoch_domain_for_test()) {
    final_snap.reset();
    epochs->ReclaimExpired();
    const size_t residue = epochs->retired_count();
    if (residue != 0) {
      return fail("epoch reclamation left " + std::to_string(residue) +
                  " retired object(s) after all readers quiesced");
    }
  }
  return Status::OK();
}

Status MutationFuzzer::Run(std::unique_ptr<PointIndex>& index,
                           const ReopenFn& reopen) {
  CHECK(index != nullptr);
  const int dim = index->dim();
  stats_ = {};

  BruteForceIndex::Options oracle_options;
  oracle_options.dim = dim;
  BruteForceIndex oracle(oracle_options);

  Xoshiro256 rng(options_.seed);
  std::vector<std::pair<Point, uint32_t>> live;
  uint32_t next_oid = 0;
  uint64_t op = 0;
  size_t batch_index = 0;

  const auto fail = [&](const std::string& what) {
    return Status::Corruption("fuzz[" + index->name() +
                              " seed=" + std::to_string(options_.seed) +
                              " op=" + std::to_string(op) +
                              " batch=" + std::to_string(batch_index) + "] " +
                              what);
  };

  const auto random_point = [&]() {
    Point p(static_cast<size_t>(dim));
    for (double& c : p) c = rng.Uniform(options_.coord_lo, options_.coord_hi);
    return p;
  };

  const auto query_point = [&]() {
    if (!live.empty() && rng.NextDouble() < 0.5) {
      Point p = live[rng.NextBounded(live.size())].first;
      const double scale = 0.01 * (options_.coord_hi - options_.coord_lo);
      for (double& c : p) c += rng.Gaussian() * scale;
      return p;
    }
    return random_point();
  };

  const auto compare = [&](const char* tag, const Point& q,
                           const std::vector<Neighbor>& got,
                           const std::vector<Neighbor>& want) {
    if (got.size() != want.size()) {
      return fail(std::string(tag) + " size mismatch: index returned " +
                  std::to_string(got.size()) + ", oracle " +
                  std::to_string(want.size()) + "; index=" +
                  FormatNeighbors(got) + " oracle=" + FormatNeighbors(want));
    }
    for (size_t i = 0; i < got.size(); ++i) {
      if (got[i].oid != want[i].oid ||
          std::abs(got[i].distance - want[i].distance) > kDistEps) {
        return fail(std::string(tag) + " rank " + std::to_string(i) +
                    " mismatch near query " + std::to_string(q[0]) +
                    ",...: index=" + FormatNeighbors(got) +
                    " oracle=" + FormatNeighbors(want));
      }
    }
    return Status::OK();
  };

  const auto audit = [&]() {
    ++stats_.audits;
    const std::vector<Violation> violations =
        StructuralAuditor().Audit(*index);
    if (!violations.empty()) {
      return fail("audit found " + std::to_string(violations.size()) +
                  " violation(s); first: " + FormatViolation(violations[0]));
    }
    if (index->size() != oracle.size()) {
      return fail("size() diverged: index " + std::to_string(index->size()) +
                  " vs oracle " + std::to_string(oracle.size()));
    }
    return Status::OK();
  };

  // All oracle comparisons go through the unified Search() entry point —
  // the same path production callers use — so a wrapper-only regression
  // cannot slip past the fuzzer.
  const auto checked_search = [&](const char* tag, const Point& q,
                                  const QuerySpec& spec) -> StatusOr<QueryResult> {
    QueryResult r = index->Search(q, spec);
    if (!r.status.ok()) {
      return fail(std::string(tag) + " search failed: " + r.status.ToString());
    }
    return r;
  };

  const auto run_queries = [&]() {
    for (int i = 0; i < options_.knn_queries_per_batch; ++i) {
      ++stats_.knn_queries;
      const Point q = query_point();
      const int k = 1 + static_cast<int>(rng.NextBounded(
                            static_cast<uint64_t>(options_.max_k)));
      StatusOr<QueryResult> got = checked_search("knn", q, QuerySpec::Knn(k));
      RETURN_IF_ERROR(got.status());
      RETURN_IF_ERROR(compare("knn", q, got.value().neighbors,
                              oracle.Search(q, QuerySpec::Knn(k)).neighbors));
      StatusOr<QueryResult> best =
          checked_search("knn-best-first", q, QuerySpec::KnnBestFirst(k));
      RETURN_IF_ERROR(best.status());
      RETURN_IF_ERROR(compare("knn-best-first", q, best.value().neighbors,
                              got.value().neighbors));
    }
    for (int i = 0; i < options_.range_queries_per_batch; ++i) {
      ++stats_.range_queries;
      const Point q = query_point();
      double radius;
      if (!live.empty()) {
        const Point& anchor = live[rng.NextBounded(live.size())].first;
        radius = GetDistanceKernel().L2(q, anchor) * rng.Uniform(0.8, 1.2);
      } else {
        radius = rng.Uniform(0.0, options_.coord_hi - options_.coord_lo);
      }
      StatusOr<QueryResult> got =
          checked_search("range", q, QuerySpec::Range(radius));
      RETURN_IF_ERROR(got.status());
      RETURN_IF_ERROR(
          compare("range", q, got.value().neighbors,
                  oracle.Search(q, QuerySpec::Range(radius)).neighbors));
    }
    return Status::OK();
  };

  // Optional bulk-loaded starting population (the only way to exercise
  // static structures).
  if (options_.initial_points > 0) {
    std::vector<Point> points;
    std::vector<uint32_t> oids;
    points.reserve(options_.initial_points);
    for (size_t i = 0; i < options_.initial_points; ++i) {
      points.push_back(random_point());
      oids.push_back(next_oid);
      live.emplace_back(points.back(), next_oid);
      ++next_oid;
    }
    Status st = index->BulkLoad(points, oids);
    if (!st.ok()) return fail("bulk load failed: " + st.ToString());
    st = oracle.BulkLoad(points, oids);
    if (!st.ok()) return fail("oracle bulk load failed: " + st.ToString());
  }

  const auto one_mutation = [&]() {
    ++op;
    const bool do_delete =
        !live.empty() && rng.NextDouble() < options_.delete_fraction;
    if (do_delete) {
      if (rng.NextDouble() < options_.missing_delete_fraction) {
        // Absent key: both sides must answer NotFound.
        ++stats_.missing_deletes;
        const Point p = random_point();
        const uint32_t oid = next_oid + 1'000'000;
        const Status a = index->Delete(p, oid);
        const Status b = oracle.Delete(p, oid);
        if (a.code() != b.code() || !a.IsNotFound()) {
          return fail("missing-key delete: index said " + a.ToString() +
                      ", oracle said " + b.ToString());
        }
        return Status::OK();
      }
      ++stats_.deletes;
      const size_t pick = rng.NextBounded(live.size());
      const Point p = live[pick].first;
      const uint32_t oid = live[pick].second;
      const Status a = index->Delete(p, oid);
      const Status b = oracle.Delete(p, oid);
      if (!a.ok() || !b.ok()) {
        return fail("live delete of oid " + std::to_string(oid) +
                    ": index said " + a.ToString() + ", oracle said " +
                    b.ToString());
      }
      live[pick] = live.back();
      live.pop_back();
      return Status::OK();
    }
    ++stats_.inserts;
    Point p;
    if (!live.empty() && rng.NextDouble() < options_.duplicate_fraction) {
      p = live[rng.NextBounded(live.size())].first;  // duplicate point
    } else {
      p = random_point();
    }
    const uint32_t oid = next_oid++;
    const Status a = index->Insert(p, oid);
    const Status b = oracle.Insert(p, oid);
    if (!a.ok() || !b.ok()) {
      return fail("insert of oid " + std::to_string(oid) + ": index said " +
                  a.ToString() + ", oracle said " + b.ToString());
    }
    live.emplace_back(std::move(p), oid);
    return Status::OK();
  };

  const auto end_batch = [&]() {
    RETURN_IF_ERROR(run_queries());
    if (options_.audit_every_batch) RETURN_IF_ERROR(audit());
    if (options_.compact_every_batches > 0 &&
        (batch_index + 1) % options_.compact_every_batches == 0) {
      ++stats_.compacts;
      if (Status st = index->Compact(); !st.ok()) {
        return fail("Compact() failed: " + st.ToString());
      }
      // Compaction changes representation, not contents: the same queries
      // and audit must pass against the unchanged oracle.
      RETURN_IF_ERROR(audit());
      RETURN_IF_ERROR(run_queries());
    }
    if (reopen != nullptr && options_.reopen_every_batches > 0 &&
        (batch_index + 1) % options_.reopen_every_batches == 0) {
      ++stats_.reopens;
      StatusOr<std::unique_ptr<PointIndex>> reopened = reopen(*index);
      if (!reopened.ok()) {
        return fail("reopen failed: " + reopened.status().ToString());
      }
      index = std::move(reopened).value();
      CHECK(index != nullptr);
      RETURN_IF_ERROR(audit());
      RETURN_IF_ERROR(run_queries());
    }
    ++batch_index;
    return Status::OK();
  };

  if (options_.num_mutations == 0) {
    for (size_t b = 0; b < options_.query_only_batches; ++b) {
      RETURN_IF_ERROR(end_batch());
    }
  } else {
    size_t done = 0;
    while (done < options_.num_mutations) {
      const size_t batch =
          std::min(options_.batch_size, options_.num_mutations - done);
      for (size_t i = 0; i < batch; ++i) {
        RETURN_IF_ERROR(one_mutation());
      }
      done += batch;
      RETURN_IF_ERROR(end_batch());
    }
  }

  // Final audit so a run that ends mid-batch still leaves a verified tree.
  RETURN_IF_ERROR(audit());
  return Status::OK();
}

}  // namespace srtree::debug
