#include "src/debug/structural_auditor.h"

#include <algorithm>
#include <cmath>
#include <memory>
#include <optional>
#include <sstream>
#include <utility>

#include "src/common/check.h"
#include "src/geometry/kernel.h"
#include "src/geometry/point.h"
#include "src/geometry/rect.h"
#include "src/geometry/sphere.h"

namespace srtree::debug {
namespace {

// Matches the slack the trees themselves use when maintaining spheres.
constexpr double kEps = 1e-9;

// Owned copy of one NodeView entry (the view's pointers die with the
// visitor callback).
struct MirrorEntry {
  std::optional<Rect> rect;
  std::optional<Sphere> sphere;
  uint64_t weight = 0;
  bool has_weight = false;
};

// Owned copy of one visited node, linked into a tree by child index.
struct MirrorNode {
  int level = 0;
  size_t capacity = 0;
  size_t min_entries = 0;
  size_t page_count = 1;
  size_t per_page_capacity = 0;
  std::vector<MirrorEntry> entries;
  std::vector<Point> points;
  std::vector<std::unique_ptr<MirrorNode>> children;  // aligned with entries

  bool is_leaf() const { return level == 0; }
  size_t count() const { return is_leaf() ? points.size() : entries.size(); }
};

std::string PathString(const std::vector<int>& path) {
  std::string s = "root";
  for (const int i : path) {
    s += '/';
    s += std::to_string(i);
  }
  return s;
}

std::string FormatPoint(PointView p) {
  std::ostringstream os;
  os << '(';
  for (size_t i = 0; i < p.size(); ++i) {
    if (i > 0) os << ", ";
    os << p[i];
  }
  os << ')';
  return os.str();
}

class AuditRun {
 public:
  AuditRun(AuditSpec spec, const MirrorNode& root)
      : spec_(std::move(spec)), root_level_(root.level) {}

  std::vector<Violation> Run(const MirrorNode& root) {
    // At the root the claimed region is the K-D-B domain if the spec names
    // one; other trees claim nothing for the root.
    MirrorEntry root_claim;
    if (spec_.domain.has_value()) root_claim.rect = *spec_.domain;
    std::vector<int> path;
    total_points_ = 0;
    CheckNode(root, spec_.domain.has_value() ? &root_claim : nullptr,
              /*is_root=*/true, path);
    return std::move(violations_);
  }

  uint64_t total_points() const { return total_points_; }

 private:
  void Report(ViolationKind kind, const std::vector<int>& path,
              std::string detail) {
    violations_.push_back(Violation{kind, PathString(path), std::move(detail)});
  }

  // Verifies `node` against the region its parent claims for it, recurses,
  // and returns the node's subtree points (needed for the sphere and weight
  // checks of the levels above).
  std::vector<Point> CheckNode(const MirrorNode& node,
                               const MirrorEntry* claimed, bool is_root,
                               std::vector<int>& path) {
    // Uniform leaf depth / level consistency: a node at depth d must sit at
    // level root_level - d, which forces every leaf to level 0 at the same
    // depth.
    const int expected_level = root_level_ - static_cast<int>(path.size());
    if (node.level != expected_level) {
      Report(ViolationKind::kUnevenLeafDepth, path,
             "node at depth " + std::to_string(path.size()) + " has level " +
                 std::to_string(node.level) + ", expected " +
                 std::to_string(expected_level));
    }

    if (!node.is_leaf() && node.entries.empty()) {
      Report(ViolationKind::kEmptyInternalNode, path,
             "internal node has no children");
    }
    if (node.capacity > 0 && node.count() > node.capacity) {
      Report(ViolationKind::kOverfullNode, path,
             std::to_string(node.count()) + " entries exceed capacity " +
                 std::to_string(node.capacity));
    }
    if (!is_root && node.min_entries > 0 && node.count() < node.min_entries) {
      Report(ViolationKind::kUnderfullNode, path,
             std::to_string(node.count()) + " entries below minimum " +
                 std::to_string(node.min_entries));
    }
    if (is_root && !node.is_leaf() && spec_.internal_root_min2 &&
        node.entries.size() < 2) {
      Report(ViolationKind::kUnderfullNode, path,
             "internal root must have >= 2 children, has " +
                 std::to_string(node.entries.size()));
    }
    if (!node.is_leaf() && node.per_page_capacity > 0 && node.page_count > 1 &&
        node.count() <= (node.page_count - 1) * node.per_page_capacity) {
      Report(ViolationKind::kSupernodeWaste, path,
             std::to_string(node.count()) + " entries fit in " +
                 std::to_string(node.page_count - 1) + " pages but the node "
                 "occupies " + std::to_string(node.page_count));
    }

    const Rect* region =
        (claimed != nullptr && claimed->rect.has_value()) ? &*claimed->rect
                                                          : nullptr;
    CheckRects(node, region, path);

    // Recurse, gathering the subtree's points.
    std::vector<Point> local;
    if (node.is_leaf()) {
      local = node.points;
      total_points_ += node.points.size();
    } else {
      for (size_t i = 0; i < node.entries.size(); ++i) {
        path.push_back(static_cast<int>(i));
        if (node.children[i] != nullptr) {
          std::vector<Point> sub = CheckNode(
              *node.children[i], &node.entries[i], /*is_root=*/false, path);
          local.insert(local.end(), std::make_move_iterator(sub.begin()),
                       std::make_move_iterator(sub.end()));
        }
        path.pop_back();
      }
    }

    if (claimed != nullptr && !is_root) {
      CheckClaim(node, *claimed, local, path);
    }
    return local;
  }

  // Rectangle semantics of `node`'s own contents against the region claimed
  // for it: containment of children/points, MBR tightness, and K-D-B
  // sibling disjointness.
  void CheckRects(const MirrorNode& node, const Rect* region,
                  std::vector<int>& path) {
    if (spec_.rect_semantics == RectSemantics::kNone) return;

    if (region != nullptr && node.is_leaf()) {
      for (size_t i = 0; i < node.points.size(); ++i) {
        if (!region->Contains(node.points[i])) {
          Report(ViolationKind::kRectContainment, path,
                 "leaf point " + std::to_string(i) + " " +
                     FormatPoint(node.points[i]) + " escapes the node region");
          break;  // one report per node keeps corrupted-tree output readable
        }
      }
    }
    if (region != nullptr && !node.is_leaf()) {
      for (size_t i = 0; i < node.entries.size(); ++i) {
        if (node.entries[i].rect.has_value() &&
            !region->ContainsRect(*node.entries[i].rect)) {
          path.push_back(static_cast<int>(i));
          Report(ViolationKind::kRectContainment, path,
                 "child region escapes the parent region");
          path.pop_back();
        }
      }
    }

    if (spec_.rect_semantics == RectSemantics::kExactMbr &&
        region != nullptr && node.count() > 0) {
      Rect mbr = Rect::Empty(spec_.dim);
      if (node.is_leaf()) {
        for (const Point& p : node.points) mbr.Expand(p);
      } else {
        for (const MirrorEntry& e : node.entries) {
          if (e.rect.has_value()) mbr.Expand(*e.rect);
        }
      }
      if (!(mbr == *region)) {
        Report(ViolationKind::kRectNotTightMbr, path,
               "claimed rect is not the exact MBR of the node contents");
      }
    }

    if (spec_.rect_semantics == RectSemantics::kPartition && !node.is_leaf()) {
      // Siblings must have pairwise disjoint interiors (shared faces OK).
      for (size_t i = 0; i < node.entries.size(); ++i) {
        if (!node.entries[i].rect.has_value()) continue;
        const Rect& a = *node.entries[i].rect;
        for (size_t j = i + 1; j < node.entries.size(); ++j) {
          if (!node.entries[j].rect.has_value()) continue;
          const Rect& b = *node.entries[j].rect;
          bool interior_overlap = true;
          for (int d = 0; d < spec_.dim; ++d) {
            if (std::max(a.lo()[d], b.lo()[d]) >=
                std::min(a.hi()[d], b.hi()[d])) {
              interior_overlap = false;
              break;
            }
          }
          if (interior_overlap) {
            Report(ViolationKind::kRegionOverlap, path,
                   "sibling regions " + std::to_string(i) + " and " +
                       std::to_string(j) + " overlap");
          }
        }
      }
    }
  }

  // Sphere containment, the SR d_r radius bound, and weight bookkeeping of
  // the entry that claims this subtree.
  void CheckClaim(const MirrorNode& node, const MirrorEntry& claimed,
                  const std::vector<Point>& subtree_points,
                  const std::vector<int>& path) {
    (void)node;
    if (spec_.has_spheres && claimed.sphere.has_value()) {
      const Sphere& sphere = *claimed.sphere;
      for (const Point& p : subtree_points) {
        const double dist = GetDistanceKernel().L2(sphere.center(), p);
        if (dist > sphere.radius() * (1.0 + kEps) + kEps) {
          Report(ViolationKind::kSphereContainment, path,
                 "point " + FormatPoint(p) + " at distance " +
                     std::to_string(dist) + " escapes sphere radius " +
                     std::to_string(sphere.radius()));
          break;
        }
      }
      if (spec_.sphere_bounded_by_rect && claimed.rect.has_value()) {
        const double d_r =
            std::sqrt(claimed.rect->MaxDistSq(sphere.center()));
        if (sphere.radius() > d_r * (1.0 + kEps) + kEps) {
          Report(ViolationKind::kSphereExceedsRect, path,
                 "sphere radius " + std::to_string(sphere.radius()) +
                     " exceeds the farthest rect corner at " +
                     std::to_string(d_r) + " (Section 4.2 min(d_s, d_r))");
        }
      }
    }
    if (spec_.has_weights && claimed.has_weight &&
        claimed.weight != subtree_points.size()) {
      Report(ViolationKind::kWeightMismatch, path,
             "entry claims " + std::to_string(claimed.weight) +
                 " points, subtree holds " +
                 std::to_string(subtree_points.size()));
    }
  }

  const AuditSpec spec_;
  const int root_level_;
  uint64_t total_points_ = 0;
  std::vector<Violation> violations_;
};

// Rebuilds an owned mirror of the visited structure. Returns nullptr when
// the index exposes no nodes (flat structures).
std::unique_ptr<MirrorNode> BuildMirror(const PointIndex& index) {
  std::unique_ptr<MirrorNode> root;
  index.VisitNodes([&root](const std::vector<int>& path,
                           const NodeView& view) {
    auto node = std::make_unique<MirrorNode>();
    node->level = view.level;
    node->capacity = view.capacity;
    node->min_entries = view.min_entries;
    node->page_count = view.page_count;
    node->per_page_capacity = view.per_page_capacity;
    node->entries.reserve(view.entries.size());
    for (const EntryView& e : view.entries) {
      MirrorEntry entry;
      if (e.rect != nullptr) entry.rect = *e.rect;
      if (e.sphere != nullptr) entry.sphere = *e.sphere;
      entry.weight = e.weight;
      entry.has_weight = e.has_weight;
      node->entries.push_back(std::move(entry));
    }
    node->children.resize(node->entries.size());
    node->points.reserve(view.points.size());
    for (const PointView p : view.points) {
      node->points.emplace_back(p.begin(), p.end());
    }

    if (path.empty()) {
      root = std::move(node);
      return;
    }
    // Preorder guarantees every ancestor was already delivered.
    MirrorNode* parent = root.get();
    CHECK(parent != nullptr);
    for (size_t i = 0; i + 1 < path.size(); ++i) {
      CHECK_LT(static_cast<size_t>(path[i]), parent->children.size());
      parent = parent->children[path[i]].get();
      CHECK(parent != nullptr);
    }
    CHECK_LT(static_cast<size_t>(path.back()), parent->children.size());
    parent->children[path.back()] = std::move(node);
  });
  return root;
}

}  // namespace

const char* ViolationKindName(ViolationKind kind) {
  switch (kind) {
    case ViolationKind::kLevelBookkeeping:
      return "level-bookkeeping";
    case ViolationKind::kUnevenLeafDepth:
      return "uneven-leaf-depth";
    case ViolationKind::kEmptyInternalNode:
      return "empty-internal-node";
    case ViolationKind::kOverfullNode:
      return "overfull-node";
    case ViolationKind::kUnderfullNode:
      return "underfull-node";
    case ViolationKind::kSupernodeWaste:
      return "supernode-waste";
    case ViolationKind::kRectContainment:
      return "rect-containment";
    case ViolationKind::kRectNotTightMbr:
      return "rect-not-tight-mbr";
    case ViolationKind::kRegionOverlap:
      return "region-overlap";
    case ViolationKind::kSphereContainment:
      return "sphere-containment";
    case ViolationKind::kSphereExceedsRect:
      return "sphere-exceeds-rect";
    case ViolationKind::kWeightMismatch:
      return "weight-mismatch";
    case ViolationKind::kEntryCountMismatch:
      return "entry-count-mismatch";
  }
  return "unknown";
}

std::string FormatViolation(const Violation& violation) {
  return violation.node_path + ": " + ViolationKindName(violation.kind) +
         ": " + violation.detail;
}

std::vector<Violation> StructuralAuditor::Audit(const PointIndex& index) const {
  std::unique_ptr<MirrorNode> root = BuildMirror(index);
  if (root == nullptr) return {};  // flat structure: nothing to audit

  std::vector<Violation> violations;
  const TreeStats stats = index.GetTreeStats();
  if (root->level != stats.height - 1) {
    violations.push_back(Violation{
        ViolationKind::kLevelBookkeeping, "root",
        "root page has level " + std::to_string(root->level) +
            " but the index reports height " + std::to_string(stats.height)});
  }

  AuditRun run(index.GetAuditSpec(), *root);
  std::vector<Violation> body = run.Run(*root);
  violations.insert(violations.end(), std::make_move_iterator(body.begin()),
                    std::make_move_iterator(body.end()));

  if (run.total_points() != index.size()) {
    violations.push_back(Violation{
        ViolationKind::kEntryCountMismatch, "root",
        "leaves hold " + std::to_string(run.total_points()) +
            " points but the index reports size " +
            std::to_string(index.size())});
  }
  return violations;
}

Status StructuralAuditor::ToStatus(const std::vector<Violation>& violations) {
  if (violations.empty()) return Status::OK();
  std::string msg = "structural audit: " + FormatViolation(violations[0]);
  if (violations.size() > 1) {
    msg += " (+" + std::to_string(violations.size() - 1) + " more)";
  }
  return Status::Corruption(std::move(msg));
}

Status AuditIndex(const PointIndex& index) {
  return StructuralAuditor::ToStatus(StructuralAuditor().Audit(index));
}

}  // namespace srtree::debug
