// MutationFuzzer: deterministic randomized differential testing for any
// PointIndex implementation.
//
// The fuzzer drives an index through a seeded interleaving of Insert,
// Delete (present and absent keys, duplicate points), and Search() in all
// three query kinds (depth-first kNN, best-first kNN, range), mirroring
// every mutation into a BruteForceIndex oracle. After every batch it cross-checks query
// results against the oracle, verifies the size bookkeeping, runs the
// debug::StructuralAuditor, and (optionally) round-trips the index through
// a caller-supplied Save/Open hook. Every failure message carries the seed
// and operation number, so a run is reproducible from the test log alone.

#ifndef SRTREE_DEBUG_FUZZER_H_
#define SRTREE_DEBUG_FUZZER_H_

#include <cstdint>
#include <functional>
#include <memory>

#include "src/common/status.h"
#include "src/index/point_index.h"

namespace srtree::debug {

struct FuzzOptions {
  uint64_t seed = 1;
  // Number of Insert/Delete operations. 0 = query-only mode for static
  // structures: bulk-load `initial_points`, then run `query_only_batches`
  // batches of queries and audits.
  size_t num_mutations = 5000;
  size_t batch_size = 250;  // cross-check / audit cadence
  size_t initial_points = 0;
  size_t query_only_batches = 8;

  // Mutation mix. Deletes target a live (point, oid) pair, except for a
  // `missing_delete_fraction` share aimed at absent keys (both the index
  // and the oracle must answer NotFound). A `duplicate_fraction` share of
  // inserts reuses a live point under a fresh oid.
  double delete_fraction = 0.35;
  double duplicate_fraction = 0.05;
  double missing_delete_fraction = 0.1;

  int knn_queries_per_batch = 8;
  int range_queries_per_batch = 8;
  int max_k = 12;

  // Coordinates are drawn uniformly from [coord_lo, coord_hi)^dim, with
  // half the query points jittered off live data points.
  double coord_lo = 0.0;
  double coord_hi = 1.0;

  // Round-trip through the ReopenFn every N batches (0 = never).
  size_t reopen_every_batches = 0;
  bool audit_every_batch = true;

  // Call PointIndex::Compact() every N batches (0 = never). For tiered
  // indexes this folds the delta into the static tier mid-run; queries and
  // audits after the compaction must still match the oracle exactly.
  size_t compact_every_batches = 0;
};

struct FuzzStats {
  uint64_t inserts = 0;
  uint64_t deletes = 0;
  uint64_t missing_deletes = 0;
  uint64_t knn_queries = 0;
  uint64_t range_queries = 0;
  uint64_t audits = 0;
  uint64_t reopens = 0;
  uint64_t compacts = 0;
};

// Concurrent read-path fuzz: bulk-loads `index` (which must be empty) and a
// brute-force oracle with the same seeded points, then runs `num_threads`
// reader threads, each issuing a seeded mix of kNN (depth-first and
// best-first) and range queries through Search() against the frozen tree.
// Every result is cross-checked against the oracle, and at the end the sum
// of the per-query IoStatsDelta values is checked against the index's global
// GetIoStats() movement (the accounting-parity contract). Run it under TSan
// to surface read-path races.
struct ConcurrentFuzzOptions {
  uint64_t seed = 1;
  size_t num_points = 1500;
  int num_threads = 4;
  size_t queries_per_thread = 48;
  int max_k = 12;
  double coord_lo = 0.0;
  double coord_hi = 1.0;
  // When > 0, attaches a sharded BufferPool for the query phase so the
  // pooled read path gets the same concurrent coverage.
  size_t buffer_pool_pages = 0;
};

Status RunConcurrentQueryFuzz(PointIndex& index,
                              const ConcurrentFuzzOptions& options);

// Mixed reader+writer fuzz: the snapshot-isolation differential test. Bulk-
// loads `index` (which must be empty and must provide real snapshot
// isolation — AcquireSnapshot()->version() != 0), then runs one writer
// thread applying a pre-generated deterministic schedule of Insert/Delete
// mutations while `num_reader_threads` readers concurrently pin snapshots.
//
// The contract under test: the committed version advances by exactly one
// per successful mutation, so a snapshot at version v0 + k must observe
// precisely the first k scheduled mutations — no more, no fewer, no torn
// state. Each reader replays that committed prefix into a thread-local
// BruteForceIndex oracle and cross-checks seeded kNN (depth-first and
// best-first) and range queries through IndexSnapshot::Search, plus the
// snapshot's size(), against it. Run it under TSan to surface write-path /
// read-path races, and under ASan/LSan to catch leaked retired pages.
struct MixedFuzzOptions {
  uint64_t seed = 1;
  size_t initial_points = 1200;
  size_t num_mutations = 1200;  // committed writer ops, each must succeed
  int num_reader_threads = 4;
  // Queries each reader cross-checks per pinned snapshot before releasing
  // it and pinning a fresh one.
  int queries_per_snapshot = 3;
  int max_k = 10;
  double delete_fraction = 0.35;
  double coord_lo = 0.0;
  double coord_hi = 1.0;
  // When > 0, attaches a sharded BufferPool for the run so the pooled
  // snapshot read path gets the same concurrent coverage.
  size_t buffer_pool_pages = 0;
  // When > 0, the writer thread calls PointIndex::Compact() after every N
  // committed mutations, while readers hold live snapshots. Compact() must
  // NOT advance the committed version (it changes representation, not
  // contents), so the version → committed-prefix mapping the readers verify
  // — and the final version == v0 + num_mutations check — still hold.
  size_t compact_every = 0;
};

Status RunMixedReadWriteFuzz(PointIndex& index,
                             const MixedFuzzOptions& options);

class MutationFuzzer {
 public:
  // Persists and reopens the index (e.g. SRTree::Save + SRTree::Open); the
  // returned instance replaces the fuzzed one.
  using ReopenFn =
      std::function<StatusOr<std::unique_ptr<PointIndex>>(PointIndex&)>;

  explicit MutationFuzzer(const FuzzOptions& options) : options_(options) {}

  // Runs the schedule against `index` (replaced in place by the reopen
  // hook). OK when the run completes with no divergence from the oracle
  // and no audit violations; otherwise a Corruption status naming the
  // seed, operation number, and first failure.
  Status Run(std::unique_ptr<PointIndex>& index,
             const ReopenFn& reopen = nullptr);

  const FuzzStats& stats() const { return stats_; }

 private:
  FuzzOptions options_;
  FuzzStats stats_;
};

}  // namespace srtree::debug

#endif  // SRTREE_DEBUG_FUZZER_H_
