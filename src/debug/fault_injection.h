// Fault injection for the durability path.
//
// Two layers of simulated failure, matching the two ways a crash-safe save
// can go wrong in the field:
//
//   * FaultInjector is a storage::SaveFailpoints implementation that makes
//     the NEXT AtomicWriteFile() misbehave — a short write into the temp
//     file, a failed fsync, or a failed rename. The save must surface a
//     clean IoError, remove its temp file, and leave the destination (and
//     the in-memory index being saved) untouched.
//
//   * The corruption helpers (FlipBit / SpliceImages / prefix truncation)
//     produce the byte patterns a crashed or lying disk leaves behind in an
//     already-written image: single-bit rot, an in-place overwrite torn at
//     a page boundary, a file cut short. Loading such an image must either
//     fail with Corruption/InvalidArgument or produce a fully valid index —
//     never a crash, never silently wrong query results.
//
// RunPersistenceFaultFuzz drives both layers against any saveable index
// type, cross-checking every successfully loaded index against a
// brute-force oracle and the structural auditor.

#ifndef SRTREE_DEBUG_FAULT_INJECTION_H_
#define SRTREE_DEBUG_FAULT_INJECTION_H_

#include <cstdint>
#include <string>

#include "src/common/status.h"
#include "src/index/index_factory.h"
#include "src/storage/image_io.h"

namespace srtree::debug {

// The durability faults the harness injects. The first three strike DURING
// a Save() via the SaveFailpoints seam; the last three corrupt the bytes of
// an already-written image.
enum class FaultKind {
  kShortWrite,    // temp file receives only a prefix, write reports failure
  kFailedFlush,   // fsync() of the temp file fails
  kFailedRename,  // rename() over the destination fails
  kTruncate,      // destination cut to a strict prefix
  kTornWrite,     // overwrite torn at a page boundary: new prefix, old tail
  kBitFlip,       // one bit flipped somewhere in the image
};

inline constexpr int kNumFaultKinds = 6;

const char* FaultKindName(FaultKind kind);

// SaveFailpoints implementation delivering exactly one fault per Arm().
class FaultInjector : public SaveFailpoints {
 public:
  // Arms the injector for the next AtomicWriteFile(). `kind` must be one
  // of the during-save kinds; `fraction` in [0, 1) picks how much of the
  // image a short write lands before failing.
  void Arm(FaultKind kind, double fraction);

  bool OnWrite(std::string* image) override;
  bool OnFlush() override;
  bool OnRename() override;

  uint64_t faults_delivered() const { return faults_delivered_; }

 private:
  FaultKind kind_ = FaultKind::kShortWrite;
  bool armed_ = false;
  double fraction_ = 0.5;
  uint64_t faults_delivered_ = 0;
};

// Returns `image` with bit `bit` (0-based, < 8 * image.size()) flipped.
std::string FlipBit(const std::string& image, size_t bit);

// The on-disk state of an in-place overwrite of `older` by `newer` torn
// after `boundary` bytes: newer's prefix, then whatever of older's tail
// survives past it.
std::string SpliceImages(const std::string& newer, const std::string& older,
                         size_t boundary);

struct PersistenceFaultFuzzOptions {
  uint64_t seed = 1;
  int dim = 4;
  size_t num_points = 150;
  // The "newer" index (torn-write donor) holds num_points + extra_points.
  size_t extra_points = 50;
  size_t num_faults = 600;
  // Differential queries per verification of a loaded index.
  int queries_per_check = 4;
  int max_k = 8;
  size_t page_size = 1024;
  size_t leaf_data_size = 0;
  // Directory for the image files; must exist and be writable.
  std::string scratch_dir = "/tmp";
};

// Round-trips an index of `type` through options.num_faults injected
// durability faults (cycling through every FaultKind), asserting after each
// one that:
//   * a fault during Save() yields a non-OK Status, leaves the previous
//     on-disk image byte-identical, leaves no temp file behind, and leaves
//     the in-memory index answering queries exactly as before;
//   * loading a corrupted image either fails with a clean Status or yields
//     an index that passes CheckInvariants() and answers k-NN queries
//     identically to a brute-force oracle over one of the two saved states.
// Returns OK when every fault upheld the invariants, otherwise Corruption
// naming the seed, round, and fault kind of the first violation.
Status RunPersistenceFaultFuzz(IndexType type,
                               const PersistenceFaultFuzzOptions& options);

}  // namespace srtree::debug

#endif  // SRTREE_DEBUG_FAULT_INJECTION_H_
