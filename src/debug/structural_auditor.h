// StructuralAuditor: one tree-agnostic verifier for the structural
// invariants that every index variant must maintain.
//
// The auditor walks any PointIndex through its VisitNodes() hook and checks
// the rules declared by its AuditSpec:
//   * region containment — child regions and leaf points stay inside the
//     region their parent entry claims for them;
//   * region exactness — R*-family rectangles are exact MBRs; K-D-B sibling
//     regions tile their parent disjointly;
//   * SR-specific sphere rules (Section 4.2/4.4) — every subtree point lies
//     inside the entry sphere, and the min(d_s, d_r) radius never exceeds
//     the farthest corner of the entry's own rectangle;
//   * fanout within [min_entries, capacity], supernode page economy;
//   * uniform leaf depth and level bookkeeping;
//   * entry-count bookkeeping — entry weights match actual subtree counts
//     and the leaf total matches PointIndex::size().
//
// Unlike a bare Status, the auditor reports a typed list of violations,
// each naming the offending node by its root path ("root/2/0"), so tests
// can assert both the class and the location of an injected corruption.

#ifndef SRTREE_DEBUG_STRUCTURAL_AUDITOR_H_
#define SRTREE_DEBUG_STRUCTURAL_AUDITOR_H_

#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/index/point_index.h"

namespace srtree::debug {

enum class ViolationKind {
  kLevelBookkeeping,    // stored root level disagrees with the root page
  kUnevenLeafDepth,     // node level inconsistent with its depth
  kEmptyInternalNode,   // internal node with zero children
  kOverfullNode,        // entry count above capacity
  kUnderfullNode,       // entry count below the structural minimum
  kSupernodeWaste,      // X-tree supernode retains an unnecessary page
  kRectContainment,     // child rect or leaf point escapes the parent region
  kRectNotTightMbr,     // claimed rect is not the exact MBR of the contents
  kRegionOverlap,       // K-D-B sibling regions overlap in their interiors
  kSphereContainment,   // subtree point escapes the entry sphere
  kSphereExceedsRect,   // sphere radius above the d_r bound (Section 4.2)
  kWeightMismatch,      // entry weight != actual subtree point count
  kEntryCountMismatch,  // leaf point total != PointIndex::size()
};

const char* ViolationKindName(ViolationKind kind);

struct Violation {
  ViolationKind kind;
  // Path of the offending node: "root" or "root/<i>/<j>/...". For claimed
  // region violations this names the node the region describes, not the
  // parent page that stores the entry.
  std::string node_path;
  std::string detail;
};

// "root/2/0: sphere-containment: <detail>"
std::string FormatViolation(const Violation& violation);

class StructuralAuditor {
 public:
  // Walks `index` and returns every violation found (empty = clean).
  // Structures that expose no nodes are vacuously clean.
  std::vector<Violation> Audit(const PointIndex& index) const;

  // Condenses an audit result into a Status: OK when empty, otherwise
  // Corruption carrying the first violation (and a count of the rest).
  static Status ToStatus(const std::vector<Violation>& violations);
};

// Convenience used by the trees' CheckInvariants(): audit and condense.
Status AuditIndex(const PointIndex& index);

}  // namespace srtree::debug

#endif  // SRTREE_DEBUG_STRUCTURAL_AUDITOR_H_
