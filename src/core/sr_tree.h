// SR-tree (Katayama & Satoh, SIGMOD 1997) — the paper's contribution and
// this library's primary index structure.
//
// A region is the INTERSECTION of a bounding sphere and a bounding
// rectangle (Section 4.1):
//   * insertion is centroid-based, inherited from the SS-tree;
//   * the parent sphere radius is min(d_s, d_r): the max distance from the
//     centroid to the child spheres vs. to the child rectangles
//     (Section 4.2), which keeps spheres tighter than the SS-tree's;
//   * the bounding rectangle is the exact MBR, maintained as in the R-tree;
//   * nearest-neighbor search uses MINDIST = max(sphere, rectangle)
//     (Section 4.4), a sharper lower bound than either shape alone.
//
// The node entry stores both shapes, so its fanout is one third of the
// SS-tree's and two thirds of the R*-tree's — the Section 5.3 trade-off the
// experiments quantify.
//
// Concurrency (single writer / many readers, snapshot isolation): unlike
// the other structures in this library, the SR-tree serves queries while it
// mutates. Insert/Delete run under writer_mu_, stage every page update
// through PageFile::StageWrite (copy-on-write), and finish by committing a
// new page-table version whose metadata words carry (root id, root level,
// size). Every query — Search() or a pinned IndexSnapshot — reads one
// committed version under an EpochGuard, so it observes an atomic tree
// state: either entirely before or entirely after any concurrent commit,
// never a half-applied mutation. Retired versions are reclaimed by the
// epoch scheme (src/storage/epoch.h). Structural accessors that walk
// working state (GetTreeStats, VisitNodes, Save, ...) take writer_mu_ and
// therefore exclude the writer, not queries.

#ifndef SRTREE_CORE_SR_TREE_H_
#define SRTREE_CORE_SR_TREE_H_

#include <deque>
#include <functional>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "src/base/mutex.h"
#include "src/base/thread_annotations.h"
#include "src/geometry/kernel.h"
#include "src/geometry/rect.h"
#include "src/geometry/sphere.h"
#include "src/index/knn.h"
#include "src/index/point_index.h"
#include "src/storage/buffer_pool.h"
#include "src/storage/epoch.h"
#include "src/storage/page_file.h"

namespace srtree {

class SRTree : public PointIndex {
 public:
  struct Options {
    int dim = 2;
    size_t page_size = kDefaultPageSize;
    size_t leaf_data_size = 512;
    double min_utilization = 0.4;
    double reinsert_fraction = 0.3;

    // Ablation switches (the paper's design choices; both true = SR-tree).
    // When use_rect_in_radius is false, the parent sphere radius falls back
    // to the SS-tree rule d_s (Section 4.2's min(d_s, d_r) disabled).
    bool use_rect_in_radius = true;
    // When use_rect_in_mindist is false, k-NN pruning uses only the sphere
    // MINDIST (Section 4.4's max(d_s, d_r) disabled).
    bool use_rect_in_mindist = true;
  };

  explicit SRTree(const Options& options);

  // Type tag embedded in the v2 index-image container.
  static constexpr char kImageTag[] = "srtree";

  // Persists the index — options, tree metadata, and the full page file —
  // as one checksummed image at `path`, written atomically (see
  // PointIndex::Save). Takes writer_mu_, so it saves a committed-quiesced
  // state, never a half-applied mutation.
  Status Save(const std::string& path) const override EXCLUDES(writer_mu_);

  // Opens an index previously written by Save(); the options are restored
  // from the file. Only the current v2 image is readable — a pre-v2 legacy
  // file fails with an explicit "re-save with v2" error.
  static StatusOr<std::unique_ptr<SRTree>> Open(const std::string& path);

  int dim() const override { return options_.dim; }
  // Size of the most recently committed version (safe against the writer:
  // reads the committed metadata, not working state).
  size_t size() const override;
  std::string name() const override { return "SR-tree"; }

  Status Insert(PointView point, uint32_t oid) override
      EXCLUDES(writer_mu_);
  Status Delete(PointView point, uint32_t oid) override
      EXCLUDES(writer_mu_);

  // Pins the current committed version: queries against the returned
  // snapshot are unaffected by concurrent Insert/Delete commits, and
  // version() reports the pinned PageFile version.
  [[nodiscard]] std::unique_ptr<IndexSnapshot> AcquireSnapshot()
      const override;

  // Enumerates every stored (point, oid) pair (the tiered-index compaction
  // feed); walks working state under writer_mu_, excluding the writer.
  Status ExportEntries(const std::function<void(PointView, uint32_t)>& fn)
      const override EXCLUDES(writer_mu_);

  TreeStats GetTreeStats() const override EXCLUDES(writer_mu_);
  Status CheckInvariants() const override;
  void VisitNodes(const NodeVisitor& visitor) const override
      EXCLUDES(writer_mu_);
  AuditSpec GetAuditSpec() const override;

  // Reports both shapes of the leaf regions; the true region (their
  // intersection) is bounded above by each (Section 5.2).
  RegionSummary LeafRegionSummary() const override EXCLUDES(writer_mu_);

  MaintenanceStats GetMaintenanceStats() const override EXCLUDES(writer_mu_) {
    MutexLock lock(writer_mu_);
    return maintenance_;
  }

  // Forwarders to the page file's counters. io_stats() is the deprecated
  // unlocked reference (single-threaded benches only); the reset is locked
  // but only meaningful on a quiesced index — see PointIndex::ResetIoStats
  // for the exclusion contract the concurrent fuzzer asserts.
  const IoStats& io_stats() const override { return file_.stats(); }
  void ResetIoStats() override { file_.ResetStats(); }
  IoStats GetIoStats() const override { return file_.GetIoStats(); }

  void SimulateBufferPool(size_t capacity) override {
    file_.SimulateCache(capacity);
  }
  void UseBufferPool(size_t capacity) override {
    pool_ = capacity > 0 ? std::make_unique<BufferPool>(&file_, capacity)
                         : nullptr;
  }

  size_t leaf_capacity() const override { return leaf_cap_; }
  size_t node_capacity() const override { return node_cap_; }
  int height() const EXCLUDES(writer_mu_) {
    MutexLock lock(writer_mu_);
    return root_level_ + 1;
  }

  // The reclamation domain backing this tree's snapshots; tests assert its
  // retired_count() drains to zero once readers quiesce.
  EpochManager& epochs_for_test() const { return file_.epochs(); }
  EpochManager* epoch_domain_for_test() const override {
    return &file_.epochs();
  }

 protected:
  // Each acquires its own epoch guard + snapshot: a plain Search() against
  // the live index pins the committed version for exactly one query.
  std::vector<Neighbor> KnnDfsImpl(PointView query, int k,
                                   IoStatsDelta* io) const override;
  std::vector<Neighbor> KnnBestFirstImpl(PointView query, int k,
                                         IoStatsDelta* io) const override;
  std::vector<Neighbor> RangeImpl(PointView query, double radius,
                                  IoStatsDelta* io) const override;

 private:
  // Snapshot objects traverse the pinned version through the *Snapshot
  // methods below; the class lives in sr_tree.cc.
  friend class SRTreeSnapshot;
  // Test-only backdoor (tests/structural_auditor_test.cc): lets the
  // auditor's negative tests corrupt pages directly to prove each violation
  // class is detected and located.
  friend struct SRTreeTestAccess;
  struct LeafEntry {
    Point point;
    uint32_t oid;
  };

  struct NodeEntry {
    Sphere sphere;  // center = centroid of underlying points
    Rect rect;      // exact MBR of underlying points
    uint32_t weight;
    PageId child;
  };

  struct Node {
    PageId id = kInvalidPageId;
    int level = 0;
    std::vector<NodeEntry> children;
    std::vector<LeafEntry> points;

    bool is_leaf() const { return level == 0; }
    size_t count() const { return is_leaf() ? points.size() : children.size(); }
  };

  struct Pending {
    int level;
    LeafEntry leaf;
    NodeEntry node;
  };

  // --- page I/O ---
  // ReadNode/PeekNode/WriteNode operate on *working state* and belong to
  // the writer (or a locked structural accessor). The query path reads
  // committed versions through ReadNodeSnapshot instead: via the attached
  // BufferPool keyed by (page id, stamp) when one is present, else straight
  // from the snapshot; `io` collects the per-query delta.
  Node ReadNode(PageId id, int level, IoStatsDelta* io = nullptr) const
      REQUIRES(writer_mu_);
  Node PeekNode(PageId id) const REQUIRES(writer_mu_);
  void WriteNode(const Node& node) REQUIRES(writer_mu_);
  Node ReadNodeSnapshot(const PageFile::Snapshot& snap, PageId id, int level,
                        IoStatsDelta* io) const;
  void SerializeNode(const Node& node, char* buf) const;
  Node DeserializeNode(const char* buf, PageId id) const;

  // Publishes the working state as the next committed version, carrying
  // (root id, root level, size) in the metadata words. Exactly one commit
  // ends every successful mutation.
  void CommitState() REQUIRES(writer_mu_);

  size_t Capacity(const Node& node) const {
    return node.is_leaf() ? leaf_cap_ : node_cap_;
  }
  size_t MinEntries(const Node& node) const {
    return node.is_leaf() ? leaf_min_ : node_min_;
  }

  // --- region helpers ---
  Point NodeCentroid(const Node& node, uint32_t& weight) const;
  // Sphere (radius = min(d_s, d_r)), exact MBR, and weight for `node`.
  NodeEntry ComputeEntry(const Node& node) const;
  PointView EntryCentroid(const Node& node, size_t i) const;
  // MINDIST from a query point to an entry's region (Section 4.4).
  double EntryMinDist(const NodeEntry& entry, PointView query) const;
  const std::vector<double>& EntryMinDists(const Node& node, PointView query,
                                           KernelScratch& scratch) const;

  // --- insertion machinery (writer only) ---
  void ProcessPending(std::deque<Pending>& pending) REQUIRES(writer_mu_);
  void InsertPending(const Pending& item, std::deque<Pending>& pending)
      REQUIRES(writer_mu_);
  int ChooseSubtree(const Node& node, PointView centroid) const;
  void ResolvePath(std::vector<Node>& path, std::vector<int>& idx,
                   std::deque<Pending>& pending) REQUIRES(writer_mu_);
  void WritePathRefreshingEntries(std::vector<Node>& path,
                                  const std::vector<int>& idx, int from)
      REQUIRES(writer_mu_);
  std::vector<Pending> RemoveForReinsert(Node& node) REQUIRES(writer_mu_);
  Node SplitNode(Node& node) REQUIRES(writer_mu_);
  void GrowRoot(Node& left, Node& right) REQUIRES(writer_mu_);

  // --- deletion machinery (writer only) ---
  bool FindLeafPath(const Node& node, PointView point, uint32_t oid,
                    std::vector<Node>& path, std::vector<int>& idx)
      REQUIRES(writer_mu_);
  void CondenseTree(std::vector<Node>& path, std::vector<int>& idx)
      REQUIRES(writer_mu_);
  void ShrinkRoot() REQUIRES(writer_mu_);

  // --- search (const + re-entrant; all traversal state is per query and
  //     every page read comes from the pinned committed version) ---
  std::vector<Neighbor> KnnDfsSnapshot(const PageFile::Snapshot& snap,
                                       PointView query, int k,
                                       IoStatsDelta* io) const;
  std::vector<Neighbor> KnnBestFirstSnapshot(const PageFile::Snapshot& snap,
                                             PointView query, int k,
                                             IoStatsDelta* io) const;
  std::vector<Neighbor> RangeSnapshot(const PageFile::Snapshot& snap,
                                      PointView query, double radius,
                                      IoStatsDelta* io) const;
  void SearchKnn(const PageFile::Snapshot& snap, PageId id, int level,
                 PointView query, KnnCandidates& cand, KernelScratch& scratch,
                 IoStatsDelta* io) const;
  void SearchRange(const PageFile::Snapshot& snap, PageId id, int level,
                   PointView query, double radius, std::vector<Neighbor>& out,
                   KernelScratch& scratch, IoStatsDelta* io) const;

  // --- validation / stats (walk working state; callers hold writer_mu_) ---
  void VisitSubtree(const Node& node, std::vector<int>& path,
                    const NodeVisitor& visitor) const REQUIRES(writer_mu_);
  void CollectStats(const Node& node, TreeStats& stats) const
      REQUIRES(writer_mu_);
  void CollectRegions(const Node& node, RegionStatsCollector& collector) const
      REQUIRES(writer_mu_);

  // Constructor helpers so the configuration block below can be const:
  // Validated() CHECKs the option invariants and passes the copy through;
  // the capacity helpers derive the per-page entry counts (Section 5.3
  // entry sizes).
  static Options Validated(const Options& options);
  static size_t LeafCapacityFor(const Options& options);
  static size_t NodeCapacityFor(const Options& options);

  const Options options_;
  const size_t leaf_cap_;
  const size_t node_cap_;
  const size_t leaf_min_;
  const size_t node_min_;

  mutable PageFile file_;
  // Optional warm cache on the query path (UseBufferPool); frames are keyed
  // by (page id, buffer stamp), so copy-on-write makes stale hits
  // impossible and the writer never invalidates. Swapping the pool itself
  // is still not thread-safe against in-flight queries.
  std::unique_ptr<BufferPool> pool_ UNGUARDED_OK(
      "swapped only by UseBufferPool, excluded vs in-flight queries");

  // writer_mu_ serializes mutations and guards the working tree metadata.
  // Queries never take it: they read the committed copies of these values
  // from the pinned version's metadata words.
  mutable Mutex writer_mu_;
  PageId root_id_ GUARDED_BY(writer_mu_);
  int root_level_ GUARDED_BY(writer_mu_) = 0;
  size_t size_ GUARDED_BY(writer_mu_) = 0;
  MaintenanceStats maintenance_ GUARDED_BY(writer_mu_);

  // Per-node forced-reinsertion bookkeeping, inherited from the SS-tree.
  std::set<PageId> reinserted_nodes_ GUARDED_BY(writer_mu_);
};

}  // namespace srtree

#endif  // SRTREE_CORE_SR_TREE_H_
