// SR-tree (Katayama & Satoh, SIGMOD 1997) — the paper's contribution and
// this library's primary index structure.
//
// A region is the INTERSECTION of a bounding sphere and a bounding
// rectangle (Section 4.1):
//   * insertion is centroid-based, inherited from the SS-tree;
//   * the parent sphere radius is min(d_s, d_r): the max distance from the
//     centroid to the child spheres vs. to the child rectangles
//     (Section 4.2), which keeps spheres tighter than the SS-tree's;
//   * the bounding rectangle is the exact MBR, maintained as in the R-tree;
//   * nearest-neighbor search uses MINDIST = max(sphere, rectangle)
//     (Section 4.4), a sharper lower bound than either shape alone.
//
// The node entry stores both shapes, so its fanout is one third of the
// SS-tree's and two thirds of the R*-tree's — the Section 5.3 trade-off the
// experiments quantify.

#ifndef SRTREE_CORE_SR_TREE_H_
#define SRTREE_CORE_SR_TREE_H_

#include <deque>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "src/geometry/rect.h"
#include "src/geometry/sphere.h"
#include "src/index/knn.h"
#include "src/index/point_index.h"
#include "src/storage/buffer_pool.h"
#include "src/storage/page_file.h"

namespace srtree {

class SRTree : public PointIndex {
 public:
  struct Options {
    int dim = 2;
    size_t page_size = kDefaultPageSize;
    size_t leaf_data_size = 512;
    double min_utilization = 0.4;
    double reinsert_fraction = 0.3;

    // Ablation switches (the paper's design choices; both true = SR-tree).
    // When use_rect_in_radius is false, the parent sphere radius falls back
    // to the SS-tree rule d_s (Section 4.2's min(d_s, d_r) disabled).
    bool use_rect_in_radius = true;
    // When use_rect_in_mindist is false, k-NN pruning uses only the sphere
    // MINDIST (Section 4.4's max(d_s, d_r) disabled).
    bool use_rect_in_mindist = true;
  };

  explicit SRTree(const Options& options);

  // Type tag embedded in the v2 index-image container.
  static constexpr char kImageTag[] = "srtree";

  // Persists the index — options, tree metadata, and the full page file —
  // as one checksummed image at `path`, written atomically (see
  // PointIndex::Save).
  Status Save(const std::string& path) const override;

  // Opens an index previously written by Save(); the options are restored
  // from the file. Accepts both the current v2 image and the pre-v2 legacy
  // format (read-compatibly, for one release).
  static StatusOr<std::unique_ptr<SRTree>> Open(const std::string& path);

  // Writes the pre-v2 (unchecksummed, non-atomic) format so compatibility
  // tests can generate v1 fixtures. Never a production path.
  Status SaveLegacyV1ForTest(const std::string& path) const;

  int dim() const override { return options_.dim; }
  size_t size() const override { return size_; }
  std::string name() const override { return "SR-tree"; }

  Status Insert(PointView point, uint32_t oid) override;
  Status Delete(PointView point, uint32_t oid) override;

  TreeStats GetTreeStats() const override;
  Status CheckInvariants() const override;
  void VisitNodes(const NodeVisitor& visitor) const override;
  AuditSpec GetAuditSpec() const override;

  // Reports both shapes of the leaf regions; the true region (their
  // intersection) is bounded above by each (Section 5.2).
  RegionSummary LeafRegionSummary() const override;

  MaintenanceStats GetMaintenanceStats() const override {
    return maintenance_;
  }

  // Forwarders to the page file's counters. io_stats() is the deprecated
  // unlocked reference (single-threaded benches only); the reset is locked
  // but only meaningful on a quiesced index — see PointIndex::ResetIoStats
  // for the exclusion contract the concurrent fuzzer asserts.
  const IoStats& io_stats() const override { return file_.stats(); }
  void ResetIoStats() override { file_.ResetStats(); }
  IoStats GetIoStats() const override { return file_.GetIoStats(); }

  void SimulateBufferPool(size_t capacity) override {
    file_.SimulateCache(capacity);
  }
  void UseBufferPool(size_t capacity) override {
    pool_ = capacity > 0 ? std::make_unique<BufferPool>(&file_, capacity)
                         : nullptr;
  }

  size_t leaf_capacity() const override { return leaf_cap_; }
  size_t node_capacity() const override { return node_cap_; }
  int height() const { return root_level_ + 1; }

 protected:
  std::vector<Neighbor> KnnDfsImpl(PointView query, int k,
                                   IoStatsDelta* io) const override;
  std::vector<Neighbor> KnnBestFirstImpl(PointView query, int k,
                                         IoStatsDelta* io) const override;
  std::vector<Neighbor> RangeImpl(PointView query, double radius,
                                  IoStatsDelta* io) const override;

 private:
  // Test-only backdoor (tests/structural_auditor_test.cc): lets the
  // auditor's negative tests corrupt pages directly to prove each violation
  // class is detected and located.
  friend struct SRTreeTestAccess;
  struct LeafEntry {
    Point point;
    uint32_t oid;
  };

  struct NodeEntry {
    Sphere sphere;  // center = centroid of underlying points
    Rect rect;      // exact MBR of underlying points
    uint32_t weight;
    PageId child;
  };

  struct Node {
    PageId id = kInvalidPageId;
    int level = 0;
    std::vector<NodeEntry> children;
    std::vector<LeafEntry> points;

    bool is_leaf() const { return level == 0; }
    size_t count() const { return is_leaf() ? points.size() : children.size(); }
  };

  struct Pending {
    int level;
    LeafEntry leaf;
    NodeEntry node;
  };

  // --- page I/O ---
  // Const and re-entrant: reads go through the attached BufferPool when one
  // is present, else straight to the (internally synchronized) page file;
  // `io` collects the per-query delta on the search path.
  Node ReadNode(PageId id, int level, IoStatsDelta* io = nullptr) const;
  Node PeekNode(PageId id) const;
  void WriteNode(const Node& node);
  void SerializeNode(const Node& node, char* buf) const;
  Node DeserializeNode(const char* buf, PageId id) const;

  size_t Capacity(const Node& node) const {
    return node.is_leaf() ? leaf_cap_ : node_cap_;
  }
  size_t MinEntries(const Node& node) const {
    return node.is_leaf() ? leaf_min_ : node_min_;
  }

  // --- region helpers ---
  Point NodeCentroid(const Node& node, uint32_t& weight) const;
  // Sphere (radius = min(d_s, d_r)), exact MBR, and weight for `node`.
  NodeEntry ComputeEntry(const Node& node) const;
  PointView EntryCentroid(const Node& node, size_t i) const;
  // MINDIST from a query point to an entry's region (Section 4.4).
  double EntryMinDist(const NodeEntry& entry, PointView query) const;

  // --- insertion machinery ---
  void ProcessPending(std::deque<Pending>& pending);
  void InsertPending(const Pending& item, std::deque<Pending>& pending);
  int ChooseSubtree(const Node& node, PointView centroid) const;
  void ResolvePath(std::vector<Node>& path, std::vector<int>& idx,
                   std::deque<Pending>& pending);
  void WritePathRefreshingEntries(std::vector<Node>& path,
                                  const std::vector<int>& idx, int from);
  std::vector<Pending> RemoveForReinsert(Node& node);
  Node SplitNode(Node& node);
  void GrowRoot(Node& left, Node& right);

  // --- deletion machinery ---
  bool FindLeafPath(const Node& node, PointView point, uint32_t oid,
                    std::vector<Node>& path, std::vector<int>& idx);
  void CondenseTree(std::vector<Node>& path, std::vector<int>& idx);
  void ShrinkRoot();

  // --- search (const + re-entrant; all traversal state is per query) ---
  void SearchKnn(PageId id, int level, PointView query, KnnCandidates& cand,
                 IoStatsDelta* io) const;
  void SearchRange(PageId id, int level, PointView query, double radius,
                   std::vector<Neighbor>& out, IoStatsDelta* io) const;

  // --- validation / stats ---
  void VisitSubtree(const Node& node, std::vector<int>& path,
                    const NodeVisitor& visitor) const;
  void CollectStats(const Node& node, TreeStats& stats) const;
  void CollectRegions(const Node& node, RegionStatsCollector& collector) const;

  Options options_;
  size_t leaf_cap_;
  size_t node_cap_;
  size_t leaf_min_;
  size_t node_min_;

  mutable PageFile file_;
  // Optional warm cache on the query path (UseBufferPool); WriteNode
  // invalidates its frames so single-writer mutation stays coherent.
  std::unique_ptr<BufferPool> pool_;
  PageId root_id_;
  int root_level_ = 0;
  size_t size_ = 0;
  MaintenanceStats maintenance_;

  // Per-node forced-reinsertion bookkeeping, inherited from the SS-tree.
  std::set<PageId> reinserted_nodes_;
};

}  // namespace srtree

#endif  // SRTREE_CORE_SR_TREE_H_
