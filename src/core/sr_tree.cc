#include "src/core/sr_tree.h"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <limits>
#include <numeric>
#include <queue>

#include "src/common/check.h"
#include "src/debug/structural_auditor.h"
#include "src/geometry/kernel.h"
#include "src/storage/image_io.h"

namespace srtree {
namespace {

constexpr size_t kHeaderBytes = 8;

// Floating-point slack for sphere-containment checks (see ss_tree.cc).
constexpr double kEps = 1e-9;

}  // namespace

SRTree::Options SRTree::Validated(const Options& options) {
  CHECK_GT(options.dim, 0);
  CHECK_GT(options.min_utilization, 0.0);
  CHECK_LE(options.min_utilization, 0.5);
  CHECK_GT(options.reinsert_fraction, 0.0);
  CHECK_LT(options.reinsert_fraction, 1.0);
  return options;
}

size_t SRTree::LeafCapacityFor(const Options& options) {
  const size_t dim = static_cast<size_t>(options.dim);
  const size_t leaf_entry =
      dim * sizeof(double) + sizeof(uint32_t) + options.leaf_data_size;
  return (options.page_size - kHeaderBytes) / leaf_entry;
}

size_t SRTree::NodeCapacityFor(const Options& options) {
  // center + radius + rect(lo,hi) + weight + child: the entry is three times
  // the SS-tree's and one and a half times the R*-tree's (Section 5.3).
  const size_t dim = static_cast<size_t>(options.dim);
  const size_t node_entry = dim * sizeof(double) + sizeof(double) +
                            2 * dim * sizeof(double) + 2 * sizeof(uint32_t);
  return (options.page_size - kHeaderBytes) / node_entry;
}

SRTree::SRTree(const Options& options)
    : options_(Validated(options)),
      leaf_cap_(LeafCapacityFor(options_)),
      node_cap_(NodeCapacityFor(options_)),
      leaf_min_(std::max<size_t>(
          1, static_cast<size_t>(options_.min_utilization * leaf_cap_))),
      node_min_(std::max<size_t>(
          1, static_cast<size_t>(options_.min_utilization * node_cap_))),
      file_(options_.page_size) {
  CHECK_GE(leaf_cap_, 2u);
  CHECK_GE(node_cap_, 2u);

  // No other thread can hold a reference yet, but the analysis (correctly)
  // demands the lock for the guarded members and the REQUIRES helpers.
  MutexLock lock(writer_mu_);
  Node root;
  root.id = file_.Allocate();
  root.level = 0;
  WriteNode(root);
  root_id_ = root.id;
  CommitState();  // publish the empty tree as the first real version
}


// --------------------------------------------------------------------------
// Persistence
// --------------------------------------------------------------------------

namespace {

// v2 header record embedded in the SRIX container (src/storage/image_io.h);
// the container carries the magic, tag, and a CRC32C over these bytes.
struct SrImageHeader {
  int32_t dim;
  uint64_t page_size;
  uint64_t leaf_data_size;
  double min_utilization;
  double reinsert_fraction;
  uint8_t use_rect_in_radius;
  uint8_t use_rect_in_mindist;
  uint8_t pad[6];
  uint32_t root_id;
  int32_t root_level;
  uint64_t size;
};

// True iff `o` would pass every constructor CHECK, so Open() can reject a
// forged header with Corruption instead of crashing the process. The
// negated-range form also rejects NaN utilization/fraction values.
bool PlausibleOptions(const SRTree::Options& o) {
  if (o.dim <= 0 || o.dim > (1 << 16)) return false;
  if (!(o.min_utilization > 0.0 && o.min_utilization <= 0.5)) return false;
  if (!(o.reinsert_fraction > 0.0 && o.reinsert_fraction < 1.0)) return false;
  if (o.page_size <= kHeaderBytes || o.page_size > (1u << 28)) return false;
  if (o.leaf_data_size > o.page_size) return false;
  const size_t dim = static_cast<size_t>(o.dim);
  const size_t leaf_entry =
      dim * sizeof(double) + sizeof(uint32_t) + o.leaf_data_size;
  const size_t node_entry = dim * sizeof(double) + sizeof(double) +
                            2 * dim * sizeof(double) + 2 * sizeof(uint32_t);
  return (o.page_size - kHeaderBytes) / leaf_entry >= 2 &&
         (o.page_size - kHeaderBytes) / node_entry >= 2;
}

}  // namespace

Status SRTree::Save(const std::string& path) const {
  MutexLock lock(writer_mu_);
  SrImageHeader header = {};
  header.dim = options_.dim;
  header.page_size = options_.page_size;
  header.leaf_data_size = options_.leaf_data_size;
  header.min_utilization = options_.min_utilization;
  header.reinsert_fraction = options_.reinsert_fraction;
  header.use_rect_in_radius = options_.use_rect_in_radius ? 1 : 0;
  header.use_rect_in_mindist = options_.use_rect_in_mindist ? 1 : 0;
  header.root_id = root_id_;
  header.root_level = root_level_;
  header.size = size_;
  return AtomicWriteFile(path, [&](std::ostream& out) {
    RETURN_IF_ERROR(
        WriteIndexImageTo(out, kImageTag, &header, sizeof(header)));
    return file_.SaveTo(out);
  });
}

StatusOr<std::unique_ptr<SRTree>> SRTree::Open(const std::string& path) {
  StatusOr<std::string> tag = PeekIndexImageTag(path);
  if (!tag.ok()) return tag.status();

  SrImageHeader header = {};
  IndexImageFile image;
  if (*tag == "legacy-sr-v1") {
    // The pre-v2 compatibility window ("one release") has closed; the
    // host-endian unvalidated v1 header was the last unchecksummed load
    // path. Fail loudly instead of misreading the bytes.
    return Status::InvalidArgument(
        "pre-v2 SR-tree image is no longer readable; re-save with v2 "
        "(PointIndex::Save) using a release that still reads it");
  }
  RETURN_IF_ERROR(image.Open(path, kImageTag, &header, sizeof(header)));

  Options options;
  options.dim = header.dim;
  options.page_size = header.page_size;
  options.leaf_data_size = header.leaf_data_size;
  options.min_utilization = header.min_utilization;
  options.reinsert_fraction = header.reinsert_fraction;
  options.use_rect_in_radius = header.use_rect_in_radius != 0;
  options.use_rect_in_mindist = header.use_rect_in_mindist != 0;
  if (!PlausibleOptions(options) || header.root_level < 0 ||
      header.root_level > 64) {
    return Status::Corruption("implausible SR-tree header");
  }
  auto tree = std::make_unique<SRTree>(options);
  RETURN_IF_ERROR(tree->file_.LoadFrom(image.stream()));
  if (!tree->file_.is_live(header.root_id)) {
    return Status::Corruption("SR-tree root page is not live in the image");
  }
  {
    // LoadFrom leaves the restored contents unpublished; commit them under
    // the restored metadata so snapshots serve the reopened tree.
    MutexLock lock(tree->writer_mu_);
    tree->root_id_ = header.root_id;
    tree->root_level_ = header.root_level;
    tree->size_ = header.size;
    tree->maintenance_ = MaintenanceStats{};
    tree->CommitState();
  }
  RETURN_IF_ERROR(tree->CheckInvariants());
  return tree;
}

// --------------------------------------------------------------------------
// Page I/O
// --------------------------------------------------------------------------

void SRTree::SerializeNode(const Node& node, char* buf) const {
  CHECK_LE(node.count(), Capacity(node));
  PageWriter w(buf, options_.page_size);
  w.PutU8(static_cast<uint8_t>(node.level));
  w.PutU8(0);
  w.PutU16(static_cast<uint16_t>(node.count()));
  w.PutU32(0);
  if (node.is_leaf()) {
    for (const LeafEntry& e : node.points) {
      w.PutDoubles(e.point);
      w.PutU32(e.oid);
      w.Skip(options_.leaf_data_size);
    }
  } else {
    for (const NodeEntry& e : node.children) {
      w.PutDoubles(e.sphere.center());
      w.PutDouble(e.sphere.radius());
      w.PutDoubles(e.rect.lo());
      w.PutDoubles(e.rect.hi());
      w.PutU32(e.weight);
      w.PutU32(e.child);
    }
  }
}

SRTree::Node SRTree::DeserializeNode(const char* buf, PageId id) const {
  PageReader r(buf, options_.page_size);
  Node node;
  node.id = id;
  node.level = r.GetU8();
  r.GetU8();
  const size_t count = r.GetU16();
  r.GetU32();
  const size_t dim = static_cast<size_t>(options_.dim);
  if (node.level == 0) {
    node.points.resize(count);
    for (LeafEntry& e : node.points) {
      e.point.resize(dim);
      r.GetDoubles(e.point);
      e.oid = r.GetU32();
      r.Skip(options_.leaf_data_size);
    }
  } else {
    node.children.resize(count);
    for (NodeEntry& e : node.children) {
      Point center(dim);
      r.GetDoubles(center);
      const double radius = r.GetDouble();
      e.sphere = Sphere(std::move(center), radius);
      Point lo(dim), hi(dim);
      r.GetDoubles(lo);
      r.GetDoubles(hi);
      e.rect = Rect(std::move(lo), std::move(hi));
      e.weight = r.GetU32();
      e.child = r.GetU32();
    }
  }
  return node;
}

SRTree::Node SRTree::ReadNode(PageId id, int level, IoStatsDelta* io) const {
  std::vector<char> buf(options_.page_size);
  // Writer-side reads bypass the pool: WriteNode stages to the file without
  // touching pool frames, so the pool's legacy stamp-0 namespace would go
  // stale here. Queries still read pooled through the snapshot-stamped
  // ReadNodeSnapshot path below.
  file_.Read(id, buf.data(), level, io);
  Node node = DeserializeNode(buf.data(), id);
  DCHECK_EQ(node.level, level);
  return node;
}

SRTree::Node SRTree::PeekNode(PageId id) const {
  return DeserializeNode(file_.PeekPage(id), id);
}

void SRTree::WriteNode(const Node& node) {
  std::vector<char> buf(options_.page_size);
  SerializeNode(node, buf.data());
  // Copy-on-write staging: snapshots keep reading the committed buffer, and
  // the buffer pool needs no invalidation — its frames are keyed by stamp,
  // and staging a shared page moves this id to a fresh one.
  file_.StageWrite(node.id, buf.data());
}

SRTree::Node SRTree::ReadNodeSnapshot(const PageFile::Snapshot& snap,
                                      PageId id, int level,
                                      IoStatsDelta* io) const {
  std::vector<char> buf(options_.page_size);
  if (pool_ != nullptr) {
    pool_->ReadSnapshot(snap, id, buf.data(), level, io);
  } else {
    snap.Read(id, buf.data(), level, io);
  }
  Node node = DeserializeNode(buf.data(), id);
  DCHECK_EQ(node.level, level);
  return node;
}

void SRTree::CommitState() {
  file_.Commit({root_id_, static_cast<uint64_t>(root_level_), size_, 0});
}

// --------------------------------------------------------------------------
// Region helpers
// --------------------------------------------------------------------------

Point SRTree::NodeCentroid(const Node& node, uint32_t& weight) const {
  Point centroid(options_.dim, 0.0);
  uint64_t total = 0;
  if (node.is_leaf()) {
    for (const LeafEntry& e : node.points) {
      for (int d = 0; d < options_.dim; ++d) centroid[d] += e.point[d];
    }
    total = node.points.size();
  } else {
    for (const NodeEntry& e : node.children) {
      const double w = static_cast<double>(e.weight);
      for (int d = 0; d < options_.dim; ++d) {
        centroid[d] += w * e.sphere.center()[d];
      }
      total += e.weight;
    }
  }
  CHECK_GT(total, 0u);
  for (double& c : centroid) c /= static_cast<double>(total);
  weight = static_cast<uint32_t>(total);
  return centroid;
}

SRTree::NodeEntry SRTree::ComputeEntry(const Node& node) const {
  NodeEntry entry;
  Point center = NodeCentroid(node, entry.weight);

  Rect bound = Rect::Empty(options_.dim);
  double d_s = 0.0;  // reach of the child spheres from the new center
  double d_r = 0.0;  // reach of the child rectangles from the new center
  if (node.is_leaf()) {
    for (const LeafEntry& e : node.points) {
      bound.Expand(e.point);
      d_s = std::max(d_s, GetDistanceKernel().L2(center, e.point));
    }
    d_r = d_s;  // a point is its own rectangle
  } else {
    for (const NodeEntry& e : node.children) {
      bound.Expand(e.rect);
      d_s = std::max(d_s, GetDistanceKernel().L2(center, e.sphere.center()) +
                              e.sphere.radius());
      d_r = std::max(d_r, std::sqrt(e.rect.MaxDistSq(center)));
    }
  }
  // Section 4.2: the radius is min(d_s, d_r). Both bound every point of the
  // subtree, so the smaller one still covers them while shrinking the
  // sphere below what the SS-tree would use.
  const double radius =
      options_.use_rect_in_radius ? std::min(d_s, d_r) : d_s;
  entry.sphere = Sphere(std::move(center), radius);
  entry.rect = std::move(bound);
  entry.child = node.id;
  return entry;
}

PointView SRTree::EntryCentroid(const Node& node, size_t i) const {
  return node.is_leaf() ? PointView(node.points[i].point)
                        : PointView(node.children[i].sphere.center());
}

double SRTree::EntryMinDist(const NodeEntry& entry, PointView query) const {
  const double d_s = entry.sphere.MinDist(query);
  if (!options_.use_rect_in_mindist) return d_s;
  const double d_r = std::sqrt(entry.rect.MinDistSq(query));
  // Section 4.4: the true region is the intersection of both shapes, so the
  // larger of the two lower bounds is still a lower bound — and sharper.
  return std::max(d_s, d_r);
}

// Batched EntryMinDist over every child of `node`, into scratch.dist2.
// (scratch.dist and the SoA buffers are clobbered by the two batch calls.)
const std::vector<double>& SRTree::EntryMinDists(const Node& node,
                                                 PointView query,
                                                 KernelScratch& scratch) const {
  const size_t n = node.children.size();
  BatchSphereMinDist(scratch, query, n, [&](size_t i) -> const Sphere& {
    return node.children[i].sphere;
  });
  scratch.dist2 = scratch.dist;
  if (options_.use_rect_in_mindist) {
    const std::vector<double>& m2 = BatchRectMinDistSq(
        scratch, query, n,
        [&](size_t i) -> const Rect& { return node.children[i].rect; });
    for (size_t i = 0; i < n; ++i) {
      scratch.dist2[i] = std::max(scratch.dist2[i], std::sqrt(m2[i]));
    }
  }
  return scratch.dist2;
}

// --------------------------------------------------------------------------
// Insertion
// --------------------------------------------------------------------------

Status SRTree::Insert(PointView point, uint32_t oid) {
  if (static_cast<int>(point.size()) != options_.dim) {
    return Status::InvalidArgument("point dimensionality mismatch");
  }
  MutexLock lock(writer_mu_);
  reinserted_nodes_.clear();
  std::deque<Pending> pending;
  Pending item;
  item.level = 0;
  item.leaf = LeafEntry{Point(point.begin(), point.end()), oid};
  pending.push_back(std::move(item));
  ProcessPending(pending);
  ++size_;
  // One atomic publish per insert: concurrent snapshots see the whole
  // mutation (splits, reinserts, root growth included) or none of it.
  CommitState();
  return Status::OK();
}

void SRTree::ProcessPending(std::deque<Pending>& pending) {
  while (!pending.empty()) {
    Pending item = std::move(pending.front());
    pending.pop_front();
    InsertPending(item, pending);
  }
}

void SRTree::InsertPending(const Pending& item, std::deque<Pending>& pending) {
  const PointView centroid =
      item.level == 0 ? PointView(item.leaf.point)
                      : PointView(item.node.sphere.center());
  CHECK_LE(item.level, root_level_);

  std::vector<Node> path;
  std::vector<int> idx;
  Node cur = ReadNode(root_id_, root_level_);
  while (cur.level > item.level) {
    const int i = ChooseSubtree(cur, centroid);
    const PageId child = cur.children[i].child;
    const int child_level = cur.level - 1;
    path.push_back(std::move(cur));
    idx.push_back(i);
    cur = ReadNode(child, child_level);
  }
  if (item.level == 0) {
    cur.points.push_back(item.leaf);
  } else {
    cur.children.push_back(item.node);
  }
  path.push_back(std::move(cur));
  ResolvePath(path, idx, pending);
}

int SRTree::ChooseSubtree(const Node& node, PointView centroid) const {
  DCHECK(!node.is_leaf());
  int best = 0;
  double best_dist = std::numeric_limits<double>::infinity();
  for (size_t i = 0; i < node.children.size(); ++i) {
    const double d =
        GetDistanceKernel().SquaredL2(node.children[i].sphere.center(),
                                      centroid);
    if (d < best_dist) {
      best_dist = d;
      best = static_cast<int>(i);
    }
  }
  return best;
}

void SRTree::ResolvePath(std::vector<Node>& path, std::vector<int>& idx,
                         std::deque<Pending>& pending) {
  int i = static_cast<int>(path.size()) - 1;
  while (true) {
    Node& n = path[i];
    if (n.count() <= Capacity(n)) break;
    const bool is_root = (i == 0);
    if (!is_root && reinserted_nodes_.insert(n.id).second) {
      std::vector<Pending> removed = RemoveForReinsert(n);
      WritePathRefreshingEntries(path, idx, i);
      for (Pending& p : removed) pending.push_back(std::move(p));
      return;
    }
    Node right = SplitNode(n);
    if (is_root) {
      GrowRoot(n, right);
      return;
    }
    WriteNode(right);
    WriteNode(n);
    Node& parent = path[i - 1];
    parent.children[idx[i - 1]] = ComputeEntry(n);
    parent.children.push_back(ComputeEntry(right));
    --i;
  }
  WritePathRefreshingEntries(path, idx, i);
}

void SRTree::WritePathRefreshingEntries(std::vector<Node>& path,
                                        const std::vector<int>& idx,
                                        int from) {
  WriteNode(path[from]);
  for (int j = from - 1; j >= 0; --j) {
    path[j].children[idx[j]] = ComputeEntry(path[j + 1]);
    WriteNode(path[j]);
  }
}

std::vector<SRTree::Pending> SRTree::RemoveForReinsert(Node& node) {
  ++maintenance_.reinsertions;
  const size_t total = node.count();
  size_t evict = static_cast<size_t>(
      std::lround(options_.reinsert_fraction * static_cast<double>(total)));
  evict = std::clamp<size_t>(evict, 1, total - MinEntries(node));

  uint32_t weight = 0;
  const Point centroid = NodeCentroid(node, weight);
  std::vector<std::pair<double, size_t>> by_distance(total);
  for (size_t i = 0; i < total; ++i) {
    by_distance[i] = {
        GetDistanceKernel().SquaredL2(EntryCentroid(node, i), centroid), i};
  }
  std::sort(by_distance.begin(), by_distance.end(),
            [](const auto& a, const auto& b) { return a.first > b.first; });

  std::vector<size_t> evicted;
  for (size_t i = 0; i < evict; ++i) evicted.push_back(by_distance[i].second);
  std::vector<Pending> removed(evict);
  for (size_t i = 0; i < evict; ++i) {
    Pending& p = removed[evict - 1 - i];  // closest-first reinsertion
    p.level = node.level;
    if (node.is_leaf()) {
      p.leaf = node.points[evicted[i]];
    } else {
      p.node = node.children[evicted[i]];
    }
  }
  std::sort(evicted.begin(), evicted.end(), std::greater<size_t>());
  for (size_t pos : evicted) {
    if (node.is_leaf()) {
      node.points.erase(node.points.begin() + pos);
    } else {
      node.children.erase(node.children.begin() + pos);
    }
  }
  return removed;
}

SRTree::Node SRTree::SplitNode(Node& node) {
  ++maintenance_.splits;
  const size_t total = node.count();
  const size_t m = MinEntries(node);
  CHECK_GE(total, 2 * m);

  // The SR-tree inherits the SS-tree split: dimension of highest centroid
  // variance, position of least summed variance (Section 4.2).
  int best_dim = 0;
  double best_var = -1.0;
  for (int d = 0; d < options_.dim; ++d) {
    double sum = 0.0, sum_sq = 0.0;
    for (size_t i = 0; i < total; ++i) {
      const double x = EntryCentroid(node, i)[d];
      sum += x;
      sum_sq += x * x;
    }
    const double mean = sum / static_cast<double>(total);
    const double var = sum_sq / static_cast<double>(total) - mean * mean;
    if (var > best_var) {
      best_var = var;
      best_dim = d;
    }
  }

  std::vector<size_t> order(total);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return EntryCentroid(node, a)[best_dim] < EntryCentroid(node, b)[best_dim];
  });

  std::vector<double> prefix_sum(total + 1, 0.0), prefix_sq(total + 1, 0.0);
  for (size_t i = 0; i < total; ++i) {
    const double x = EntryCentroid(node, order[i])[best_dim];
    prefix_sum[i + 1] = prefix_sum[i] + x;
    prefix_sq[i + 1] = prefix_sq[i] + x * x;
  }
  auto group_variance = [&](size_t begin, size_t end) {
    const double n = static_cast<double>(end - begin);
    const double sum = prefix_sum[end] - prefix_sum[begin];
    const double sq = prefix_sq[end] - prefix_sq[begin];
    const double mean = sum / n;
    return sq / n - mean * mean;
  };

  size_t best_split = m;
  double best_cost = std::numeric_limits<double>::infinity();
  for (size_t split = m; split + m <= total; ++split) {
    const double cost = group_variance(0, split) + group_variance(split, total);
    if (cost < best_cost) {
      best_cost = cost;
      best_split = split;
    }
  }

  Node right;
  right.id = file_.Allocate();
  right.level = node.level;
  if (node.is_leaf()) {
    std::vector<LeafEntry> left_points, right_points;
    for (size_t i = 0; i < total; ++i) {
      auto& dst = (i < best_split) ? left_points : right_points;
      dst.push_back(std::move(node.points[order[i]]));
    }
    node.points = std::move(left_points);
    right.points = std::move(right_points);
  } else {
    std::vector<NodeEntry> left_children, right_children;
    for (size_t i = 0; i < total; ++i) {
      auto& dst = (i < best_split) ? left_children : right_children;
      dst.push_back(std::move(node.children[order[i]]));
    }
    node.children = std::move(left_children);
    right.children = std::move(right_children);
  }
  return right;
}

void SRTree::GrowRoot(Node& left, Node& right) {
  WriteNode(left);
  WriteNode(right);
  Node root;
  root.id = file_.Allocate();
  root.level = left.level + 1;
  root.children.push_back(ComputeEntry(left));
  root.children.push_back(ComputeEntry(right));
  WriteNode(root);
  root_id_ = root.id;
  root_level_ = root.level;
}

// --------------------------------------------------------------------------
// Deletion
// --------------------------------------------------------------------------

Status SRTree::Delete(PointView point, uint32_t oid) {
  if (static_cast<int>(point.size()) != options_.dim) {
    return Status::InvalidArgument("point dimensionality mismatch");
  }
  MutexLock lock(writer_mu_);
  std::vector<Node> path;
  std::vector<int> idx;
  Node root = ReadNode(root_id_, root_level_);
  if (!FindLeafPath(root, point, oid, path, idx)) {
    // Nothing staged, nothing committed: the version number advances only
    // on successful mutations.
    return Status::NotFound("point not present");
  }
  Node& leaf = path.back();
  bool erased = false;
  for (size_t i = 0; i < leaf.points.size(); ++i) {
    if (leaf.points[i].oid == oid &&
        std::equal(point.begin(), point.end(), leaf.points[i].point.begin(),
                   leaf.points[i].point.end())) {
      leaf.points.erase(leaf.points.begin() + i);
      erased = true;
      break;
    }
  }
  CHECK(erased);
  CondenseTree(path, idx);
  ShrinkRoot();
  --size_;
  CommitState();
  return Status::OK();
}

bool SRTree::FindLeafPath(const Node& node, PointView point, uint32_t oid,
                          std::vector<Node>& path, std::vector<int>& idx) {
  path.push_back(node);
  if (node.is_leaf()) {
    for (const LeafEntry& e : node.points) {
      if (e.oid == oid && std::equal(point.begin(), point.end(),
                                     e.point.begin(), e.point.end())) {
        return true;
      }
    }
    path.pop_back();
    return false;
  }
  for (size_t i = 0; i < node.children.size(); ++i) {
    const NodeEntry& e = node.children[i];
    if (!e.rect.Contains(point)) continue;
    if (GetDistanceKernel().L2(e.sphere.center(), point) >
        e.sphere.radius() * (1.0 + kEps) + kEps) {
      continue;
    }
    idx.push_back(static_cast<int>(i));
    Node child = ReadNode(e.child, node.level - 1);
    if (FindLeafPath(child, point, oid, path, idx)) return true;
    idx.pop_back();
  }
  path.pop_back();
  return false;
}

void SRTree::CondenseTree(std::vector<Node>& path, std::vector<int>& idx) {
  std::deque<Pending> orphans;
  for (int i = static_cast<int>(path.size()) - 1; i >= 1; --i) {
    Node& n = path[i];
    Node& parent = path[i - 1];
    if (n.count() < MinEntries(n)) {
      if (n.is_leaf()) {
        for (LeafEntry& e : n.points) {
          Pending p;
          p.level = 0;
          p.leaf = std::move(e);
          orphans.push_back(std::move(p));
        }
      } else {
        for (NodeEntry& e : n.children) {
          Pending p;
          p.level = n.level;
          p.node = e;
          orphans.push_back(std::move(p));
        }
      }
      file_.Free(n.id);
      parent.children.erase(parent.children.begin() + idx[i - 1]);
    } else {
      WriteNode(n);
      parent.children[idx[i - 1]] = ComputeEntry(n);
    }
  }
  WriteNode(path[0]);

  reinserted_nodes_.clear();
  ProcessPending(orphans);
}

void SRTree::ShrinkRoot() {
  for (;;) {
    Node root = PeekNode(root_id_);
    if (root.is_leaf()) return;
    if (root.children.empty()) {
      file_.Free(root.id);
      Node leaf;
      leaf.id = file_.Allocate();
      leaf.level = 0;
      WriteNode(leaf);
      root_id_ = leaf.id;
      root_level_ = 0;
      return;
    }
    if (root.children.size() > 1) return;
    const PageId child = root.children[0].child;
    file_.Free(root.id);
    root_id_ = child;
    --root_level_;
  }
}

// --------------------------------------------------------------------------
// Search
// --------------------------------------------------------------------------

// Each entry point pins the committed version for the duration of one
// query: the guard announces an epoch, the snapshot captures the version,
// and every page the traversal reads comes from that version — a writer
// committing mid-query changes nothing the traversal can see. The *Snapshot
// forms exist separately so SRTreeSnapshot (below) can run many queries
// against one pinned version.

std::vector<Neighbor> SRTree::KnnDfsImpl(PointView query, int k,
                                         IoStatsDelta* io) const {
  const EpochGuard guard(file_.epochs());
  return KnnDfsSnapshot(file_.AcquireSnapshot(guard), query, k, io);
}

std::vector<Neighbor> SRTree::KnnDfsSnapshot(const PageFile::Snapshot& snap,
                                             PointView query, int k,
                                             IoStatsDelta* io) const {
  CHECK_EQ(static_cast<int>(query.size()), options_.dim);
  KnnCandidates candidates(k);
  KernelScratch scratch;
  if (snap.meta(2) > 0) {
    SearchKnn(snap, static_cast<PageId>(snap.meta(0)),
              static_cast<int>(snap.meta(1)), query, candidates, scratch, io);
  }
  return candidates.TakeSorted();
}

void SRTree::SearchKnn(const PageFile::Snapshot& snap, PageId id, int level,
                       PointView query, KnnCandidates& cand,
                       KernelScratch& scratch, IoStatsDelta* io) const {
  Node node = ReadNodeSnapshot(snap, id, level, io);
  if (node.is_leaf()) {
    const double bound_sq = cand.PruneDistanceSquared();
    const std::vector<double>& d2 = BatchSquaredL2(
        scratch, query, node.points.size(),
        [&](size_t i) { return PointView(node.points[i].point); }, bound_sq);
    for (size_t i = 0; i < node.points.size(); ++i) {
      if (d2[i] <= bound_sq) cand.OfferSquared(d2[i], node.points[i].oid);
    }
    return;
  }
  const std::vector<double>& md = EntryMinDists(node, query, scratch);
  // Copy out of the scratch before recursing — the callee reuses it.
  std::vector<std::pair<double, size_t>> order(node.children.size());
  for (size_t i = 0; i < node.children.size(); ++i) order[i] = {md[i], i};
  std::sort(order.begin(), order.end());
  for (const auto& [mindist, i] : order) {
    if (mindist > cand.PruneDistance()) break;
    SearchKnn(snap, node.children[i].child, level - 1, query, cand, scratch,
              io);
  }
}

std::vector<Neighbor> SRTree::KnnBestFirstImpl(PointView query, int k,
                                               IoStatsDelta* io) const {
  const EpochGuard guard(file_.epochs());
  return KnnBestFirstSnapshot(file_.AcquireSnapshot(guard), query, k, io);
}

std::vector<Neighbor> SRTree::KnnBestFirstSnapshot(
    const PageFile::Snapshot& snap, PointView query, int k,
    IoStatsDelta* io) const {
  CHECK_EQ(static_cast<int>(query.size()), options_.dim);
  KnnCandidates candidates(k);
  if (snap.meta(2) == 0) return candidates.TakeSorted();

  // Global best-first traversal: always expand the pending subtree with the
  // smallest MINDIST. Stops once that bound exceeds the k-th candidate.
  struct Pending {
    double mindist;
    PageId id;
    int level;
    bool operator>(const Pending& other) const {
      return mindist > other.mindist;
    }
  };
  std::priority_queue<Pending, std::vector<Pending>, std::greater<Pending>>
      frontier;
  KernelScratch scratch;
  frontier.push(Pending{0.0, static_cast<PageId>(snap.meta(0)),
                        static_cast<int>(snap.meta(1))});
  while (!frontier.empty()) {
    const Pending next = frontier.top();
    frontier.pop();
    if (next.mindist > candidates.PruneDistance()) break;
    Node node = ReadNodeSnapshot(snap, next.id, next.level, io);
    if (node.is_leaf()) {
      const double bound_sq = candidates.PruneDistanceSquared();
      const std::vector<double>& d2 = BatchSquaredL2(
          scratch, query, node.points.size(),
          [&](size_t i) { return PointView(node.points[i].point); }, bound_sq);
      for (size_t i = 0; i < node.points.size(); ++i) {
        if (d2[i] <= bound_sq) {
          candidates.OfferSquared(d2[i], node.points[i].oid);
        }
      }
      continue;
    }
    const std::vector<double>& md = EntryMinDists(node, query, scratch);
    for (size_t i = 0; i < node.children.size(); ++i) {
      if (md[i] <= candidates.PruneDistance()) {
        frontier.push(Pending{md[i], node.children[i].child, node.level - 1});
      }
    }
  }
  return candidates.TakeSorted();
}

std::vector<Neighbor> SRTree::RangeImpl(PointView query, double radius,
                                        IoStatsDelta* io) const {
  const EpochGuard guard(file_.epochs());
  return RangeSnapshot(file_.AcquireSnapshot(guard), query, radius, io);
}

std::vector<Neighbor> SRTree::RangeSnapshot(const PageFile::Snapshot& snap,
                                            PointView query, double radius,
                                            IoStatsDelta* io) const {
  CHECK_EQ(static_cast<int>(query.size()), options_.dim);
  std::vector<Neighbor> result;
  KernelScratch scratch;
  if (snap.meta(2) > 0) {
    SearchRange(snap, static_cast<PageId>(snap.meta(0)),
                static_cast<int>(snap.meta(1)), query, radius, result, scratch,
                io);
  }
  std::sort(result.begin(), result.end());  // canonical (distance, oid)
  return result;
}

void SRTree::SearchRange(const PageFile::Snapshot& snap, PageId id, int level,
                         PointView query, double radius,
                         std::vector<Neighbor>& out, KernelScratch& scratch,
                         IoStatsDelta* io) const {
  Node node = ReadNodeSnapshot(snap, id, level, io);
  if (node.is_leaf()) {
    const double radius_sq = radius * radius;
    const std::vector<double>& d2 = BatchSquaredL2(
        scratch, query, node.points.size(),
        [&](size_t i) { return PointView(node.points[i].point); }, radius_sq);
    for (size_t i = 0; i < node.points.size(); ++i) {
      if (d2[i] <= radius_sq) {
        out.push_back(Neighbor{std::sqrt(d2[i]), node.points[i].oid});
      }
    }
    return;
  }
  const std::vector<double>& md = EntryMinDists(node, query, scratch);
  // Copy out of the scratch before recursing — the callee reuses it.
  std::vector<PageId> hits;
  for (size_t i = 0; i < node.children.size(); ++i) {
    if (md[i] <= radius) hits.push_back(node.children[i].child);
  }
  for (const PageId child : hits) {
    SearchRange(snap, child, level - 1, query, radius, out, scratch, io);
  }
}

// --------------------------------------------------------------------------
// Snapshots
// --------------------------------------------------------------------------

// A pinned committed version of an SRTree, queryable many times. Holds the
// epoch guard for its whole lifetime, so the version's pages cannot be
// reclaimed under it; implements SearchDispatch so the queries share the
// exact validation shell with PointIndex::Search.
class SRTreeSnapshot final : public IndexSnapshot, public SearchDispatch {
 public:
  explicit SRTreeSnapshot(const SRTree* tree)
      : IndexSnapshot(tree),
        tree_(tree),
        guard_(tree->file_.epochs()),
        snap_(tree->file_.AcquireSnapshot(guard_)) {}

  QueryResult Search(PointView query, const QuerySpec& spec) const override {
    return RunValidatedSearch(*this, tree_->options_.dim, query, spec);
  }
  uint64_t version() const override { return snap_.version(); }
  size_t size() const override { return static_cast<size_t>(snap_.meta(2)); }

  std::vector<Neighbor> KnnDfsImpl(PointView query, int k,
                                   IoStatsDelta* io) const override {
    return tree_->KnnDfsSnapshot(snap_, query, k, io);
  }
  std::vector<Neighbor> KnnBestFirstImpl(PointView query, int k,
                                         IoStatsDelta* io) const override {
    return tree_->KnnBestFirstSnapshot(snap_, query, k, io);
  }
  std::vector<Neighbor> RangeImpl(PointView query, double radius,
                                  IoStatsDelta* io) const override {
    return tree_->RangeSnapshot(snap_, query, radius, io);
  }

 private:
  const SRTree* tree_;
  EpochGuard guard_;  // declared before snap_: the announce precedes the pin
  PageFile::Snapshot snap_;
};

std::unique_ptr<IndexSnapshot> SRTree::AcquireSnapshot() const {
  return std::make_unique<SRTreeSnapshot>(this);
}

size_t SRTree::size() const {
  const EpochGuard guard(file_.epochs());
  return static_cast<size_t>(file_.AcquireSnapshot(guard).meta(2));
}

// --------------------------------------------------------------------------
// Stats & validation
// --------------------------------------------------------------------------

TreeStats SRTree::GetTreeStats() const {
  MutexLock lock(writer_mu_);
  TreeStats stats;
  stats.height = root_level_ + 1;
  CollectStats(PeekNode(root_id_), stats);
  return stats;
}

void SRTree::CollectStats(const Node& node, TreeStats& stats) const {
  if (node.is_leaf()) {
    ++stats.leaf_count;
    stats.entry_count += node.points.size();
    return;
  }
  ++stats.node_count;
  for (const NodeEntry& e : node.children) {
    CollectStats(PeekNode(e.child), stats);
  }
}

RegionSummary SRTree::LeafRegionSummary() const {
  MutexLock lock(writer_mu_);
  RegionStatsCollector collector;
  CollectRegions(PeekNode(root_id_), collector);
  return collector.Finish();
}

void SRTree::CollectRegions(const Node& node,
                            RegionStatsCollector& collector) const {
  if (node.is_leaf()) {
    if (node.points.empty()) return;
    collector.CountLeaf();
    const NodeEntry entry = ComputeEntry(node);
    collector.AddSphere(entry.sphere);
    collector.AddRect(entry.rect);
    return;
  }
  for (const NodeEntry& e : node.children) {
    CollectRegions(PeekNode(e.child), collector);
  }
}

Status SRTree::ExportEntries(
    const std::function<void(PointView, uint32_t)>& fn) const {
  MutexLock lock(writer_mu_);
  std::vector<PageId> stack = {root_id_};
  while (!stack.empty()) {
    const Node node = PeekNode(stack.back());
    stack.pop_back();
    if (node.is_leaf()) {
      for (const LeafEntry& e : node.points) fn(e.point, e.oid);
      continue;
    }
    for (const NodeEntry& e : node.children) stack.push_back(e.child);
  }
  return Status::OK();
}

Status SRTree::CheckInvariants() const { return debug::AuditIndex(*this); }

void SRTree::VisitNodes(const NodeVisitor& visitor) const {
  MutexLock lock(writer_mu_);
  std::vector<int> path;
  VisitSubtree(PeekNode(root_id_), path, visitor);
}

void SRTree::VisitSubtree(const Node& node, std::vector<int>& path,
                          const NodeVisitor& visitor) const {
  NodeView view;
  view.level = node.level;
  view.capacity = Capacity(node);
  view.min_entries = MinEntries(node);
  view.entries.reserve(node.children.size());
  for (const NodeEntry& e : node.children) {
    view.entries.push_back(EntryView{&e.rect, &e.sphere, e.weight,
                                     /*has_weight=*/true});
  }
  view.points.reserve(node.points.size());
  for (const LeafEntry& e : node.points) view.points.push_back(e.point);
  visitor(path, view);
  for (size_t i = 0; i < node.children.size(); ++i) {
    path.push_back(static_cast<int>(i));
    VisitSubtree(PeekNode(node.children[i].child), path, visitor);
    path.pop_back();
  }
}

AuditSpec SRTree::GetAuditSpec() const {
  AuditSpec spec;
  spec.dim = options_.dim;
  spec.rect_semantics = RectSemantics::kExactMbr;
  spec.has_spheres = true;
  // With the Section 4.2 rule enabled the radius is min(d_s, d_r), so it
  // can never exceed the farthest corner of the entry's exact MBR; the
  // SS-style ablation (d_s only) carries no such bound.
  spec.sphere_bounded_by_rect = options_.use_rect_in_radius;
  spec.has_weights = true;
  spec.internal_root_min2 = true;
  return spec;
}

}  // namespace srtree
