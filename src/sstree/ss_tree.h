// SS-tree (White & Jain, ICDE 1996) — the similarity-indexing baseline the
// SR-tree improves upon (Section 2.3 of the paper).
//
// Region shape: bounding spheres centered at the centroid of the underlying
// points. Insertion descends to the child with the nearest centroid; splits
// choose the dimension with the highest coordinate variance of the child
// centroids; forced reinsertion evicts 30% of a node's entries unless that
// node already reinserted during the current insertion.

#ifndef SRTREE_SSTREE_SS_TREE_H_
#define SRTREE_SSTREE_SS_TREE_H_

#include <deque>
#include <set>
#include <vector>

#include "src/geometry/kernel.h"
#include "src/geometry/sphere.h"
#include "src/index/knn.h"
#include "src/index/point_index.h"
#include "src/storage/buffer_pool.h"
#include "src/storage/page_file.h"

namespace srtree {

class SSTree : public PointIndex {
 public:
  struct Options {
    int dim = 2;
    size_t page_size = kDefaultPageSize;
    size_t leaf_data_size = 512;
    double min_utilization = 0.4;
    double reinsert_fraction = 0.3;
  };

  explicit SSTree(const Options& options);

  // Type tag embedded in the v2 index-image container.
  static constexpr char kImageTag[] = "sstree";

  // Checksummed atomic image persistence (see PointIndex::Save).
  Status Save(const std::string& path) const override;
  static StatusOr<std::unique_ptr<SSTree>> Open(const std::string& path);

  int dim() const override { return options_.dim; }
  size_t size() const override { return size_; }
  std::string name() const override { return "SS-tree"; }

  Status Insert(PointView point, uint32_t oid) override;
  Status Delete(PointView point, uint32_t oid) override;

  TreeStats GetTreeStats() const override;
  Status CheckInvariants() const override;
  void VisitNodes(const NodeVisitor& visitor) const override;
  AuditSpec GetAuditSpec() const override;

  // Reports both the leaf bounding spheres (the SS-tree's real regions) and
  // the bounding rectangles of the same leaves — the Figure 6 measurement.
  RegionSummary LeafRegionSummary() const override;

  MaintenanceStats GetMaintenanceStats() const override {
    return maintenance_;
  }

  // Forwarders to the page file's counters. io_stats() is the deprecated
  // unlocked reference (single-threaded benches only); the reset is locked
  // but only meaningful on a quiesced index — see PointIndex::ResetIoStats
  // for the exclusion contract the concurrent fuzzer asserts.
  const IoStats& io_stats() const override { return file_.stats(); }
  void ResetIoStats() override { file_.ResetStats(); }
  IoStats GetIoStats() const override { return file_.GetIoStats(); }

  void SimulateBufferPool(size_t capacity) override {
    file_.SimulateCache(capacity);
  }
  void UseBufferPool(size_t capacity) override {
    pool_ = capacity > 0 ? std::make_unique<BufferPool>(&file_, capacity)
                         : nullptr;
  }

  size_t leaf_capacity() const override { return leaf_cap_; }
  size_t node_capacity() const override { return node_cap_; }
  int height() const { return root_level_ + 1; }

 protected:
  std::vector<Neighbor> KnnDfsImpl(PointView query, int k,
                                   IoStatsDelta* io) const override;
  std::vector<Neighbor> KnnBestFirstImpl(PointView query, int k,
                                         IoStatsDelta* io) const override;
  std::vector<Neighbor> RangeImpl(PointView query, double radius,
                                  IoStatsDelta* io) const override;

 private:
  struct LeafEntry {
    Point point;
    uint32_t oid;
  };

  struct NodeEntry {
    Sphere sphere;    // center = centroid of underlying points
    uint32_t weight;  // number of points in the subtree
    PageId child;
  };

  struct Node {
    PageId id = kInvalidPageId;
    int level = 0;
    std::vector<NodeEntry> children;
    std::vector<LeafEntry> points;

    bool is_leaf() const { return level == 0; }
    size_t count() const { return is_leaf() ? points.size() : children.size(); }
  };

  struct Pending {
    int level;
    LeafEntry leaf;
    NodeEntry node;
  };

  // --- page I/O ---
  Node ReadNode(PageId id, int level,
                IoStatsDelta* io = nullptr) const;
  Node PeekNode(PageId id) const;
  void WriteNode(const Node& node);
  void SerializeNode(const Node& node, char* buf) const;
  Node DeserializeNode(const char* buf, PageId id) const;

  size_t Capacity(const Node& node) const {
    return node.is_leaf() ? leaf_cap_ : node_cap_;
  }
  size_t MinEntries(const Node& node) const {
    return node.is_leaf() ? leaf_min_ : node_min_;
  }

  // --- region helpers ---
  // Centroid of the entries of `node` (weighted by subtree size for inner
  // nodes) and total weight.
  Point NodeCentroid(const Node& node, uint32_t& weight) const;
  // The parent-entry sphere/weight describing `node`: center = centroid,
  // radius = max distance from the centroid to child spheres (or points).
  NodeEntry ComputeEntry(const Node& node) const;
  PointView EntryCentroid(const Node& node, size_t i) const;

  // --- insertion machinery ---
  void ProcessPending(std::deque<Pending>& pending);
  void InsertPending(const Pending& item, std::deque<Pending>& pending);
  int ChooseSubtree(const Node& node, PointView centroid) const;
  void ResolvePath(std::vector<Node>& path, std::vector<int>& idx,
                   std::deque<Pending>& pending);
  void WritePathRefreshingEntries(std::vector<Node>& path,
                                  const std::vector<int>& idx, int from);
  std::vector<Pending> RemoveForReinsert(Node& node);
  Node SplitNode(Node& node);
  void GrowRoot(Node& left, Node& right);

  // --- deletion machinery ---
  bool FindLeafPath(const Node& node, PointView point, uint32_t oid,
                    std::vector<Node>& path, std::vector<int>& idx);
  void CondenseTree(std::vector<Node>& path, std::vector<int>& idx);
  void ShrinkRoot();

  // --- search ---
  void SearchKnn(PageId id, int level, PointView query,
                 KnnCandidates& cand, KernelScratch& scratch,
                 IoStatsDelta* io) const;
  void SearchRange(PageId id, int level, PointView query,
                   double radius, std::vector<Neighbor>& out,
                   KernelScratch& scratch, IoStatsDelta* io) const;

  // --- validation / stats ---
  void VisitSubtree(const Node& node, std::vector<int>& path,
                    const NodeVisitor& visitor) const;
  void CollectStats(const Node& node, TreeStats& stats) const;
  void CollectRegions(const Node& node, RegionStatsCollector& collector) const;

  Options options_;
  size_t leaf_cap_;
  size_t node_cap_;
  size_t leaf_min_;
  size_t node_min_;

  mutable PageFile file_;
  // Optional warm cache on the query path (UseBufferPool); WriteNode
  // invalidates its frames so single-writer mutation stays coherent.
  std::unique_ptr<BufferPool> pool_;
  PageId root_id_;
  int root_level_ = 0;
  size_t size_ = 0;
  MaintenanceStats maintenance_;

  // Nodes that already used forced reinsertion during the current top-level
  // insertion (the SS-tree's per-node rule, Section 2.3).
  std::set<PageId> reinserted_nodes_;
};

}  // namespace srtree

#endif  // SRTREE_SSTREE_SS_TREE_H_
