#include "src/sstree/ss_tree.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <queue>
#include <numeric>

#include "src/common/check.h"
#include "src/debug/structural_auditor.h"
#include "src/geometry/kernel.h"
#include "src/geometry/rect.h"
#include "src/storage/image_io.h"

namespace srtree {
namespace {

constexpr size_t kHeaderBytes = 8;

// Relative slack for floating-point containment checks: radii are computed
// by the same arithmetic as the distances they bound, but triangle-
// inequality chains can be off by a few ulps.
constexpr double kEps = 1e-9;

}  // namespace

SSTree::SSTree(const Options& options) : options_(options), file_(options.page_size) {
  CHECK_GT(options_.dim, 0);
  CHECK_GT(options_.min_utilization, 0.0);
  CHECK_LE(options_.min_utilization, 0.5);
  CHECK_GT(options_.reinsert_fraction, 0.0);
  CHECK_LT(options_.reinsert_fraction, 1.0);

  const size_t dim = static_cast<size_t>(options_.dim);
  const size_t leaf_entry =
      dim * sizeof(double) + sizeof(uint32_t) + options_.leaf_data_size;
  // center + radius + weight + child pointer.
  const size_t node_entry =
      dim * sizeof(double) + sizeof(double) + 2 * sizeof(uint32_t);
  leaf_cap_ = (options_.page_size - kHeaderBytes) / leaf_entry;
  node_cap_ = (options_.page_size - kHeaderBytes) / node_entry;
  CHECK_GE(leaf_cap_, 2u);
  CHECK_GE(node_cap_, 2u);
  leaf_min_ = std::max<size_t>(
      1, static_cast<size_t>(options_.min_utilization * leaf_cap_));
  node_min_ = std::max<size_t>(
      1, static_cast<size_t>(options_.min_utilization * node_cap_));

  Node root;
  root.id = file_.Allocate();
  root.level = 0;
  WriteNode(root);
  root_id_ = root.id;
}

// --------------------------------------------------------------------------
// Persistence
// --------------------------------------------------------------------------

namespace {

// v2 header record embedded in the SRIX container (src/storage/image_io.h);
// the container carries the magic, tag, and a CRC32C over these bytes.
struct SsImageHeader {
  int32_t dim;
  uint32_t pad0;
  uint64_t page_size;
  uint64_t leaf_data_size;
  double min_utilization;
  double reinsert_fraction;
  uint32_t root_id;
  int32_t root_level;
  uint64_t size;
};

// True iff `o` would pass every constructor CHECK, so Open() can reject a
// forged header with Corruption instead of crashing the process. The
// negated-range form also rejects NaN utilization/fraction values.
bool PlausibleOptions(const SSTree::Options& o) {
  if (o.dim <= 0 || o.dim > (1 << 16)) return false;
  if (!(o.min_utilization > 0.0 && o.min_utilization <= 0.5)) return false;
  if (!(o.reinsert_fraction > 0.0 && o.reinsert_fraction < 1.0)) return false;
  if (o.page_size <= kHeaderBytes || o.page_size > (1u << 28)) return false;
  if (o.leaf_data_size > o.page_size) return false;
  const size_t dim = static_cast<size_t>(o.dim);
  const size_t leaf_entry =
      dim * sizeof(double) + sizeof(uint32_t) + o.leaf_data_size;
  const size_t node_entry =
      dim * sizeof(double) + sizeof(double) + 2 * sizeof(uint32_t);
  return (o.page_size - kHeaderBytes) / leaf_entry >= 2 &&
         (o.page_size - kHeaderBytes) / node_entry >= 2;
}

}  // namespace

Status SSTree::Save(const std::string& path) const {
  SsImageHeader header = {};
  header.dim = options_.dim;
  header.page_size = options_.page_size;
  header.leaf_data_size = options_.leaf_data_size;
  header.min_utilization = options_.min_utilization;
  header.reinsert_fraction = options_.reinsert_fraction;
  header.root_id = root_id_;
  header.root_level = root_level_;
  header.size = size_;
  return AtomicWriteFile(path, [&](std::ostream& out) {
    RETURN_IF_ERROR(
        WriteIndexImageTo(out, kImageTag, &header, sizeof(header)));
    return file_.SaveTo(out);
  });
}

StatusOr<std::unique_ptr<SSTree>> SSTree::Open(const std::string& path) {
  SsImageHeader header = {};
  IndexImageFile image;
  RETURN_IF_ERROR(image.Open(path, kImageTag, &header, sizeof(header)));

  Options options;
  options.dim = header.dim;
  options.page_size = header.page_size;
  options.leaf_data_size = header.leaf_data_size;
  options.min_utilization = header.min_utilization;
  options.reinsert_fraction = header.reinsert_fraction;
  if (!PlausibleOptions(options) || header.root_level < 0 ||
      header.root_level > 64) {
    return Status::Corruption("implausible SS-tree header");
  }
  auto tree = std::make_unique<SSTree>(options);
  RETURN_IF_ERROR(tree->file_.LoadFrom(image.stream()));
  if (!tree->file_.is_live(header.root_id)) {
    return Status::Corruption("SS-tree root page is not live in the image");
  }
  tree->root_id_ = header.root_id;
  tree->root_level_ = header.root_level;
  tree->size_ = header.size;
  tree->maintenance_ = MaintenanceStats{};
  RETURN_IF_ERROR(tree->CheckInvariants());
  return tree;
}

// --------------------------------------------------------------------------
// Page I/O
// --------------------------------------------------------------------------

void SSTree::SerializeNode(const Node& node, char* buf) const {
  CHECK_LE(node.count(), Capacity(node));
  PageWriter w(buf, options_.page_size);
  w.PutU8(static_cast<uint8_t>(node.level));
  w.PutU8(0);
  w.PutU16(static_cast<uint16_t>(node.count()));
  w.PutU32(0);
  if (node.is_leaf()) {
    for (const LeafEntry& e : node.points) {
      w.PutDoubles(e.point);
      w.PutU32(e.oid);
      w.Skip(options_.leaf_data_size);
    }
  } else {
    for (const NodeEntry& e : node.children) {
      w.PutDoubles(e.sphere.center());
      w.PutDouble(e.sphere.radius());
      w.PutU32(e.weight);
      w.PutU32(e.child);
    }
  }
}

SSTree::Node SSTree::DeserializeNode(const char* buf, PageId id) const {
  PageReader r(buf, options_.page_size);
  Node node;
  node.id = id;
  node.level = r.GetU8();
  r.GetU8();
  const size_t count = r.GetU16();
  r.GetU32();
  const size_t dim = static_cast<size_t>(options_.dim);
  if (node.level == 0) {
    node.points.resize(count);
    for (LeafEntry& e : node.points) {
      e.point.resize(dim);
      r.GetDoubles(e.point);
      e.oid = r.GetU32();
      r.Skip(options_.leaf_data_size);
    }
  } else {
    node.children.resize(count);
    for (NodeEntry& e : node.children) {
      Point center(dim);
      r.GetDoubles(center);
      const double radius = r.GetDouble();
      e.sphere = Sphere(std::move(center), radius);
      e.weight = r.GetU32();
      e.child = r.GetU32();
    }
  }
  return node;
}

SSTree::Node SSTree::ReadNode(PageId id, int level, IoStatsDelta* io) const {
  std::vector<char> buf(options_.page_size);
  if (pool_ != nullptr) {
    pool_->Read(id, buf.data(), level, io);
  } else {
    file_.Read(id, buf.data(), level, io);
  }
  Node node = DeserializeNode(buf.data(), id);
  DCHECK_EQ(node.level, level);
  return node;
}

SSTree::Node SSTree::PeekNode(PageId id) const {
  return DeserializeNode(file_.PeekPage(id), id);
}

void SSTree::WriteNode(const Node& node) {
  std::vector<char> buf(options_.page_size);
  SerializeNode(node, buf.data());
  if (pool_ != nullptr) pool_->Discard(node.id);  // invalidate stale frame
  file_.Write(node.id, buf.data());  // srlint: allow(R6) frozen-tree write path (no snapshot readers)
}

// --------------------------------------------------------------------------
// Region helpers
// --------------------------------------------------------------------------

Point SSTree::NodeCentroid(const Node& node, uint32_t& weight) const {
  Point centroid(options_.dim, 0.0);
  uint64_t total = 0;
  if (node.is_leaf()) {
    for (const LeafEntry& e : node.points) {
      for (int d = 0; d < options_.dim; ++d) centroid[d] += e.point[d];
    }
    total = node.points.size();
  } else {
    for (const NodeEntry& e : node.children) {
      const double w = static_cast<double>(e.weight);
      for (int d = 0; d < options_.dim; ++d) {
        centroid[d] += w * e.sphere.center()[d];
      }
      total += e.weight;
    }
  }
  CHECK_GT(total, 0u);
  for (double& c : centroid) c /= static_cast<double>(total);
  weight = static_cast<uint32_t>(total);
  return centroid;
}

SSTree::NodeEntry SSTree::ComputeEntry(const Node& node) const {
  NodeEntry entry;
  Point center = NodeCentroid(node, entry.weight);
  double radius = 0.0;
  if (node.is_leaf()) {
    for (const LeafEntry& e : node.points) {
      radius = std::max(radius, GetDistanceKernel().L2(center, e.point));
    }
  } else {
    for (const NodeEntry& e : node.children) {
      radius = std::max(radius,
                        GetDistanceKernel().L2(center, e.sphere.center()) +
                            e.sphere.radius());
    }
  }
  entry.sphere = Sphere(std::move(center), radius);
  entry.child = node.id;
  return entry;
}

PointView SSTree::EntryCentroid(const Node& node, size_t i) const {
  return node.is_leaf() ? PointView(node.points[i].point)
                        : PointView(node.children[i].sphere.center());
}

// --------------------------------------------------------------------------
// Insertion
// --------------------------------------------------------------------------

Status SSTree::Insert(PointView point, uint32_t oid) {
  if (static_cast<int>(point.size()) != options_.dim) {
    return Status::InvalidArgument("point dimensionality mismatch");
  }
  reinserted_nodes_.clear();
  std::deque<Pending> pending;
  Pending item;
  item.level = 0;
  item.leaf = LeafEntry{Point(point.begin(), point.end()), oid};
  pending.push_back(std::move(item));
  ProcessPending(pending);
  ++size_;
  return Status::OK();
}

void SSTree::ProcessPending(std::deque<Pending>& pending) {
  while (!pending.empty()) {
    Pending item = std::move(pending.front());
    pending.pop_front();
    InsertPending(item, pending);
  }
}

void SSTree::InsertPending(const Pending& item, std::deque<Pending>& pending) {
  const PointView centroid =
      item.level == 0 ? PointView(item.leaf.point)
                      : PointView(item.node.sphere.center());
  CHECK_LE(item.level, root_level_);

  std::vector<Node> path;
  std::vector<int> idx;
  Node cur = ReadNode(root_id_, root_level_);
  while (cur.level > item.level) {
    const int i = ChooseSubtree(cur, centroid);
    const PageId child = cur.children[i].child;
    const int child_level = cur.level - 1;
    path.push_back(std::move(cur));
    idx.push_back(i);
    cur = ReadNode(child, child_level);
  }
  if (item.level == 0) {
    cur.points.push_back(item.leaf);
  } else {
    cur.children.push_back(item.node);
  }
  path.push_back(std::move(cur));
  ResolvePath(path, idx, pending);
}

int SSTree::ChooseSubtree(const Node& node, PointView centroid) const {
  DCHECK(!node.is_leaf());
  int best = 0;
  double best_dist = std::numeric_limits<double>::infinity();
  for (size_t i = 0; i < node.children.size(); ++i) {
    const double d =
        GetDistanceKernel().SquaredL2(node.children[i].sphere.center(), centroid);
    if (d < best_dist) {
      best_dist = d;
      best = static_cast<int>(i);
    }
  }
  return best;
}

void SSTree::ResolvePath(std::vector<Node>& path, std::vector<int>& idx,
                         std::deque<Pending>& pending) {
  int i = static_cast<int>(path.size()) - 1;
  while (true) {
    Node& n = path[i];
    if (n.count() <= Capacity(n)) break;
    const bool is_root = (i == 0);
    if (!is_root && reinserted_nodes_.insert(n.id).second) {
      std::vector<Pending> removed = RemoveForReinsert(n);
      WritePathRefreshingEntries(path, idx, i);
      for (Pending& p : removed) pending.push_back(std::move(p));
      return;
    }
    Node right = SplitNode(n);
    if (is_root) {
      GrowRoot(n, right);
      return;
    }
    WriteNode(right);
    WriteNode(n);
    Node& parent = path[i - 1];
    parent.children[idx[i - 1]] = ComputeEntry(n);
    parent.children.push_back(ComputeEntry(right));
    --i;
  }
  WritePathRefreshingEntries(path, idx, i);
}

void SSTree::WritePathRefreshingEntries(std::vector<Node>& path,
                                        const std::vector<int>& idx,
                                        int from) {
  WriteNode(path[from]);
  for (int j = from - 1; j >= 0; --j) {
    path[j].children[idx[j]] = ComputeEntry(path[j + 1]);
    WriteNode(path[j]);
  }
}

std::vector<SSTree::Pending> SSTree::RemoveForReinsert(Node& node) {
  ++maintenance_.reinsertions;
  const size_t total = node.count();
  size_t evict = static_cast<size_t>(
      std::lround(options_.reinsert_fraction * static_cast<double>(total)));
  evict = std::clamp<size_t>(evict, 1, total - MinEntries(node));

  uint32_t weight = 0;
  const Point centroid = NodeCentroid(node, weight);
  std::vector<std::pair<double, size_t>> by_distance(total);
  for (size_t i = 0; i < total; ++i) {
    by_distance[i] = {
        GetDistanceKernel().SquaredL2(EntryCentroid(node, i), centroid), i};
  }
  std::sort(by_distance.begin(), by_distance.end(),
            [](const auto& a, const auto& b) { return a.first > b.first; });

  std::vector<size_t> evicted;
  for (size_t i = 0; i < evict; ++i) evicted.push_back(by_distance[i].second);
  std::vector<Pending> removed(evict);
  for (size_t i = 0; i < evict; ++i) {
    Pending& p = removed[evict - 1 - i];  // closest-first reinsertion
    p.level = node.level;
    if (node.is_leaf()) {
      p.leaf = node.points[evicted[i]];
    } else {
      p.node = node.children[evicted[i]];
    }
  }
  std::sort(evicted.begin(), evicted.end(), std::greater<size_t>());
  for (size_t pos : evicted) {
    if (node.is_leaf()) {
      node.points.erase(node.points.begin() + pos);
    } else {
      node.children.erase(node.children.begin() + pos);
    }
  }
  return removed;
}

SSTree::Node SSTree::SplitNode(Node& node) {
  ++maintenance_.splits;
  const size_t total = node.count();
  const size_t m = MinEntries(node);
  CHECK_GE(total, 2 * m);

  // Split dimension: highest coordinate variance of the child centroids
  // (points, for a leaf) — the SS-tree rule the SR-tree inherits.
  int best_dim = 0;
  double best_var = -1.0;
  for (int d = 0; d < options_.dim; ++d) {
    double sum = 0.0, sum_sq = 0.0;
    for (size_t i = 0; i < total; ++i) {
      const double x = EntryCentroid(node, i)[d];
      sum += x;
      sum_sq += x * x;
    }
    const double mean = sum / static_cast<double>(total);
    const double var = sum_sq / static_cast<double>(total) - mean * mean;
    if (var > best_var) {
      best_var = var;
      best_dim = d;
    }
  }

  std::vector<size_t> order(total);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return EntryCentroid(node, a)[best_dim] < EntryCentroid(node, b)[best_dim];
  });

  // Split position: minimize the summed coordinate variance of the two
  // groups along the split dimension, subject to minimum utilization.
  std::vector<double> prefix_sum(total + 1, 0.0), prefix_sq(total + 1, 0.0);
  for (size_t i = 0; i < total; ++i) {
    const double x = EntryCentroid(node, order[i])[best_dim];
    prefix_sum[i + 1] = prefix_sum[i] + x;
    prefix_sq[i + 1] = prefix_sq[i] + x * x;
  }
  auto group_variance = [&](size_t begin, size_t end) {
    const double n = static_cast<double>(end - begin);
    const double sum = prefix_sum[end] - prefix_sum[begin];
    const double sq = prefix_sq[end] - prefix_sq[begin];
    const double mean = sum / n;
    return sq / n - mean * mean;
  };

  size_t best_split = m;
  double best_cost = std::numeric_limits<double>::infinity();
  for (size_t split = m; split + m <= total; ++split) {
    const double cost = group_variance(0, split) + group_variance(split, total);
    if (cost < best_cost) {
      best_cost = cost;
      best_split = split;
    }
  }

  Node right;
  right.id = file_.Allocate();
  right.level = node.level;
  if (node.is_leaf()) {
    std::vector<LeafEntry> left_points, right_points;
    for (size_t i = 0; i < total; ++i) {
      auto& dst = (i < best_split) ? left_points : right_points;
      dst.push_back(std::move(node.points[order[i]]));
    }
    node.points = std::move(left_points);
    right.points = std::move(right_points);
  } else {
    std::vector<NodeEntry> left_children, right_children;
    for (size_t i = 0; i < total; ++i) {
      auto& dst = (i < best_split) ? left_children : right_children;
      dst.push_back(std::move(node.children[order[i]]));
    }
    node.children = std::move(left_children);
    right.children = std::move(right_children);
  }
  return right;
}

void SSTree::GrowRoot(Node& left, Node& right) {
  WriteNode(left);
  WriteNode(right);
  Node root;
  root.id = file_.Allocate();
  root.level = left.level + 1;
  root.children.push_back(ComputeEntry(left));
  root.children.push_back(ComputeEntry(right));
  WriteNode(root);
  root_id_ = root.id;
  root_level_ = root.level;
}

// --------------------------------------------------------------------------
// Deletion
// --------------------------------------------------------------------------

Status SSTree::Delete(PointView point, uint32_t oid) {
  if (static_cast<int>(point.size()) != options_.dim) {
    return Status::InvalidArgument("point dimensionality mismatch");
  }
  std::vector<Node> path;
  std::vector<int> idx;
  Node root = ReadNode(root_id_, root_level_);
  if (!FindLeafPath(root, point, oid, path, idx)) {
    return Status::NotFound("point not present");
  }
  Node& leaf = path.back();
  bool erased = false;
  for (size_t i = 0; i < leaf.points.size(); ++i) {
    if (leaf.points[i].oid == oid &&
        std::equal(point.begin(), point.end(), leaf.points[i].point.begin(),
                   leaf.points[i].point.end())) {
      leaf.points.erase(leaf.points.begin() + i);
      erased = true;
      break;
    }
  }
  CHECK(erased);
  CondenseTree(path, idx);
  ShrinkRoot();
  --size_;
  return Status::OK();
}

bool SSTree::FindLeafPath(const Node& node, PointView point, uint32_t oid,
                          std::vector<Node>& path, std::vector<int>& idx) {
  path.push_back(node);
  if (node.is_leaf()) {
    for (const LeafEntry& e : node.points) {
      if (e.oid == oid && std::equal(point.begin(), point.end(),
                                     e.point.begin(), e.point.end())) {
        return true;
      }
    }
    path.pop_back();
    return false;
  }
  for (size_t i = 0; i < node.children.size(); ++i) {
    const Sphere& s = node.children[i].sphere;
    if (GetDistanceKernel().L2(s.center(), point) >
        s.radius() * (1.0 + kEps) + kEps) {
      continue;
    }
    idx.push_back(static_cast<int>(i));
    Node child = ReadNode(node.children[i].child, node.level - 1);
    if (FindLeafPath(child, point, oid, path, idx)) return true;
    idx.pop_back();
  }
  path.pop_back();
  return false;
}

void SSTree::CondenseTree(std::vector<Node>& path, std::vector<int>& idx) {
  std::deque<Pending> orphans;
  for (int i = static_cast<int>(path.size()) - 1; i >= 1; --i) {
    Node& n = path[i];
    Node& parent = path[i - 1];
    if (n.count() < MinEntries(n)) {
      if (n.is_leaf()) {
        for (LeafEntry& e : n.points) {
          Pending p;
          p.level = 0;
          p.leaf = std::move(e);
          orphans.push_back(std::move(p));
        }
      } else {
        for (NodeEntry& e : n.children) {
          Pending p;
          p.level = n.level;
          p.node = e;
          orphans.push_back(std::move(p));
        }
      }
      file_.Free(n.id);
      parent.children.erase(parent.children.begin() + idx[i - 1]);
    } else {
      WriteNode(n);
      parent.children[idx[i - 1]] = ComputeEntry(n);
    }
  }
  WriteNode(path[0]);

  reinserted_nodes_.clear();
  ProcessPending(orphans);
}

void SSTree::ShrinkRoot() {
  for (;;) {
    Node root = PeekNode(root_id_);
    if (root.is_leaf()) return;
    if (root.children.empty()) {
      file_.Free(root.id);
      Node leaf;
      leaf.id = file_.Allocate();
      leaf.level = 0;
      WriteNode(leaf);
      root_id_ = leaf.id;
      root_level_ = 0;
      return;
    }
    if (root.children.size() > 1) return;
    const PageId child = root.children[0].child;
    file_.Free(root.id);
    root_id_ = child;
    --root_level_;
  }
}

// --------------------------------------------------------------------------
// Search
// --------------------------------------------------------------------------

std::vector<Neighbor> SSTree::KnnDfsImpl(PointView query, int k,
                                     IoStatsDelta* io) const {
  CHECK_EQ(static_cast<int>(query.size()), options_.dim);
  KnnCandidates candidates(k);
  KernelScratch scratch;
  if (size_ > 0) {
    SearchKnn(root_id_, root_level_, query, candidates, scratch, io);
  }
  return candidates.TakeSorted();
}

void SSTree::SearchKnn(PageId id, int level, PointView query,
                   KnnCandidates& cand, KernelScratch& scratch,
                   IoStatsDelta* io) const {
  Node node = ReadNode(id, level, io);
  if (node.is_leaf()) {
    const double bound_sq = cand.PruneDistanceSquared();
    const std::vector<double>& d2 = BatchSquaredL2(
        scratch, query, node.points.size(),
        [&](size_t i) { return PointView(node.points[i].point); }, bound_sq);
    for (size_t i = 0; i < node.points.size(); ++i) {
      if (d2[i] <= bound_sq) cand.OfferSquared(d2[i], node.points[i].oid);
    }
    return;
  }
  // Sphere MINDIST is inherently a distance, so interior ordering and
  // pruning stay in distance space (cand.PruneDistance()).
  const std::vector<double>& md = BatchSphereMinDist(
      scratch, query, node.children.size(),
      [&](size_t i) -> const Sphere& { return node.children[i].sphere; });
  // Copy out of the scratch before recursing — the callee reuses it.
  std::vector<std::pair<double, size_t>> order(node.children.size());
  for (size_t i = 0; i < node.children.size(); ++i) order[i] = {md[i], i};
  std::sort(order.begin(), order.end());
  for (const auto& [mindist, i] : order) {
    if (mindist > cand.PruneDistance()) break;
    SearchKnn(node.children[i].child, level - 1, query, cand, scratch, io);
  }
}


std::vector<Neighbor> SSTree::KnnBestFirstImpl(PointView query, int k,
                                           IoStatsDelta* io) const {
  CHECK_EQ(static_cast<int>(query.size()), options_.dim);
  KnnCandidates candidates(k);
  if (size_ == 0) return candidates.TakeSorted();

  // Global best-first traversal: always expand the pending subtree with the
  // smallest MINDIST. Stops once that bound exceeds the k-th candidate.
  struct Pending {
    double mindist;
    PageId id;
    int level;
    bool operator>(const Pending& other) const {
      return mindist > other.mindist;
    }
  };
  std::priority_queue<Pending, std::vector<Pending>, std::greater<Pending>>
      frontier;
  KernelScratch scratch;
  frontier.push(Pending{0.0, root_id_, root_level_});
  while (!frontier.empty()) {
    const Pending next = frontier.top();
    frontier.pop();
    if (next.mindist > candidates.PruneDistance()) break;
    Node node = ReadNode(next.id, next.level, io);
    if (node.is_leaf()) {
      const double bound_sq = candidates.PruneDistanceSquared();
      const std::vector<double>& d2 = BatchSquaredL2(
          scratch, query, node.points.size(),
          [&](size_t i) { return PointView(node.points[i].point); }, bound_sq);
      for (size_t i = 0; i < node.points.size(); ++i) {
        if (d2[i] <= bound_sq) {
          candidates.OfferSquared(d2[i], node.points[i].oid);
        }
      }
      continue;
    }
    const std::vector<double>& md = BatchSphereMinDist(
        scratch, query, node.children.size(),
        [&](size_t i) -> const Sphere& { return node.children[i].sphere; });
    for (size_t i = 0; i < node.children.size(); ++i) {
      if (md[i] <= candidates.PruneDistance()) {
        frontier.push(Pending{md[i], node.children[i].child, node.level - 1});
      }
    }
  }
  return candidates.TakeSorted();
}

std::vector<Neighbor> SSTree::RangeImpl(PointView query, double radius,
                                    IoStatsDelta* io) const {
  CHECK_EQ(static_cast<int>(query.size()), options_.dim);
  std::vector<Neighbor> result;
  KernelScratch scratch;
  if (size_ > 0) {
    SearchRange(root_id_, root_level_, query, radius, result, scratch, io);
  }
  std::sort(result.begin(), result.end());  // canonical (distance, oid)
  return result;
}

void SSTree::SearchRange(PageId id, int level, PointView query,
                     double radius, std::vector<Neighbor>& out,
                     KernelScratch& scratch, IoStatsDelta* io) const {
  Node node = ReadNode(id, level, io);
  if (node.is_leaf()) {
    const double radius_sq = radius * radius;
    const std::vector<double>& d2 = BatchSquaredL2(
        scratch, query, node.points.size(),
        [&](size_t i) { return PointView(node.points[i].point); }, radius_sq);
    for (size_t i = 0; i < node.points.size(); ++i) {
      if (d2[i] <= radius_sq) {
        out.push_back(Neighbor{std::sqrt(d2[i]), node.points[i].oid});
      }
    }
    return;
  }
  const std::vector<double>& md = BatchSphereMinDist(
      scratch, query, node.children.size(),
      [&](size_t i) -> const Sphere& { return node.children[i].sphere; });
  // Copy out of the scratch before recursing — the callee reuses it.
  std::vector<PageId> hits;
  for (size_t i = 0; i < node.children.size(); ++i) {
    if (md[i] <= radius) hits.push_back(node.children[i].child);
  }
  for (const PageId child : hits) {
    SearchRange(child, level - 1, query, radius, out, scratch, io);
  }
}

// --------------------------------------------------------------------------
// Stats & validation
// --------------------------------------------------------------------------

TreeStats SSTree::GetTreeStats() const {
  TreeStats stats;
  stats.height = root_level_ + 1;
  CollectStats(PeekNode(root_id_), stats);
  return stats;
}

void SSTree::CollectStats(const Node& node, TreeStats& stats) const {
  if (node.is_leaf()) {
    ++stats.leaf_count;
    stats.entry_count += node.points.size();
    return;
  }
  ++stats.node_count;
  for (const NodeEntry& e : node.children) {
    CollectStats(PeekNode(e.child), stats);
  }
}

RegionSummary SSTree::LeafRegionSummary() const {
  RegionStatsCollector collector;
  CollectRegions(PeekNode(root_id_), collector);
  return collector.Finish();
}

void SSTree::CollectRegions(const Node& node,
                            RegionStatsCollector& collector) const {
  if (node.is_leaf()) {
    if (node.points.empty()) return;
    collector.CountLeaf();
    collector.AddSphere(ComputeEntry(node).sphere);
    Rect bound = Rect::Empty(options_.dim);
    for (const LeafEntry& e : node.points) bound.Expand(e.point);
    collector.AddRect(bound);
    return;
  }
  for (const NodeEntry& e : node.children) {
    CollectRegions(PeekNode(e.child), collector);
  }
}

Status SSTree::CheckInvariants() const { return debug::AuditIndex(*this); }

void SSTree::VisitNodes(const NodeVisitor& visitor) const {
  std::vector<int> path;
  VisitSubtree(PeekNode(root_id_), path, visitor);
}

void SSTree::VisitSubtree(const Node& node, std::vector<int>& path,
                          const NodeVisitor& visitor) const {
  NodeView view;
  view.level = node.level;
  view.capacity = Capacity(node);
  view.min_entries = MinEntries(node);
  view.entries.reserve(node.children.size());
  for (const NodeEntry& e : node.children) {
    view.entries.push_back(EntryView{/*rect=*/nullptr, &e.sphere, e.weight,
                                     /*has_weight=*/true});
  }
  view.points.reserve(node.points.size());
  for (const LeafEntry& e : node.points) view.points.push_back(e.point);
  visitor(path, view);
  for (size_t i = 0; i < node.children.size(); ++i) {
    path.push_back(static_cast<int>(i));
    VisitSubtree(PeekNode(node.children[i].child), path, visitor);
    path.pop_back();
  }
}

AuditSpec SSTree::GetAuditSpec() const {
  AuditSpec spec;
  spec.dim = options_.dim;
  spec.rect_semantics = RectSemantics::kNone;  // spheres are the only shape
  spec.has_spheres = true;
  spec.has_weights = true;
  spec.internal_root_min2 = true;
  return spec;
}

}  // namespace srtree
