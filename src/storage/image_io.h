// Durable file plumbing for persisted index images.
//
// Everything that puts an index image on disk goes through this layer
// (srlint rule R5 forbids raw std::ofstream/std::ifstream on images outside
// src/storage/), which supplies the two guarantees the formats themselves
// cannot:
//
//   * AtomicWriteFile(): a Save() either fully replaces the destination or
//     leaves it untouched. The image is serialized in memory, written to
//     `<path>.tmp`, flushed and fsync()ed, and only then rename()d over the
//     destination (with a best-effort fsync of the parent directory). Any
//     failure unlinks the temp file and surfaces IoError; a crash at any
//     point leaves either the old image or the new one, never a torn mix.
//
//   * IndexImageFile / WriteIndexImageTo(): the common container every
//     tree-index image shares — magic, format version, an 8-byte tree-type
//     tag, and a CRC32C-guarded header record — so an image can never be
//     opened as the wrong tree type and a corrupted header is detected
//     before any state is built from it.
//
// The SaveFailpoints hook is the seam the fault-injection harness
// (src/debug/fault_injection.h) uses to simulate short writes, failed
// fsync, and failed rename without touching production control flow.

#ifndef SRTREE_STORAGE_IMAGE_IO_H_
#define SRTREE_STORAGE_IMAGE_IO_H_

#include <cstdint>
#include <fstream>
#include <functional>
#include <istream>
#include <ostream>
#include <string>

#include "src/common/status.h"

namespace srtree {

// ---------------------------------------------------------------------------
// Little-endian framing primitives shared by the image formats. The v2
// formats fix their framing byte order so an image is not a host-endian
// dump; page *contents* (doubles laid out by PageWriter) remain host
// representation, which the per-page checksum still guards.

inline void PutLe32(std::ostream& out, uint32_t v) {
  const char b[4] = {static_cast<char>(v), static_cast<char>(v >> 8),
                     static_cast<char>(v >> 16), static_cast<char>(v >> 24)};
  out.write(b, sizeof(b));
}

inline void PutLe64(std::ostream& out, uint64_t v) {
  PutLe32(out, static_cast<uint32_t>(v));
  PutLe32(out, static_cast<uint32_t>(v >> 32));
}

inline bool GetLe32(std::istream& in, uint32_t* v) {
  unsigned char b[4];
  in.read(reinterpret_cast<char*>(b), sizeof(b));
  if (!in.good()) return false;
  *v = static_cast<uint32_t>(b[0]) | (static_cast<uint32_t>(b[1]) << 8) |
       (static_cast<uint32_t>(b[2]) << 16) |
       (static_cast<uint32_t>(b[3]) << 24);
  return true;
}

inline bool GetLe64(std::istream& in, uint64_t* v) {
  uint32_t lo = 0, hi = 0;
  if (!GetLe32(in, &lo) || !GetLe32(in, &hi)) return false;
  *v = static_cast<uint64_t>(lo) | (static_cast<uint64_t>(hi) << 32);
  return true;
}

// ---------------------------------------------------------------------------
// Atomic whole-file replacement.

// Test-only failpoints on the atomic-save path. Production runs with none
// installed; debug::FaultInjector installs one to drive the durability
// fuzz. All hooks default to "no fault".
class SaveFailpoints {
 public:
  virtual ~SaveFailpoints() = default;

  // Called with the fully serialized image before it reaches the
  // filesystem. May truncate or mutate `image` (simulating the bytes a
  // short or torn write would leave in the temp file); returning false
  // makes the physical write report failure.
  virtual bool OnWrite(std::string* image) {
    (void)image;
    return true;
  }
  // Returning false simulates fsync() failing on the temp file.
  virtual bool OnFlush() { return true; }
  // Returning false simulates rename() failing.
  virtual bool OnRename() { return true; }
};

// Installs `failpoints` for subsequent AtomicWriteFile calls on this
// process (nullptr restores the default). Not thread-safe; tests only.
void SetSaveFailpointsForTest(SaveFailpoints* failpoints);

// Serializes via `writer` into memory, then atomically replaces `path` as
// described above. On any failure the destination is untouched and the
// temp file is removed.
Status AtomicWriteFile(const std::string& path,
                       const std::function<Status(std::ostream&)>& writer);

// ---------------------------------------------------------------------------
// Raw byte helpers.

// Reads the whole file into `out`. IoError if it cannot be opened/read.
Status ReadFileToString(const std::string& path, std::string* out);

// Non-atomic, non-checksummed byte dump. Exists so the fault-injection
// harness can plant deliberately corrupted images; production code saves
// through AtomicWriteFile().
Status WriteStringToFileForTest(const std::string& data,
                                const std::string& path);

// ---------------------------------------------------------------------------
// The tree-index image container (format v2).
//
//   [u32 magic "SRIX"] [u32 container version = 2] [char tag[8]]
//   [u32 header_size] [u32 crc32c(header)] [header bytes]
//   [PageFile image to end of file — see page_file.cc]
//
// The framing integers are little-endian; `tag` names the tree type (e.g.
// "srtree"), so OpenIndex() can dispatch and a mismatched Open() fails with
// Corruption instead of misinterpreting geometry.

inline constexpr uint32_t kIndexImageMagic = 0x58495253u;  // "SRIX"
inline constexpr uint32_t kIndexImageVersion = 2;
inline constexpr size_t kIndexImageTagBytes = 8;

// Writes the container framing + header record to `out`, leaving the
// stream positioned for the PageFile image. Used inside an
// AtomicWriteFile() writer.
Status WriteIndexImageTo(std::ostream& out, const char* tag,
                         const void* header, size_t header_size);

// Reader side: validates magic/version/tag/header-CRC and hands back the
// header bytes plus a stream positioned at the embedded PageFile image.
class IndexImageFile {
 public:
  // Opens `path`, validates the container against `tag`, and copies
  // exactly `header_size` header bytes into `header`. Corruption on any
  // mismatch (wrong magic/tag/size, CRC failure), IoError if unreadable.
  Status Open(const std::string& path, const char* tag, void* header,
              size_t header_size);

  // Opens `path` with no container validation, positioned at offset 0.
  // Only the pre-v2 (legacy) loaders use this.
  Status OpenRaw(const std::string& path);

  // The stream, positioned at the page-file image (Open) or the start of
  // the file (OpenRaw).
  std::istream& stream() { return in_; }

 private:
  std::ifstream in_;
};

// Identifies a saved index file: returns the container tag for a v2 image,
// or the sniffed legacy marker "legacy-sr-v1" for a pre-v2 SR-tree file (no
// longer openable — the marker exists so Open paths can explain WHY the file
// fails instead of reporting garbage). Corruption if the file is neither.
StatusOr<std::string> PeekIndexImageTag(const std::string& path);

}  // namespace srtree

#endif  // SRTREE_STORAGE_IMAGE_IO_H_
