// A sharded LRU buffer pool over a PageFile.
//
// The paper's measurements assume uncached reads, so the index structures
// talk to PageFile directly by default. BufferPool exists for the serving
// path (src/engine/): reads served from the pool do not count as disk
// reads; dirty pages are written back on eviction.
//
// Concurrency: frames are partitioned into shards (page id modulo shard
// count), each with its own mutex, LRU list, and frame map, so concurrent
// readers contend only when they touch the same shard. A frame being copied
// out is *pinned* first — eviction skips pinned frames — which lets the
// copy run outside the shard lock without another thread tearing the frame
// under it. Read()/Pin() are safe from any number of threads; Write(),
// Discard(), and FlushAll() require external exclusion against all other
// calls (single-writer, like the PageFile underneath).

#ifndef SRTREE_STORAGE_BUFFER_POOL_H_
#define SRTREE_STORAGE_BUFFER_POOL_H_

#include <atomic>
#include <list>
#include <memory>
#include <unordered_map>
#include <vector>

#include "src/base/mutex.h"
#include "src/base/thread_annotations.h"
#include "src/storage/page_file.h"

namespace srtree {

class BufferPool {
 public:
  // `capacity` is the total number of pages held in memory; must be >= 1.
  // The pool uses min(shards, capacity) shards so every shard owns at least
  // one frame.
  explicit BufferPool(PageFile* file, size_t capacity, size_t shards = 8);

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  ~BufferPool();

  // The pin protocol as a capability: a thread holding a pin may read the
  // frame's bytes without the shard lock, because eviction skips pinned
  // frames. PinCapability is the (zero-state) capability the analysis
  // tracks; ScopedPin below is its scoped holder.
  class CAPABILITY("pin") PinCapability {};

  // A pinned view of one cached page. While the guard lives, the frame
  // cannot be evicted, so data() stays valid and untorn. Move-only; unpins
  // on destruction. The move machinery is outside what the static analysis
  // can follow — ScopedPin is the annotated, analysis-checked wrapper.
  class PageGuard {
   public:
    PageGuard(PageGuard&& other) noexcept;
    PageGuard& operator=(PageGuard&& other) noexcept;
    PageGuard(const PageGuard&) = delete;
    PageGuard& operator=(const PageGuard&) = delete;
    ~PageGuard();

    const char* data() const { return data_; }

   private:
    friend class BufferPool;
    PageGuard(BufferPool* pool, size_t shard, PageId id, const char* data)
        : pool_(pool), shard_(shard), id_(id), data_(data) {}

    BufferPool* pool_ = nullptr;
    size_t shard_ = 0;
    PageId id_ = 0;
    const char* data_ = nullptr;
  };

  // Scoped-capability form of the pin/unpin protocol: construction pins the
  // page (shared — any number of concurrent pins), destruction unpins.
  // -Wthread-safety verifies every ScopedPin is released on every path.
  // Non-movable by design; a pin that needs to change hands uses PageGuard.
  class SCOPED_CAPABILITY ScopedPin {
   public:
    ScopedPin(BufferPool& pool, PageId id, int level = -1,
              IoStatsDelta* delta = nullptr) ACQUIRE_SHARED(pool.pin_cap_)
        : guard_(pool.Pin(id, level, delta)) {}
    ~ScopedPin() RELEASE() {}

    ScopedPin(const ScopedPin&) = delete;
    ScopedPin& operator=(const ScopedPin&) = delete;

    const char* data() const { return guard_.data(); }

   private:
    PageGuard guard_;
  };

  // Pins the page in its shard, fetching it from the file on a miss (which
  // counts one disk read in the file's stats and in `delta`). A hit costs
  // no disk read.
  // [[nodiscard]]: a discarded guard unpins immediately, silently turning
  // the caller's "pinned" pointer reads into use-after-evict races.
  [[nodiscard]] PageGuard Pin(PageId id, int level = -1,
                              IoStatsDelta* delta = nullptr);

  // Reads through the pool: Pin() + copy into `out` (page_size bytes).
  // Safe to call concurrently with other Read()/Pin() calls.
  void Read(PageId id, char* out, int level = -1,
            IoStatsDelta* delta = nullptr);

  // Writes into the pool; the page is flushed to the file on eviction or
  // FlushAll(), so back-to-back updates of a hot node cost one disk write.
  void Write(PageId id, const char* data);

  // Drops the page from the pool without writeback; pair with
  // PageFile::Free when a node is deleted, or call before a direct
  // PageFile::Write to invalidate the stale frame.
  void Discard(PageId id);

  // Writes every dirty frame back to the file.
  void FlushAll();

  uint64_t hits() const { return hits_.load(std::memory_order_relaxed); }
  uint64_t misses() const { return misses_.load(std::memory_order_relaxed); }
  size_t capacity() const { return capacity_; }
  size_t shard_count() const { return shards_.size(); }

 private:
  struct Frame {
    PageId id;
    std::unique_ptr<char[]> data;
    bool dirty = false;
    int pins = 0;
  };

  // std::list keeps Frame addresses stable across LRU splices, which is
  // what allows a PageGuard to hold the data pointer without the lock.
  using LruList = std::list<Frame>;

  // Capability map: shard.mu guards the shard's LRU order, its frame map,
  // and (through them) every Frame's dirty/pins fields. Frame *bytes* are
  // readable without the lock only under a pin.
  struct Shard {
    Mutex mu;
    LruList lru GUARDED_BY(mu);  // front = most recently used
    std::unordered_map<PageId, LruList::iterator> frames GUARDED_BY(mu);
    size_t capacity = 0;  // set once at construction, then read-only
  };

  Shard& ShardFor(PageId id) { return *shards_[id % shards_.size()]; }

  Frame& Touch(Shard& shard, LruList::iterator it) REQUIRES(shard.mu);
  Frame& InsertFrame(Shard& shard, PageId id) REQUIRES(shard.mu);
  void EvictIfFull(Shard& shard) REQUIRES(shard.mu);
  void WriteBack(Shard& shard, Frame& frame) REQUIRES(shard.mu);

  void Unpin(size_t shard_index, PageId id);

  PageFile* file_;
  size_t capacity_;
  std::vector<std::unique_ptr<Shard>> shards_;
  PinCapability pin_cap_;  // carrier for the ScopedPin annotations
  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> misses_{0};
};

}  // namespace srtree

#endif  // SRTREE_STORAGE_BUFFER_POOL_H_
