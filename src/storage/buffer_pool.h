// An LRU buffer pool over a PageFile.
//
// The paper's measurements assume uncached reads, so the index structures
// talk to PageFile directly by default. BufferPool exists for downstream
// users who want realistic warm-cache behavior: reads served from the pool
// do not count as disk reads; dirty pages are written back on eviction.

#ifndef SRTREE_STORAGE_BUFFER_POOL_H_
#define SRTREE_STORAGE_BUFFER_POOL_H_

#include <list>
#include <memory>
#include <unordered_map>

#include "src/storage/page_file.h"

namespace srtree {

class BufferPool {
 public:
  // `capacity` is the number of pages held in memory; must be >= 1.
  BufferPool(PageFile* file, size_t capacity);

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  ~BufferPool();

  // Reads through the pool. A hit costs no disk read; a miss fetches the
  // page from the underlying file (counting one read) and may evict the
  // least recently used frame (writing it back first if dirty).
  void Read(PageId id, char* out, int level = -1);

  // Writes into the pool; the page is flushed to the file on eviction or
  // FlushAll(), so back-to-back updates of a hot node cost one disk write.
  void Write(PageId id, const char* data);

  // Drops the page from the pool without writeback; pair with
  // PageFile::Free when a node is deleted.
  void Discard(PageId id);

  // Writes every dirty frame back to the file.
  void FlushAll();

  uint64_t hits() const { return hits_; }
  uint64_t misses() const { return misses_; }
  size_t capacity() const { return capacity_; }

 private:
  struct Frame {
    PageId id;
    std::unique_ptr<char[]> data;
    bool dirty;
  };

  using LruList = std::list<Frame>;

  // Moves the frame to the MRU position and returns it.
  Frame& Touch(LruList::iterator it);
  Frame& InsertFrame(PageId id);
  void EvictIfFull();
  void WriteBack(Frame& frame);

  PageFile* file_;
  size_t capacity_;
  LruList lru_;  // front = most recently used
  std::unordered_map<PageId, LruList::iterator> frames_;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
};

}  // namespace srtree

#endif  // SRTREE_STORAGE_BUFFER_POOL_H_
