// A sharded LRU buffer pool over a PageFile.
//
// The paper's measurements assume uncached reads, so the index structures
// talk to PageFile directly by default. BufferPool exists for the serving
// path (src/engine/): reads served from the pool do not count as disk
// reads; dirty pages are written back on eviction.
//
// Concurrency: frames are partitioned into shards (page id modulo shard
// count), each with its own mutex, LRU list, and frame map, so concurrent
// readers contend only when they touch the same shard. A frame being copied
// out is *pinned* first — eviction skips pinned frames — which lets the
// copy run outside the shard lock without another thread tearing the frame
// under it. Read()/Pin() are safe from any number of threads. Write() and
// Discard() are single-writer among themselves (like the PageFile
// underneath) but safe against concurrent Pin()/Read() of the same page:
// instead of mutating or freeing a pinned frame they detach it to a
// "zombie" side list, where in-flight pins keep reading the superseded
// bytes; the last unpin frees it. FlushAll() still requires full external
// exclusion.
//
// Snapshot reads: frames are keyed by (page id, buffer stamp). Legacy
// direct reads use stamp 0 and are invalidated by Write()/Discard() as
// before. PinSnapshot()/ReadSnapshot() cache a PageFile::Snapshot's pages
// under the snapshot's own stamps — copy-on-write gives a changed page a
// fresh stamp, so a stale hit is impossible by construction and retired
// versions need no invalidation protocol at all: their frames simply age
// out of the LRU.

#ifndef SRTREE_STORAGE_BUFFER_POOL_H_
#define SRTREE_STORAGE_BUFFER_POOL_H_

#include <atomic>
#include <list>
#include <memory>
#include <unordered_map>
#include <vector>

#include "src/base/mutex.h"
#include "src/base/thread_annotations.h"
#include "src/storage/page_file.h"

namespace srtree {

class BufferPool {
 public:
  // `capacity` is the total number of pages held in memory; must be >= 1.
  // The pool uses min(shards, capacity) shards so every shard owns at least
  // one frame.
  explicit BufferPool(PageFile* file, size_t capacity, size_t shards = 8);

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  ~BufferPool();

  // The pin protocol as a capability: a thread holding a pin may read the
  // frame's bytes without the shard lock, because eviction skips pinned
  // frames. PinCapability is the (zero-state) capability the analysis
  // tracks; ScopedPin below is its scoped holder.
  class CAPABILITY("pin") PinCapability {};

  // A pinned view of one cached page. While the guard lives, the frame
  // cannot be evicted, so data() stays valid and untorn. Move-only; unpins
  // on destruction. The move machinery is outside what the static analysis
  // can follow — ScopedPin is the annotated, analysis-checked wrapper.
  class PageGuard {
   public:
    PageGuard(PageGuard&& other) noexcept;
    PageGuard& operator=(PageGuard&& other) noexcept;
    PageGuard(const PageGuard&) = delete;
    PageGuard& operator=(const PageGuard&) = delete;
    ~PageGuard();

    const char* data() const { return data_; }

   private:
    friend class BufferPool;
    PageGuard(BufferPool* pool, size_t shard, void* frame, const char* data)
        : pool_(pool), shard_(shard), frame_(frame), data_(data) {}

    BufferPool* pool_ = nullptr;
    size_t shard_ = 0;
    // The pinned Frame (opaque here to keep Frame private). Held by address
    // — stable across LRU splices and zombie detachment — so Unpin releases
    // exactly the frame that was pinned, even after the (id, stamp) key has
    // been superseded in the map.
    void* frame_ = nullptr;
    const char* data_ = nullptr;
  };

  // Scoped-capability form of the pin/unpin protocol: construction pins the
  // page (shared — any number of concurrent pins), destruction unpins.
  // -Wthread-safety verifies every ScopedPin is released on every path.
  // Non-movable by design; a pin that needs to change hands uses PageGuard.
  class SCOPED_CAPABILITY ScopedPin {
   public:
    ScopedPin(BufferPool& pool, PageId id, int level = -1,
              IoStatsDelta* delta = nullptr) ACQUIRE_SHARED(pool.pin_cap_)
        : guard_(pool.Pin(id, level, delta)) {}
    ScopedPin(BufferPool& pool, const PageFile::Snapshot& snap, PageId id,
              int level = -1, IoStatsDelta* delta = nullptr)
        ACQUIRE_SHARED(pool.pin_cap_)
        : guard_(pool.PinSnapshot(snap, id, level, delta)) {}
    ~ScopedPin() RELEASE() {}

    ScopedPin(const ScopedPin&) = delete;
    ScopedPin& operator=(const ScopedPin&) = delete;

    const char* data() const { return guard_.data(); }

   private:
    PageGuard guard_;
  };

  // Pins the page in its shard, fetching it from the file on a miss (which
  // counts one disk read in the file's stats and in `delta`). A hit costs
  // no disk read.
  // [[nodiscard]]: a discarded guard unpins immediately, silently turning
  // the caller's "pinned" pointer reads into use-after-evict races.
  [[nodiscard]] PageGuard Pin(PageId id, int level = -1,
                              IoStatsDelta* delta = nullptr);

  // Pins the page *as of the given snapshot*, fetching through
  // Snapshot::Read on a miss. The frame is keyed by the snapshot's buffer
  // stamp for the page, so versions never alias: a page rewritten since the
  // snapshot lives in the pool under a different stamp. The snapshot (and
  // its EpochGuard) must outlive the returned guard.
  [[nodiscard]] PageGuard PinSnapshot(const PageFile::Snapshot& snap,
                                      PageId id, int level = -1,
                                      IoStatsDelta* delta = nullptr);

  // Reads through the pool: Pin() + copy into `out` (page_size bytes).
  // Safe to call concurrently with other Read()/Pin() calls.
  void Read(PageId id, char* out, int level = -1,
            IoStatsDelta* delta = nullptr);

  // Snapshot-keyed variant of Read(); see PinSnapshot.
  void ReadSnapshot(const PageFile::Snapshot& snap, PageId id, char* out,
                    int level = -1, IoStatsDelta* delta = nullptr);

  // Writes into the pool; the page is flushed to the file on eviction or
  // FlushAll(), so back-to-back updates of a hot node cost one disk write.
  // Safe against concurrent Pin()/Read() of the same page: a pinned frame
  // is detached (in-flight pins keep the old bytes) and a fresh frame takes
  // the key.
  void Write(PageId id, const char* data);

  // Drops the page's direct-read frame from the pool without writeback;
  // pair with PageFile::Free when a node is deleted, or call before a
  // direct PageFile::Write to invalidate the stale frame. A pinned frame is
  // detached rather than freed (its dirty contents are dropped either way).
  // Snapshot-stamped frames are untouched — they can never go stale.
  void Discard(PageId id);

  // Writes every dirty frame back to the file.
  void FlushAll();

  uint64_t hits() const { return hits_.load(std::memory_order_relaxed); }
  uint64_t misses() const { return misses_.load(std::memory_order_relaxed); }
  size_t capacity() const { return capacity_; }
  size_t shard_count() const { return shards_.size(); }

 private:
  // Frames are keyed by (page id, buffer stamp). Stamp 0 is the legacy
  // direct-read namespace (invalidated by Write/Discard); nonzero stamps
  // come from PageFile snapshots and name immutable bytes.
  struct FrameKey {
    PageId id = 0;
    uint64_t stamp = 0;
    bool operator==(const FrameKey& other) const {
      return id == other.id && stamp == other.stamp;
    }
  };
  struct FrameKeyHash {
    size_t operator()(const FrameKey& key) const {
      // Splitmix-style scramble of the 96 key bits folded to one word.
      uint64_t h = (static_cast<uint64_t>(key.id) << 1) ^ key.stamp;
      h ^= h >> 33;
      h *= 0xff51afd7ed558ccdULL;
      h ^= h >> 33;
      return static_cast<size_t>(h);
    }
  };

  struct Frame {
    FrameKey key;
    std::unique_ptr<char[]> data;
    bool dirty = false;
    int pins = 0;
    // A zombie has been superseded (Write) or dropped (Discard) while
    // pinned: it lives on the shard's zombie list, unreachable from the
    // frame map, until its last pin releases it.
    bool zombie = false;
  };

  // std::list keeps Frame addresses stable across LRU/zombie splices, which
  // is what allows a PageGuard to hold Frame and data pointers without the
  // lock.
  using LruList = std::list<Frame>;

  // Capability map: shard.mu guards the shard's LRU order, its frame map,
  // its zombie list, and (through them) every Frame's dirty/pins/zombie
  // fields. Frame *bytes* are readable without the lock only under a pin.
  struct Shard {
    explicit Shard(size_t capacity_in) : capacity(capacity_in) {}
    Mutex mu;
    LruList lru GUARDED_BY(mu);  // front = most recently used
    std::unordered_map<FrameKey, LruList::iterator, FrameKeyHash> frames
        GUARDED_BY(mu);
    LruList zombies GUARDED_BY(mu);  // superseded frames with live pins
    const size_t capacity;
  };

  Shard& ShardFor(PageId id) { return *shards_[id % shards_.size()]; }

  Frame& Touch(Shard& shard, LruList::iterator it) REQUIRES(shard.mu);
  Frame& InsertFrame(Shard& shard, FrameKey key) REQUIRES(shard.mu);
  void EvictIfFull(Shard& shard) REQUIRES(shard.mu);
  void WriteBack(Shard& shard, Frame& frame) REQUIRES(shard.mu);
  // Moves the frame at `it` (must be in shard.lru and mapped) onto the
  // zombie list; its pins keep the old bytes readable until the last one
  // releases.
  void DetachFrame(Shard& shard, LruList::iterator it) REQUIRES(shard.mu);

  void Unpin(size_t shard_index, void* frame);

  PageFile* file_;
  size_t capacity_;
  std::vector<std::unique_ptr<Shard>> shards_;
  PinCapability pin_cap_;  // carrier for the ScopedPin annotations
  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> misses_{0};
};

}  // namespace srtree

#endif  // SRTREE_STORAGE_BUFFER_POOL_H_
