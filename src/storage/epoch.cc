#include "src/storage/epoch.h"

#include <cinttypes>
#include <cstdio>
#include <limits>
#include <thread>

#include "src/common/check.h"

namespace srtree {

EpochManager::~EpochManager() {
  for (size_t i = 0; i < kMaxReaders; ++i) {
    CHECK_EQ(slots_[i].epoch.load(std::memory_order_seq_cst), 0u);
  }
  MutexLock lock(retired_mu_);
  retired_.clear();  // no readers left; dropping the references frees all
}

size_t EpochManager::ClaimSlot() {
  for (;;) {
    // The announce value is read before the CAS publishes it. A value that
    // goes stale while scanning is only ever *older* than the true current
    // epoch, which delays reclamation but never makes it unsafe.
    const uint64_t e = global_epoch_.load(std::memory_order_seq_cst);
    for (size_t i = 0; i < kMaxReaders; ++i) {
      uint64_t expected = 0;
      if (slots_[i].epoch.compare_exchange_strong(expected, e,
                                                  std::memory_order_seq_cst)) {
        return i;
      }
    }
    std::this_thread::yield();  // every slot taken: wait for a reader to exit
  }
}

void EpochManager::Retire(std::shared_ptr<const void> obj) {
  const uint64_t e = global_epoch_.load(std::memory_order_seq_cst);
  MutexLock lock(retired_mu_);
  retired_.push_back(Retiree{std::move(obj), e});
}

void EpochManager::AdvanceAndReclaim() {
  global_epoch_.fetch_add(1, std::memory_order_seq_cst);
  ReclaimExpired();
}

size_t EpochManager::ReclaimExpired() {
  uint64_t min_active = std::numeric_limits<uint64_t>::max();
  size_t oldest_slot = kMaxReaders;
  for (size_t i = 0; i < kMaxReaders; ++i) {
    const uint64_t e = slots_[i].epoch.load(std::memory_order_seq_cst);
    if (e != 0 && e < min_active) {
      min_active = e;
      oldest_slot = i;
    }
  }

  MutexLock lock(retired_mu_);
  size_t freed = 0;
  size_t kept = 0;
  for (Retiree& r : retired_) {
    if (r.epoch < min_active) {
      ++freed;  // dropping the reference is the free
    } else {
      retired_[kept++] = std::move(r);
    }
  }
  retired_.resize(kept);

  if (oldest_slot != kMaxReaders && kept >= kStuckBacklog) {
    const uint64_t global = global_epoch_.load(std::memory_order_seq_cst);
    if (global - min_active >= kStuckEpochGap) {
      if (stuck_warnings_++ % kWarnEvery == 0) {
        std::fprintf(stderr,
                     "[srtree/epoch] reader slot %zu pinned at epoch %" PRIu64
                     " while the global epoch is %" PRIu64 "; %zu retired "
                     "object(s) are waiting on it (possible hung reader — "
                     "memory is held, not leaked)\n",
                     oldest_slot, min_active, global, kept);
      }
    }
  }
  return freed;
}

size_t EpochManager::retired_count() const {
  MutexLock lock(retired_mu_);
  return retired_.size();
}

uint64_t EpochManager::hung_reader_warning_count() const {
  MutexLock lock(retired_mu_);
  return stuck_warnings_;
}

size_t EpochManager::active_readers() const {
  size_t n = 0;
  for (size_t i = 0; i < kMaxReaders; ++i) {
    if (slots_[i].epoch.load(std::memory_order_seq_cst) != 0) ++n;
  }
  return n;
}

}  // namespace srtree
