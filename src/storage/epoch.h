// Epoch-based reclamation for the PageFile commit protocol.
//
// The single-writer/many-readers scheme publishes immutable page-table
// versions (PageFile::Commit) that readers pin with an EpochGuard. Retired
// state — superseded version tables and copy-on-write page buffers — must
// outlive every reader that might still dereference it, without making the
// read path take locks. Epochs provide exactly that:
//
//   * a global epoch counter advances on every commit;
//   * each active reader announces, in its own cache-line-aligned slot, the
//     epoch it observed when it entered (EpochGuard's constructor);
//   * the writer retires objects tagged with the epoch current at retire
//     time, and frees a retiree only once every announced epoch is strictly
//     newer — no reader that could have reached it is still inside.
//
// Soundness rests on unlink-before-retire: an object is passed to Retire()
// only after it is unreachable from the published state, so a reader that
// announces after the unlink can never acquire a pointer to it. All epoch
// loads/stores are seq_cst; with the announce-then-acquire order on the
// reader side and unlink-then-scan on the writer side, a reader holding a
// retiree always has an announced epoch <= the retiree's tag.
//
// Hung-reader behavior: reclamation never frees under an active announce,
// so a stuck reader pins memory instead of racing it. ReclaimExpired()
// detects the pattern (old announce + growing retire backlog) and logs it
// to stderr rather than leaking silently.

#ifndef SRTREE_STORAGE_EPOCH_H_
#define SRTREE_STORAGE_EPOCH_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "src/base/mutex.h"
#include "src/base/thread_annotations.h"

namespace srtree {

class EpochGuard;

class EpochManager {
 public:
  // Upper bound on concurrently active readers (guards). A guard constructed
  // with every slot occupied spins until one frees; 64 slots is far above
  // any worker-pool size this library runs.
  static constexpr size_t kMaxReaders = 64;

  // Hung-reader heuristic (see ReclaimExpired): warn only when a reader's
  // announce is kStuckEpochGap epochs behind the global counter AND at
  // least kStuckBacklog retirees are waiting on it; a healthy reader holds
  // a snapshot for a handful of commits, so tripping both thresholds means
  // someone forgot to release a guard. kWarnEvery rate-limits the log to
  // one line per that many suppressed detections. Public so tests can
  // construct the scenario exactly at the boundary.
  static constexpr uint64_t kStuckEpochGap = 512;
  static constexpr size_t kStuckBacklog = 4096;
  static constexpr uint64_t kWarnEvery = 256;

  EpochManager() = default;
  EpochManager(const EpochManager&) = delete;
  EpochManager& operator=(const EpochManager&) = delete;

  // Frees every remaining retiree. Destroying the manager while a reader
  // guard is still alive is a use-after-free in the making; CHECKs instead.
  ~EpochManager();

  uint64_t current_epoch() const {
    return global_epoch_.load(std::memory_order_seq_cst);
  }

  // Writer side: takes ownership of an object that is already unreachable
  // from the published state (unlink-before-retire) and frees it once no
  // active reader's announced epoch is <= the current epoch. The object is
  // type-erased as a shared_ptr so "free" is simply dropping the reference.
  void Retire(std::shared_ptr<const void> obj) EXCLUDES(retired_mu_);

  // Writer side: advances the global epoch (typically right after a commit
  // publishes new state) and then reclaims whatever became unreachable.
  void AdvanceAndReclaim() EXCLUDES(retired_mu_);

  // Frees every retiree whose tag epoch is older than the oldest announced
  // epoch (all of them when no reader is active). Returns the number freed.
  // Also performs hung-reader detection: an announce pinned far behind the
  // global epoch while the retire backlog grows is logged to stderr.
  size_t ReclaimExpired() EXCLUDES(retired_mu_);

  // Number of objects retired but not yet freed (tests assert this reaches
  // zero after readers quiesce).
  size_t retired_count() const EXCLUDES(retired_mu_);

  // Number of currently announced (active) reader slots.
  size_t active_readers() const;

  // Total hung-reader detections so far (including rate-limited ones that
  // produced no stderr line). Tests assert the warning fires exactly at
  // the kStuckEpochGap/kStuckBacklog boundary and stays silent below it.
  uint64_t hung_reader_warning_count() const EXCLUDES(retired_mu_);

 private:
  friend class EpochGuard;

  // One announce slot per active reader; 0 = free. Cache-line aligned so
  // concurrent readers entering/exiting do not false-share.
  struct alignas(64) Slot {
    std::atomic<uint64_t> epoch{0};
  };

  // Claims a free slot and announces the current epoch in it. Spins (with
  // yields) when all kMaxReaders slots are taken.
  size_t ClaimSlot();
  void ReleaseSlot(size_t slot) {
    slots_[slot].epoch.store(0, std::memory_order_seq_cst);
  }

  struct Retiree {
    std::shared_ptr<const void> obj;
    uint64_t epoch = 0;
  };

  std::atomic<uint64_t> global_epoch_{1};
  Slot slots_[kMaxReaders] UNGUARDED_OK(
      "fixed slot array; each slot is a single reader-owned atomic");

  mutable Mutex retired_mu_;
  std::vector<Retiree> retired_ GUARDED_BY(retired_mu_);
  uint64_t stuck_warnings_ GUARDED_BY(retired_mu_) = 0;
};

// RAII announce: while an EpochGuard lives, no state retired at or after
// the epoch it announced is freed, so every pointer acquired from the
// published state during its lifetime stays valid. Readers construct one,
// acquire a PageFile::Snapshot against it, and release both together.
//
// Deliberately not a Clang TSA capability: snapshot objects hold guards as
// members across virtual calls, a shape the static analysis cannot track.
// The pragmatic enforcement is PageFile::AcquireSnapshot requiring a guard
// reference, so snapshot acquisition cannot compile without one.
class EpochGuard {
 public:
  explicit EpochGuard(EpochManager& epochs)
      : epochs_(epochs), slot_(epochs.ClaimSlot()) {}
  ~EpochGuard() { epochs_.ReleaseSlot(slot_); }

  EpochGuard(const EpochGuard&) = delete;
  EpochGuard& operator=(const EpochGuard&) = delete;

  uint64_t announced_epoch() const {
    return epochs_.slots_[slot_].epoch.load(std::memory_order_seq_cst);
  }

 private:
  EpochManager& epochs_;
  size_t slot_;
};

}  // namespace srtree

#endif  // SRTREE_STORAGE_EPOCH_H_
