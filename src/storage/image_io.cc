#include "src/storage/image_io.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <sstream>
#include <vector>

#include "src/storage/crc32c.h"

namespace srtree {
namespace {

SaveFailpoints* g_failpoints = nullptr;

// Writes all of `data` to `fd`, riding out short writes and EINTR.
bool WriteFully(int fd, const char* data, size_t n) {
  while (n > 0) {
    const ssize_t written = ::write(fd, data, n);
    if (written < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    data += written;
    n -= static_cast<size_t>(written);
  }
  return true;
}

// Best-effort fsync of the directory containing `path`, so the rename that
// published the new image survives a power cut. Failure is ignored: some
// filesystems refuse to fsync directories, and the data itself is synced.
void SyncParentDir(const std::string& path) {
  const size_t slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos ? "." : path.substr(0, slash);
  const int fd = ::open(dir.empty() ? "/" : dir.c_str(), O_RDONLY);
  if (fd >= 0) {
    (void)::fsync(fd);
    ::close(fd);
  }
}

}  // namespace

void SetSaveFailpointsForTest(SaveFailpoints* failpoints) {
  g_failpoints = failpoints;
}

Status AtomicWriteFile(const std::string& path,
                       const std::function<Status(std::ostream&)>& writer) {
  std::ostringstream buffer(std::ios::binary);
  RETURN_IF_ERROR(writer(buffer));
  if (!buffer.good()) {
    return Status::IoError("serialization failed for: " + path);
  }
  std::string image = std::move(buffer).str();

  const bool write_ok = g_failpoints == nullptr || g_failpoints->OnWrite(&image);

  const std::string tmp = path + ".tmp";
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    return Status::IoError("cannot open for writing: " + tmp + ": " +
                           std::strerror(errno));
  }
  // An injected write fault still lands its (possibly truncated) bytes in
  // the temp file first — exactly what a real short write leaves behind —
  // and then reports failure, so the cleanup path below is what gets
  // exercised.
  if (!WriteFully(fd, image.data(), image.size()) || !write_ok) {
    ::close(fd);
    ::unlink(tmp.c_str());
    return Status::IoError("short write while saving: " + tmp);
  }
  const bool flush_ok =
      ::fsync(fd) == 0 && (g_failpoints == nullptr || g_failpoints->OnFlush());
  if (::close(fd) != 0 || !flush_ok) {
    ::unlink(tmp.c_str());
    return Status::IoError("flush failed while saving: " + tmp);
  }
  const bool rename_ok =
      (g_failpoints == nullptr || g_failpoints->OnRename()) &&
      std::rename(tmp.c_str(), path.c_str()) == 0;
  if (!rename_ok) {
    ::unlink(tmp.c_str());
    return Status::IoError("rename failed while saving: " + path);
  }
  SyncParentDir(path);
  return Status::OK();
}

Status ReadFileToString(const std::string& path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("cannot open for reading: " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  if (in.bad()) return Status::IoError("read failed: " + path);
  *out = std::move(buffer).str();
  return Status::OK();
}

Status WriteStringToFileForTest(const std::string& data,
                                const std::string& path) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Status::IoError("cannot open for writing: " + path);
  out.write(data.data(), static_cast<std::streamsize>(data.size()));
  out.flush();
  if (!out.good()) return Status::IoError("short write: " + path);
  return Status::OK();
}

Status WriteIndexImageTo(std::ostream& out, const char* tag,
                         const void* header, size_t header_size) {
  char tag_bytes[kIndexImageTagBytes] = {};
  const size_t tag_len = std::strlen(tag);
  if (tag_len == 0 || tag_len > kIndexImageTagBytes) {
    return Status::InvalidArgument("index image tag must be 1..8 bytes");
  }
  std::memcpy(tag_bytes, tag, tag_len);
  PutLe32(out, kIndexImageMagic);
  PutLe32(out, kIndexImageVersion);
  out.write(tag_bytes, sizeof(tag_bytes));
  PutLe32(out, static_cast<uint32_t>(header_size));
  PutLe32(out, Crc32c(header, header_size));
  out.write(static_cast<const char*>(header),
            static_cast<std::streamsize>(header_size));
  if (!out.good()) return Status::IoError("short write in index image header");
  return Status::OK();
}

Status IndexImageFile::Open(const std::string& path, const char* tag,
                            void* header, size_t header_size) {
  in_.open(path, std::ios::binary);
  if (!in_) return Status::IoError("cannot open for reading: " + path);
  uint32_t magic = 0, version = 0, stored_size = 0, stored_crc = 0;
  char tag_bytes[kIndexImageTagBytes] = {};
  if (!GetLe32(in_, &magic) || magic != kIndexImageMagic) {
    return Status::Corruption("not an index image (bad magic): " + path);
  }
  if (!GetLe32(in_, &version) || version != kIndexImageVersion) {
    return Status::Corruption("unsupported index image version: " + path);
  }
  in_.read(tag_bytes, sizeof(tag_bytes));
  if (!in_.good()) return Status::Corruption("truncated index image: " + path);
  // Validate the caller's tag before building the comparison buffer: the
  // on-disk field is exactly kIndexImageTagBytes wide, so an oversize (or
  // empty) expectation is a caller bug, not a file mismatch.
  const size_t tag_len = std::strlen(tag);
  if (tag_len == 0 || tag_len > kIndexImageTagBytes) {
    return Status::InvalidArgument("index image tag must be 1..8 bytes");
  }
  char want_tag[kIndexImageTagBytes] = {};
  std::memcpy(want_tag, tag, tag_len);
  if (std::memcmp(tag_bytes, want_tag, kIndexImageTagBytes) != 0) {
    return Status::Corruption(
        "index image type mismatch: file is '" +
        std::string(tag_bytes, strnlen(tag_bytes, kIndexImageTagBytes)) +
        "', expected '" + tag + "'");
  }
  if (!GetLe32(in_, &stored_size) || !GetLe32(in_, &stored_crc)) {
    return Status::Corruption("truncated index image header: " + path);
  }
  if (stored_size != header_size) {
    return Status::Corruption("index image header size mismatch: " + path);
  }
  in_.read(static_cast<char*>(header),
           static_cast<std::streamsize>(header_size));
  if (!in_.good()) {
    return Status::Corruption("truncated index image header: " + path);
  }
  if (Crc32c(header, header_size) != stored_crc) {
    return Status::Corruption("index image header checksum mismatch: " + path);
  }
  return Status::OK();
}

Status IndexImageFile::OpenRaw(const std::string& path) {
  in_.open(path, std::ios::binary);
  if (!in_) return Status::IoError("cannot open for reading: " + path);
  return Status::OK();
}

StatusOr<std::string> PeekIndexImageTag(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("cannot open for reading: " + path);
  uint32_t magic = 0;
  if (!GetLe32(in, &magic)) {
    return Status::Corruption("not an index image (too short): " + path);
  }
  // Pre-v2 SR-tree files began with the raw SrTreeHeader magic "SRT1".
  constexpr uint32_t kLegacySrTreeMagic = 0x53525431u;
  if (magic == kLegacySrTreeMagic) return std::string("legacy-sr-v1");
  if (magic != kIndexImageMagic) {
    return Status::Corruption("not an index image (bad magic): " + path);
  }
  uint32_t version = 0;
  if (!GetLe32(in, &version) || version != kIndexImageVersion) {
    return Status::Corruption("unsupported index image version: " + path);
  }
  char tag_bytes[kIndexImageTagBytes] = {};
  in.read(tag_bytes, sizeof(tag_bytes));
  if (!in.good()) return Status::Corruption("truncated index image: " + path);
  return std::string(tag_bytes, strnlen(tag_bytes, kIndexImageTagBytes));
}

}  // namespace srtree
