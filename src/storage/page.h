// Serialization cursors over fixed-size disk pages.
//
// Every tree node is serialized into one 8192-byte page through PageWriter
// and decoded through PageReader. Bounds are CHECKed: a node layout that
// does not fit its page is a bug in the capacity computation, not a
// recoverable error.

#ifndef SRTREE_STORAGE_PAGE_H_
#define SRTREE_STORAGE_PAGE_H_

#include <cstdint>
#include <cstring>
#include <span>

#include "src/common/check.h"

namespace srtree {

// Default disk block size; matches the paper's 8192-byte nodes and leaves.
inline constexpr size_t kDefaultPageSize = 8192;

class PageWriter {
 public:
  PageWriter(char* buf, size_t size) : buf_(buf), size_(size) {}

  void PutU8(uint8_t v) { PutRaw(&v, sizeof(v)); }
  void PutU16(uint16_t v) { PutRaw(&v, sizeof(v)); }
  void PutU32(uint32_t v) { PutRaw(&v, sizeof(v)); }
  void PutU64(uint64_t v) { PutRaw(&v, sizeof(v)); }
  void PutDouble(double v) { PutRaw(&v, sizeof(v)); }

  void PutDoubles(std::span<const double> values) {
    PutRaw(values.data(), values.size() * sizeof(double));
  }

  // Reserves `n` bytes without writing (e.g. a leaf entry's attribute data
  // area, whose contents the experiments never inspect but whose space the
  // fanout computation must account for).
  void Skip(size_t n) {
    CHECK_LE(offset_ + n, size_);
    std::memset(buf_ + offset_, 0, n);
    offset_ += n;
  }

  size_t offset() const { return offset_; }
  size_t remaining() const { return size_ - offset_; }

 private:
  void PutRaw(const void* data, size_t n) {
    CHECK_LE(offset_ + n, size_);
    std::memcpy(buf_ + offset_, data, n);
    offset_ += n;
  }

  char* buf_;
  size_t size_;
  size_t offset_ = 0;
};

class PageReader {
 public:
  PageReader(const char* buf, size_t size) : buf_(buf), size_(size) {}

  uint8_t GetU8() { return Get<uint8_t>(); }
  uint16_t GetU16() { return Get<uint16_t>(); }
  uint32_t GetU32() { return Get<uint32_t>(); }
  uint64_t GetU64() { return Get<uint64_t>(); }
  double GetDouble() { return Get<double>(); }

  void GetDoubles(std::span<double> out) {
    GetRaw(out.data(), out.size() * sizeof(double));
  }

  void Skip(size_t n) {
    CHECK_LE(offset_ + n, size_);
    offset_ += n;
  }

  size_t offset() const { return offset_; }

 private:
  template <typename T>
  T Get() {
    T v;
    GetRaw(&v, sizeof(v));
    return v;
  }

  void GetRaw(void* out, size_t n) {
    CHECK_LE(offset_ + n, size_);
    std::memcpy(out, buf_ + offset_, n);
    offset_ += n;
  }

  const char* buf_;
  size_t size_;
  size_t offset_ = 0;
};

}  // namespace srtree

#endif  // SRTREE_STORAGE_PAGE_H_
