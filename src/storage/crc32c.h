// CRC32C (Castagnoli, polynomial 0x1EDC6F41, reflected 0x82F63B78): the
// checksum guarding every persisted page image and header record.
//
// Castagnoli rather than the zip CRC because its error-detection properties
// are strictly better for storage-sized payloads (it is what iSCSI, ext4,
// and RocksDB use), and a hardware instruction exists on every modern
// x86/ARM core if this ever becomes hot. This implementation is plain
// table-driven software — the persistence path writes whole images at once,
// so the per-byte cost is irrelevant next to the disk transfer it models.

#ifndef SRTREE_STORAGE_CRC32C_H_
#define SRTREE_STORAGE_CRC32C_H_

#include <cstddef>
#include <cstdint>

namespace srtree {

// Extends `crc` (the running checksum, 0 for a fresh computation) with
// `n` bytes at `data`. The returned value is the plain (unmasked) CRC32C.
uint32_t Crc32cExtend(uint32_t crc, const void* data, size_t n);

inline uint32_t Crc32c(const void* data, size_t n) {
  return Crc32cExtend(0, data, n);
}

}  // namespace srtree

#endif  // SRTREE_STORAGE_CRC32C_H_
