#include "src/storage/crc32c.h"

namespace srtree {
namespace {

// Slice-by-4 tables for the reflected Castagnoli polynomial, built on first
// use (function-local static, so initialization is thread-safe).
struct Crc32cTables {
  uint32_t t[4][256];

  Crc32cTables() {
    constexpr uint32_t kPoly = 0x82F63B78u;
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t crc = i;
      for (int bit = 0; bit < 8; ++bit) {
        crc = (crc >> 1) ^ ((crc & 1) ? kPoly : 0);
      }
      t[0][i] = crc;
    }
    for (uint32_t i = 0; i < 256; ++i) {
      t[1][i] = (t[0][i] >> 8) ^ t[0][t[0][i] & 0xff];
      t[2][i] = (t[1][i] >> 8) ^ t[0][t[1][i] & 0xff];
      t[3][i] = (t[2][i] >> 8) ^ t[0][t[2][i] & 0xff];
    }
  }
};

const Crc32cTables& Tables() {
  static const Crc32cTables tables;
  return tables;
}

}  // namespace

uint32_t Crc32cExtend(uint32_t crc, const void* data, size_t n) {
  const Crc32cTables& tab = Tables();
  const uint8_t* p = static_cast<const uint8_t*>(data);
  crc = ~crc;
  while (n >= 4) {
    crc ^= static_cast<uint32_t>(p[0]) | (static_cast<uint32_t>(p[1]) << 8) |
           (static_cast<uint32_t>(p[2]) << 16) |
           (static_cast<uint32_t>(p[3]) << 24);
    crc = tab.t[3][crc & 0xff] ^ tab.t[2][(crc >> 8) & 0xff] ^
          tab.t[1][(crc >> 16) & 0xff] ^ tab.t[0][crc >> 24];
    p += 4;
    n -= 4;
  }
  while (n-- > 0) {
    crc = (crc >> 8) ^ tab.t[0][(crc ^ *p++) & 0xff];
  }
  return ~crc;
}

}  // namespace srtree
