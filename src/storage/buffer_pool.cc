#include "src/storage/buffer_pool.h"

#include <algorithm>
#include <cstring>

#include "src/common/check.h"

namespace srtree {

BufferPool::BufferPool(PageFile* file, size_t capacity, size_t shards)
    : file_(file), capacity_(capacity) {
  CHECK(file_ != nullptr);
  CHECK_GE(capacity_, 1u);
  const size_t shard_count = std::max<size_t>(1, std::min(shards, capacity_));
  shards_.reserve(shard_count);
  for (size_t i = 0; i < shard_count; ++i) {
    // Distribute the capacity; the first shards absorb the remainder.
    shards_.push_back(std::make_unique<Shard>(
        capacity_ / shard_count + (i < capacity_ % shard_count ? 1 : 0)));
  }
}

BufferPool::~BufferPool() {
  FlushAll();
  for (const std::unique_ptr<Shard>& shard : shards_) {
    MutexLock lock(shard->mu);
    // A zombie outliving the pool means some PageGuard outlives it too —
    // its data pointer is about to dangle.
    CHECK(shard->zombies.empty());
  }
}

BufferPool::Frame& BufferPool::Touch(Shard& shard, LruList::iterator it) {
  shard.lru.splice(shard.lru.begin(), shard.lru, it);
  return shard.lru.front();
}

void BufferPool::EvictIfFull(Shard& shard) {
  if (shard.lru.size() < shard.capacity) return;
  // Scan from the LRU end for an unpinned victim; when every frame is
  // pinned by in-flight readers the shard temporarily grows instead (the
  // overshoot is bounded by the number of concurrent pins).
  for (auto it = std::prev(shard.lru.end());; --it) {
    if (it->pins == 0) {
      if (it->dirty) WriteBack(shard, *it);
      shard.frames.erase(it->key);
      shard.lru.erase(it);
      return;
    }
    if (it == shard.lru.begin()) return;
  }
}

void BufferPool::WriteBack(Shard& shard, Frame& frame) {
  (void)shard;  // present so the REQUIRES(shard.mu) contract is expressible
  // Only legacy (stamp 0) frames ever take Write(); snapshot-stamped frames
  // cache immutable committed bytes and must never flow back to the file.
  CHECK_EQ(frame.key.stamp, 0u);
  file_->Write(frame.key.id, frame.data.get());
  frame.dirty = false;
}

void BufferPool::DetachFrame(Shard& shard, LruList::iterator it) {
  it->zombie = true;
  // Superseded or discarded contents never reach the file.
  it->dirty = false;
  shard.frames.erase(it->key);
  shard.zombies.splice(shard.zombies.begin(), shard.lru, it);
}

BufferPool::Frame& BufferPool::InsertFrame(Shard& shard, FrameKey key) {
  EvictIfFull(shard);
  shard.lru.push_front(
      Frame{key, std::make_unique<char[]>(file_->page_size())});
  shard.frames[key] = shard.lru.begin();
  return shard.lru.front();
}

BufferPool::PageGuard BufferPool::Pin(PageId id, int level,
                                      IoStatsDelta* delta) {
  const size_t shard_index = id % shards_.size();
  Shard& shard = *shards_[shard_index];
  const FrameKey key{id, 0};
  MutexLock lock(shard.mu);
  auto it = shard.frames.find(key);
  if (it != shard.frames.end()) {
    hits_.fetch_add(1, std::memory_order_relaxed);
    Frame& frame = Touch(shard, it->second);
    ++frame.pins;
    return PageGuard(this, shard_index, &frame, frame.data.get());
  }
  misses_.fetch_add(1, std::memory_order_relaxed);
  Frame& frame = InsertFrame(shard, key);
  file_->Read(id, frame.data.get(), level, delta);
  ++frame.pins;
  return PageGuard(this, shard_index, &frame, frame.data.get());
}

BufferPool::PageGuard BufferPool::PinSnapshot(const PageFile::Snapshot& snap,
                                              PageId id, int level,
                                              IoStatsDelta* delta) {
  const size_t shard_index = id % shards_.size();
  Shard& shard = *shards_[shard_index];
  const FrameKey key{id, snap.page_stamp(id)};
  MutexLock lock(shard.mu);
  auto it = shard.frames.find(key);
  if (it != shard.frames.end()) {
    hits_.fetch_add(1, std::memory_order_relaxed);
    Frame& frame = Touch(shard, it->second);
    ++frame.pins;
    return PageGuard(this, shard_index, &frame, frame.data.get());
  }
  misses_.fetch_add(1, std::memory_order_relaxed);
  Frame& frame = InsertFrame(shard, key);
  snap.Read(id, frame.data.get(), level, delta);
  ++frame.pins;
  return PageGuard(this, shard_index, &frame, frame.data.get());
}

void BufferPool::Unpin(size_t shard_index, void* frame_ptr) {
  Shard& shard = *shards_[shard_index];
  Frame* frame = static_cast<Frame*>(frame_ptr);
  MutexLock lock(shard.mu);
  CHECK_GT(frame->pins, 0);
  --frame->pins;
  if (frame->zombie && frame->pins == 0) {
    // Last pin out frees the superseded frame. The zombie list is as short
    // as the number of concurrent writer-vs-reader collisions, so the
    // address scan is cheap.
    for (auto it = shard.zombies.begin(); it != shard.zombies.end(); ++it) {
      if (&*it == frame) {
        shard.zombies.erase(it);
        return;
      }
    }
    CHECK(false);  // a zombie frame must be on its shard's zombie list
  }
}

BufferPool::PageGuard::PageGuard(PageGuard&& other) noexcept
    : pool_(other.pool_),
      shard_(other.shard_),
      frame_(other.frame_),
      data_(other.data_) {
  other.pool_ = nullptr;
  other.frame_ = nullptr;
  other.data_ = nullptr;
}

BufferPool::PageGuard& BufferPool::PageGuard::operator=(
    PageGuard&& other) noexcept {
  if (this != &other) {
    if (pool_ != nullptr) pool_->Unpin(shard_, frame_);
    pool_ = other.pool_;
    shard_ = other.shard_;
    frame_ = other.frame_;
    data_ = other.data_;
    other.pool_ = nullptr;
    other.frame_ = nullptr;
    other.data_ = nullptr;
  }
  return *this;
}

BufferPool::PageGuard::~PageGuard() {
  if (pool_ != nullptr) pool_->Unpin(shard_, frame_);
}

void BufferPool::Read(PageId id, char* out, int level, IoStatsDelta* delta) {
  // The copy runs unlocked: the pin guarantees the frame outlives it.
  const ScopedPin pin(*this, id, level, delta);
  std::memcpy(out, pin.data(), file_->page_size());
}

void BufferPool::ReadSnapshot(const PageFile::Snapshot& snap, PageId id,
                              char* out, int level, IoStatsDelta* delta) {
  const ScopedPin pin(*this, snap, id, level, delta);
  std::memcpy(out, pin.data(), file_->page_size());
}

void BufferPool::Write(PageId id, const char* data) {
  Shard& shard = ShardFor(id);
  const FrameKey key{id, 0};
  MutexLock lock(shard.mu);
  auto it = shard.frames.find(key);
  if (it != shard.frames.end() && it->second->pins > 0) {
    // In-flight pins are reading these bytes; give them the old frame and
    // take the key over with a fresh one.
    DetachFrame(shard, it->second);
    it = shard.frames.end();
  }
  Frame& frame = (it != shard.frames.end()) ? Touch(shard, it->second)
                                            : InsertFrame(shard, key);
  std::memcpy(frame.data.get(), data, file_->page_size());
  frame.dirty = true;
}

void BufferPool::Discard(PageId id) {
  Shard& shard = ShardFor(id);
  const FrameKey key{id, 0};
  MutexLock lock(shard.mu);
  const auto it = shard.frames.find(key);
  if (it == shard.frames.end()) return;
  if (it->second->pins > 0) {
    DetachFrame(shard, it->second);
    return;
  }
  shard.lru.erase(it->second);
  shard.frames.erase(it);
}

void BufferPool::FlushAll() {
  for (const std::unique_ptr<Shard>& shard : shards_) {
    MutexLock lock(shard->mu);
    for (Frame& frame : shard->lru) {
      if (frame.dirty) WriteBack(*shard, frame);
    }
  }
}

}  // namespace srtree
