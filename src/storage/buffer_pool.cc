#include "src/storage/buffer_pool.h"

#include <algorithm>
#include <cstring>

#include "src/common/check.h"

namespace srtree {

BufferPool::BufferPool(PageFile* file, size_t capacity, size_t shards)
    : file_(file), capacity_(capacity) {
  CHECK(file_ != nullptr);
  CHECK_GE(capacity_, 1u);
  const size_t shard_count = std::max<size_t>(1, std::min(shards, capacity_));
  shards_.reserve(shard_count);
  for (size_t i = 0; i < shard_count; ++i) {
    shards_.push_back(std::make_unique<Shard>());
    // Distribute the capacity; the first shards absorb the remainder.
    shards_.back()->capacity =
        capacity_ / shard_count + (i < capacity_ % shard_count ? 1 : 0);
  }
}

BufferPool::~BufferPool() { FlushAll(); }

BufferPool::Frame& BufferPool::Touch(Shard& shard, LruList::iterator it) {
  shard.lru.splice(shard.lru.begin(), shard.lru, it);
  return shard.lru.front();
}

void BufferPool::EvictIfFull(Shard& shard) {
  if (shard.lru.size() < shard.capacity) return;
  // Scan from the LRU end for an unpinned victim; when every frame is
  // pinned by in-flight readers the shard temporarily grows instead (the
  // overshoot is bounded by the number of concurrent pins).
  for (auto it = std::prev(shard.lru.end());; --it) {
    if (it->pins == 0) {
      if (it->dirty) WriteBack(shard, *it);
      shard.frames.erase(it->id);
      shard.lru.erase(it);
      return;
    }
    if (it == shard.lru.begin()) return;
  }
}

void BufferPool::WriteBack(Shard& shard, Frame& frame) {
  (void)shard;  // present so the REQUIRES(shard.mu) contract is expressible
  file_->Write(frame.id, frame.data.get());
  frame.dirty = false;
}

BufferPool::Frame& BufferPool::InsertFrame(Shard& shard, PageId id) {
  EvictIfFull(shard);
  shard.lru.push_front(
      Frame{id, std::make_unique<char[]>(file_->page_size())});
  shard.frames[id] = shard.lru.begin();
  return shard.lru.front();
}

BufferPool::PageGuard BufferPool::Pin(PageId id, int level,
                                      IoStatsDelta* delta) {
  const size_t shard_index = id % shards_.size();
  Shard& shard = *shards_[shard_index];
  MutexLock lock(shard.mu);
  auto it = shard.frames.find(id);
  if (it != shard.frames.end()) {
    hits_.fetch_add(1, std::memory_order_relaxed);
    Frame& frame = Touch(shard, it->second);
    ++frame.pins;
    return PageGuard(this, shard_index, id, frame.data.get());
  }
  misses_.fetch_add(1, std::memory_order_relaxed);
  Frame& frame = InsertFrame(shard, id);
  file_->Read(id, frame.data.get(), level, delta);
  ++frame.pins;
  return PageGuard(this, shard_index, id, frame.data.get());
}

void BufferPool::Unpin(size_t shard_index, PageId id) {
  Shard& shard = *shards_[shard_index];
  MutexLock lock(shard.mu);
  const auto it = shard.frames.find(id);
  CHECK(it != shard.frames.end());
  CHECK_GT(it->second->pins, 0);
  --it->second->pins;
}

BufferPool::PageGuard::PageGuard(PageGuard&& other) noexcept
    : pool_(other.pool_),
      shard_(other.shard_),
      id_(other.id_),
      data_(other.data_) {
  other.pool_ = nullptr;
  other.data_ = nullptr;
}

BufferPool::PageGuard& BufferPool::PageGuard::operator=(
    PageGuard&& other) noexcept {
  if (this != &other) {
    if (pool_ != nullptr) pool_->Unpin(shard_, id_);
    pool_ = other.pool_;
    shard_ = other.shard_;
    id_ = other.id_;
    data_ = other.data_;
    other.pool_ = nullptr;
    other.data_ = nullptr;
  }
  return *this;
}

BufferPool::PageGuard::~PageGuard() {
  if (pool_ != nullptr) pool_->Unpin(shard_, id_);
}

void BufferPool::Read(PageId id, char* out, int level, IoStatsDelta* delta) {
  // The copy runs unlocked: the pin guarantees the frame outlives it.
  const ScopedPin pin(*this, id, level, delta);
  std::memcpy(out, pin.data(), file_->page_size());
}

void BufferPool::Write(PageId id, const char* data) {
  Shard& shard = ShardFor(id);
  MutexLock lock(shard.mu);
  auto it = shard.frames.find(id);
  Frame& frame =
      (it != shard.frames.end()) ? Touch(shard, it->second)
                                 : InsertFrame(shard, id);
  std::memcpy(frame.data.get(), data, file_->page_size());
  frame.dirty = true;
}

void BufferPool::Discard(PageId id) {
  Shard& shard = ShardFor(id);
  MutexLock lock(shard.mu);
  const auto it = shard.frames.find(id);
  if (it == shard.frames.end()) return;
  CHECK_EQ(it->second->pins, 0);
  shard.lru.erase(it->second);
  shard.frames.erase(it);
}

void BufferPool::FlushAll() {
  for (const std::unique_ptr<Shard>& shard : shards_) {
    MutexLock lock(shard->mu);
    for (Frame& frame : shard->lru) {
      if (frame.dirty) WriteBack(*shard, frame);
    }
  }
}

}  // namespace srtree
