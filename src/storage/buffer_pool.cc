#include "src/storage/buffer_pool.h"

#include <cstring>

#include "src/common/check.h"

namespace srtree {

BufferPool::BufferPool(PageFile* file, size_t capacity)
    : file_(file), capacity_(capacity) {
  CHECK(file_ != nullptr);
  CHECK_GE(capacity_, 1u);
}

BufferPool::~BufferPool() { FlushAll(); }

BufferPool::Frame& BufferPool::Touch(LruList::iterator it) {
  lru_.splice(lru_.begin(), lru_, it);
  frames_[it->id] = lru_.begin();
  return *lru_.begin();
}

void BufferPool::EvictIfFull() {
  if (lru_.size() < capacity_) return;
  Frame& victim = lru_.back();
  if (victim.dirty) WriteBack(victim);
  frames_.erase(victim.id);
  lru_.pop_back();
}

void BufferPool::WriteBack(Frame& frame) {
  file_->Write(frame.id, frame.data.get());
  frame.dirty = false;
}

BufferPool::Frame& BufferPool::InsertFrame(PageId id) {
  EvictIfFull();
  lru_.push_front(Frame{id, std::make_unique<char[]>(file_->page_size()),
                        /*dirty=*/false});
  frames_[id] = lru_.begin();
  return lru_.front();
}

void BufferPool::Read(PageId id, char* out, int level) {
  auto it = frames_.find(id);
  if (it != frames_.end()) {
    ++hits_;
    Frame& frame = Touch(it->second);
    std::memcpy(out, frame.data.get(), file_->page_size());
    return;
  }
  ++misses_;
  Frame& frame = InsertFrame(id);
  file_->Read(id, frame.data.get(), level);
  std::memcpy(out, frame.data.get(), file_->page_size());
}

void BufferPool::Write(PageId id, const char* data) {
  auto it = frames_.find(id);
  Frame& frame =
      (it != frames_.end()) ? Touch(it->second) : InsertFrame(id);
  std::memcpy(frame.data.get(), data, file_->page_size());
  frame.dirty = true;
}

void BufferPool::Discard(PageId id) {
  auto it = frames_.find(id);
  if (it == frames_.end()) return;
  lru_.erase(it->second);
  frames_.erase(it);
}

void BufferPool::FlushAll() {
  for (Frame& frame : lru_) {
    if (frame.dirty) WriteBack(frame);
  }
}

}  // namespace srtree
