// Disk I/O accounting.
//
// The paper's headline query metric is "number of disk reads"; Figure 14
// additionally splits reads into node-level and leaf-level. Trees pass the
// level of the page they are fetching (0 = leaf) so both views fall out of
// the same counters.

#ifndef SRTREE_STORAGE_IO_STATS_H_
#define SRTREE_STORAGE_IO_STATS_H_

#include <cstdint>
#include <vector>

namespace srtree {

// Per-query I/O accounting, threaded through a single search traversal.
//
// The global IoStats on a PageFile aggregates every read the structure ever
// performs and needs a lock under concurrent queries; an IoStatsDelta is
// private to one query, so the traversal can record into it without
// synchronization and hand it back inside the QueryResult. Summing the
// deltas of a batch reproduces the global counters for the same queries
// (the accounting-parity contract tests/query_engine_test.cc checks).
struct IoStatsDelta {
  uint64_t reads = 0;
  uint64_t leaf_reads = 0;     // reads of level-0 pages
  uint64_t nonleaf_reads = 0;  // reads of pages at level >= 1
  // Reads that would still reach the disk with the simulated LRU cache
  // enabled (PageFile::SimulateCache); equals `reads` when disabled.
  uint64_t cache_misses = 0;

  void RecordRead(int level) {
    ++reads;
    ++cache_misses;
    if (level == 0) {
      ++leaf_reads;
    } else if (level > 0) {
      ++nonleaf_reads;
    }
  }

  void RecordCacheHit() { --cache_misses; }

  void MergeFrom(const IoStatsDelta& other) {
    reads += other.reads;
    leaf_reads += other.leaf_reads;
    nonleaf_reads += other.nonleaf_reads;
    cache_misses += other.cache_misses;
  }

  bool operator==(const IoStatsDelta&) const = default;
};

// Aggregate counters. IoStats has no lock of its own: every shared instance
// is a GUARDED_BY member of its owner (PageFile::stats_,
// BruteForceIndex::stats_), and by-value snapshots/copies are thread-local.
// Keep it that way — new shared instances should be declared
// GUARDED_BY(owner mutex) so -Wthread-safety checks the discipline.
struct IoStats {
  uint64_t reads = 0;
  uint64_t writes = 0;
  // Reads that would still reach the disk with the simulated LRU cache
  // enabled (PageFile::SimulateCache); equals `reads` when disabled.
  uint64_t cache_misses = 0;
  // reads_by_level[l] counts reads of pages at tree level l (0 = leaf).
  // Reads with unknown level (level < 0) are counted in `reads` only.
  std::vector<uint64_t> reads_by_level;

  void RecordRead(int level) {
    ++reads;
    ++cache_misses;  // RecordCacheHit undoes this for simulated hits
    if (level >= 0) {
      const size_t slot = static_cast<size_t>(level);
      if (slot >= reads_by_level.size()) {
        reads_by_level.resize(slot + 1, 0);
      }
      ++reads_by_level[slot];
    }
  }

  void RecordCacheHit() { --cache_misses; }

  void RecordWrite() { ++writes; }

  void Reset() {
    reads = 0;
    writes = 0;
    cache_misses = 0;
    reads_by_level.clear();
  }

  uint64_t leaf_reads() const {
    return reads_by_level.empty() ? 0 : reads_by_level[0];
  }

  uint64_t nonleaf_reads() const {
    uint64_t total = 0;
    for (size_t l = 1; l < reads_by_level.size(); ++l) {
      total += reads_by_level[l];
    }
    return total;
  }

  // Total reads + writes — the paper's "disk accesses" (Figure 9).
  uint64_t accesses() const { return reads + writes; }
};

}  // namespace srtree

#endif  // SRTREE_STORAGE_IO_STATS_H_
