#include "src/storage/page_file.h"

#include <cstring>
#include <limits>
#include <sstream>

#include "src/common/check.h"
#include "src/storage/crc32c.h"
#include "src/storage/image_io.h"

namespace srtree {
namespace {

// Image header: magic + version guard against loading foreign files.
//
// Format v2 (current; all framing little-endian):
//   [u32 magic "SRPF"] [u32 version = 2] [u64 page_size] [u64 page_count]
//   [u64 live_count] [u32 header_crc = crc32c(magic..live_count)]
//   page_count records: [u8 live (0|1)]
//                       live pages append [page bytes] [u32 crc32c(page)]
//   footer: [u32 "SRPE"] [u64 page_count] [u64 live_count]
//           [u32 image_crc = crc32c of every preceding image byte EXCEPT
//            the embedded CRC words (header_crc and the per-page CRCs)]
//
// Every byte of the image is covered by a validation rule: the header and
// each live page by a CRC, the record layout by the exact-size equation
// (the image must extend to the end of the stream), the counts by the
// footer echo, and the whole image by the footer's running CRC — so
// truncation, torn pages, and bit flips all surface as Corruption instead
// of silently loading garbage geometry. The image CRC is what rules out
// the one failure per-record checksums cannot see: an overwrite torn at a
// record boundary splicing the prefix of one valid image onto the suffix
// of another.
//
// The embedded CRC words MUST stay out of the image CRC. CRC32C is linear,
// so the XOR-difference between two valid [page][crc32c(page)] records is
// [D][crc_linear(D)] — itself a CRC32C codeword. Had the image CRC covered
// those words, every record-boundary splice of two valid images would
// cancel out exactly and the footer check would pass; over the raw bytes
// alone a splice survives only with the generic 2^-32 collision odds.
//
// Format v1 (the pre-checksum, host-endian layout) is no longer readable:
// its read-compatibility window ("one release") has closed, and it was the
// last unchecksummed load path. LoadFrom rejects version 1 with an explicit
// "re-save with v2" Corruption so old images fail loudly, not as garbage.
constexpr uint32_t kPageFileMagic = 0x53525046;    // "SRPF"
constexpr uint32_t kPageFileFooterMagic = 0x45505253;  // "SRPE"
constexpr uint32_t kPageFileVersion = 2;
constexpr uint32_t kRetiredPageFileVersion = 1;

// Bytes remaining between the stream position and EOF, or -1 when the
// stream is not seekable.
int64_t RemainingBytes(std::istream& in) {
  const std::istream::pos_type pos = in.tellg();
  if (pos == std::istream::pos_type(-1)) return -1;
  in.seekg(0, std::ios::end);
  const std::istream::pos_type end = in.tellg();
  in.seekg(pos);
  if (end == std::istream::pos_type(-1) || !in.good()) return -1;
  return static_cast<int64_t>(end - pos);
}

// Extend a running CRC over the little-endian encoding of a framing word.
uint32_t CrcExtendLe32(uint32_t crc, uint32_t v) {
  const unsigned char b[4] = {
      static_cast<unsigned char>(v), static_cast<unsigned char>(v >> 8),
      static_cast<unsigned char>(v >> 16), static_cast<unsigned char>(v >> 24)};
  return Crc32cExtend(crc, b, sizeof(b));
}

uint32_t CrcExtendLe64(uint32_t crc, uint64_t v) {
  unsigned char b[8];
  for (int i = 0; i < 8; ++i) b[i] = static_cast<unsigned char>(v >> (8 * i));
  return Crc32cExtend(crc, b, sizeof(b));
}

// The v2 header CRC covers the serialized little-endian header fields.
uint32_t HeaderCrc(uint64_t page_size, uint64_t page_count,
                   uint64_t live_count) {
  std::ostringstream buf(std::ios::binary);
  PutLe32(buf, kPageFileMagic);
  PutLe32(buf, kPageFileVersion);
  PutLe64(buf, page_size);
  PutLe64(buf, page_count);
  PutLe64(buf, live_count);
  const std::string bytes = std::move(buf).str();
  return Crc32c(bytes.data(), bytes.size());
}

}  // namespace

PageFile::PageFile(size_t page_size) : page_size_(page_size) {
  CHECK_GT(page_size_, 0u);
  // Publish the empty version 1 so AcquireSnapshot never observes null and
  // committed_version() is meaningful from birth.
  Commit({});
}

PageFile::~PageFile() {
  // EpochManager's destructor (which runs after this body, epochs_ being the
  // last member) CHECKs that no reader guard is still alive, so deleting the
  // published version here cannot race a Snapshot::Read.
  delete committed_.exchange(nullptr, std::memory_order_seq_cst);
}

PageId PageFile::Allocate() {
  if (!free_list_.empty()) {
    const PageId id = free_list_.back();
    free_list_.pop_back();
    // A recycled slot may hold no buffer: dead pages restored by LoadFrom
    // stage none (a forged image must not be able to force one allocation
    // per claimed page), and Free() detaches buffers the published version
    // still references. Materialize on reuse.
    CHECK(!shared_with_committed_[id]);
    if (pages_[id] == nullptr) pages_[id] = std::make_unique<char[]>(page_size_);
    std::memset(pages_[id].get(), 0, page_size_);
    live_[id] = true;
    ++live_pages_;
    page_stamp_[id] = next_stamp_++;
    return id;
  }
  const PageId id = static_cast<PageId>(pages_.size());
  pages_.push_back(std::make_unique<char[]>(page_size_));
  live_.push_back(true);
  shared_with_committed_.push_back(false);
  page_stamp_.push_back(next_stamp_++);
  ++live_pages_;
  return id;
}

void PageFile::Free(PageId id) {
  CHECK(IsLive(id));
  // The published version's table still points at a shared buffer; hand it
  // to the next Commit()'s retire batch instead of letting Allocate() zero
  // it under a live snapshot.
  if (shared_with_committed_[id]) DetachSharedBuffer(id);
  live_[id] = false;
  --live_pages_;
  free_list_.push_back(id);
}

void PageFile::DetachSharedBuffer(PageId id) {
  pending_retire_.push_back(std::move(pages_[id]));
  shared_with_committed_[id] = false;
}

bool PageFile::IsLive(PageId id) const {
  return id < pages_.size() && live_[id];
}

void PageFile::Read(PageId id, char* out, int level,
                    IoStatsDelta* delta) const {
  CHECK(IsLive(id));
  // Page bytes are stable while queries run (writers are excluded by
  // contract), so the copy itself needs no lock.
  std::memcpy(out, pages_[id].get(), page_size_);
  bool cache_hit = false;
  {
    MutexLock lock(stats_mu_);
    stats_.RecordRead(level);
    if (cache_capacity_ > 0) cache_hit = TouchCache(id);
  }
  if (delta != nullptr) {
    delta->RecordRead(level);
    if (cache_hit) delta->RecordCacheHit();
  }
}

void PageFile::SimulateCache(size_t capacity) {
  MutexLock lock(stats_mu_);
  cache_capacity_ = capacity;
  cache_lru_.clear();
  cache_index_.clear();
}

bool PageFile::TouchCache(PageId id) const {
  const auto it = cache_index_.find(id);
  if (it != cache_index_.end()) {
    stats_.RecordCacheHit();  // the cache would have served this read
    cache_lru_.splice(cache_lru_.begin(), cache_lru_, it->second);
    return true;
  }
  cache_lru_.push_front(id);
  cache_index_[id] = cache_lru_.begin();
  if (cache_lru_.size() > cache_capacity_) {
    cache_index_.erase(cache_lru_.back());
    cache_lru_.pop_back();
  }
  return false;
}

void PageFile::Write(PageId id, const char* data) {
  CHECK(IsLive(id));
  // A page the published version can see must go through StageWrite: an
  // in-place write here would mutate bytes a live snapshot is reading.
  // Legacy frozen-tree indexes never Commit() past the initial empty
  // version, so none of their pages is ever shared and this never fires
  // for them.
  CHECK(!shared_with_committed_[id]);
  std::memcpy(pages_[id].get(), data, page_size_);
  MutexLock lock(stats_mu_);
  stats_.RecordWrite();
}

void PageFile::StageWrite(PageId id, const char* data) {
  CHECK(IsLive(id));
  if (shared_with_committed_[id]) {
    // Copy-on-write: the published version keeps the old buffer (retired at
    // the next Commit); the working state moves to a fresh one under a
    // fresh stamp so (id, stamp) keeps naming immutable bytes.
    auto fresh = std::make_unique<char[]>(page_size_);
    std::memcpy(fresh.get(), data, page_size_);
    pending_retire_.push_back(std::move(pages_[id]));
    pages_[id] = std::move(fresh);
    shared_with_committed_[id] = false;
    page_stamp_[id] = next_stamp_++;
  } else {
    // The buffer was created after the last commit; no snapshot can see it.
    std::memcpy(pages_[id].get(), data, page_size_);
  }
  MutexLock lock(stats_mu_);
  stats_.RecordWrite();
}

void PageFile::Commit(const std::array<uint64_t, kCommitMetaWords>& meta) {
  auto next = std::make_unique<VersionState>();
  const VersionState* prev = committed_.load(std::memory_order_seq_cst);
  next->version = (prev != nullptr) ? prev->version + 1 : 1;
  next->meta = meta;
  next->table.resize(pages_.size());
  for (size_t i = 0; i < pages_.size(); ++i) {
    if (live_[i]) {
      next->table[i] = PageRef{pages_[i].get(), page_stamp_[i]};
      shared_with_committed_[i] = true;
    }
  }
  const VersionState* old =
      committed_.exchange(next.release(), std::memory_order_seq_cst);
  // Unlink-before-retire: from here on neither `old` nor the displaced
  // buffers are reachable from the published state, so a reader announcing
  // after this point can never acquire them (src/storage/epoch.h).
  if (old != nullptr) {
    epochs_.Retire(std::shared_ptr<const VersionState>(old));
  }
  if (!pending_retire_.empty()) {
    epochs_.Retire(std::make_shared<std::vector<std::unique_ptr<char[]>>>(
        std::move(pending_retire_)));
    pending_retire_.clear();
  }
  epochs_.AdvanceAndReclaim();
}

PageFile::Snapshot PageFile::AcquireSnapshot(const EpochGuard& guard) const {
  // The guard parameter is the contract: a snapshot cannot be acquired
  // without an epoch announce already in place, and the announce preceding
  // this load is what keeps the version (and every buffer it references)
  // alive for the snapshot's lifetime.
  (void)guard;
  return Snapshot(this, committed_.load(std::memory_order_seq_cst));
}

uint64_t PageFile::committed_version() const {
  return committed_.load(std::memory_order_seq_cst)->version;
}

uint64_t PageFile::page_stamp(PageId id) const {
  CHECK(IsLive(id));
  return page_stamp_[id];
}

void PageFile::Snapshot::Read(PageId id, char* out, int level,
                              IoStatsDelta* delta) const {
  const auto* state = static_cast<const VersionState*>(state_);
  CHECK_LT(static_cast<size_t>(id), state->table.size());
  const PageRef& ref = state->table[id];
  CHECK(ref.data != nullptr);
  // The buffer is immutable for this version's lifetime (copy-on-write),
  // so the copy needs no lock; only the shared counters do.
  std::memcpy(out, ref.data, file_->page_size_);
  bool cache_hit = false;
  {
    MutexLock lock(file_->stats_mu_);
    file_->stats_.RecordRead(level);
    if (file_->cache_capacity_ > 0) cache_hit = file_->TouchCache(id);
  }
  if (delta != nullptr) {
    delta->RecordRead(level);
    if (cache_hit) delta->RecordCacheHit();
  }
}

uint64_t PageFile::Snapshot::version() const {
  return static_cast<const VersionState*>(state_)->version;
}

uint64_t PageFile::Snapshot::meta(size_t i) const {
  CHECK_LT(i, kCommitMetaWords);
  return static_cast<const VersionState*>(state_)->meta[i];
}

bool PageFile::Snapshot::is_live(PageId id) const {
  const auto* state = static_cast<const VersionState*>(state_);
  return static_cast<size_t>(id) < state->table.size() &&
         state->table[id].data != nullptr;
}

uint64_t PageFile::Snapshot::page_stamp(PageId id) const {
  const auto* state = static_cast<const VersionState*>(state_);
  CHECK_LT(static_cast<size_t>(id), state->table.size());
  CHECK(state->table[id].data != nullptr);
  return state->table[id].stamp;
}

IoStats PageFile::GetIoStats() const {
  MutexLock lock(stats_mu_);
  return stats_;
}

void PageFile::ResetStats() {
  MutexLock lock(stats_mu_);
  stats_.Reset();
}

const char* PageFile::PeekPage(PageId id) const {
  CHECK(IsLive(id));
  return pages_[id].get();
}

char* PageFile::MutablePageForTest(PageId id) {
  CHECK(IsLive(id));
  return pages_[id].get();
}

Status PageFile::SaveTo(std::ostream& out) const {
  uint64_t live_count = 0;
  for (size_t i = 0; i < pages_.size(); ++i) {
    if (live_[i]) ++live_count;
  }
  PutLe32(out, kPageFileMagic);
  PutLe32(out, kPageFileVersion);
  PutLe64(out, page_size_);
  PutLe64(out, pages_.size());
  PutLe64(out, live_count);
  const uint32_t header_crc = HeaderCrc(page_size_, pages_.size(), live_count);
  PutLe32(out, header_crc);
  // Running CRC over the image's raw bytes — every byte EXCEPT the embedded
  // CRC words, which by CRC linearity would let valid-record splices cancel
  // (see the format comment above). This is what detects an overwrite torn
  // at a record boundary.
  uint32_t image_crc = 0;
  image_crc = CrcExtendLe32(image_crc, kPageFileMagic);
  image_crc = CrcExtendLe32(image_crc, kPageFileVersion);
  image_crc = CrcExtendLe64(image_crc, page_size_);
  image_crc = CrcExtendLe64(image_crc, pages_.size());
  image_crc = CrcExtendLe64(image_crc, live_count);
  for (size_t i = 0; i < pages_.size(); ++i) {
    const char live = live_[i] ? 1 : 0;
    out.put(live);
    image_crc = Crc32cExtend(image_crc, &live, 1);
    if (live) {
      out.write(pages_[i].get(), static_cast<std::streamsize>(page_size_));
      const uint32_t page_crc = Crc32c(pages_[i].get(), page_size_);
      PutLe32(out, page_crc);
      image_crc = Crc32cExtend(image_crc, pages_[i].get(), page_size_);
    }
  }
  PutLe32(out, kPageFileFooterMagic);
  PutLe64(out, pages_.size());
  PutLe64(out, live_count);
  image_crc = CrcExtendLe32(image_crc, kPageFileFooterMagic);
  image_crc = CrcExtendLe64(image_crc, pages_.size());
  image_crc = CrcExtendLe64(image_crc, live_count);
  PutLe32(out, image_crc);
  if (!out.good()) return Status::IoError("short write while saving pages");
  return Status::OK();
}

Status PageFile::LoadFrom(std::istream& in) {
  // Everything is staged into locals and swapped in only after the whole
  // image validates: a corrupt or truncated image must leave this PageFile
  // — possibly a live, healthy index — byte-for-byte untouched.
  std::vector<std::unique_ptr<char[]>> pages;
  std::vector<bool> live;
  std::vector<PageId> free_list;
  size_t live_pages = 0;

  uint32_t magic = 0, version = 0;
  if (!GetLe32(in, &magic) || magic != kPageFileMagic) {
    return Status::Corruption("not a page-file image (bad magic)");
  }
  if (!GetLe32(in, &version)) {
    return Status::Corruption("unsupported page-file image version");
  }
  if (version == kRetiredPageFileVersion) {
    return Status::Corruption(
        "pre-v2 page-file image is no longer readable; re-save with v2 "
        "using a release that still reads it");
  }
  if (version != kPageFileVersion) {
    return Status::Corruption("unsupported page-file image version");
  }

  uint64_t page_size = 0, page_count = 0, live_count = 0;
  uint32_t header_crc = 0;
  if (!GetLe64(in, &page_size) || !GetLe64(in, &page_count) ||
      !GetLe64(in, &live_count) || !GetLe32(in, &header_crc)) {
    return Status::Corruption("truncated page-file header");
  }
  if (HeaderCrc(page_size, page_count, live_count) != header_crc) {
    return Status::Corruption("page-file header checksum mismatch");
  }
  if (live_count > page_count) {
    return Status::Corruption("page-file header live count exceeds pages");
  }
  if (page_size != page_size_) {
    return Status::InvalidArgument("image page size does not match");
  }
  if (page_count > std::numeric_limits<PageId>::max()) {
    return Status::Corruption("page-file header page count implausible");
  }

  // Validate the claimed page count against the bytes actually present
  // BEFORE building any state from it: a forged multi-terabyte header must
  // be rejected up front, not discovered one heap block at a time.
  const int64_t remaining = RemainingBytes(in);
  if (remaining >= 0) {
    // v2 images are sized exactly by the header; the image extends to the
    // end of the stream, so any mismatch means truncation or trailing
    // garbage.
    constexpr uint64_t kFooterBytes = 4 + 8 + 8 + 4;
    const uint64_t expected =
        page_count + live_count * (page_size + 4) + kFooterBytes;
    if (expected != static_cast<uint64_t>(remaining)) {
      return Status::Corruption("page-file image size mismatch");
    }
  }

  // Mirror of SaveTo's running image CRC: raw bytes only, never the
  // embedded CRC words.
  uint32_t image_crc = 0;
  image_crc = CrcExtendLe32(image_crc, kPageFileMagic);
  image_crc = CrcExtendLe32(image_crc, kPageFileVersion);
  image_crc = CrcExtendLe64(image_crc, page_size);
  image_crc = CrcExtendLe64(image_crc, page_count);
  image_crc = CrcExtendLe64(image_crc, live_count);

  pages.reserve(page_count);
  live.reserve(page_count);
  for (uint64_t i = 0; i < page_count; ++i) {
    const int flag = in.get();
    if (flag == std::char_traits<char>::eof()) {
      return Status::Corruption("truncated page-file image");
    }
    if (flag != 0 && flag != 1) {
      return Status::Corruption("page-file record has invalid live flag");
    }
    const char flag_byte = static_cast<char>(flag);
    image_crc = Crc32cExtend(image_crc, &flag_byte, 1);
    if (flag != 0) {
      auto page = std::make_unique<char[]>(page_size_);
      in.read(page.get(), static_cast<std::streamsize>(page_size_));
      if (!in.good()) return Status::Corruption("truncated page contents");
      uint32_t page_crc = 0;
      if (!GetLe32(in, &page_crc)) {
        return Status::Corruption("truncated page checksum");
      }
      if (Crc32c(page.get(), page_size_) != page_crc) {
        return Status::Corruption("page checksum mismatch at page " +
                                  std::to_string(i));
      }
      image_crc = Crc32cExtend(image_crc, page.get(), page_size_);
      pages.push_back(std::move(page));
      live.push_back(true);
      ++live_pages;
    } else {
      // Dead pages stage no buffer; Allocate() materializes one on reuse.
      pages.push_back(nullptr);
      live.push_back(false);
      free_list.push_back(static_cast<PageId>(i));
    }
  }
  {
    uint32_t footer_magic = 0, footer_crc = 0;
    uint64_t footer_pages = 0, footer_live = 0;
    if (!GetLe32(in, &footer_magic) || footer_magic != kPageFileFooterMagic ||
        !GetLe64(in, &footer_pages) || !GetLe64(in, &footer_live) ||
        !GetLe32(in, &footer_crc)) {
      return Status::Corruption("truncated page-file footer");
    }
    if (footer_pages != page_count || footer_live != live_count) {
      return Status::Corruption("page-file footer does not match header");
    }
    image_crc = CrcExtendLe32(image_crc, footer_magic);
    image_crc = CrcExtendLe64(image_crc, footer_pages);
    image_crc = CrcExtendLe64(image_crc, footer_live);
    if (footer_crc != image_crc) {
      return Status::Corruption("page-file image checksum mismatch");
    }
    if (live_pages != live_count) {
      return Status::Corruption("page-file live count does not match records");
    }
  }

  // The image is fully validated; swap it in. The simulated-cache LRU and
  // the counters refer to the replaced pages, so both reset with the
  // contents (the configured cache capacity is kept).
  //
  // Commit-protocol interaction: buffers the published version references
  // are moved into the pending-retire batch, NOT destroyed — a concurrent
  // snapshot keeps reading the pre-load version until the caller's next
  // Commit() retires it. The new contents are deliberately left unpublished
  // and unshared: a committing caller (SRTree::Open) follows up with a
  // Commit() carrying its real metadata, while legacy frozen-tree callers
  // never commit and keep mutating the fresh buffers through Write().
  for (auto& page : pages_) {
    if (page != nullptr) pending_retire_.push_back(std::move(page));
  }
  pages_ = std::move(pages);
  live_ = std::move(live);
  free_list_ = std::move(free_list);
  live_pages_ = live_pages;
  shared_with_committed_.assign(pages_.size(), false);
  page_stamp_.resize(pages_.size());
  for (size_t i = 0; i < pages_.size(); ++i) page_stamp_[i] = next_stamp_++;
  {
    MutexLock lock(stats_mu_);
    cache_lru_.clear();
    cache_index_.clear();
    stats_.Reset();
  }
  return Status::OK();
}

Status PageFile::Save(const std::string& path) const {
  return AtomicWriteFile(path,
                         [this](std::ostream& out) { return SaveTo(out); });
}

Status PageFile::Load(const std::string& path) {
  IndexImageFile image;
  RETURN_IF_ERROR(image.OpenRaw(path));
  return LoadFrom(image.stream());
}

}  // namespace srtree
