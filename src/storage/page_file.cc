#include "src/storage/page_file.h"

#include <cstring>
#include <fstream>

#include "src/common/check.h"

namespace srtree {
namespace {

// Image header: magic + version guard against loading foreign files.
constexpr uint32_t kPageFileMagic = 0x53525046;  // "SRPF"
constexpr uint32_t kPageFileVersion = 1;

template <typename T>
void WritePod(std::ostream& out, const T& value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof(value));
}

template <typename T>
bool ReadPod(std::istream& in, T* value) {
  in.read(reinterpret_cast<char*>(value), sizeof(*value));
  return in.good();
}

}  // namespace

PageFile::PageFile(size_t page_size) : page_size_(page_size) {
  CHECK_GT(page_size_, 0u);
}

PageId PageFile::Allocate() {
  if (!free_list_.empty()) {
    const PageId id = free_list_.back();
    free_list_.pop_back();
    std::memset(pages_[id].get(), 0, page_size_);
    live_[id] = true;
    ++live_pages_;
    return id;
  }
  const PageId id = static_cast<PageId>(pages_.size());
  pages_.push_back(std::make_unique<char[]>(page_size_));
  live_.push_back(true);
  ++live_pages_;
  return id;
}

void PageFile::Free(PageId id) {
  CHECK(IsLive(id));
  live_[id] = false;
  --live_pages_;
  free_list_.push_back(id);
}

bool PageFile::IsLive(PageId id) const {
  return id < pages_.size() && live_[id];
}

void PageFile::Read(PageId id, char* out, int level,
                    IoStatsDelta* delta) const {
  CHECK(IsLive(id));
  // Page bytes are stable while queries run (writers are excluded by
  // contract), so the copy itself needs no lock.
  std::memcpy(out, pages_[id].get(), page_size_);
  bool cache_hit = false;
  {
    MutexLock lock(stats_mu_);
    stats_.RecordRead(level);
    if (cache_capacity_ > 0) cache_hit = TouchCache(id);
  }
  if (delta != nullptr) {
    delta->RecordRead(level);
    if (cache_hit) delta->RecordCacheHit();
  }
}

void PageFile::SimulateCache(size_t capacity) {
  MutexLock lock(stats_mu_);
  cache_capacity_ = capacity;
  cache_lru_.clear();
  cache_index_.clear();
}

bool PageFile::TouchCache(PageId id) const {
  const auto it = cache_index_.find(id);
  if (it != cache_index_.end()) {
    stats_.RecordCacheHit();  // the cache would have served this read
    cache_lru_.splice(cache_lru_.begin(), cache_lru_, it->second);
    return true;
  }
  cache_lru_.push_front(id);
  cache_index_[id] = cache_lru_.begin();
  if (cache_lru_.size() > cache_capacity_) {
    cache_index_.erase(cache_lru_.back());
    cache_lru_.pop_back();
  }
  return false;
}

void PageFile::Write(PageId id, const char* data) {
  CHECK(IsLive(id));
  std::memcpy(pages_[id].get(), data, page_size_);
  MutexLock lock(stats_mu_);
  stats_.RecordWrite();
}

IoStats PageFile::GetIoStats() const {
  MutexLock lock(stats_mu_);
  return stats_;
}

void PageFile::ResetStats() {
  MutexLock lock(stats_mu_);
  stats_.Reset();
}

const char* PageFile::PeekPage(PageId id) const {
  CHECK(IsLive(id));
  return pages_[id].get();
}

char* PageFile::MutablePageForTest(PageId id) {
  CHECK(IsLive(id));
  return pages_[id].get();
}

Status PageFile::SaveTo(std::ostream& out) const {
  WritePod(out, kPageFileMagic);
  WritePod(out, kPageFileVersion);
  WritePod(out, static_cast<uint64_t>(page_size_));
  WritePod(out, static_cast<uint64_t>(pages_.size()));
  for (size_t i = 0; i < pages_.size(); ++i) {
    const uint8_t live = live_[i] ? 1 : 0;
    WritePod(out, live);
    if (live) out.write(pages_[i].get(), page_size_);
  }
  if (!out.good()) return Status::IoError("short write while saving pages");
  return Status::OK();
}

Status PageFile::LoadFrom(std::istream& in) {
  uint32_t magic = 0, version = 0;
  uint64_t page_size = 0, page_count = 0;
  if (!ReadPod(in, &magic) || magic != kPageFileMagic) {
    return Status::Corruption("not a page-file image (bad magic)");
  }
  if (!ReadPod(in, &version) || version != kPageFileVersion) {
    return Status::Corruption("unsupported page-file image version");
  }
  if (!ReadPod(in, &page_size) || !ReadPod(in, &page_count)) {
    return Status::Corruption("truncated page-file header");
  }
  if (page_size != page_size_) {
    return Status::InvalidArgument("image page size does not match");
  }

  pages_.clear();
  live_.clear();
  free_list_.clear();
  live_pages_ = 0;
  for (uint64_t i = 0; i < page_count; ++i) {
    uint8_t live = 0;
    if (!ReadPod(in, &live)) {
      return Status::Corruption("truncated page-file image");
    }
    pages_.push_back(std::make_unique<char[]>(page_size_));
    live_.push_back(live != 0);
    if (live) {
      in.read(pages_.back().get(), page_size_);
      if (!in.good()) return Status::Corruption("truncated page contents");
      ++live_pages_;
    } else {
      free_list_.push_back(static_cast<PageId>(i));
    }
  }
  ResetStats();
  return Status::OK();
}

Status PageFile::Save(const std::string& path) const {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Status::IoError("cannot open for writing: " + path);
  return SaveTo(out);
}

Status PageFile::Load(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("cannot open for reading: " + path);
  return LoadFrom(in);
}

}  // namespace srtree
