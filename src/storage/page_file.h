// PageFile: a simulated disk of fixed-size blocks.
//
// This is the substrate every index structure is built on. It behaves like a
// 1997 raw-device file: pages are allocated/freed by id, and every Read()/
// Write() is counted as one disk access (no caching — the paper's numbers
// assume cold reads per query). An optional BufferPool (buffer_pool.h) can
// be layered on top when caching behavior is wanted.
//
// Storage is in memory; the simulation is about *counting* block transfers
// and enforcing that each node physically fits one block, not about actual
// persistence.
//
// Thread safety — two coexisting contracts:
//
//   * Legacy (frozen-tree) contract: Read() is safe from any number of
//     threads at once (the shared counters and the simulated-cache LRU are
//     guarded by a mutex). All mutating operations — Allocate/Free/Write/
//     SimulateCache/Load* and the stats() reference accessors — require
//     external exclusion against every other call. The six non-SR trees
//     still run under this contract.
//
//   * Commit protocol (single writer / many readers): the writer mutates
//     *working state* through StageWrite() — which copy-on-writes any page
//     a published version can see — and atomically publishes the result
//     with Commit(). Readers pin an immutable published version via
//     AcquireSnapshot() under an EpochGuard and read through the returned
//     Snapshot; retired versions and displaced page buffers are reclaimed
//     by the epoch scheme (src/storage/epoch.h) once no reader can reach
//     them. Snapshot::Read is safe against a concurrently staging and
//     committing writer; the writer itself must still be a single thread.

#ifndef SRTREE_STORAGE_PAGE_FILE_H_
#define SRTREE_STORAGE_PAGE_FILE_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <list>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/base/mutex.h"
#include "src/base/thread_annotations.h"
#include "src/common/status.h"
#include "src/storage/epoch.h"
#include "src/storage/io_stats.h"
#include "src/storage/page.h"

namespace srtree {

using PageId = uint32_t;
inline constexpr PageId kInvalidPageId = 0xffffffffu;

class PageFile {
 public:
  // Metadata words carried by every committed version (the SR-tree packs
  // root id, root level, and size; other users are free to repurpose them).
  static constexpr size_t kCommitMetaWords = 4;

  explicit PageFile(size_t page_size = kDefaultPageSize);

  PageFile(const PageFile&) = delete;
  PageFile& operator=(const PageFile&) = delete;

  ~PageFile();

  size_t page_size() const { return page_size_; }

  // An immutable view of one committed version: the page table published by
  // the Commit() that created it, plus its metadata words. Light value type
  // (two pointers); valid only while the EpochGuard passed to
  // AcquireSnapshot() is alive. Read() performs the same I/O accounting as
  // PageFile::Read and is safe against the concurrently mutating writer.
  class Snapshot {
   public:
    // Copies the page as of this version into `out` (page_size bytes) and
    // counts one disk read (see PageFile::Read for `level` / `delta`).
    void Read(PageId id, char* out, int level = -1,
              IoStatsDelta* delta = nullptr) const;

    // Monotonic version number (the constructor publishes version 1; every
    // Commit() increments it by exactly one).
    uint64_t version() const;
    uint64_t meta(size_t i) const;

    // True when `id` was live in this version.
    bool is_live(PageId id) const;

    // Identity of the page *buffer* backing `id` in this version. A
    // (page id, stamp) pair names immutable bytes — copy-on-write assigns a
    // fresh stamp — which is what lets BufferPool cache snapshot reads
    // without any invalidation protocol.
    uint64_t page_stamp(PageId id) const;

    size_t page_size() const { return file_->page_size(); }

   private:
    friend class PageFile;
    Snapshot(const PageFile* file, const void* state)
        : file_(file), state_(state) {}

    const PageFile* file_;
    const void* state_;  // const VersionState*, opaque to keep it private
  };

  // Allocates a zeroed page and returns its id (free pages are recycled).
  PageId Allocate();

  // Returns a page to the free list. The id must be live.
  void Free(PageId id);

  // Copies the page into `out` (page_size bytes) and counts one disk read.
  // `level` tags the read for the per-level breakdown (0 = leaf, -1 =
  // unknown). When `delta` is non-null the read (and any simulated cache
  // hit) is additionally recorded there, giving the caller a per-query view
  // without touching the shared counters twice. Safe to call concurrently.
  void Read(PageId id, char* out, int level = -1,
            IoStatsDelta* delta = nullptr) const;

  // Copies `data` (page_size bytes) into the page in place and counts one
  // write. LEGACY frozen-tree path only: writing a page a committed version
  // can see would corrupt live snapshots, so this CHECKs that the page is
  // not shared with the published version. Indexes that commit (the
  // SR-tree) must use StageWrite(); srlint rule R6 enforces this outside
  // src/storage/.
  void Write(PageId id, const char* data);

  // --- commit protocol (single writer) -----------------------------------

  // Writer-side page update: when the page's current buffer is visible to
  // the published version, allocates a fresh buffer (copy-on-write) and
  // retires the old one at the next Commit(); otherwise updates in place
  // (the buffer was created after the last commit, so no reader can see
  // it). Counts one write.
  void StageWrite(PageId id, const char* data);

  // Atomically publishes the current working state (live pages + buffers +
  // `meta`) as the next version. Readers acquiring a snapshot from this
  // point observe the new version; snapshots acquired earlier keep reading
  // their own. Superseded state is retired through the epoch manager and
  // freed once no reader can reference it.
  void Commit(const std::array<uint64_t, kCommitMetaWords>& meta);

  // Pins the most recently committed version. The guard must outlive the
  // snapshot (requiring it here is what makes an unguarded snapshot
  // impossible to acquire). Safe to call concurrently with the writer.
  Snapshot AcquireSnapshot(const EpochGuard& guard) const;

  // Version number of the most recently committed version.
  uint64_t committed_version() const;

  // Stamp of the *working* buffer currently backing `id` (see
  // Snapshot::page_stamp). The id must be live.
  uint64_t page_stamp(PageId id) const;

  // The reclamation domain for this file's retired versions and buffers.
  // Readers construct EpochGuards against it; tests assert retired_count()
  // drains to zero.
  EpochManager& epochs() const { return epochs_; }

  // Enables a simulated LRU cache of `capacity` pages: subsequent Read()s
  // still count in IoStats::reads, but IoStats::cache_misses only counts
  // reads the cache would not have served. Capacity 0 disables the
  // simulation. Used by the buffer-pool extension bench; the data path is
  // unchanged (contents are always served).
  void SimulateCache(size_t capacity);

  // Direct access to page bytes with NO I/O accounting. For invariant
  // checkers and offline statistics walkers only — never in query or
  // update paths.
  const char* PeekPage(PageId id) const;
  char* MutablePageForTest(PageId id);

  // Serializes the whole simulated disk (page size, allocation state, page
  // contents) to a stream/file; LoadFrom replaces this PageFile's contents
  // with a previously saved image. I/O counters are not persisted. These
  // are the substrate of the index structures' Save/Open.
  //
  // Durability contract (format v2, see page_file.cc):
  //   * SaveTo writes a checksummed image — header CRC32C, per-page
  //     CRC32C, and a footer echoing the page counts plus a CRC32C over
  //     the whole image — with fixed little-endian framing. The image must
  //     be the final section of the stream (LoadFrom validates its exact
  //     size against EOF).
  //   * Save(path) is atomic: temp file + flush + fsync + rename via
  //     storage::AtomicWriteFile, so the destination always holds either
  //     the previous image or the complete new one.
  //   * LoadFrom is all-or-nothing: the image is staged into fresh state
  //     and swapped in only after every checksum and count validates. On
  //     any failure this PageFile — possibly a live index — is untouched.
  //   * v1 (pre-checksum) images are no longer readable: their one-release
  //     compatibility window has closed, and LoadFrom rejects them with an
  //     explicit "re-save with v2" Corruption.
  Status SaveTo(std::ostream& out) const;
  Status LoadFrom(std::istream& in);
  Status Save(const std::string& path) const;
  Status Load(const std::string& path);

  // DEPRECATED: unsynchronized views of the counters; valid only while no
  // concurrent Read() is in flight (the legacy reset-then-peek measurement
  // pattern). That external-exclusion contract is what the analysis opt-out
  // stands in for; new code takes GetIoStats() snapshots instead.
  IoStats& stats() NO_THREAD_SAFETY_ANALYSIS { return stats_; }
  const IoStats& stats() const NO_THREAD_SAFETY_ANALYSIS { return stats_; }

  // Locked by-value snapshot / reset, safe against concurrent Read()s.
  IoStats GetIoStats() const EXCLUDES(stats_mu_);
  void ResetStats() EXCLUDES(stats_mu_);

  // Number of currently live (allocated and not freed) pages.
  size_t live_pages() const { return live_pages_; }

  // True when `id` names a live (allocated and not freed) page. Lets the
  // index Open() paths validate a restored root id before dereferencing it.
  bool is_live(PageId id) const { return IsLive(id); }

 private:
  bool IsLive(PageId id) const;

  // One entry of a committed version's page table: the immutable buffer
  // bytes (nullptr = dead in that version) and the buffer's stamp.
  struct PageRef {
    const char* data = nullptr;
    uint64_t stamp = 0;
  };

  // An immutable committed version. Built by Commit(), published through
  // `committed_`, torn down by the epoch manager once unreachable.
  struct VersionState {
    std::vector<PageRef> table;
    std::array<uint64_t, kCommitMetaWords> meta{};
    uint64_t version = 0;
  };

  // Returns true when the simulated cache already held the page (the hit is
  // recorded in stats_, the caller mirrors it into the per-query delta).
  bool TouchCache(PageId id) const REQUIRES(stats_mu_);

  // Moves the page's buffer out of the working state and into the batch
  // retired at the next Commit() (the published version still references
  // it). The slot is left null for Allocate() to rematerialize.
  void DetachSharedBuffer(PageId id);

  const size_t page_size_;
  // stats_mu_ guards stats_ and the simulated-cache LRU — the only state a
  // read mutates — so concurrent queries stay race-free.
  mutable Mutex stats_mu_;
  size_t cache_capacity_ GUARDED_BY(stats_mu_) = 0;
  // front = most recently used
  mutable std::list<PageId> cache_lru_ GUARDED_BY(stats_mu_);
  mutable std::unordered_map<PageId, std::list<PageId>::iterator> cache_index_
      GUARDED_BY(stats_mu_);
  // Dead pages restored from an image may hold a null buffer until
  // Allocate() recycles them — that is what bounds a forged header's
  // allocation to the bytes actually present in the stream.
  std::vector<std::unique_ptr<char[]>> pages_ UNGUARDED_OK(
      "single-writer working state; readers go through committed_");
  std::vector<bool> live_ UNGUARDED_OK(
      "single-writer working state; readers go through committed_");
  std::vector<PageId> free_list_ UNGUARDED_OK(
      "single-writer working state; readers go through committed_");
  size_t live_pages_ UNGUARDED_OK(
      "single-writer working state; readers go through committed_") = 0;
  mutable IoStats stats_ GUARDED_BY(stats_mu_);

  // --- commit-protocol state (owned by the single writer, except
  //     `committed_`, which readers load through AcquireSnapshot) ----------

  // shared_with_committed_[id]: the working buffer for `id` is referenced
  // by the published version's table, so StageWrite must copy-on-write and
  // Free must detach instead of recycling it.
  std::vector<bool> shared_with_committed_ UNGUARDED_OK(
      "commit-protocol state owned by the single writer");
  // Stamp of the working buffer per page (see Snapshot::page_stamp).
  std::vector<uint64_t> page_stamp_ UNGUARDED_OK(
      "commit-protocol state owned by the single writer");
  uint64_t next_stamp_ UNGUARDED_OK(
      "commit-protocol state owned by the single writer") = 1;
  // Buffers displaced by StageWrite/Free since the last Commit(): still
  // referenced by the published version, retired with it at the next one.
  std::vector<std::unique_ptr<char[]>> pending_retire_ UNGUARDED_OK(
      "commit-protocol state owned by the single writer");
  // The published version; never null after construction. seq_cst on both
  // sides pairs with the epoch announce protocol (src/storage/epoch.h).
  std::atomic<const VersionState*> committed_{nullptr};
  mutable EpochManager epochs_;
};

}  // namespace srtree

#endif  // SRTREE_STORAGE_PAGE_FILE_H_
