// PageFile: a simulated disk of fixed-size blocks.
//
// This is the substrate every index structure is built on. It behaves like a
// 1997 raw-device file: pages are allocated/freed by id, and every Read()/
// Write() is counted as one disk access (no caching — the paper's numbers
// assume cold reads per query). An optional BufferPool (buffer_pool.h) can
// be layered on top when caching behavior is wanted.
//
// Storage is in memory; the simulation is about *counting* block transfers
// and enforcing that each node physically fits one block, not about actual
// persistence.

#ifndef SRTREE_STORAGE_PAGE_FILE_H_
#define SRTREE_STORAGE_PAGE_FILE_H_

#include <cstdint>
#include <iosfwd>
#include <list>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/common/status.h"
#include "src/storage/io_stats.h"
#include "src/storage/page.h"

namespace srtree {

using PageId = uint32_t;
inline constexpr PageId kInvalidPageId = 0xffffffffu;

class PageFile {
 public:
  explicit PageFile(size_t page_size = kDefaultPageSize);

  PageFile(const PageFile&) = delete;
  PageFile& operator=(const PageFile&) = delete;

  size_t page_size() const { return page_size_; }

  // Allocates a zeroed page and returns its id (free pages are recycled).
  PageId Allocate();

  // Returns a page to the free list. The id must be live.
  void Free(PageId id);

  // Copies the page into `out` (page_size bytes) and counts one disk read.
  // `level` tags the read for the per-level breakdown (0 = leaf, -1 =
  // unknown).
  void Read(PageId id, char* out, int level = -1);

  // Copies `data` (page_size bytes) into the page and counts one write.
  void Write(PageId id, const char* data);

  // Enables a simulated LRU cache of `capacity` pages: subsequent Read()s
  // still count in IoStats::reads, but IoStats::cache_misses only counts
  // reads the cache would not have served. Capacity 0 disables the
  // simulation. Used by the buffer-pool extension bench; the data path is
  // unchanged (contents are always served).
  void SimulateCache(size_t capacity);

  // Direct access to page bytes with NO I/O accounting. For invariant
  // checkers and offline statistics walkers only — never in query or
  // update paths.
  const char* PeekPage(PageId id) const;
  char* MutablePageForTest(PageId id);

  // Serializes the whole simulated disk (page size, allocation state, page
  // contents) to a stream/file; LoadFrom replaces this PageFile's contents
  // with a previously saved image. I/O counters are not persisted. These
  // are the substrate of the index structures' Save/Open.
  Status SaveTo(std::ostream& out) const;
  Status LoadFrom(std::istream& in);
  Status Save(const std::string& path) const;
  Status Load(const std::string& path);

  IoStats& stats() { return stats_; }
  const IoStats& stats() const { return stats_; }

  // Number of currently live (allocated and not freed) pages.
  size_t live_pages() const { return live_pages_; }

 private:
  bool IsLive(PageId id) const;

  void TouchCache(PageId id);

  size_t page_size_;
  size_t cache_capacity_ = 0;
  std::list<PageId> cache_lru_;  // front = most recently used
  std::unordered_map<PageId, std::list<PageId>::iterator> cache_index_;
  std::vector<std::unique_ptr<char[]>> pages_;
  std::vector<bool> live_;
  std::vector<PageId> free_list_;
  size_t live_pages_ = 0;
  IoStats stats_;
};

}  // namespace srtree

#endif  // SRTREE_STORAGE_PAGE_FILE_H_
