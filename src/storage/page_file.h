// PageFile: a simulated disk of fixed-size blocks.
//
// This is the substrate every index structure is built on. It behaves like a
// 1997 raw-device file: pages are allocated/freed by id, and every Read()/
// Write() is counted as one disk access (no caching — the paper's numbers
// assume cold reads per query). An optional BufferPool (buffer_pool.h) can
// be layered on top when caching behavior is wanted.
//
// Storage is in memory; the simulation is about *counting* block transfers
// and enforcing that each node physically fits one block, not about actual
// persistence.
//
// Thread safety: Read() is safe to call from any number of threads at once
// (the shared counters and the simulated-cache LRU are guarded by a mutex);
// that is what makes the concurrent query engine's read path sound. All
// mutating operations — Allocate/Free/Write/SimulateCache/Load* and the
// stats() reference accessors — require external exclusion against every
// other call, i.e. the index must be frozen while queries are in flight.

#ifndef SRTREE_STORAGE_PAGE_FILE_H_
#define SRTREE_STORAGE_PAGE_FILE_H_

#include <cstdint>
#include <iosfwd>
#include <list>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/base/mutex.h"
#include "src/base/thread_annotations.h"
#include "src/common/status.h"
#include "src/storage/io_stats.h"
#include "src/storage/page.h"

namespace srtree {

using PageId = uint32_t;
inline constexpr PageId kInvalidPageId = 0xffffffffu;

class PageFile {
 public:
  explicit PageFile(size_t page_size = kDefaultPageSize);

  PageFile(const PageFile&) = delete;
  PageFile& operator=(const PageFile&) = delete;

  size_t page_size() const { return page_size_; }

  // Allocates a zeroed page and returns its id (free pages are recycled).
  PageId Allocate();

  // Returns a page to the free list. The id must be live.
  void Free(PageId id);

  // Copies the page into `out` (page_size bytes) and counts one disk read.
  // `level` tags the read for the per-level breakdown (0 = leaf, -1 =
  // unknown). When `delta` is non-null the read (and any simulated cache
  // hit) is additionally recorded there, giving the caller a per-query view
  // without touching the shared counters twice. Safe to call concurrently.
  void Read(PageId id, char* out, int level = -1,
            IoStatsDelta* delta = nullptr) const;

  // Copies `data` (page_size bytes) into the page and counts one write.
  void Write(PageId id, const char* data);

  // Enables a simulated LRU cache of `capacity` pages: subsequent Read()s
  // still count in IoStats::reads, but IoStats::cache_misses only counts
  // reads the cache would not have served. Capacity 0 disables the
  // simulation. Used by the buffer-pool extension bench; the data path is
  // unchanged (contents are always served).
  void SimulateCache(size_t capacity);

  // Direct access to page bytes with NO I/O accounting. For invariant
  // checkers and offline statistics walkers only — never in query or
  // update paths.
  const char* PeekPage(PageId id) const;
  char* MutablePageForTest(PageId id);

  // Serializes the whole simulated disk (page size, allocation state, page
  // contents) to a stream/file; LoadFrom replaces this PageFile's contents
  // with a previously saved image. I/O counters are not persisted. These
  // are the substrate of the index structures' Save/Open.
  //
  // Durability contract (format v2, see page_file.cc):
  //   * SaveTo writes a checksummed image — header CRC32C, per-page
  //     CRC32C, and a footer echoing the page counts plus a CRC32C over
  //     the whole image — with fixed little-endian framing. The image must
  //     be the final section of the stream (LoadFrom validates its exact
  //     size against EOF).
  //   * Save(path) is atomic: temp file + flush + fsync + rename via
  //     storage::AtomicWriteFile, so the destination always holds either
  //     the previous image or the complete new one.
  //   * LoadFrom is all-or-nothing: the image is staged into fresh state
  //     and swapped in only after every checksum and count validates. On
  //     any failure this PageFile — possibly a live index — is untouched.
  //   * v1 (pre-checksum) images are still accepted read-compatibly for
  //     one release; loaded_legacy_image() reports that case.
  Status SaveTo(std::ostream& out) const;
  Status LoadFrom(std::istream& in);
  Status Save(const std::string& path) const;
  Status Load(const std::string& path);

  // Writes the legacy v1 (unchecksummed, host-endian) image; exists only
  // so the compatibility tests can generate v1 fixtures.
  Status SaveToV1ForTest(std::ostream& out) const;

  // True when the last successful LoadFrom read a legacy v1 image (the
  // compatibility window new code should not extend).
  bool loaded_legacy_image() const { return loaded_legacy_image_; }

  // DEPRECATED: unsynchronized views of the counters; valid only while no
  // concurrent Read() is in flight (the legacy reset-then-peek measurement
  // pattern). That external-exclusion contract is what the analysis opt-out
  // stands in for; new code takes GetIoStats() snapshots instead.
  IoStats& stats() NO_THREAD_SAFETY_ANALYSIS { return stats_; }
  const IoStats& stats() const NO_THREAD_SAFETY_ANALYSIS { return stats_; }

  // Locked by-value snapshot / reset, safe against concurrent Read()s.
  IoStats GetIoStats() const EXCLUDES(stats_mu_);
  void ResetStats() EXCLUDES(stats_mu_);

  // Number of currently live (allocated and not freed) pages.
  size_t live_pages() const { return live_pages_; }

  // True when `id` names a live (allocated and not freed) page. Lets the
  // index Open() paths validate a restored root id before dereferencing it.
  bool is_live(PageId id) const { return IsLive(id); }

 private:
  bool IsLive(PageId id) const;

  // Returns true when the simulated cache already held the page (the hit is
  // recorded in stats_, the caller mirrors it into the per-query delta).
  bool TouchCache(PageId id) const REQUIRES(stats_mu_);

  size_t page_size_;
  // stats_mu_ guards stats_ and the simulated-cache LRU — the only state a
  // read mutates — so concurrent queries stay race-free.
  mutable Mutex stats_mu_;
  size_t cache_capacity_ GUARDED_BY(stats_mu_) = 0;
  // front = most recently used
  mutable std::list<PageId> cache_lru_ GUARDED_BY(stats_mu_);
  mutable std::unordered_map<PageId, std::list<PageId>::iterator> cache_index_
      GUARDED_BY(stats_mu_);
  // Dead pages restored from an image may hold a null buffer until
  // Allocate() recycles them — that is what bounds a forged header's
  // allocation to the bytes actually present in the stream.
  std::vector<std::unique_ptr<char[]>> pages_;
  std::vector<bool> live_;
  std::vector<PageId> free_list_;
  size_t live_pages_ = 0;
  bool loaded_legacy_image_ = false;
  mutable IoStats stats_ GUARDED_BY(stats_mu_);
};

}  // namespace srtree

#endif  // SRTREE_STORAGE_PAGE_FILE_H_
