#include "src/rstar/rstar_tree.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <queue>
#include <numeric>

#include "src/common/check.h"
#include "src/debug/structural_auditor.h"
#include "src/geometry/kernel.h"
#include "src/storage/image_io.h"

namespace srtree {
namespace {

// Node page header: level (u8), pad (u8), count (u16), reserved (u32).
constexpr size_t kHeaderBytes = 8;

}  // namespace

RStarTree::RStarTree(const Options& options) : options_(options), file_(options.page_size) {
  CHECK_GT(options_.dim, 0);
  CHECK_GT(options_.page_size, kHeaderBytes);
  CHECK_GT(options_.min_utilization, 0.0);
  CHECK_LE(options_.min_utilization, 0.5);
  CHECK_GT(options_.reinsert_fraction, 0.0);
  CHECK_LT(options_.reinsert_fraction, 1.0);

  const size_t dim = static_cast<size_t>(options_.dim);
  const size_t leaf_entry =
      dim * sizeof(double) + sizeof(uint32_t) + options_.leaf_data_size;
  const size_t node_entry = 2 * dim * sizeof(double) + sizeof(uint32_t);
  leaf_cap_ = (options_.page_size - kHeaderBytes) / leaf_entry;
  node_cap_ = (options_.page_size - kHeaderBytes) / node_entry;
  CHECK_GE(leaf_cap_, 2u);
  CHECK_GE(node_cap_, 2u);
  leaf_min_ = std::max<size_t>(
      1, static_cast<size_t>(options_.min_utilization * leaf_cap_));
  node_min_ = std::max<size_t>(
      1, static_cast<size_t>(options_.min_utilization * node_cap_));

  Node root;
  root.id = file_.Allocate();
  root.level = 0;
  WriteNode(root);
  root_id_ = root.id;
}

// --------------------------------------------------------------------------
// Persistence
// --------------------------------------------------------------------------

namespace {

// v2 header record embedded in the SRIX container (src/storage/image_io.h);
// the container carries the magic, tag, and a CRC32C over these bytes.
struct RStarImageHeader {
  int32_t dim;
  uint32_t pad0;
  uint64_t page_size;
  uint64_t leaf_data_size;
  double min_utilization;
  double reinsert_fraction;
  uint32_t root_id;
  int32_t root_level;
  uint64_t size;
};

// True iff `o` would pass every constructor CHECK, so Open() can reject a
// forged header with Corruption instead of crashing the process. The
// negated-range form also rejects NaN utilization/fraction values.
bool PlausibleOptions(const RStarTree::Options& o) {
  if (o.dim <= 0 || o.dim > (1 << 16)) return false;
  if (!(o.min_utilization > 0.0 && o.min_utilization <= 0.5)) return false;
  if (!(o.reinsert_fraction > 0.0 && o.reinsert_fraction < 1.0)) return false;
  if (o.page_size <= kHeaderBytes || o.page_size > (1u << 28)) return false;
  if (o.leaf_data_size > o.page_size) return false;
  const size_t dim = static_cast<size_t>(o.dim);
  const size_t leaf_entry =
      dim * sizeof(double) + sizeof(uint32_t) + o.leaf_data_size;
  const size_t node_entry = 2 * dim * sizeof(double) + sizeof(uint32_t);
  return (o.page_size - kHeaderBytes) / leaf_entry >= 2 &&
         (o.page_size - kHeaderBytes) / node_entry >= 2;
}

}  // namespace

Status RStarTree::Save(const std::string& path) const {
  RStarImageHeader header = {};
  header.dim = options_.dim;
  header.page_size = options_.page_size;
  header.leaf_data_size = options_.leaf_data_size;
  header.min_utilization = options_.min_utilization;
  header.reinsert_fraction = options_.reinsert_fraction;
  header.root_id = root_id_;
  header.root_level = root_level_;
  header.size = size_;
  return AtomicWriteFile(path, [&](std::ostream& out) {
    RETURN_IF_ERROR(
        WriteIndexImageTo(out, kImageTag, &header, sizeof(header)));
    return file_.SaveTo(out);
  });
}

StatusOr<std::unique_ptr<RStarTree>> RStarTree::Open(const std::string& path) {
  RStarImageHeader header = {};
  IndexImageFile image;
  RETURN_IF_ERROR(image.Open(path, kImageTag, &header, sizeof(header)));

  Options options;
  options.dim = header.dim;
  options.page_size = header.page_size;
  options.leaf_data_size = header.leaf_data_size;
  options.min_utilization = header.min_utilization;
  options.reinsert_fraction = header.reinsert_fraction;
  if (!PlausibleOptions(options) || header.root_level < 0 ||
      header.root_level > 64) {
    return Status::Corruption("implausible R*-tree header");
  }
  auto tree = std::make_unique<RStarTree>(options);
  RETURN_IF_ERROR(tree->file_.LoadFrom(image.stream()));
  if (!tree->file_.is_live(header.root_id)) {
    return Status::Corruption("R*-tree root page is not live in the image");
  }
  tree->root_id_ = header.root_id;
  tree->root_level_ = header.root_level;
  tree->size_ = header.size;
  tree->maintenance_ = MaintenanceStats{};
  RETURN_IF_ERROR(tree->CheckInvariants());
  return tree;
}

// --------------------------------------------------------------------------
// Page I/O
// --------------------------------------------------------------------------

void RStarTree::SerializeNode(const Node& node, char* buf) const {
  CHECK_LE(node.count(), Capacity(node));
  PageWriter w(buf, options_.page_size);
  w.PutU8(static_cast<uint8_t>(node.level));
  w.PutU8(0);
  w.PutU16(static_cast<uint16_t>(node.count()));
  w.PutU32(0);
  if (node.is_leaf()) {
    for (const LeafEntry& e : node.points) {
      w.PutDoubles(e.point);
      w.PutU32(e.oid);
      w.Skip(options_.leaf_data_size);
    }
  } else {
    for (const NodeEntry& e : node.children) {
      w.PutDoubles(e.rect.lo());
      w.PutDoubles(e.rect.hi());
      w.PutU32(e.child);
    }
  }
}

RStarTree::Node RStarTree::DeserializeNode(const char* buf, PageId id) const {
  PageReader r(buf, options_.page_size);
  Node node;
  node.id = id;
  node.level = r.GetU8();
  r.GetU8();
  const size_t count = r.GetU16();
  r.GetU32();
  const size_t dim = static_cast<size_t>(options_.dim);
  if (node.level == 0) {
    node.points.resize(count);
    for (LeafEntry& e : node.points) {
      e.point.resize(dim);
      r.GetDoubles(e.point);
      e.oid = r.GetU32();
      r.Skip(options_.leaf_data_size);
    }
  } else {
    node.children.resize(count);
    for (NodeEntry& e : node.children) {
      Point lo(dim), hi(dim);
      r.GetDoubles(lo);
      r.GetDoubles(hi);
      e.rect = Rect(std::move(lo), std::move(hi));
      e.child = r.GetU32();
    }
  }
  return node;
}

RStarTree::Node RStarTree::ReadNode(PageId id, int level, IoStatsDelta* io) const {
  std::vector<char> buf(options_.page_size);
  if (pool_ != nullptr) {
    pool_->Read(id, buf.data(), level, io);
  } else {
    file_.Read(id, buf.data(), level, io);
  }
  Node node = DeserializeNode(buf.data(), id);
  DCHECK_EQ(node.level, level);
  return node;
}

RStarTree::Node RStarTree::PeekNode(PageId id) const {
  return DeserializeNode(file_.PeekPage(id), id);
}

void RStarTree::WriteNode(const Node& node) {
  std::vector<char> buf(options_.page_size);
  SerializeNode(node, buf.data());
  if (pool_ != nullptr) pool_->Discard(node.id);  // invalidate stale frame
  file_.Write(node.id, buf.data());  // srlint: allow(R6) frozen-tree write path (no snapshot readers)
}

// --------------------------------------------------------------------------
// Region helpers
// --------------------------------------------------------------------------

Rect RStarTree::EntryRect(const Node& node, size_t i) {
  return node.is_leaf() ? Rect::FromPoint(node.points[i].point)
                        : node.children[i].rect;
}

Rect RStarTree::NodeBoundingRect(const Node& node) const {
  Rect bound = Rect::Empty(options_.dim);
  if (node.is_leaf()) {
    for (const LeafEntry& e : node.points) bound.Expand(e.point);
  } else {
    for (const NodeEntry& e : node.children) bound.Expand(e.rect);
  }
  return bound;
}

// --------------------------------------------------------------------------
// Insertion
// --------------------------------------------------------------------------

Status RStarTree::Insert(PointView point, uint32_t oid) {
  if (static_cast<int>(point.size()) != options_.dim) {
    return Status::InvalidArgument("point dimensionality mismatch");
  }
  reinserted_levels_.clear();
  std::deque<Pending> pending;
  Pending item;
  item.level = 0;
  item.leaf = LeafEntry{Point(point.begin(), point.end()), oid};
  pending.push_back(std::move(item));
  ProcessPending(pending);
  ++size_;
  return Status::OK();
}

void RStarTree::ProcessPending(std::deque<Pending>& pending) {
  while (!pending.empty()) {
    Pending item = std::move(pending.front());
    pending.pop_front();
    InsertPending(item, pending);
  }
}

void RStarTree::InsertPending(const Pending& item,
                              std::deque<Pending>& pending) {
  const Rect entry_rect = item.level == 0 ? Rect::FromPoint(item.leaf.point)
                                          : item.node.rect;
  CHECK_LE(item.level, root_level_);

  std::vector<Node> path;
  std::vector<int> idx;
  Node cur = ReadNode(root_id_, root_level_);
  while (cur.level > item.level) {
    const int i = ChooseSubtree(cur, entry_rect);
    const PageId child = cur.children[i].child;
    const int child_level = cur.level - 1;
    path.push_back(std::move(cur));
    idx.push_back(i);
    cur = ReadNode(child, child_level);
  }
  if (item.level == 0) {
    cur.points.push_back(item.leaf);
  } else {
    cur.children.push_back(item.node);
  }
  path.push_back(std::move(cur));
  ResolvePath(path, idx, pending);
}

int RStarTree::ChooseSubtree(const Node& node, const Rect& entry_rect) const {
  DCHECK(!node.is_leaf());
  const size_t n = node.children.size();
  DCHECK_GT(n, 0u);
  int best = 0;

  if (node.level == 1) {
    // Children are leaves: minimize overlap enlargement, ties broken by
    // area enlargement, then by area.
    double best_overlap = std::numeric_limits<double>::infinity();
    double best_enlarge = std::numeric_limits<double>::infinity();
    double best_area = std::numeric_limits<double>::infinity();
    for (size_t i = 0; i < n; ++i) {
      const Rect& rect = node.children[i].rect;
      const Rect enlarged = Rect::Union(rect, entry_rect);
      double overlap_before = 0.0, overlap_after = 0.0;
      for (size_t j = 0; j < n; ++j) {
        if (j == i) continue;
        overlap_before += rect.OverlapVolume(node.children[j].rect);
        overlap_after += enlarged.OverlapVolume(node.children[j].rect);
      }
      const double overlap_delta = overlap_after - overlap_before;
      const double area = rect.Volume();
      const double enlarge = enlarged.Volume() - area;
      if (overlap_delta < best_overlap ||
          (overlap_delta == best_overlap &&
           (enlarge < best_enlarge ||
            (enlarge == best_enlarge && area < best_area)))) {
        best_overlap = overlap_delta;
        best_enlarge = enlarge;
        best_area = area;
        best = static_cast<int>(i);
      }
    }
    return best;
  }

  // Children are internal nodes: minimize area enlargement, ties by area.
  double best_enlarge = std::numeric_limits<double>::infinity();
  double best_area = std::numeric_limits<double>::infinity();
  for (size_t i = 0; i < n; ++i) {
    const Rect& rect = node.children[i].rect;
    const double area = rect.Volume();
    const double enlarge = Rect::Union(rect, entry_rect).Volume() - area;
    if (enlarge < best_enlarge ||
        (enlarge == best_enlarge && area < best_area)) {
      best_enlarge = enlarge;
      best_area = area;
      best = static_cast<int>(i);
    }
  }
  return best;
}

void RStarTree::ResolvePath(std::vector<Node>& path, std::vector<int>& idx,
                            std::deque<Pending>& pending) {
  int i = static_cast<int>(path.size()) - 1;
  while (true) {
    Node& n = path[i];
    if (n.count() <= Capacity(n)) break;
    const bool is_root = (i == 0);
    if (!is_root && reinserted_levels_.insert(n.level).second) {
      std::vector<Pending> removed = RemoveForReinsert(n);
      WritePathRefreshingRects(path, idx, i);
      for (Pending& p : removed) pending.push_back(std::move(p));
      return;
    }
    Node right = SplitNode(n);
    if (is_root) {
      GrowRoot(n, right);
      return;
    }
    WriteNode(right);
    Node& parent = path[i - 1];
    parent.children[idx[i - 1]].rect = NodeBoundingRect(n);
    parent.children.push_back(NodeEntry{NodeBoundingRect(right), right.id});
    WriteNode(n);
    --i;
  }
  // Nodes deeper than `i` (if any) were written by the split branch above;
  // from `i` upward the ancestors still need their rects grown/refreshed.
  WritePathRefreshingRects(path, idx, i);
}

void RStarTree::WritePathRefreshingRects(std::vector<Node>& path,
                                         const std::vector<int>& idx,
                                         int from) {
  WriteNode(path[from]);
  for (int j = from - 1; j >= 0; --j) {
    path[j].children[idx[j]].rect = NodeBoundingRect(path[j + 1]);
    WriteNode(path[j]);
  }
}

std::vector<RStarTree::Pending> RStarTree::RemoveForReinsert(Node& node) {
  ++maintenance_.reinsertions;
  const size_t total = node.count();
  size_t evict = static_cast<size_t>(
      std::lround(options_.reinsert_fraction * static_cast<double>(total)));
  evict = std::clamp<size_t>(evict, 1, total - MinEntries(node));

  const Point center = NodeBoundingRect(node).Center();
  std::vector<std::pair<double, size_t>> by_distance(total);
  for (size_t i = 0; i < total; ++i) {
    by_distance[i] = {
        GetDistanceKernel().SquaredL2(EntryRect(node, i).Center(), center), i};
  }
  // Farthest entries are evicted; reinsertion happens closest-first ("close
  // reinsert"), which the R* authors found best.
  std::sort(by_distance.begin(), by_distance.end(),
            [](const auto& a, const auto& b) { return a.first > b.first; });

  std::vector<size_t> evicted;
  for (size_t i = 0; i < evict; ++i) evicted.push_back(by_distance[i].second);
  std::vector<Pending> removed(evict);
  for (size_t i = 0; i < evict; ++i) {
    Pending& p = removed[evict - 1 - i];  // reverse: closest first
    p.level = node.level;
    if (node.is_leaf()) {
      p.leaf = node.points[evicted[i]];
    } else {
      p.node = node.children[evicted[i]];
    }
  }
  std::sort(evicted.begin(), evicted.end(), std::greater<size_t>());
  for (size_t pos : evicted) {
    if (node.is_leaf()) {
      node.points.erase(node.points.begin() + pos);
    } else {
      node.children.erase(node.children.begin() + pos);
    }
  }
  return removed;
}

RStarTree::Node RStarTree::SplitNode(Node& node) {
  ++maintenance_.splits;
  const size_t total = node.count();
  const size_t m = MinEntries(node);
  CHECK_GE(total, 2 * m);

  std::vector<Rect> rects(total);
  for (size_t i = 0; i < total; ++i) rects[i] = EntryRect(node, i);

  const size_t num_dist = total - 2 * m + 1;

  // Phase 1 (ChooseSplitAxis): pick the axis minimizing the summed margins
  // over all distributions of both sortings (by lower and by upper bound).
  // Phase 2 (ChooseSplitIndex): on that axis, pick the distribution with
  // minimal overlap, ties by minimal total area.
  auto evaluate_axis = [&](int axis, bool by_upper,
                           std::vector<size_t>& order) {
    order.resize(total);
    std::iota(order.begin(), order.end(), 0);
    std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
      const double ka = by_upper ? rects[a].hi()[axis] : rects[a].lo()[axis];
      const double kb = by_upper ? rects[b].hi()[axis] : rects[b].lo()[axis];
      return ka < kb;
    });
  };

  auto group_bounds = [&](const std::vector<size_t>& order) {
    // prefix[i] = bound of order[0..i); suffix[i] = bound of order[i..).
    std::vector<Rect> prefix(total + 1, Rect::Empty(options_.dim));
    std::vector<Rect> suffix(total + 1, Rect::Empty(options_.dim));
    for (size_t i = 0; i < total; ++i) {
      prefix[i + 1] = prefix[i];
      prefix[i + 1].Expand(rects[order[i]]);
    }
    for (size_t i = total; i-- > 0;) {
      suffix[i] = suffix[i + 1];
      suffix[i].Expand(rects[order[i]]);
    }
    return std::make_pair(std::move(prefix), std::move(suffix));
  };

  int best_axis = 0;
  double best_margin_sum = std::numeric_limits<double>::infinity();
  for (int axis = 0; axis < options_.dim; ++axis) {
    double margin_sum = 0.0;
    for (const bool by_upper : {false, true}) {
      std::vector<size_t> order;
      evaluate_axis(axis, by_upper, order);
      auto [prefix, suffix] = group_bounds(order);
      for (size_t k = 0; k < num_dist; ++k) {
        const size_t split = m + k;
        margin_sum += prefix[split].Margin() + suffix[split].Margin();
      }
    }
    if (margin_sum < best_margin_sum) {
      best_margin_sum = margin_sum;
      best_axis = axis;
    }
  }

  std::vector<size_t> best_order;
  size_t best_split = m;
  double best_overlap = std::numeric_limits<double>::infinity();
  double best_area = std::numeric_limits<double>::infinity();
  for (const bool by_upper : {false, true}) {
    std::vector<size_t> order;
    evaluate_axis(best_axis, by_upper, order);
    auto [prefix, suffix] = group_bounds(order);
    for (size_t k = 0; k < num_dist; ++k) {
      const size_t split = m + k;
      const double overlap = prefix[split].OverlapVolume(suffix[split]);
      const double area = prefix[split].Volume() + suffix[split].Volume();
      if (overlap < best_overlap ||
          (overlap == best_overlap && area < best_area)) {
        best_overlap = overlap;
        best_area = area;
        best_order = order;
        best_split = split;
      }
    }
  }

  Node right;
  right.id = file_.Allocate();
  right.level = node.level;
  if (node.is_leaf()) {
    std::vector<LeafEntry> left_points, right_points;
    for (size_t i = 0; i < total; ++i) {
      auto& dst = (i < best_split) ? left_points : right_points;
      dst.push_back(std::move(node.points[best_order[i]]));
    }
    node.points = std::move(left_points);
    right.points = std::move(right_points);
  } else {
    std::vector<NodeEntry> left_children, right_children;
    for (size_t i = 0; i < total; ++i) {
      auto& dst = (i < best_split) ? left_children : right_children;
      dst.push_back(std::move(node.children[best_order[i]]));
    }
    node.children = std::move(left_children);
    right.children = std::move(right_children);
  }
  return right;
}

void RStarTree::GrowRoot(Node& left, Node& right) {
  WriteNode(left);
  WriteNode(right);
  Node root;
  root.id = file_.Allocate();
  root.level = left.level + 1;
  root.children.push_back(NodeEntry{NodeBoundingRect(left), left.id});
  root.children.push_back(NodeEntry{NodeBoundingRect(right), right.id});
  WriteNode(root);
  root_id_ = root.id;
  root_level_ = root.level;
}

// --------------------------------------------------------------------------
// Deletion
// --------------------------------------------------------------------------

Status RStarTree::Delete(PointView point, uint32_t oid) {
  if (static_cast<int>(point.size()) != options_.dim) {
    return Status::InvalidArgument("point dimensionality mismatch");
  }
  std::vector<Node> path;
  std::vector<int> idx;
  Node root = ReadNode(root_id_, root_level_);
  if (!FindLeafPath(root, point, oid, path, idx)) {
    return Status::NotFound("point not present");
  }
  Node& leaf = path.back();
  bool erased = false;
  for (size_t i = 0; i < leaf.points.size(); ++i) {
    if (leaf.points[i].oid == oid &&
        std::equal(point.begin(), point.end(), leaf.points[i].point.begin(),
                   leaf.points[i].point.end())) {
      leaf.points.erase(leaf.points.begin() + i);
      erased = true;
      break;
    }
  }
  CHECK(erased);
  CondenseTree(path, idx);
  ShrinkRoot();
  --size_;
  return Status::OK();
}

bool RStarTree::FindLeafPath(const Node& node, PointView point, uint32_t oid,
                             std::vector<Node>& path, std::vector<int>& idx) {
  path.push_back(node);
  if (node.is_leaf()) {
    for (const LeafEntry& e : node.points) {
      if (e.oid == oid && std::equal(point.begin(), point.end(),
                                     e.point.begin(), e.point.end())) {
        return true;
      }
    }
    path.pop_back();
    return false;
  }
  for (size_t i = 0; i < node.children.size(); ++i) {
    if (!node.children[i].rect.Contains(point)) continue;
    idx.push_back(static_cast<int>(i));
    Node child = ReadNode(node.children[i].child, node.level - 1);
    if (FindLeafPath(child, point, oid, path, idx)) return true;
    idx.pop_back();
  }
  path.pop_back();
  return false;
}

void RStarTree::CondenseTree(std::vector<Node>& path, std::vector<int>& idx) {
  std::deque<Pending> orphans;
  for (int i = static_cast<int>(path.size()) - 1; i >= 1; --i) {
    Node& n = path[i];
    Node& parent = path[i - 1];
    if (n.count() < MinEntries(n)) {
      // Dissolve the node; queue its entries for reinsertion at their level.
      if (n.is_leaf()) {
        for (LeafEntry& e : n.points) {
          Pending p;
          p.level = 0;
          p.leaf = std::move(e);
          orphans.push_back(std::move(p));
        }
      } else {
        for (NodeEntry& e : n.children) {
          Pending p;
          p.level = n.level;
          p.node = e;
          orphans.push_back(std::move(p));
        }
      }
      file_.Free(n.id);
      parent.children.erase(parent.children.begin() + idx[i - 1]);
    } else {
      WriteNode(n);
      parent.children[idx[i - 1]].rect = NodeBoundingRect(n);
    }
  }
  WriteNode(path[0]);

  reinserted_levels_.clear();
  ProcessPending(orphans);
}

void RStarTree::ShrinkRoot() {
  for (;;) {
    Node root = PeekNode(root_id_);
    if (root.is_leaf()) return;
    if (root.children.empty()) {
      // Tree is empty; restart with a fresh leaf root.
      file_.Free(root.id);
      Node leaf;
      leaf.id = file_.Allocate();
      leaf.level = 0;
      WriteNode(leaf);
      root_id_ = leaf.id;
      root_level_ = 0;
      return;
    }
    if (root.children.size() > 1) return;
    const PageId child = root.children[0].child;
    file_.Free(root.id);
    root_id_ = child;
    --root_level_;
  }
}

// --------------------------------------------------------------------------
// Search
// --------------------------------------------------------------------------

std::vector<Neighbor> RStarTree::KnnDfsImpl(PointView query, int k,
                                     IoStatsDelta* io) const {
  CHECK_EQ(static_cast<int>(query.size()), options_.dim);
  KnnCandidates candidates(k);
  KernelScratch scratch;
  if (size_ > 0) {
    SearchKnn(root_id_, root_level_, query, candidates, scratch, io);
  }
  return candidates.TakeSorted();
}

void RStarTree::SearchKnn(PageId id, int level, PointView query,
                   KnnCandidates& cand, KernelScratch& scratch,
                   IoStatsDelta* io) const {
  Node node = ReadNode(id, level, io);
  if (node.is_leaf()) {
    // SoA leaf scan with partial-distance pruning against the bound at
    // block start (conservative: the bound only shrinks as we offer).
    const double bound_sq = cand.PruneDistanceSquared();
    const std::vector<double>& d2 = BatchSquaredL2(
        scratch, query, node.points.size(),
        [&](size_t i) { return PointView(node.points[i].point); }, bound_sq);
    for (size_t i = 0; i < node.points.size(); ++i) {
      if (d2[i] <= bound_sq) cand.OfferSquared(d2[i], node.points[i].oid);
    }
    return;
  }
  const std::vector<double>& m2 = BatchRectMinDistSq(
      scratch, query, node.children.size(),
      [&](size_t i) -> const Rect& { return node.children[i].rect; });
  // Copy out of the scratch before recursing — the callee reuses it.
  std::vector<std::pair<double, size_t>> order(node.children.size());
  for (size_t i = 0; i < node.children.size(); ++i) order[i] = {m2[i], i};
  std::sort(order.begin(), order.end());
  for (const auto& [mindist_sq, i] : order) {
    if (mindist_sq > cand.PruneDistanceSquared()) break;
    SearchKnn(node.children[i].child, level - 1, query, cand, scratch, io);
  }
}


std::vector<Neighbor> RStarTree::KnnBestFirstImpl(PointView query, int k,
                                           IoStatsDelta* io) const {
  CHECK_EQ(static_cast<int>(query.size()), options_.dim);
  KnnCandidates candidates(k);
  if (size_ == 0) return candidates.TakeSorted();

  // Global best-first traversal: always expand the pending subtree with the
  // smallest MINDIST. Stops once that bound exceeds the k-th candidate.
  struct Pending {
    double mindist_sq;
    PageId id;
    int level;
    bool operator>(const Pending& other) const {
      return mindist_sq > other.mindist_sq;
    }
  };
  std::priority_queue<Pending, std::vector<Pending>, std::greater<Pending>>
      frontier;
  KernelScratch scratch;
  frontier.push(Pending{0.0, root_id_, root_level_});
  while (!frontier.empty()) {
    const Pending next = frontier.top();
    frontier.pop();
    if (next.mindist_sq > candidates.PruneDistanceSquared()) break;
    Node node = ReadNode(next.id, next.level, io);
    if (node.is_leaf()) {
      const double bound_sq = candidates.PruneDistanceSquared();
      const std::vector<double>& d2 = BatchSquaredL2(
          scratch, query, node.points.size(),
          [&](size_t i) { return PointView(node.points[i].point); }, bound_sq);
      for (size_t i = 0; i < node.points.size(); ++i) {
        if (d2[i] <= bound_sq) {
          candidates.OfferSquared(d2[i], node.points[i].oid);
        }
      }
      continue;
    }
    const std::vector<double>& m2 = BatchRectMinDistSq(
        scratch, query, node.children.size(),
        [&](size_t i) -> const Rect& { return node.children[i].rect; });
    for (size_t i = 0; i < node.children.size(); ++i) {
      if (m2[i] <= candidates.PruneDistanceSquared()) {
        frontier.push(Pending{m2[i], node.children[i].child, node.level - 1});
      }
    }
  }
  return candidates.TakeSorted();
}

std::vector<Neighbor> RStarTree::RangeImpl(PointView query, double radius,
                                    IoStatsDelta* io) const {
  CHECK_EQ(static_cast<int>(query.size()), options_.dim);
  std::vector<Neighbor> result;
  KernelScratch scratch;
  if (size_ > 0) {
    SearchRange(root_id_, root_level_, query, radius, result, scratch, io);
  }
  std::sort(result.begin(), result.end());  // canonical (distance, oid)
  return result;
}

void RStarTree::SearchRange(PageId id, int level, PointView query,
                     double radius, std::vector<Neighbor>& out,
                     KernelScratch& scratch, IoStatsDelta* io) const {
  Node node = ReadNode(id, level, io);
  const double radius_sq = radius * radius;
  if (node.is_leaf()) {
    const std::vector<double>& d2 = BatchSquaredL2(
        scratch, query, node.points.size(),
        [&](size_t i) { return PointView(node.points[i].point); }, radius_sq);
    for (size_t i = 0; i < node.points.size(); ++i) {
      if (d2[i] <= radius_sq) {
        out.push_back(Neighbor{std::sqrt(d2[i]), node.points[i].oid});
      }
    }
    return;
  }
  const std::vector<double>& m2 = BatchRectMinDistSq(
      scratch, query, node.children.size(),
      [&](size_t i) -> const Rect& { return node.children[i].rect; });
  // Copy out of the scratch before recursing — the callee reuses it.
  std::vector<PageId> hits;
  for (size_t i = 0; i < node.children.size(); ++i) {
    if (m2[i] <= radius_sq) hits.push_back(node.children[i].child);
  }
  for (const PageId child : hits) {
    SearchRange(child, level - 1, query, radius, out, scratch, io);
  }
}

// --------------------------------------------------------------------------
// Stats & validation
// --------------------------------------------------------------------------

TreeStats RStarTree::GetTreeStats() const {
  TreeStats stats;
  stats.height = root_level_ + 1;
  CollectStats(PeekNode(root_id_), stats);
  return stats;
}

void RStarTree::CollectStats(const Node& node, TreeStats& stats) const {
  if (node.is_leaf()) {
    ++stats.leaf_count;
    stats.entry_count += node.points.size();
    return;
  }
  ++stats.node_count;
  for (const NodeEntry& e : node.children) {
    CollectStats(PeekNode(e.child), stats);
  }
}

RegionSummary RStarTree::LeafRegionSummary() const {
  RegionStatsCollector collector;
  CollectRegions(PeekNode(root_id_), collector);
  return collector.Finish();
}

void RStarTree::CollectRegions(const Node& node,
                               RegionStatsCollector& collector) const {
  if (node.is_leaf()) {
    collector.CountLeaf();
    collector.AddRect(NodeBoundingRect(node));
    return;
  }
  for (const NodeEntry& e : node.children) {
    CollectRegions(PeekNode(e.child), collector);
  }
}

Status RStarTree::CheckInvariants() const { return debug::AuditIndex(*this); }

void RStarTree::VisitNodes(const NodeVisitor& visitor) const {
  std::vector<int> path;
  VisitSubtree(PeekNode(root_id_), path, visitor);
}

void RStarTree::VisitSubtree(const Node& node, std::vector<int>& path,
                             const NodeVisitor& visitor) const {
  NodeView view;
  view.level = node.level;
  view.capacity = Capacity(node);
  view.min_entries = MinEntries(node);
  view.entries.reserve(node.children.size());
  for (const NodeEntry& e : node.children) {
    view.entries.push_back(EntryView{&e.rect, /*sphere=*/nullptr,
                                     /*weight=*/0, /*has_weight=*/false});
  }
  view.points.reserve(node.points.size());
  for (const LeafEntry& e : node.points) view.points.push_back(e.point);
  visitor(path, view);
  for (size_t i = 0; i < node.children.size(); ++i) {
    path.push_back(static_cast<int>(i));
    VisitSubtree(PeekNode(node.children[i].child), path, visitor);
    path.pop_back();
  }
}

AuditSpec RStarTree::GetAuditSpec() const {
  AuditSpec spec;
  spec.dim = options_.dim;
  spec.rect_semantics = RectSemantics::kExactMbr;
  spec.internal_root_min2 = true;
  return spec;
}

}  // namespace srtree
