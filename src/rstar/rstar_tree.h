// R*-tree (Beckmann, Kriegel, Schneider, Seeger — SIGMOD 1990), used as a
// point access method exactly as in Section 2.2 of the SR-tree paper.
//
// Region shape: minimum bounding rectangles. Insertion uses the R*
// ChooseSubtree rule (least overlap enlargement at the leaf level, least
// area enlargement above), the margin-driven topological split, and forced
// reinsertion of 30% of the entries the first time a level overflows during
// an insertion.

#ifndef SRTREE_RSTAR_RSTAR_TREE_H_
#define SRTREE_RSTAR_RSTAR_TREE_H_

#include <deque>
#include <set>
#include <vector>

#include "src/geometry/kernel.h"
#include "src/geometry/rect.h"
#include "src/index/knn.h"
#include "src/index/point_index.h"
#include "src/storage/buffer_pool.h"
#include "src/storage/page_file.h"

namespace srtree {

class RStarTree : public PointIndex {
 public:
  struct Options {
    int dim = 2;
    size_t page_size = kDefaultPageSize;
    // Attribute payload stored with each point (the paper uses 512 bytes).
    size_t leaf_data_size = 512;
    // Minimum node fill as a fraction of capacity (paper: 40%).
    double min_utilization = 0.4;
    // Fraction of entries evicted by forced reinsertion (paper: 30%).
    double reinsert_fraction = 0.3;
  };

  explicit RStarTree(const Options& options);

  // Type tag embedded in the v2 index-image container.
  static constexpr char kImageTag[] = "rstar";

  // Checksummed atomic image persistence (see PointIndex::Save).
  Status Save(const std::string& path) const override;
  static StatusOr<std::unique_ptr<RStarTree>> Open(const std::string& path);

  int dim() const override { return options_.dim; }
  size_t size() const override { return size_; }
  std::string name() const override { return "R*-tree"; }

  Status Insert(PointView point, uint32_t oid) override;
  Status Delete(PointView point, uint32_t oid) override;

  TreeStats GetTreeStats() const override;
  Status CheckInvariants() const override;
  void VisitNodes(const NodeVisitor& visitor) const override;
  AuditSpec GetAuditSpec() const override;
  RegionSummary LeafRegionSummary() const override;

  MaintenanceStats GetMaintenanceStats() const override {
    return maintenance_;
  }

  // Forwarders to the page file's counters. io_stats() is the deprecated
  // unlocked reference (single-threaded benches only); the reset is locked
  // but only meaningful on a quiesced index — see PointIndex::ResetIoStats
  // for the exclusion contract the concurrent fuzzer asserts.
  const IoStats& io_stats() const override { return file_.stats(); }
  void ResetIoStats() override { file_.ResetStats(); }
  IoStats GetIoStats() const override { return file_.GetIoStats(); }

  void SimulateBufferPool(size_t capacity) override {
    file_.SimulateCache(capacity);
  }
  void UseBufferPool(size_t capacity) override {
    pool_ = capacity > 0 ? std::make_unique<BufferPool>(&file_, capacity)
                         : nullptr;
  }

  // Fanout limits implied by the page layout (Table 1 of the paper).
  size_t leaf_capacity() const override { return leaf_cap_; }
  size_t node_capacity() const override { return node_cap_; }
  int height() const { return root_level_ + 1; }

 protected:
  std::vector<Neighbor> KnnDfsImpl(PointView query, int k,
                                   IoStatsDelta* io) const override;
  std::vector<Neighbor> KnnBestFirstImpl(PointView query, int k,
                                         IoStatsDelta* io) const override;
  std::vector<Neighbor> RangeImpl(PointView query, double radius,
                                  IoStatsDelta* io) const override;

 private:
  struct LeafEntry {
    Point point;
    uint32_t oid;
  };

  struct NodeEntry {
    Rect rect;
    PageId child;
  };

  struct Node {
    PageId id = kInvalidPageId;
    int level = 0;  // 0 = leaf
    std::vector<NodeEntry> children;  // level > 0
    std::vector<LeafEntry> points;    // level == 0

    bool is_leaf() const { return level == 0; }
    size_t count() const { return is_leaf() ? points.size() : children.size(); }
  };

  // An entry awaiting (re)insertion at a given level.
  struct Pending {
    int level;
    LeafEntry leaf;   // valid when level == 0
    NodeEntry node;   // valid when level > 0
  };

  // --- page I/O ---
  Node ReadNode(PageId id, int level,
                IoStatsDelta* io = nullptr) const;
  Node PeekNode(PageId id) const;  // no I/O accounting
  void WriteNode(const Node& node);
  void SerializeNode(const Node& node, char* buf) const;
  Node DeserializeNode(const char* buf, PageId id) const;

  size_t Capacity(const Node& node) const {
    return node.is_leaf() ? leaf_cap_ : node_cap_;
  }
  size_t MinEntries(const Node& node) const {
    return node.is_leaf() ? leaf_min_ : node_min_;
  }

  // --- region helpers ---
  static Rect EntryRect(const Node& node, size_t i);
  Rect NodeBoundingRect(const Node& node) const;

  // --- insertion machinery ---
  void ProcessPending(std::deque<Pending>& pending);
  void InsertPending(const Pending& item, std::deque<Pending>& pending);
  int ChooseSubtree(const Node& node, const Rect& entry_rect) const;
  void ResolvePath(std::vector<Node>& path, std::vector<int>& idx,
                   std::deque<Pending>& pending);
  void WritePathRefreshingRects(std::vector<Node>& path,
                                const std::vector<int>& idx, int from);
  std::vector<Pending> RemoveForReinsert(Node& node);
  Node SplitNode(Node& node);
  void GrowRoot(Node& left, Node& right);

  // --- deletion machinery ---
  bool FindLeafPath(const Node& node, PointView point, uint32_t oid,
                    std::vector<Node>& path, std::vector<int>& idx);
  void CondenseTree(std::vector<Node>& path, std::vector<int>& idx);
  void ShrinkRoot();

  // --- search ---
  void SearchKnn(PageId id, int level, PointView query,
                 KnnCandidates& cand, KernelScratch& scratch,
                 IoStatsDelta* io) const;
  void SearchRange(PageId id, int level, PointView query,
                   double radius, std::vector<Neighbor>& out,
                   KernelScratch& scratch, IoStatsDelta* io) const;

  // --- validation / stats ---
  void VisitSubtree(const Node& node, std::vector<int>& path,
                    const NodeVisitor& visitor) const;
  void CollectStats(const Node& node, TreeStats& stats) const;
  void CollectRegions(const Node& node, RegionStatsCollector& collector) const;

  Options options_;
  size_t leaf_cap_;
  size_t node_cap_;
  size_t leaf_min_;
  size_t node_min_;

  mutable PageFile file_;
  // Optional warm cache on the query path (UseBufferPool); WriteNode
  // invalidates its frames so single-writer mutation stays coherent.
  std::unique_ptr<BufferPool> pool_;
  PageId root_id_;
  int root_level_ = 0;
  size_t size_ = 0;
  MaintenanceStats maintenance_;

  // Levels that already used forced reinsertion during the current
  // top-level Insert/Delete (the R* "first overflow per level" rule).
  std::set<int> reinserted_levels_;
};

}  // namespace srtree

#endif  // SRTREE_RSTAR_RSTAR_TREE_H_
