// Annotated mutex primitives for the Clang Thread Safety Analysis.
//
// std::mutex carries no capability attributes, so locking it is invisible
// to -Wthread-safety. Mutex wraps it as a CAPABILITY, MutexLock is the
// scoped holder, and CondVar pairs with Mutex for condition waits. All
// mutex-protected state in src/ uses these types; taking a naked
// std::lock_guard / std::unique_lock on first-party state is a contract
// violation that tools/srlint.py (rule R2) rejects, because it would
// silently opt the critical section out of the analysis.
//
// The wrappers compile to exactly the std primitives on every compiler;
// only the attributes differ under clang.

#ifndef SRTREE_BASE_MUTEX_H_
#define SRTREE_BASE_MUTEX_H_

#include <condition_variable>
#include <mutex>

#include "src/base/thread_annotations.h"

namespace srtree {

class CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() ACQUIRE() { mu_.lock(); }
  void Unlock() RELEASE() { mu_.unlock(); }
  bool TryLock() TRY_ACQUIRE(true) { return mu_.try_lock(); }

  // BasicLockable spelling so std::condition_variable_any can suspend on a
  // Mutex. Only CondVar::Wait goes through these; everything else uses
  // MutexLock (srlint R2 keeps it that way).
  void lock() ACQUIRE() { mu_.lock(); }
  void unlock() RELEASE() { mu_.unlock(); }

 private:
  std::mutex mu_;
};

// RAII lock holder; the scoped-capability shape -Wthread-safety verifies.
class SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) ACQUIRE(mu) : mu_(mu) { mu_.Lock(); }
  ~MutexLock() RELEASE() { mu_.Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

// Condition variable over Mutex. Waits must run in an explicit
//   while (!condition) cv.Wait(mu);
// loop under a MutexLock: the analysis then sees the condition being read
// with the mutex held, which a predicate lambda would hide from it.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  // Atomically releases `mu`, sleeps, and reacquires it before returning.
  // The caller must hold `mu`; as with any condition wait, recheck the
  // predicate after waking.
  void Wait(Mutex& mu) REQUIRES(mu) { cv_.wait(mu); }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable_any cv_;
};

}  // namespace srtree

#endif  // SRTREE_BASE_MUTEX_H_
