// Clang Thread Safety Analysis macros (Hutchins et al., SCAM 2014).
//
// These wrap the `thread_safety` attribute family so lock discipline in the
// concurrent read path (src/storage/, src/engine/) is checked at compile
// time: every mutex-protected member declares its mutex with GUARDED_BY,
// every locking function declares what it acquires/releases, and a build
// with -Wthread-safety (CMake option SRTREE_THREAD_SAFETY, clang only)
// proves the discipline on every path rather than on the one schedule a
// TSan run happened to execute.
//
// On compilers without the attributes (GCC) every macro expands to nothing,
// so annotated code builds everywhere.
//
// Placement rules (the GNU attribute grammar both compilers parse):
//   * member annotations follow the declarator:  int x GUARDED_BY(mu_);
//   * function annotations follow the parameter list and any cv-qualifier:
//       void Lock() ACQUIRE(mu_);
//       uint64_t reads() const REQUIRES(mu_);
//   * on virtual overrides they must come AFTER the virt-specifier:
//       void ResetIoStats() override EXCLUDES(stats_mu_);

#ifndef SRTREE_BASE_THREAD_ANNOTATIONS_H_
#define SRTREE_BASE_THREAD_ANNOTATIONS_H_

#if defined(__clang__) && !defined(SRTREE_NO_THREAD_SAFETY_ANALYSIS)
#define SRTREE_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define SRTREE_THREAD_ANNOTATION(x)  // no-op outside clang
#endif

// Declares a class to be a capability (e.g. CAPABILITY("mutex")). Holding
// an instance is what GUARDED_BY / REQUIRES statements refer to.
#define CAPABILITY(x) SRTREE_THREAD_ANNOTATION(capability(x))

// Declares an RAII class whose constructor acquires a capability and whose
// destructor releases it (std::lock_guard-style).
#define SCOPED_CAPABILITY SRTREE_THREAD_ANNOTATION(scoped_lockable)

// Data members: reads/writes require holding the given capability
// (exclusively for writes). PT_GUARDED_BY is the pointee variant.
#define GUARDED_BY(x) SRTREE_THREAD_ANNOTATION(guarded_by(x))
#define PT_GUARDED_BY(x) SRTREE_THREAD_ANNOTATION(pt_guarded_by(x))

// Function preconditions: the caller must hold the capability (REQUIRES),
// or must NOT hold it (EXCLUDES — detects self-deadlock on non-reentrant
// mutexes).
#define REQUIRES(...) \
  SRTREE_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define REQUIRES_SHARED(...) \
  SRTREE_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))
#define EXCLUDES(...) SRTREE_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

// Function effects: the function acquires/releases the capability.
#define ACQUIRE(...) \
  SRTREE_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define ACQUIRE_SHARED(...) \
  SRTREE_THREAD_ANNOTATION(acquire_shared_capability(__VA_ARGS__))
#define RELEASE(...) \
  SRTREE_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define RELEASE_SHARED(...) \
  SRTREE_THREAD_ANNOTATION(release_shared_capability(__VA_ARGS__))
#define TRY_ACQUIRE(...) \
  SRTREE_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))

// Runtime assertion that the capability is held (e.g. a debug check); the
// analysis treats it as proof of possession from that point on.
#define ASSERT_CAPABILITY(x) \
  SRTREE_THREAD_ANNOTATION(assert_capability(x))

// Declares that the function returns a reference to the given capability
// (for accessors handing out a mutex).
#define RETURN_CAPABILITY(x) SRTREE_THREAD_ANNOTATION(lock_returned(x))

// Escape hatch for functions that intentionally break the discipline, e.g.
// deprecated unsynchronized accessors kept for the single-threaded paper
// benches. Every use carries a comment naming the external contract that
// makes it sound.
#define NO_THREAD_SAFETY_ANALYSIS \
  SRTREE_THREAD_ANNOTATION(no_thread_safety_analysis)

// Structured annotation (checked by tools/srcheck.py rule C8, invisible to
// the compiler) for a mutable member of a mutex-owning class whose safety
// rests on a contract the analysis cannot see: single-writer working state
// serialized by an external lock, set-once-in-constructor fields, swap
// operations documented as excluded from concurrent use. The argument is a
// mandatory string literal naming that contract — C8 rejects an empty one.
// This is an annotation, not a waiver: it asserts a real invariant at the
// declaration, where reviewers can hold it against the class comment.
#define UNGUARDED_OK(...)

#endif  // SRTREE_BASE_THREAD_ANNOTATIONS_H_
