#include "src/benchlib/options.h"

namespace srtree {

void AddBenchFlags(FlagParser& parser) {
  parser.AddBool("full", false, "run at the paper's full scale");
  parser.AddInt("dim", 16, "dimensionality of the feature vectors");
  parser.AddInt("k", 21, "number of nearest neighbors per query");
  parser.AddInt("queries", 0, "query trials (0 = default for the scale)");
  parser.AddInt("seed", 1, "base random seed");
  parser.AddString("sizes", "", "comma-separated dataset sizes override");
  parser.AddString("json", "",
                   "also write the result tables as JSON to this path");
}

BenchOptions GetBenchOptions(const FlagParser& parser) {
  BenchOptions options;
  options.full = parser.GetBool("full");
  options.dim = static_cast<int>(parser.GetInt("dim"));
  options.k = static_cast<int>(parser.GetInt("k"));
  options.num_queries = static_cast<size_t>(parser.GetInt("queries"));
  options.seed = static_cast<uint64_t>(parser.GetInt("seed"));
  options.sizes = parser.GetIntList("sizes");
  options.json_path = parser.GetString("json");
  return options;
}

std::vector<int64_t> UniformSizeLadder(const BenchOptions& options) {
  if (!options.sizes.empty()) return options.sizes;
  if (options.full) {
    return {10000, 20000, 40000, 60000, 80000, 100000};
  }
  return {2000, 4000, 8000, 12000, 16000, 20000};
}

std::vector<int64_t> RealSizeLadder(const BenchOptions& options) {
  if (!options.sizes.empty()) return options.sizes;
  if (options.full) {
    return {2000, 4000, 8000, 12000, 16000, 20000};
  }
  return {1000, 2000, 4000, 6000, 8000, 10000};
}

size_t QueryCount(const BenchOptions& options) {
  if (options.num_queries > 0) return options.num_queries;
  return options.full ? 1000 : 100;
}

}  // namespace srtree
