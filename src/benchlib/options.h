// Common command-line options shared by the bench binaries.
//
// Defaults are scaled down so the full suite completes in minutes on a
// laptop; `--full` switches every experiment to the paper's sizes
// (Section 3.1 / Section 5).

#ifndef SRTREE_BENCHLIB_OPTIONS_H_
#define SRTREE_BENCHLIB_OPTIONS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/flags.h"

namespace srtree {

struct BenchOptions {
  bool full = false;
  int dim = 16;
  int k = 21;            // paper: nearest 21 points
  size_t num_queries = 0;  // 0 = pick by `full` (1000 paper / 100 reduced)
  uint64_t seed = 1;
  std::vector<int64_t> sizes;  // dataset sizes; empty = experiment default
  // When non-empty, benches additionally write their tables as a JSON
  // report to this path (atomically; see benchlib/report.h).
  std::string json_path;
};

// Registers the shared flags on `parser`.
void AddBenchFlags(FlagParser& parser);

// Extracts the shared options after Parse().
BenchOptions GetBenchOptions(const FlagParser& parser);

// Dataset size ladders. Paper scale: 10k..100k uniform, 2k..20k real;
// reduced scale keeps the same shape at a fifth of the size.
std::vector<int64_t> UniformSizeLadder(const BenchOptions& options);
std::vector<int64_t> RealSizeLadder(const BenchOptions& options);

// Number of query trials (paper: 1000).
size_t QueryCount(const BenchOptions& options);

}  // namespace srtree

#endif  // SRTREE_BENCHLIB_OPTIONS_H_
