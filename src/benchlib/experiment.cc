#include "src/benchlib/experiment.h"

#include "src/common/check.h"
#include "src/common/timer.h"

namespace srtree {

BuildMetrics BuildIndexFromDataset(PointIndex& index, const Dataset& data) {
  // Snapshot deltas instead of the legacy reset-then-peek pattern: the
  // build cost is the movement of the global counters across BulkLoad, and
  // nothing here zeroes state another measurement might be accumulating.
  const IoStats before = index.GetIoStats();
  CpuTimer timer;
  const Status status = index.BulkLoad(data.ToPoints(), data.SequentialOids());
  CHECK(status.ok());
  BuildMetrics metrics;
  metrics.total_cpu_seconds = timer.ElapsedSeconds();
  metrics.disk_accesses = index.GetIoStats().accesses() - before.accesses();
  if (data.size() > 0) {
    metrics.cpu_ms_per_insert =
        metrics.total_cpu_seconds * 1e3 / static_cast<double>(data.size());
    metrics.accesses_per_insert = static_cast<double>(metrics.disk_accesses) /
                                  static_cast<double>(data.size());
  }
  return metrics;
}

QueryMetrics RunKnnWorkload(PointIndex& index,
                            const std::vector<Point>& queries, int k) {
  QueryMetrics metrics;
  metrics.num_queries = queries.size();
  if (queries.empty()) return metrics;

  // Per-query deltas add up to exactly what the old reset-then-peek pattern
  // measured, without mutating the index's global counters.
  IoStatsDelta io;
  CpuTimer timer;
  for (const Point& q : queries) {
    const QueryResult result = index.Search(q, QuerySpec::Knn(k));
    CHECK(result.status.ok());
    CHECK(!result.neighbors.empty());
    io.MergeFrom(result.io);
  }
  const double total_cpu_ms = timer.ElapsedMillis();
  const double n = static_cast<double>(queries.size());
  metrics.cpu_ms = total_cpu_ms / n;
  metrics.disk_reads = static_cast<double>(io.reads) / n;
  metrics.leaf_reads = static_cast<double>(io.leaf_reads) / n;
  metrics.nonleaf_reads = static_cast<double>(io.nonleaf_reads) / n;
  return metrics;
}

}  // namespace srtree
