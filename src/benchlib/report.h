// ASCII table / series output for the bench binaries. Every experiment
// prints the same rows or series its paper table/figure shows, plus a CSV
// block that is trivial to plot.

#ifndef SRTREE_BENCHLIB_REPORT_H_
#define SRTREE_BENCHLIB_REPORT_H_

#include <string>
#include <vector>

namespace srtree {

class Table {
 public:
  Table(std::string title, std::vector<std::string> columns);

  void AddRow(std::vector<std::string> cells);

  // Aligned, boxed ASCII rendering.
  std::string ToString() const;
  // Comma-separated rendering (header + rows), for plotting.
  std::string ToCsv() const;

  // Prints both renderings to stdout.
  void Print() const;

 private:
  std::string title_;
  std::vector<std::string> columns_;
  std::vector<std::vector<std::string>> rows_;
};

// Compact numeric formatting: fixed for "normal" magnitudes, scientific for
// the tiny high-dimensional volumes of Figures 5/6/12/13.
std::string FormatNum(double value);

}  // namespace srtree

#endif  // SRTREE_BENCHLIB_REPORT_H_
