// ASCII table / series output for the bench binaries. Every experiment
// prints the same rows or series its paper table/figure shows, plus a CSV
// block that is trivial to plot, and can snapshot the same tables as a
// machine-readable JSON report (--json) for regression tracking.

#ifndef SRTREE_BENCHLIB_REPORT_H_
#define SRTREE_BENCHLIB_REPORT_H_

#include <string>
#include <vector>

#include "src/common/status.h"

namespace srtree {

class Table {
 public:
  Table(std::string title, std::vector<std::string> columns);

  void AddRow(std::vector<std::string> cells);

  // Aligned, boxed ASCII rendering.
  std::string ToString() const;
  // Comma-separated rendering (header + rows), for plotting.
  std::string ToCsv() const;
  // One JSON object: {"title": ..., "columns": [...], "rows": [[...]]}.
  // Cells stay strings — exactly what the ASCII/CSV renderings show, so
  // the three outputs can never disagree.
  std::string ToJson() const;

  // Prints both text renderings to stdout.
  void Print() const;

 private:
  std::string title_;
  std::vector<std::string> columns_;
  std::vector<std::vector<std::string>> rows_;
};

// Writes {"tables": [<table json>, ...]} to `path` through
// storage::AtomicWriteFile, so a crashed bench run can never leave a
// truncated report behind.
Status WriteJsonReport(const std::string& path,
                       const std::vector<Table>& tables);

// Compact numeric formatting: fixed for "normal" magnitudes, scientific for
// the tiny high-dimensional volumes of Figures 5/6/12/13.
std::string FormatNum(double value);

}  // namespace srtree

#endif  // SRTREE_BENCHLIB_REPORT_H_
