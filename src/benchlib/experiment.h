// Experiment harness: build/query workload runners that collect exactly the
// metrics the paper reports (CPU time, disk reads and accesses, per-level
// read breakdown, leaf-access ratios). Index construction lives in
// src/index/index_factory.h (re-exported here for the harness's callers);
// this layer sees concrete trees only through the PointIndex interface.

#ifndef SRTREE_BENCHLIB_EXPERIMENT_H_
#define SRTREE_BENCHLIB_EXPERIMENT_H_

#include <vector>

#include "src/index/index_factory.h"
#include "src/index/point_index.h"
#include "src/workload/dataset.h"

namespace srtree {

// Populates the index from the dataset (BulkLoad: sequential inserts for
// the dynamic trees, the VAM construction for the static tree) and reports
// the build cost as the movement of the GetIoStats() counters — the global
// counters are snapshotted, not reset.
struct BuildMetrics {
  double total_cpu_seconds = 0.0;
  double cpu_ms_per_insert = 0.0;
  uint64_t disk_accesses = 0;       // reads + writes (Figure 9's metric)
  double accesses_per_insert = 0.0;
};

BuildMetrics BuildIndexFromDataset(PointIndex& index, const Dataset& data);

// Runs a k-NN workload and averages the paper's per-query metrics.
struct QueryMetrics {
  size_t num_queries = 0;
  double cpu_ms = 0.0;        // average CPU time per query
  double disk_reads = 0.0;    // average disk reads per query
  double leaf_reads = 0.0;    // average leaf-level reads per query
  double nonleaf_reads = 0.0; // average node-level reads per query
};

QueryMetrics RunKnnWorkload(PointIndex& index,
                            const std::vector<Point>& queries, int k);

}  // namespace srtree

#endif  // SRTREE_BENCHLIB_EXPERIMENT_H_
