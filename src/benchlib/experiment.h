// Experiment harness: index factory plus build/query workload runners that
// collect exactly the metrics the paper reports (CPU time, disk reads and
// accesses, per-level read breakdown, leaf-access ratios).

#ifndef SRTREE_BENCHLIB_EXPERIMENT_H_
#define SRTREE_BENCHLIB_EXPERIMENT_H_

#include <memory>
#include <string>
#include <vector>

#include "src/index/point_index.h"
#include "src/workload/dataset.h"

namespace srtree {

enum class IndexType {
  kSRTree,
  kSSTree,
  kRStarTree,
  kKdbTree,
  kVamSplitRTree,
  kXTree,   // extension: Section 2.6 related work, not in the paper's tests
  kTvTree,  // extension: Section 2.5 related work (fixed-telescope TV-tree)
  kScan,
};

const char* IndexTypeName(IndexType type);

// The five index structures of the paper's evaluation.
std::vector<IndexType> AllTreeTypes();
// The dynamic trees whose insertion cost Figure 9 compares.
std::vector<IndexType> DynamicTreeTypes();

struct IndexConfig {
  int dim = 16;
  size_t page_size = 8192;
  size_t leaf_data_size = 512;
  double min_utilization = 0.4;
  double reinsert_fraction = 0.3;
};

std::unique_ptr<PointIndex> MakeIndex(IndexType type,
                                      const IndexConfig& config);

// Populates the index from the dataset (BulkLoad: sequential inserts for
// the dynamic trees, the VAM construction for the static tree) and reports
// the build cost. I/O stats are reset before and after.
struct BuildMetrics {
  double total_cpu_seconds = 0.0;
  double cpu_ms_per_insert = 0.0;
  uint64_t disk_accesses = 0;       // reads + writes (Figure 9's metric)
  double accesses_per_insert = 0.0;
};

BuildMetrics BuildIndexFromDataset(PointIndex& index, const Dataset& data);

// Runs a k-NN workload and averages the paper's per-query metrics.
struct QueryMetrics {
  size_t num_queries = 0;
  double cpu_ms = 0.0;        // average CPU time per query
  double disk_reads = 0.0;    // average disk reads per query
  double leaf_reads = 0.0;    // average leaf-level reads per query
  double nonleaf_reads = 0.0; // average node-level reads per query
};

QueryMetrics RunKnnWorkload(PointIndex& index,
                            const std::vector<Point>& queries, int k);

}  // namespace srtree

#endif  // SRTREE_BENCHLIB_EXPERIMENT_H_
