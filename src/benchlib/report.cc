#include "src/benchlib/report.h"

#include <cmath>
#include <cstdio>

#include "src/common/check.h"

namespace srtree {

Table::Table(std::string title, std::vector<std::string> columns)
    : title_(std::move(title)), columns_(std::move(columns)) {}

void Table::AddRow(std::vector<std::string> cells) {
  CHECK_EQ(cells.size(), columns_.size());
  rows_.push_back(std::move(cells));
}

std::string Table::ToString() const {
  std::vector<size_t> widths(columns_.size());
  for (size_t c = 0; c < columns_.size(); ++c) widths[c] = columns_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  auto format_row = [&](const std::vector<std::string>& cells) {
    std::string line = "|";
    for (size_t c = 0; c < cells.size(); ++c) {
      line += " " + cells[c] + std::string(widths[c] - cells[c].size(), ' ') +
              " |";
    }
    return line + "\n";
  };

  std::string separator = "+";
  for (const size_t w : widths) separator += std::string(w + 2, '-') + "+";
  separator += "\n";

  std::string out = "\n== " + title_ + " ==\n";
  out += separator;
  out += format_row(columns_);
  out += separator;
  for (const auto& row : rows_) out += format_row(row);
  out += separator;
  return out;
}

std::string Table::ToCsv() const {
  auto join = [](const std::vector<std::string>& cells) {
    std::string line;
    for (size_t c = 0; c < cells.size(); ++c) {
      if (c > 0) line += ",";
      line += cells[c];
    }
    return line + "\n";
  };
  std::string out = "csv: " + join(columns_);
  for (const auto& row : rows_) out += "csv: " + join(row);
  return out;
}

void Table::Print() const {
  std::fputs(ToString().c_str(), stdout);
  std::fputs(ToCsv().c_str(), stdout);
  std::fflush(stdout);
}

std::string FormatNum(double value) {
  char buf[64];
  const double mag = std::fabs(value);
  if (value == 0.0) {
    return "0";
  } else if (mag >= 1e6 || mag < 1e-3) {
    std::snprintf(buf, sizeof(buf), "%.3e", value);
  } else if (mag >= 100.0) {
    std::snprintf(buf, sizeof(buf), "%.1f", value);
  } else {
    std::snprintf(buf, sizeof(buf), "%.4f", value);
  }
  return buf;
}

}  // namespace srtree
