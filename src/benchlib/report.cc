#include "src/benchlib/report.h"

#include <cmath>
#include <cstdio>
#include <ostream>

#include "src/common/check.h"
#include "src/storage/image_io.h"

namespace srtree {

namespace {

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string JsonStringArray(const std::vector<std::string>& items) {
  std::string out = "[";
  for (size_t i = 0; i < items.size(); ++i) {
    if (i > 0) out += ", ";
    out += "\"" + JsonEscape(items[i]) + "\"";
  }
  return out + "]";
}

}  // namespace

Table::Table(std::string title, std::vector<std::string> columns)
    : title_(std::move(title)), columns_(std::move(columns)) {}

void Table::AddRow(std::vector<std::string> cells) {
  CHECK_EQ(cells.size(), columns_.size());
  rows_.push_back(std::move(cells));
}

std::string Table::ToString() const {
  std::vector<size_t> widths(columns_.size());
  for (size_t c = 0; c < columns_.size(); ++c) widths[c] = columns_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  auto format_row = [&](const std::vector<std::string>& cells) {
    std::string line = "|";
    for (size_t c = 0; c < cells.size(); ++c) {
      line += " " + cells[c] + std::string(widths[c] - cells[c].size(), ' ') +
              " |";
    }
    return line + "\n";
  };

  std::string separator = "+";
  for (const size_t w : widths) separator += std::string(w + 2, '-') + "+";
  separator += "\n";

  std::string out = "\n== " + title_ + " ==\n";
  out += separator;
  out += format_row(columns_);
  out += separator;
  for (const auto& row : rows_) out += format_row(row);
  out += separator;
  return out;
}

std::string Table::ToCsv() const {
  auto join = [](const std::vector<std::string>& cells) {
    std::string line;
    for (size_t c = 0; c < cells.size(); ++c) {
      if (c > 0) line += ",";
      line += cells[c];
    }
    return line + "\n";
  };
  std::string out = "csv: " + join(columns_);
  for (const auto& row : rows_) out += "csv: " + join(row);
  return out;
}

std::string Table::ToJson() const {
  std::string out = "{\n";
  out += "  \"title\": \"" + JsonEscape(title_) + "\",\n";
  out += "  \"columns\": " + JsonStringArray(columns_) + ",\n";
  out += "  \"rows\": [";
  for (size_t r = 0; r < rows_.size(); ++r) {
    out += (r > 0 ? ",\n           " : "\n           ");
    out += JsonStringArray(rows_[r]);
  }
  out += rows_.empty() ? "]\n" : "\n  ]\n";
  return out + "}";
}

Status WriteJsonReport(const std::string& path,
                       const std::vector<Table>& tables) {
  return AtomicWriteFile(path, [&tables](std::ostream& os) {
    os << "{\n\"tables\": [\n";
    for (size_t t = 0; t < tables.size(); ++t) {
      if (t > 0) os << ",\n";
      os << tables[t].ToJson();
    }
    os << "\n]\n}\n";
    return Status::OK();
  });
}

void Table::Print() const {
  std::fputs(ToString().c_str(), stdout);
  std::fputs(ToCsv().c_str(), stdout);
  std::fflush(stdout);
}

std::string FormatNum(double value) {
  char buf[64];
  const double mag = std::fabs(value);
  if (value == 0.0) {
    return "0";
  } else if (mag >= 1e6 || mag < 1e-3) {
    std::snprintf(buf, sizeof(buf), "%.3e", value);
  } else if (mag >= 100.0) {
    std::snprintf(buf, sizeof(buf), "%.1f", value);
  } else {
    std::snprintf(buf, sizeof(buf), "%.4f", value);
  }
  return buf;
}

}  // namespace srtree
