#include "src/geometry/volume.h"

#include <cmath>
#include <limits>

#include "src/common/check.h"

namespace srtree {

double UnitBallVolume(int dim) {
  CHECK_GT(dim, 0);
  return std::exp(LogBallVolume(dim, 1.0));
}

double LogBallVolume(int dim, double radius) {
  CHECK_GT(dim, 0);
  CHECK_GE(radius, 0.0);
  if (radius == 0.0) return -std::numeric_limits<double>::infinity();
  const double d = static_cast<double>(dim);
  return 0.5 * d * std::log(M_PI) - std::lgamma(0.5 * d + 1.0) +
         d * std::log(radius);
}

double BallVolume(int dim, double radius) {
  if (radius == 0.0) return 0.0;
  return std::exp(LogBallVolume(dim, radius));
}

}  // namespace srtree
