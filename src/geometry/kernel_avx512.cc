// AVX-512 DistanceKernel implementation: 8 doubles per vector, one lane per
// block element, dimensions walked sequentially — bit-identical to the
// scalar kernel for the same reason as the AVX2 TU (see kernel_avx2.cc).
// Compiled with -mavx512f -ffp-contract=off only when SRTREE_SIMD is on and
// the compiler supports it; the runtime CPUID check lives in kernel.cc.

#include "src/geometry/kernel.h"
#include "src/geometry/kernel_detail.h"

#if defined(SRTREE_KERNEL_BUILD_AVX512)

#include <immintrin.h>

namespace srtree::kernel_internal {
namespace {

constexpr size_t kLanes = 8;

void Avx512SquaredL2ToMany(const double* q, const SoaBlock& block,
                           double* out) {
  const size_t n = block.count;
  const size_t dim = static_cast<size_t>(block.dim);
  size_t i = 0;
  for (; i + kLanes <= n; i += kLanes) {
    __m512d acc = _mm512_setzero_pd();
    for (size_t d = 0; d < dim; ++d) {
      const __m512d x = _mm512_loadu_pd(block.coords + d * n + i);
      const __m512d diff = _mm512_sub_pd(x, _mm512_set1_pd(q[d]));
      acc = _mm512_add_pd(acc, _mm512_mul_pd(diff, diff));
    }
    _mm512_storeu_pd(out + i, acc);
  }
  for (; i < n; ++i) {
    out[i] = kernel_detail::ScalarSquaredL2Strided(q, block.coords + i, n, dim);
  }
}

void Avx512SquaredL2ToManyBounded(const double* q, const SoaBlock& block,
                                  double bound_sq, double* out) {
  const size_t n = block.count;
  const size_t dim = static_cast<size_t>(block.dim);
  const __m512d bound = _mm512_set1_pd(bound_sq);
  size_t i = 0;
  for (; i + kLanes <= n; i += kLanes) {
    __m512d acc = _mm512_setzero_pd();
    size_t d = 0;
    while (d < dim) {
      const size_t end =
          std::min(d + kernel_detail::kBoundedCheckChunk, dim);
      for (; d < end; ++d) {
        const __m512d x = _mm512_loadu_pd(block.coords + d * n + i);
        const __m512d diff = _mm512_sub_pd(x, _mm512_set1_pd(q[d]));
        acc = _mm512_add_pd(acc, _mm512_mul_pd(diff, diff));
      }
      // Stop only once every lane's partial sum exceeds the bound.
      if (_mm512_cmp_pd_mask(acc, bound, _CMP_GT_OQ) == 0xFF) break;
    }
    _mm512_storeu_pd(out + i, acc);
  }
  for (; i < n; ++i) {
    out[i] = kernel_detail::ScalarSquaredL2BoundedStrided(q, block.coords + i,
                                                          n, dim, bound_sq);
  }
}

void Avx512MinDistRectToMany(const double* q, const SoaBlock& lo,
                             const SoaBlock& hi, double* out) {
  const size_t n = lo.count;
  const size_t dim = static_cast<size_t>(lo.dim);
  const __m512d zero = _mm512_setzero_pd();
  size_t i = 0;
  for (; i + kLanes <= n; i += kLanes) {
    __m512d acc = _mm512_setzero_pd();
    for (size_t d = 0; d < dim; ++d) {
      const __m512d qd = _mm512_set1_pd(q[d]);
      const __m512d below =
          _mm512_sub_pd(_mm512_loadu_pd(lo.coords + d * n + i), qd);
      const __m512d above =
          _mm512_sub_pd(qd, _mm512_loadu_pd(hi.coords + d * n + i));
      const __m512d diff = _mm512_max_pd(_mm512_max_pd(below, above), zero);
      acc = _mm512_add_pd(acc, _mm512_mul_pd(diff, diff));
    }
    _mm512_storeu_pd(out + i, acc);
  }
  for (; i < n; ++i) {
    out[i] = kernel_detail::ScalarMinDistSqRectStrided(q, lo.coords + i,
                                                       hi.coords + i, n, dim);
  }
}

void Avx512SphereMinDistToMany(const double* q, const SoaBlock& centers,
                               const double* radii, double* out) {
  const size_t n = centers.count;
  const size_t dim = static_cast<size_t>(centers.dim);
  const __m512d zero = _mm512_setzero_pd();
  size_t i = 0;
  for (; i + kLanes <= n; i += kLanes) {
    __m512d acc = _mm512_setzero_pd();
    for (size_t d = 0; d < dim; ++d) {
      const __m512d x = _mm512_loadu_pd(centers.coords + d * n + i);
      const __m512d diff = _mm512_sub_pd(x, _mm512_set1_pd(q[d]));
      acc = _mm512_add_pd(acc, _mm512_mul_pd(diff, diff));
    }
    const __m512d dist =
        _mm512_sub_pd(_mm512_sqrt_pd(acc), _mm512_loadu_pd(radii + i));
    _mm512_storeu_pd(out + i, _mm512_max_pd(dist, zero));
  }
  for (; i < n; ++i) {
    const double sq =
        kernel_detail::ScalarSquaredL2Strided(q, centers.coords + i, n, dim);
    out[i] = std::max(0.0, std::sqrt(sq) - radii[i]);
  }
}

constexpr KernelOps kAvx512Ops = {
    &Avx512SquaredL2ToMany,
    &Avx512SquaredL2ToManyBounded,
    &Avx512MinDistRectToMany,
    &Avx512SphereMinDistToMany,
};

}  // namespace

const KernelOps* GetAvx512Ops() { return &kAvx512Ops; }

}  // namespace srtree::kernel_internal

#else  // !defined(SRTREE_KERNEL_BUILD_AVX512)

namespace srtree::kernel_internal {
const KernelOps* GetAvx512Ops() { return nullptr; }
}  // namespace srtree::kernel_internal

#endif  // defined(SRTREE_KERNEL_BUILD_AVX512)
