// AVX2 DistanceKernel implementation: 4 doubles per vector, one lane per
// block element, dimensions walked sequentially — so each lane performs
// exactly the scalar accumulation sequence and results are bit-identical to
// the scalar kernel (see kernel_detail.h). This TU is compiled with -mavx2
// -ffp-contract=off only when SRTREE_SIMD is on and the compiler supports
// it; otherwise it degrades to the nullptr registration below. The runtime
// CPUID check lives in kernel.cc, so merely building this code never
// executes it on unsupported hardware.

#include "src/geometry/kernel.h"
#include "src/geometry/kernel_detail.h"

#if defined(SRTREE_KERNEL_BUILD_AVX2)

#include <immintrin.h>

namespace srtree::kernel_internal {
namespace {

constexpr size_t kLanes = 4;

void Avx2SquaredL2ToMany(const double* q, const SoaBlock& block,
                         double* out) {
  const size_t n = block.count;
  const size_t dim = static_cast<size_t>(block.dim);
  size_t i = 0;
  for (; i + kLanes <= n; i += kLanes) {
    __m256d acc = _mm256_setzero_pd();
    for (size_t d = 0; d < dim; ++d) {
      const __m256d x = _mm256_loadu_pd(block.coords + d * n + i);
      const __m256d diff = _mm256_sub_pd(x, _mm256_set1_pd(q[d]));
      acc = _mm256_add_pd(acc, _mm256_mul_pd(diff, diff));
    }
    _mm256_storeu_pd(out + i, acc);
  }
  for (; i < n; ++i) {
    out[i] = kernel_detail::ScalarSquaredL2Strided(q, block.coords + i, n, dim);
  }
}

void Avx2SquaredL2ToManyBounded(const double* q, const SoaBlock& block,
                                double bound_sq, double* out) {
  const size_t n = block.count;
  const size_t dim = static_cast<size_t>(block.dim);
  const __m256d bound = _mm256_set1_pd(bound_sq);
  size_t i = 0;
  for (; i + kLanes <= n; i += kLanes) {
    __m256d acc = _mm256_setzero_pd();
    size_t d = 0;
    while (d < dim) {
      const size_t end =
          std::min(d + kernel_detail::kBoundedCheckChunk, dim);
      for (; d < end; ++d) {
        const __m256d x = _mm256_loadu_pd(block.coords + d * n + i);
        const __m256d diff = _mm256_sub_pd(x, _mm256_set1_pd(q[d]));
        acc = _mm256_add_pd(acc, _mm256_mul_pd(diff, diff));
      }
      // Stop only once every lane's partial sum exceeds the bound: lanes
      // still under it keep accumulating their exact values.
      if (_mm256_movemask_pd(_mm256_cmp_pd(acc, bound, _CMP_GT_OQ)) == 0xF) {
        break;
      }
    }
    _mm256_storeu_pd(out + i, acc);
  }
  for (; i < n; ++i) {
    out[i] = kernel_detail::ScalarSquaredL2BoundedStrided(q, block.coords + i,
                                                          n, dim, bound_sq);
  }
}

void Avx2MinDistRectToMany(const double* q, const SoaBlock& lo,
                           const SoaBlock& hi, double* out) {
  const size_t n = lo.count;
  const size_t dim = static_cast<size_t>(lo.dim);
  const __m256d zero = _mm256_setzero_pd();
  size_t i = 0;
  for (; i + kLanes <= n; i += kLanes) {
    __m256d acc = _mm256_setzero_pd();
    for (size_t d = 0; d < dim; ++d) {
      const __m256d qd = _mm256_set1_pd(q[d]);
      const __m256d below = _mm256_sub_pd(_mm256_loadu_pd(lo.coords + d * n + i), qd);
      const __m256d above = _mm256_sub_pd(qd, _mm256_loadu_pd(hi.coords + d * n + i));
      const __m256d diff = _mm256_max_pd(_mm256_max_pd(below, above), zero);
      acc = _mm256_add_pd(acc, _mm256_mul_pd(diff, diff));
    }
    _mm256_storeu_pd(out + i, acc);
  }
  for (; i < n; ++i) {
    out[i] = kernel_detail::ScalarMinDistSqRectStrided(q, lo.coords + i,
                                                       hi.coords + i, n, dim);
  }
}

void Avx2SphereMinDistToMany(const double* q, const SoaBlock& centers,
                             const double* radii, double* out) {
  const size_t n = centers.count;
  const size_t dim = static_cast<size_t>(centers.dim);
  const __m256d zero = _mm256_setzero_pd();
  size_t i = 0;
  for (; i + kLanes <= n; i += kLanes) {
    __m256d acc = _mm256_setzero_pd();
    for (size_t d = 0; d < dim; ++d) {
      const __m256d x = _mm256_loadu_pd(centers.coords + d * n + i);
      const __m256d diff = _mm256_sub_pd(x, _mm256_set1_pd(q[d]));
      acc = _mm256_add_pd(acc, _mm256_mul_pd(diff, diff));
    }
    // IEEE sqrt is correctly rounded, so this stays bit-identical to the
    // scalar max(0, sqrt(sq) - r).
    const __m256d dist =
        _mm256_sub_pd(_mm256_sqrt_pd(acc), _mm256_loadu_pd(radii + i));
    _mm256_storeu_pd(out + i, _mm256_max_pd(dist, zero));
  }
  for (; i < n; ++i) {
    const double sq =
        kernel_detail::ScalarSquaredL2Strided(q, centers.coords + i, n, dim);
    out[i] = std::max(0.0, std::sqrt(sq) - radii[i]);
  }
}

constexpr KernelOps kAvx2Ops = {
    &Avx2SquaredL2ToMany,
    &Avx2SquaredL2ToManyBounded,
    &Avx2MinDistRectToMany,
    &Avx2SphereMinDistToMany,
};

}  // namespace

const KernelOps* GetAvx2Ops() { return &kAvx2Ops; }

}  // namespace srtree::kernel_internal

#else  // !defined(SRTREE_KERNEL_BUILD_AVX2)

namespace srtree::kernel_internal {
const KernelOps* GetAvx2Ops() { return nullptr; }
}  // namespace srtree::kernel_internal

#endif  // defined(SRTREE_KERNEL_BUILD_AVX2)
