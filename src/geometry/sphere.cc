#include "src/geometry/sphere.h"

#include <algorithm>
#include <cmath>

#include "src/common/check.h"
#include "src/geometry/kernel_detail.h"
#include "src/geometry/volume.h"

namespace srtree {

Sphere::Sphere(Point center, double radius)
    : center_(std::move(center)), radius_(radius) {
  CHECK_GE(radius_, 0.0);
}

bool Sphere::Contains(PointView p) const {
  DCHECK_EQ(p.size(), center_.size());
  return kernel_detail::ScalarSquaredL2(center_.data(), p.data(), p.size()) <=
         radius_ * radius_;
}

double Sphere::MinDist(PointView p) const {
  DCHECK_EQ(p.size(), center_.size());
  return kernel_detail::ScalarSphereMinDist(p.data(), center_.data(), p.size(),
                                            radius_);
}

double Sphere::MaxDist(PointView p) const {
  DCHECK_EQ(p.size(), center_.size());
  return kernel_detail::ScalarSphereMaxDist(p.data(), center_.data(), p.size(),
                                            radius_);
}

bool Sphere::IntersectsRect(const Rect& rect) const {
  return rect.MinDistSq(center_) <= radius_ * radius_;
}

double Sphere::Volume() const { return BallVolume(dim(), radius_); }

}  // namespace srtree
