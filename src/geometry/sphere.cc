#include "src/geometry/sphere.h"

#include <algorithm>
#include <cmath>

#include "src/common/check.h"
#include "src/geometry/volume.h"

namespace srtree {

Sphere::Sphere(Point center, double radius)
    : center_(std::move(center)), radius_(radius) {
  CHECK_GE(radius_, 0.0);
}

bool Sphere::Contains(PointView p) const {
  return SquaredDistance(center_, p) <= radius_ * radius_;
}

double Sphere::MinDist(PointView p) const {
  return std::max(0.0, Distance(center_, p) - radius_);
}

double Sphere::MaxDist(PointView p) const {
  return Distance(center_, p) + radius_;
}

bool Sphere::IntersectsRect(const Rect& rect) const {
  return rect.MinDistSq(center_) <= radius_ * radius_;
}

double Sphere::Volume() const { return BallVolume(dim(), radius_); }

}  // namespace srtree
