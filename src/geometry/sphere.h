// Bounding hyper-spheres — the SS-tree region shape and half of the
// SR-tree's sphere-and-rectangle region.

#ifndef SRTREE_GEOMETRY_SPHERE_H_
#define SRTREE_GEOMETRY_SPHERE_H_

#include "src/geometry/point.h"
#include "src/geometry/rect.h"

namespace srtree {

class Sphere {
 public:
  Sphere() = default;
  Sphere(Point center, double radius);

  int dim() const { return static_cast<int>(center_.size()); }
  const Point& center() const { return center_; }
  double radius() const { return radius_; }

  void set_center(Point center) { center_ = std::move(center); }
  void set_radius(double radius) { radius_ = radius; }

  bool Contains(PointView p) const;

  // Minimum distance from `p` to the sphere surface; 0 when inside.
  double MinDist(PointView p) const;

  // Maximum distance from `p` to any point of the ball.
  double MaxDist(PointView p) const;

  // Whether the ball and rectangle have a non-empty intersection.
  bool IntersectsRect(const Rect& rect) const;

  // V_D(radius) — see geometry/volume.h for the underflow caveat.
  double Volume() const;

  double Diameter() const { return 2.0 * radius_; }

 private:
  Point center_;
  double radius_ = 0.0;
};

}  // namespace srtree

#endif  // SRTREE_GEOMETRY_SPHERE_H_
