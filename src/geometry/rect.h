// Axis-aligned bounding hyper-rectangles (MBRs).
//
// Rect supplies every rectangle predicate the five index structures need:
// MINDIST / MAXDIST to a point (Roussopoulos et al.), area/margin/overlap
// (the R*-tree split heuristics), and the union/expand operations used to
// maintain MBRs on insertion.

#ifndef SRTREE_GEOMETRY_RECT_H_
#define SRTREE_GEOMETRY_RECT_H_

#include <vector>

#include "src/geometry/point.h"

namespace srtree {

class Rect {
 public:
  Rect() = default;

  // The "empty" rectangle in `dim` dimensions: lo = +inf, hi = -inf, so the
  // first Expand() sets both bounds. Useful as a fold identity for unions.
  static Rect Empty(int dim);

  // Degenerate rectangle covering exactly one point.
  static Rect FromPoint(PointView p);

  // Rectangle with explicit bounds; requires lo[i] <= hi[i] for all i.
  Rect(Point lo, Point hi);

  int dim() const { return static_cast<int>(lo_.size()); }
  const Point& lo() const { return lo_; }
  const Point& hi() const { return hi_; }

  bool IsEmpty() const;

  // Grows this rectangle to cover `p` / `other`.
  void Expand(PointView p);
  void Expand(const Rect& other);

  // Smallest rectangle covering both arguments.
  static Rect Union(const Rect& a, const Rect& b);

  bool Contains(PointView p) const;
  bool ContainsRect(const Rect& other) const;
  bool Intersects(const Rect& other) const;

  // Squared minimum distance from `p` to this rectangle (0 when inside).
  double MinDistSq(PointView p) const;

  // Squared distance from `p` to the farthest vertex of this rectangle; the
  // paper's MAXDIST used by the SR-tree radius rule (Section 4.2).
  double MaxDistSq(PointView p) const;

  // Product of edge lengths.
  double Volume() const;

  // Sum of edge lengths (the R*-tree "margin" is 2^(dim-1) times this; the
  // constant factor does not affect argmin comparisons).
  double Margin() const;

  // Volume of the intersection with `other`, 0 if disjoint.
  double OverlapVolume(const Rect& other) const;

  // Center point of the rectangle.
  Point Center() const;

  // Length of the main diagonal — the "diameter" the paper plots for
  // rectangle regions (Figure 5).
  double Diagonal() const;

  bool operator==(const Rect& other) const {
    return lo_ == other.lo_ && hi_ == other.hi_;
  }

 private:
  Point lo_;
  Point hi_;
};

}  // namespace srtree

#endif  // SRTREE_GEOMETRY_RECT_H_
