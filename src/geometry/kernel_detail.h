// Canonical scalar cores for every distance primitive the DistanceKernel
// exposes. These are THE reference semantics: one accumulator per output
// element, terms added in ascending dimension order, multiply-then-add with
// no FMA contraction (the kernel TUs compile with -ffp-contract=off). Every
// SIMD implementation vectorizes ACROSS block elements (one lane per
// element) and therefore performs, per element, exactly this sequence of
// rounded operations — which is what makes scalar and SIMD kernels
// bit-identical (see docs/ANALYSIS.md "Distance kernel & dispatch").
//
// Shared by: kernel.cc / kernel_avx2.cc / kernel_avx512.cc (bulk ops and
// block tails), rect.cc / sphere.cc (the geometry methods delegate here so
// there is a single source of truth), and the deprecated point.h wrappers.

#ifndef SRTREE_GEOMETRY_KERNEL_DETAIL_H_
#define SRTREE_GEOMETRY_KERNEL_DETAIL_H_

#include <algorithm>
#include <cmath>
#include <cstddef>

namespace srtree::kernel_detail {

// Squared L2 distance, ascending-dimension accumulation.
inline double ScalarSquaredL2(const double* a, const double* b, size_t dim) {
  double sum = 0.0;
  for (size_t d = 0; d < dim; ++d) {
    const double diff = a[d] - b[d];
    sum += diff * diff;
  }
  return sum;
}

// Squared MINDIST from point `q` to the box [lo, hi]; 0 when inside. The
// per-dimension contribution is max(lo-q, q-hi, 0), which equals the
// branchy clamp form exactly (including the empty-rect lo=+inf case).
inline double ScalarMinDistSqRect(const double* q, const double* lo,
                                  const double* hi, size_t dim) {
  double sum = 0.0;
  for (size_t d = 0; d < dim; ++d) {
    const double diff = std::max(std::max(lo[d] - q[d], q[d] - hi[d]), 0.0);
    sum += diff * diff;
  }
  return sum;
}

// Squared distance from `q` to the farthest vertex of [lo, hi].
inline double ScalarMaxDistSqRect(const double* q, const double* lo,
                                  const double* hi, size_t dim) {
  double sum = 0.0;
  for (size_t d = 0; d < dim; ++d) {
    const double diff = std::max(std::abs(q[d] - lo[d]), std::abs(hi[d] - q[d]));
    sum += diff * diff;
  }
  return sum;
}

// Distance from `q` to the surface of the ball (center, radius); 0 inside.
// sqrt is IEEE correctly rounded, so this too is impl-independent.
inline double ScalarSphereMinDist(const double* q, const double* center,
                                  size_t dim, double radius) {
  return std::max(0.0, std::sqrt(ScalarSquaredL2(q, center, dim)) - radius);
}

// Distance from `q` to the farthest point of the ball.
inline double ScalarSphereMaxDist(const double* q, const double* center,
                                  size_t dim, double radius) {
  return std::sqrt(ScalarSquaredL2(q, center, dim)) + radius;
}

// Strided variants for the tail elements of an SoA block (coordinate d of
// the element at elem[d * stride]): same accumulation order as above.

inline double ScalarSquaredL2Strided(const double* q, const double* elem,
                                     size_t stride, size_t dim) {
  double sum = 0.0;
  for (size_t d = 0; d < dim; ++d) {
    const double diff = elem[d * stride] - q[d];
    sum += diff * diff;
  }
  return sum;
}

inline double ScalarMinDistSqRectStrided(const double* q, const double* lo,
                                         const double* hi, size_t stride,
                                         size_t dim) {
  double sum = 0.0;
  for (size_t d = 0; d < dim; ++d) {
    const double diff =
        std::max(std::max(lo[d * stride] - q[d], q[d] - hi[d * stride]), 0.0);
    sum += diff * diff;
  }
  return sum;
}

// How many leading dimensions are accumulated between early-exit checks of
// the bounded (partial-distance pruning) forms. Shared by all impls so the
// *predicate* out[i] > bound_sq is checked at the same granularity, though
// only the predicate — not the partial value — is part of the contract.
inline constexpr size_t kBoundedCheckChunk = 16;

// Bounded squared L2 for one strided element of an SoA block: coordinate d
// lives at elem[d * stride]. Exact when the result is <= bound_sq; once a
// partial sum exceeds bound_sq the accumulation may stop (partial sums of
// squares are monotone, so the final value would exceed bound_sq too).
inline double ScalarSquaredL2BoundedStrided(const double* q, const double* elem,
                                            size_t stride, size_t dim,
                                            double bound_sq) {
  double sum = 0.0;
  size_t d = 0;
  while (d < dim) {
    const size_t end = std::min(d + kBoundedCheckChunk, dim);
    for (; d < end; ++d) {
      const double diff = elem[d * stride] - q[d];
      sum += diff * diff;
    }
    if (sum > bound_sq) break;
  }
  return sum;
}

}  // namespace srtree::kernel_detail

#endif  // SRTREE_GEOMETRY_KERNEL_DETAIL_H_
