#include "src/geometry/rect.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "src/common/check.h"
#include "src/geometry/kernel_detail.h"

namespace srtree {

Rect Rect::Empty(int dim) {
  CHECK_GT(dim, 0);
  Rect r;
  r.lo_.assign(dim, std::numeric_limits<double>::infinity());
  r.hi_.assign(dim, -std::numeric_limits<double>::infinity());
  return r;
}

Rect Rect::FromPoint(PointView p) {
  Rect r;
  r.lo_.assign(p.begin(), p.end());
  r.hi_ = r.lo_;
  return r;
}

Rect::Rect(Point lo, Point hi) : lo_(std::move(lo)), hi_(std::move(hi)) {
  CHECK_EQ(lo_.size(), hi_.size());
  for (size_t i = 0; i < lo_.size(); ++i) DCHECK_LE(lo_[i], hi_[i]);
}

bool Rect::IsEmpty() const {
  if (lo_.empty()) return true;
  for (size_t i = 0; i < lo_.size(); ++i) {
    if (lo_[i] > hi_[i]) return true;
  }
  return false;
}

void Rect::Expand(PointView p) {
  DCHECK_EQ(p.size(), lo_.size());
  for (size_t i = 0; i < lo_.size(); ++i) {
    lo_[i] = std::min(lo_[i], p[i]);
    hi_[i] = std::max(hi_[i], p[i]);
  }
}

void Rect::Expand(const Rect& other) {
  DCHECK_EQ(other.dim(), dim());
  for (size_t i = 0; i < lo_.size(); ++i) {
    lo_[i] = std::min(lo_[i], other.lo_[i]);
    hi_[i] = std::max(hi_[i], other.hi_[i]);
  }
}

Rect Rect::Union(const Rect& a, const Rect& b) {
  Rect result = a;
  result.Expand(b);
  return result;
}

bool Rect::Contains(PointView p) const {
  DCHECK_EQ(p.size(), lo_.size());
  for (size_t i = 0; i < lo_.size(); ++i) {
    if (p[i] < lo_[i] || p[i] > hi_[i]) return false;
  }
  return true;
}

bool Rect::ContainsRect(const Rect& other) const {
  DCHECK_EQ(other.dim(), dim());
  for (size_t i = 0; i < lo_.size(); ++i) {
    if (other.lo_[i] < lo_[i] || other.hi_[i] > hi_[i]) return false;
  }
  return true;
}

bool Rect::Intersects(const Rect& other) const {
  DCHECK_EQ(other.dim(), dim());
  for (size_t i = 0; i < lo_.size(); ++i) {
    if (other.hi_[i] < lo_[i] || other.lo_[i] > hi_[i]) return false;
  }
  return true;
}

double Rect::MinDistSq(PointView p) const {
  DCHECK_EQ(p.size(), lo_.size());
  return kernel_detail::ScalarMinDistSqRect(p.data(), lo_.data(), hi_.data(),
                                            p.size());
}

double Rect::MaxDistSq(PointView p) const {
  DCHECK_EQ(p.size(), lo_.size());
  return kernel_detail::ScalarMaxDistSqRect(p.data(), lo_.data(), hi_.data(),
                                            p.size());
}

double Rect::Volume() const {
  double v = 1.0;
  for (size_t i = 0; i < lo_.size(); ++i) {
    const double edge = hi_[i] - lo_[i];
    if (edge <= 0.0) return 0.0;
    v *= edge;
  }
  return v;
}

double Rect::Margin() const {
  double m = 0.0;
  for (size_t i = 0; i < lo_.size(); ++i) m += hi_[i] - lo_[i];
  return m;
}

double Rect::OverlapVolume(const Rect& other) const {
  DCHECK_EQ(other.dim(), dim());
  double v = 1.0;
  for (size_t i = 0; i < lo_.size(); ++i) {
    const double lo = std::max(lo_[i], other.lo_[i]);
    const double hi = std::min(hi_[i], other.hi_[i]);
    if (hi <= lo) return 0.0;
    v *= hi - lo;
  }
  return v;
}

Point Rect::Center() const {
  Point c(lo_.size());
  for (size_t i = 0; i < lo_.size(); ++i) c[i] = 0.5 * (lo_[i] + hi_[i]);
  return c;
}

double Rect::Diagonal() const {
  double sum = 0.0;
  for (size_t i = 0; i < lo_.size(); ++i) {
    const double edge = hi_[i] - lo_[i];
    sum += edge * edge;
  }
  return std::sqrt(sum);
}

}  // namespace srtree
