// DistanceKernel: the single interface every index structure uses for
// distance and MINDIST work, with scalar, AVX2, and AVX-512 implementations
// selected once at startup by runtime CPUID dispatch.
//
// Design contract (docs/ANALYSIS.md "Distance kernel & dispatch"):
//
//  * Batched primitives consume SoA coordinate blocks (dimension-major:
//    coordinate d of element i at coords[d * count + i]) so SIMD lanes map
//    to block elements, not dimensions.
//  * Every implementation accumulates each output element in ascending
//    dimension order with a single accumulator and no FMA contraction, so
//    scalar / AVX2 / AVX-512 results are BIT-IDENTICAL — there is no
//    cross-implementation tolerance to manage, and the fuzz oracles stay
//    exact under SRTREE_FORCE_SCALAR_KERNEL differential runs.
//  * The bounded form implements incremental partial-distance pruning: when
//    the running sum for an element exceeds bound_sq, accumulation may stop
//    early. out[i] is exact whenever out[i] <= bound_sq; otherwise only the
//    predicate out[i] > bound_sq is guaranteed (the value is some partial
//    sum that already exceeds the bound).
//
// Dispatch: GetDistanceKernel() picks AVX-512 > AVX2 > scalar among the
// implementations compiled in (SRTREE_SIMD) and supported by the CPU at
// startup; setting the environment variable SRTREE_FORCE_SCALAR_KERNEL=1
// forces the scalar kernel for differential testing.

#ifndef SRTREE_GEOMETRY_KERNEL_H_
#define SRTREE_GEOMETRY_KERNEL_H_

#include <cstddef>
#include <vector>

#include "src/common/check.h"
#include "src/geometry/point.h"
#include "src/geometry/rect.h"
#include "src/geometry/sphere.h"

namespace srtree {

enum class KernelImpl { kScalar, kAvx2, kAvx512 };

// Short lowercase name ("scalar", "avx2", "avx512") for logs and bench rows.
const char* KernelImplName(KernelImpl impl);

// A non-owning dimension-major (SoA) coordinate block: coordinate d of
// element i lives at coords[d * count + i].
struct SoaBlock {
  const double* coords = nullptr;
  size_t count = 0;
  int dim = 0;
};

// Owning, reusable SoA storage; Reset() keeps capacity across nodes so a
// whole traversal allocates O(1) times.
class SoaBuffer {
 public:
  // Shapes the buffer for `count` elements of dimension `dim` and returns
  // the mutable dimension-major storage (dim * count doubles).
  double* Reset(int dim, size_t count) {
    dim_ = dim;
    count_ = count;
    data_.resize(static_cast<size_t>(dim) * count);
    return data_.data();
  }

  // Scatters element `i`'s coordinates into the block columns.
  void SetElement(size_t i, PointView p) {
    DCHECK_EQ(static_cast<int>(p.size()), dim_);
    DCHECK_LT(i, count_);
    for (size_t d = 0; d < p.size(); ++d) data_[d * count_ + i] = p[d];
  }

  SoaBlock block() const { return SoaBlock{data_.data(), count_, dim_}; }

 private:
  std::vector<double> data_;
  size_t count_ = 0;
  int dim_ = 0;
};

// The per-implementation batched entry points. Internal: reach them through
// DistanceKernel, which owns validation and the pruning-mode switch.
struct KernelOps {
  void (*squared_l2_to_many)(const double* q, const SoaBlock& block,
                             double* out);
  void (*squared_l2_to_many_bounded)(const double* q, const SoaBlock& block,
                                     double bound_sq, double* out);
  void (*min_dist_rect_to_many)(const double* q, const SoaBlock& lo,
                                const SoaBlock& hi, double* out);
  void (*sphere_min_dist_to_many)(const double* q, const SoaBlock& centers,
                                  const double* radii, double* out);
};

class DistanceKernel {
 public:
  DistanceKernel(KernelImpl impl, const KernelOps& ops)
      : impl_(impl), ops_(ops) {}

  KernelImpl impl() const { return impl_; }
  const char* name() const { return KernelImplName(impl_); }

  // ---- Batched primitives (SoA blocks) ----

  // out[i] = squared L2 distance from `query` to block element i.
  void SquaredL2ToMany(PointView query, const SoaBlock& block,
                       double* out) const {
    DCHECK_EQ(static_cast<int>(query.size()), block.dim);
    ops_.squared_l2_to_many(query.data(), block, out);
  }

  // Partial-distance-pruning form; see the header comment for the exactness
  // contract. Degrades to the unbounded form when pruning is disabled via
  // SetPartialDistancePruning(false) (test hook).
  void SquaredL2ToManyBounded(PointView query, const SoaBlock& block,
                              double bound_sq, double* out) const;

  // out[i] = squared MINDIST from `query` to box [lo_i, hi_i]; 0 inside.
  void MinDistRectToMany(PointView query, const SoaBlock& lo,
                         const SoaBlock& hi, double* out) const {
    DCHECK_EQ(static_cast<int>(query.size()), lo.dim);
    DCHECK_EQ(lo.dim, hi.dim);
    DCHECK_EQ(lo.count, hi.count);
    ops_.min_dist_rect_to_many(query.data(), lo, hi, out);
  }

  // out[i] = max(0, ||query - center_i|| - radii[i]) — sphere MINDIST, in
  // distance (not squared) space like Sphere::MinDist.
  void SphereMinDistToMany(PointView query, const SoaBlock& centers,
                           const double* radii, double* out) const {
    DCHECK_EQ(static_cast<int>(query.size()), centers.dim);
    ops_.sphere_min_dist_to_many(query.data(), centers, radii, out);
  }

  // ---- Single-element forms ----
  // Canonical scalar order in every implementation (they are the block
  // semantics at count = 1), so they too are impl-independent.

  double SquaredL2(PointView a, PointView b) const;
  double L2(PointView a, PointView b) const;
  double MinDistSqToRect(PointView q, const Rect& rect) const;
  double MaxDistSqToRect(PointView q, const Rect& rect) const;
  double MinDistToSphere(PointView q, const Sphere& sphere) const;
  double MaxDistToSphere(PointView q, const Sphere& sphere) const;

 private:
  KernelImpl impl_;
  KernelOps ops_;
};

// The process-wide kernel, selected once (first call) from the compiled-in
// implementations: SRTREE_FORCE_SCALAR_KERNEL=1 > AVX-512 > AVX2 > scalar.
const DistanceKernel& GetDistanceKernel();

// A specific implementation, or nullptr when it is not compiled in or the
// CPU lacks the feature. For differential tests and benches.
const DistanceKernel* GetDistanceKernelFor(KernelImpl impl);

// Every implementation available on this build + machine (scalar always).
std::vector<KernelImpl> AvailableKernelImpls();

// Test hook: disabling partial-distance pruning makes every bounded call
// compute full exact distances (bound ignored). Global, atomic; used by the
// pruning-equivalence tests. Returns the previous value.
bool SetPartialDistancePruning(bool enabled);
bool PartialDistancePruningEnabled();

// --------------------------------------------------------------------------
// Per-query scratch: reusable buffers for transposing AoS node entries into
// SoA blocks. One instance per query impl, threaded through the traversal.

struct KernelScratch {
  SoaBuffer points;  // leaf points / sphere centers / rect lows
  SoaBuffer his;     // rect highs
  std::vector<double> radii;
  std::vector<double> dist;
  std::vector<double> dist2;
};

// Transposes `n` points (point_of(i) -> PointView) into scratch and fills
// scratch.dist with squared L2 distances from `query`, bounded by
// `bound_sq` (pass +inf for the unbounded form).
template <typename PointFn>
const std::vector<double>& BatchSquaredL2(KernelScratch& scratch,
                                          PointView query, size_t n,
                                          PointFn&& point_of,
                                          double bound_sq) {
  const DistanceKernel& kernel = GetDistanceKernel();
  scratch.points.Reset(static_cast<int>(query.size()), n);
  for (size_t i = 0; i < n; ++i) scratch.points.SetElement(i, point_of(i));
  scratch.dist.resize(n);
  kernel.SquaredL2ToManyBounded(query, scratch.points.block(), bound_sq,
                                scratch.dist.data());
  return scratch.dist;
}

// Block-direct form: the points already live in dimension-major order (for
// example a static-tier leaf page whose coordinates are serialized SoA), so
// no transpose is needed — the kernel reads straight from `block`. Fills
// scratch.dist like BatchSquaredL2.
inline const std::vector<double>& BatchSquaredL2FromBlock(
    KernelScratch& scratch, PointView query, const SoaBlock& block,
    double bound_sq) {
  scratch.dist.resize(block.count);
  GetDistanceKernel().SquaredL2ToManyBounded(query, block, bound_sq,
                                             scratch.dist.data());
  return scratch.dist;
}

// Block-direct rect MINDIST: `lo` and `hi` are pre-built dimension-major
// blocks (e.g. serialized inner-node bounds). Fills scratch.dist with
// squared MINDISTs.
inline const std::vector<double>& BatchRectMinDistSqFromBlocks(
    KernelScratch& scratch, PointView query, const SoaBlock& lo,
    const SoaBlock& hi) {
  scratch.dist.resize(lo.count);
  GetDistanceKernel().MinDistRectToMany(query, lo, hi, scratch.dist.data());
  return scratch.dist;
}

// Block-direct sphere MINDIST (distance space): `centers` is a pre-built
// dimension-major block, `radii` a plain array of block.count radii. Fills
// scratch.dist2 (so callers can combine with a rect pass in scratch.dist).
inline const std::vector<double>& BatchSphereMinDistFromBlock(
    KernelScratch& scratch, PointView query, const SoaBlock& centers,
    const double* radii) {
  scratch.dist2.resize(centers.count);
  GetDistanceKernel().SphereMinDistToMany(query, centers, radii,
                                          scratch.dist2.data());
  return scratch.dist2;
}

// Fills scratch.dist with squared MINDISTs from `query` to the rects
// rect_of(0..n).
template <typename RectFn>
const std::vector<double>& BatchRectMinDistSq(KernelScratch& scratch,
                                              PointView query, size_t n,
                                              RectFn&& rect_of) {
  const DistanceKernel& kernel = GetDistanceKernel();
  const int dim = static_cast<int>(query.size());
  scratch.points.Reset(dim, n);
  scratch.his.Reset(dim, n);
  for (size_t i = 0; i < n; ++i) {
    const Rect& r = rect_of(i);
    scratch.points.SetElement(i, r.lo());
    scratch.his.SetElement(i, r.hi());
  }
  scratch.dist.resize(n);
  kernel.MinDistRectToMany(query, scratch.points.block(), scratch.his.block(),
                           scratch.dist.data());
  return scratch.dist;
}

// Fills scratch.dist with sphere MINDISTs (distance space) from `query` to
// the spheres sphere_of(0..n).
template <typename SphereFn>
const std::vector<double>& BatchSphereMinDist(KernelScratch& scratch,
                                              PointView query, size_t n,
                                              SphereFn&& sphere_of) {
  const DistanceKernel& kernel = GetDistanceKernel();
  scratch.points.Reset(static_cast<int>(query.size()), n);
  scratch.radii.resize(n);
  for (size_t i = 0; i < n; ++i) {
    const Sphere& s = sphere_of(i);
    scratch.points.SetElement(i, s.center());
    scratch.radii[i] = s.radius();
  }
  scratch.dist.resize(n);
  kernel.SphereMinDistToMany(query, scratch.points.block(),
                             scratch.radii.data(), scratch.dist.data());
  return scratch.dist;
}

}  // namespace srtree

#endif  // SRTREE_GEOMETRY_KERNEL_H_
