#include "src/geometry/kernel.h"

#include <atomic>
#include <cstdlib>
#include <limits>

#include "src/geometry/kernel_detail.h"

namespace srtree {
namespace {

// --------------------------------------------------------------------------
// Scalar implementation. The column sweep keeps per-element accumulation in
// ascending dimension order (one accumulator per element), matching the
// SIMD lane semantics exactly while still letting the compiler vectorize
// the inner loop with baseline SSE2.

void ScalarSquaredL2ToMany(const double* q, const SoaBlock& block,
                           double* out) {
  for (size_t i = 0; i < block.count; ++i) out[i] = 0.0;
  for (int d = 0; d < block.dim; ++d) {
    const double qd = q[d];
    const double* col = block.coords + static_cast<size_t>(d) * block.count;
    for (size_t i = 0; i < block.count; ++i) {
      const double diff = col[i] - qd;
      out[i] += diff * diff;
    }
  }
}

void ScalarSquaredL2ToManyBounded(const double* q, const SoaBlock& block,
                                  double bound_sq, double* out) {
  for (size_t i = 0; i < block.count; ++i) {
    out[i] = kernel_detail::ScalarSquaredL2BoundedStrided(
        q, block.coords + i, block.count, static_cast<size_t>(block.dim),
        bound_sq);
  }
}

void ScalarMinDistRectToMany(const double* q, const SoaBlock& lo,
                             const SoaBlock& hi, double* out) {
  for (size_t i = 0; i < lo.count; ++i) out[i] = 0.0;
  for (int d = 0; d < lo.dim; ++d) {
    const double qd = q[d];
    const double* lo_col = lo.coords + static_cast<size_t>(d) * lo.count;
    const double* hi_col = hi.coords + static_cast<size_t>(d) * hi.count;
    for (size_t i = 0; i < lo.count; ++i) {
      const double diff =
          std::max(std::max(lo_col[i] - qd, qd - hi_col[i]), 0.0);
      out[i] += diff * diff;
    }
  }
}

void ScalarSphereMinDistToMany(const double* q, const SoaBlock& centers,
                               const double* radii, double* out) {
  ScalarSquaredL2ToMany(q, centers, out);
  for (size_t i = 0; i < centers.count; ++i) {
    out[i] = std::max(0.0, std::sqrt(out[i]) - radii[i]);
  }
}

constexpr KernelOps kScalarOps = {
    &ScalarSquaredL2ToMany,
    &ScalarSquaredL2ToManyBounded,
    &ScalarMinDistRectToMany,
    &ScalarSphereMinDistToMany,
};

// --------------------------------------------------------------------------
// Dispatch.

std::atomic<bool> g_partial_pruning{true};

const DistanceKernel& ScalarKernel() {
  static const DistanceKernel kernel(KernelImpl::kScalar, kScalarOps);
  return kernel;
}

bool CpuSupports(KernelImpl impl) {
#if defined(__x86_64__) || defined(__i386__)
  switch (impl) {
    case KernelImpl::kScalar:
      return true;
    case KernelImpl::kAvx2:
      return __builtin_cpu_supports("avx2") != 0;
    case KernelImpl::kAvx512:
      return __builtin_cpu_supports("avx512f") != 0;
  }
  return false;
#else
  return impl == KernelImpl::kScalar;
#endif
}

bool ForceScalarFromEnv() {
  const char* value = std::getenv("SRTREE_FORCE_SCALAR_KERNEL");
  if (value == nullptr || value[0] == '\0') return false;
  return !(value[0] == '0' && value[1] == '\0');
}

const DistanceKernel* SelectKernel() {
  if (ForceScalarFromEnv()) return &ScalarKernel();
  if (const DistanceKernel* k = GetDistanceKernelFor(KernelImpl::kAvx512)) {
    return k;
  }
  if (const DistanceKernel* k = GetDistanceKernelFor(KernelImpl::kAvx2)) {
    return k;
  }
  return &ScalarKernel();
}

}  // namespace

namespace kernel_internal {
// Defined in kernel_avx2.cc / kernel_avx512.cc; nullptr when that
// implementation is compiled out (SRTREE_SIMD=OFF, non-x86, old compiler).
const KernelOps* GetAvx2Ops();
const KernelOps* GetAvx512Ops();
}  // namespace kernel_internal

const char* KernelImplName(KernelImpl impl) {
  switch (impl) {
    case KernelImpl::kScalar:
      return "scalar";
    case KernelImpl::kAvx2:
      return "avx2";
    case KernelImpl::kAvx512:
      return "avx512";
  }
  return "unknown";
}

void DistanceKernel::SquaredL2ToManyBounded(PointView query,
                                            const SoaBlock& block,
                                            double bound_sq,
                                            double* out) const {
  DCHECK_EQ(static_cast<int>(query.size()), block.dim);
  if (bound_sq == std::numeric_limits<double>::infinity() ||
      !PartialDistancePruningEnabled()) {
    ops_.squared_l2_to_many(query.data(), block, out);
    return;
  }
  ops_.squared_l2_to_many_bounded(query.data(), block, bound_sq, out);
}

double DistanceKernel::SquaredL2(PointView a, PointView b) const {
  DCHECK_EQ(a.size(), b.size());
  return kernel_detail::ScalarSquaredL2(a.data(), b.data(), a.size());
}

double DistanceKernel::L2(PointView a, PointView b) const {
  return std::sqrt(SquaredL2(a, b));
}

double DistanceKernel::MinDistSqToRect(PointView q, const Rect& rect) const {
  DCHECK_EQ(static_cast<int>(q.size()), rect.dim());
  return kernel_detail::ScalarMinDistSqRect(q.data(), rect.lo().data(),
                                            rect.hi().data(), q.size());
}

double DistanceKernel::MaxDistSqToRect(PointView q, const Rect& rect) const {
  DCHECK_EQ(static_cast<int>(q.size()), rect.dim());
  return kernel_detail::ScalarMaxDistSqRect(q.data(), rect.lo().data(),
                                            rect.hi().data(), q.size());
}

double DistanceKernel::MinDistToSphere(PointView q,
                                       const Sphere& sphere) const {
  DCHECK_EQ(static_cast<int>(q.size()), sphere.dim());
  return kernel_detail::ScalarSphereMinDist(q.data(), sphere.center().data(),
                                            q.size(), sphere.radius());
}

double DistanceKernel::MaxDistToSphere(PointView q,
                                       const Sphere& sphere) const {
  DCHECK_EQ(static_cast<int>(q.size()), sphere.dim());
  return kernel_detail::ScalarSphereMaxDist(q.data(), sphere.center().data(),
                                            q.size(), sphere.radius());
}

const DistanceKernel& GetDistanceKernel() {
  static const DistanceKernel* kernel = SelectKernel();
  return *kernel;
}

const DistanceKernel* GetDistanceKernelFor(KernelImpl impl) {
  switch (impl) {
    case KernelImpl::kScalar:
      return &ScalarKernel();
    case KernelImpl::kAvx2: {
      const KernelOps* ops = kernel_internal::GetAvx2Ops();
      if (ops == nullptr || !CpuSupports(impl)) return nullptr;
      static const DistanceKernel kernel(KernelImpl::kAvx2, *ops);
      return &kernel;
    }
    case KernelImpl::kAvx512: {
      const KernelOps* ops = kernel_internal::GetAvx512Ops();
      if (ops == nullptr || !CpuSupports(impl)) return nullptr;
      static const DistanceKernel kernel(KernelImpl::kAvx512, *ops);
      return &kernel;
    }
  }
  return nullptr;
}

std::vector<KernelImpl> AvailableKernelImpls() {
  std::vector<KernelImpl> impls;
  for (const KernelImpl impl :
       {KernelImpl::kScalar, KernelImpl::kAvx2, KernelImpl::kAvx512}) {
    if (GetDistanceKernelFor(impl) != nullptr) impls.push_back(impl);
  }
  return impls;
}

bool SetPartialDistancePruning(bool enabled) {
  return g_partial_pruning.exchange(enabled);
}

bool PartialDistancePruningEnabled() {
  return g_partial_pruning.load(std::memory_order_relaxed);
}

}  // namespace srtree
