// Points and Euclidean distance primitives.
//
// A point is a flat span of doubles; indices never own coordinate storage
// beyond their pages, so the cheap non-owning view keeps hot loops free of
// allocation. `Point` (an owning vector) is used at API boundaries.
//
// The free distance functions below are DEPRECATED thin wrappers over the
// DistanceKernel's canonical scalar cores (src/geometry/kernel_detail.h).
// Hot-path code calls the kernel (src/geometry/kernel.h) instead — batched
// over SoA blocks where possible, GetDistanceKernel().SquaredL2()/L2() for
// singles — and srlint rule R7 forbids the wrappers under the index-
// structure directories.

#ifndef SRTREE_GEOMETRY_POINT_H_
#define SRTREE_GEOMETRY_POINT_H_

#include <cmath>
#include <span>
#include <vector>

#include "src/common/check.h"
#include "src/geometry/kernel_detail.h"

namespace srtree {

using Point = std::vector<double>;
using PointView = std::span<const double>;

// Squared L2 distance between two points of equal dimensionality.
[[deprecated("use GetDistanceKernel().SquaredL2() (src/geometry/kernel.h)")]]
inline double SquaredDistance(PointView a, PointView b) {
  DCHECK_EQ(a.size(), b.size());
  return kernel_detail::ScalarSquaredL2(a.data(), b.data(), a.size());
}

// L2 distance between two points of equal dimensionality.
[[deprecated("use GetDistanceKernel().L2() (src/geometry/kernel.h)")]]
inline double Distance(PointView a, PointView b) {
  DCHECK_EQ(a.size(), b.size());
  return std::sqrt(kernel_detail::ScalarSquaredL2(a.data(), b.data(),
                                                  a.size()));
}

}  // namespace srtree

#endif  // SRTREE_GEOMETRY_POINT_H_
