// Points and Euclidean distance primitives.
//
// A point is a flat span of doubles; indices never own coordinate storage
// beyond their pages, so the cheap non-owning view keeps hot loops free of
// allocation. `Point` (an owning vector) is used at API boundaries.

#ifndef SRTREE_GEOMETRY_POINT_H_
#define SRTREE_GEOMETRY_POINT_H_

#include <cmath>
#include <span>
#include <vector>

#include "src/common/check.h"

namespace srtree {

using Point = std::vector<double>;
using PointView = std::span<const double>;

// Squared L2 distance between two points of equal dimensionality.
inline double SquaredDistance(PointView a, PointView b) {
  DCHECK_EQ(a.size(), b.size());
  double sum = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    const double d = a[i] - b[i];
    sum += d * d;
  }
  return sum;
}

// L2 distance between two points of equal dimensionality.
inline double Distance(PointView a, PointView b) {
  return std::sqrt(SquaredDistance(a, b));
}

}  // namespace srtree

#endif  // SRTREE_GEOMETRY_POINT_H_
