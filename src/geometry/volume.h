// Exact volumes of high-dimensional balls.
//
// Section 3 of the paper compares the average *volume* of bounding spheres
// and bounding rectangles; the D-ball volume V_D(r) = pi^{D/2} r^D /
// Gamma(D/2 + 1) shrinks super-exponentially with D, which is exactly the
// effect the SR-tree exploits. Computed in log space to stay finite at
// D = 64.

#ifndef SRTREE_GEOMETRY_VOLUME_H_
#define SRTREE_GEOMETRY_VOLUME_H_

namespace srtree {

// Volume of the unit ball in `dim` dimensions.
double UnitBallVolume(int dim);

// Volume of a ball of radius `radius` in `dim` dimensions.
double BallVolume(int dim, double radius);

// log(V) of a ball; safe when the plain volume would underflow to zero.
double LogBallVolume(int dim, double radius);

}  // namespace srtree

#endif  // SRTREE_GEOMETRY_VOLUME_H_
