// Concurrent batch-query engine.
//
// A QueryEngine owns a PointIndex (frozen while the engine drives it) plus a
// fixed pool of worker threads, and executes batches of queries through the
// thread-safe Search() read path. Scheduling is work-stealing: a batch is cut
// into contiguous chunks of `steal_grain` queries, dealt round-robin to
// per-worker deques; an owner pops from the front of its own deque and a
// thief steals from the back of a victim's, so contention concentrates on
// opposite ends. Results are written by query position, which makes RunBatch
// deterministic: the output is byte-identical to a sequential loop no matter
// how chunks are scheduled or stolen.
//
// Thread-safety contract: the engine never mutates the index, and RunBatch
// serializes callers, so the only concurrent accesses are const Search()
// traversals — re-entrant by the PointIndex contract.

#ifndef SRTREE_ENGINE_QUERY_ENGINE_H_
#define SRTREE_ENGINE_QUERY_ENGINE_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <memory>
#include <mutex>
#include <span>
#include <thread>
#include <vector>

#include "src/geometry/point.h"
#include "src/index/point_index.h"
#include "src/index/query.h"
#include "src/storage/io_stats.h"

namespace srtree {

// One unit of batch work: the query point and what to run on it.
struct Query {
  Point point;
  QuerySpec spec;
};

struct EngineOptions {
  // Worker threads in the pool; clamped to >= 1. Hardware concurrency is a
  // reasonable default for throughput benches.
  int num_workers = 1;
  // When > 0, attaches a sharded BufferPool of this many pages to the index
  // for the engine's lifetime (detached again by ReleaseIndex()).
  size_t buffer_pool_pages = 0;
  // Queries per scheduling chunk. Small grains steal better under skewed
  // per-query cost; large grains amortize deque locking.
  size_t steal_grain = 16;
};

// Aggregate accounting for the most recent RunBatch() call.
struct BatchStats {
  size_t queries = 0;
  size_t chunks = 0;
  size_t steals = 0;         // chunks executed by a non-owner worker
  double wall_seconds = 0.0; // whole-batch wall time on the calling thread
  IoStatsDelta io;           // sum of the per-query deltas
};

class QueryEngine {
 public:
  explicit QueryEngine(std::unique_ptr<PointIndex> index,
                       const EngineOptions& options = {});
  ~QueryEngine();

  QueryEngine(const QueryEngine&) = delete;
  QueryEngine& operator=(const QueryEngine&) = delete;

  // Runs every query and returns results in query order: results[i] is
  // queries[i]'s QueryResult, complete with per-query IoStatsDelta and
  // wall-clock latency. Callers may invoke RunBatch concurrently; batches
  // are serialized internally.
  std::vector<QueryResult> RunBatch(std::span<const Query> queries);

  const PointIndex& index() const { return *index_; }
  int num_workers() const { return static_cast<int>(workers_.size()); }

  // Accounting for the last completed batch (call after RunBatch returns).
  BatchStats last_batch_stats() const;

  // Detaches the buffer pool and hands the index back; the engine accepts
  // no further batches. Lets one built tree move between engine configs.
  std::unique_ptr<PointIndex> ReleaseIndex();

 private:
  // Contiguous range [begin, end) of query indices, tagged with the worker
  // deque it was dealt to so executed-by-thief chunks can be counted.
  struct Chunk {
    size_t begin = 0;
    size_t end = 0;
    int owner = 0;
  };

  struct WorkerQueue {
    std::mutex mu;
    std::deque<Chunk> chunks;
  };

  void WorkerLoop(int worker_id);
  // Owner end: pop the front of our own deque.
  bool PopLocal(int worker_id, Chunk& out);
  // Thief end: scan the other deques, stealing from the back.
  bool StealFrom(int worker_id, Chunk& out);
  void RunChunk(const Chunk& chunk, int worker_id);

  std::unique_ptr<PointIndex> index_;
  EngineOptions options_;

  std::vector<std::unique_ptr<WorkerQueue>> queues_;
  std::vector<std::thread> workers_;

  // Batch state, valid between dispatch and completion of one epoch.
  std::mutex batch_mu_;            // serializes RunBatch callers
  std::mutex mu_;                  // guards the epoch/progress fields below
  std::condition_variable work_cv_;  // workers wait here between batches
  std::condition_variable done_cv_;  // RunBatch waits here for completion
  uint64_t epoch_ = 0;
  bool shutdown_ = false;
  std::span<const Query> batch_queries_;
  std::vector<QueryResult>* batch_results_ = nullptr;
  size_t chunks_remaining_ = 0;
  size_t steals_ = 0;

  mutable std::mutex stats_mu_;
  BatchStats last_stats_;
};

}  // namespace srtree

#endif  // SRTREE_ENGINE_QUERY_ENGINE_H_
