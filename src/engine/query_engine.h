// Concurrent batch-query engine.
//
// A QueryEngine owns a PointIndex plus a fixed pool of worker threads, and
// executes batches of queries through the thread-safe snapshot read path.
// Scheduling is work-stealing: a batch is cut into contiguous chunks of
// `steal_grain` queries, dealt round-robin to per-worker deques; an owner
// pops from the front of its own deque and a thief steals from the back of
// a victim's, so contention concentrates on opposite ends. Results are
// written by query position, which makes RunBatch deterministic: the output
// is byte-identical to a sequential loop no matter how chunks are scheduled
// or stolen.
//
// Snapshot isolation: RunBatch acquires ONE IndexSnapshot for the whole
// batch and every worker queries through it, so all results are evaluated
// against the same pinned version — byte-identical to a sequential loop
// over that snapshot even while a writer commits mid-batch (SR-tree; for
// the frozen-tree structures the snapshot is a pass-through and the old
// no-mutation contract still applies). The engine itself never mutates the
// index, and RunBatch serializes callers.

#ifndef SRTREE_ENGINE_QUERY_ENGINE_H_
#define SRTREE_ENGINE_QUERY_ENGINE_H_

#include <cstddef>
#include <deque>
#include <memory>
#include <span>
#include <thread>
#include <vector>

#include "src/base/mutex.h"
#include "src/base/thread_annotations.h"
#include "src/geometry/point.h"
#include "src/index/point_index.h"
#include "src/index/query.h"
#include "src/storage/io_stats.h"

namespace srtree {

// One unit of batch work: the query point and what to run on it.
struct Query {
  Point point;
  QuerySpec spec;
};

struct EngineOptions {
  // Worker threads in the pool; clamped to >= 1. Hardware concurrency is a
  // reasonable default for throughput benches.
  int num_workers = 1;
  // When > 0, attaches a sharded BufferPool of this many pages to the index
  // for the engine's lifetime (detached again by ReleaseIndex()).
  size_t buffer_pool_pages = 0;
  // Queries per scheduling chunk. Small grains steal better under skewed
  // per-query cost; large grains amortize deque locking.
  size_t steal_grain = 16;
};

// Aggregate accounting for the most recent RunBatch() call.
struct BatchStats {
  size_t queries = 0;
  size_t chunks = 0;
  size_t steals = 0;         // chunks executed by a non-owner worker
  double wall_seconds = 0.0; // whole-batch wall time on the calling thread
  IoStatsDelta io;           // sum of the per-query deltas
};

class QueryEngine {
 public:
  explicit QueryEngine(std::unique_ptr<PointIndex> index,
                       const EngineOptions& options = {});
  ~QueryEngine();

  QueryEngine(const QueryEngine&) = delete;
  QueryEngine& operator=(const QueryEngine&) = delete;

  // Runs every query and returns results in query order: results[i] is
  // queries[i]'s QueryResult, complete with per-query IoStatsDelta and
  // wall-clock latency. Callers may invoke RunBatch concurrently; batches
  // are serialized internally.
  std::vector<QueryResult> RunBatch(std::span<const Query> queries)
      EXCLUDES(batch_mu_, mu_, stats_mu_);

  const PointIndex& index() const { return *index_; }
  int num_workers() const { return static_cast<int>(workers_.size()); }

  // Accounting for the last completed batch (call after RunBatch returns).
  BatchStats last_batch_stats() const EXCLUDES(stats_mu_);

  // Detaches the buffer pool and hands the index back; the engine accepts
  // no further batches. Lets one built tree move between engine configs.
  std::unique_ptr<PointIndex> ReleaseIndex() EXCLUDES(batch_mu_);

 private:
  // Contiguous range [begin, end) of query indices, tagged with the worker
  // deque it was dealt to (so executed-by-thief chunks can be counted) and
  // the epoch that dispatched it. The epoch tag is the cross-batch safety
  // net: a worker only pops chunks whose epoch matches the batch state it
  // snapshotted, so a chunk dealt by the *next* RunBatch can never run
  // against the previous batch's (by then destroyed) results vector.
  struct Chunk {
    size_t begin = 0;
    size_t end = 0;
    int owner = 0;
    uint64_t epoch = 0;
  };

  struct WorkerQueue {
    Mutex mu;
    std::deque<Chunk> chunks GUARDED_BY(mu);
  };

  void WorkerLoop(int worker_id);
  // Owner end: pop the front of our own deque. Only pops chunks dispatched
  // for `epoch`; a newer chunk is left in place for the worker to pick up
  // after it re-snapshots the batch state.
  bool PopLocal(int worker_id, uint64_t epoch, Chunk& out);
  // Thief end: scan the other deques, stealing from the back. Same epoch
  // filter as PopLocal.
  bool StealFrom(int worker_id, uint64_t epoch, Chunk& out);
  // Executes one chunk against snapshots of the batch state: the worker
  // copies `batch_queries_`/`batch_results_`/`batch_snapshot_` out under
  // mu_ when it observes the new epoch, so the per-query loop runs without
  // touching guarded members (and without the lock). The snapshots are only
  // ever applied to chunks carrying the same epoch tag (enforced by
  // PopLocal/StealFrom).
  void RunChunk(const Chunk& chunk, std::span<const Query> queries,
                const IndexSnapshot& snapshot,
                std::vector<QueryResult>& results);

  // EngineOptions with num_workers and steal_grain clamped to >= 1, so
  // options_ can be initialized (and stay) const.
  static EngineOptions Sanitized(EngineOptions options);

  // Written in the constructor and by ReleaseIndex() only; workers read it
  // exclusively inside an epoch, which RunBatch brackets while holding
  // batch_mu_ — the same lock ReleaseIndex() takes. Search() is const and
  // re-entrant by the PointIndex contract, so traversals need no lock.
  std::unique_ptr<PointIndex> index_ UNGUARDED_OK(
      "written by ctor and batch_mu_-serialized ReleaseIndex only");
  const EngineOptions options_;

  std::vector<std::unique_ptr<WorkerQueue>> queues_;
  std::vector<std::thread> workers_ UNGUARDED_OK(
      "spawned in the constructor, joined in the destructor");

  // Capability map: batch_mu_ serializes RunBatch/ReleaseIndex callers and
  // guards no data; mu_ guards the epoch/progress fields below, which are
  // valid between dispatch and completion of one epoch; each WorkerQueue's
  // mu guards its deque; stats_mu_ guards last_stats_.
  Mutex batch_mu_;
  Mutex mu_;
  CondVar work_cv_;  // workers wait here between batches
  CondVar done_cv_;  // RunBatch waits here for completion
  uint64_t epoch_ GUARDED_BY(mu_) = 0;
  bool shutdown_ GUARDED_BY(mu_) = false;
  std::span<const Query> batch_queries_ GUARDED_BY(mu_);
  std::vector<QueryResult>* batch_results_ GUARDED_BY(mu_) = nullptr;
  // The one pinned view every chunk of the current batch queries. Shared
  // ownership (not a raw pointer borrowed from the RunBatch frame): each
  // worker copies the handle under mu_, so the snapshot provably outlives
  // every chunk no matter how the drain interleaves — srcheck rule C5
  // rejects the borrowed-pointer shape.
  std::shared_ptr<const IndexSnapshot> batch_snapshot_ GUARDED_BY(mu_);
  size_t chunks_remaining_ GUARDED_BY(mu_) = 0;
  size_t steals_ GUARDED_BY(mu_) = 0;

  mutable Mutex stats_mu_;
  BatchStats last_stats_ GUARDED_BY(stats_mu_);
};

}  // namespace srtree

#endif  // SRTREE_ENGINE_QUERY_ENGINE_H_
