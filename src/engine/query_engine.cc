#include "src/engine/query_engine.h"

#include <algorithm>
#include <utility>

#include "src/common/check.h"
#include "src/common/timer.h"

namespace srtree {

EngineOptions QueryEngine::Sanitized(EngineOptions options) {
  options.num_workers = std::max(1, options.num_workers);
  options.steal_grain = std::max<size_t>(1, options.steal_grain);
  return options;
}

QueryEngine::QueryEngine(std::unique_ptr<PointIndex> index,
                         const EngineOptions& options)
    : index_(std::move(index)), options_(Sanitized(options)) {
  CHECK(index_ != nullptr);
  if (options_.buffer_pool_pages > 0) {
    index_->UseBufferPool(options_.buffer_pool_pages);
  }
  queues_.reserve(options_.num_workers);
  for (int i = 0; i < options_.num_workers; ++i) {
    queues_.push_back(std::make_unique<WorkerQueue>());
  }
  workers_.reserve(options_.num_workers);
  for (int i = 0; i < options_.num_workers; ++i) {
    workers_.emplace_back(&QueryEngine::WorkerLoop, this, i);
  }
}

QueryEngine::~QueryEngine() {
  {
    MutexLock lock(mu_);
    shutdown_ = true;
  }
  work_cv_.NotifyAll();
  for (std::thread& t : workers_) t.join();
}

std::vector<QueryResult> QueryEngine::RunBatch(
    std::span<const Query> queries) {
  MutexLock batch_lock(batch_mu_);
  CHECK(index_ != nullptr);  // ReleaseIndex() ends the engine's service life

  const WallTimer timer;
  std::vector<QueryResult> results(queries.size());
  size_t total_chunks = 0;
  if (!queries.empty()) {
    // One pinned view for the whole batch: every chunk — owned or stolen,
    // on any worker — queries the same committed version, so the results
    // are byte-identical to a sequential loop over this snapshot even if a
    // writer commits while the batch drains. Shared ownership: workers copy
    // the handle under mu_, so the view stays alive for every chunk even on
    // schedules where a worker is still draining after RunBatch resets the
    // published copy below.
    const std::shared_ptr<const IndexSnapshot> snapshot =
        index_->AcquireSnapshot();
    // Deal contiguous chunks round-robin across the worker deques.
    const size_t grain = options_.steal_grain;
    {
      MutexLock lock(mu_);
      ++epoch_;
      batch_queries_ = queries;
      batch_results_ = &results;
      batch_snapshot_ = snapshot;
      steals_ = 0;
      int next_worker = 0;
      for (size_t begin = 0; begin < queries.size(); begin += grain) {
        const size_t end = std::min(queries.size(), begin + grain);
        WorkerQueue& q = *queues_[next_worker];
        {
          MutexLock qlock(q.mu);
          q.chunks.push_back(Chunk{begin, end, next_worker, epoch_});
        }
        next_worker = (next_worker + 1) % static_cast<int>(queues_.size());
        ++total_chunks;
      }
      chunks_remaining_ = total_chunks;
    }
    work_cv_.NotifyAll();
    {
      // Explicit wait loop (not a predicate lambda) so the analysis sees
      // the guarded read of chunks_remaining_ under mu_.
      MutexLock lock(mu_);
      while (chunks_remaining_ != 0) done_cv_.Wait(mu_);
      batch_results_ = nullptr;
      batch_queries_ = {};
      batch_snapshot_ = nullptr;
    }
  }

  BatchStats stats;
  stats.queries = queries.size();
  stats.chunks = total_chunks;
  stats.wall_seconds = timer.ElapsedSeconds();
  {
    MutexLock lock(mu_);
    stats.steals = steals_;
  }
  for (const QueryResult& r : results) stats.io.MergeFrom(r.io);
  {
    MutexLock lock(stats_mu_);
    last_stats_ = stats;
  }
  return results;
}

BatchStats QueryEngine::last_batch_stats() const {
  MutexLock lock(stats_mu_);
  return last_stats_;
}

std::unique_ptr<PointIndex> QueryEngine::ReleaseIndex() {
  MutexLock batch_lock(batch_mu_);
  if (index_ != nullptr && options_.buffer_pool_pages > 0) {
    index_->UseBufferPool(0);
  }
  return std::move(index_);
}

void QueryEngine::WorkerLoop(int worker_id) {
  uint64_t seen_epoch = 0;
  while (true) {
    // The batch state is snapshotted under mu_ so RunChunk below can index
    // into it without the lock. The snapshot is only valid for chunks of
    // epoch `seen_epoch`: once the last such chunk is done, RunBatch may
    // return and the caller may dispatch the next batch while this worker
    // is still in its drain loop. PopLocal/StealFrom therefore filter by
    // epoch — a newer chunk bounces the worker back to the wait loop to
    // re-snapshot before executing it.
    std::span<const Query> queries;
    std::vector<QueryResult>* results = nullptr;
    std::shared_ptr<const IndexSnapshot> snapshot;
    {
      // Explicit wait loop (not a predicate lambda) so the analysis sees
      // the guarded reads of shutdown_/epoch_ under mu_.
      MutexLock lock(mu_);
      while (!shutdown_ && epoch_ == seen_epoch) work_cv_.Wait(mu_);
      if (shutdown_) return;
      seen_epoch = epoch_;
      queries = batch_queries_;
      results = batch_results_;
      snapshot = batch_snapshot_;
    }
    // Drain: own deque first, then steal. When both are dry *for this
    // epoch* the batch has no work left for this worker (chunks in flight
    // elsewhere finish on their executors; newer-epoch chunks are picked up
    // after re-snapshotting), so it returns to the wait loop.
    Chunk chunk;
    while (PopLocal(worker_id, seen_epoch, chunk) ||
           StealFrom(worker_id, seen_epoch, chunk)) {
      RunChunk(chunk, queries, *snapshot, *results);
      size_t remaining;
      {
        MutexLock lock(mu_);
        CHECK_GT(chunks_remaining_, 0u);
        remaining = --chunks_remaining_;
        if (chunk.owner != worker_id) ++steals_;
      }
      if (remaining == 0) done_cv_.NotifyAll();
    }
  }
}

bool QueryEngine::PopLocal(int worker_id, uint64_t epoch, Chunk& out) {
  WorkerQueue& q = *queues_[worker_id];
  MutexLock lock(q.mu);
  // A mismatched chunk belongs to a batch dispatched after the snapshot
  // this worker is executing against; leave it queued and report "dry" so
  // the caller re-snapshots first. Queues never mix epochs (RunBatch only
  // deals after the previous batch fully drained), so checking the front
  // suffices.
  if (q.chunks.empty() || q.chunks.front().epoch != epoch) return false;
  out = q.chunks.front();
  q.chunks.pop_front();
  return true;
}

bool QueryEngine::StealFrom(int worker_id, uint64_t epoch, Chunk& out) {
  const int n = static_cast<int>(queues_.size());
  for (int step = 1; step < n; ++step) {
    WorkerQueue& victim = *queues_[(worker_id + step) % n];
    MutexLock lock(victim.mu);
    if (!victim.chunks.empty() && victim.chunks.back().epoch == epoch) {
      out = victim.chunks.back();
      victim.chunks.pop_back();
      return true;
    }
  }
  return false;
}

void QueryEngine::RunChunk(const Chunk& chunk, std::span<const Query> queries,
                           const IndexSnapshot& snapshot,
                           std::vector<QueryResult>& results) {
  for (size_t i = chunk.begin; i < chunk.end; ++i) {
    const Query& q = queries[i];
    results[i] = snapshot.Search(q.point, q.spec);
  }
}

}  // namespace srtree
