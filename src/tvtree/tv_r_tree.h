// TV-tree in its fixed-telescope form (Lin, Jagadish & Faloutsos, VLDB
// Journal 1994) — the Section 2.5 related work.
//
// The TV-tree orders dimensions by significance and indexes only a few
// "active" ones, telescoping to less significant dimensions when vectors
// share exact coordinates on the active ones. As the paper notes
// (Section 2.5, citing the SS-tree authors), real-valued feature vectors
// essentially never share coordinates, so the telescoping never engages
// and "the effectiveness of the TV-tree results in only the reduction of
// dimensions". This class implements precisely that residual structure: an
// R*-tree whose directory rectangles cover only the first `active_dims`
// dimensions (boosting fanout), while leaves store full vectors so query
// results remain exact — the active-dimension MINDIST is a valid lower
// bound of the true distance.

#ifndef SRTREE_TVTREE_TV_R_TREE_H_
#define SRTREE_TVTREE_TV_R_TREE_H_

#include <deque>
#include <set>
#include <vector>

#include "src/geometry/kernel.h"
#include "src/geometry/rect.h"
#include "src/index/knn.h"
#include "src/index/point_index.h"
#include "src/storage/buffer_pool.h"
#include "src/storage/page_file.h"

namespace srtree {

class TvRTree : public PointIndex {
 public:
  struct Options {
    int dim = 2;          // full dimensionality of the stored vectors
    int active_dims = 0;  // indexed dimensions; 0 = min(8, dim)
    size_t page_size = kDefaultPageSize;
    size_t leaf_data_size = 512;
    double min_utilization = 0.4;
    double reinsert_fraction = 0.3;
  };

  explicit TvRTree(const Options& options);

  // Type tag embedded in the v2 index-image container.
  static constexpr char kImageTag[] = "tvtree";

  // Checksummed atomic image persistence (see PointIndex::Save). The image
  // records the RESOLVED active dimension count, so an index saved with
  // active_dims = 0 reopens with the same directory geometry.
  Status Save(const std::string& path) const override;
  static StatusOr<std::unique_ptr<TvRTree>> Open(const std::string& path);

  int dim() const override { return options_.dim; }
  int active_dims() const { return active_dims_; }
  size_t size() const override { return size_; }
  std::string name() const override { return "TV-tree"; }

  Status Insert(PointView point, uint32_t oid) override;
  Status Delete(PointView point, uint32_t oid) override;

  TreeStats GetTreeStats() const override;
  Status CheckInvariants() const override;
  void VisitNodes(const NodeVisitor& visitor) const override;
  AuditSpec GetAuditSpec() const override;

  // Leaf regions are rectangles in the ACTIVE subspace; their volumes and
  // diagonals are measured there.
  RegionSummary LeafRegionSummary() const override;

  MaintenanceStats GetMaintenanceStats() const override {
    return maintenance_;
  }

  // Forwarders to the page file's counters. io_stats() is the deprecated
  // unlocked reference (single-threaded benches only); the reset is locked
  // but only meaningful on a quiesced index — see PointIndex::ResetIoStats
  // for the exclusion contract the concurrent fuzzer asserts.
  const IoStats& io_stats() const override { return file_.stats(); }
  void ResetIoStats() override { file_.ResetStats(); }
  IoStats GetIoStats() const override { return file_.GetIoStats(); }

  void SimulateBufferPool(size_t capacity) override {
    file_.SimulateCache(capacity);
  }
  void UseBufferPool(size_t capacity) override {
    pool_ = capacity > 0 ? std::make_unique<BufferPool>(&file_, capacity)
                         : nullptr;
  }

  size_t leaf_capacity() const override { return leaf_cap_; }
  size_t node_capacity() const override { return node_cap_; }
  int height() const { return root_level_ + 1; }

 protected:
  std::vector<Neighbor> KnnDfsImpl(PointView query, int k,
                                   IoStatsDelta* io) const override;
  std::vector<Neighbor> KnnBestFirstImpl(PointView query, int k,
                                         IoStatsDelta* io) const override;
  std::vector<Neighbor> RangeImpl(PointView query, double radius,
                                  IoStatsDelta* io) const override;

 private:
  struct LeafEntry {
    Point point;  // full vector
    uint32_t oid;
  };

  struct NodeEntry {
    Rect rect;  // over the active dimensions only
    PageId child;
  };

  struct Node {
    PageId id = kInvalidPageId;
    int level = 0;
    std::vector<NodeEntry> children;
    std::vector<LeafEntry> points;

    bool is_leaf() const { return level == 0; }
    size_t count() const { return is_leaf() ? points.size() : children.size(); }
  };

  struct Pending {
    int level;
    LeafEntry leaf;
    NodeEntry node;
  };

  // First active_dims_ coordinates of a full vector.
  PointView ActiveView(PointView p) const {
    return p.subspan(0, static_cast<size_t>(active_dims_));
  }

  // --- page I/O ---
  Node ReadNode(PageId id, int level,
                IoStatsDelta* io = nullptr) const;
  Node PeekNode(PageId id) const;
  void WriteNode(const Node& node);
  void SerializeNode(const Node& node, char* buf) const;
  Node DeserializeNode(const char* buf, PageId id) const;

  size_t Capacity(const Node& node) const {
    return node.is_leaf() ? leaf_cap_ : node_cap_;
  }
  size_t MinEntries(const Node& node) const {
    return node.is_leaf() ? leaf_min_ : node_min_;
  }

  // --- region helpers (active subspace) ---
  Rect EntryRect(const Node& node, size_t i) const;
  Rect NodeBoundingRect(const Node& node) const;

  // --- insertion machinery (R*-tree algorithms in the active subspace) ---
  void ProcessPending(std::deque<Pending>& pending);
  void InsertPending(const Pending& item, std::deque<Pending>& pending);
  int ChooseSubtree(const Node& node, const Rect& entry_rect) const;
  void ResolvePath(std::vector<Node>& path, std::vector<int>& idx,
                   std::deque<Pending>& pending);
  void WritePathRefreshingRects(std::vector<Node>& path,
                                const std::vector<int>& idx, int from);
  std::vector<Pending> RemoveForReinsert(Node& node);
  Node SplitNode(Node& node);
  void GrowRoot(Node& left, Node& right);

  // --- deletion machinery ---
  bool FindLeafPath(const Node& node, PointView point, uint32_t oid,
                    std::vector<Node>& path, std::vector<int>& idx);
  void CondenseTree(std::vector<Node>& path, std::vector<int>& idx);
  void ShrinkRoot();

  // --- search ---
  void SearchKnn(PageId id, int level, PointView query,
                 KnnCandidates& cand, KernelScratch& scratch,
                 IoStatsDelta* io) const;
  void SearchRange(PageId id, int level, PointView query,
                   double radius, std::vector<Neighbor>& out,
                   KernelScratch& scratch, IoStatsDelta* io) const;

  // --- validation / stats ---
  void VisitSubtree(const Node& node, std::vector<int>& path,
                    const NodeVisitor& visitor) const;
  void CollectStats(const Node& node, TreeStats& stats) const;
  void CollectRegions(const Node& node, RegionStatsCollector& collector) const;

  Options options_;
  int active_dims_;
  size_t leaf_cap_;
  size_t node_cap_;
  size_t leaf_min_;
  size_t node_min_;

  mutable PageFile file_;
  // Optional warm cache on the query path (UseBufferPool); WriteNode
  // invalidates its frames so single-writer mutation stays coherent.
  std::unique_ptr<BufferPool> pool_;
  PageId root_id_;
  int root_level_ = 0;
  size_t size_ = 0;
  MaintenanceStats maintenance_;
  std::set<int> reinserted_levels_;
};

}  // namespace srtree

#endif  // SRTREE_TVTREE_TV_R_TREE_H_
