// Wall-clock and per-process CPU timers used by the experiment harness.
//
// The paper reports CPU time per operation; CpuTimer reads
// CLOCK_PROCESS_CPUTIME_ID, the closest modern equivalent. WallTimer is used
// for coarse progress reporting only.

#ifndef SRTREE_COMMON_TIMER_H_
#define SRTREE_COMMON_TIMER_H_

#include <time.h>

#include <chrono>

namespace srtree {

// Elapsed wall-clock time since construction or the last Reset().
class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}

  void Reset() { start_ = Clock::now(); }

  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

// Elapsed CPU time consumed by this process since construction/Reset().
class CpuTimer {
 public:
  CpuTimer() { Reset(); }

  void Reset() { start_ = Now(); }

  double ElapsedSeconds() const { return Now() - start_; }

  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  static double Now() {
    timespec ts;
    clock_gettime(CLOCK_PROCESS_CPUTIME_ID, &ts);
    return static_cast<double>(ts.tv_sec) + 1e-9 * ts.tv_nsec;
  }

  double start_ = 0.0;
};

}  // namespace srtree

#endif  // SRTREE_COMMON_TIMER_H_
