// Minimal command-line flag parsing for bench and example binaries.
//
// Supports "--name value", "--name=value", and boolean "--name". Unknown
// flags are an error so typos in experiment scripts fail loudly instead of
// silently running the default configuration.

#ifndef SRTREE_COMMON_FLAGS_H_
#define SRTREE_COMMON_FLAGS_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "src/common/status.h"

namespace srtree {

class FlagParser {
 public:
  // Registers a flag with a default value and a help line. Returns *this so
  // registrations chain.
  FlagParser& AddString(const std::string& name, const std::string& def,
                        const std::string& help);
  FlagParser& AddInt(const std::string& name, int64_t def,
                     const std::string& help);
  FlagParser& AddDouble(const std::string& name, double def,
                        const std::string& help);
  FlagParser& AddBool(const std::string& name, bool def,
                      const std::string& help);

  // Parses argv. On "--help", prints usage and returns a NotFound status the
  // caller should treat as "exit 0".
  Status Parse(int argc, char** argv);

  std::string GetString(const std::string& name) const;
  int64_t GetInt(const std::string& name) const;
  double GetDouble(const std::string& name) const;
  bool GetBool(const std::string& name) const;

  // Parses a comma-separated integer list flag, e.g. "--sizes 1000,2000".
  std::vector<int64_t> GetIntList(const std::string& name) const;

  std::string Usage() const;

 private:
  enum class Type { kString, kInt, kDouble, kBool };

  struct Flag {
    Type type;
    std::string value;
    std::string help;
  };

  const Flag& Find(const std::string& name, Type type) const;

  std::map<std::string, Flag> flags_;
};

}  // namespace srtree

#endif  // SRTREE_COMMON_FLAGS_H_
