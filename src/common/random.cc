#include "src/common/random.h"

#include <algorithm>
#include <cmath>

#include "src/common/check.h"

namespace srtree {
namespace {

uint64_t SplitMix64(uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Xoshiro256::Xoshiro256(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& word : s_) word = SplitMix64(sm);
}

uint64_t Xoshiro256::Next() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

double Xoshiro256::NextDouble() {
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

double Xoshiro256::Uniform(double lo, double hi) {
  return lo + (hi - lo) * NextDouble();
}

uint64_t Xoshiro256::NextBounded(uint64_t bound) {
  CHECK_GT(bound, 0u);
  // Rejection sampling to avoid modulo bias.
  const uint64_t threshold = -bound % bound;
  for (;;) {
    const uint64_t r = Next();
    if (r >= threshold) return r % bound;
  }
}

double Xoshiro256::Gaussian() {
  if (has_cached_gaussian_) {
    has_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  double u, v, s;
  do {
    u = Uniform(-1.0, 1.0);
    v = Uniform(-1.0, 1.0);
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double factor = std::sqrt(-2.0 * std::log(s) / s);
  cached_gaussian_ = v * factor;
  has_cached_gaussian_ = true;
  return u * factor;
}

double Xoshiro256::Gamma(double shape) {
  CHECK_GT(shape, 0.0);
  if (shape < 1.0) {
    // Boost to shape+1 and scale back (Marsaglia-Tsang augmentation).
    const double u = NextDouble();
    return Gamma(shape + 1.0) * std::pow(u, 1.0 / shape);
  }
  const double d = shape - 1.0 / 3.0;
  const double c = 1.0 / std::sqrt(9.0 * d);
  for (;;) {
    double x, v;
    do {
      x = Gaussian();
      v = 1.0 + c * x;
    } while (v <= 0.0);
    v = v * v * v;
    const double u = NextDouble();
    if (u < 1.0 - 0.0331 * x * x * x * x) return d * v;
    if (u > 0.0 && std::log(u) < 0.5 * x * x + d * (1.0 - v + std::log(v))) {
      return d * v;
    }
  }
}

std::vector<double> Xoshiro256::OnUnitSphere(int dim) {
  CHECK_GT(dim, 0);
  std::vector<double> p(dim);
  if (dim == 1) {
    // The 0-sphere is the pair {-1, +1}.
    p[0] = NextDouble() < 0.5 ? -1.0 : 1.0;
    return p;
  }
  double norm_sq = 0.0;
  do {
    norm_sq = 0.0;
    for (double& coord : p) {
      coord = Gaussian();
      norm_sq += coord * coord;
    }
  } while (norm_sq == 0.0);
  const double inv_norm = 1.0 / std::sqrt(norm_sq);
  for (double& coord : p) coord *= inv_norm;
  return p;
}

ZipfTable::ZipfTable(int n, double exponent) {
  CHECK_GT(n, 0);
  CHECK_GT(exponent, 0.0);
  cdf_.resize(n);
  double total = 0.0;
  for (int rank = 0; rank < n; ++rank) {
    total += 1.0 / std::pow(static_cast<double>(rank + 1), exponent);
    cdf_[rank] = total;
  }
  for (double& c : cdf_) c /= total;
}

int ZipfTable::Sample(Xoshiro256& rng) const {
  const double u = rng.NextDouble();
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  if (it == cdf_.end()) return static_cast<int>(cdf_.size()) - 1;
  return static_cast<int>(it - cdf_.begin());
}

}  // namespace srtree
