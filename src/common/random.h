// Deterministic pseudo-random number generation for workloads and tests.
//
// All experiment code draws randomness through Xoshiro256ss so that a seed
// fully determines a dataset/query workload, independent of the standard
// library implementation (std::mt19937 distributions are not portable
// across standard libraries).

#ifndef SRTREE_COMMON_RANDOM_H_
#define SRTREE_COMMON_RANDOM_H_

#include <cstdint>
#include <vector>

namespace srtree {

// xoshiro256** 1.0 by Blackman & Vigna (public domain), seeded via
// SplitMix64. Fast, high quality, and trivially reproducible.
class Xoshiro256 {
 public:
  explicit Xoshiro256(uint64_t seed);

  uint64_t Next();

  // Uniform double in [0, 1).
  double NextDouble();

  // Uniform double in [lo, hi).
  double Uniform(double lo, double hi);

  // Uniform integer in [0, bound). bound must be > 0.
  uint64_t NextBounded(uint64_t bound);

  // Standard normal via the polar Box-Muller method.
  double Gaussian();

  // Gamma(shape, 1) via Marsaglia-Tsang; used by the Dirichlet sampler in
  // the histogram workload.
  double Gamma(double shape);

  // Point drawn uniformly from the surface of the unit (dim-1)-sphere.
  std::vector<double> OnUnitSphere(int dim);

  // Zipf-distributed integer in [0, n) with exponent s (s > 0); rank 0 is
  // the most popular. Uses an inverse-CDF table, so construct once per
  // workload via ZipfTable below when n is large.
  uint64_t state0() const { return s_[0]; }

 private:
  uint64_t s_[4];
  bool has_cached_gaussian_ = false;
  double cached_gaussian_ = 0.0;
};

// Precomputed inverse-CDF sampler for a Zipf distribution over n ranks.
class ZipfTable {
 public:
  ZipfTable(int n, double exponent);

  // Samples a rank in [0, n).
  int Sample(Xoshiro256& rng) const;

  int size() const { return static_cast<int>(cdf_.size()); }

 private:
  std::vector<double> cdf_;
};

}  // namespace srtree

#endif  // SRTREE_COMMON_RANDOM_H_
