// Status / StatusOr: exception-free error propagation, RocksDB style.
//
// Library entry points that can fail return a Status (or a StatusOr<T> when
// they also produce a value). Internal invariant violations use CHECK
// instead; Status is reserved for conditions a caller can reasonably hit,
// e.g. deleting a point that is not in the index.

#ifndef SRTREE_COMMON_STATUS_H_
#define SRTREE_COMMON_STATUS_H_

#include <string>
#include <utility>

#include "src/common/check.h"

namespace srtree {

enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kCorruption,
  kIoError,
  kFailedPrecondition,
  kUnimplemented,
};

// Value-semantic error holder. Ok statuses are cheap (no allocation).
//
// The class itself is [[nodiscard]]: any function returning a Status makes
// the caller acknowledge the result. A deliberately ignored Status must be
// waived in the project's greppable form
//
//     (void)index.Insert(p, oid);  // srcheck: allow(C1) <reason>
//
// which the srcheck C1 rule (tools/srcheck.py) recognizes; a bare (void)
// cast without the comment is still a finding.
class [[nodiscard]] Status {
 public:
  Status() : code_(StatusCode::kOk) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  bool IsNotFound() const { return code_ == StatusCode::kNotFound; }
  bool IsInvalidArgument() const {
    return code_ == StatusCode::kInvalidArgument;
  }
  bool IsCorruption() const { return code_ == StatusCode::kCorruption; }
  bool IsUnimplemented() const { return code_ == StatusCode::kUnimplemented; }

  // Human-readable "<CODE>: <message>" string for logs and test failures.
  std::string ToString() const;

 private:
  Status(StatusCode code, std::string msg)
      : code_(code), message_(std::move(msg)) {}

  StatusCode code_;
  std::string message_;
};

// Holds either a value or the Status explaining why there is none.
// [[nodiscard]] for the same reason as Status: dropping one on the floor
// silently discards the error path.
template <typename T>
class [[nodiscard]] StatusOr {
 public:
  StatusOr(Status status) : status_(std::move(status)) {  // NOLINT
    CHECK(!status_.ok());
  }
  StatusOr(T value) : value_(std::move(value)) {}  // NOLINT

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    CHECK(ok());
    return value_;
  }
  T& value() & {
    CHECK(ok());
    return value_;
  }
  T&& value() && {
    CHECK(ok());
    return std::move(value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_;
  T value_{};
};

// Propagates a non-ok Status to the caller.
#define RETURN_IF_ERROR(expr)            \
  do {                                   \
    ::srtree::Status _st = (expr);       \
    if (!_st.ok()) return _st;           \
  } while (0)

}  // namespace srtree

#endif  // SRTREE_COMMON_STATUS_H_
