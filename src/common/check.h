// Lightweight assertion macros in the spirit of glog's CHECK family.
//
// CHECK* macros are always on; DCHECK* compile to no-ops in NDEBUG builds.
// A failed check prints the failing condition with its source location and
// aborts, which is the appropriate response to a broken internal invariant
// in a storage engine (continuing would corrupt pages).

#ifndef SRTREE_COMMON_CHECK_H_
#define SRTREE_COMMON_CHECK_H_

#include <cstdio>
#include <cstdlib>

#define SRTREE_CHECK_IMPL(condition, text)                                 \
  do {                                                                     \
    if (!(condition)) {                                                    \
      std::fprintf(stderr, "CHECK failed at %s:%d: %s\n", __FILE__,        \
                   __LINE__, text);                                        \
      std::abort();                                                        \
    }                                                                      \
  } while (0)

#define CHECK(condition) SRTREE_CHECK_IMPL((condition), #condition)
#define CHECK_EQ(a, b) SRTREE_CHECK_IMPL((a) == (b), #a " == " #b)
#define CHECK_NE(a, b) SRTREE_CHECK_IMPL((a) != (b), #a " != " #b)
#define CHECK_LT(a, b) SRTREE_CHECK_IMPL((a) < (b), #a " < " #b)
#define CHECK_LE(a, b) SRTREE_CHECK_IMPL((a) <= (b), #a " <= " #b)
#define CHECK_GT(a, b) SRTREE_CHECK_IMPL((a) > (b), #a " > " #b)
#define CHECK_GE(a, b) SRTREE_CHECK_IMPL((a) >= (b), #a " >= " #b)

#ifdef NDEBUG
#define DCHECK(condition) \
  do {                    \
  } while (0)
#define DCHECK_EQ(a, b) DCHECK((a) == (b))
#define DCHECK_NE(a, b) DCHECK((a) != (b))
#define DCHECK_LT(a, b) DCHECK((a) < (b))
#define DCHECK_LE(a, b) DCHECK((a) <= (b))
#define DCHECK_GT(a, b) DCHECK((a) > (b))
#define DCHECK_GE(a, b) DCHECK((a) >= (b))
#else
#define DCHECK(condition) CHECK(condition)
#define DCHECK_EQ(a, b) CHECK_EQ(a, b)
#define DCHECK_NE(a, b) CHECK_NE(a, b)
#define DCHECK_LT(a, b) CHECK_LT(a, b)
#define DCHECK_LE(a, b) CHECK_LE(a, b)
#define DCHECK_GT(a, b) CHECK_GT(a, b)
#define DCHECK_GE(a, b) CHECK_GE(a, b)
#endif

#endif  // SRTREE_COMMON_CHECK_H_
