// Lightweight assertion macros in the spirit of glog's CHECK family.
//
// CHECK* macros are always on; DCHECK* compile to no-ops in NDEBUG builds.
// A failed check prints the failing condition with its source location —
// and, for the comparison forms, the two operand values — then aborts,
// which is the appropriate response to a broken internal invariant in a
// storage engine (continuing would corrupt pages).
//
// In NDEBUG builds the DCHECK* forms keep their argument inside an
// unevaluated sizeof: nothing runs at runtime, but the condition is still
// type-checked and variables appearing only in DCHECKs still count as used
// (no -Wunused warnings, no bit-rot of the condition expression).

#ifndef SRTREE_COMMON_CHECK_H_
#define SRTREE_COMMON_CHECK_H_

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>

namespace srtree::check_internal {

// Best-effort stringification of a checked operand: streamable types print
// their value, everything else a placeholder.
template <typename T>
std::string ValueString(const T& value) {
  if constexpr (requires(std::ostream& os, const T& v) { os << v; }) {
    std::ostringstream os;
    os << value;
    return os.str();
  } else {
    return "<unprintable>";
  }
}

[[noreturn]] inline void CheckFail(const char* file, int line,
                                   const char* text) {
  std::fprintf(stderr, "CHECK failed at %s:%d: %s\n", file, line, text);
  std::abort();
}

[[noreturn]] inline void CheckOpFail(const char* file, int line,
                                     const char* text, const std::string& lhs,
                                     const std::string& rhs) {
  std::fprintf(stderr, "CHECK failed at %s:%d: %s (lhs=%s, rhs=%s)\n", file,
               line, text, lhs.c_str(), rhs.c_str());
  std::abort();
}

}  // namespace srtree::check_internal

#define CHECK(condition)                                                   \
  do {                                                                     \
    if (!(condition)) {                                                    \
      ::srtree::check_internal::CheckFail(__FILE__, __LINE__, #condition); \
    }                                                                      \
  } while (0)

// Evaluates each operand exactly once; on failure reports both values.
#define SRTREE_CHECK_OP_IMPL(op, a, b, text)                       \
  do {                                                             \
    auto&& srtree_check_lhs_ = (a);                                \
    auto&& srtree_check_rhs_ = (b);                                \
    if (!(srtree_check_lhs_ op srtree_check_rhs_)) {               \
      ::srtree::check_internal::CheckOpFail(                       \
          __FILE__, __LINE__, text,                                \
          ::srtree::check_internal::ValueString(srtree_check_lhs_), \
          ::srtree::check_internal::ValueString(srtree_check_rhs_)); \
    }                                                              \
  } while (0)

#define CHECK_EQ(a, b) SRTREE_CHECK_OP_IMPL(==, a, b, #a " == " #b)
#define CHECK_NE(a, b) SRTREE_CHECK_OP_IMPL(!=, a, b, #a " != " #b)
#define CHECK_LT(a, b) SRTREE_CHECK_OP_IMPL(<, a, b, #a " < " #b)
#define CHECK_LE(a, b) SRTREE_CHECK_OP_IMPL(<=, a, b, #a " <= " #b)
#define CHECK_GT(a, b) SRTREE_CHECK_OP_IMPL(>, a, b, #a " > " #b)
#define CHECK_GE(a, b) SRTREE_CHECK_OP_IMPL(>=, a, b, #a " >= " #b)

#ifdef NDEBUG
// The sizeof operand is unevaluated: zero runtime cost, full type checking.
// The ! forces a contextual conversion to bool, so non-boolean nonsense
// (e.g. DCHECK(a = b) on incompatible types) fails to compile here too.
#define SRTREE_DCHECK_NOOP(condition)  \
  do {                                 \
    (void)sizeof(!(condition));        \
  } while (0)
#define DCHECK(condition) SRTREE_DCHECK_NOOP(condition)
#define DCHECK_EQ(a, b) SRTREE_DCHECK_NOOP((a) == (b))
#define DCHECK_NE(a, b) SRTREE_DCHECK_NOOP((a) != (b))
#define DCHECK_LT(a, b) SRTREE_DCHECK_NOOP((a) < (b))
#define DCHECK_LE(a, b) SRTREE_DCHECK_NOOP((a) <= (b))
#define DCHECK_GT(a, b) SRTREE_DCHECK_NOOP((a) > (b))
#define DCHECK_GE(a, b) SRTREE_DCHECK_NOOP((a) >= (b))
#else
#define DCHECK(condition) CHECK(condition)
#define DCHECK_EQ(a, b) CHECK_EQ(a, b)
#define DCHECK_NE(a, b) CHECK_NE(a, b)
#define DCHECK_LT(a, b) CHECK_LT(a, b)
#define DCHECK_LE(a, b) CHECK_LE(a, b)
#define DCHECK_GT(a, b) CHECK_GT(a, b)
#define DCHECK_GE(a, b) CHECK_GE(a, b)
#endif

#endif  // SRTREE_COMMON_CHECK_H_
