#include "src/common/status.h"

namespace srtree {
namespace {

const char* CodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "INVALID_ARGUMENT";
    case StatusCode::kNotFound:
      return "NOT_FOUND";
    case StatusCode::kCorruption:
      return "CORRUPTION";
    case StatusCode::kIoError:
      return "IO_ERROR";
    case StatusCode::kFailedPrecondition:
      return "FAILED_PRECONDITION";
    case StatusCode::kUnimplemented:
      return "UNIMPLEMENTED";
  }
  return "UNKNOWN";
}

}  // namespace

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string result = CodeName(code_);
  if (!message_.empty()) {
    result += ": ";
    result += message_;
  }
  return result;
}

}  // namespace srtree
