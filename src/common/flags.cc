#include "src/common/flags.h"

#include <cstdio>
#include <cstdlib>

#include "src/common/check.h"

namespace srtree {

FlagParser& FlagParser::AddString(const std::string& name,
                                  const std::string& def,
                                  const std::string& help) {
  flags_[name] = Flag{Type::kString, def, help};
  return *this;
}

FlagParser& FlagParser::AddInt(const std::string& name, int64_t def,
                               const std::string& help) {
  flags_[name] = Flag{Type::kInt, std::to_string(def), help};
  return *this;
}

FlagParser& FlagParser::AddDouble(const std::string& name, double def,
                                  const std::string& help) {
  flags_[name] = Flag{Type::kDouble, std::to_string(def), help};
  return *this;
}

FlagParser& FlagParser::AddBool(const std::string& name, bool def,
                                const std::string& help) {
  flags_[name] = Flag{Type::kBool, def ? "true" : "false", help};
  return *this;
}

Status FlagParser::Parse(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      std::fprintf(stderr, "%s", Usage().c_str());
      return Status::NotFound("help requested");
    }
    if (arg.rfind("--", 0) != 0) {
      return Status::InvalidArgument("expected --flag, got: " + arg);
    }
    arg = arg.substr(2);
    std::string value;
    bool has_value = false;
    const size_t eq = arg.find('=');
    if (eq != std::string::npos) {
      value = arg.substr(eq + 1);
      arg = arg.substr(0, eq);
      has_value = true;
    }
    auto it = flags_.find(arg);
    if (it == flags_.end()) {
      return Status::InvalidArgument("unknown flag: --" + arg + "\n" +
                                     Usage());
    }
    if (!has_value) {
      if (it->second.type == Type::kBool) {
        value = "true";
      } else if (i + 1 < argc) {
        value = argv[++i];
      } else {
        return Status::InvalidArgument("flag --" + arg + " needs a value");
      }
    }
    it->second.value = value;
  }
  return Status::OK();
}

const FlagParser::Flag& FlagParser::Find(const std::string& name,
                                         Type type) const {
  auto it = flags_.find(name);
  CHECK(it != flags_.end());
  CHECK(it->second.type == type);
  return it->second;
}

std::string FlagParser::GetString(const std::string& name) const {
  return Find(name, Type::kString).value;
}

int64_t FlagParser::GetInt(const std::string& name) const {
  return std::strtoll(Find(name, Type::kInt).value.c_str(), nullptr, 10);
}

double FlagParser::GetDouble(const std::string& name) const {
  return std::strtod(Find(name, Type::kDouble).value.c_str(), nullptr);
}

bool FlagParser::GetBool(const std::string& name) const {
  const std::string& v = Find(name, Type::kBool).value;
  return v == "true" || v == "1" || v == "yes";
}

std::vector<int64_t> FlagParser::GetIntList(const std::string& name) const {
  const std::string& value = Find(name, Type::kString).value;
  std::vector<int64_t> result;
  size_t pos = 0;
  while (pos < value.size()) {
    size_t comma = value.find(',', pos);
    if (comma == std::string::npos) comma = value.size();
    const std::string item = value.substr(pos, comma - pos);
    if (!item.empty()) result.push_back(std::strtoll(item.c_str(), nullptr, 10));
    pos = comma + 1;
  }
  return result;
}

std::string FlagParser::Usage() const {
  std::string usage = "Flags:\n";
  for (const auto& [name, flag] : flags_) {
    usage += "  --" + name + " (default: " + flag.value + ")  " + flag.help +
             "\n";
  }
  return usage;
}

}  // namespace srtree
