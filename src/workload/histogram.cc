#include "src/workload/histogram.h"

#include <vector>

#include "src/common/check.h"
#include "src/common/random.h"

namespace srtree {
namespace {

// Dirichlet(alpha_i) sample via normalized Gamma draws.
Point SampleDirichlet(Xoshiro256& rng, const std::vector<double>& alpha) {
  Point p(alpha.size());
  double total = 0.0;
  for (size_t i = 0; i < alpha.size(); ++i) {
    p[i] = rng.Gamma(alpha[i]);
    total += p[i];
  }
  if (total <= 0.0) {
    // Degenerate draw (all gammas underflowed); fall back to uniform.
    for (double& x : p) x = 1.0;
    total = static_cast<double>(p.size());
  }
  for (double& x : p) x /= total;
  return p;
}

}  // namespace

Dataset MakeHistogramDataset(const HistogramConfig& config) {
  CHECK_GT(config.dim, 0);
  CHECK_GT(config.num_scenes, 0u);
  Xoshiro256 rng(config.seed);

  // Scene prototypes: sparse histograms.
  const std::vector<double> prior(config.dim, config.prototype_alpha);
  std::vector<Point> prototypes;
  prototypes.reserve(config.num_scenes);
  for (size_t s = 0; s < config.num_scenes; ++s) {
    prototypes.push_back(SampleDirichlet(rng, prior));
  }

  const ZipfTable zipf(static_cast<int>(config.num_scenes),
                       config.zipf_exponent);

  Dataset data(config.dim);
  std::vector<double> alpha(config.dim);
  for (size_t i = 0; i < config.n; ++i) {
    const Point& proto = prototypes[zipf.Sample(rng)];
    for (int d = 0; d < config.dim; ++d) {
      // Keep a small floor so no bin's Gamma shape collapses to zero.
      alpha[d] = config.concentration * proto[d] + 0.05;
    }
    data.Append(SampleDirichlet(rng, alpha));
  }
  return data;
}

}  // namespace srtree
