#include "src/workload/uniform.h"

#include "src/common/random.h"

namespace srtree {

Dataset MakeUniformDataset(size_t n, int dim, uint64_t seed) {
  Xoshiro256 rng(seed);
  Dataset data(dim);
  Point p(dim);
  for (size_t i = 0; i < n; ++i) {
    for (double& coord : p) coord = rng.NextDouble();
    data.Append(p);
  }
  return data;
}

}  // namespace srtree
