#include "src/workload/dataset.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <limits>
#include <numeric>
#include <sstream>

#include "src/common/check.h"
#include "src/geometry/kernel.h"

namespace srtree {

void Dataset::Append(PointView p) {
  CHECK_EQ(static_cast<int>(p.size()), dim_);
  flat_.insert(flat_.end(), p.begin(), p.end());
}

std::vector<Point> Dataset::ToPoints() const {
  std::vector<Point> points;
  points.reserve(size());
  for (size_t i = 0; i < size(); ++i) {
    const PointView v = point(i);
    points.emplace_back(v.begin(), v.end());
  }
  return points;
}

std::vector<uint32_t> Dataset::SequentialOids() const {
  std::vector<uint32_t> oids(size());
  std::iota(oids.begin(), oids.end(), 0u);
  return oids;
}

StatusOr<Dataset> LoadCsvDataset(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IoError("cannot open for reading: " + path);
  Dataset data;
  std::string line;
  Point row;
  size_t line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    if (line.empty() || line[0] == '#') continue;
    row.clear();
    std::stringstream cells(line);
    std::string cell;
    while (std::getline(cells, cell, ',')) {
      char* end = nullptr;
      const double value = std::strtod(cell.c_str(), &end);
      if (end == cell.c_str()) {
        return Status::InvalidArgument(path + ":" +
                                       std::to_string(line_number) +
                                       ": not a number: '" + cell + "'");
      }
      row.push_back(value);
    }
    if (row.empty()) continue;
    if (data.dim() == 0) {
      data = Dataset(static_cast<int>(row.size()));
    } else if (static_cast<int>(row.size()) != data.dim()) {
      return Status::InvalidArgument(
          path + ":" + std::to_string(line_number) + ": expected " +
          std::to_string(data.dim()) + " columns, got " +
          std::to_string(row.size()));
    }
    data.Append(row);
  }
  if (data.size() == 0) return Status::InvalidArgument("empty CSV: " + path);
  return data;
}

Status SaveCsvDataset(const Dataset& data, const std::string& path) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) return Status::IoError("cannot open for writing: " + path);
  char buf[64];
  for (size_t i = 0; i < data.size(); ++i) {
    const PointView p = data.point(i);
    std::string line;
    for (int d = 0; d < data.dim(); ++d) {
      if (d > 0) line += ',';
      std::snprintf(buf, sizeof(buf), "%.17g", p[d]);
      line += buf;
    }
    out << line << '\n';
  }
  if (!out.good()) return Status::IoError("short write: " + path);
  return Status::OK();
}

DistanceStats ComputePairwiseDistances(const Dataset& data, size_t sample_size,
                                       uint64_t seed) {
  CHECK_GE(data.size(), 2u);
  std::vector<size_t> sample(data.size());
  std::iota(sample.begin(), sample.end(), 0u);
  if (data.size() > sample_size) {
    Xoshiro256 rng(seed);
    // Partial Fisher-Yates: the first sample_size slots become the sample.
    for (size_t i = 0; i < sample_size; ++i) {
      const size_t j = i + rng.NextBounded(data.size() - i);
      std::swap(sample[i], sample[j]);
    }
    sample.resize(sample_size);
  }

  DistanceStats stats;
  stats.min = std::numeric_limits<double>::infinity();
  double sum = 0.0;
  uint64_t pairs = 0;
  for (size_t i = 0; i < sample.size(); ++i) {
    for (size_t j = i + 1; j < sample.size(); ++j) {
      const double d =
          GetDistanceKernel().L2(data.point(sample[i]), data.point(sample[j]));
      stats.min = std::min(stats.min, d);
      stats.max = std::max(stats.max, d);
      sum += d;
      ++pairs;
    }
  }
  stats.avg = sum / static_cast<double>(pairs);
  return stats;
}

}  // namespace srtree
