// Query workloads: the paper evaluates k-NN queries whose anchors are
// random points drawn from the data set itself ("relative to a particular
// point in the data set", Section 3.1), averaged over many trials.

#ifndef SRTREE_WORKLOAD_QUERIES_H_
#define SRTREE_WORKLOAD_QUERIES_H_

#include <cstdint>
#include <vector>

#include "src/workload/dataset.h"

namespace srtree {

// Samples `count` query points from the data set (with replacement, as in
// "1,000 random trials").
std::vector<Point> SampleQueriesFromDataset(const Dataset& data, size_t count,
                                            uint64_t seed);

// Samples `count` query points uniformly from [0,1)^dim (for workloads that
// want out-of-dataset anchors).
std::vector<Point> SampleUniformQueries(int dim, size_t count, uint64_t seed);

}  // namespace srtree

#endif  // SRTREE_WORKLOAD_QUERIES_H_
