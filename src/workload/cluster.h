// Cluster data set (Section 5.4): a fixed number of points per cluster; the
// location and radius of each cluster are chosen randomly within the unit
// cube; each point is generated uniformly on the cluster's sphere surface
// and then shifted along the radius by a uniform factor.

#ifndef SRTREE_WORKLOAD_CLUSTER_H_
#define SRTREE_WORKLOAD_CLUSTER_H_

#include <cstdint>

#include "src/workload/dataset.h"

namespace srtree {

struct ClusterConfig {
  size_t num_clusters = 100;
  size_t points_per_cluster = 1000;
  int dim = 16;
  // Cluster radii are drawn uniformly from (0, max_radius].
  double max_radius = 0.5;
  uint64_t seed = 1;
};

Dataset MakeClusterDataset(const ClusterConfig& config);

}  // namespace srtree

#endif  // SRTREE_WORKLOAD_CLUSTER_H_
