// Uniform data set: points i.i.d. uniform in [0,1)^dim (Section 3.1).

#ifndef SRTREE_WORKLOAD_UNIFORM_H_
#define SRTREE_WORKLOAD_UNIFORM_H_

#include <cstdint>

#include "src/workload/dataset.h"

namespace srtree {

Dataset MakeUniformDataset(size_t n, int dim, uint64_t seed);

}  // namespace srtree

#endif  // SRTREE_WORKLOAD_UNIFORM_H_
