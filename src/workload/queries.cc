#include "src/workload/queries.h"

#include "src/common/check.h"
#include "src/common/random.h"

namespace srtree {

std::vector<Point> SampleQueriesFromDataset(const Dataset& data, size_t count,
                                            uint64_t seed) {
  CHECK_GT(data.size(), 0u);
  Xoshiro256 rng(seed);
  std::vector<Point> queries;
  queries.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    const PointView p = data.point(rng.NextBounded(data.size()));
    queries.emplace_back(p.begin(), p.end());
  }
  return queries;
}

std::vector<Point> SampleUniformQueries(int dim, size_t count, uint64_t seed) {
  Xoshiro256 rng(seed);
  std::vector<Point> queries;
  queries.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    Point p(dim);
    for (double& coord : p) coord = rng.NextDouble();
    queries.push_back(std::move(p));
  }
  return queries;
}

}  // namespace srtree
