// Synthetic color-histogram data set — the stand-in for the paper's "real
// data set" of 16-element color histograms of video frames.
//
// The paper's real feature vectors are unavailable, so this generator
// produces vectors with the statistical structure such histograms have and
// that the experiments depend on:
//   * non-negative coordinates summing to 1 (normalized histograms over a
//     quantized color space);
//   * sparsity — most images use a handful of dominant color bins;
//   * strong clustering with heavy-tailed cluster sizes — frames of the
//     same scene produce near-duplicate histograms, and a few scene types
//     dominate a video corpus (Zipf-distributed mixture);
//   * small within-cluster jitter (lighting/motion variation).
//
// Concretely: `num_scenes` prototype histograms are drawn from a sparse
// Dirichlet(alpha) prior; each data point picks a scene by a Zipf law and
// samples Dirichlet(concentration * prototype), i.e. the prototype plus
// multiplicative noise. The result is highly non-uniform — the property
// Section 5.4 shows the SR-tree exploits.

#ifndef SRTREE_WORKLOAD_HISTOGRAM_H_
#define SRTREE_WORKLOAD_HISTOGRAM_H_

#include <cstdint>

#include "src/workload/dataset.h"

namespace srtree {

struct HistogramConfig {
  size_t n = 10000;
  int dim = 16;          // number of color bins
  size_t num_scenes = 64;
  double zipf_exponent = 1.1;
  // Dirichlet parameter of the scene prototypes; < 1 produces sparse
  // histograms dominated by a few bins.
  double prototype_alpha = 0.4;
  // Concentration of points around their scene prototype; larger = tighter
  // clusters of near-duplicate frames.
  double concentration = 150.0;
  uint64_t seed = 1;
};

Dataset MakeHistogramDataset(const HistogramConfig& config);

}  // namespace srtree

#endif  // SRTREE_WORKLOAD_HISTOGRAM_H_
