// Dataset: a flat, dimension-tagged collection of points plus helpers the
// experiments need (sampling, pairwise-distance statistics).

#ifndef SRTREE_WORKLOAD_DATASET_H_
#define SRTREE_WORKLOAD_DATASET_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/random.h"
#include "src/common/status.h"
#include "src/geometry/point.h"

namespace srtree {

class Dataset {
 public:
  Dataset() = default;
  explicit Dataset(int dim) : dim_(dim) {}

  int dim() const { return dim_; }
  size_t size() const {
    return dim_ == 0 ? 0 : flat_.size() / static_cast<size_t>(dim_);
  }

  PointView point(size_t i) const {
    return PointView(flat_.data() + i * static_cast<size_t>(dim_),
                     static_cast<size_t>(dim_));
  }

  void Append(PointView p);

  // Materializes owning copies (for PointIndex::BulkLoad).
  std::vector<Point> ToPoints() const;
  std::vector<uint32_t> SequentialOids() const;

 private:
  int dim_ = 0;
  std::vector<double> flat_;
};

// Reads a dataset from a CSV file: one point per line, comma-separated
// coordinates, optional blank lines and '#' comments. All rows must have
// the same number of columns, which becomes the dimensionality.
StatusOr<Dataset> LoadCsvDataset(const std::string& path);

// Writes a dataset in the same format.
Status SaveCsvDataset(const Dataset& data, const std::string& path);

// Minimum / average / maximum pairwise Euclidean distance (Figure 17).
struct DistanceStats {
  double min = 0.0;
  double avg = 0.0;
  double max = 0.0;
};

// Computes pairwise-distance statistics exactly over all pairs of a random
// sample of at most `sample_size` points (the statistic concentrates, which
// is exactly what Figure 17 demonstrates).
DistanceStats ComputePairwiseDistances(const Dataset& data, size_t sample_size,
                                       uint64_t seed);

}  // namespace srtree

#endif  // SRTREE_WORKLOAD_DATASET_H_
