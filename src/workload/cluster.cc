#include "src/workload/cluster.h"

#include "src/common/check.h"
#include "src/common/random.h"

namespace srtree {

Dataset MakeClusterDataset(const ClusterConfig& config) {
  CHECK_GT(config.num_clusters, 0u);
  CHECK_GT(config.points_per_cluster, 0u);
  CHECK_GT(config.dim, 0);
  Xoshiro256 rng(config.seed);
  Dataset data(config.dim);
  Point p(config.dim);
  for (size_t c = 0; c < config.num_clusters; ++c) {
    Point center(config.dim);
    for (double& coord : center) coord = rng.NextDouble();
    const double radius = rng.Uniform(0.0, config.max_radius);
    for (size_t i = 0; i < config.points_per_cluster; ++i) {
      const std::vector<double> dir = rng.OnUnitSphere(config.dim);
      const double shift = rng.NextDouble();  // shift along the radius
      for (int d = 0; d < config.dim; ++d) {
        p[d] = center[d] + shift * radius * dir[d];
      }
      data.Append(p);
    }
  }
  return data;
}

}  // namespace srtree
