// TieredIndex: the production-style two-tier serving arrangement over the
// SR-tree family (ROADMAP item #2).
//
//   * a read-optimized, immutable StaticSRTree holds the bulk of the data
//     (flat BFS-serialized page image, SoA blocks, zero-deserialization
//     queries);
//   * a small dynamic SR-tree "delta" absorbs every Insert;
//   * Deletes against static-tier points become tombstones — (point, oid)
//     pairs kept in a copy-on-write set that the static leaf scans consult,
//     so a masked point can never appear in (or displace a live point from)
//     a query result;
//   * queries run against both tiers and merge in the canonical Neighbor
//     (distance, oid) order, making results byte-identical to a single-tier
//     index over the same logical contents;
//   * Compact() bulk-rebuilds the static tier from static-minus-tombstones
//     plus delta via the VAMSplit build and swaps it in. Snapshots hold
//     shared ownership of the tiers they were acquired against, so
//     concurrent readers keep traversing the pre-compaction tiers
//     undisturbed; the swapped-out tree is freed when the last such snapshot
//     dies.
//
// Writer exclusion matches the dynamic SR-tree: one mutator at a time
// (enforced by writer_mu_). Readers never take that lock: mutators publish
// an immutable TierState wholesale through an atomic shared_ptr, and
// Search() / AcquireSnapshot() capture it lock-free (RCU-style), pairing it
// with a delta snapshot via a version-checked retry.

#ifndef SRTREE_STATICTIER_TIERED_INDEX_H_
#define SRTREE_STATICTIER_TIERED_INDEX_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/base/mutex.h"
#include "src/index/point_index.h"
#include "src/statictier/static_sr_tree.h"

namespace srtree {

class TieredIndex : public PointIndex {
 public:
  struct Options {
    int dim = 2;
    size_t page_size = kDefaultPageSize;
    // Dynamic-delta knobs, forwarded to the SR-tree (see IndexConfig).
    size_t leaf_data_size = 0;  // attached bytes per leaf entry
    double min_utilization = 0.4;
    double reinsert_fraction = 0.3;
  };

  explicit TieredIndex(const Options& options);
  ~TieredIndex() override;

  static constexpr char kImageTag[] = "srtiered";

  // Save() compacts on the way out: the image holds ONE merged static tier
  // (delta and tombstones applied), so Open() restores the same logical
  // contents with an empty delta. version() restarts at 1 after Open.
  Status Save(const std::string& path) const override;
  static StatusOr<std::unique_ptr<TieredIndex>> Open(const std::string& path);

  int dim() const override { return options_.dim; }
  size_t size() const override;
  std::string name() const override { return "Tiered SR-tree"; }
  const Options& options() const { return options_; }

  Status Insert(PointView point, uint32_t oid) override;
  Status Delete(PointView point, uint32_t oid) override;
  Status BulkLoad(const std::vector<Point>& points,
                  const std::vector<uint32_t>& oids) override;

  // Rebuilds the static tier from the current logical contents (static
  // minus tombstones, plus delta) and swaps it in; the delta and tombstone
  // set come back empty. Logical contents, size() and the version counter
  // are unchanged — concurrent snapshot readers are never disturbed.
  Status Compact() override;

  Status ExportEntries(
      const std::function<void(PointView, uint32_t)>& fn) const override;

  TreeStats GetTreeStats() const override;
  MaintenanceStats GetMaintenanceStats() const override;
  Status CheckInvariants() const override;
  RegionSummary LeafRegionSummary() const override;

  const IoStats& io_stats() const override;
  void ResetIoStats() override;
  IoStats GetIoStats() const override;
  void SimulateBufferPool(size_t capacity) override;
  void UseBufferPool(size_t capacity) override;

  size_t leaf_capacity() const override;
  size_t node_capacity() const override;

  [[nodiscard]] std::unique_ptr<IndexSnapshot> AcquireSnapshot()
      const override;

  EpochManager* epoch_domain_for_test() const override;

  // Test hooks.
  size_t delta_size_for_test() const;
  size_t tombstone_count_for_test() const;

 protected:
  std::vector<Neighbor> KnnDfsImpl(PointView query, int k,
                                   IoStatsDelta* io) const override;
  std::vector<Neighbor> KnnBestFirstImpl(PointView query, int k,
                                         IoStatsDelta* io) const override;
  std::vector<Neighbor> RangeImpl(PointView query, double radius,
                                  IoStatsDelta* io) const override;

 private:
  friend class TieredSnapshot;

  // The immutable state readers capture: shared ownership of both tiers
  // plus the tombstone set, and the (version, size) they correspond to.
  // Mutators (serialized by writer_mu_) never edit a published TierState —
  // they build a fresh one and store it wholesale into state_, so a single
  // atomic load observes a fully consistent tier arrangement.
  struct TierState {
    std::shared_ptr<StaticSRTree> static_tier;
    std::shared_ptr<PointIndex> delta;
    std::shared_ptr<const TombstoneSet> tombstones;
    // Bumped per successful Insert/Delete; Compact() leaves it alone.
    uint64_t version = 1;
    size_t size = 0;
    // The delta tree's own committed version when this state was
    // published; CaptureState() uses it to pair the state with a delta
    // snapshot without taking writer_mu_.
    uint64_t delta_version = 0;
  };

  // A pinned read view: the published state plus a delta snapshot at
  // exactly state->delta_version.
  struct CapturedView {
    std::shared_ptr<const TierState> state;
    std::unique_ptr<IndexSnapshot> delta_snap;
  };

  CapturedView CaptureState() const;
  // state_ is accessed exclusively through these two helpers. The free
  // functions are used instead of std::atomic<shared_ptr> because
  // libstdc++'s _Sp_atomic lock-bit protocol is invisible to TSan (gcc
  // 12), whereas the free functions go through an instrumented mutex
  // pool; semantics are identical (acquire load / release store).
  std::shared_ptr<const TierState> LoadState() const {
    return std::atomic_load_explicit(&state_, std::memory_order_acquire);
  }
  void PublishState(TierState next) {
    std::atomic_store_explicit(
        &state_, std::make_shared<const TierState>(std::move(next)),
        std::memory_order_release);
  }
  std::shared_ptr<PointIndex> MakeDelta() const;
  // Collects state's logical contents (static minus tombstones + delta).
  // Callers hold writer_mu_ so the live delta cannot move underneath.
  Status CollectLogicalContents(const TierState& state,
                                std::vector<Point>* points,
                                std::vector<uint32_t>* oids) const;

  const Options options_;

  // One mutator at a time. Readers never take it — they load state_ —
  // so the lock must never be reachable from a read accessor: that would
  // nest it under the storage locks its critical sections acquire.
  // mutable: Save() is const but must exclude writers.
  mutable Mutex writer_mu_;
  // The published state. Accessed via LoadState() by readers and replaced
  // wholesale by mutators via PublishState() (store strictly after the
  // delta mutation it describes, so CaptureState()'s version check is
  // sound).
  std::shared_ptr<const TierState> state_ UNGUARDED_OK(
      "touched only through std::atomic_load/atomic_store in "
      "LoadState()/PublishState(); mutators are serialized by writer_mu_");

  // Backing store for the deprecated io_stats() reference accessor.
  mutable IoStats legacy_io_stats_ GUARDED_BY(writer_mu_);
};

}  // namespace srtree

#endif  // SRTREE_STATICTIER_TIERED_INDEX_H_
