// StaticSRTree: the read-optimized immutable tier of the tiered index
// (ROADMAP item #2).
//
// The tree is bulk-loaded with the VAMSplit partitioning (White & Jain) but
// stores SR-tree regions — bounding sphere AND bounding rectangle per child,
// radius = min(d_s, d_r) as in Section 4.2 of the paper — and serializes its
// nodes level-order (BFS) into one contiguous v2 page image:
//
//   * every node occupies exactly one page and pages are numbered in BFS
//     order, so the children of an inner node are CONTIGUOUS and the node
//     stores a single `first_child` page id instead of per-entry pointers
//     (child i lives at page first_child + i);
//   * node payloads are dimension-major (SoA): a leaf page is a coordinate
//     block followed by an oid array, an inner page is center / radius /
//     rect-lo / rect-hi / weight blocks. A query overlays SoaBlock views on
//     the raw page bytes and feeds them straight to the DistanceKernel batch
//     API — zero per-entry deserialization on the search path;
//   * reads go through PageFile::Snapshot (and BufferPool::PinSnapshot when
//     a pool is attached), the same commit-protocol machinery the dynamic
//     SR-tree uses, so a TieredIndex can swap a freshly compacted tree in
//     while concurrent snapshot readers keep traversing the old one.
//
// The structure is immutable after BulkLoad()/Open(): Insert and Delete
// return Unimplemented. Logical deletes against a static tier are the
// TieredIndex's tombstones, which the leaf scans consult through the
// optional TombstoneSet filter so a masked point can never displace a live
// one from a k-NN result.

#ifndef SRTREE_STATICTIER_STATIC_SR_TREE_H_
#define SRTREE_STATICTIER_STATIC_SR_TREE_H_

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <memory>
#include <optional>
#include <set>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "src/geometry/kernel.h"
#include "src/index/knn.h"
#include "src/index/point_index.h"
#include "src/storage/buffer_pool.h"
#include "src/storage/page_file.h"

namespace srtree {

// Tombstoned (point, oid) pairs masking static-tier entries; owned by the
// TieredIndex, consulted by the static leaf scans.
using TombstoneSet = std::set<std::pair<Point, uint32_t>>;

class StaticSRTree : public PointIndex {
 public:
  struct Options {
    int dim = 2;
    size_t page_size = kDefaultPageSize;
  };

  explicit StaticSRTree(const Options& options);

  // Type tag embedded in the v2 index-image container.
  static constexpr char kImageTag[] = "srstatic";

  // Checksummed atomic image persistence (see PointIndex::Save).
  Status Save(const std::string& path) const override;
  static StatusOr<std::unique_ptr<StaticSRTree>> Open(const std::string& path);

  // Composite-image hooks for the TieredIndex: the page image must be the
  // final section of the stream (PageFile::LoadFrom validates its size
  // against EOF). LoadPages restores + validates the tree over it and
  // publishes the loaded state as a committed version.
  Status SavePagesTo(std::ostream& out) const;
  Status LoadPages(std::istream& in, PageId root_id, int root_level,
                   uint64_t size);

  int dim() const override { return options_.dim; }
  size_t size() const override { return size_; }
  std::string name() const override { return "Static SR-tree"; }
  const Options& options() const { return options_; }

  // Static tier: the only way to populate it is BulkLoad.
  Status Insert(PointView point, uint32_t oid) override;
  Status Delete(PointView point, uint32_t oid) override;
  Status BulkLoad(const std::vector<Point>& points,
                  const std::vector<uint32_t>& oids) override;

  // Enumerates every stored (point, oid) pair (compaction feed).
  Status ExportEntries(
      const std::function<void(PointView, uint32_t)>& fn) const override;

  // Exact membership probe against the stored pairs (rect-guided descent;
  // no I/O accounting — this is tombstone bookkeeping, not a query).
  bool Contains(PointView point, uint32_t oid) const;

  TreeStats GetTreeStats() const override;
  Status CheckInvariants() const override;
  void VisitNodes(const NodeVisitor& visitor) const override;
  AuditSpec GetAuditSpec() const override;
  RegionSummary LeafRegionSummary() const override;

  const IoStats& io_stats() const override { return file_.stats(); }
  void ResetIoStats() override { file_.ResetStats(); }
  IoStats GetIoStats() const override { return file_.GetIoStats(); }

  void SimulateBufferPool(size_t capacity) override {
    file_.SimulateCache(capacity);
  }
  void UseBufferPool(size_t capacity) override {
    pool_ = capacity > 0 ? std::make_unique<BufferPool>(&file_, capacity)
                         : nullptr;
  }

  size_t leaf_capacity() const override { return leaf_cap_; }
  size_t node_capacity() const override { return node_cap_; }
  int height() const { return size_ == 0 ? 0 : root_level_ + 1; }
  PageId root_id() const { return root_id_; }
  int root_level() const { return root_level_; }

  // The snapshot machinery a composing index (TieredIndex) pins reads
  // through. The tree is immutable once built, but routing reads through a
  // committed version keeps the swap-under-readers story uniform with the
  // dynamic SR-tree.
  EpochManager& epoch_domain() const { return file_.epochs(); }
  PageFile::Snapshot AcquirePageSnapshot(const EpochGuard& guard) const {
    return file_.AcquireSnapshot(guard);
  }

  [[nodiscard]] std::unique_ptr<IndexSnapshot> AcquireSnapshot()
      const override;

  EpochManager* epoch_domain_for_test() const override {
    return &file_.epochs();
  }

  // Snapshot-pinned search entry points (used by this tree's own dispatch
  // and by the TieredIndex's merged searches). `tombstones` (optional)
  // masks matching pairs during the leaf scans.
  std::vector<Neighbor> KnnDfsSnapshot(const PageFile::Snapshot& snap,
                                       PointView query, int k,
                                       IoStatsDelta* io,
                                       const TombstoneSet* tombstones) const;
  std::vector<Neighbor> KnnBestFirstSnapshot(
      const PageFile::Snapshot& snap, PointView query, int k, IoStatsDelta* io,
      const TombstoneSet* tombstones) const;
  std::vector<Neighbor> RangeSnapshot(const PageFile::Snapshot& snap,
                                      PointView query, double radius,
                                      IoStatsDelta* io,
                                      const TombstoneSet* tombstones) const;

 protected:
  std::vector<Neighbor> KnnDfsImpl(PointView query, int k,
                                   IoStatsDelta* io) const override;
  std::vector<Neighbor> KnnBestFirstImpl(PointView query, int k,
                                         IoStatsDelta* io) const override;
  std::vector<Neighbor> RangeImpl(PointView query, double radius,
                                  IoStatsDelta* io) const override;

 private:
  // ---- zero-copy page views -----------------------------------------------
  // Overlays on the raw page bytes; the blocks alias the page buffer, so a
  // view is valid only while its PageHandle (below) is.

  struct LeafRef {
    size_t count = 0;
    SoaBlock points;       // dim-major coordinate block
    const uint32_t* oids = nullptr;
  };

  struct InnerRef {
    size_t count = 0;
    int level = 0;
    PageId first_child = kInvalidPageId;  // child i = first_child + i
    SoaBlock centers, lo, hi;             // dim-major blocks
    const double* radii = nullptr;
    const uint32_t* weights = nullptr;
  };

  // One resolved page: either a pinned buffer-pool frame (zero copy) or the
  // caller's scratch buffer filled through Snapshot::Read (one page copy,
  // still no per-entry decode).
  struct PageHandle {
    std::optional<BufferPool::PageGuard> guard;
    const char* data = nullptr;
  };

  PageHandle ReadPage(const PageFile::Snapshot& snap, PageId id, int level,
                      IoStatsDelta* io, std::vector<char>& scratch) const;

  int PageLevel(const char* buf) const;
  LeafRef ParseLeaf(const char* buf) const;
  InnerRef ParseInner(const char* buf) const;

  // Gathers element `i` of a dim-major block into `out` (dim doubles).
  void GatherPoint(const SoaBlock& block, size_t i, Point& out) const;
  bool Tombstoned(const TombstoneSet* tombstones, const SoaBlock& points,
                  size_t i, uint32_t oid, Point& scratch) const;

  // ---- construction -------------------------------------------------------

  struct BuildNode;  // in-memory node, BFS-numbered before serialization

  uint64_t SubtreeCapacity(int height) const;
  int MaxVarianceDim(const std::vector<Point>& points,
                     std::span<uint32_t> items) const;
  void SplitIntoPieces(const std::vector<Point>& points,
                       std::span<uint32_t> items, uint64_t piece_cap,
                       std::vector<std::span<uint32_t>>& pieces) const;
  size_t BuildSubtree(const std::vector<Point>& points,
                      std::span<uint32_t> items, int height,
                      std::vector<BuildNode>& pool) const;
  void SerializeTree(const std::vector<Point>& points,
                     const std::vector<uint32_t>& oids,
                     std::vector<BuildNode>& pool, size_t root_index);

  void CommitState() {
    file_.Commit({root_id_, static_cast<uint64_t>(root_level_), size_, 0});
  }

  // BFS over the page image checking header sanity (levels, counts, child
  // liveness) so the audit/stats walks cannot crash on a forged image.
  Status ValidateStructure() const;

  // ---- audit / stats helpers (PeekPage walks, no I/O accounting) ----------
  struct DecodedEntry {
    Sphere sphere;
    Rect rect;
    uint64_t weight = 0;
    PageId child = kInvalidPageId;
  };
  std::vector<DecodedEntry> DecodeInner(const char* buf) const;
  void DecodeLeaf(const char* buf, std::vector<Point>& points,
                  std::vector<uint32_t>& oids) const;
  void VisitSubtree(PageId id, std::vector<int>& path,
                    const NodeVisitor& visitor) const;

  // ---- search -------------------------------------------------------------
  void SearchKnnDfs(const PageFile::Snapshot& snap, PageId id, int level,
                    PointView query, KnnCandidates& cand,
                    KernelScratch& scratch, std::vector<char>& page_scratch,
                    IoStatsDelta* io, const TombstoneSet* tombstones) const;
  void SearchRange(const PageFile::Snapshot& snap, PageId id, int level,
                   PointView query, double radius, std::vector<Neighbor>& out,
                   KernelScratch& scratch, std::vector<char>& page_scratch,
                   IoStatsDelta* io, const TombstoneSet* tombstones) const;
  void ScanLeaf(const LeafRef& leaf, PointView query, double bound_sq,
                KernelScratch& scratch, const TombstoneSet* tombstones,
                const std::function<void(double, uint32_t)>& offer) const;
  // Fills `out` with the combined SR MINDIST (distance space) of every
  // entry: max(sphere MINDIST, sqrt(rect MINDISTSQ)).
  void EntryMinDists(const InnerRef& inner, PointView query,
                     KernelScratch& scratch, std::vector<double>& out) const;

  Options options_;
  size_t leaf_cap_;
  size_t node_cap_;

  mutable PageFile file_;
  std::unique_ptr<BufferPool> pool_;
  PageId root_id_ = kInvalidPageId;
  int root_level_ = 0;
  size_t size_ = 0;
};

}  // namespace srtree

#endif  // SRTREE_STATICTIER_STATIC_SR_TREE_H_
