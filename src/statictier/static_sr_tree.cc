#include "src/statictier/static_sr_tree.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <numeric>
#include <queue>

#include "src/common/check.h"
#include "src/debug/structural_auditor.h"
#include "src/storage/image_io.h"

namespace srtree {
namespace {

// Page header: [u8 level][u8 flags][u16 count][u32 first_child]. 8 bytes
// keeps the double blocks that follow 8-byte aligned.
constexpr size_t kHeaderBytes = 8;

size_t LeafEntryBytes(int dim) {
  return static_cast<size_t>(dim) * sizeof(double) + sizeof(uint32_t);
}

size_t InnerEntryBytes(int dim) {
  // center (dim) + radius + lo (dim) + hi (dim) doubles, weight u32.
  return (3 * static_cast<size_t>(dim) + 1) * sizeof(double) +
         sizeof(uint32_t);
}

}  // namespace

StaticSRTree::StaticSRTree(const Options& options)
    : options_(options), file_(options.page_size) {
  CHECK_GT(options_.dim, 0);
  leaf_cap_ = (options_.page_size - kHeaderBytes) / LeafEntryBytes(options_.dim);
  node_cap_ = (options_.page_size - kHeaderBytes) / InnerEntryBytes(options_.dim);
  CHECK_GE(leaf_cap_, 2u);
  CHECK_GE(node_cap_, 2u);
  // Publish the empty tree so a snapshot acquired before BulkLoad sees
  // coherent metadata (root = invalid, size = 0).
  CommitState();
}

// --------------------------------------------------------------------------
// Persistence
// --------------------------------------------------------------------------

namespace {

// v2 header record embedded in the SRIX container (src/storage/image_io.h).
struct StaticImageHeader {
  int32_t dim;
  uint32_t pad0;
  uint64_t page_size;
  uint32_t root_id;
  int32_t root_level;
  uint64_t size;
};

// True iff `o` would pass every constructor CHECK, so Open() can reject a
// forged header with Corruption instead of crashing the process.
bool PlausibleOptions(const StaticSRTree::Options& o) {
  if (o.dim <= 0 || o.dim > (1 << 16)) return false;
  if (o.page_size <= kHeaderBytes || o.page_size > (1u << 28)) return false;
  return (o.page_size - kHeaderBytes) / LeafEntryBytes(o.dim) >= 2 &&
         (o.page_size - kHeaderBytes) / InnerEntryBytes(o.dim) >= 2;
}

}  // namespace

Status StaticSRTree::Save(const std::string& path) const {
  StaticImageHeader header = {};
  header.dim = options_.dim;
  header.page_size = options_.page_size;
  header.root_id = root_id_;
  header.root_level = root_level_;
  header.size = size_;
  return AtomicWriteFile(path, [&](std::ostream& out) {
    RETURN_IF_ERROR(WriteIndexImageTo(out, kImageTag, &header, sizeof(header)));
    return file_.SaveTo(out);
  });
}

StatusOr<std::unique_ptr<StaticSRTree>> StaticSRTree::Open(
    const std::string& path) {
  StaticImageHeader header = {};
  IndexImageFile image;
  RETURN_IF_ERROR(image.Open(path, kImageTag, &header, sizeof(header)));

  Options options;
  options.dim = header.dim;
  options.page_size = header.page_size;
  if (!PlausibleOptions(options) || header.root_level < 0 ||
      header.root_level > 64) {
    return Status::Corruption("implausible static SR-tree header");
  }
  auto tree = std::make_unique<StaticSRTree>(options);
  RETURN_IF_ERROR(tree->LoadPages(image.stream(), header.root_id,
                                  header.root_level, header.size));
  return tree;
}

Status StaticSRTree::SavePagesTo(std::ostream& out) const {
  return file_.SaveTo(out);
}

Status StaticSRTree::LoadPages(std::istream& in, PageId root_id,
                               int root_level, uint64_t size) {
  if (root_level < 0 || root_level > 64) {
    return Status::Corruption("implausible static SR-tree root level");
  }
  RETURN_IF_ERROR(file_.LoadFrom(in));
  if (size == 0) {
    if (root_id != kInvalidPageId) {
      return Status::Corruption("empty static SR-tree image names a root");
    }
    root_id_ = kInvalidPageId;
    root_level_ = 0;
    size_ = 0;
    CommitState();
    return Status::OK();
  }
  if (!file_.is_live(root_id)) {
    return Status::Corruption("static SR-tree root page is not live");
  }
  root_id_ = root_id;
  root_level_ = root_level;
  size_ = size;
  RETURN_IF_ERROR(ValidateStructure());
  CommitState();
  return CheckInvariants();
}

Status StaticSRTree::ValidateStructure() const {
  // BFS from the root: every reachable page must be live, carry the level
  // its parent implies, and keep its count within capacity — so the
  // PeekPage-based audit/stats walks can never chase a wild child id.
  struct Item {
    PageId id;
    int level;
  };
  std::queue<Item> queue;
  queue.push({root_id_, root_level_});
  uint64_t points = 0;
  uint64_t visited = 0;
  while (!queue.empty()) {
    const Item item = queue.front();
    queue.pop();
    if (++visited > file_.live_pages()) {
      return Status::Corruption("static SR-tree structure is not a tree");
    }
    const char* buf = file_.PeekPage(item.id);
    if (PageLevel(buf) != item.level) {
      return Status::Corruption("static SR-tree page level mismatch");
    }
    if (item.level == 0) {
      const LeafRef leaf = ParseLeaf(buf);
      if (leaf.count == 0 || leaf.count > leaf_cap_) {
        return Status::Corruption("static SR-tree leaf count out of range");
      }
      points += leaf.count;
      continue;
    }
    const InnerRef inner = ParseInner(buf);
    if (inner.count == 0 || inner.count > node_cap_) {
      return Status::Corruption("static SR-tree node count out of range");
    }
    for (size_t i = 0; i < inner.count; ++i) {
      const PageId child = inner.first_child + static_cast<PageId>(i);
      if (child < inner.first_child || !file_.is_live(child)) {
        return Status::Corruption("static SR-tree child page is not live");
      }
      queue.push({child, item.level - 1});
    }
  }
  if (points != size_) {
    return Status::Corruption("static SR-tree leaf total != stored size");
  }
  return Status::OK();
}

// --------------------------------------------------------------------------
// Page views
// --------------------------------------------------------------------------

int StaticSRTree::PageLevel(const char* buf) const {
  return static_cast<int>(static_cast<unsigned char>(buf[0]));
}

StaticSRTree::LeafRef StaticSRTree::ParseLeaf(const char* buf) const {
  LeafRef leaf;
  uint16_t count = 0;
  std::memcpy(&count, buf + 2, sizeof(count));
  leaf.count = count;
  const double* coords = reinterpret_cast<const double*>(buf + kHeaderBytes);
  leaf.points = SoaBlock{coords, leaf.count, options_.dim};
  leaf.oids = reinterpret_cast<const uint32_t*>(
      buf + kHeaderBytes +
      static_cast<size_t>(options_.dim) * leaf.count * sizeof(double));
  return leaf;
}

StaticSRTree::InnerRef StaticSRTree::ParseInner(const char* buf) const {
  InnerRef inner;
  inner.level = PageLevel(buf);
  uint16_t count = 0;
  std::memcpy(&count, buf + 2, sizeof(count));
  inner.count = count;
  uint32_t first_child = 0;
  std::memcpy(&first_child, buf + 4, sizeof(first_child));
  inner.first_child = first_child;
  const size_t dim = static_cast<size_t>(options_.dim);
  const double* cursor = reinterpret_cast<const double*>(buf + kHeaderBytes);
  inner.centers = SoaBlock{cursor, inner.count, options_.dim};
  cursor += dim * inner.count;
  inner.radii = cursor;
  cursor += inner.count;
  inner.lo = SoaBlock{cursor, inner.count, options_.dim};
  cursor += dim * inner.count;
  inner.hi = SoaBlock{cursor, inner.count, options_.dim};
  cursor += dim * inner.count;
  inner.weights = reinterpret_cast<const uint32_t*>(cursor);
  return inner;
}

StaticSRTree::PageHandle StaticSRTree::ReadPage(
    const PageFile::Snapshot& snap, PageId id, int level, IoStatsDelta* io,
    std::vector<char>& scratch) const {
  PageHandle handle;
  if (pool_ != nullptr) {
    handle.guard.emplace(pool_->PinSnapshot(snap, id, level, io));
    handle.data = handle.guard->data();
  } else {
    scratch.resize(options_.page_size);
    snap.Read(id, scratch.data(), level, io);
    handle.data = scratch.data();
  }
  return handle;
}

void StaticSRTree::GatherPoint(const SoaBlock& block, size_t i,
                               Point& out) const {
  out.resize(static_cast<size_t>(block.dim));
  for (size_t d = 0; d < out.size(); ++d) {
    out[d] = block.coords[d * block.count + i];
  }
}

bool StaticSRTree::Tombstoned(const TombstoneSet* tombstones,
                              const SoaBlock& points, size_t i, uint32_t oid,
                              Point& scratch) const {
  if (tombstones == nullptr || tombstones->empty()) return false;
  GatherPoint(points, i, scratch);
  return tombstones->find({scratch, oid}) != tombstones->end();
}

// --------------------------------------------------------------------------
// Construction
// --------------------------------------------------------------------------

Status StaticSRTree::Insert(PointView, uint32_t) {
  return Status::Unimplemented(
      "Static SR-tree is immutable; mutate through a TieredIndex");
}

Status StaticSRTree::Delete(PointView, uint32_t) {
  return Status::Unimplemented(
      "Static SR-tree is immutable; mutate through a TieredIndex");
}

uint64_t StaticSRTree::SubtreeCapacity(int height) const {
  uint64_t cap = leaf_cap_;
  for (int h = 0; h < height; ++h) cap *= node_cap_;
  return cap;
}

// In-memory build node; page ids are assigned by a BFS pass afterwards so
// sibling subtrees land on contiguous pages.
struct StaticSRTree::BuildNode {
  int level = 0;
  std::vector<uint32_t> items;    // leaf: indices into the bulk-load arrays
  std::vector<size_t> children;   // inner: indices into the build pool
  // Aggregates over the node's whole subtree (the parent's entry for it).
  Point center;
  double radius = 0.0;
  Rect rect;
  uint64_t weight = 0;
  PageId page = kInvalidPageId;
};

int StaticSRTree::MaxVarianceDim(const std::vector<Point>& points,
                                 std::span<uint32_t> items) const {
  int best_dim = 0;
  double best_var = -1.0;
  for (int d = 0; d < options_.dim; ++d) {
    double sum = 0.0, sum_sq = 0.0;
    for (const uint32_t i : items) {
      const double x = points[i][static_cast<size_t>(d)];
      sum += x;
      sum_sq += x * x;
    }
    const double n = static_cast<double>(items.size());
    const double mean = sum / n;
    const double var = sum_sq / n - mean * mean;
    if (var > best_var) {
      best_var = var;
      best_dim = d;
    }
  }
  return best_dim;
}

void StaticSRTree::SplitIntoPieces(
    const std::vector<Point>& points, std::span<uint32_t> items,
    uint64_t piece_cap, std::vector<std::span<uint32_t>>& pieces) const {
  if (items.size() <= piece_cap) {
    pieces.push_back(items);
    return;
  }
  const int dim = MaxVarianceDim(points, items);
  // The VAM split point: the multiple of the maximal-subtree capacity
  // closest to the median, so the left side packs full subtrees and the
  // total number of blocks is minimal (White & Jain).
  const uint64_t n = items.size();
  uint64_t mult = static_cast<uint64_t>(std::llround(
      static_cast<double>(n) / 2.0 / static_cast<double>(piece_cap)));
  mult = std::max<uint64_t>(mult, 1);
  uint64_t left = mult * piece_cap;
  if (left >= n) left = ((n - 1) / piece_cap) * piece_cap;
  CHECK_GT(left, 0u);
  CHECK_LT(left, n);

  std::nth_element(items.begin(), items.begin() + static_cast<ptrdiff_t>(left),
                   items.end(), [&](uint32_t a, uint32_t b) {
                     return points[a][static_cast<size_t>(dim)] <
                            points[b][static_cast<size_t>(dim)];
                   });
  SplitIntoPieces(points, items.subspan(0, left), piece_cap, pieces);
  SplitIntoPieces(points, items.subspan(left), piece_cap, pieces);
}

size_t StaticSRTree::BuildSubtree(const std::vector<Point>& points,
                                  std::span<uint32_t> items, int height,
                                  std::vector<BuildNode>& pool) const {
  const DistanceKernel& kernel = GetDistanceKernel();
  BuildNode node;
  node.level = height;
  node.weight = items.size();

  // Subtree aggregates from the actual point set: centroid center, exact
  // MBR, and the Section 4.2 radius rule min(d_s, d_r). Every subtree point
  // is inside the MBR, so d_r also bounds all of them — the sphere stays a
  // valid cover even when d_r < d_s.
  const size_t dim = static_cast<size_t>(options_.dim);
  node.center.assign(dim, 0.0);
  node.rect = Rect::Empty(options_.dim);
  for (const uint32_t i : items) {
    for (size_t d = 0; d < dim; ++d) node.center[d] += points[i][d];
    node.rect.Expand(points[i]);
  }
  for (size_t d = 0; d < dim; ++d) {
    node.center[d] /= static_cast<double>(items.size());
  }
  double max_d2 = 0.0;
  for (const uint32_t i : items) {
    max_d2 = std::max(max_d2, kernel.SquaredL2(node.center, points[i]));
  }
  const double d_s = std::sqrt(max_d2);
  const double d_r = std::sqrt(node.rect.MaxDistSq(node.center));
  node.radius = std::min(d_s, d_r);

  if (height == 0) {
    CHECK_LE(items.size(), leaf_cap_);
    node.items.assign(items.begin(), items.end());
    pool.push_back(std::move(node));
    return pool.size() - 1;
  }

  std::vector<std::span<uint32_t>> pieces;
  SplitIntoPieces(points, items, SubtreeCapacity(height - 1), pieces);
  CHECK_LE(pieces.size(), node_cap_);
  for (const std::span<uint32_t> piece : pieces) {
    node.children.push_back(BuildSubtree(points, piece, height - 1, pool));
  }
  pool.push_back(std::move(node));
  return pool.size() - 1;
}

void StaticSRTree::SerializeTree(const std::vector<Point>& points,
                                 const std::vector<uint32_t>& oids,
                                 std::vector<BuildNode>& pool,
                                 size_t root_index) {
  // BFS numbering: a node's children are enqueued (and therefore allocated)
  // consecutively, which is what makes the single first_child id sufficient.
  std::vector<size_t> order;
  order.reserve(pool.size());
  std::queue<size_t> queue;
  queue.push(root_index);
  while (!queue.empty()) {
    const size_t index = queue.front();
    queue.pop();
    pool[index].page = file_.Allocate();
    order.push_back(index);
    for (const size_t child : pool[index].children) queue.push(child);
  }

  const size_t dim = static_cast<size_t>(options_.dim);
  std::vector<char> buf(options_.page_size);
  std::vector<double> block;
  for (const size_t index : order) {
    const BuildNode& node = pool[index];
    std::memset(buf.data(), 0, buf.size());
    PageWriter w(buf.data(), options_.page_size);
    const size_t count =
        node.level == 0 ? node.items.size() : node.children.size();
    CHECK_GT(count, 0u);
    w.PutU8(static_cast<uint8_t>(node.level));
    w.PutU8(0);
    w.PutU16(static_cast<uint16_t>(count));
    if (node.level == 0) {
      w.PutU32(0);
      // Coordinates dimension-major, then the oid array.
      block.resize(dim * count);
      for (size_t i = 0; i < count; ++i) {
        const Point& p = points[node.items[i]];
        for (size_t d = 0; d < dim; ++d) block[d * count + i] = p[d];
      }
      w.PutDoubles(block);
      for (size_t i = 0; i < count; ++i) w.PutU32(oids[node.items[i]]);
    } else {
      const PageId first_child = pool[node.children.front()].page;
      for (size_t i = 0; i < count; ++i) {
        CHECK_EQ(pool[node.children[i]].page,
                 first_child + static_cast<PageId>(i));
      }
      w.PutU32(first_child);
      // centers | radii | rect lo | rect hi | weights, each dim-major.
      block.resize(dim * count);
      for (size_t i = 0; i < count; ++i) {
        const BuildNode& child = pool[node.children[i]];
        for (size_t d = 0; d < dim; ++d) block[d * count + i] = child.center[d];
      }
      w.PutDoubles(block);
      for (size_t i = 0; i < count; ++i) {
        w.PutDouble(pool[node.children[i]].radius);
      }
      for (size_t i = 0; i < count; ++i) {
        const Point& lo = pool[node.children[i]].rect.lo();
        for (size_t d = 0; d < dim; ++d) block[d * count + i] = lo[d];
      }
      w.PutDoubles(block);
      for (size_t i = 0; i < count; ++i) {
        const Point& hi = pool[node.children[i]].rect.hi();
        for (size_t d = 0; d < dim; ++d) block[d * count + i] = hi[d];
      }
      w.PutDoubles(block);
      for (size_t i = 0; i < count; ++i) {
        w.PutU32(static_cast<uint32_t>(pool[node.children[i]].weight));
      }
    }
    file_.StageWrite(node.page, buf.data());
  }
}

Status StaticSRTree::BulkLoad(const std::vector<Point>& points,
                              const std::vector<uint32_t>& oids) {
  if (points.size() != oids.size()) {
    return Status::InvalidArgument("points/oids size mismatch");
  }
  if (size_ != 0) {
    return Status::FailedPrecondition("BulkLoad requires an empty index");
  }
  for (const Point& p : points) {
    if (static_cast<int>(p.size()) != options_.dim) {
      return Status::InvalidArgument("point dimensionality mismatch");
    }
  }
  if (points.size() > 0xffffffffull) {
    return Status::InvalidArgument("too many points for 32-bit object slots");
  }
  if (points.empty()) return Status::OK();

  int height = 0;
  while (SubtreeCapacity(height) < points.size()) ++height;

  std::vector<uint32_t> items(points.size());
  std::iota(items.begin(), items.end(), 0);

  std::vector<BuildNode> pool;
  const size_t root_index = BuildSubtree(points, items, height, pool);
  SerializeTree(points, oids, pool, root_index);
  root_id_ = pool[root_index].page;
  root_level_ = height;
  size_ = points.size();
  CommitState();
  return Status::OK();
}

Status StaticSRTree::ExportEntries(
    const std::function<void(PointView, uint32_t)>& fn) const {
  if (size_ == 0) return Status::OK();
  std::vector<Point> points;
  std::vector<uint32_t> oids;
  std::queue<std::pair<PageId, int>> queue;
  queue.push({root_id_, root_level_});
  while (!queue.empty()) {
    const auto [id, level] = queue.front();
    queue.pop();
    const char* buf = file_.PeekPage(id);
    if (level == 0) {
      DecodeLeaf(buf, points, oids);
      for (size_t i = 0; i < points.size(); ++i) fn(points[i], oids[i]);
      continue;
    }
    const InnerRef inner = ParseInner(buf);
    for (size_t i = 0; i < inner.count; ++i) {
      queue.push({inner.first_child + static_cast<PageId>(i), level - 1});
    }
  }
  return Status::OK();
}

bool StaticSRTree::Contains(PointView point, uint32_t oid) const {
  if (size_ == 0 || static_cast<int>(point.size()) != options_.dim) {
    return false;
  }
  // Rect-guided descent: MBRs are exact over the stored coordinates, so the
  // containment test is exact too (no epsilon). Overlapping siblings mean
  // several children may need probing.
  std::queue<std::pair<PageId, int>> queue;
  queue.push({root_id_, root_level_});
  Point scratch;
  while (!queue.empty()) {
    const auto [id, level] = queue.front();
    queue.pop();
    const char* buf = file_.PeekPage(id);
    if (level == 0) {
      const LeafRef leaf = ParseLeaf(buf);
      for (size_t i = 0; i < leaf.count; ++i) {
        if (leaf.oids[i] != oid) continue;
        GatherPoint(leaf.points, i, scratch);
        if (std::equal(point.begin(), point.end(), scratch.begin())) {
          return true;
        }
      }
      continue;
    }
    const InnerRef inner = ParseInner(buf);
    for (size_t i = 0; i < inner.count; ++i) {
      bool inside = true;
      for (size_t d = 0; d < point.size() && inside; ++d) {
        const double lo = inner.lo.coords[d * inner.count + i];
        const double hi = inner.hi.coords[d * inner.count + i];
        inside = point[d] >= lo && point[d] <= hi;
      }
      if (inside) {
        queue.push({inner.first_child + static_cast<PageId>(i), level - 1});
      }
    }
  }
  return false;
}

// --------------------------------------------------------------------------
// Search
// --------------------------------------------------------------------------

void StaticSRTree::EntryMinDists(const InnerRef& inner, PointView query,
                                 KernelScratch& scratch,
                                 std::vector<double>& out) const {
  // Rect MINDIST^2 lands in scratch.dist, sphere MINDIST in scratch.dist2;
  // the combined SR bound is the max of the two in distance space.
  const std::vector<double>& rect_d2 =
      BatchRectMinDistSqFromBlocks(scratch, query, inner.lo, inner.hi);
  const std::vector<double>& sphere_d =
      BatchSphereMinDistFromBlock(scratch, query, inner.centers, inner.radii);
  out.resize(inner.count);
  for (size_t i = 0; i < inner.count; ++i) {
    out[i] = std::max(std::sqrt(rect_d2[i]), sphere_d[i]);
  }
}

void StaticSRTree::ScanLeaf(
    const LeafRef& leaf, PointView query, double bound_sq,
    KernelScratch& scratch, const TombstoneSet* tombstones,
    const std::function<void(double, uint32_t)>& offer) const {
  const std::vector<double>& d2 =
      BatchSquaredL2FromBlock(scratch, query, leaf.points, bound_sq);
  Point gather;
  for (size_t i = 0; i < leaf.count; ++i) {
    if (d2[i] > bound_sq) continue;
    if (Tombstoned(tombstones, leaf.points, i, leaf.oids[i], gather)) continue;
    offer(d2[i], leaf.oids[i]);
  }
}

void StaticSRTree::SearchKnnDfs(const PageFile::Snapshot& snap, PageId id,
                                int level, PointView query,
                                KnnCandidates& cand, KernelScratch& scratch,
                                std::vector<char>& page_scratch,
                                IoStatsDelta* io,
                                const TombstoneSet* tombstones) const {
  std::vector<std::pair<double, PageId>> order;
  {
    const PageHandle page = ReadPage(snap, id, level, io, page_scratch);
    if (level == 0) {
      ScanLeaf(ParseLeaf(page.data), query, cand.PruneDistanceSquared(),
               scratch, tombstones,
               [&](double d2, uint32_t oid) { cand.OfferSquared(d2, oid); });
      return;
    }
    const InnerRef inner = ParseInner(page.data);
    std::vector<double> mindist;
    EntryMinDists(inner, query, scratch, mindist);
    order.resize(inner.count);
    for (size_t i = 0; i < inner.count; ++i) {
      order[i] = {mindist[i], inner.first_child + static_cast<PageId>(i)};
    }
    std::sort(order.begin(), order.end());
    // The page (pin or scratch buffer) is released here; everything the
    // recursion needs has been copied into `order`.
  }
  for (const auto& [mindist, child] : order) {
    if (mindist > cand.PruneDistance()) break;
    SearchKnnDfs(snap, child, level - 1, query, cand, scratch, page_scratch,
                 io, tombstones);
  }
}

std::vector<Neighbor> StaticSRTree::KnnDfsSnapshot(
    const PageFile::Snapshot& snap, PointView query, int k, IoStatsDelta* io,
    const TombstoneSet* tombstones) const {
  CHECK_EQ(static_cast<int>(query.size()), options_.dim);
  KnnCandidates candidates(k);
  const PageId root = static_cast<PageId>(snap.meta(0));
  if (snap.meta(2) > 0 && root != kInvalidPageId) {
    KernelScratch scratch;
    std::vector<char> page_scratch;
    SearchKnnDfs(snap, root, static_cast<int>(snap.meta(1)), query,
                 candidates, scratch, page_scratch, io, tombstones);
  }
  return candidates.TakeSorted();
}

std::vector<Neighbor> StaticSRTree::KnnBestFirstSnapshot(
    const PageFile::Snapshot& snap, PointView query, int k, IoStatsDelta* io,
    const TombstoneSet* tombstones) const {
  CHECK_EQ(static_cast<int>(query.size()), options_.dim);
  KnnCandidates candidates(k);
  const PageId root = static_cast<PageId>(snap.meta(0));
  if (snap.meta(2) == 0 || root == kInvalidPageId) {
    return candidates.TakeSorted();
  }

  struct Pending {
    double mindist;
    PageId id;
    int level;
    bool operator>(const Pending& other) const {
      return mindist > other.mindist;
    }
  };
  std::priority_queue<Pending, std::vector<Pending>, std::greater<Pending>>
      frontier;
  KernelScratch scratch;
  std::vector<char> page_scratch;
  std::vector<double> mindist;
  frontier.push(Pending{0.0, root, static_cast<int>(snap.meta(1))});
  while (!frontier.empty()) {
    const Pending next = frontier.top();
    frontier.pop();
    if (next.mindist > candidates.PruneDistance()) break;
    const PageHandle page =
        ReadPage(snap, next.id, next.level, io, page_scratch);
    if (next.level == 0) {
      ScanLeaf(ParseLeaf(page.data), query, candidates.PruneDistanceSquared(),
               scratch, tombstones, [&](double d2, uint32_t oid) {
                 candidates.OfferSquared(d2, oid);
               });
      continue;
    }
    const InnerRef inner = ParseInner(page.data);
    EntryMinDists(inner, query, scratch, mindist);
    for (size_t i = 0; i < inner.count; ++i) {
      if (mindist[i] <= candidates.PruneDistance()) {
        frontier.push(Pending{mindist[i],
                              inner.first_child + static_cast<PageId>(i),
                              next.level - 1});
      }
    }
  }
  return candidates.TakeSorted();
}

void StaticSRTree::SearchRange(const PageFile::Snapshot& snap, PageId id,
                               int level, PointView query, double radius,
                               std::vector<Neighbor>& out,
                               KernelScratch& scratch,
                               std::vector<char>& page_scratch,
                               IoStatsDelta* io,
                               const TombstoneSet* tombstones) const {
  std::vector<PageId> hits;
  {
    const PageHandle page = ReadPage(snap, id, level, io, page_scratch);
    if (level == 0) {
      ScanLeaf(ParseLeaf(page.data), query, radius * radius, scratch,
               tombstones, [&](double d2, uint32_t oid) {
                 out.push_back(Neighbor{std::sqrt(d2), oid});
               });
      return;
    }
    const InnerRef inner = ParseInner(page.data);
    std::vector<double> mindist;
    EntryMinDists(inner, query, scratch, mindist);
    for (size_t i = 0; i < inner.count; ++i) {
      if (mindist[i] <= radius) {
        hits.push_back(inner.first_child + static_cast<PageId>(i));
      }
    }
  }
  for (const PageId child : hits) {
    SearchRange(snap, child, level - 1, query, radius, out, scratch,
                page_scratch, io, tombstones);
  }
}

std::vector<Neighbor> StaticSRTree::RangeSnapshot(
    const PageFile::Snapshot& snap, PointView query, double radius,
    IoStatsDelta* io, const TombstoneSet* tombstones) const {
  CHECK_EQ(static_cast<int>(query.size()), options_.dim);
  std::vector<Neighbor> result;
  const PageId root = static_cast<PageId>(snap.meta(0));
  if (snap.meta(2) > 0 && root != kInvalidPageId) {
    KernelScratch scratch;
    std::vector<char> page_scratch;
    SearchRange(snap, root, static_cast<int>(snap.meta(1)), query, radius,
                result, scratch, page_scratch, io, tombstones);
  }
  std::sort(result.begin(), result.end());  // canonical (distance, oid)
  return result;
}

std::vector<Neighbor> StaticSRTree::KnnDfsImpl(PointView query, int k,
                                               IoStatsDelta* io) const {
  EpochGuard guard(file_.epochs());
  return KnnDfsSnapshot(file_.AcquireSnapshot(guard), query, k, io, nullptr);
}

std::vector<Neighbor> StaticSRTree::KnnBestFirstImpl(PointView query, int k,
                                                     IoStatsDelta* io) const {
  EpochGuard guard(file_.epochs());
  return KnnBestFirstSnapshot(file_.AcquireSnapshot(guard), query, k, io,
                              nullptr);
}

std::vector<Neighbor> StaticSRTree::RangeImpl(PointView query, double radius,
                                              IoStatsDelta* io) const {
  EpochGuard guard(file_.epochs());
  return RangeSnapshot(file_.AcquireSnapshot(guard), query, radius, io,
                       nullptr);
}

// --------------------------------------------------------------------------
// Snapshot
// --------------------------------------------------------------------------

namespace {

// Snapshot-isolated read view: pins the committed version at acquisition.
// The tree is immutable, so this is mostly about giving composing indexes
// (and the engine) the same snapshot surface the dynamic SR-tree has.
class StaticSnapshot : public IndexSnapshot, public SearchDispatch {
 public:
  explicit StaticSnapshot(const StaticSRTree* tree)
      : IndexSnapshot(tree),
        tree_(tree),
        guard_(tree->epoch_domain()),
        snap_(tree->AcquirePageSnapshot(guard_)) {}

  [[nodiscard]] QueryResult Search(PointView query,
                                   const QuerySpec& spec) const override {
    return RunValidatedSearch(*this, tree_->dim(), query, spec);
  }

  uint64_t version() const override { return snap_.version(); }
  size_t size() const override { return snap_.meta(2); }

  std::vector<Neighbor> KnnDfsImpl(PointView query, int k,
                                   IoStatsDelta* io) const override {
    return tree_->KnnDfsSnapshot(snap_, query, k, io, nullptr);
  }
  std::vector<Neighbor> KnnBestFirstImpl(PointView query, int k,
                                         IoStatsDelta* io) const override {
    return tree_->KnnBestFirstSnapshot(snap_, query, k, io, nullptr);
  }
  std::vector<Neighbor> RangeImpl(PointView query, double radius,
                                  IoStatsDelta* io) const override {
    return tree_->RangeSnapshot(snap_, query, radius, io, nullptr);
  }

 private:
  const StaticSRTree* tree_;
  EpochGuard guard_;  // declared before snap_: released after it
  PageFile::Snapshot snap_;
};

}  // namespace

std::unique_ptr<IndexSnapshot> StaticSRTree::AcquireSnapshot() const {
  return std::make_unique<StaticSnapshot>(this);
}

// --------------------------------------------------------------------------
// Stats & validation
// --------------------------------------------------------------------------

std::vector<StaticSRTree::DecodedEntry> StaticSRTree::DecodeInner(
    const char* buf) const {
  const InnerRef inner = ParseInner(buf);
  const size_t dim = static_cast<size_t>(options_.dim);
  std::vector<DecodedEntry> entries(inner.count);
  for (size_t i = 0; i < inner.count; ++i) {
    Point center(dim), lo(dim), hi(dim);
    for (size_t d = 0; d < dim; ++d) {
      center[d] = inner.centers.coords[d * inner.count + i];
      lo[d] = inner.lo.coords[d * inner.count + i];
      hi[d] = inner.hi.coords[d * inner.count + i];
    }
    entries[i].sphere = Sphere(std::move(center), inner.radii[i]);
    entries[i].rect = Rect(std::move(lo), std::move(hi));
    entries[i].weight = inner.weights[i];
    entries[i].child = inner.first_child + static_cast<PageId>(i);
  }
  return entries;
}

void StaticSRTree::DecodeLeaf(const char* buf, std::vector<Point>& points,
                              std::vector<uint32_t>& oids) const {
  const LeafRef leaf = ParseLeaf(buf);
  points.resize(leaf.count);
  oids.resize(leaf.count);
  for (size_t i = 0; i < leaf.count; ++i) {
    GatherPoint(leaf.points, i, points[i]);
    oids[i] = leaf.oids[i];
  }
}

TreeStats StaticSRTree::GetTreeStats() const {
  TreeStats stats;
  if (size_ == 0) return stats;
  stats.height = root_level_ + 1;
  std::queue<std::pair<PageId, int>> queue;
  queue.push({root_id_, root_level_});
  while (!queue.empty()) {
    const auto [id, level] = queue.front();
    queue.pop();
    const char* buf = file_.PeekPage(id);
    if (level == 0) {
      ++stats.leaf_count;
      stats.entry_count += ParseLeaf(buf).count;
      continue;
    }
    ++stats.node_count;
    const InnerRef inner = ParseInner(buf);
    for (size_t i = 0; i < inner.count; ++i) {
      queue.push({inner.first_child + static_cast<PageId>(i), level - 1});
    }
  }
  return stats;
}

RegionSummary StaticSRTree::LeafRegionSummary() const {
  RegionStatsCollector collector;
  if (size_ == 0) return collector.Finish();
  std::queue<std::pair<PageId, int>> queue;
  queue.push({root_id_, root_level_});
  std::vector<Point> points;
  std::vector<uint32_t> oids;
  while (!queue.empty()) {
    const auto [id, level] = queue.front();
    queue.pop();
    const char* buf = file_.PeekPage(id);
    if (level == 0) {
      DecodeLeaf(buf, points, oids);
      if (points.empty()) continue;
      collector.CountLeaf();
      Rect bound = Rect::Empty(options_.dim);
      for (const Point& p : points) bound.Expand(p);
      collector.AddRect(bound);
      continue;
    }
    const InnerRef inner = ParseInner(buf);
    for (size_t i = 0; i < inner.count; ++i) {
      queue.push({inner.first_child + static_cast<PageId>(i), level - 1});
    }
  }
  return collector.Finish();
}

Status StaticSRTree::CheckInvariants() const {
  if (size_ > 0) RETURN_IF_ERROR(ValidateStructure());
  return debug::AuditIndex(*this);
}

void StaticSRTree::VisitNodes(const NodeVisitor& visitor) const {
  if (size_ == 0) return;
  std::vector<int> path;
  VisitSubtree(root_id_, path, visitor);
}

void StaticSRTree::VisitSubtree(PageId id, std::vector<int>& path,
                                const NodeVisitor& visitor) const {
  const char* buf = file_.PeekPage(id);
  const int level = PageLevel(buf);
  NodeView view;
  view.level = level;
  view.min_entries = 0;  // bulk-loaded: no minimum is enforced
  if (level == 0) {
    view.capacity = leaf_cap_;
    std::vector<Point> points;
    std::vector<uint32_t> oids;
    DecodeLeaf(buf, points, oids);
    view.points.reserve(points.size());
    for (const Point& p : points) view.points.push_back(p);
    visitor(path, view);
    return;
  }
  view.capacity = node_cap_;
  const std::vector<DecodedEntry> entries = DecodeInner(buf);
  view.entries.reserve(entries.size());
  for (const DecodedEntry& e : entries) {
    view.entries.push_back(
        EntryView{&e.rect, &e.sphere, e.weight, /*has_weight=*/true});
  }
  visitor(path, view);
  for (size_t i = 0; i < entries.size(); ++i) {
    path.push_back(static_cast<int>(i));
    VisitSubtree(entries[i].child, path, visitor);
    path.pop_back();
  }
}

AuditSpec StaticSRTree::GetAuditSpec() const {
  AuditSpec spec;
  spec.dim = options_.dim;
  spec.rect_semantics = RectSemantics::kExactMbr;
  spec.has_spheres = true;
  spec.sphere_bounded_by_rect = true;
  spec.has_weights = true;
  spec.internal_root_min2 = true;
  return spec;
}

}  // namespace srtree
