#include "src/statictier/tiered_index.h"

#include <algorithm>
#include <utility>

#include "src/common/check.h"
#include "src/index/index_factory.h"
#include "src/storage/image_io.h"

namespace srtree {
namespace {

// Persisted header of the "srtiered" image (see Save() for semantics).
struct TieredImageHeader {
  int32_t dim;
  uint32_t pad0;
  uint64_t page_size;
  uint64_t leaf_data_size;
  double min_utilization;
  double reinsert_fraction;
  uint32_t root_id;
  int32_t root_level;
  uint64_t size;
};

bool PlausibleOptions(const TieredIndex::Options& o) {
  return o.dim > 0 && o.dim <= (1 << 16) && o.page_size >= 64 &&
         o.page_size <= (1u << 28) && o.min_utilization > 0.0 &&
         o.min_utilization <= 0.5 && o.reinsert_fraction >= 0.0 &&
         o.reinsert_fraction < 1.0;
}

// IoStats carries no MergeFrom of its own; the tiered index is the first
// structure whose global counters are a sum of two page files.
void AccumulateStats(const IoStats& from, IoStats* into) {
  into->reads += from.reads;
  into->writes += from.writes;
  into->cache_misses += from.cache_misses;
  if (from.reads_by_level.size() > into->reads_by_level.size()) {
    into->reads_by_level.resize(from.reads_by_level.size(), 0);
  }
  for (size_t l = 0; l < from.reads_by_level.size(); ++l) {
    into->reads_by_level[l] += from.reads_by_level[l];
  }
}

}  // namespace

TieredIndex::TieredIndex(const Options& options) : options_(options) {
  CHECK_GT(options_.dim, 0);
  StaticSRTree::Options static_options;
  static_options.dim = options_.dim;
  static_options.page_size = options_.page_size;
  TierState initial;
  initial.static_tier = std::make_shared<StaticSRTree>(static_options);
  initial.delta = MakeDelta();
  initial.tombstones = std::make_shared<const TombstoneSet>();
  initial.delta_version = initial.delta->AcquireSnapshot()->version();
  PublishState(std::move(initial));
}

TieredIndex::~TieredIndex() = default;

std::shared_ptr<PointIndex> TieredIndex::MakeDelta() const {
  IndexConfig config;
  config.dim = options_.dim;
  config.page_size = options_.page_size;
  config.leaf_data_size = options_.leaf_data_size;
  config.min_utilization = options_.min_utilization;
  config.reinsert_fraction = options_.reinsert_fraction;
  return std::shared_ptr<PointIndex>(MakeIndex(IndexType::kSRTree, config));
}

size_t TieredIndex::size() const { return LoadState()->size; }

// --------------------------------------------------------------------------
// Mutation
// --------------------------------------------------------------------------

Status TieredIndex::Insert(PointView point, uint32_t oid) {
  MutexLock lock(writer_mu_);
  const std::shared_ptr<const TierState> cur = LoadState();
  // A pair tombstoned in the static tier may be re-inserted: the delta copy
  // serves queries from now on, and the tombstone keeps masking the stale
  // static copy until the next compaction drops both.
  RETURN_IF_ERROR(cur->delta->Insert(point, oid));
  TierState next = *cur;
  next.delta_version = next.delta->AcquireSnapshot()->version();
  ++next.version;
  ++next.size;
  PublishState(std::move(next));
  return Status::OK();
}

Status TieredIndex::Delete(PointView point, uint32_t oid) {
  MutexLock lock(writer_mu_);
  const std::shared_ptr<const TierState> cur = LoadState();
  TierState next = *cur;
  Status delta_status = cur->delta->Delete(point, oid);
  if (delta_status.ok()) {
    next.delta_version = next.delta->AcquireSnapshot()->version();
    ++next.version;
    --next.size;
    PublishState(std::move(next));
    return Status::OK();
  }
  if (!delta_status.IsNotFound()) return delta_status;
  const std::pair<Point, uint32_t> key(Point(point.begin(), point.end()), oid);
  if (cur->tombstones->count(key) > 0 ||
      !cur->static_tier->Contains(point, oid)) {
    return Status::NotFound("no such (point, oid) pair");
  }
  // Copy-on-write so snapshots holding the old set never see the mutation.
  auto replacement = std::make_shared<TombstoneSet>(*cur->tombstones);
  replacement->insert(key);
  next.tombstones = std::move(replacement);
  ++next.version;
  --next.size;
  PublishState(std::move(next));
  return Status::OK();
}

Status TieredIndex::BulkLoad(const std::vector<Point>& points,
                             const std::vector<uint32_t>& oids) {
  MutexLock lock(writer_mu_);
  const std::shared_ptr<const TierState> cur = LoadState();
  if (cur->size != 0 || cur->delta->size() != 0) {
    return Status::FailedPrecondition("BulkLoad requires an empty index");
  }
  RETURN_IF_ERROR(cur->static_tier->BulkLoad(points, oids));
  TierState next = *cur;
  next.size = points.size();
  PublishState(std::move(next));
  return Status::OK();
}

Status TieredIndex::CollectLogicalContents(const TierState& state,
                                           std::vector<Point>* points,
                                           std::vector<uint32_t>* oids) const {
  points->clear();
  oids->clear();
  points->reserve(state.size);
  oids->reserve(state.size);
  const TombstoneSet& tombstones = *state.tombstones;
  Point scratch;
  RETURN_IF_ERROR(
      state.static_tier->ExportEntries([&](PointView p, uint32_t oid) {
        if (!tombstones.empty()) {
          scratch.assign(p.begin(), p.end());
          if (tombstones.count({scratch, oid}) > 0) return;
        }
        points->emplace_back(p.begin(), p.end());
        oids->push_back(oid);
      }));
  RETURN_IF_ERROR(state.delta->ExportEntries([&](PointView p, uint32_t oid) {
    points->emplace_back(p.begin(), p.end());
    oids->push_back(oid);
  }));
  if (points->size() != state.size) {
    return Status::Corruption("tiered bookkeeping does not match contents");
  }
  return Status::OK();
}

Status TieredIndex::Compact() {
  MutexLock lock(writer_mu_);
  const std::shared_ptr<const TierState> cur = LoadState();
  std::vector<Point> points;
  std::vector<uint32_t> oids;
  RETURN_IF_ERROR(CollectLogicalContents(*cur, &points, &oids));

  StaticSRTree::Options static_options;
  static_options.dim = options_.dim;
  static_options.page_size = options_.page_size;
  auto merged = std::make_shared<StaticSRTree>(static_options);
  RETURN_IF_ERROR(merged->BulkLoad(points, oids));

  // Publish the rebuilt arrangement; snapshots acquired before this point
  // keep shared ownership of the old state and are undisturbed. The version
  // counter does NOT advance: compaction changes representation, not
  // contents.
  TierState next;
  next.static_tier = std::move(merged);
  next.delta = MakeDelta();
  next.tombstones = std::make_shared<const TombstoneSet>();
  next.version = cur->version;
  next.size = cur->size;
  next.delta_version = next.delta->AcquireSnapshot()->version();
  PublishState(std::move(next));
  return Status::OK();
}

// --------------------------------------------------------------------------
// Persistence
// --------------------------------------------------------------------------

Status TieredIndex::Save(const std::string& path) const {
  MutexLock lock(writer_mu_);
  const std::shared_ptr<const TierState> cur = LoadState();
  std::vector<Point> points;
  std::vector<uint32_t> oids;
  RETURN_IF_ERROR(CollectLogicalContents(*cur, &points, &oids));

  StaticSRTree::Options static_options;
  static_options.dim = options_.dim;
  static_options.page_size = options_.page_size;
  StaticSRTree merged(static_options);
  RETURN_IF_ERROR(merged.BulkLoad(points, oids));

  TieredImageHeader header = {};
  header.dim = options_.dim;
  header.page_size = options_.page_size;
  header.leaf_data_size = options_.leaf_data_size;
  header.min_utilization = options_.min_utilization;
  header.reinsert_fraction = options_.reinsert_fraction;
  header.root_id = merged.root_id();
  header.root_level = merged.root_level();
  header.size = merged.size();
  return AtomicWriteFile(path, [&](std::ostream& out) {
    RETURN_IF_ERROR(WriteIndexImageTo(out, kImageTag, &header, sizeof(header)));
    return merged.SavePagesTo(out);
  });
}

StatusOr<std::unique_ptr<TieredIndex>> TieredIndex::Open(
    const std::string& path) {
  TieredImageHeader header = {};
  IndexImageFile image;
  RETURN_IF_ERROR(image.Open(path, kImageTag, &header, sizeof(header)));

  Options options;
  options.dim = header.dim;
  options.page_size = header.page_size;
  options.leaf_data_size = header.leaf_data_size;
  options.min_utilization = header.min_utilization;
  options.reinsert_fraction = header.reinsert_fraction;
  if (!PlausibleOptions(options)) {
    return Status::Corruption("implausible tiered index header");
  }
  auto index = std::make_unique<TieredIndex>(options);
  const std::shared_ptr<const TierState> cur = index->LoadState();
  RETURN_IF_ERROR(cur->static_tier->LoadPages(
      image.stream(), header.root_id, header.root_level, header.size));
  TierState next = *cur;
  next.size = header.size;
  index->PublishState(std::move(next));
  return index;
}

// --------------------------------------------------------------------------
// Snapshots & search
// --------------------------------------------------------------------------

TieredIndex::CapturedView TieredIndex::CaptureState() const {
  // Lock-free snapshot acquisition: load the published state, pin a delta
  // snapshot, and retry when a mutation committed in between — the delta
  // snapshot's version then differs from the one the state was published
  // with. Mutators store state_ strictly AFTER the delta mutation it
  // describes, so version equality proves (state, delta_snap) describe the
  // same commit. Reading through writer_mu_ instead would nest that lock
  // under every storage lock held by callers of size()/AcquireSnapshot().
  for (;;) {
    std::shared_ptr<const TierState> state = LoadState();
    std::unique_ptr<IndexSnapshot> delta_snap =
        state->delta->AcquireSnapshot();
    if (delta_snap->version() == state->delta_version) {
      return CapturedView{std::move(state), std::move(delta_snap)};
    }
  }
}

// A pinned two-tier read view. Member order is destruction-critical: the
// epoch guard, page snapshot (static tier) and delta snapshot must die
// before the TierState whose shared_ptrs keep their owners alive.
class TieredSnapshot : public IndexSnapshot, public SearchDispatch {
 public:
  TieredSnapshot(const TieredIndex* index, TieredIndex::CapturedView view)
      : IndexSnapshot(index),
        dim_(index->dim()),
        state_(std::move(view.state)),
        static_tree_(state_->static_tier),
        tombstones_(state_->tombstones),
        version_(state_->version),
        size_(state_->size),
        guard_(static_tree_->epoch_domain()),
        snap_(static_tree_->AcquirePageSnapshot(guard_)),
        delta_snap_(std::move(view.delta_snap)) {}

  [[nodiscard]] QueryResult Search(PointView query,
                                   const QuerySpec& spec) const override {
    return RunValidatedSearch(*this, dim_, query, spec);
  }

  uint64_t version() const override { return version_; }
  size_t size() const override { return size_; }

  std::vector<Neighbor> KnnDfsImpl(PointView query, int k,
                                   IoStatsDelta* io) const override {
    return MergedKnn(query, k, io, QuerySpec::Knn(k),
                     static_tree_->KnnDfsSnapshot(snap_, query, k, io,
                                                  tombstones_.get()));
  }
  std::vector<Neighbor> KnnBestFirstImpl(PointView query, int k,
                                         IoStatsDelta* io) const override {
    return MergedKnn(query, k, io, QuerySpec::KnnBestFirst(k),
                     static_tree_->KnnBestFirstSnapshot(snap_, query, k, io,
                                                        tombstones_.get()));
  }
  std::vector<Neighbor> RangeImpl(PointView query, double radius,
                                  IoStatsDelta* io) const override {
    std::vector<Neighbor> merged = static_tree_->RangeSnapshot(
        snap_, query, radius, io, tombstones_.get());
    QueryResult delta_result =
        delta_snap_->Search(query, QuerySpec::Range(radius));
    io->MergeFrom(delta_result.io);
    merged.insert(merged.end(), delta_result.neighbors.begin(),
                  delta_result.neighbors.end());
    std::sort(merged.begin(), merged.end());  // canonical (distance, oid)
    return merged;
  }

 private:
  // Merges the static tier's top-k with the delta's top-k: the true top-k
  // of the union is a subset of the union of per-tier top-k lists, so the
  // canonical merge-then-truncate is exact.
  std::vector<Neighbor> MergedKnn(PointView query, int k, IoStatsDelta* io,
                                  const QuerySpec& delta_spec,
                                  std::vector<Neighbor> from_static) const {
    QueryResult delta_result = delta_snap_->Search(query, delta_spec);
    io->MergeFrom(delta_result.io);
    std::vector<Neighbor> merged;
    merged.reserve(from_static.size() + delta_result.neighbors.size());
    std::merge(from_static.begin(), from_static.end(),
               delta_result.neighbors.begin(), delta_result.neighbors.end(),
               std::back_inserter(merged));
    if (merged.size() > static_cast<size_t>(k)) {
      merged.resize(static_cast<size_t>(k));
    }
    return merged;
  }

  int dim_;
  std::shared_ptr<const TieredIndex::TierState> state_;
  std::shared_ptr<const StaticSRTree> static_tree_;
  std::shared_ptr<const TombstoneSet> tombstones_;
  uint64_t version_;
  size_t size_;
  EpochGuard guard_;
  PageFile::Snapshot snap_;
  std::unique_ptr<IndexSnapshot> delta_snap_;
};

std::unique_ptr<IndexSnapshot> TieredIndex::AcquireSnapshot() const {
  return std::make_unique<TieredSnapshot>(this, CaptureState());
}

std::vector<Neighbor> TieredIndex::KnnDfsImpl(PointView query, int k,
                                              IoStatsDelta* io) const {
  return TieredSnapshot(this, CaptureState()).KnnDfsImpl(query, k, io);
}

std::vector<Neighbor> TieredIndex::KnnBestFirstImpl(PointView query, int k,
                                                    IoStatsDelta* io) const {
  return TieredSnapshot(this, CaptureState()).KnnBestFirstImpl(query, k, io);
}

std::vector<Neighbor> TieredIndex::RangeImpl(PointView query, double radius,
                                             IoStatsDelta* io) const {
  return TieredSnapshot(this, CaptureState()).RangeImpl(query, radius, io);
}

// --------------------------------------------------------------------------
// Introspection & plumbing
// --------------------------------------------------------------------------

Status TieredIndex::ExportEntries(
    const std::function<void(PointView, uint32_t)>& fn) const {
  MutexLock lock(writer_mu_);  // exclude mutators: the live delta is walked
  const std::shared_ptr<const TierState> cur = LoadState();
  const TombstoneSet& tombstones = *cur->tombstones;
  Point scratch;
  RETURN_IF_ERROR(
      cur->static_tier->ExportEntries([&](PointView p, uint32_t oid) {
        if (!tombstones.empty()) {
          scratch.assign(p.begin(), p.end());
          if (tombstones.count({scratch, oid}) > 0) return;
        }
        fn(p, oid);
      }));
  return cur->delta->ExportEntries(fn);
}

TreeStats TieredIndex::GetTreeStats() const {
  const std::shared_ptr<const TierState> cur = LoadState();
  const TreeStats s = cur->static_tier->GetTreeStats();
  const TreeStats d = cur->delta->GetTreeStats();
  TreeStats merged;
  merged.height = std::max(s.height, d.height);
  merged.node_count = s.node_count + d.node_count;
  merged.leaf_count = s.leaf_count + d.leaf_count;
  // Includes tombstoned static entries: these are physical-page statistics.
  merged.entry_count = s.entry_count + d.entry_count;
  return merged;
}

MaintenanceStats TieredIndex::GetMaintenanceStats() const {
  return LoadState()->delta->GetMaintenanceStats();
}

Status TieredIndex::CheckInvariants() const {
  MutexLock lock(writer_mu_);  // exclude mutators: bookkeeping must be still
  const std::shared_ptr<const TierState> cur = LoadState();
  RETURN_IF_ERROR(cur->static_tier->CheckInvariants());
  RETURN_IF_ERROR(cur->delta->CheckInvariants());
  for (const auto& [point, oid] : *cur->tombstones) {
    if (!cur->static_tier->Contains(point, oid)) {
      return Status::Corruption("tombstone names a pair not in static tier");
    }
  }
  const size_t tombstone_count = cur->tombstones->size();
  const size_t physical = cur->static_tier->size() + cur->delta->size();
  if (physical < tombstone_count ||
      physical - tombstone_count != cur->size) {
    return Status::Corruption("tiered size bookkeeping is inconsistent");
  }
  return Status::OK();
}

RegionSummary TieredIndex::LeafRegionSummary() const {
  // The static tier holds the bulk of the data; its leaf regions are the
  // meaningful geometry for the paper's figures.
  return LoadState()->static_tier->LeafRegionSummary();
}

const IoStats& TieredIndex::io_stats() const {
  MutexLock lock(writer_mu_);  // guards legacy_io_stats_
  const std::shared_ptr<const TierState> cur = LoadState();
  legacy_io_stats_ = IoStats{};
  AccumulateStats(cur->static_tier->GetIoStats(), &legacy_io_stats_);
  AccumulateStats(cur->delta->GetIoStats(), &legacy_io_stats_);
  return legacy_io_stats_;
}

void TieredIndex::ResetIoStats() {
  MutexLock lock(writer_mu_);
  const std::shared_ptr<const TierState> cur = LoadState();
  // This IS the reset interface, forwarded to both tiers; the quiesce
  // contract (see PointIndex::ResetIoStats) is the caller's.
  cur->static_tier->ResetIoStats();  // srlint: allow(R1) reset-interface fan-out
  cur->delta->ResetIoStats();        // srlint: allow(R1) reset-interface fan-out
}

IoStats TieredIndex::GetIoStats() const {
  const std::shared_ptr<const TierState> cur = LoadState();
  IoStats merged;
  AccumulateStats(cur->static_tier->GetIoStats(), &merged);
  AccumulateStats(cur->delta->GetIoStats(), &merged);
  return merged;
}

void TieredIndex::SimulateBufferPool(size_t capacity) {
  MutexLock lock(writer_mu_);
  const std::shared_ptr<const TierState> cur = LoadState();
  cur->static_tier->SimulateBufferPool(capacity);
  cur->delta->SimulateBufferPool(capacity);
}

void TieredIndex::UseBufferPool(size_t capacity) {
  MutexLock lock(writer_mu_);
  const std::shared_ptr<const TierState> cur = LoadState();
  cur->static_tier->UseBufferPool(capacity);
  cur->delta->UseBufferPool(capacity);
}

size_t TieredIndex::leaf_capacity() const {
  return LoadState()->static_tier->leaf_capacity();
}

size_t TieredIndex::node_capacity() const {
  return LoadState()->static_tier->node_capacity();
}

EpochManager* TieredIndex::epoch_domain_for_test() const {
  return LoadState()->delta->epoch_domain_for_test();
}

size_t TieredIndex::delta_size_for_test() const {
  return LoadState()->delta->size();
}

size_t TieredIndex::tombstone_count_for_test() const {
  return LoadState()->tombstones->size();
}

}  // namespace srtree
