// X-tree (Berchtold, Keim & Kriegel, VLDB 1996) — the related-work
// structure of Section 2.6, implemented as an extension so the paper's
// open question ("are overlap-free splits and supernodes compatible with
// the SR-tree's ideas?") can be explored empirically.
//
// The X-tree is an R-tree variant that refuses to create high-overlap
// directory nodes:
//   * on directory overflow it first tries the R*-tree topological split;
//   * if the two halves would overlap by more than `max_overlap` of their
//     union, it looks for an overlap-FREE split (a clean gap along some
//     dimension);
//   * if no sufficiently balanced overlap-free split exists, it does not
//     split at all — the node becomes a SUPERNODE spanning one more disk
//     page (reading it costs one read per page, which the I/O accounting
//     reflects).
// Leaves always split (supernodes are a directory concept). Unlike the
// R*-tree, the X-tree does not use forced reinsertion.

#ifndef SRTREE_XTREE_X_TREE_H_
#define SRTREE_XTREE_X_TREE_H_

#include <vector>

#include "src/geometry/kernel.h"
#include "src/geometry/rect.h"
#include "src/index/knn.h"
#include "src/index/point_index.h"
#include "src/storage/buffer_pool.h"
#include "src/storage/page_file.h"

namespace srtree {

class XTree : public PointIndex {
 public:
  struct Options {
    int dim = 2;
    size_t page_size = kDefaultPageSize;
    size_t leaf_data_size = 512;
    double min_utilization = 0.4;
    // Maximum tolerated overlap (intersection / union volume) of a
    // topological split before the overlap-free split is attempted.
    double max_overlap = 0.2;
    // Minimum fraction of entries each side of an overlap-free split must
    // receive; below this the node becomes a supernode instead.
    double min_fanout = 0.35;
  };

  explicit XTree(const Options& options);

  // Type tag embedded in the v2 index-image container.
  static constexpr char kImageTag[] = "xtree";

  // Checksummed atomic image persistence (see PointIndex::Save). Supernode
  // chains are self-contained in the page image (next-page links live in
  // the page headers), so no extra metadata is needed.
  Status Save(const std::string& path) const override;
  static StatusOr<std::unique_ptr<XTree>> Open(const std::string& path);

  int dim() const override { return options_.dim; }
  size_t size() const override { return size_; }
  std::string name() const override { return "X-tree"; }

  Status Insert(PointView point, uint32_t oid) override;
  Status Delete(PointView point, uint32_t oid) override;

  TreeStats GetTreeStats() const override;
  Status CheckInvariants() const override;
  void VisitNodes(const NodeVisitor& visitor) const override;
  AuditSpec GetAuditSpec() const override;
  RegionSummary LeafRegionSummary() const override;

  MaintenanceStats GetMaintenanceStats() const override {
    return maintenance_;
  }

  // Forwarders to the page file's counters. io_stats() is the deprecated
  // unlocked reference (single-threaded benches only); the reset is locked
  // but only meaningful on a quiesced index — see PointIndex::ResetIoStats
  // for the exclusion contract the concurrent fuzzer asserts.
  const IoStats& io_stats() const override { return file_.stats(); }
  void ResetIoStats() override { file_.ResetStats(); }
  IoStats GetIoStats() const override { return file_.GetIoStats(); }

  void SimulateBufferPool(size_t capacity) override {
    file_.SimulateCache(capacity);
  }
  void UseBufferPool(size_t capacity) override {
    pool_ = capacity > 0 ? std::make_unique<BufferPool>(&file_, capacity)
                         : nullptr;
  }

  size_t leaf_capacity() const override { return leaf_cap_; }
  // Entries per directory PAGE; a supernode of p pages holds p times this.
  size_t node_capacity() const override { return node_cap_; }
  int height() const { return root_level_ + 1; }

  // X-tree-specific statistics.
  struct SupernodeStats {
    uint64_t supernodes = 0;      // directory nodes spanning > 1 page
    uint64_t supernode_pages = 0; // pages occupied by supernodes
    uint64_t directory_nodes = 0; // all directory nodes
  };
  SupernodeStats GetSupernodeStats() const;
  uint64_t overlap_free_splits() const { return overlap_free_splits_; }
  uint64_t supernode_extensions() const { return supernode_extensions_; }

 protected:
  std::vector<Neighbor> KnnDfsImpl(PointView query, int k,
                                   IoStatsDelta* io) const override;
  std::vector<Neighbor> KnnBestFirstImpl(PointView query, int k,
                                         IoStatsDelta* io) const override;
  std::vector<Neighbor> RangeImpl(PointView query, double radius,
                                  IoStatsDelta* io) const override;

 private:
  struct LeafEntry {
    Point point;
    uint32_t oid;
  };

  struct NodeEntry {
    Rect rect;
    PageId child;
  };

  struct Node {
    PageId id = kInvalidPageId;
    int level = 0;
    // Continuation pages after the primary one; non-empty = supernode.
    std::vector<PageId> extra_pages;
    // Number of pages this node is entitled to occupy; grows by supernode
    // extension, shrinks on deletion underflow.
    size_t num_pages = 1;
    std::vector<NodeEntry> children;
    std::vector<LeafEntry> points;

    bool is_leaf() const { return level == 0; }
    size_t count() const { return is_leaf() ? points.size() : children.size(); }
  };

  // --- page I/O (chained pages for supernodes) ---
  Node ReadNode(PageId id, int level,
                IoStatsDelta* io = nullptr) const;
  Node PeekNode(PageId id) const;
  Node LoadNode(PageId id, bool count_reads, int level,
                IoStatsDelta* io) const;
  void WriteNode(Node& node);

  size_t Capacity(const Node& node) const {
    return node.is_leaf() ? leaf_cap_ : node_cap_ * node.num_pages;
  }
  size_t MinEntries(const Node& node) const;
  size_t PerPageCapacity(const Node& node) const {
    return node.is_leaf() ? leaf_cap_ : node_cap_;
  }

  // --- region helpers ---
  static Rect EntryRect(const Node& node, size_t i);
  Rect NodeBoundingRect(const Node& node) const;

  // --- insertion machinery ---
  int ChooseSubtree(const Node& node, const Rect& entry_rect) const;
  void ResolvePath(std::vector<Node>& path, const std::vector<int>& idx);
  void WritePathRefreshingRects(std::vector<Node>& path,
                                const std::vector<int>& idx, int from);
  // R*-tree topological split; fills `order`/`split` with the best
  // distribution and returns the overlap ratio (intersection volume over
  // union volume) of the two bounds.
  double TopologicalSplit(const Node& node, std::vector<size_t>& order,
                          size_t& split) const;
  // Overlap-free split: a clean gap along some dimension with both sides
  // >= min_fanout of the entries. Returns false if none exists.
  bool OverlapFreeSplit(const Node& node, std::vector<size_t>& order,
                        size_t& split) const;
  Node SplitNode(Node& node, const std::vector<size_t>& order, size_t split);
  void GrowRoot(Node& left, Node& right);

  // --- deletion machinery ---
  bool FindLeafPath(const Node& node, PointView point, uint32_t oid,
                    std::vector<Node>& path, std::vector<int>& idx);
  void CondenseTree(std::vector<Node>& path, std::vector<int>& idx);
  void ReinsertOrphans(std::vector<Node>&& dissolved);
  void InsertEntryAtLevel(const NodeEntry& entry, int level);
  void InsertLeafEntry(LeafEntry entry);
  void ShrinkRoot();
  void FreeNodePages(const Node& node);

  // --- search ---
  void SearchKnn(PageId id, int level, PointView query,
                 KnnCandidates& cand, KernelScratch& scratch,
                 IoStatsDelta* io) const;
  void SearchRange(PageId id, int level, PointView query,
                   double radius, std::vector<Neighbor>& out,
                   KernelScratch& scratch, IoStatsDelta* io) const;

  // --- validation / stats ---
  void VisitSubtree(const Node& node, std::vector<int>& path,
                    const NodeVisitor& visitor) const;
  void CollectStats(const Node& node, TreeStats& stats) const;
  void CollectRegions(const Node& node, RegionStatsCollector& collector) const;
  void CollectSupernodes(const Node& node, SupernodeStats& stats) const;

  Options options_;
  size_t leaf_cap_;
  size_t node_cap_;
  size_t leaf_min_;
  size_t node_min_;

  mutable PageFile file_;
  // Optional warm cache on the query path (UseBufferPool); WriteNode
  // invalidates its frames so single-writer mutation stays coherent.
  std::unique_ptr<BufferPool> pool_;
  PageId root_id_;
  int root_level_ = 0;
  size_t size_ = 0;
  MaintenanceStats maintenance_;
  uint64_t overlap_free_splits_ = 0;
  uint64_t supernode_extensions_ = 0;
};

}  // namespace srtree

#endif  // SRTREE_XTREE_X_TREE_H_
