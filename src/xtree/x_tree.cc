#include "src/xtree/x_tree.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <queue>

#include "src/common/check.h"
#include "src/debug/structural_auditor.h"
#include "src/geometry/kernel.h"
#include "src/storage/image_io.h"

namespace srtree {
namespace {

// Per-page header: level (u8), pad (u8), count in this page (u16),
// next page of the chain (u32; kInvalidPageId terminates). The same 8-byte
// layout as the other trees, with the reserved word carrying the chain.
constexpr size_t kHeaderBytes = 8;

// Overlap measure of two rectangles: per-dimension product of
// intersection extent over combined extent — a monotone proxy for
// ||A ∩ B|| / ||A ∪ B|| that cannot underflow unless the overlap is
// genuinely negligible.
double OverlapRatio(const Rect& a, const Rect& b) {
  double ratio = 1.0;
  for (int d = 0; d < a.dim(); ++d) {
    const double inter =
        std::min(a.hi()[d], b.hi()[d]) - std::max(a.lo()[d], b.lo()[d]);
    if (inter <= 0.0) return 0.0;
    const double span =
        std::max(a.hi()[d], b.hi()[d]) - std::min(a.lo()[d], b.lo()[d]);
    if (span > 0.0) ratio *= inter / span;
  }
  return ratio;
}

}  // namespace

XTree::XTree(const Options& options)
    : options_(options), file_(options.page_size) {
  CHECK_GT(options_.dim, 0);
  CHECK_GT(options_.min_utilization, 0.0);
  CHECK_LE(options_.min_utilization, 0.5);
  CHECK_GE(options_.max_overlap, 0.0);
  CHECK_GT(options_.min_fanout, 0.0);
  CHECK_LE(options_.min_fanout, 0.5);

  const size_t dim = static_cast<size_t>(options_.dim);
  const size_t leaf_entry =
      dim * sizeof(double) + sizeof(uint32_t) + options_.leaf_data_size;
  const size_t node_entry = 2 * dim * sizeof(double) + sizeof(uint32_t);
  leaf_cap_ = (options_.page_size - kHeaderBytes) / leaf_entry;
  node_cap_ = (options_.page_size - kHeaderBytes) / node_entry;
  CHECK_GE(leaf_cap_, 2u);
  CHECK_GE(node_cap_, 2u);
  leaf_min_ = std::max<size_t>(
      1, static_cast<size_t>(options_.min_utilization * leaf_cap_));
  node_min_ = std::max<size_t>(
      1, static_cast<size_t>(options_.min_fanout * node_cap_));

  Node root;
  root.id = file_.Allocate();
  root.level = 0;
  WriteNode(root);
  root_id_ = root.id;
}

size_t XTree::MinEntries(const Node& node) const {
  return node.is_leaf() ? leaf_min_ : node_min_;
}

// --------------------------------------------------------------------------
// Persistence
// --------------------------------------------------------------------------

namespace {

// v2 header record embedded in the SRIX container (src/storage/image_io.h);
// the container carries the magic, tag, and a CRC32C over these bytes.
struct XImageHeader {
  int32_t dim;
  uint32_t pad0;
  uint64_t page_size;
  uint64_t leaf_data_size;
  double min_utilization;
  double max_overlap;
  double min_fanout;
  uint32_t root_id;
  int32_t root_level;
  uint64_t size;
};

// True iff `o` would pass every constructor CHECK, so Open() can reject a
// forged header with Corruption instead of crashing the process. The
// negated-range form also rejects NaN parameter values.
bool PlausibleOptions(const XTree::Options& o) {
  if (o.dim <= 0 || o.dim > (1 << 16)) return false;
  if (!(o.min_utilization > 0.0 && o.min_utilization <= 0.5)) return false;
  if (!(o.max_overlap >= 0.0)) return false;
  if (!(o.min_fanout > 0.0 && o.min_fanout <= 0.5)) return false;
  if (o.page_size <= kHeaderBytes || o.page_size > (1u << 28)) return false;
  if (o.leaf_data_size > o.page_size) return false;
  const size_t dim = static_cast<size_t>(o.dim);
  const size_t leaf_entry =
      dim * sizeof(double) + sizeof(uint32_t) + o.leaf_data_size;
  const size_t node_entry = 2 * dim * sizeof(double) + sizeof(uint32_t);
  return (o.page_size - kHeaderBytes) / leaf_entry >= 2 &&
         (o.page_size - kHeaderBytes) / node_entry >= 2;
}

}  // namespace

Status XTree::Save(const std::string& path) const {
  XImageHeader header = {};
  header.dim = options_.dim;
  header.page_size = options_.page_size;
  header.leaf_data_size = options_.leaf_data_size;
  header.min_utilization = options_.min_utilization;
  header.max_overlap = options_.max_overlap;
  header.min_fanout = options_.min_fanout;
  header.root_id = root_id_;
  header.root_level = root_level_;
  header.size = size_;
  return AtomicWriteFile(path, [&](std::ostream& out) {
    RETURN_IF_ERROR(
        WriteIndexImageTo(out, kImageTag, &header, sizeof(header)));
    return file_.SaveTo(out);
  });
}

StatusOr<std::unique_ptr<XTree>> XTree::Open(const std::string& path) {
  XImageHeader header = {};
  IndexImageFile image;
  RETURN_IF_ERROR(image.Open(path, kImageTag, &header, sizeof(header)));

  Options options;
  options.dim = header.dim;
  options.page_size = header.page_size;
  options.leaf_data_size = header.leaf_data_size;
  options.min_utilization = header.min_utilization;
  options.max_overlap = header.max_overlap;
  options.min_fanout = header.min_fanout;
  if (!PlausibleOptions(options) || header.root_level < 0 ||
      header.root_level > 64) {
    return Status::Corruption("implausible X-tree header");
  }
  auto tree = std::make_unique<XTree>(options);
  RETURN_IF_ERROR(tree->file_.LoadFrom(image.stream()));
  if (!tree->file_.is_live(header.root_id)) {
    return Status::Corruption("X-tree root page is not live in the image");
  }
  tree->root_id_ = header.root_id;
  tree->root_level_ = header.root_level;
  tree->size_ = header.size;
  tree->maintenance_ = MaintenanceStats{};
  tree->overlap_free_splits_ = 0;
  tree->supernode_extensions_ = 0;
  RETURN_IF_ERROR(tree->CheckInvariants());
  return tree;
}

// --------------------------------------------------------------------------
// Page I/O — supernodes are chains of pages
// --------------------------------------------------------------------------

XTree::Node XTree::LoadNode(PageId id, bool count_reads, int level,
                            IoStatsDelta* io) const {
  Node node;
  node.id = id;
  const size_t dim = static_cast<size_t>(options_.dim);
  std::vector<char> buf(options_.page_size);
  PageId cur = id;
  bool first = true;
  while (cur != kInvalidPageId) {
    const char* raw;
    if (count_reads) {
      // Every page of a supernode chain is a counted read.
      if (pool_ != nullptr) {
        pool_->Read(cur, buf.data(), level, io);
      } else {
        file_.Read(cur, buf.data(), level, io);
      }
      raw = buf.data();
    } else {
      raw = file_.PeekPage(cur);
    }
    PageReader r(raw, options_.page_size);
    node.level = r.GetU8();
    r.GetU8();
    const size_t count = r.GetU16();
    const PageId next = r.GetU32();
    if (node.level == 0) {
      for (size_t i = 0; i < count; ++i) {
        LeafEntry e;
        e.point.resize(dim);
        r.GetDoubles(e.point);
        e.oid = r.GetU32();
        r.Skip(options_.leaf_data_size);
        node.points.push_back(std::move(e));
      }
    } else {
      for (size_t i = 0; i < count; ++i) {
        Point lo(dim), hi(dim);
        r.GetDoubles(lo);
        r.GetDoubles(hi);
        NodeEntry e;
        e.rect = Rect(std::move(lo), std::move(hi));
        e.child = r.GetU32();
        node.children.push_back(std::move(e));
      }
    }
    if (!first) node.extra_pages.push_back(cur);
    first = false;
    cur = next;
  }
  node.num_pages = 1 + node.extra_pages.size();
  return node;
}

XTree::Node XTree::ReadNode(PageId id, int level, IoStatsDelta* io) const {
  Node node = LoadNode(id, /*count_reads=*/true, level, io);
  DCHECK_EQ(node.level, level);
  return node;
}

XTree::Node XTree::PeekNode(PageId id) const {
  return LoadNode(id, /*count_reads=*/false, -1, nullptr);
}

void XTree::WriteNode(Node& node) {
  const size_t per_page = PerPageCapacity(node);
  const size_t required =
      std::max<size_t>(1, (node.count() + per_page - 1) / per_page);
  CHECK(node.is_leaf() ? required == 1 : true);
  node.num_pages = std::max(node.num_pages, required);
  while (node.extra_pages.size() < node.num_pages - 1) {
    node.extra_pages.push_back(file_.Allocate());
  }
  while (node.extra_pages.size() > node.num_pages - 1) {
    file_.Free(node.extra_pages.back());
    node.extra_pages.pop_back();
  }

  std::vector<char> buf(options_.page_size);
  const size_t total = node.count();
  for (size_t page = 0; page < node.num_pages; ++page) {
    const size_t begin = page * per_page;
    const size_t end = std::min(total, begin + per_page);
    const size_t count = begin < end ? end - begin : 0;
    PageWriter w(buf.data(), options_.page_size);
    w.PutU8(static_cast<uint8_t>(node.level));
    w.PutU8(0);
    w.PutU16(static_cast<uint16_t>(count));
    w.PutU32(page + 1 < node.num_pages ? node.extra_pages[page]
                                       : kInvalidPageId);
    if (node.is_leaf()) {
      for (size_t i = begin; i < end; ++i) {
        w.PutDoubles(node.points[i].point);
        w.PutU32(node.points[i].oid);
        w.Skip(options_.leaf_data_size);
      }
    } else {
      for (size_t i = begin; i < end; ++i) {
        w.PutDoubles(node.children[i].rect.lo());
        w.PutDoubles(node.children[i].rect.hi());
        w.PutU32(node.children[i].child);
      }
    }
    const PageId page_id = page == 0 ? node.id : node.extra_pages[page - 1];
    if (pool_ != nullptr) pool_->Discard(page_id);  // invalidate stale frame
    file_.Write(page_id, buf.data());  // srlint: allow(R6) frozen-tree write path (no snapshot readers)
  }
}

void XTree::FreeNodePages(const Node& node) {
  file_.Free(node.id);
  for (const PageId id : node.extra_pages) file_.Free(id);
}

// --------------------------------------------------------------------------
// Region helpers
// --------------------------------------------------------------------------

Rect XTree::EntryRect(const Node& node, size_t i) {
  return node.is_leaf() ? Rect::FromPoint(node.points[i].point)
                        : node.children[i].rect;
}

Rect XTree::NodeBoundingRect(const Node& node) const {
  Rect bound = Rect::Empty(options_.dim);
  if (node.is_leaf()) {
    for (const LeafEntry& e : node.points) bound.Expand(e.point);
  } else {
    for (const NodeEntry& e : node.children) bound.Expand(e.rect);
  }
  return bound;
}

// --------------------------------------------------------------------------
// Insertion
// --------------------------------------------------------------------------

Status XTree::Insert(PointView point, uint32_t oid) {
  if (static_cast<int>(point.size()) != options_.dim) {
    return Status::InvalidArgument("point dimensionality mismatch");
  }
  InsertLeafEntry(LeafEntry{Point(point.begin(), point.end()), oid});
  ++size_;
  return Status::OK();
}

void XTree::InsertLeafEntry(LeafEntry entry) {
  std::vector<Node> path;
  std::vector<int> idx;
  const Rect entry_rect = Rect::FromPoint(entry.point);
  Node cur = ReadNode(root_id_, root_level_);
  while (!cur.is_leaf()) {
    const int i = ChooseSubtree(cur, entry_rect);
    const PageId child = cur.children[i].child;
    const int child_level = cur.level - 1;
    path.push_back(std::move(cur));
    idx.push_back(i);
    cur = ReadNode(child, child_level);
  }
  cur.points.push_back(std::move(entry));
  path.push_back(std::move(cur));
  ResolvePath(path, idx);
}

void XTree::InsertEntryAtLevel(const NodeEntry& entry, int level) {
  CHECK_LT(level, root_level_ + 1);
  std::vector<Node> path;
  std::vector<int> idx;
  Node cur = ReadNode(root_id_, root_level_);
  while (cur.level > level) {
    const int i = ChooseSubtree(cur, entry.rect);
    const PageId child = cur.children[i].child;
    const int child_level = cur.level - 1;
    path.push_back(std::move(cur));
    idx.push_back(i);
    cur = ReadNode(child, child_level);
  }
  cur.children.push_back(entry);
  path.push_back(std::move(cur));
  ResolvePath(path, idx);
}

int XTree::ChooseSubtree(const Node& node, const Rect& entry_rect) const {
  DCHECK(!node.is_leaf());
  const size_t n = node.children.size();
  int best = 0;

  if (node.level == 1) {
    // R* rule: children are leaves — minimize overlap enlargement.
    double best_overlap = std::numeric_limits<double>::infinity();
    double best_enlarge = std::numeric_limits<double>::infinity();
    double best_area = std::numeric_limits<double>::infinity();
    for (size_t i = 0; i < n; ++i) {
      const Rect& rect = node.children[i].rect;
      const Rect enlarged = Rect::Union(rect, entry_rect);
      double overlap_delta = 0.0;
      for (size_t j = 0; j < n; ++j) {
        if (j == i) continue;
        overlap_delta += enlarged.OverlapVolume(node.children[j].rect) -
                         rect.OverlapVolume(node.children[j].rect);
      }
      const double area = rect.Volume();
      const double enlarge = enlarged.Volume() - area;
      if (overlap_delta < best_overlap ||
          (overlap_delta == best_overlap &&
           (enlarge < best_enlarge ||
            (enlarge == best_enlarge && area < best_area)))) {
        best_overlap = overlap_delta;
        best_enlarge = enlarge;
        best_area = area;
        best = static_cast<int>(i);
      }
    }
    return best;
  }

  double best_enlarge = std::numeric_limits<double>::infinity();
  double best_area = std::numeric_limits<double>::infinity();
  for (size_t i = 0; i < n; ++i) {
    const Rect& rect = node.children[i].rect;
    const double area = rect.Volume();
    const double enlarge = Rect::Union(rect, entry_rect).Volume() - area;
    if (enlarge < best_enlarge ||
        (enlarge == best_enlarge && area < best_area)) {
      best_enlarge = enlarge;
      best_area = area;
      best = static_cast<int>(i);
    }
  }
  return best;
}

void XTree::ResolvePath(std::vector<Node>& path, const std::vector<int>& idx) {
  int i = static_cast<int>(path.size()) - 1;
  while (true) {
    Node& n = path[i];
    if (n.count() <= Capacity(n)) break;

    // Decide: split (topological or overlap-free) or supernode extension.
    std::vector<size_t> order;
    size_t split = 0;
    bool do_split;
    if (n.is_leaf()) {
      TopologicalSplit(n, order, split);
      do_split = true;
    } else {
      const double ratio = TopologicalSplit(n, order, split);
      if (ratio <= options_.max_overlap) {
        do_split = true;
      } else if (OverlapFreeSplit(n, order, split)) {
        ++overlap_free_splits_;
        do_split = true;
      } else {
        do_split = false;
      }
    }

    if (!do_split) {
      // Supernode extension: entitle the node to one more page; it no
      // longer overflows and the region is unchanged above.
      ++supernode_extensions_;
      ++n.num_pages;
      break;
    }

    ++maintenance_.splits;
    Node right = SplitNode(n, order, split);
    if (i == 0) {
      GrowRoot(n, right);
      return;
    }
    WriteNode(right);
    WriteNode(n);
    Node& parent = path[i - 1];
    parent.children[idx[i - 1]].rect = NodeBoundingRect(n);
    parent.children.push_back(NodeEntry{NodeBoundingRect(right), right.id});
    --i;
  }
  WritePathRefreshingRects(path, idx, i);
}

void XTree::WritePathRefreshingRects(std::vector<Node>& path,
                                     const std::vector<int>& idx, int from) {
  WriteNode(path[from]);
  for (int j = from - 1; j >= 0; --j) {
    path[j].children[idx[j]].rect = NodeBoundingRect(path[j + 1]);
    WriteNode(path[j]);
  }
}

double XTree::TopologicalSplit(const Node& node, std::vector<size_t>& order,
                               size_t& split) const {
  const size_t total = node.count();
  const size_t m = std::max<size_t>(
      1, static_cast<size_t>(options_.min_utilization *
                             static_cast<double>(total)));
  CHECK_GE(total, 2 * m);
  const size_t num_dist = total - 2 * m + 1;

  std::vector<Rect> rects(total);
  for (size_t i = 0; i < total; ++i) rects[i] = EntryRect(node, i);

  auto sorted_order = [&](int axis, bool by_upper) {
    std::vector<size_t> result(total);
    std::iota(result.begin(), result.end(), 0);
    std::sort(result.begin(), result.end(), [&](size_t a, size_t b) {
      const double ka = by_upper ? rects[a].hi()[axis] : rects[a].lo()[axis];
      const double kb = by_upper ? rects[b].hi()[axis] : rects[b].lo()[axis];
      return ka < kb;
    });
    return result;
  };

  auto group_bounds = [&](const std::vector<size_t>& ord) {
    std::vector<Rect> prefix(total + 1, Rect::Empty(options_.dim));
    std::vector<Rect> suffix(total + 1, Rect::Empty(options_.dim));
    for (size_t i = 0; i < total; ++i) {
      prefix[i + 1] = prefix[i];
      prefix[i + 1].Expand(rects[ord[i]]);
    }
    for (size_t i = total; i-- > 0;) {
      suffix[i] = suffix[i + 1];
      suffix[i].Expand(rects[ord[i]]);
    }
    return std::make_pair(std::move(prefix), std::move(suffix));
  };

  int best_axis = 0;
  double best_margin_sum = std::numeric_limits<double>::infinity();
  for (int axis = 0; axis < options_.dim; ++axis) {
    double margin_sum = 0.0;
    for (const bool by_upper : {false, true}) {
      const std::vector<size_t> ord = sorted_order(axis, by_upper);
      auto [prefix, suffix] = group_bounds(ord);
      for (size_t k = 0; k < num_dist; ++k) {
        margin_sum += prefix[m + k].Margin() + suffix[m + k].Margin();
      }
    }
    if (margin_sum < best_margin_sum) {
      best_margin_sum = margin_sum;
      best_axis = axis;
    }
  }

  double best_overlap = std::numeric_limits<double>::infinity();
  double best_area = std::numeric_limits<double>::infinity();
  double best_ratio = 0.0;
  for (const bool by_upper : {false, true}) {
    const std::vector<size_t> ord = sorted_order(best_axis, by_upper);
    auto [prefix, suffix] = group_bounds(ord);
    for (size_t k = 0; k < num_dist; ++k) {
      const size_t s = m + k;
      const double overlap = prefix[s].OverlapVolume(suffix[s]);
      const double area = prefix[s].Volume() + suffix[s].Volume();
      if (overlap < best_overlap ||
          (overlap == best_overlap && area < best_area)) {
        best_overlap = overlap;
        best_area = area;
        order = ord;
        split = s;
        best_ratio = OverlapRatio(prefix[s], suffix[s]);
      }
    }
  }
  return best_ratio;
}

bool XTree::OverlapFreeSplit(const Node& node, std::vector<size_t>& order,
                             size_t& split) const {
  DCHECK(!node.is_leaf());
  const size_t total = node.count();
  const size_t min_side = std::max<size_t>(
      1,
      static_cast<size_t>(options_.min_fanout * static_cast<double>(total)));
  size_t best_balance = 0;

  for (int d = 0; d < options_.dim; ++d) {
    std::vector<size_t> ord(total);
    std::iota(ord.begin(), ord.end(), 0);
    std::sort(ord.begin(), ord.end(), [&](size_t a, size_t b) {
      return node.children[a].rect.lo()[d] < node.children[b].rect.lo()[d];
    });
    double prefix_hi = -std::numeric_limits<double>::infinity();
    for (size_t s = 1; s < total; ++s) {
      prefix_hi = std::max(prefix_hi, node.children[ord[s - 1]].rect.hi()[d]);
      if (prefix_hi > node.children[ord[s]].rect.lo()[d]) continue;
      const size_t balance = std::min(s, total - s);
      if (balance >= min_side && balance > best_balance) {
        best_balance = balance;
        order = ord;
        split = s;
      }
    }
  }
  return best_balance > 0;
}

XTree::Node XTree::SplitNode(Node& node, const std::vector<size_t>& order,
                             size_t split) {
  const size_t total = node.count();
  Node right;
  right.id = file_.Allocate();
  right.level = node.level;
  if (node.is_leaf()) {
    std::vector<LeafEntry> left_points, right_points;
    for (size_t i = 0; i < total; ++i) {
      auto& dst = (i < split) ? left_points : right_points;
      dst.push_back(std::move(node.points[order[i]]));
    }
    node.points = std::move(left_points);
    right.points = std::move(right_points);
  } else {
    std::vector<NodeEntry> left_children, right_children;
    for (size_t i = 0; i < total; ++i) {
      auto& dst = (i < split) ? left_children : right_children;
      dst.push_back(std::move(node.children[order[i]]));
    }
    node.children = std::move(left_children);
    right.children = std::move(right_children);
  }
  // Splitting shrinks both halves back to as few pages as their entry
  // counts require; WriteNode frees the surplus chain pages.
  const size_t per_page = PerPageCapacity(node);
  node.num_pages = std::max<size_t>(1, (node.count() + per_page - 1) / per_page);
  right.num_pages =
      std::max<size_t>(1, (right.count() + per_page - 1) / per_page);
  return right;
}

void XTree::GrowRoot(Node& left, Node& right) {
  WriteNode(left);
  WriteNode(right);
  Node root;
  root.id = file_.Allocate();
  root.level = left.level + 1;
  root.children.push_back(NodeEntry{NodeBoundingRect(left), left.id});
  root.children.push_back(NodeEntry{NodeBoundingRect(right), right.id});
  WriteNode(root);
  root_id_ = root.id;
  root_level_ = root.level;
}

// --------------------------------------------------------------------------
// Deletion
// --------------------------------------------------------------------------

Status XTree::Delete(PointView point, uint32_t oid) {
  if (static_cast<int>(point.size()) != options_.dim) {
    return Status::InvalidArgument("point dimensionality mismatch");
  }
  std::vector<Node> path;
  std::vector<int> idx;
  Node root = ReadNode(root_id_, root_level_);
  if (!FindLeafPath(root, point, oid, path, idx)) {
    return Status::NotFound("point not present");
  }
  Node& leaf = path.back();
  bool erased = false;
  for (size_t i = 0; i < leaf.points.size(); ++i) {
    if (leaf.points[i].oid == oid &&
        std::equal(point.begin(), point.end(), leaf.points[i].point.begin(),
                   leaf.points[i].point.end())) {
      leaf.points.erase(leaf.points.begin() + i);
      erased = true;
      break;
    }
  }
  CHECK(erased);
  CondenseTree(path, idx);
  ShrinkRoot();
  --size_;
  return Status::OK();
}

bool XTree::FindLeafPath(const Node& node, PointView point, uint32_t oid,
                         std::vector<Node>& path, std::vector<int>& idx) {
  path.push_back(node);
  if (node.is_leaf()) {
    for (const LeafEntry& e : node.points) {
      if (e.oid == oid && std::equal(point.begin(), point.end(),
                                     e.point.begin(), e.point.end())) {
        return true;
      }
    }
    path.pop_back();
    return false;
  }
  for (size_t i = 0; i < node.children.size(); ++i) {
    if (!node.children[i].rect.Contains(point)) continue;
    idx.push_back(static_cast<int>(i));
    Node child = ReadNode(node.children[i].child, node.level - 1);
    if (FindLeafPath(child, point, oid, path, idx)) return true;
    idx.pop_back();
  }
  path.pop_back();
  return false;
}

void XTree::CondenseTree(std::vector<Node>& path, std::vector<int>& idx) {
  std::vector<LeafEntry> orphan_points;
  std::vector<std::pair<int, NodeEntry>> orphan_entries;

  for (int i = static_cast<int>(path.size()) - 1; i >= 1; --i) {
    Node& n = path[i];
    Node& parent = path[i - 1];
    bool dissolve = false;
    if (n.is_leaf()) {
      dissolve = n.count() < leaf_min_;
    } else {
      // Shrink a supernode before considering dissolution.
      const size_t required = std::max<size_t>(
          1, (n.count() + node_cap_ - 1) / node_cap_);
      if (required < n.num_pages) n.num_pages = required;
      dissolve = n.num_pages == 1 && n.count() < node_min_;
    }
    if (dissolve) {
      if (n.is_leaf()) {
        for (LeafEntry& e : n.points) orphan_points.push_back(std::move(e));
      } else {
        for (NodeEntry& e : n.children) {
          orphan_entries.emplace_back(n.level, e);
        }
      }
      FreeNodePages(n);
      parent.children.erase(parent.children.begin() + idx[i - 1]);
    } else {
      WriteNode(n);
      parent.children[idx[i - 1]].rect = NodeBoundingRect(n);
    }
  }
  Node& root = path[0];
  if (!root.is_leaf()) {
    const size_t required =
        std::max<size_t>(1, (root.count() + node_cap_ - 1) / node_cap_);
    if (required < root.num_pages) root.num_pages = required;
  }
  WriteNode(root);

  // Orphaned subtrees go back in at their own level, points at the leaves.
  for (const auto& [level, entry] : orphan_entries) {
    InsertEntryAtLevel(entry, level);
  }
  for (LeafEntry& e : orphan_points) {
    InsertLeafEntry(std::move(e));
  }
}

void XTree::ShrinkRoot() {
  for (;;) {
    Node root = PeekNode(root_id_);
    if (root.is_leaf()) return;
    if (root.children.empty()) {
      FreeNodePages(root);
      Node leaf;
      leaf.id = file_.Allocate();
      leaf.level = 0;
      WriteNode(leaf);
      root_id_ = leaf.id;
      root_level_ = 0;
      return;
    }
    if (root.children.size() > 1) return;
    const PageId child = root.children[0].child;
    FreeNodePages(root);
    root_id_ = child;
    --root_level_;
  }
}

// --------------------------------------------------------------------------
// Search
// --------------------------------------------------------------------------

std::vector<Neighbor> XTree::KnnDfsImpl(PointView query, int k,
                                        IoStatsDelta* io) const {
  KnnCandidates candidates(k);
  KernelScratch scratch;
  if (size_ > 0) {
    SearchKnn(root_id_, root_level_, query, candidates, scratch, io);
  }
  return candidates.TakeSorted();
}

void XTree::SearchKnn(PageId id, int level, PointView query,
                      KnnCandidates& cand, KernelScratch& scratch,
                      IoStatsDelta* io) const {
  Node node = ReadNode(id, level, io);
  if (node.is_leaf()) {
    // SoA leaf scan with partial-distance pruning against the bound at
    // block start (conservative: the bound only shrinks as we offer).
    const double bound_sq = cand.PruneDistanceSquared();
    const std::vector<double>& d2 = BatchSquaredL2(
        scratch, query, node.points.size(),
        [&](size_t i) { return PointView(node.points[i].point); }, bound_sq);
    for (size_t i = 0; i < node.points.size(); ++i) {
      if (d2[i] <= bound_sq) cand.OfferSquared(d2[i], node.points[i].oid);
    }
    return;
  }
  const std::vector<double>& m2 = BatchRectMinDistSq(
      scratch, query, node.children.size(),
      [&](size_t i) -> const Rect& { return node.children[i].rect; });
  // Copy out of the scratch before recursing — the callee reuses it.
  std::vector<std::pair<double, size_t>> order(node.children.size());
  for (size_t i = 0; i < node.children.size(); ++i) order[i] = {m2[i], i};
  std::sort(order.begin(), order.end());
  for (const auto& [mindist_sq, i] : order) {
    if (mindist_sq > cand.PruneDistanceSquared()) break;
    SearchKnn(node.children[i].child, level - 1, query, cand, scratch, io);
  }
}

std::vector<Neighbor> XTree::KnnBestFirstImpl(PointView query, int k,
                                              IoStatsDelta* io) const {
  KnnCandidates candidates(k);
  if (size_ == 0) return candidates.TakeSorted();

  struct Pending {
    double mindist_sq;
    PageId id;
    int level;
    bool operator>(const Pending& other) const {
      return mindist_sq > other.mindist_sq;
    }
  };
  std::priority_queue<Pending, std::vector<Pending>, std::greater<Pending>>
      frontier;
  KernelScratch scratch;
  frontier.push(Pending{0.0, root_id_, root_level_});
  while (!frontier.empty()) {
    const Pending next = frontier.top();
    frontier.pop();
    if (next.mindist_sq > candidates.PruneDistanceSquared()) break;
    Node node = ReadNode(next.id, next.level, io);
    if (node.is_leaf()) {
      const double bound_sq = candidates.PruneDistanceSquared();
      const std::vector<double>& d2 = BatchSquaredL2(
          scratch, query, node.points.size(),
          [&](size_t i) { return PointView(node.points[i].point); }, bound_sq);
      for (size_t i = 0; i < node.points.size(); ++i) {
        if (d2[i] <= bound_sq) {
          candidates.OfferSquared(d2[i], node.points[i].oid);
        }
      }
      continue;
    }
    const std::vector<double>& m2 = BatchRectMinDistSq(
        scratch, query, node.children.size(),
        [&](size_t i) -> const Rect& { return node.children[i].rect; });
    for (size_t i = 0; i < node.children.size(); ++i) {
      if (m2[i] <= candidates.PruneDistanceSquared()) {
        frontier.push(Pending{m2[i], node.children[i].child, node.level - 1});
      }
    }
  }
  return candidates.TakeSorted();
}

std::vector<Neighbor> XTree::RangeImpl(PointView query, double radius,
                                       IoStatsDelta* io) const {
  std::vector<Neighbor> result;
  KernelScratch scratch;
  if (size_ > 0) {
    SearchRange(root_id_, root_level_, query, radius, result, scratch, io);
  }
  std::sort(result.begin(), result.end());  // canonical (distance, oid)
  return result;
}

void XTree::SearchRange(PageId id, int level, PointView query,
                     double radius, std::vector<Neighbor>& out,
                     KernelScratch& scratch, IoStatsDelta* io) const {
  Node node = ReadNode(id, level, io);
  const double radius_sq = radius * radius;
  if (node.is_leaf()) {
    const std::vector<double>& d2 = BatchSquaredL2(
        scratch, query, node.points.size(),
        [&](size_t i) { return PointView(node.points[i].point); }, radius_sq);
    for (size_t i = 0; i < node.points.size(); ++i) {
      if (d2[i] <= radius_sq) {
        out.push_back(Neighbor{std::sqrt(d2[i]), node.points[i].oid});
      }
    }
    return;
  }
  const std::vector<double>& m2 = BatchRectMinDistSq(
      scratch, query, node.children.size(),
      [&](size_t i) -> const Rect& { return node.children[i].rect; });
  // Copy out of the scratch before recursing — the callee reuses it.
  std::vector<PageId> hits;
  for (size_t i = 0; i < node.children.size(); ++i) {
    if (m2[i] <= radius_sq) hits.push_back(node.children[i].child);
  }
  for (const PageId child : hits) {
    SearchRange(child, level - 1, query, radius, out, scratch, io);
  }
}

// --------------------------------------------------------------------------
// Stats & validation
// --------------------------------------------------------------------------

TreeStats XTree::GetTreeStats() const {
  TreeStats stats;
  stats.height = root_level_ + 1;
  CollectStats(PeekNode(root_id_), stats);
  return stats;
}

void XTree::CollectStats(const Node& node, TreeStats& stats) const {
  if (node.is_leaf()) {
    ++stats.leaf_count;
    stats.entry_count += node.points.size();
    return;
  }
  stats.node_count += node.num_pages;  // supernodes occupy several pages
  for (const NodeEntry& e : node.children) {
    CollectStats(PeekNode(e.child), stats);
  }
}

XTree::SupernodeStats XTree::GetSupernodeStats() const {
  SupernodeStats stats;
  CollectSupernodes(PeekNode(root_id_), stats);
  return stats;
}

void XTree::CollectSupernodes(const Node& node, SupernodeStats& stats) const {
  if (node.is_leaf()) return;
  ++stats.directory_nodes;
  if (node.num_pages > 1) {
    ++stats.supernodes;
    stats.supernode_pages += node.num_pages;
  }
  for (const NodeEntry& e : node.children) {
    CollectSupernodes(PeekNode(e.child), stats);
  }
}

RegionSummary XTree::LeafRegionSummary() const {
  RegionStatsCollector collector;
  CollectRegions(PeekNode(root_id_), collector);
  return collector.Finish();
}

void XTree::CollectRegions(const Node& node,
                           RegionStatsCollector& collector) const {
  if (node.is_leaf()) {
    if (node.points.empty()) return;
    collector.CountLeaf();
    collector.AddRect(NodeBoundingRect(node));
    return;
  }
  for (const NodeEntry& e : node.children) {
    CollectRegions(PeekNode(e.child), collector);
  }
}

Status XTree::CheckInvariants() const { return debug::AuditIndex(*this); }

void XTree::VisitNodes(const NodeVisitor& visitor) const {
  std::vector<int> path;
  VisitSubtree(PeekNode(root_id_), path, visitor);
}

void XTree::VisitSubtree(const Node& node, std::vector<int>& path,
                         const NodeVisitor& visitor) const {
  NodeView view;
  view.level = node.level;
  view.capacity = Capacity(node);  // supernode-aware multi-page capacity
  view.min_entries = MinEntries(node);
  view.page_count = node.num_pages;
  view.per_page_capacity = PerPageCapacity(node);
  view.entries.reserve(node.children.size());
  for (const NodeEntry& e : node.children) {
    view.entries.push_back(EntryView{&e.rect, /*sphere=*/nullptr,
                                     /*weight=*/0, /*has_weight=*/false});
  }
  view.points.reserve(node.points.size());
  for (const LeafEntry& e : node.points) view.points.push_back(e.point);
  visitor(path, view);
  for (size_t i = 0; i < node.children.size(); ++i) {
    path.push_back(static_cast<int>(i));
    VisitSubtree(PeekNode(node.children[i].child), path, visitor);
    path.pop_back();
  }
}

AuditSpec XTree::GetAuditSpec() const {
  AuditSpec spec;
  spec.dim = options_.dim;
  spec.rect_semantics = RectSemantics::kExactMbr;
  spec.internal_root_min2 = true;
  return spec;
}

}  // namespace srtree
