// Shared scaffolding for the bench binaries: flag parsing boilerplate and
// dataset construction helpers keyed by the paper's two workloads.

#ifndef SRTREE_BENCH_BENCH_UTIL_H_
#define SRTREE_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <optional>
#include <string>
#include <vector>

#include "src/benchlib/experiment.h"
#include "src/benchlib/options.h"
#include "src/benchlib/report.h"
#include "src/common/flags.h"
#include "src/workload/histogram.h"
#include "src/workload/queries.h"
#include "src/workload/uniform.h"

namespace srtree::bench {

// Parses flags; returns nullopt when the process should exit (help printed
// or bad usage reported), with *exit_code set accordingly.
inline std::optional<BenchOptions> ParseOrExit(FlagParser& parser, int argc,
                                               char** argv, int* exit_code) {
  const Status status = parser.Parse(argc, argv);
  if (status.IsNotFound()) {  // --help
    *exit_code = 0;
    return std::nullopt;
  }
  if (!status.ok()) {
    std::fprintf(stderr, "%s\n", status.ToString().c_str());
    *exit_code = 1;
    return std::nullopt;
  }
  return GetBenchOptions(parser);
}

// The paper's "real data set" stand-in (see workload/histogram.h).
inline Dataset MakeRealDataset(size_t n, int dim, uint64_t seed) {
  HistogramConfig config;
  config.n = n;
  config.dim = dim;
  config.seed = seed;
  return MakeHistogramDataset(config);
}

// Writes `tables` to options.json_path when --json was given. Returns a
// process exit code: a bad path must fail the run loudly, not leave CI
// comparing against a stale snapshot.
inline int EmitJsonReport(const BenchOptions& options,
                          const std::vector<Table>& tables) {
  if (options.json_path.empty()) return 0;
  const Status status = WriteJsonReport(options.json_path, tables);
  if (!status.ok()) {
    std::fprintf(stderr, "--json: %s\n", status.ToString().c_str());
    return 1;
  }
  std::printf("json report written to %s\n", options.json_path.c_str());
  return 0;
}

// Shared driver for the query-performance figures (3, 4, 10, 11): builds
// each index over the size ladder, runs the k-NN workload (query anchors
// sampled from the data set, as in Section 3.1), and prints one CPU-time
// table and one disk-reads table with one series per index. Returns the
// process exit code (non-zero only when --json was given and failed).
inline int RunQueryPerformanceFigure(const BenchOptions& options,
                                      const std::vector<IndexType>& types,
                                      const std::vector<int64_t>& sizes,
                                      bool real_data,
                                      const std::string& figure) {
  std::vector<std::string> cols = {"data set size"};
  for (const IndexType type : types) cols.emplace_back(IndexTypeName(type));
  Table cpu_table(figure + ": CPU time per query [ms]", cols);
  Table read_table(figure + ": disk reads per query", cols);

  for (const int64_t n : sizes) {
    const Dataset data =
        real_data
            ? MakeRealDataset(static_cast<size_t>(n), options.dim,
                              options.seed)
            : MakeUniformDataset(static_cast<size_t>(n), options.dim,
                                 options.seed);
    const std::vector<Point> queries = SampleQueriesFromDataset(
        data, QueryCount(options), options.seed + 17);

    std::vector<std::string> cpu_row = {std::to_string(n)};
    std::vector<std::string> read_row = {std::to_string(n)};
    for (const IndexType type : types) {
      IndexConfig config;
      config.dim = options.dim;
      auto index = MakeIndex(type, config);
      BuildIndexFromDataset(*index, data);
      const QueryMetrics metrics = RunKnnWorkload(*index, queries, options.k);
      cpu_row.push_back(FormatNum(metrics.cpu_ms));
      read_row.push_back(FormatNum(metrics.disk_reads));
    }
    cpu_table.AddRow(std::move(cpu_row));
    read_table.AddRow(std::move(read_row));
  }
  cpu_table.Print();
  read_table.Print();
  return EmitJsonReport(options, {cpu_table, read_table});
}

}  // namespace srtree::bench

#endif  // SRTREE_BENCH_BENCH_UTIL_H_
