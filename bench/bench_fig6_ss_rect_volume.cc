// Figure 6: the average volume of the SS-tree's leaf-level regions when
// determined by bounding rectangles instead of bounding spheres, on the
// uniform data set. The R*-tree's leaf rectangles are plotted alongside
// for comparison.
//
// Expected shape (Section 3.3): at 100k points the SS-tree's leaf
// rectangles are ~1/900 the volume of its spheres and ~1/18 of the
// R*-tree's leaf rectangles.

#include "bench/bench_util.h"

namespace srtree {
namespace {

int Run(const BenchOptions& options) {
  const std::vector<int64_t> sizes = UniformSizeLadder(options);
  Table table("Figure 6: average leaf-region volume of SS-tree leaves "
              "(uniform data set)",
              {"data set size", "SS-tree spheres", "SS-tree rects",
               "R*-tree rects", "sphere/rect ratio"});

  for (const int64_t n : sizes) {
    const Dataset data = MakeUniformDataset(static_cast<size_t>(n),
                                            options.dim, options.seed);
    IndexConfig config;
    config.dim = options.dim;

    auto ss = MakeIndex(IndexType::kSSTree, config);
    BuildIndexFromDataset(*ss, data);
    const RegionSummary ss_summary = ss->LeafRegionSummary();

    auto rstar = MakeIndex(IndexType::kRStarTree, config);
    BuildIndexFromDataset(*rstar, data);
    const RegionSummary rstar_summary = rstar->LeafRegionSummary();

    table.AddRow({std::to_string(n), FormatNum(ss_summary.avg_sphere_volume),
                  FormatNum(ss_summary.avg_rect_volume),
                  FormatNum(rstar_summary.avg_rect_volume),
                  FormatNum(ss_summary.avg_sphere_volume /
                            ss_summary.avg_rect_volume)});
  }
  table.Print();
  return 0;
}

}  // namespace
}  // namespace srtree

int main(int argc, char** argv) {
  srtree::FlagParser parser;
  srtree::AddBenchFlags(parser);
  int exit_code = 0;
  const auto options = srtree::bench::ParseOrExit(parser, argc, argv,
                                                  &exit_code);
  if (!options) return exit_code;
  return srtree::Run(*options);
}
