// Extension (beyond the paper): query cost of the read-optimized static
// tier against the dynamic SR-tree it is built from. Both hold the same
// uniform data set and run the same k-NN workload; the static tier is the
// flat BFS-serialized image (SoA leaf blocks, implicit child pointers,
// zero-deserialization reads), the dynamic tree is the insert-built
// SR-tree. The tiered rows show the serving arrangement: fully compacted
// (pure static) and with a 5% dynamic delta absorbing the newest writes.
//
// The snapshot tracks the shape — the static tier must come in at or below
// the dynamic tree's per-query cost — not absolute wall-clock numbers.

#include <memory>
#include <vector>

#include "bench/bench_util.h"
#include "src/statictier/static_sr_tree.h"
#include "src/statictier/tiered_index.h"

namespace srtree {
namespace {

struct Candidate {
  std::string label;
  std::unique_ptr<PointIndex> index;
};

int Run(const BenchOptions& options) {
  const size_t n = options.full ? 100000 : 20000;
  const int dim = 16;
  const Dataset data = MakeUniformDataset(n, dim, options.seed);
  const size_t num_queries = options.full ? 2048 : 512;
  const std::vector<Point> queries =
      SampleQueriesFromDataset(data, num_queries, options.seed + 17);

  std::vector<Point> points;
  std::vector<uint32_t> oids;
  points.reserve(data.size());
  for (size_t i = 0; i < data.size(); ++i) {
    points.emplace_back(data.point(i).begin(), data.point(i).end());
    oids.push_back(static_cast<uint32_t>(i));
  }
  // The last 5% of the data set is the "freshest writes" slice the
  // delta-carrying tiered row absorbs through Insert().
  const size_t delta_start = n - n / 20;

  std::vector<Candidate> candidates;

  {
    IndexConfig config;
    config.dim = dim;
    auto dynamic_tree = MakeIndex(IndexType::kSRTree, config);
    BuildIndexFromDataset(*dynamic_tree, data);
    candidates.push_back({"Dynamic SR-tree", std::move(dynamic_tree)});
  }
  {
    StaticSRTree::Options static_options;
    static_options.dim = dim;
    auto static_tree = std::make_unique<StaticSRTree>(static_options);
    CHECK(static_tree->BulkLoad(points, oids).ok());
    candidates.push_back({"Static SR-tree", std::move(static_tree)});
  }
  {
    TieredIndex::Options tiered_options;
    tiered_options.dim = dim;
    auto tiered = std::make_unique<TieredIndex>(tiered_options);
    CHECK(tiered->BulkLoad(points, oids).ok());
    candidates.push_back({"Tiered (compacted)", std::move(tiered)});
  }
  {
    TieredIndex::Options tiered_options;
    tiered_options.dim = dim;
    auto tiered = std::make_unique<TieredIndex>(tiered_options);
    const std::vector<Point> base(points.begin(),
                                  points.begin() + delta_start);
    const std::vector<uint32_t> base_oids(oids.begin(),
                                          oids.begin() + delta_start);
    CHECK(tiered->BulkLoad(base, base_oids).ok());
    for (size_t i = delta_start; i < n; ++i) {
      CHECK(tiered->Insert(points[i], oids[i]).ok());
    }
    candidates.push_back({"Tiered (5% delta)", std::move(tiered)});
  }

  Table table("Static tier vs dynamic SR-tree: k-NN query cost (uniform, n=" +
                  std::to_string(n) + ", D=" + std::to_string(dim) +
                  ", k=" + std::to_string(options.k) + ")",
              {"index", "CPU ms/query", "reads/query", "leaf reads/query",
               "nonleaf reads/query"});
  for (Candidate& c : candidates) {
    const QueryMetrics metrics = RunKnnWorkload(*c.index, queries, options.k);
    table.AddRow({c.label, FormatNum(metrics.cpu_ms),
                  FormatNum(metrics.disk_reads), FormatNum(metrics.leaf_reads),
                  FormatNum(metrics.nonleaf_reads)});
  }
  table.Print();
  return bench::EmitJsonReport(options, {table});
}

}  // namespace
}  // namespace srtree

int main(int argc, char** argv) {
  srtree::FlagParser parser;
  srtree::AddBenchFlags(parser);
  int exit_code = 0;
  const auto options = srtree::bench::ParseOrExit(parser, argc, argv,
                                                  &exit_code);
  if (!options) return exit_code;
  return srtree::Run(*options);
}
