// Figure 14: the number of node-level reads and leaf-level reads per k-NN
// query for SS-trees and SR-trees on the real data set.
//
// Expected shape (Section 5.3): the SR-tree incurs MORE node-level reads
// (its fanout is a third of the SS-tree's) but saves more leaf-level reads
// than it loses, so its total is lower.

#include "bench/bench_util.h"

namespace srtree {
namespace {

int Run(const BenchOptions& options) {
  const std::vector<int64_t> sizes = RealSizeLadder(options);
  Table node_table("Figure 14a: node-level reads per query (real data set)",
                   {"data set size", "SS-tree", "SR-tree"});
  Table leaf_table("Figure 14b: leaf-level reads per query (real data set)",
                   {"data set size", "SS-tree", "SR-tree"});
  Table total_table("Figure 14 (total): disk reads per query (real data set)",
                    {"data set size", "SS-tree", "SR-tree"});

  for (const int64_t n : sizes) {
    const Dataset data = bench::MakeRealDataset(static_cast<size_t>(n),
                                                options.dim, options.seed);
    const std::vector<Point> queries = SampleQueriesFromDataset(
        data, QueryCount(options), options.seed + 17);
    IndexConfig config;
    config.dim = options.dim;

    auto ss = MakeIndex(IndexType::kSSTree, config);
    BuildIndexFromDataset(*ss, data);
    const QueryMetrics ssm = RunKnnWorkload(*ss, queries, options.k);

    auto sr = MakeIndex(IndexType::kSRTree, config);
    BuildIndexFromDataset(*sr, data);
    const QueryMetrics srm = RunKnnWorkload(*sr, queries, options.k);

    node_table.AddRow({std::to_string(n), FormatNum(ssm.nonleaf_reads),
                       FormatNum(srm.nonleaf_reads)});
    leaf_table.AddRow({std::to_string(n), FormatNum(ssm.leaf_reads),
                       FormatNum(srm.leaf_reads)});
    total_table.AddRow({std::to_string(n), FormatNum(ssm.disk_reads),
                        FormatNum(srm.disk_reads)});
  }
  node_table.Print();
  leaf_table.Print();
  total_table.Print();
  return 0;
}

}  // namespace
}  // namespace srtree

int main(int argc, char** argv) {
  srtree::FlagParser parser;
  srtree::AddBenchFlags(parser);
  int exit_code = 0;
  const auto options = srtree::bench::ParseOrExit(parser, argc, argv,
                                                  &exit_code);
  if (!options) return exit_code;
  return srtree::Run(*options);
}
