// Extension (beyond the paper): effect of an LRU buffer pool on the disk
// reads the paper counts. The paper's numbers assume cold reads per query;
// a real deployment keeps hot pages cached. The interesting question is
// whether the SR-tree's "fanout problem" (Section 5.3 — extra node-level
// reads against the SS-tree) survives caching: directory pages are exactly
// the pages an LRU pool pins.
//
// Method: PageFile's LRU cache simulation replays the precise page-access
// trace; IoStats::cache_misses counts the reads that would still reach the
// disk with a pool of the given size.

#include "bench/bench_util.h"

namespace srtree {
namespace {

int Run(const BenchOptions& options) {
  const size_t n = options.full ? 50000 : 10000;
  const Dataset data = bench::MakeRealDataset(n, options.dim, options.seed);
  const std::vector<Point> queries = SampleQueriesFromDataset(
      data, QueryCount(options), options.seed + 17);
  const std::vector<size_t> pool_sizes = {0, 8, 32, 128, 512};

  std::vector<std::string> cols = {"index", "dir pages"};
  for (const size_t p : pool_sizes) {
    cols.push_back(p == 0 ? "cold" : "pool " + std::to_string(p));
  }
  Table table("Disk reads per k-NN query under an LRU buffer pool "
              "(real data set, n=" + std::to_string(n) + ")",
              cols);

  for (const IndexType type :
       {IndexType::kRStarTree, IndexType::kSSTree, IndexType::kSRTree}) {
    IndexConfig config;
    config.dim = options.dim;
    auto index = MakeIndex(type, config);
    BuildIndexFromDataset(*index, data);
    const TreeStats stats = index->GetTreeStats();

    std::vector<std::string> row = {index->name(),
                                    std::to_string(stats.node_count)};
    for (const size_t pool : pool_sizes) {
      index->SimulateBufferPool(pool);
      IoStatsDelta io;
      for (const Point& q : queries) {
        io.MergeFrom(index->Search(q, QuerySpec::Knn(options.k)).io);
      }
      const double misses = static_cast<double>(io.cache_misses) /
                            static_cast<double>(queries.size());
      row.push_back(FormatNum(misses));
    }
    index->SimulateBufferPool(0);
    table.AddRow(std::move(row));
  }
  table.Print();
  return 0;
}

}  // namespace
}  // namespace srtree

int main(int argc, char** argv) {
  srtree::FlagParser parser;
  srtree::AddBenchFlags(parser);
  int exit_code = 0;
  const auto options = srtree::bench::ParseOrExit(parser, argc, argv,
                                                  &exit_code);
  if (!options) return exit_code;
  return srtree::Run(*options);
}
