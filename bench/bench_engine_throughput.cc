// Extension (beyond the paper): batch k-NN throughput of the concurrent
// QueryEngine as the worker count scales, with and without a shared sharded
// buffer pool. The paper's figures are single-threaded and uncached by
// design; this bench measures what the same SR-tree read path delivers when
// a batch of queries is spread over a work-stealing worker pool.
//
// Method: build one SR-tree over a 16-d uniform data set, then run the same
// query batch through engines with 1/2/4/8 workers. Queries per second is
// batch size over wall time; per-query reads come from the summed
// IoStatsDelta values, so the pooled rows also show how many reads the
// buffer pool absorbed.

#include "bench/bench_util.h"
#include "src/engine/query_engine.h"

namespace srtree {
namespace {

int Run(const BenchOptions& options) {
  const size_t n = options.full ? 100000 : 20000;
  const int dim = 16;
  const Dataset data = MakeUniformDataset(n, dim, options.seed);
  const size_t num_queries = options.full ? 4096 : 1024;
  const std::vector<Point> query_points =
      SampleQueriesFromDataset(data, num_queries, options.seed + 17);

  std::vector<Query> batch;
  batch.reserve(query_points.size());
  for (const Point& q : query_points) {
    batch.push_back(Query{q, QuerySpec::Knn(options.k)});
  }

  IndexConfig config;
  config.dim = dim;
  std::unique_ptr<PointIndex> index = MakeIndex(IndexType::kSRTree, config);
  BuildIndexFromDataset(*index, data);

  Table table("Batch k-NN throughput vs workers (SR-tree, uniform, n=" +
                  std::to_string(n) + ", D=" + std::to_string(dim) +
                  ", batch=" + std::to_string(batch.size()) + ")",
              {"workers", "buffer pool", "queries/s", "speedup vs 1 worker",
               "reads/query", "stolen chunks"});

  for (const size_t pool_pages : {size_t{0}, size_t{512}}) {
    double base_qps = 0.0;
    for (const int workers : {1, 2, 4, 8}) {
      EngineOptions engine_options;
      engine_options.num_workers = workers;
      engine_options.buffer_pool_pages = pool_pages;
      QueryEngine engine(std::move(index), engine_options);
      (void)engine.RunBatch(batch);  // warm-up (and pool fill) pass
      const std::vector<QueryResult> results = engine.RunBatch(batch);
      const BatchStats stats = engine.last_batch_stats();
      index = engine.ReleaseIndex();

      for (const QueryResult& r : results) CHECK(r.status.ok());
      const double qps =
          static_cast<double>(batch.size()) / stats.wall_seconds;
      if (workers == 1) base_qps = qps;
      table.AddRow({std::to_string(workers),
                    pool_pages == 0 ? "none" : std::to_string(pool_pages),
                    FormatNum(qps), FormatNum(qps / base_qps),
                    FormatNum(static_cast<double>(stats.io.reads) /
                              static_cast<double>(batch.size())),
                    std::to_string(stats.steals)});
    }
  }
  table.Print();
  return bench::EmitJsonReport(options, {table});
}

}  // namespace
}  // namespace srtree

int main(int argc, char** argv) {
  srtree::FlagParser parser;
  srtree::AddBenchFlags(parser);
  int exit_code = 0;
  const auto options = srtree::bench::ParseOrExit(parser, argc, argv,
                                                  &exit_code);
  if (!options) return exit_code;
  return srtree::Run(*options);
}
