// Figure 16: the ratio of leaves accessed per k-NN query to the total
// number of leaves, for SR-trees and SS-trees on the uniform data set with
// varying dimensionality.
//
// Expected shape (Section 5.4): the proportion climbs with dimensionality
// and reaches 100% by D=32..64 — the indices are forced to touch every
// leaf because uniform high-dimensional data cannot be partitioned into
// neighborhoods.

#include "bench/bench_util.h"

namespace srtree {
namespace {

int Run(const BenchOptions& options) {
  const std::vector<int> dims = {1, 2, 4, 8, 16, 32, 64};
  const size_t n = options.sizes.empty()
                       ? (options.full ? 100000u : 10000u)
                       : static_cast<size_t>(options.sizes[0]);

  Table table("Figure 16: accessed leaves / total leaves [%] vs "
              "dimensionality (uniform, n=" + std::to_string(n) + ")",
              {"dimensionality", "SS-tree", "SR-tree"});

  for (const int dim : dims) {
    const Dataset data = MakeUniformDataset(n, dim, options.seed);
    const std::vector<Point> queries = SampleQueriesFromDataset(
        data, QueryCount(options), options.seed + 17);
    IndexConfig config;
    config.dim = dim;

    std::vector<std::string> row = {std::to_string(dim)};
    for (const IndexType type : {IndexType::kSSTree, IndexType::kSRTree}) {
      auto index = MakeIndex(type, config);
      BuildIndexFromDataset(*index, data);
      const uint64_t total_leaves = index->GetTreeStats().leaf_count;
      const QueryMetrics metrics = RunKnnWorkload(*index, queries, options.k);
      row.push_back(FormatNum(100.0 * metrics.leaf_reads /
                              static_cast<double>(total_leaves)));
    }
    table.AddRow(std::move(row));
  }
  table.Print();
  return 0;
}

}  // namespace
}  // namespace srtree

int main(int argc, char** argv) {
  srtree::FlagParser parser;
  srtree::AddBenchFlags(parser);
  int exit_code = 0;
  const auto options = srtree::bench::ParseOrExit(parser, argc, argv,
                                                  &exit_code);
  if (!options) return exit_code;
  return srtree::Run(*options);
}
