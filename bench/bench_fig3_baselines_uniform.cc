// Figure 3: k-NN query performance of the K-D-B-tree, R*-tree, SS-tree and
// VAMSplit R-tree on the uniform data set — (a) CPU time, (b) disk reads —
// as a function of data set size.
//
// Expected shape (Section 3.1): the static VAMSplit R-tree wins overall;
// among the dynamic structures the SS-tree clearly beats the R*-tree and
// the K-D-B-tree.

#include "bench/bench_util.h"

namespace srtree {
namespace {

int Run(const BenchOptions& options) {
  return bench::RunQueryPerformanceFigure(
      options,
      {IndexType::kKdbTree, IndexType::kRStarTree, IndexType::kSSTree,
       IndexType::kVamSplitRTree},
      UniformSizeLadder(options), /*real_data=*/false,
      "Figure 3 (uniform data set)");
}

}  // namespace
}  // namespace srtree

int main(int argc, char** argv) {
  srtree::FlagParser parser;
  srtree::AddBenchFlags(parser);
  int exit_code = 0;
  const auto options = srtree::bench::ParseOrExit(parser, argc, argv,
                                                  &exit_code);
  if (!options) return exit_code;
  return srtree::Run(*options);
}
