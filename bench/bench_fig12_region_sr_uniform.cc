// Figure 12: average volume and average diameter of the leaf-level regions
// of R*-trees, SS-trees, and SR-trees on the uniform data set.
//
// For the SR-tree the true region is the intersection of its sphere and
// rectangle, so (as in the paper) both upper bounds are reported: the real
// volume is at most the rectangle's, the real diameter at most the
// sphere's.
//
// Expected shape (Section 5.2): SR rect volume is the smallest of all —
// about 1/1000 of the SS-tree sphere volume — while the SR sphere diameter
// matches the SS-tree's.

#include "bench/bench_util.h"

namespace srtree {
namespace {

int Run(const BenchOptions& options) {
  const std::vector<int64_t> sizes = UniformSizeLadder(options);
  Table volume_table(
      "Figure 12a: average leaf-region volume (uniform data set)",
      {"data set size", "R*-tree rects", "SS-tree spheres", "SR-tree rects",
       "SR-tree spheres"});
  Table diameter_table(
      "Figure 12b: average leaf-region diameter (uniform data set)",
      {"data set size", "R*-tree diagonal", "SS-tree sphere diam",
       "SR-tree sphere diam", "SR-tree diagonal"});

  for (const int64_t n : sizes) {
    const Dataset data = MakeUniformDataset(static_cast<size_t>(n),
                                            options.dim, options.seed);
    IndexConfig config;
    config.dim = options.dim;

    auto rstar = MakeIndex(IndexType::kRStarTree, config);
    BuildIndexFromDataset(*rstar, data);
    const RegionSummary rs = rstar->LeafRegionSummary();

    auto ss = MakeIndex(IndexType::kSSTree, config);
    BuildIndexFromDataset(*ss, data);
    const RegionSummary sss = ss->LeafRegionSummary();

    auto sr = MakeIndex(IndexType::kSRTree, config);
    BuildIndexFromDataset(*sr, data);
    const RegionSummary srs = sr->LeafRegionSummary();

    volume_table.AddRow(
        {std::to_string(n), FormatNum(rs.avg_rect_volume),
         FormatNum(sss.avg_sphere_volume), FormatNum(srs.avg_rect_volume),
         FormatNum(srs.avg_sphere_volume)});
    diameter_table.AddRow(
        {std::to_string(n), FormatNum(rs.avg_rect_diagonal),
         FormatNum(sss.avg_sphere_diameter),
         FormatNum(srs.avg_sphere_diameter),
         FormatNum(srs.avg_rect_diagonal)});
  }
  volume_table.Print();
  diameter_table.Print();
  return 0;
}

}  // namespace
}  // namespace srtree

int main(int argc, char** argv) {
  srtree::FlagParser parser;
  srtree::AddBenchFlags(parser);
  int exit_code = 0;
  const auto options = srtree::bench::ParseOrExit(parser, argc, argv,
                                                  &exit_code);
  if (!options) return exit_code;
  return srtree::Run(*options);
}
