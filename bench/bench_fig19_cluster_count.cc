// Figure 19: k-NN query performance of SR-trees and SS-trees on the
// cluster data set with a varying number of clusters at fixed total size
// (100,000 points, D=16 at paper scale). One cluster = a single sphere;
// #clusters = #points = the uniform-like extreme.
//
// Expected shape (Section 5.4): the SR-tree's improvement over the SS-tree
// is largest at intermediate cluster counts (~88% at 100 clusters in the
// paper) and smallest at the uniform extreme (~36%) — "the SR-tree is more
// effective for less uniform data sets".

#include "bench/bench_util.h"
#include "src/workload/cluster.h"

namespace srtree {
namespace {

int Run(const BenchOptions& options) {
  const size_t total = options.full ? 100000 : 20000;
  std::vector<size_t> cluster_counts = {1, 10, 100, 1000, 10000, total};

  Table cpu_table("Figure 19a: CPU time per query [ms] vs number of clusters"
                  " (cluster data set, n=" + std::to_string(total) + ")",
                  {"clusters", "SS-tree", "SR-tree", "SS/SR ratio"});
  Table read_table("Figure 19b: disk reads per query vs number of clusters"
                   " (cluster data set, n=" + std::to_string(total) + ")",
                   {"clusters", "SS-tree", "SR-tree", "SS/SR ratio"});

  for (const size_t clusters : cluster_counts) {
    ClusterConfig cluster_config;
    cluster_config.num_clusters = clusters;
    cluster_config.points_per_cluster = total / clusters;
    cluster_config.dim = options.dim;
    cluster_config.seed = options.seed;
    const Dataset data = MakeClusterDataset(cluster_config);
    const std::vector<Point> queries = SampleQueriesFromDataset(
        data, QueryCount(options), options.seed + 17);
    IndexConfig config;
    config.dim = options.dim;

    auto ss = MakeIndex(IndexType::kSSTree, config);
    BuildIndexFromDataset(*ss, data);
    const QueryMetrics ssm = RunKnnWorkload(*ss, queries, options.k);

    auto sr = MakeIndex(IndexType::kSRTree, config);
    BuildIndexFromDataset(*sr, data);
    const QueryMetrics srm = RunKnnWorkload(*sr, queries, options.k);

    cpu_table.AddRow({std::to_string(clusters), FormatNum(ssm.cpu_ms),
                      FormatNum(srm.cpu_ms),
                      FormatNum(ssm.cpu_ms / srm.cpu_ms)});
    read_table.AddRow({std::to_string(clusters), FormatNum(ssm.disk_reads),
                       FormatNum(srm.disk_reads),
                       FormatNum(ssm.disk_reads / srm.disk_reads)});
  }
  cpu_table.Print();
  read_table.Print();
  return 0;
}

}  // namespace
}  // namespace srtree

int main(int argc, char** argv) {
  srtree::FlagParser parser;
  srtree::AddBenchFlags(parser);
  int exit_code = 0;
  const auto options = srtree::bench::ParseOrExit(parser, argc, argv,
                                                  &exit_code);
  if (!options) return exit_code;
  return srtree::Run(*options);
}
