// Figure 9: the average cost of inserting one entry into R*-trees,
// SS-trees and SR-trees on the uniform data set — (a) CPU time,
// (b) disk accesses (reads + writes).
//
// Expected shape (Section 5.1): the centroid-based trees (SS, SR) need
// much less CPU than the R*-tree; the SR-tree pays more CPU and more disk
// accesses than the SS-tree because it maintains both shapes.

#include "bench/bench_util.h"

namespace srtree {
namespace {

int Run(const BenchOptions& options) {
  const std::vector<int64_t> sizes = UniformSizeLadder(options);
  const std::vector<IndexType> types = DynamicTreeTypes();

  std::vector<std::string> cols = {"data set size"};
  for (const IndexType type : types) cols.emplace_back(IndexTypeName(type));
  Table cpu_table("Figure 9a: CPU time per insertion [ms] (uniform data set)",
                  cols);
  Table access_table(
      "Figure 9b: disk accesses per insertion (uniform data set)", cols);

  for (const int64_t n : sizes) {
    const Dataset data = MakeUniformDataset(static_cast<size_t>(n),
                                            options.dim, options.seed);
    std::vector<std::string> cpu_row = {std::to_string(n)};
    std::vector<std::string> access_row = {std::to_string(n)};
    for (const IndexType type : types) {
      IndexConfig config;
      config.dim = options.dim;
      auto index = MakeIndex(type, config);
      const BuildMetrics metrics = BuildIndexFromDataset(*index, data);
      cpu_row.push_back(FormatNum(metrics.cpu_ms_per_insert));
      access_row.push_back(FormatNum(metrics.accesses_per_insert));
    }
    cpu_table.AddRow(std::move(cpu_row));
    access_table.AddRow(std::move(access_row));
  }
  cpu_table.Print();
  access_table.Print();
  return 0;
}

}  // namespace
}  // namespace srtree

int main(int argc, char** argv) {
  srtree::FlagParser parser;
  srtree::AddBenchFlags(parser);
  int exit_code = 0;
  const auto options = srtree::bench::ParseOrExit(parser, argc, argv,
                                                  &exit_code);
  if (!options) return exit_code;
  return srtree::Run(*options);
}
