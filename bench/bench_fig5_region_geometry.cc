// Figure 5: average volume and average diameter of the leaf-level regions
// of SS-trees and R*-trees built on the uniform data set.
//
// Expected shape (Section 3.2): R*-tree rectangles have tiny volume
// (~2% of the spheres') but LONG diagonals; SS-tree spheres have huge
// volume but SHORT diameters — each shape wins one metric.

#include "bench/bench_util.h"

namespace srtree {
namespace {

int Run(const BenchOptions& options) {
  const std::vector<int64_t> sizes = UniformSizeLadder(options);
  Table volume_table(
      "Figure 5a: average leaf-region volume (uniform data set)",
      {"data set size", "SS-tree (spheres)", "R*-tree (rects)"});
  Table diameter_table(
      "Figure 5b: average leaf-region diameter (uniform data set)",
      {"data set size", "SS-tree (sphere diameter)",
       "R*-tree (rect diagonal)"});

  for (const int64_t n : sizes) {
    const Dataset data = MakeUniformDataset(static_cast<size_t>(n),
                                            options.dim, options.seed);
    IndexConfig config;
    config.dim = options.dim;

    auto ss = MakeIndex(IndexType::kSSTree, config);
    BuildIndexFromDataset(*ss, data);
    const RegionSummary ss_summary = ss->LeafRegionSummary();

    auto rstar = MakeIndex(IndexType::kRStarTree, config);
    BuildIndexFromDataset(*rstar, data);
    const RegionSummary rstar_summary = rstar->LeafRegionSummary();

    volume_table.AddRow({std::to_string(n),
                         FormatNum(ss_summary.avg_sphere_volume),
                         FormatNum(rstar_summary.avg_rect_volume)});
    diameter_table.AddRow({std::to_string(n),
                           FormatNum(ss_summary.avg_sphere_diameter),
                           FormatNum(rstar_summary.avg_rect_diagonal)});
  }
  volume_table.Print();
  diameter_table.Print();
  return 0;
}

}  // namespace
}  // namespace srtree

int main(int argc, char** argv) {
  srtree::FlagParser parser;
  srtree::AddBenchFlags(parser);
  int exit_code = 0;
  const auto options = srtree::bench::ParseOrExit(parser, argc, argv,
                                                  &exit_code);
  if (!options) return exit_code;
  return srtree::Run(*options);
}
