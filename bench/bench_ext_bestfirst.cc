// Extension (beyond the paper): the paper's depth-first k-NN algorithm
// (Roussopoulos et al. 1995) versus the best-first traversal (Hjaltason &
// Samet), which is I/O-optimal for a given MINDIST bound. Measures how
// much of the optimal read count the depth-first algorithm already
// achieves on each index structure.

#include "bench/bench_util.h"

namespace srtree {
namespace {

void RunOn(const std::string& label, const Dataset& data,
           const BenchOptions& options) {
  const std::vector<Point> queries = SampleQueriesFromDataset(
      data, QueryCount(options), options.seed + 17);

  Table table("Depth-first vs best-first k-NN reads — " + label,
              {"index", "DFS reads/query", "best-first reads/query",
               "DFS overhead [%]"});
  for (const IndexType type : AllTreeTypes()) {
    IndexConfig config;
    config.dim = data.dim();
    auto index = MakeIndex(type, config);
    BuildIndexFromDataset(*index, data);

    uint64_t dfs_reads = 0;
    uint64_t bf_reads = 0;
    for (const Point& q : queries) {
      dfs_reads += index->Search(q, QuerySpec::Knn(options.k)).io.reads;
      bf_reads +=
          index->Search(q, QuerySpec::KnnBestFirst(options.k)).io.reads;
    }
    const double n = static_cast<double>(queries.size());
    table.AddRow({index->name(),
                  FormatNum(static_cast<double>(dfs_reads) / n),
                  FormatNum(static_cast<double>(bf_reads) / n),
                  FormatNum(100.0 * (static_cast<double>(dfs_reads) -
                                     static_cast<double>(bf_reads)) /
                            static_cast<double>(bf_reads))});
  }
  table.Print();
}

int Run(const BenchOptions& options) {
  const size_t n = options.full ? 50000 : 10000;
  RunOn("uniform data set (n=" + std::to_string(n) + ", D=" +
            std::to_string(options.dim) + ")",
        MakeUniformDataset(n, options.dim, options.seed), options);
  RunOn("real data set (n=" + std::to_string(n) + ", D=" +
            std::to_string(options.dim) + ")",
        bench::MakeRealDataset(n, options.dim, options.seed), options);
  return 0;
}

}  // namespace
}  // namespace srtree

int main(int argc, char** argv) {
  srtree::FlagParser parser;
  srtree::AddBenchFlags(parser);
  int exit_code = 0;
  const auto options = srtree::bench::ParseOrExit(parser, argc, argv,
                                                  &exit_code);
  if (!options) return exit_code;
  return srtree::Run(*options);
}
