// Figure 11: k-NN query performance of the SR-tree against the R*-tree,
// SS-tree and VAMSplit R-tree on the real data set (synthetic color
// histograms).
//
// Expected shape (Section 5.1): the SR-tree cuts the SS-tree's CPU time to
// ~67% and its disk reads to ~68%, and edges out even the static VAMSplit
// R-tree on this non-uniform data.

#include "bench/bench_util.h"

namespace srtree {
namespace {

int Run(const BenchOptions& options) {
  return bench::RunQueryPerformanceFigure(
      options,
      {IndexType::kRStarTree, IndexType::kSSTree, IndexType::kVamSplitRTree,
       IndexType::kSRTree},
      RealSizeLadder(options), /*real_data=*/true,
      "Figure 11 (real data set)");
}

}  // namespace
}  // namespace srtree

int main(int argc, char** argv) {
  srtree::FlagParser parser;
  srtree::AddBenchFlags(parser);
  int exit_code = 0;
  const auto options = srtree::bench::ParseOrExit(parser, argc, argv,
                                                  &exit_code);
  if (!options) return exit_code;
  return srtree::Run(*options);
}
