// Figure 13: average volume and average diameter of the leaf-level regions
// of R*-trees, SS-trees, and SR-trees on the real data set (synthetic
// color histograms).
//
// Expected shape (Section 5.2): the gap widens on non-uniform data — SR
// rect volumes are many orders of magnitude below the SS-tree's sphere
// volumes, with sphere diameters as short as the SS-tree's.

#include "bench/bench_util.h"

namespace srtree {
namespace {

int Run(const BenchOptions& options) {
  const std::vector<int64_t> sizes = RealSizeLadder(options);
  Table volume_table(
      "Figure 13a: average leaf-region volume (real data set)",
      {"data set size", "R*-tree rects", "SS-tree spheres", "SR-tree rects",
       "SR-tree spheres"});
  Table diameter_table(
      "Figure 13b: average leaf-region diameter (real data set)",
      {"data set size", "R*-tree diagonal", "SS-tree sphere diam",
       "SR-tree sphere diam", "SR-tree diagonal"});

  for (const int64_t n : sizes) {
    const Dataset data = bench::MakeRealDataset(static_cast<size_t>(n),
                                                options.dim, options.seed);
    IndexConfig config;
    config.dim = options.dim;

    auto rstar = MakeIndex(IndexType::kRStarTree, config);
    BuildIndexFromDataset(*rstar, data);
    const RegionSummary rs = rstar->LeafRegionSummary();

    auto ss = MakeIndex(IndexType::kSSTree, config);
    BuildIndexFromDataset(*ss, data);
    const RegionSummary sss = ss->LeafRegionSummary();

    auto sr = MakeIndex(IndexType::kSRTree, config);
    BuildIndexFromDataset(*sr, data);
    const RegionSummary srs = sr->LeafRegionSummary();

    volume_table.AddRow(
        {std::to_string(n), FormatNum(rs.avg_rect_volume),
         FormatNum(sss.avg_sphere_volume), FormatNum(srs.avg_rect_volume),
         FormatNum(srs.avg_sphere_volume)});
    diameter_table.AddRow(
        {std::to_string(n), FormatNum(rs.avg_rect_diagonal),
         FormatNum(sss.avg_sphere_diameter),
         FormatNum(srs.avg_sphere_diameter),
         FormatNum(srs.avg_rect_diagonal)});
  }
  volume_table.Print();
  diameter_table.Print();
  return 0;
}

}  // namespace
}  // namespace srtree

int main(int argc, char** argv) {
  srtree::FlagParser parser;
  srtree::AddBenchFlags(parser);
  int exit_code = 0;
  const auto options = srtree::bench::ParseOrExit(parser, argc, argv,
                                                  &exit_code);
  if (!options) return exit_code;
  return srtree::Run(*options);
}
