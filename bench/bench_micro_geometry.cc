// Google Benchmark micro-benchmarks for the geometry and storage
// primitives on every index structure's hot path: distances, MINDIST /
// MAXDIST, node (de)serialization, and paged I/O.

#include <benchmark/benchmark.h>

#include "src/common/random.h"
#include "src/geometry/point.h"
#include "src/geometry/rect.h"
#include "src/geometry/sphere.h"
#include "src/geometry/volume.h"
#include "src/storage/page.h"
#include "src/storage/page_file.h"

namespace srtree {
namespace {

Point RandomPoint(Xoshiro256& rng, int dim) {
  Point p(dim);
  for (double& c : p) c = rng.NextDouble();
  return p;
}

void BM_SquaredDistance(benchmark::State& state) {
  const int dim = static_cast<int>(state.range(0));
  Xoshiro256 rng(1);
  const Point a = RandomPoint(rng, dim);
  const Point b = RandomPoint(rng, dim);
  for (auto _ : state) {
    benchmark::DoNotOptimize(SquaredDistance(a, b));
  }
}
BENCHMARK(BM_SquaredDistance)->Arg(2)->Arg(16)->Arg(64);

void BM_RectMinDist(benchmark::State& state) {
  const int dim = static_cast<int>(state.range(0));
  Xoshiro256 rng(2);
  Rect rect = Rect::FromPoint(RandomPoint(rng, dim));
  for (int i = 0; i < 10; ++i) rect.Expand(RandomPoint(rng, dim));
  const Point q = RandomPoint(rng, dim);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rect.MinDistSq(q));
  }
}
BENCHMARK(BM_RectMinDist)->Arg(2)->Arg(16)->Arg(64);

void BM_RectMaxDist(benchmark::State& state) {
  const int dim = static_cast<int>(state.range(0));
  Xoshiro256 rng(3);
  Rect rect = Rect::FromPoint(RandomPoint(rng, dim));
  for (int i = 0; i < 10; ++i) rect.Expand(RandomPoint(rng, dim));
  const Point q = RandomPoint(rng, dim);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rect.MaxDistSq(q));
  }
}
BENCHMARK(BM_RectMaxDist)->Arg(2)->Arg(16)->Arg(64);

void BM_SphereMinDist(benchmark::State& state) {
  const int dim = static_cast<int>(state.range(0));
  Xoshiro256 rng(4);
  const Sphere sphere(RandomPoint(rng, dim), 0.3);
  const Point q = RandomPoint(rng, dim);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sphere.MinDist(q));
  }
}
BENCHMARK(BM_SphereMinDist)->Arg(2)->Arg(16)->Arg(64);

void BM_BallVolume(benchmark::State& state) {
  const int dim = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(BallVolume(dim, 0.75));
  }
}
BENCHMARK(BM_BallVolume)->Arg(16)->Arg(64);

void BM_PageSerializeLeaf(benchmark::State& state) {
  // Serializing a 12-entry, 16-d leaf — the paper's node layout.
  const int dim = 16;
  Xoshiro256 rng(5);
  std::vector<Point> points;
  for (int i = 0; i < 12; ++i) points.push_back(RandomPoint(rng, dim));
  std::vector<char> buf(kDefaultPageSize);
  for (auto _ : state) {
    PageWriter w(buf.data(), buf.size());
    w.PutU8(0);
    w.PutU8(0);
    w.PutU16(12);
    w.PutU32(0);
    for (const Point& p : points) {
      w.PutDoubles(p);
      w.PutU32(7);
      w.Skip(512);
    }
    benchmark::DoNotOptimize(buf.data());
  }
}
BENCHMARK(BM_PageSerializeLeaf);

void BM_PageFileReadWrite(benchmark::State& state) {
  PageFile file(kDefaultPageSize);
  const PageId id = file.Allocate();
  std::vector<char> buf(kDefaultPageSize, 'x');
  for (auto _ : state) {
    file.Write(id, buf.data());
    file.Read(id, buf.data(), 0);
    benchmark::DoNotOptimize(buf.data());
  }
}
BENCHMARK(BM_PageFileReadWrite);

}  // namespace
}  // namespace srtree

BENCHMARK_MAIN();
