// Micro-benchmarks for the DistanceKernel batched primitives — ns per
// element for every implementation compiled in and supported by this CPU
// (scalar / AVX2 / AVX-512), across the dimensionalities the paper's
// experiments span — plus the storage primitives on the node hot path.
//
// `--json` writes the same tables as a machine-readable report; the checked
// in baseline lives at bench/snapshots/BENCH_micro_geometry.json.

#include <algorithm>
#include <cstddef>
#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/common/random.h"
#include "src/common/timer.h"
#include "src/geometry/kernel.h"
#include "src/storage/page.h"
#include "src/storage/page_file.h"

namespace srtree::bench {
namespace {

// Keeps the timed calls from being optimized away.
volatile double g_sink = 0.0;

Point RandomPoint(Xoshiro256& rng, int dim) {
  Point p(static_cast<size_t>(dim));
  for (double& c : p) c = rng.NextDouble();
  return p;
}

// Runs `fn` until it has consumed ~20ms of CPU and reports ns per call.
template <typename Fn>
double NsPerCall(Fn&& fn) {
  fn();  // warm-up / first touch
  for (size_t iters = 1;; iters *= 4) {
    CpuTimer timer;
    for (size_t i = 0; i < iters; ++i) fn();
    const double elapsed = timer.ElapsedSeconds();
    if (elapsed >= 0.02) return elapsed * 1e9 / static_cast<double>(iters);
  }
}

// One SoA block of `count` random points/rects/spheres of dimension `dim`,
// shared by every kernel op so the implementations race on identical data.
struct KernelFixture {
  Point query;
  SoaBuffer points;        // points / sphere centers / rect lows
  SoaBuffer highs;         // rect highs
  std::vector<double> radii;
  std::vector<double> out;
  double bound_sq = 0.0;   // median squared distance: ~half the block prunes
};

KernelFixture MakeFixture(int dim, size_t count, uint64_t seed) {
  Xoshiro256 rng(seed);
  KernelFixture f;
  f.query = RandomPoint(rng, dim);
  f.points.Reset(dim, count);
  f.highs.Reset(dim, count);
  f.radii.resize(count);
  f.out.resize(count);
  for (size_t i = 0; i < count; ++i) {
    const Point lo = RandomPoint(rng, dim);
    Point hi = lo;
    for (double& c : hi) c += 0.25 * rng.NextDouble();
    f.points.SetElement(i, lo);
    f.highs.SetElement(i, hi);
    f.radii[i] = 0.3 * rng.NextDouble();
  }
  std::vector<double> d2(count);
  GetDistanceKernel().SquaredL2ToMany(f.query, f.points.block(), d2.data());
  std::nth_element(d2.begin(), d2.begin() + static_cast<long>(count / 2),
                   d2.end());
  f.bound_sq = d2[count / 2];
  return f;
}

struct KernelOpCase {
  const char* name;
  std::function<void(const DistanceKernel&, KernelFixture&)> run;
};

int Run(const BenchOptions& options) {
  constexpr size_t kCount = 256;
  const std::vector<int> dims = {2, 16, 64, 256};
  const std::vector<KernelImpl> all_impls = {
      KernelImpl::kScalar, KernelImpl::kAvx2, KernelImpl::kAvx512};

  const std::vector<KernelOpCase> ops = {
      {"squared_l2",
       [](const DistanceKernel& k, KernelFixture& f) {
         k.SquaredL2ToMany(f.query, f.points.block(), f.out.data());
       }},
      {"squared_l2_bounded",
       [](const DistanceKernel& k, KernelFixture& f) {
         k.SquaredL2ToManyBounded(f.query, f.points.block(), f.bound_sq,
                                  f.out.data());
       }},
      {"rect_mindist_sq",
       [](const DistanceKernel& k, KernelFixture& f) {
         k.MinDistRectToMany(f.query, f.points.block(), f.highs.block(),
                             f.out.data());
       }},
      {"sphere_mindist",
       [](const DistanceKernel& k, KernelFixture& f) {
         k.SphereMinDistToMany(f.query, f.points.block(), f.radii.data(),
                               f.out.data());
       }},
  };

  std::printf("active kernel: %s\n", GetDistanceKernel().name());

  Table kernel_table(
      "micro geometry: kernel ns per element (block=256)",
      {"op", "dim", "scalar", "avx2", "avx512"});
  for (const KernelOpCase& op : ops) {
    for (const int dim : dims) {
      KernelFixture fixture =
          MakeFixture(dim, kCount, options.seed + static_cast<uint64_t>(dim));
      std::vector<std::string> row = {op.name, std::to_string(dim)};
      for (const KernelImpl impl : all_impls) {
        const DistanceKernel* kernel = GetDistanceKernelFor(impl);
        if (kernel == nullptr) {
          row.emplace_back("n/a");
          continue;
        }
        const double ns = NsPerCall([&] {
          op.run(*kernel, fixture);
          g_sink = g_sink + fixture.out[0] + fixture.out[kCount - 1];
        });
        row.push_back(FormatNum(ns / static_cast<double>(kCount)));
      }
      kernel_table.AddRow(std::move(row));
    }
  }
  kernel_table.Print();

  Table storage_table("micro geometry: storage ns per op", {"op", "ns"});
  {
    // Serializing a 12-entry, 16-d leaf — the paper's node layout.
    Xoshiro256 rng(options.seed + 5);
    std::vector<Point> points;
    for (int i = 0; i < 12; ++i) points.push_back(RandomPoint(rng, 16));
    std::vector<char> buf(kDefaultPageSize);
    const double ns = NsPerCall([&] {
      PageWriter w(buf.data(), buf.size());
      w.PutU8(0);
      w.PutU8(0);
      w.PutU16(12);
      w.PutU32(0);
      for (const Point& p : points) {
        w.PutDoubles(p);
        w.PutU32(7);
        w.Skip(512);
      }
      g_sink = g_sink + static_cast<double>(buf[0]);
    });
    storage_table.AddRow({"page_serialize_leaf", FormatNum(ns)});
  }
  {
    PageFile file(kDefaultPageSize);
    const PageId id = file.Allocate();
    std::vector<char> buf(kDefaultPageSize, 'x');
    const double ns = NsPerCall([&] {
      file.Write(id, buf.data());
      file.Read(id, buf.data(), 0);
      g_sink = g_sink + static_cast<double>(buf[0]);
    });
    storage_table.AddRow({"pagefile_read_write", FormatNum(ns)});
  }
  storage_table.Print();

  return EmitJsonReport(options, {kernel_table, storage_table});
}

}  // namespace
}  // namespace srtree::bench

int main(int argc, char** argv) {
  srtree::FlagParser parser;
  srtree::AddBenchFlags(parser);
  int exit_code = 0;
  const auto options =
      srtree::bench::ParseOrExit(parser, argc, argv, &exit_code);
  if (!options.has_value()) return exit_code;
  return srtree::bench::Run(*options);
}
