// Figure 18: k-NN query performance of SR-trees and SS-trees on the
// cluster data set with varying dimensionality (100 clusters of 1000
// points at paper scale) — (a) CPU time, (b) disk reads.
//
// Expected shape (Section 5.4): unlike the uniform set, clustered data
// stays indexable at high dimensionality, and the SR-tree's margin over
// the SS-tree holds from low to high dimensions (the paper reports ~2x).

#include "bench/bench_util.h"
#include "src/workload/cluster.h"

namespace srtree {
namespace {

int Run(const BenchOptions& options) {
  const std::vector<int> dims = {1, 2, 4, 8, 16, 32, 64};
  const size_t clusters = 100;
  const size_t per_cluster = options.full ? 1000 : 200;

  Table cpu_table("Figure 18a: CPU time per query [ms] vs dimensionality "
                  "(cluster data set, " + std::to_string(clusters) + "x" +
                      std::to_string(per_cluster) + ")",
                  {"dimensionality", "SS-tree", "SR-tree"});
  Table read_table("Figure 18b: disk reads per query vs dimensionality "
                   "(cluster data set, " + std::to_string(clusters) + "x" +
                       std::to_string(per_cluster) + ")",
                   {"dimensionality", "SS-tree", "SR-tree"});

  for (const int dim : dims) {
    ClusterConfig cluster_config;
    cluster_config.num_clusters = clusters;
    cluster_config.points_per_cluster = per_cluster;
    cluster_config.dim = dim;
    cluster_config.seed = options.seed;
    const Dataset data = MakeClusterDataset(cluster_config);
    const std::vector<Point> queries = SampleQueriesFromDataset(
        data, QueryCount(options), options.seed + 17);
    IndexConfig config;
    config.dim = dim;

    auto ss = MakeIndex(IndexType::kSSTree, config);
    BuildIndexFromDataset(*ss, data);
    const QueryMetrics ssm = RunKnnWorkload(*ss, queries, options.k);

    auto sr = MakeIndex(IndexType::kSRTree, config);
    BuildIndexFromDataset(*sr, data);
    const QueryMetrics srm = RunKnnWorkload(*sr, queries, options.k);

    cpu_table.AddRow({std::to_string(dim), FormatNum(ssm.cpu_ms),
                      FormatNum(srm.cpu_ms)});
    read_table.AddRow({std::to_string(dim), FormatNum(ssm.disk_reads),
                       FormatNum(srm.disk_reads)});
  }
  cpu_table.Print();
  read_table.Print();
  return 0;
}

}  // namespace
}  // namespace srtree

int main(int argc, char** argv) {
  srtree::FlagParser parser;
  srtree::AddBenchFlags(parser);
  int exit_code = 0;
  const auto options = srtree::bench::ParseOrExit(parser, argc, argv,
                                                  &exit_code);
  if (!options) return exit_code;
  return srtree::Run(*options);
}
