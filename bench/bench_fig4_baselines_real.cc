// Figure 4: k-NN query performance of the K-D-B-tree, R*-tree, SS-tree and
// VAMSplit R-tree on the real data set (synthetic color histograms).
//
// Expected shape (Section 3.2): the SS-tree's margin over the R*-tree and
// the K-D-B-tree widens on this non-uniform data — the paper reports the
// SS-tree about four times faster than the R*-tree.

#include "bench/bench_util.h"

namespace srtree {
namespace {

int Run(const BenchOptions& options) {
  return bench::RunQueryPerformanceFigure(
      options,
      {IndexType::kKdbTree, IndexType::kRStarTree, IndexType::kSSTree,
       IndexType::kVamSplitRTree},
      RealSizeLadder(options), /*real_data=*/true,
      "Figure 4 (real data set)");
}

}  // namespace
}  // namespace srtree

int main(int argc, char** argv) {
  srtree::FlagParser parser;
  srtree::AddBenchFlags(parser);
  int exit_code = 0;
  const auto options = srtree::bench::ParseOrExit(parser, argc, argv,
                                                  &exit_code);
  if (!options) return exit_code;
  return srtree::Run(*options);
}
