// Table 1: the maximum number of entries in a node and in a leaf for each
// index structure, as a function of dimensionality (8192-byte pages,
// 512-byte leaf data areas, 8-byte coordinates).
//
// Capacities come from the actual serialized page layouts via
// PointIndex::node_capacity()/leaf_capacity(), not typed-in constants: the
// Section 5.3 "fanout problem" (an SR node entry is 3x an SS entry and
// 1.5x an R* entry) is visible directly in the node row.

#include <cstdio>

#include "bench/bench_util.h"
#include "src/benchlib/experiment.h"
#include "src/benchlib/report.h"

namespace srtree {
namespace {

int Run() {
  const std::vector<int> dims = {10, 20, 30, 40, 50, 60, 70, 80, 90, 100};

  std::vector<std::string> cols = {"index"};
  for (const int d : dims) cols.push_back(std::to_string(d));
  Table node_table("Table 1a: max entries in a NODE vs dimensionality", cols);
  Table leaf_table("Table 1b: max entries in a LEAF vs dimensionality", cols);

  for (const IndexType type : AllTreeTypes()) {
    std::vector<std::string> node_row = {IndexTypeName(type)};
    std::vector<std::string> leaf_row = {IndexTypeName(type)};
    for (const int dim : dims) {
      IndexConfig config;
      config.dim = dim;
      const auto index = MakeIndex(type, config);
      node_row.push_back(std::to_string(index->node_capacity()));
      leaf_row.push_back(std::to_string(index->leaf_capacity()));
    }
    node_table.AddRow(std::move(node_row));
    leaf_table.AddRow(std::move(leaf_row));
  }
  node_table.Print();
  leaf_table.Print();
  std::printf(
      "\nNote: at D=16 the SR-tree node holds 20 entries vs 56 (SS-tree) and"
      " 31 (R*-tree)\n      — the Section 5.3 fanout trade-off.\n");
  return 0;
}

}  // namespace
}  // namespace srtree

int main(int argc, char** argv) {
  srtree::FlagParser parser;
  srtree::AddBenchFlags(parser);
  int exit_code = 0;
  if (!srtree::bench::ParseOrExit(parser, argc, argv, &exit_code)) {
    return exit_code;
  }
  return srtree::Run();
}
