// Table 3: heights of the constructed trees for the real data set
// (synthetic 16-d color histograms standing in for the paper's image
// features), as a function of data set size.

#include "bench/bench_util.h"
#include "src/benchlib/experiment.h"
#include "src/benchlib/report.h"

namespace srtree {
namespace {

int Run(const BenchOptions& options) {
  const std::vector<int64_t> sizes = RealSizeLadder(options);

  std::vector<std::string> cols = {"index"};
  for (const int64_t n : sizes) cols.push_back(std::to_string(n));
  Table table("Table 3: tree heights (real data set, D=" +
                  std::to_string(options.dim) + ")",
              cols);

  for (const IndexType type : AllTreeTypes()) {
    std::vector<std::string> row = {IndexTypeName(type)};
    for (const int64_t n : sizes) {
      const Dataset data = bench::MakeRealDataset(static_cast<size_t>(n),
                                                  options.dim, options.seed);
      IndexConfig config;
      config.dim = options.dim;
      auto index = MakeIndex(type, config);
      BuildIndexFromDataset(*index, data);
      row.push_back(std::to_string(index->GetTreeStats().height));
    }
    table.AddRow(std::move(row));
  }
  table.Print();
  return 0;
}

}  // namespace
}  // namespace srtree

int main(int argc, char** argv) {
  srtree::FlagParser parser;
  srtree::AddBenchFlags(parser);
  int exit_code = 0;
  const auto options = srtree::bench::ParseOrExit(parser, argc, argv,
                                                  &exit_code);
  if (!options) return exit_code;
  return srtree::Run(*options);
}
