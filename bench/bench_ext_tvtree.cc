// Extension (beyond the paper): the Section 2.5 critique of the TV-tree,
// measured. On real-valued feature vectors the telescoping never engages,
// so the TV-tree reduces to an R*-tree over the first `active_dims`
// dimensions: higher fanout, but weaker MINDIST bounds. This bench sweeps
// the active-dimension count and compares against the full R*-tree and the
// SR-tree on the paper's workloads.

#include "bench/bench_util.h"
#include "src/tvtree/tv_r_tree.h"

namespace srtree {
namespace {

void RunOn(const std::string& label, const Dataset& data,
           const BenchOptions& options) {
  const std::vector<Point> queries = SampleQueriesFromDataset(
      data, QueryCount(options), options.seed + 17);

  Table table("TV-tree active-dimension sweep — " + label,
              {"index", "reads/query", "CPU ms/query", "node fanout",
               "height"});

  for (const int active : {2, 4, 8, 16}) {
    if (active > data.dim()) continue;
    TvRTree::Options tv_options;
    tv_options.dim = data.dim();
    tv_options.active_dims = active;
    TvRTree tree(tv_options);
    BuildIndexFromDataset(tree, data);
    const QueryMetrics metrics = RunKnnWorkload(tree, queries, options.k);
    table.AddRow({"TV-tree (α=" + std::to_string(active) + ")",
                  FormatNum(metrics.disk_reads), FormatNum(metrics.cpu_ms),
                  std::to_string(tree.node_capacity()),
                  std::to_string(tree.height())});
  }
  for (const IndexType type : {IndexType::kRStarTree, IndexType::kSRTree}) {
    IndexConfig config;
    config.dim = data.dim();
    auto index = MakeIndex(type, config);
    BuildIndexFromDataset(*index, data);
    const QueryMetrics metrics = RunKnnWorkload(*index, queries, options.k);
    table.AddRow({index->name(), FormatNum(metrics.disk_reads),
                  FormatNum(metrics.cpu_ms),
                  std::to_string(index->node_capacity()),
                  std::to_string(index->GetTreeStats().height)});
  }
  table.Print();
}

int Run(const BenchOptions& options) {
  const size_t n = options.full ? 50000 : 10000;
  RunOn("uniform data set (n=" + std::to_string(n) + ", D=" +
            std::to_string(options.dim) + ")",
        MakeUniformDataset(n, options.dim, options.seed), options);
  RunOn("real data set (n=" + std::to_string(n) + ", D=" +
            std::to_string(options.dim) + ")",
        bench::MakeRealDataset(n, options.dim, options.seed), options);
  return 0;
}

}  // namespace
}  // namespace srtree

int main(int argc, char** argv) {
  srtree::FlagParser parser;
  srtree::AddBenchFlags(parser);
  int exit_code = 0;
  const auto options = srtree::bench::ParseOrExit(parser, argc, argv,
                                                  &exit_code);
  if (!options) return exit_code;
  return srtree::Run(*options);
}
