// Extension (beyond the paper): Section 2.6 lists the X-tree as related
// work and calls the effectiveness of its mechanisms for the SR-tree "an
// open question". This bench puts the X-tree next to the R*-tree, the
// SS-tree and the SR-tree on the paper's workloads, and reports its
// supernode population — the empirical half of that question.

#include "bench/bench_util.h"
#include "src/workload/cluster.h"
#include "src/xtree/x_tree.h"

namespace srtree {
namespace {

void RunOn(const std::string& label, const Dataset& data,
           const BenchOptions& options) {
  const std::vector<Point> queries = SampleQueriesFromDataset(
      data, QueryCount(options), options.seed + 17);

  Table table("X-tree vs the paper's trees — " + label,
              {"index", "reads/query", "CPU ms/query", "height", "pages"});
  for (const IndexType type :
       {IndexType::kRStarTree, IndexType::kXTree, IndexType::kSSTree,
        IndexType::kSRTree}) {
    IndexConfig config;
    config.dim = data.dim();
    auto index = MakeIndex(type, config);
    BuildIndexFromDataset(*index, data);
    const QueryMetrics metrics = RunKnnWorkload(*index, queries, options.k);
    const TreeStats stats = index->GetTreeStats();
    table.AddRow({index->name(), FormatNum(metrics.disk_reads),
                  FormatNum(metrics.cpu_ms), std::to_string(stats.height),
                  std::to_string(stats.node_count + stats.leaf_count)});
  }
  table.Print();

  // Supernode population of the X-tree on this workload.
  XTree::Options xtree_options;
  xtree_options.dim = data.dim();
  XTree xtree(xtree_options);
  BuildIndexFromDataset(xtree, data);
  const XTree::SupernodeStats super = xtree.GetSupernodeStats();
  Table super_table("X-tree supernodes — " + label,
                    {"directory nodes", "supernodes", "supernode pages",
                     "overlap-free splits", "extensions"});
  super_table.AddRow({std::to_string(super.directory_nodes),
                      std::to_string(super.supernodes),
                      std::to_string(super.supernode_pages),
                      std::to_string(xtree.overlap_free_splits()),
                      std::to_string(xtree.supernode_extensions())});
  super_table.Print();
}

int Run(const BenchOptions& options) {
  const size_t n = options.full ? 50000 : 10000;
  RunOn("uniform data set (n=" + std::to_string(n) + ", D=" +
            std::to_string(options.dim) + ")",
        MakeUniformDataset(n, options.dim, options.seed), options);
  RunOn("real data set (n=" + std::to_string(n) + ", D=" +
            std::to_string(options.dim) + ")",
        bench::MakeRealDataset(n, options.dim, options.seed), options);

  ClusterConfig cluster_config;
  cluster_config.num_clusters = 100;
  cluster_config.points_per_cluster = n / 100;
  cluster_config.dim = options.dim;
  cluster_config.seed = options.seed;
  RunOn("cluster data set (n=" + std::to_string(n) + ", D=" +
            std::to_string(options.dim) + ")",
        MakeClusterDataset(cluster_config), options);
  return 0;
}

}  // namespace
}  // namespace srtree

int main(int argc, char** argv) {
  srtree::FlagParser parser;
  srtree::AddBenchFlags(parser);
  int exit_code = 0;
  const auto options = srtree::bench::ParseOrExit(parser, argc, argv,
                                                  &exit_code);
  if (!options) return exit_code;
  return srtree::Run(*options);
}
