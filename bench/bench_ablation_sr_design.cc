// Ablation (beyond the paper's figures): how much of the SR-tree's win
// comes from each of its two design choices?
//   (1) Section 4.2 — parent sphere radius = min(d_s, d_r) instead of the
//       SS-tree's d_s;
//   (2) Section 4.4 — search MINDIST = max(sphere, rect) instead of the
//       sphere bound alone.
// Each switch is toggled independently; "neither" stores rectangles but
// never benefits from them, isolating the pure fanout penalty of the
// larger node entries.

#include "bench/bench_util.h"
#include "src/core/sr_tree.h"
#include "src/workload/cluster.h"

namespace srtree {
namespace {

struct Variant {
  const char* name;
  bool rect_in_radius;
  bool rect_in_mindist;
};

constexpr Variant kVariants[] = {
    {"SR-tree (both rules)", true, true},
    {"radius rule only", true, false},
    {"mindist rule only", false, true},
    {"neither (fanout cost only)", false, false},
};

void RunOn(const std::string& label, const Dataset& data,
           const BenchOptions& options) {
  const std::vector<Point> queries = SampleQueriesFromDataset(
      data, QueryCount(options), options.seed + 17);

  Table table("SR-tree design ablation — " + label,
              {"variant", "disk reads/query", "leaf reads/query",
               "CPU ms/query"});
  for (const Variant& variant : kVariants) {
    SRTree::Options tree_options;
    tree_options.dim = data.dim();
    tree_options.use_rect_in_radius = variant.rect_in_radius;
    tree_options.use_rect_in_mindist = variant.rect_in_mindist;
    SRTree tree(tree_options);
    BuildIndexFromDataset(tree, data);
    const QueryMetrics metrics = RunKnnWorkload(tree, queries, options.k);
    table.AddRow({variant.name, FormatNum(metrics.disk_reads),
                  FormatNum(metrics.leaf_reads), FormatNum(metrics.cpu_ms)});
  }
  table.Print();
}

int Run(const BenchOptions& options) {
  const size_t n = options.full ? 50000 : 10000;

  RunOn("uniform data set (n=" + std::to_string(n) + ", D=" +
            std::to_string(options.dim) + ")",
        MakeUniformDataset(n, options.dim, options.seed), options);

  ClusterConfig cluster_config;
  cluster_config.num_clusters = 100;
  cluster_config.points_per_cluster = n / 100;
  cluster_config.dim = options.dim;
  cluster_config.seed = options.seed;
  RunOn("cluster data set (n=" + std::to_string(n) + ", D=" +
            std::to_string(options.dim) + ")",
        MakeClusterDataset(cluster_config), options);

  RunOn("real data set (n=" + std::to_string(n) + ", D=" +
            std::to_string(options.dim) + ")",
        bench::MakeRealDataset(n, options.dim, options.seed), options);
  return 0;
}

}  // namespace
}  // namespace srtree

int main(int argc, char** argv) {
  srtree::FlagParser parser;
  srtree::AddBenchFlags(parser);
  int exit_code = 0;
  const auto options = srtree::bench::ParseOrExit(parser, argc, argv,
                                                  &exit_code);
  if (!options) return exit_code;
  return srtree::Run(*options);
}
