// Figure 10: k-NN query performance of the SR-tree against the R*-tree,
// SS-tree and VAMSplit R-tree on the uniform data set.
//
// Expected shape (Section 5.1): the SR-tree cuts the SS-tree's CPU time to
// ~91% and its disk reads to ~93% on uniform data; the static VAMSplit
// R-tree still wins this workload.

#include "bench/bench_util.h"

namespace srtree {
namespace {

int Run(const BenchOptions& options) {
  return bench::RunQueryPerformanceFigure(
      options,
      {IndexType::kRStarTree, IndexType::kSSTree, IndexType::kVamSplitRTree,
       IndexType::kSRTree},
      UniformSizeLadder(options), /*real_data=*/false,
      "Figure 10 (uniform data set)");
}

}  // namespace
}  // namespace srtree

int main(int argc, char** argv) {
  srtree::FlagParser parser;
  srtree::AddBenchFlags(parser);
  int exit_code = 0;
  const auto options = srtree::bench::ParseOrExit(parser, argc, argv,
                                                  &exit_code);
  if (!options) return exit_code;
  return srtree::Run(*options);
}
