// Extension (beyond the paper): batch k-NN throughput of the concurrent
// QueryEngine while a single writer commits Insert/Delete mutations against
// the same SR-tree. The paper's figures are read-only by design; this bench
// measures what snapshot-isolated reads over copy-on-write pages cost: each
// RunBatch pins one committed version and drains against it while the
// writer keeps publishing new versions (retired page versions are reclaimed
// epoch-by-epoch behind the readers).
//
// Method: build one SR-tree over a 16-d uniform data set, then for each
// worker count run the query batch twice — once read-only (the baseline)
// and once with a concurrent writer thread looping over an insert/delete
// schedule for the duration of the batch loop. Queries per second is batch
// size times rounds over wall time; mutations/s is the writer's committed
// throughput over the same wall clock.

#include <atomic>
#include <thread>

#include "bench/bench_util.h"
#include "src/common/timer.h"
#include "src/engine/query_engine.h"

namespace srtree {
namespace {

int Run(const BenchOptions& options) {
  const size_t n = options.full ? 100000 : 20000;
  const int dim = 16;
  const int rounds = options.full ? 8 : 4;
  const Dataset data = MakeUniformDataset(n, dim, options.seed);
  const size_t num_queries = options.full ? 2048 : 512;
  const std::vector<Point> query_points =
      SampleQueriesFromDataset(data, num_queries, options.seed + 17);

  std::vector<Query> batch;
  batch.reserve(query_points.size());
  for (const Point& q : query_points) {
    batch.push_back(Query{q, QuerySpec::Knn(options.k)});
  }

  // The writer cycles through a pre-built pool of extra points, inserting
  // each and deleting it again two steps later, so the tree's size stays
  // within +2 of the baseline and rounds are comparable.
  const Dataset extra =
      MakeUniformDataset(options.full ? 4096 : 1024, dim, options.seed + 29);
  const std::vector<Point> extra_points = extra.ToPoints();

  IndexConfig config;
  config.dim = dim;
  std::unique_ptr<PointIndex> index = MakeIndex(IndexType::kSRTree, config);
  BuildIndexFromDataset(*index, data);

  Table table("Batch k-NN under a concurrent writer (SR-tree, uniform, n=" +
                  std::to_string(n) + ", D=" + std::to_string(dim) +
                  ", batch=" + std::to_string(batch.size()) + ")",
              {"workers", "writer", "queries/s", "mutations/s",
               "reads/query", "stolen chunks"});

  for (const int workers : {1, 2, 4, 8}) {
    for (const bool with_writer : {false, true}) {
      EngineOptions engine_options;
      engine_options.num_workers = workers;
      PointIndex* const raw = index.get();  // the single writer's handle
      QueryEngine engine(std::move(index), engine_options);
      (void)engine.RunBatch(batch);  // warm-up pass

      std::atomic<bool> stop{false};
      std::atomic<uint64_t> mutations{0};
      std::thread writer;
      if (with_writer) {
        writer = std::thread([&] {
          uint32_t oid = 10'000'000;
          size_t i = 0;
          uint64_t done = 0;
          while (!stop.load(std::memory_order_relaxed)) {
            const Point& p = extra_points[i % extra_points.size()];
            CHECK(raw->Insert(p, oid).ok());
            ++done;
            if (i >= 2) {
              const Point& old = extra_points[(i - 2) % extra_points.size()];
              CHECK(raw->Delete(old, oid - 2).ok());
              ++done;
            }
            ++oid;
            ++i;
          }
          mutations.store(done, std::memory_order_relaxed);
        });
      }

      const WallTimer timer;
      uint64_t reads = 0;
      size_t steals = 0;
      for (int r = 0; r < rounds; ++r) {
        const std::vector<QueryResult> results = engine.RunBatch(batch);
        for (const QueryResult& res : results) CHECK(res.status.ok());
        const BatchStats stats = engine.last_batch_stats();
        reads += stats.io.reads;
        steals += stats.steals;
      }
      const double wall = timer.ElapsedSeconds();

      if (with_writer) {
        stop.store(true, std::memory_order_relaxed);
        writer.join();
      }
      index = engine.ReleaseIndex();

      const double total_queries =
          static_cast<double>(batch.size()) * rounds;
      table.AddRow(
          {std::to_string(workers), with_writer ? "1 thread" : "none",
           FormatNum(total_queries / wall),
           with_writer
               ? FormatNum(static_cast<double>(
                               mutations.load(std::memory_order_relaxed)) /
                           wall)
               : "0",
           FormatNum(static_cast<double>(reads) / total_queries),
           std::to_string(steals)});
    }
  }
  table.Print();
  return bench::EmitJsonReport(options, {table});
}

}  // namespace
}  // namespace srtree

int main(int argc, char** argv) {
  srtree::FlagParser parser;
  srtree::AddBenchFlags(parser);
  int exit_code = 0;
  const auto options = srtree::bench::ParseOrExit(parser, argc, argv,
                                                  &exit_code);
  if (!options) return exit_code;
  return srtree::Run(*options);
}
