// Figure 17: the minimum, average and maximum of the pairwise distances
// between points of the uniform data set, with varying dimensionality.
//
// Expected shape (Section 5.4): the minimum grows drastically with
// dimensionality; the min/max ratio rises to ~24% at D=16, ~40% at D=32,
// ~53% at D=64 — distances concentrate, so "neighborhoods" stop existing
// and the uniform data set stops being a meaningful k-NN benchmark.
//
// Statistics are exact over all pairs of a fixed-size random sample of the
// data set (the statistic concentrates; see DESIGN.md).

#include "bench/bench_util.h"

namespace srtree {
namespace {

int Run(const BenchOptions& options) {
  const std::vector<int> dims = {1, 2, 4, 8, 16, 32, 64};
  const size_t n = options.sizes.empty()
                       ? (options.full ? 100000u : 10000u)
                       : static_cast<size_t>(options.sizes[0]);
  const size_t sample = options.full ? 2000 : 1000;

  Table table("Figure 17: pairwise distances in the uniform data set "
              "(n=" + std::to_string(n) + ", sample=" +
                  std::to_string(sample) + ")",
              {"dimensionality", "min", "avg", "max", "min/max [%]"});

  for (const int dim : dims) {
    const Dataset data = MakeUniformDataset(n, dim, options.seed);
    const DistanceStats stats =
        ComputePairwiseDistances(data, sample, options.seed + 23);
    table.AddRow({std::to_string(dim), FormatNum(stats.min),
                  FormatNum(stats.avg), FormatNum(stats.max),
                  FormatNum(100.0 * stats.min / stats.max)});
  }
  table.Print();
  return 0;
}

}  // namespace
}  // namespace srtree

int main(int argc, char** argv) {
  srtree::FlagParser parser;
  srtree::AddBenchFlags(parser);
  int exit_code = 0;
  const auto options = srtree::bench::ParseOrExit(parser, argc, argv,
                                                  &exit_code);
  if (!options) return exit_code;
  return srtree::Run(*options);
}
