// Figure 15: k-NN query performance of SR-trees and SS-trees on the
// uniform data set with varying dimensionality (fixed data set size) —
// (a) CPU time, (b) disk reads.
//
// Expected shape (Section 5.4): both trees degrade sharply beyond ~16
// dimensions; by D=32..64 the uniform data set defeats every index (see
// Figures 16 and 17 for why), so the curves converge.

#include "bench/bench_util.h"

namespace srtree {
namespace {

int Run(const BenchOptions& options) {
  const std::vector<int> dims = {1, 2, 4, 8, 16, 32, 64};
  const size_t n = options.sizes.empty()
                       ? (options.full ? 100000u : 10000u)
                       : static_cast<size_t>(options.sizes[0]);

  Table cpu_table("Figure 15a: CPU time per query [ms] vs dimensionality "
                  "(uniform, n=" + std::to_string(n) + ")",
                  {"dimensionality", "SS-tree", "SR-tree"});
  Table read_table("Figure 15b: disk reads per query vs dimensionality "
                   "(uniform, n=" + std::to_string(n) + ")",
                   {"dimensionality", "SS-tree", "SR-tree"});

  for (const int dim : dims) {
    const Dataset data = MakeUniformDataset(n, dim, options.seed);
    const std::vector<Point> queries = SampleQueriesFromDataset(
        data, QueryCount(options), options.seed + 17);
    IndexConfig config;
    config.dim = dim;

    auto ss = MakeIndex(IndexType::kSSTree, config);
    BuildIndexFromDataset(*ss, data);
    const QueryMetrics ssm = RunKnnWorkload(*ss, queries, options.k);

    auto sr = MakeIndex(IndexType::kSRTree, config);
    BuildIndexFromDataset(*sr, data);
    const QueryMetrics srm = RunKnnWorkload(*sr, queries, options.k);

    cpu_table.AddRow({std::to_string(dim), FormatNum(ssm.cpu_ms),
                      FormatNum(srm.cpu_ms)});
    read_table.AddRow({std::to_string(dim), FormatNum(ssm.disk_reads),
                       FormatNum(srm.disk_reads)});
  }
  cpu_table.Print();
  read_table.Print();
  return 0;
}

}  // namespace
}  // namespace srtree

int main(int argc, char** argv) {
  srtree::FlagParser parser;
  srtree::AddBenchFlags(parser);
  int exit_code = 0;
  const auto options = srtree::bench::ParseOrExit(parser, argc, argv,
                                                  &exit_code);
  if (!options) return exit_code;
  return srtree::Run(*options);
}
