#!/usr/bin/env bash
# Runs clang-tidy over the first-party sources using the compile database
# of an existing build directory (default: build/).
#
#   ./tools/run_clang_tidy.sh [build-dir] [-- extra clang-tidy args]
#
# Exits 0 with a notice when clang-tidy is not installed, so the script is
# safe to call from environments without LLVM (the CI lint job installs it).
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-$repo_root/build}"
shift || true
if [[ "${1:-}" == "--" ]]; then shift; fi

tidy_bin="${CLANG_TIDY:-clang-tidy}"
if ! command -v "$tidy_bin" >/dev/null 2>&1; then
  echo "run_clang_tidy.sh: $tidy_bin not found; skipping (install LLVM or set CLANG_TIDY)"
  exit 0
fi

if [[ ! -f "$build_dir/compile_commands.json" ]]; then
  echo "run_clang_tidy.sh: $build_dir/compile_commands.json missing." >&2
  echo "Configure first: cmake -B $build_dir -S $repo_root" >&2
  exit 1
fi

cd "$repo_root"
mapfile -t sources < <(git ls-files 'src/**/*.cc' 'tests/*.cc' 'bench/*.cc' \
                                    'tools/*.cc' 'examples/*.cpp')
if [[ ${#sources[@]} -eq 0 ]]; then
  echo "run_clang_tidy.sh: no sources found" >&2
  exit 1
fi

echo "clang-tidy (${tidy_bin}): ${#sources[@]} files against $build_dir"
if command -v run-clang-tidy >/dev/null 2>&1; then
  run-clang-tidy -clang-tidy-binary "$tidy_bin" -p "$build_dir" -quiet \
      "$@" "${sources[@]}"
else
  "$tidy_bin" -p "$build_dir" --quiet "$@" "${sources[@]}"
fi
