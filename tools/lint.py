#!/usr/bin/env python3
"""Structural lint for the SR-tree sources.

Checks (all cheap, no compiler needed):
  * Header guards follow SRTREE_<PATH>_H_ with the leading src/ stripped
    (src/storage/page_file.h -> SRTREE_STORAGE_PAGE_FILE_H_,
    tests/test_util.h -> SRTREE_TESTS_TEST_UTIL_H_).
  * Quoted #includes of first-party headers are repo-root-relative
    ("src/..." / "tests/..." / "bench/..."), never "../" or bare names.
  * No `using namespace` at any scope inside headers.

Also drives the other lint stages — tools/srlint.py (the project contract
linter: deprecated-API call sites, naked std locks, layering, test
registration), tools/srcheck.py (the AST-grounded contract checker:
Status discipline, pin/epoch lifetime escapes, storage narrowing,
lock-order, commit protocol, GUARDED_BY coverage), and, when a build
directory is supplied, clang-tidy via tools/run_clang_tidy.sh — so the
single `lint` entry point gates them all. Every stage runs even when an
earlier one fails; the exit code aggregates across stages and a per-stage
summary says exactly which ones need attention. srcheck falls back to its
built-in engine when python libclang is absent — it prints a loud NOTICE
but still runs every rule.

Usage: tools/lint.py [repo_root] [--build-dir DIR]
(exit 0 all stages clean, 1 when any stage found problems)
"""

import argparse
import pathlib
import re
import subprocess
import sys

FIRST_PARTY_DIRS = ("src", "tests", "bench", "tools", "examples")
HEADER_SUFFIXES = (".h", ".hpp")
SOURCE_SUFFIXES = HEADER_SUFFIXES + (".cc", ".cpp")

INCLUDE_RE = re.compile(r'^\s*#\s*include\s+"([^"]+)"')
USING_NAMESPACE_RE = re.compile(r"^\s*using\s+namespace\b")
GUARD_IFNDEF_RE = re.compile(r"^\s*#\s*ifndef\s+(\S+)")
GUARD_DEFINE_RE = re.compile(r"^\s*#\s*define\s+(\S+)")


def expected_guard(rel_path: pathlib.PurePosixPath) -> str:
    parts = rel_path.parts
    if parts[0] == "src":
        parts = parts[1:]
    stem = "_".join(parts)
    stem = re.sub(r"[^A-Za-z0-9]", "_", stem)
    return f"SRTREE_{stem.upper()}_"


def tracked_sources(root: pathlib.Path) -> list[pathlib.PurePosixPath]:
    out = subprocess.run(
        ["git", "ls-files", *FIRST_PARTY_DIRS],
        cwd=root, capture_output=True, text=True, check=True)
    return [pathlib.PurePosixPath(line) for line in out.stdout.splitlines()
            if line.endswith(SOURCE_SUFFIXES)]


def check_file(root: pathlib.Path, rel: pathlib.PurePosixPath) -> list[str]:
    problems = []
    lines = (root / rel).read_text(encoding="utf-8").splitlines()
    is_header = rel.suffix in HEADER_SUFFIXES

    if is_header:
        want = expected_guard(rel)
        ifndef = define = None
        for line in lines:
            if ifndef is None:
                m = GUARD_IFNDEF_RE.match(line)
                if m:
                    ifndef = m.group(1)
                continue
            m = GUARD_DEFINE_RE.match(line)
            if m:
                define = m.group(1)
            break
        if ifndef != want or define != want:
            got = ifndef if ifndef == define else f"{ifndef} / {define}"
            problems.append(f"{rel}: header guard is {got}, want {want}")

    for lineno, line in enumerate(lines, start=1):
        m = INCLUDE_RE.match(line)
        if m:
            inc = m.group(1)
            first = inc.split("/", 1)[0]
            if first not in FIRST_PARTY_DIRS:
                problems.append(
                    f"{rel}:{lineno}: quoted include \"{inc}\" is not "
                    f"repo-root-relative (expected src/..., tests/..., ...)")
        if is_header and USING_NAMESPACE_RE.match(line):
            problems.append(
                f"{rel}:{lineno}: `using namespace` in a header")
    return problems


def main() -> int:
    parser = argparse.ArgumentParser(
        description="Structural lint + aggregated lint-stage driver")
    parser.add_argument(
        "root", nargs="?",
        default=str(pathlib.Path(__file__).resolve().parent.parent))
    parser.add_argument(
        "--build-dir", default=None,
        help="build tree holding compile_commands.json; enables the "
             "clang-tidy stage and feeds the compile database to srlint")
    args = parser.parse_args()
    root = pathlib.Path(args.root)

    problems = []
    files = tracked_sources(root)
    for rel in files:
        problems.extend(check_file(root, rel))
    for p in problems:
        print(p)
    print(f"lint.py: {len(files)} files, {len(problems)} problem(s)")

    failed = ["structural"] if problems else []

    here = pathlib.Path(__file__).resolve().parent
    srlint_cmd = [sys.executable, str(here / "srlint.py"),
                  "--root", str(root)]
    srcheck_cmd = [sys.executable, str(here / "srcheck.py"),
                   "--root", str(root)]
    if args.build_dir:
        srlint_cmd += ["--build-dir", args.build_dir]
        srcheck_cmd += ["--build-dir", args.build_dir]
    stages = [("srlint", srlint_cmd), ("srcheck", srcheck_cmd)]
    if args.build_dir:
        stages.append(("clang-tidy",
                       [str(here / "run_clang_tidy.sh"), args.build_dir]))

    # Run every stage regardless of earlier failures: one invocation, one
    # complete picture, one aggregated exit code.
    for name, cmd in stages:
        code = subprocess.run(cmd).returncode
        if code != 0:
            failed.append(name)

    for name in ["structural"] + [name for name, _ in stages]:
        state = "FAILED" if name in failed else "ok"
        print(f"lint.py: stage {name}: {state}")
    if failed:
        print(f"lint.py: {len(failed)} stage(s) failed: {', '.join(failed)}")
        return 1
    print("lint.py: all stages clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
