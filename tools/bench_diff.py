#!/usr/bin/env python3
"""Compare two bench JSON snapshots (bench/snapshots/*.json).

Usage: bench_diff.py BASE NEW [--fail-above PCT]

Tables are matched by title and rows positionally (bench output order is
deterministic). Non-numeric cells are treated as row labels and must match
exactly; numeric cells are reported as percentage deltas. Exit status:

  0  snapshots are structurally identical (labels, shapes) — numeric
     deltas, if any, are within --fail-above (default: unlimited, since
     wall-clock numbers are machine-dependent)
  1  structural mismatch: different tables, columns, row counts, or labels
  2  usage / unreadable input

The lint suite runs this as a self-diff smoke test over the checked-in
snapshots, so a malformed snapshot or a regression in this script fails
`ctest` before it reaches a reviewer.
"""

import argparse
import json
import sys


def load(path):
    try:
        with open(path, "r", encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        sys.exit(f"bench_diff.py: cannot read {path}: {e}")
    # A repo-root trajectory file (see tools/bench_trajectory.py) holds a
    # history of snapshots; diff against its most recent entry.
    history = doc.get("history")
    if isinstance(history, list) and history:
        doc = history[-1]
    tables = doc.get("tables")
    if not isinstance(tables, list):
        sys.exit(f"bench_diff.py: {path}: missing 'tables' list")
    return tables


def as_number(cell):
    try:
        return float(cell)
    except (TypeError, ValueError):
        return None


def row_label(columns, row):
    parts = []
    for name, cell in zip(columns, row):
        if as_number(cell) is None or name in ("dim", "k", "threads"):
            parts.append(f"{name}={cell}")
    return " ".join(parts) or "row"


def diff_tables(base, new, out, allow_na=False):
    structural = []
    deltas = []  # (abs_pct, description)
    availability = 0
    base_by_title = {t.get("title"): t for t in base}
    new_by_title = {t.get("title"): t for t in new}
    for title in base_by_title:
        if title not in new_by_title:
            structural.append(f"table dropped: {title}")
    for title in new_by_title:
        if title not in base_by_title:
            structural.append(f"table added: {title}")

    for title, b in base_by_title.items():
        n = new_by_title.get(title)
        if n is None:
            continue
        if b.get("columns") != n.get("columns"):
            structural.append(
                f"{title}: columns {b.get('columns')} -> {n.get('columns')}")
            continue
        brows, nrows = b.get("rows", []), n.get("rows", [])
        if len(brows) != len(nrows):
            structural.append(
                f"{title}: row count {len(brows)} -> {len(nrows)}")
            continue
        columns = b.get("columns", [])
        for brow, nrow in zip(brows, nrows):
            label = row_label(columns, brow)
            for name, bcell, ncell in zip(columns, brow, nrow):
                bnum, nnum = as_number(bcell), as_number(ncell)
                if bnum is None or nnum is None:
                    if bcell == ncell:
                        continue
                    if allow_na and "n/a" in (bcell, ncell):
                        # A kernel implementation (dis)appeared — expected
                        # when snapshots come from different machines.
                        print(f"AVAILABILITY {title}: {label}: {name} "
                              f"'{bcell}' -> '{ncell}'", file=out)
                        availability += 1
                        continue
                    structural.append(
                        f"{title}: {label}: {name} '{bcell}' -> '{ncell}'")
                    continue
                if bnum == nnum:
                    continue
                pct = (100.0 * (nnum - bnum) / bnum) if bnum else float("inf")
                deltas.append((abs(pct),
                               f"{title}: {label}: {name} "
                               f"{bcell} -> {ncell} ({pct:+.1f}%)"))

    for line in structural:
        print(f"STRUCTURAL {line}", file=out)
    for _, line in sorted(deltas, reverse=True):
        print(line, file=out)
    if not structural and not deltas and not availability:
        print("snapshots identical", file=out)
    return structural, deltas


def main(argv):
    parser = argparse.ArgumentParser(
        description="diff two bench JSON snapshots")
    parser.add_argument("base")
    parser.add_argument("new")
    parser.add_argument("--fail-above", type=float, default=None,
                        metavar="PCT",
                        help="exit 1 when any numeric delta exceeds PCT%%")
    parser.add_argument("--allow-na", action="store_true",
                        help="treat numeric <-> 'n/a' cell transitions as "
                             "reported-but-ok (snapshots from machines with "
                             "different SIMD support)")
    args = parser.parse_args(argv)

    structural, deltas = diff_tables(load(args.base), load(args.new),
                                     sys.stdout, allow_na=args.allow_na)
    if structural:
        return 1
    if args.fail_above is not None:
        worst = max((pct for pct, _ in deltas), default=0.0)
        if worst > args.fail_above:
            print(f"FAIL worst delta {worst:.1f}% > {args.fail_above}%")
            return 1
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
