// srtree_cli — command-line front end for the SR-tree library.
//
//   srtree_cli generate --kind real --n 10000 --dim 16 --output data.csv
//   srtree_cli build    --input data.csv --index catalog.srt --type sr
//   srtree_cli query    --index catalog.srt --point 0.1,0.2,... --k 10
//   srtree_cli range    --index catalog.srt --point 0.1,0.2,... --radius 0.2
//   srtree_cli stats    --index catalog.srt
//
// build accepts any saveable index structure via --type; query/range/stats
// dispatch on the type tag embedded in the image, so they work on whatever
// build wrote.
//
// CSV format: one vector per line, comma-separated coordinates; '#' starts
// a comment. Object ids are the 0-based row numbers.

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "src/common/flags.h"
#include "src/index/index_factory.h"
#include "src/workload/cluster.h"
#include "src/workload/dataset.h"
#include "src/workload/histogram.h"
#include "src/workload/uniform.h"

namespace srtree {
namespace {

int Fail(const Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

StatusOr<Point> ParsePoint(const std::string& text) {
  Point point;
  size_t pos = 0;
  while (pos < text.size()) {
    size_t comma = text.find(',', pos);
    if (comma == std::string::npos) comma = text.size();
    const std::string cell = text.substr(pos, comma - pos);
    char* end = nullptr;
    const double value = std::strtod(cell.c_str(), &end);
    if (end == cell.c_str()) {
      return Status::InvalidArgument("not a number: '" + cell + "'");
    }
    point.push_back(value);
    pos = comma + 1;
  }
  if (point.empty()) return Status::InvalidArgument("empty point");
  return point;
}

StatusOr<IndexType> ParseIndexType(const std::string& name) {
  if (name == "sr") return IndexType::kSRTree;
  if (name == "ss") return IndexType::kSSTree;
  if (name == "rstar") return IndexType::kRStarTree;
  if (name == "kdb") return IndexType::kKdbTree;
  if (name == "vamsplit") return IndexType::kVamSplitRTree;
  if (name == "xtree") return IndexType::kXTree;
  if (name == "tvtree") return IndexType::kTvTree;
  if (name == "static") return IndexType::kStaticSRTree;
  if (name == "tiered") return IndexType::kTieredSRTree;
  return Status::InvalidArgument(
      "unknown --type '" + name +
      "' (want sr|ss|rstar|kdb|vamsplit|xtree|tvtree|static|tiered)");
}

int RunGenerate(int argc, char** argv) {
  FlagParser parser;
  parser.AddString("kind", "uniform", "uniform | cluster | real");
  parser.AddInt("n", 10000, "number of vectors");
  parser.AddInt("dim", 16, "dimensionality");
  parser.AddInt("clusters", 100, "clusters (cluster kind only)");
  parser.AddInt("seed", 1, "random seed");
  parser.AddString("output", "", "CSV file to write (required)");
  const Status flag_status = parser.Parse(argc, argv);
  if (flag_status.IsNotFound()) return 0;
  if (!flag_status.ok()) return Fail(flag_status);
  const std::string output = parser.GetString("output");
  if (output.empty()) {
    return Fail(Status::InvalidArgument("--output is required"));
  }

  const size_t n = static_cast<size_t>(parser.GetInt("n"));
  const int dim = static_cast<int>(parser.GetInt("dim"));
  const uint64_t seed = static_cast<uint64_t>(parser.GetInt("seed"));
  const std::string kind = parser.GetString("kind");
  Dataset data;
  if (kind == "uniform") {
    data = MakeUniformDataset(n, dim, seed);
  } else if (kind == "cluster") {
    ClusterConfig config;
    config.num_clusters = static_cast<size_t>(parser.GetInt("clusters"));
    config.points_per_cluster =
        (n + config.num_clusters - 1) / config.num_clusters;
    config.dim = dim;
    config.seed = seed;
    data = MakeClusterDataset(config);
  } else if (kind == "real") {
    HistogramConfig config;
    config.n = n;
    config.dim = dim;
    config.seed = seed;
    data = MakeHistogramDataset(config);
  } else {
    return Fail(Status::InvalidArgument("unknown --kind: " + kind));
  }
  const Status status = SaveCsvDataset(data, output);
  if (!status.ok()) return Fail(status);
  std::printf("wrote %zu %d-d vectors to %s\n", data.size(), data.dim(),
              output.c_str());
  return 0;
}

int RunBuild(int argc, char** argv) {
  FlagParser parser;
  parser.AddString("input", "", "CSV file of vectors (required)");
  parser.AddString("index", "", "index file to write (required)");
  parser.AddString("type", "sr", "sr|ss|rstar|kdb|vamsplit|xtree|tvtree");
  parser.AddInt("data-bytes", 512, "attribute bytes reserved per vector");
  parser.AddInt("page-size", 8192, "disk page size in bytes");
  const Status flag_status = parser.Parse(argc, argv);
  if (flag_status.IsNotFound()) return 0;
  if (!flag_status.ok()) return Fail(flag_status);
  if (parser.GetString("input").empty() || parser.GetString("index").empty()) {
    return Fail(Status::InvalidArgument("--input and --index are required"));
  }
  StatusOr<IndexType> type = ParseIndexType(parser.GetString("type"));
  if (!type.ok()) return Fail(type.status());

  StatusOr<Dataset> data = LoadCsvDataset(parser.GetString("input"));
  if (!data.ok()) return Fail(data.status());

  IndexConfig config;
  config.dim = data->dim();
  config.page_size = static_cast<size_t>(parser.GetInt("page-size"));
  config.leaf_data_size = static_cast<size_t>(parser.GetInt("data-bytes"));
  std::unique_ptr<PointIndex> tree = MakeIndex(*type, config);
  std::vector<Point> points;
  std::vector<uint32_t> oids;
  points.reserve(data->size());
  oids.reserve(data->size());
  for (size_t i = 0; i < data->size(); ++i) {
    const PointView view = data->point(i);
    points.emplace_back(view.begin(), view.end());
    oids.push_back(static_cast<uint32_t>(i));
  }
  Status status = tree->BulkLoad(points, oids);
  if (!status.ok()) return Fail(status);
  status = tree->Save(parser.GetString("index"));
  if (!status.ok()) return Fail(status);
  std::printf("indexed %zu vectors (%s, dim %d, height %d) -> %s\n",
              tree->size(), tree->name().c_str(), tree->dim(),
              tree->GetTreeStats().height, parser.GetString("index").c_str());
  return 0;
}

int RunQuery(int argc, char** argv, bool range) {
  FlagParser parser;
  parser.AddString("index", "", "index file (required)");
  parser.AddString("point", "", "comma-separated query vector (required)");
  parser.AddInt("k", 10, "neighbors to return (query command)");
  parser.AddDouble("radius", 0.1, "search radius (range command)");
  const Status flag_status = parser.Parse(argc, argv);
  if (flag_status.IsNotFound()) return 0;
  if (!flag_status.ok()) return Fail(flag_status);
  if (parser.GetString("index").empty() || parser.GetString("point").empty()) {
    return Fail(Status::InvalidArgument("--index and --point are required"));
  }

  auto tree = OpenIndex(parser.GetString("index"));
  if (!tree.ok()) return Fail(tree.status());
  StatusOr<Point> point = ParsePoint(parser.GetString("point"));
  if (!point.ok()) return Fail(point.status());
  if (static_cast<int>(point->size()) != (*tree)->dim()) {
    return Fail(Status::InvalidArgument(
        "query has " + std::to_string(point->size()) +
        " coordinates, index has " + std::to_string((*tree)->dim())));
  }

  const QuerySpec spec =
      range ? QuerySpec::Range(parser.GetDouble("radius"))
            : QuerySpec::Knn(static_cast<int>(parser.GetInt("k")));
  const QueryResult result = (*tree)->Search(*point, spec);
  if (!result.status.ok()) return Fail(result.status);
  for (const Neighbor& n : result.neighbors) {
    std::printf("%u,%.17g\n", n.oid, n.distance);
  }
  std::fprintf(stderr, "%zu results, %llu disk reads\n",
               result.neighbors.size(),
               static_cast<unsigned long long>(result.io.reads));
  return 0;
}

int RunStats(int argc, char** argv) {
  FlagParser parser;
  parser.AddString("index", "", "index file (required)");
  const Status flag_status = parser.Parse(argc, argv);
  if (flag_status.IsNotFound()) return 0;
  if (!flag_status.ok()) return Fail(flag_status);
  if (parser.GetString("index").empty()) {
    return Fail(Status::InvalidArgument("--index is required"));
  }
  auto tree = OpenIndex(parser.GetString("index"));
  if (!tree.ok()) return Fail(tree.status());
  const TreeStats stats = (*tree)->GetTreeStats();
  const RegionSummary regions = (*tree)->LeafRegionSummary();
  std::printf("structure:      %s\n", (*tree)->name().c_str());
  std::printf("vectors:        %zu\n", (*tree)->size());
  std::printf("dimensionality: %d\n", (*tree)->dim());
  std::printf("height:         %d\n", stats.height);
  std::printf("nodes/leaves:   %llu / %llu\n",
              static_cast<unsigned long long>(stats.node_count),
              static_cast<unsigned long long>(stats.leaf_count));
  std::printf("fanout:         %zu node / %zu leaf\n",
              (*tree)->node_capacity(), (*tree)->leaf_capacity());
  std::printf("avg leaf sphere diameter: %.6g\n",
              regions.avg_sphere_diameter);
  std::printf("avg leaf rect volume:     %.6g\n", regions.avg_rect_volume);
  const Status invariants = (*tree)->CheckInvariants();
  std::printf("invariants:     %s\n",
              invariants.ok() ? "ok" : invariants.ToString().c_str());
  return invariants.ok() ? 0 : 1;
}

int Usage() {
  std::fprintf(stderr,
               "usage: srtree_cli <generate|build|query|range|stats> "
               "[flags]\nrun a command with --help for its flags\n");
  return 1;
}

int Main(int argc, char** argv) {
  if (argc < 2) return Usage();
  const std::string command = argv[1];
  // Shift the command out of the arg list for the flag parsers.
  std::vector<char*> rest;
  rest.push_back(argv[0]);
  for (int i = 2; i < argc; ++i) rest.push_back(argv[i]);
  const int rest_argc = static_cast<int>(rest.size());
  if (command == "generate") return RunGenerate(rest_argc, rest.data());
  if (command == "build") return RunBuild(rest_argc, rest.data());
  if (command == "query") return RunQuery(rest_argc, rest.data(), false);
  if (command == "range") return RunQuery(rest_argc, rest.data(), true);
  if (command == "stats") return RunStats(rest_argc, rest.data());
  return Usage();
}

}  // namespace
}  // namespace srtree

int main(int argc, char** argv) { return srtree::Main(argc, argv); }
