// R1 allowlist fixture: this path hosts the deprecated wrappers, so even a
// member call to one is accepted here without a waiver.
#ifndef SRTREE_TOOLS_SRLINT_TESTDATA_SRC_INDEX_POINT_INDEX_H_
#define SRTREE_TOOLS_SRLINT_TESTDATA_SRC_INDEX_POINT_INDEX_H_

struct Compat {
  void Forward(Compat& other) {
    other.ResetIoStats();  // allowlisted: no srlint-expect marker
  }
  void ResetIoStats() {}
};

#endif  // SRTREE_TOOLS_SRLINT_TESTDATA_SRC_INDEX_POINT_INDEX_H_
