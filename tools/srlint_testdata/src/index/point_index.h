// R1 no-allowlist fixture: this path used to host the deprecated wrappers
// and was allowlisted; the wrappers are gone, so a member call to the
// deprecated API is now flagged here like anywhere else. The waiver line
// shows the only remaining escape hatch.
#ifndef SRTREE_TOOLS_SRLINT_TESTDATA_SRC_INDEX_POINT_INDEX_H_
#define SRTREE_TOOLS_SRLINT_TESTDATA_SRC_INDEX_POINT_INDEX_H_

struct Compat {
  void Forward(Compat& other) {
    other.ResetIoStats();  // srlint-expect(R1)
  }
  void Quiesced(Compat& other) {
    other.ResetIoStats();  // srlint: allow(R1) quiesced-reset fixture
  }
  void ResetIoStats() {}
};

#endif  // SRTREE_TOOLS_SRLINT_TESTDATA_SRC_INDEX_POINT_INDEX_H_
