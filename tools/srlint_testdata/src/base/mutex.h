// R2 allowlist fixture: the one place std locks are allowed to appear is
// the annotated wrapper header itself.
#ifndef SRTREE_TOOLS_SRLINT_TESTDATA_SRC_BASE_MUTEX_H_
#define SRTREE_TOOLS_SRLINT_TESTDATA_SRC_BASE_MUTEX_H_

#include <mutex>

using MutexLock = std::lock_guard<std::mutex>;  // no srlint-expect marker

#endif  // SRTREE_TOOLS_SRLINT_TESTDATA_SRC_BASE_MUTEX_H_
