// R2 fixture: std locks under src/ bypass the thread-safety analysis.
#include <mutex>

void CriticalSection() {
  static std::mutex mu;
  std::lock_guard<std::mutex> lock(mu);  // srlint-expect(R2)
}

// Mentions of std::unique_lock in comments are fine, as is the literal
// below — neither is a lock in code.
const char* kDoc = "prefer MutexLock over std::lock_guard";
