// R5 fixture: raw file streams under src/ bypass the checksummed,
// atomic-rename image I/O in src/storage/.
#include <fstream>
#include <string>

void DumpImage(const std::string& path) {
  std::ofstream out(path, std::ios::binary);  // srlint-expect(R5)
  out << "not a checksummed image";
}

void ReadImage(const std::string& path) {
  std::ifstream in(path, std::ios::binary);  // srlint: allow(R5) fixture waiver
  (void)in;
}

// A comment naming std::ifstream is fine, as is the literal below.
const char* kAdvice = "use storage::AtomicWriteFile, not std::ofstream";
