// R3 fixture: the engine layer may include the interface, not a tree.
#include "src/index/point_index.h"
#include "src/core/sr_tree.h"  // srlint-expect(R3)

// An include that only appears in a comment must not count:
// #include "src/rstar/rstar_tree.h"
