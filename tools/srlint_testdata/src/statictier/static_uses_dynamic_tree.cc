// R8 fixture: the static tier composes its dynamic delta through the
// PointIndex interface and the factory, never a concrete tree header.
#include "src/index/point_index.h"
#include "src/core/sr_tree.h"  // srlint-expect(R8)

// An include that only appears in a comment must not count:
// #include "src/sstree/ss_tree.h"
