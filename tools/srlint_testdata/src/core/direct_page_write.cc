// R6 fixture: direct PageFile Write() calls outside src/storage/. A
// snapshot-isolated tree must stage mutations (StageWrite + Commit); the
// waived line models a frozen-tree writer, and the StageWrite call is the
// compliant counter-example that must never match.
#include "src/storage/page_file.h"

void Mutate(srtree::PageFile& file, srtree::PageFile* file_ptr,
            srtree::PageId id, const char* buf) {
  file.Write(id, buf);       // srlint-expect(R6)
  file_ptr->Write(id, buf);  // srlint-expect(R6)
  file.Write(id, buf);  // srlint: allow(R6) frozen-tree write path (no snapshot readers)
  file.StageWrite(id, buf);  // compliant: staged, published by Commit()
}
