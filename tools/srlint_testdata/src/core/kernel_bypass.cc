// R7 fixture: free SquaredDistance()/Distance() calls inside a tree
// directory. Tree code goes through GetDistanceKernel(); the waived line
// models a deliberately-kept scalar reference path, and the member /
// qualified / kernel calls are compliant counter-examples that must never
// match.
#include "src/geometry/kernel.h"
#include "src/geometry/point.h"

double Compare(srtree::PointView a, srtree::PointView b,
               const srtree::Sphere& sphere) {
  double d = srtree::SquaredDistance(a, b);                // srlint-expect(R7)
  d += Distance(a, b);                                     // srlint-expect(R7)
  d += SquaredDistance(a, b);  // srlint: allow(R7) scalar reference oracle
  d += srtree::GetDistanceKernel().SquaredL2(a, b);  // compliant: kernel
  d += sphere.MinDist(a);            // compliant: member MINDIST
  d += srtree::kernel_detail::ScalarSquaredL2(a.data(), b.data(), a.size());
  return d;
}
