// R1 fixture: member calls to the deprecated query/stats API.
#include "src/index/point_index.h"

void Bench(srtree::PointIndex& index, srtree::PointView q,
           srtree::PointIndex* ptr) {
  auto a = index.NearestNeighbors(q, 4);           // srlint-expect(R1)
  auto b = index.NearestNeighborsBestFirst(q, 4);  // srlint-expect(R1)
  auto c = ptr->RangeSearch(q, 1.0);               // srlint-expect(R1)
  index.ResetIoStats();                            // srlint-expect(R1)
  // A documented waiver suppresses the finding on its line:
  index.ResetIoStats();  // srlint: allow(R1) quiesced-reset fixture
  (void)a; (void)b; (void)c;
}
