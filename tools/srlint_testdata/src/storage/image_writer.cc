// R5 allowlist counter-example: src/storage/ is where the checksummed
// image I/O lives, so raw streams are legitimate here. No marker — the
// self-test fails if R5 starts flagging this.
#include <fstream>
#include <string>

void WriteImage(const std::string& path) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << "image bytes";
}
