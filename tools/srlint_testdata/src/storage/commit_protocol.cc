// R6 allowlist counter-example: src/storage/ is where the commit protocol
// itself lives (PageFile staging, BufferPool write-back), so direct page
// writes are legitimate here. No marker — the self-test fails if R6 starts
// flagging this.
#include "src/storage/page_file.h"

void WriteBack(srtree::PageFile* file, srtree::PageId id, const char* buf) {
  file->Write(id, buf);
}
