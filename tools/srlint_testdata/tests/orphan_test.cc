// R4 fixture: defines a test but is missing from tests/CMakeLists.txt.
#include <gtest/gtest.h>

TEST(OrphanTest, NeverBuilt) {}  // srlint-expect(R4)
