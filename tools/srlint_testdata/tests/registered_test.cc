// R4 counter-fixture: registered in tests/CMakeLists.txt, so no finding.
#include <gtest/gtest.h>

TEST(RegisteredTest, Runs) {}
