#!/usr/bin/env python3
"""srcheck: AST-grounded contract analysis for the SR-tree codebase.

srlint (tools/srlint.py) checks contracts that are visible to a regex.
srcheck checks the ones that are not — rules about *expressions, scopes,
and lifetimes*, which need (at least) a tokenizer with scope tracking and,
where available, a real clang AST:

  C1  Status discipline: no call that returns Status/StatusOr may discard
      the result. The compile-time half is the [[nodiscard]] attribute on
      the Status/StatusOr classes plus -Werror=unused-result (top-level
      CMakeLists.txt); srcheck closes the gaps the compiler cannot see:
        * a `(void)`-cast discard without the project's waiver comment
              (void)index.Insert(p, oid);  // srcheck: allow(C1) <reason>
          (the comment is what makes every deliberate discard greppable);
        * a Status/StatusOr class *declared without* [[nodiscard]] — the
          anchor that keeps the whole rule enforceable;
        * naked discards in code the build does not compile (fixtures,
          dead-configured sources).

  C2  Pin lifetime: no raw pointer derived from a BufferPool::PageGuard /
      BufferPool::ScopedPin (i.e. from its data()) may escape the pin's
      scope — returned, stored into a member, or captured by a lambda that
      is not invoked on the spot. Once the guard dies the frame is
      evictable and the pointer is a use-after-evict race. Moving the
      *guard itself* (which transfers the pin) is allowed; only the
      implementation of the pin protocol (src/storage/buffer_pool.{h,cc})
      is exempt.

  C3  Narrowing-free serialization: src/storage/ compiles with
      -Wconversion -Wsign-conversion promoted to errors (scoped in
      src/CMakeLists.txt), so every implicit narrowing or sign change in
      the image codec / CRC path is a build break. srcheck verifies that
      wiring (CMakeLists text and, when present, compile_commands.json)
      and additionally scans storage sources for assignments that narrow
      a size/64-bit expression into a small integer without a spelled-out
      static_cast.

  C4  TSA completeness: a member field written while a srtree::MutexLock
      on some mutex is in scope must be declared GUARDED_BY that mutex.
      Heuristic by design (the compiler's -Wthread-safety checks the
      annotations that exist; this rule hunts for the ones that are
      *missing*). Waivers: the in-line form below, or the static list
      C4_STATIC_WAIVERS in this file — which must shrink, not grow; a
      stale entry is itself a finding.

  C5  Epoch/snapshot lifetime (C2 generalized from pins to epochs): no
      pointer, reference, or snapshot *view* derived from a
      PageFile::Snapshot / SRTreeSnapshot / IndexSnapshot / VersionState
      or from an EpochGuard-protected object may outlive the guard or
      snapshot scope it was acquired under — returned, stored into a
      member, or captured by a lambda that is not invoked on the spot.
      Owning handles (unique_ptr/shared_ptr<IndexSnapshot>, whose
      destructor releases the guard) may be moved or shared freely; it is
      the raw views (`snapshot.get()`, `&snap`, a by-value
      PageFile::Snapshot) that dangle once the guard dies. Only the
      snapshot/epoch protocol implementation (src/storage/page_file.*,
      src/storage/epoch.*) is exempt.

  C6  Lock-order graph: a whole-program analysis extracts every nested
      acquisition — a MutexLock taken while another MutexLock (or a
      REQUIRES-declared capability) is held, directly or through a call
      chain across translation units — into a global acquisition graph.
      A cycle in that graph is a potential deadlock and fails the run.
      The graph is also a checked-in artifact, docs/lock_order.json
      (regenerate with --emit-lock-order); the repo-wide run fails when
      the checked-in graph is stale, so lock-ordering changes are always
      visible in diffs. `--check-lock-order` runs just this rule (the
      `srcheck_lockorder_fresh` ctest).

  C7  Commit-protocol completeness: in src/ writer paths, every
      control-flow path that stages a page update (PageFile::StageWrite,
      directly or through a helper) must reach exactly one Commit — or an
      explicit discard/rollback — before control can escape back to the
      caller, and Commit may only be called with writer_mu_ held (a
      MutexLock in scope or a REQUIRES(writer_mu_) precondition). The
      analysis builds per-function summaries (stages / commits /
      discharges, transitively through the call graph) and checks that
      no staging call chain escapes uncommitted, that no path returns
      between StageWrite and Commit, and that no path commits twice.
      src/storage/ is the protocol's own implementation and is exempt.

  C8  Guarded-coverage ratchet: every mutable data member of a class that
      owns a Mutex must be GUARDED_BY a mutex, std::atomic, const, of an
      internally-synchronized type (a Mutex/CondVar/CAPABILITY class or
      another mutex-owning class, which polices itself), or carry an
      explicit UNGUARDED_OK("contract") annotation naming the out-of-band
      contract that makes it safe (src/base/thread_annotations.h).
      Pre-existing gaps live in tools/srcheck_c8_baseline.json, which is
      shrink-only: a baseline entry whose member became compliant (or
      disappeared) is itself a finding, and src/storage/ + src/engine/
      admit no baseline entries at all — coverage there can only move
      through real annotations.

Waivers. A finding is waived in place with a comment naming the rule and a
non-empty reason:

    cached_ = p;  // srcheck: allow(C4) single-threaded init before spawn

A waiver without a reason does not count. `--list-waivers` prints every
waiver in the tree so reviews can watch the list shrink.

Engines. With python libclang installed (CI: apt `python3-clang`), C1/C2/C5
run on the clang AST driven by <build>/compile_commands.json. Without it,
a built-in tokenizer/scope engine covers the same rules (same fixtures,
same waiver forms) and a loud notice marks the reduced depth — the local
build never breaks just because LLVM is absent. C3/C4 and the
whole-program rules C6/C7/C8 are token-grounded in both engines (their
program-wide function/class segmentation is shared); for C3 the *compiler*
is the AST authority and srcheck verifies the -Werror wiring that keeps
it so.

Usage:
  tools/srcheck.py [--root DIR] [--build-dir DIR] [--engine auto|clang|textual]
  tools/srcheck.py --self-test          verify every rule against the
                                        fixture tree in srcheck_testdata/
  tools/srcheck.py --list-waivers       print all active waivers
  tools/srcheck.py --emit-lock-order    regenerate docs/lock_order.json
  tools/srcheck.py --check-lock-order   C6 only: cycles + artifact freshness

Exit status: 0 clean, 1 findings, 2 usage/internal error.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import re
import subprocess
import sys
from typing import Iterable, NamedTuple

FIRST_PARTY_DIRS = ("src", "tests", "bench", "tools", "examples")
SOURCE_SUFFIXES = (".h", ".hpp", ".cc", ".cpp")
FIXTURE_DIRS = ("srlint_testdata", "srcheck_testdata")

RULES = ("C1", "C2", "C3", "C4", "C5", "C6", "C7", "C8")
WAIVER_RE = re.compile(r"srcheck:\s*allow\((C[1-8])\)\s+(\S.*)")
EXPECT_RE = re.compile(r"srcheck-expect\((C[1-8])\)")

# C2: the pin protocol's own implementation hands guards and frame
# pointers around by construction; everything outside goes through the
# public ScopedPin/PageGuard surface.
C2_ALLOWED_FILES = {
    "src/storage/buffer_pool.h",
    "src/storage/buffer_pool.cc",
}

# C5: the snapshot/epoch protocol's own implementation builds the views it
# hands out; everything outside goes through AcquireSnapshot + EpochGuard.
C5_ALLOWED_FILES = {
    "src/storage/page_file.h",
    "src/storage/page_file.cc",
    "src/storage/epoch.h",
    "src/storage/epoch.cc",
}

# C5 type vocabulary. "Views" are non-owning and dangle when the guard
# dies; "owners" (smart pointers to a snapshot object whose destructor
# releases the guard) may be shared/moved freely.
C5_GUARD_TYPES = ("EpochGuard",)
C5_VIEW_TYPES = ("SRTreeSnapshot", "IndexSnapshot", "VersionState",
                 "Snapshot")
C5_OWNER_MARKERS = ("unique_ptr", "shared_ptr")

# C6: the lock-order artifact. Regenerate with --emit-lock-order whenever
# the repo-wide run reports it stale.
LOCK_ORDER_ARTIFACT = "docs/lock_order.json"

# C7: commit-protocol vocabulary. A "discharge" releases a staged update
# without publishing it (rollback paths).
C7_STAGE_NAME = "StageWrite"
C7_COMMIT_NAME = "Commit"
C7_DISCHARGE_RE = re.compile(r"(Rollback|Discard|Abort)", re.IGNORECASE)
C7_WRITER_MUTEX = "writer_mu_"
C7_ALLOWED_PREFIX = "src/storage/"

# C8: the shrink-only coverage baseline, and the directories where even
# baseline entries are banned (annotations only).
C8_BASELINE_FILE = "tools/srcheck_c8_baseline.json"
C8_NO_BASELINE_DIRS = ("src/storage/", "src/engine/")
# Types that synchronize themselves; members of these types need no guard.
C8_SYNC_TYPES = {"Mutex", "MutexLock", "CondVar"}
C8_ANNOTATION = "UNGUARDED_OK"

# C4 static waiver list. Policy: this list must SHRINK, not grow — add a
# new entry only with a PR-reviewed justification here, and remove entries
# as the fields gain annotations. Entries are "file.cc::member_". A stale
# entry (no longer demanded) is reported so dead waivers cannot linger.
C4_STATIC_WAIVERS: dict[str, str] = {
    # (empty — keep it that way)
}

PIN_TYPES = ("PageGuard", "ScopedPin")

STATEMENT_KEYWORDS = {
    "return", "if", "for", "while", "switch", "case", "do", "else", "goto",
    "delete", "new", "throw", "using", "typedef", "template", "public",
    "private", "protected", "namespace", "class", "struct", "enum", "union",
    "extern", "friend", "static_assert", "break", "continue", "default",
    "co_return", "co_await", "try", "catch", "operator", "static", "const",
    "constexpr", "inline", "virtual", "explicit", "typename",
}

ASSIGN_OPS = {"=", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "<<=",
              ">>="}

MUTATING_METHODS = {
    "push_back", "pop_back", "emplace_back", "push_front", "pop_front",
    "insert", "erase", "clear", "resize", "splice", "assign", "swap",
    "emplace", "reset",
}

# Small fixed-width integer types a storage-layer expression must not
# implicitly narrow into (C3 heuristic).
NARROW_TYPES = {"uint8_t", "uint16_t", "uint32_t", "int8_t", "int16_t",
                "int32_t", "int", "short", "unsigned"}
WIDE_TYPES = {"size_t", "uint64_t", "int64_t", "ptrdiff_t", "ssize_t",
              "long"}


class Finding(NamedTuple):
    rel: str
    lineno: int
    rule: str
    message: str


class Token(NamedTuple):
    text: str
    line: int


# ---------------------------------------------------------------------------
# Lexing: blank comments/strings (same state machine as srlint), blank
# preprocessor lines (with continuations), then tokenize with positions.

def strip_comments_and_strings(text: str) -> str:
    out = []
    i, n = 0, len(text)
    NORMAL, LINE_COMMENT, BLOCK_COMMENT, STRING, CHAR = range(5)
    state = NORMAL
    raw_end = ""
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state == NORMAL:
            if c == "/" and nxt == "/":
                state, i = LINE_COMMENT, i + 2
                out.append("  ")
            elif c == "/" and nxt == "*":
                state, i = BLOCK_COMMENT, i + 2
                out.append("  ")
            elif c == '"':
                m = re.match(r'R"([^\s()\\]{0,16})\(', text[i - 1: i + 18]) \
                    if i > 0 and text[i - 1] == "R" else None
                if m:
                    raw_end = ")" + m.group(1) + '"'
                    state = STRING
                    skip = 1 + len(m.group(1)) + 1
                    out.append(" " * skip)
                    i += skip
                else:
                    raw_end = ""
                    state = STRING
                    out.append(" ")
                    i += 1
            elif c == "'":
                state, i = CHAR, i + 1
                out.append(" ")
            else:
                out.append(c)
                i += 1
        elif state == LINE_COMMENT:
            out.append(c if c == "\n" else " ")
            if c == "\n":
                state = NORMAL
            i += 1
        elif state == BLOCK_COMMENT:
            if c == "*" and nxt == "/":
                state, i = NORMAL, i + 2
                out.append("  ")
            else:
                out.append(c if c == "\n" else " ")
                i += 1
        elif state == STRING:
            if raw_end:
                if text.startswith(raw_end, i):
                    state = NORMAL
                    out.append(" " * len(raw_end))
                    i += len(raw_end)
                else:
                    out.append(c if c == "\n" else " ")
                    i += 1
            elif c == "\\" and nxt:
                out.append("  ")
                i += 2
            elif c == '"':
                state, i = NORMAL, i + 1
                out.append(" ")
            else:
                out.append(c if c == "\n" else " ")
                i += 1
        else:  # CHAR
            if c == "\\" and nxt:
                out.append("  ")
                i += 2
            elif c == "'":
                state, i = NORMAL, i + 1
                out.append(" ")
            else:
                out.append(" ")
                i += 1
    return "".join(out)


def blank_preprocessor(code: str) -> str:
    """Blank #-directive lines (and their backslash continuations)."""
    lines = code.split("\n")
    out = []
    in_directive = False
    for line in lines:
        if in_directive or re.match(r"\s*#", line):
            in_directive = line.rstrip().endswith("\\")
            out.append("")
        else:
            in_directive = False
            out.append(line)
    return "\n".join(out)


TOKEN_RE = re.compile(
    r"[A-Za-z_]\w*|\d[\w.]*|::|->|\+\+|--|<<=|>>=|<=|>=|==|!=|\+=|-=|\*=|"
    r"/=|%=|&=|\|=|\^=|&&|\|\||<<|>>|[{}()\[\];,.:=<>+\-*/%&|^!~?]")


def tokenize(code: str) -> list[Token]:
    tokens = []
    for lineno, line in enumerate(code.split("\n"), start=1):
        for m in TOKEN_RE.finditer(line):
            tokens.append(Token(m.group(0), lineno))
    return tokens


def statements(tokens: list[Token]) -> Iterable[list[Token]]:
    """Token runs between statement boundaries ({, }, and top-level ;)."""
    stmt: list[Token] = []
    paren = 0
    for tok in tokens:
        if tok.text == "(":
            paren += 1
        elif tok.text == ")":
            paren = max(0, paren - 1)
        if tok.text in "{}" and paren == 0:
            if stmt:
                yield stmt
            stmt = []
            continue
        stmt.append(tok)
        if tok.text == ";" and paren == 0:
            yield stmt
            stmt = []
    if stmt:
        yield stmt


def collect_waivers(raw_lines: list[str]) -> dict[int, dict[str, str]]:
    waived: dict[int, dict[str, str]] = {}
    for lineno, line in enumerate(raw_lines, start=1):
        for m in WAIVER_RE.finditer(line):
            waived.setdefault(lineno, {})[m.group(1)] = m.group(2).strip()
    return waived


# ---------------------------------------------------------------------------
# C1 — Status discipline (textual engine).

STATUS_FN_RE = re.compile(
    r"\bStatus(?:Or\s*<[^;{}()]*>)?[&\s]+(?:[A-Za-z_]\w*::)*"
    r"([A-Za-z_]\w*)\s*\(")

STATUS_CLASS_RE = re.compile(
    r"^\s*class\s+(?:\[\[\s*nodiscard\s*\]\]\s+)?(Status|StatusOr)\b"
    r"[^;]*\{")
NODISCARD_RE = re.compile(r"\[\[\s*nodiscard\s*\]\]")


def collect_status_fn_names(stripped_by_rel: dict[str, str]) -> set[str]:
    names: set[str] = set()
    for code in stripped_by_rel.values():
        for m in STATUS_FN_RE.finditer(code):
            names.add(m.group(1))
    names.discard("operator")
    return names


def call_name(stmt: list[Token]) -> str | None:
    """Outermost trailing call of an expression statement, if any."""
    depth = 0
    last = None
    for i, tok in enumerate(stmt):
        if tok.text == "(":
            if depth == 0 and i > 0 and re.match(r"[A-Za-z_]\w*$",
                                                 stmt[i - 1].text):
                last = stmt[i - 1].text
            depth += 1
        elif tok.text == ")":
            depth -= 1
    return last


def is_declaration(stmt: list[Token]) -> bool:
    """Two adjacent identifiers before any '(' or '=' suggest a decl."""
    prev_id = False
    for tok in stmt:
        if tok.text in ("(", "="):
            return False
        if re.match(r"[A-Za-z_]\w*$", tok.text):
            if prev_id and tok.text not in STATEMENT_KEYWORDS:
                return True
            prev_id = tok.text not in STATEMENT_KEYWORDS or \
                tok.text in ("const", "static", "constexpr", "auto")
        elif tok.text in ("::", "<", ">", ",", "*", "&", "[", "]"):
            pass  # qualifiers/template args keep the decl prefix going
        else:
            prev_id = False  # '.', '->', operators: expression context
    return False


def check_c1(rel: str, stripped: str, tokens: list[Token],
             raw_lines: list[str], status_names: set[str],
             waivers: dict[int, dict[str, str]]) -> Iterable[Finding]:
    # Anchor check: a Status/StatusOr class definition must be [[nodiscard]]
    # — removing the attribute re-opens every discard the compiler catches.
    for lineno, line in enumerate(stripped.split("\n"), start=1):
        m = STATUS_CLASS_RE.match(line)
        if m and not NODISCARD_RE.search(line):
            yield Finding(
                rel, lineno, "C1",
                f"class {m.group(1)} is not [[nodiscard]]; the attribute is "
                f"what makes every dropped error a compile error")

    for stmt in statements(tokens):
        if not stmt or stmt[-1].text != ";":
            continue
        body = stmt[:-1]
        if not body:
            continue
        void_cast = (len(body) > 3 and body[0].text == "(" and
                     body[1].text == "void" and body[2].text == ")")
        if void_cast:
            body = body[3:]
        if not body or body[0].text in STATEMENT_KEYWORDS:
            continue
        if not void_cast:
            depth = 0
            has_assign = False
            for tok in body:
                if tok.text == "(":
                    depth += 1
                elif tok.text == ")":
                    depth -= 1
                elif depth == 0 and tok.text in ASSIGN_OPS | {"++", "--"}:
                    has_assign = True
                    break
            if has_assign or body[-1].text != ")":
                continue
            if is_declaration(body):
                continue
        name = call_name(body)
        if name is None or name not in status_names:
            continue
        span = range(stmt[0].line, stmt[-1].line + 1)
        if any("C1" in waivers.get(ln, {}) for ln in span):
            continue
        if void_cast:
            yield Finding(
                rel, body[0].line, "C1",
                f"(void)-discarded Status from {name}() without the waiver "
                f"comment; write `// srcheck: allow(C1) <reason>` on the "
                f"call line")
        else:
            yield Finding(
                rel, body[0].line, "C1",
                f"discarded Status from {name}(); handle the error or "
                f"(void)-waive it with `// srcheck: allow(C1) <reason>`")


# ---------------------------------------------------------------------------
# C2 — pin-lifetime escapes (textual engine).

TYPE_KEYWORDS = {"const", "int", "char", "unsigned", "signed", "long",
                 "short", "float", "double", "void", "auto", "size_t",
                 "uint8_t", "uint16_t", "uint32_t", "uint64_t", "int32_t",
                 "int64_t", "bool", "PageId", "IoStatsDelta"}


class _Tracked(NamedTuple):
    name: str
    depth: int
    line: int
    kind: str  # "pin" or "ptr"


def _looks_like_param_list(tokens: list[Token], open_idx: int) -> bool:
    depth = 0
    prev_id = None
    saw_any = False
    for tok in tokens[open_idx:]:
        if tok.text == "(":
            depth += 1
            continue
        if tok.text == ")":
            depth -= 1
            if depth == 0:
                # `()` is a function declarator (even as an initializer it
                # is the most-vexing-parse function declaration).
                return not saw_any
            continue
        saw_any = True
        if depth == 1:
            if tok.text in TYPE_KEYWORDS or tok.text == "&&":
                return True
            if tok.text in ("*", "&") and prev_id:
                return True  # "Type*" / "Type&" reference parameter
            if re.match(r"[A-Za-z_]\w*$", tok.text):
                if prev_id:
                    return True  # "Type name" pair
                prev_id = tok.text
            else:
                prev_id = None
    return False


def check_c2(rel: str, tokens: list[Token],
             waivers: dict[int, dict[str, str]]) -> Iterable[Finding]:
    if rel in C2_ALLOWED_FILES:
        return
    depth = 0
    tracked: list[_Tracked] = []
    i = 0
    n = len(tokens)

    def live_names() -> dict[str, str]:
        return {t.name: t.kind for t in tracked}

    def match_brace(start: int) -> int:
        d = 0
        for j in range(start, n):
            if tokens[j].text == "{":
                d += 1
            elif tokens[j].text == "}":
                d -= 1
                if d == 0:
                    return j
        return n - 1

    def match_paren(start: int) -> int:
        d = 0
        for j in range(start, n):
            if tokens[j].text == "(":
                d += 1
            elif tokens[j].text == ")":
                d -= 1
                if d == 0:
                    return j
        return n - 1

    findings: list[Finding] = []
    while i < n:
        tok = tokens[i]
        if tok.text == "{":
            depth += 1
        elif tok.text == "}":
            depth -= 1
            tracked = [t for t in tracked if t.depth <= depth]
        elif tok.text in PIN_TYPES:
            # `ScopedPin pin(...)` / `PageGuard g = ...` declarations; skip
            # function declarations returning a guard.
            j = i + 1
            while j < n and tokens[j].text in ("&", "&&", "*"):
                j += 1
            if j < n and re.match(r"[A-Za-z_]\w*$", tokens[j].text) and \
                    tokens[j].text not in STATEMENT_KEYWORDS:
                nxt = tokens[j + 1].text if j + 1 < n else ""
                is_fn = nxt == "(" and _looks_like_param_list(tokens, j + 1)
                if nxt in ("=", ";", "(", "{") and not is_fn:
                    tracked.append(_Tracked(tokens[j].text, depth,
                                            tokens[j].line, "pin"))
        elif tok.text == "auto":
            # `auto g = <expr>.Pin(...)` / `= pin.data()` declarations.
            j = i + 1
            while j < n and tokens[j].text in ("&", "&&", "*", "const"):
                j += 1
            if j + 1 < n and re.match(r"[A-Za-z_]\w*$", tokens[j].text) and \
                    tokens[j + 1].text == "=":
                k = j + 2
                rhs = []
                while k < n and tokens[k].text != ";":
                    rhs.append(tokens[k].text)
                    k += 1
                rhs_s = " ".join(rhs)
                if re.search(r"(\.|->) Pin \(", rhs_s):
                    tracked.append(_Tracked(tokens[j].text, depth,
                                            tokens[j].line, "pin"))
                elif any(re.search(rf"\b{t.name} (\.|->) data \(", rhs_s)
                         for t in tracked):
                    tracked.append(_Tracked(tokens[j].text, depth,
                                            tokens[j].line, "ptr"))
        elif tok.text == "data" and i >= 2 and \
                tokens[i - 1].text in (".", "->") and \
                tokens[i - 2].text in live_names():
            # Pointer derived from a live pin: find what it is bound to by
            # looking backwards for `name =` on the same statement.
            j = i - 3
            while j >= 0 and tokens[j].text not in (";", "{", "}"):
                if tokens[j].text == "=" and j >= 1 and \
                        re.match(r"[A-Za-z_]\w*$", tokens[j - 1].text):
                    target = tokens[j - 1].text
                    this_member = (j >= 3 and tokens[j - 2].text == "->" and
                                   tokens[j - 3].text == "this")
                    member_store = target.endswith("_") or this_member
                    preceded = (j >= 2 and
                                tokens[j - 2].text in (".", "->") and
                                not this_member)
                    if member_store and not preceded:
                        if "C2" not in waivers.get(tok.line, {}):
                            findings.append(Finding(
                                rel, tok.line, "C2",
                                f"page pointer from {tokens[i-2].text}."
                                f"data() stored into member '{target}', "
                                f"outliving the pin"))
                    elif not preceded:
                        tracked.append(_Tracked(target, depth, tok.line,
                                                "ptr"))
                    break
                j -= 1
        elif tok.text == "return":
            j = i + 1
            names = live_names()
            while j < n and tokens[j].text != ";":
                t = tokens[j]
                is_data_on_pin = (
                    t.text == "data" and j >= 2 and
                    tokens[j - 1].text in (".", "->") and
                    names.get(tokens[j - 2].text) == "pin")
                is_derived = names.get(t.text) == "ptr"
                if is_data_on_pin or is_derived:
                    if "C2" not in waivers.get(t.line, {}):
                        findings.append(Finding(
                            rel, t.line, "C2",
                            "returning a page pointer derived from a "
                            "pinned frame; the pin dies with this scope"))
                    break
                j += 1
            while j < n and tokens[j].text != ";":
                j += 1
            i = j
        elif tok.text == "[" and (
                i == 0 or tokens[i - 1].text in
                ("=", "(", ",", "return", "{", ";", "&&", "||", "!", ":")):
            # Lambda introducer. Flag captures/uses of pin-derived state in
            # a lambda that is not invoked immediately.
            close = None
            d = 0
            for j in range(i, n):
                if tokens[j].text == "[":
                    d += 1
                elif tokens[j].text == "]":
                    d -= 1
                    if d == 0:
                        close = j
                        break
            if close is not None:
                j = close + 1
                if j < n and tokens[j].text == "(":
                    j = match_paren(j) + 1
                while j < n and tokens[j].text not in ("{", ";", ")", ","):
                    j += 1
                if j < n and tokens[j].text == "{":
                    body_end = match_brace(j)
                    names = live_names()
                    used = [tokens[k].text for k in range(i, body_end + 1)
                            if tokens[k].text in names]
                    invoked = (body_end + 1 < n and
                               tokens[body_end + 1].text == "(")
                    if used and not invoked:
                        if "C2" not in waivers.get(tok.line, {}):
                            findings.append(Finding(
                                rel, tok.line, "C2",
                                f"lambda captures pin-derived state "
                                f"('{used[0]}') and may outlive the pin; "
                                f"invoke it in place or copy the bytes"))
                    if used:
                        i = body_end
        elif tok.text in ASSIGN_OPS and i >= 1:
            # `member_ = derived;` / `member_ = std::move(guard);`
            lhs = tokens[i - 1].text
            this_member = (i >= 3 and tokens[i - 2].text == "->" and
                           tokens[i - 3].text == "this")
            preceded = (i >= 2 and tokens[i - 2].text in (".", "->") and
                        not this_member)
            if re.match(r"[A-Za-z_]\w*$", lhs) and \
                    (lhs.endswith("_") or this_member) and not preceded:
                names = live_names()
                j = i + 1
                while j < n and tokens[j].text != ";":
                    if tokens[j].text in names:
                        if "C2" not in waivers.get(tokens[j].line, {}):
                            findings.append(Finding(
                                rel, tokens[j].line, "C2",
                                f"pin-derived '{tokens[j].text}' stored "
                                f"into member '{lhs}', outliving the pin's "
                                f"scope"))
                        break
                    j += 1
        i += 1
    yield from findings


# ---------------------------------------------------------------------------
# C5 — epoch/snapshot lifetime escapes (textual engine).
#
# Tracked kinds:
#   guard  an EpochGuard object; must not be captured by an escaping lambda
#   view   a non-owning snapshot value/reference (PageFile::Snapshot,
#          SRTreeSnapshot&, a raw IndexSnapshot*...) — dies with the guard
#   owner  unique_ptr/shared_ptr<...Snapshot...> — owns its guard, may move
#   ptr    a raw pointer laundered out of an owner via .get() / &view

def _c5_decl_kind(texts_before: list[str], type_tok: str) -> str:
    """Classify a snapshot-type declaration as owner or view from the
    tokens earlier in the same statement (smart-pointer wrapper => owner)."""
    for t in reversed(texts_before):
        if t in (";", "{", "}",):
            break
        if t in C5_OWNER_MARKERS:
            return "owner"
    del type_tok
    return "view"


def check_c5(rel: str, tokens: list[Token],
             waivers: dict[int, dict[str, str]]) -> Iterable[Finding]:
    if rel in C5_ALLOWED_FILES:
        return
    depth = 0
    tracked: list[_Tracked] = []
    i = 0
    n = len(tokens)

    def kinds() -> dict[str, str]:
        return {t.name: t.kind for t in tracked}

    def match_brace(start: int) -> int:
        d = 0
        for j in range(start, n):
            if tokens[j].text == "{":
                d += 1
            elif tokens[j].text == "}":
                d -= 1
                if d == 0:
                    return j
        return n - 1

    def match_paren(start: int) -> int:
        d = 0
        for j in range(start, n):
            if tokens[j].text == "(":
                d += 1
            elif tokens[j].text == ")":
                d -= 1
                if d == 0:
                    return j
        return n - 1

    def stmt_start(idx: int) -> int:
        j = idx - 1
        while j >= 0 and tokens[j].text not in (";", "{", "}"):
            j -= 1
        return j + 1

    findings: list[Finding] = []
    paren = 0
    while i < n:
        tok = tokens[i]
        if tok.text == "(":
            paren += 1
        elif tok.text == ")":
            paren = max(0, paren - 1)
        elif tok.text == "{":
            depth += 1
        elif tok.text == "}":
            depth -= 1
            tracked = [t for t in tracked if t.depth <= depth]
        elif paren == 0 and (tok.text in C5_GUARD_TYPES or
                             tok.text in C5_VIEW_TYPES):
            # `EpochGuard guard(...)` / `PageFile::Snapshot snap = ...` /
            # `const IndexSnapshot* p = ...` declarations at statement
            # scope. Parameters (inside parens) and function declarators
            # are excluded.
            is_guard = tok.text in C5_GUARD_TYPES
            j = i + 1
            while j < n and tokens[j].text in ("&", "&&", "*", ">", "const"):
                j += 1
            if j < n and re.match(r"[A-Za-z_]\w*$", tokens[j].text) and \
                    tokens[j].text not in STATEMENT_KEYWORDS:
                nxt = tokens[j + 1].text if j + 1 < n else ""
                is_fn = nxt == "(" and _looks_like_param_list(tokens, j + 1)
                if nxt in ("=", ";", "(", "{") and not is_fn:
                    before = [t.text for t in tokens[stmt_start(i):i]]
                    kind = "guard" if is_guard else \
                        _c5_decl_kind(before, tok.text)
                    tracked.append(_Tracked(tokens[j].text, depth,
                                            tokens[j].line, kind))
        elif tok.text == "auto":
            # `auto snap = x.AcquireSnapshot(guard);` (view — the overload
            # taking a guard returns a non-owning PageFile::Snapshot),
            # `auto snap = index->AcquireSnapshot();` (owner — returns a
            # unique_ptr), `auto p = owner.get();` (laundered raw pointer).
            j = i + 1
            while j < n and tokens[j].text in ("&", "&&", "*", "const"):
                j += 1
            if j + 1 < n and re.match(r"[A-Za-z_]\w*$", tokens[j].text) and \
                    tokens[j + 1].text == "=":
                k = j + 2
                rhs = []
                while k < n and tokens[k].text != ";":
                    rhs.append(tokens[k].text)
                    k += 1
                rhs_s = " ".join(rhs)
                m = re.search(r"AcquireSnapshot \( (\))?", rhs_s)
                if m:
                    kind = "owner" if m.group(1) else "view"
                    tracked.append(_Tracked(tokens[j].text, depth,
                                            tokens[j].line, kind))
                elif any(re.search(rf"\b{t.name} (\.|->) get \(", rhs_s)
                         for t in tracked if t.kind == "owner"):
                    tracked.append(_Tracked(tokens[j].text, depth,
                                            tokens[j].line, "ptr"))
        elif tok.text == "return":
            names = kinds()
            j = i + 1
            expr = []
            while j < n and tokens[j].text != ";":
                expr.append(tokens[j])
                j += 1
            leak = None
            if len(expr) == 1 and names.get(expr[0].text) in \
                    ("view", "ptr"):
                leak = expr[0]
            elif (len(expr) == 2 and expr[0].text == "&" and
                  names.get(expr[1].text) in ("view", "owner")):
                leak = expr[1]
            elif (len(expr) >= 4 and
                  names.get(expr[0].text) in ("view", "owner") and
                  expr[1].text in (".", "->") and expr[2].text == "get"):
                leak = expr[0]
            else:
                for t in expr:
                    if names.get(t.text) == "ptr":
                        leak = t
                        break
            if leak is not None and "C5" not in waivers.get(leak.line, {}):
                findings.append(Finding(
                    rel, leak.line, "C5",
                    f"returning snapshot view '{leak.text}' that dies with "
                    f"its epoch guard at end of scope; return the owning "
                    f"handle (unique_ptr/shared_ptr) instead"))
            i = j
        elif tok.text == "[" and (
                i == 0 or tokens[i - 1].text in
                ("=", "(", ",", "return", "{", ";", "&&", "||", "!", ":")):
            # Lambda introducer: capturing a guard or view in a lambda that
            # is not invoked on the spot defers the use past the scope.
            close = None
            d = 0
            for j in range(i, n):
                if tokens[j].text == "[":
                    d += 1
                elif tokens[j].text == "]":
                    d -= 1
                    if d == 0:
                        close = j
                        break
            if close is not None:
                j = close + 1
                if j < n and tokens[j].text == "(":
                    j = match_paren(j) + 1
                while j < n and tokens[j].text not in ("{", ";", ")", ","):
                    j += 1
                if j < n and tokens[j].text == "{":
                    body_end = match_brace(j)
                    names = {t.name for t in tracked
                             if t.kind in ("guard", "view", "ptr")}
                    used = [tokens[k].text for k in range(i, body_end + 1)
                            if tokens[k].text in names]
                    invoked = (body_end + 1 < n and
                               tokens[body_end + 1].text == "(")
                    if used and not invoked:
                        if "C5" not in waivers.get(tok.line, {}):
                            findings.append(Finding(
                                rel, tok.line, "C5",
                                f"lambda captures epoch-scoped state "
                                f"('{used[0]}') and may outlive the guard; "
                                f"invoke it in place or hand it an owning "
                                f"snapshot handle"))
                    if used:
                        i = body_end
        elif tok.text in ASSIGN_OPS and i >= 1:
            # `member_ = view;` / `member_ = owner.get();` / `m_ = &view;`
            lhs = tokens[i - 1].text
            this_member = (i >= 3 and tokens[i - 2].text == "->" and
                           tokens[i - 3].text == "this")
            preceded = (i >= 2 and tokens[i - 2].text in (".", "->") and
                        not this_member)
            if re.match(r"[A-Za-z_]\w*$", lhs) and \
                    (lhs.endswith("_") or this_member) and not preceded:
                names = kinds()
                j = i + 1
                leak = None
                while j < n and tokens[j].text != ";":
                    t = tokens[j]
                    k = names.get(t.text)
                    if k in ("view", "ptr"):
                        leak = t
                        break
                    if k == "owner":
                        nxt2 = [tokens[j + 1].text if j + 1 < n else "",
                                tokens[j + 2].text if j + 2 < n else ""]
                        if nxt2[0] in (".", "->") and nxt2[1] == "get":
                            leak = t
                            break
                        if j >= 1 and tokens[j - 1].text == "&":
                            leak = t
                            break
                        # plain owner copy/move keeps the guard alive: ok
                    j += 1
                if leak is not None and \
                        "C5" not in waivers.get(leak.line, {}):
                    findings.append(Finding(
                        rel, leak.line, "C5",
                        f"epoch-scoped snapshot '{leak.text}' stored into "
                        f"member '{lhs}', outliving its guard; store an "
                        f"owning handle (shared_ptr) instead"))
        i += 1
    yield from findings


# ---------------------------------------------------------------------------
# C3 — narrowing-free serialization.

def storage_sources_from_cmake(cmake_text: str) -> list[str]:
    return re.findall(r"\bstorage/\w+\.cc\b", cmake_text)


def check_c3_wiring(root: pathlib.Path,
                    build_dir: pathlib.Path | None) -> Iterable[Finding]:
    cml = root / "src" / "CMakeLists.txt"
    if not cml.is_file():
        return
    text = cml.read_text(encoding="utf-8")
    sources = set(storage_sources_from_cmake(
        text.split("set_source_files_properties", 1)[0]))
    block = ""
    m = re.search(r"set_source_files_properties\((.*?)\)\s*$", text,
                  re.DOTALL | re.MULTILINE)
    if m:
        block = m.group(0)
    flagged = set(storage_sources_from_cmake(block))
    has_flags = ("-Werror=conversion" in block and
                 "-Werror=sign-conversion" in block)
    lineno = text[:m.start()].count("\n") + 1 if m else 1
    for src in sorted(sources - flagged) if has_flags else sorted(sources):
        yield Finding(
            "src/CMakeLists.txt", lineno, "C3",
            f"{src} does not compile with -Werror=conversion "
            f"-Werror=sign-conversion; the storage codec must reject "
            f"implicit narrowing (scope it in set_source_files_properties)")
    # Double-check the configured build agrees (catches a stale cache or a
    # generator that dropped the per-source options).
    db = (build_dir or root / "build") / "compile_commands.json"
    if db.is_file():
        try:
            entries = json.loads(db.read_text(encoding="utf-8"))
        except ValueError:
            return
        for entry in entries:
            f = entry.get("file", "")
            if "/src/storage/" not in f.replace("\\", "/"):
                continue
            cmd = entry.get("command", "") or " ".join(
                entry.get("arguments", []))
            if "-Wconversion" not in cmd:
                rel = "src/storage/" + f.replace("\\", "/").rsplit(
                    "/src/storage/", 1)[1]
                yield Finding(
                    rel, 1, "C3",
                    "configured build compiles this storage TU without "
                    "-Wconversion; re-run cmake so the scoped options take "
                    "effect")


def check_c3_file(rel: str, tokens: list[Token],
                  waivers: dict[int, dict[str, str]]) -> Iterable[Finding]:
    if "src/storage/" not in ("/" + rel):
        return
    wide_locals: set[str] = set()
    for stmt in statements(tokens):
        texts = [t.text for t in stmt]
        # Track locals of wide integer types.
        for w in WIDE_TYPES:
            if w in texts:
                k = texts.index(w)
                if k + 1 < len(texts) and \
                        re.match(r"[A-Za-z_]\w*$", texts[k + 1]):
                    wide_locals.add(texts[k + 1])
        # `narrow x = <wide expr>;` without a static_cast.
        if len(texts) < 4 or texts[0] not in NARROW_TYPES:
            continue
        if "=" not in texts or "static_cast" in texts:
            continue
        eq = texts.index("=")
        if eq < 1 or not re.match(r"[A-Za-z_]\w*$", texts[eq - 1]):
            continue
        # "unsigned long"/"long long"/wide typedefs in the declared type
        # make the destination wide — not a narrowing.
        if any(t in WIDE_TYPES or t in ("long", "double", "float")
               for t in texts[:eq - 1]):
            continue
        rhs = texts[eq + 1:]
        rhs_s = " ".join(rhs)
        is_wide = (re.search(r"\. size \( \)", rhs_s) or
                   re.search(r"\. length \( \)", rhs_s) or
                   "sizeof" in rhs or
                   any(x in wide_locals for x in rhs))
        if is_wide:
            line = stmt[0].line
            if "C3" not in waivers.get(line, {}):
                yield Finding(
                    rel, line, "C3",
                    f"implicit narrowing of a size/64-bit expression into "
                    f"{texts[0]}; spell the truncation with "
                    f"static_cast<{texts[0]}>(...) after a bounds check")


# ---------------------------------------------------------------------------
# C4 — GUARDED_BY completeness.

class _Demand(NamedTuple):
    rel: str
    lineno: int
    member: str
    mutex: str


def c4_demands(rel: str, tokens: list[Token]) -> Iterable[_Demand]:
    depth = 0
    locks: list[tuple[str, int]] = []  # (mutex, depth at decl)
    n = len(tokens)
    i = 0
    while i < n:
        tok = tokens[i]
        if tok.text == "{":
            depth += 1
        elif tok.text == "}":
            depth -= 1
            locks = [lk for lk in locks if lk[1] <= depth]
        elif tok.text == "MutexLock":
            # Only the canonical `MutexLock <var>(<mu-expr>);` acquires a
            # region. Ctor declarations (`explicit MutexLock(Mutex& mu)`),
            # the class definition, and MutexLock-typed parameters all lack
            # the <identifier>( shape right after the type name.
            if i + 3 < n and re.match(r"[A-Za-z_]\w*$", tokens[i + 1].text) \
                    and tokens[i + 1].text not in STATEMENT_KEYWORDS \
                    and tokens[i + 2].text == "(" \
                    and tokens[i + 3].text != ")":
                d = 0
                mu = None
                for k in range(i + 2, n):
                    t = tokens[k].text
                    if t == "(":
                        d += 1
                    elif t == ")":
                        d -= 1
                        if d == 0:
                            break
                    elif t == "," and d == 1:
                        break
                    elif re.match(r"[A-Za-z_]\w*$", t):
                        mu = t
                if mu:
                    locks.append((mu, depth))
        elif locks and re.match(r"[A-Za-z_]\w*$", tok.text) and \
                tok.text.endswith("_"):
            prev = tokens[i - 1].text if i >= 1 else ""
            this_member = (prev == "->" and i >= 2 and
                           tokens[i - 2].text == "this")
            if prev in (".", "->") and not this_member:
                i += 1
                continue
            # Skip subscripts to find the operator applied to the member.
            j = i + 1
            while j < n and tokens[j].text == "[":
                d = 0
                while j < n:
                    if tokens[j].text == "[":
                        d += 1
                    elif tokens[j].text == "]":
                        d -= 1
                        if d == 0:
                            break
                    j += 1
                j += 1
            nxt = tokens[j].text if j < n else ""
            is_write = (nxt in ASSIGN_OPS or nxt in ("++", "--") or
                        prev in ("++", "--"))
            if not is_write and nxt in (".", "->") and j + 2 < n and \
                    tokens[j + 1].text in MUTATING_METHODS and \
                    tokens[j + 2].text == "(":
                is_write = True
            if is_write:
                yield _Demand(rel, tok.line, tok.text, locks[-1][0])
        i += 1


def _norm_mutex(expr: str) -> str:
    return expr.strip().split(".")[-1].split("->")[-1].strip()


def c4_lookup_guard(member: str, decl_texts: list[str]) -> str | None:
    """Returns the guarding mutex, "" if declared unguarded, None if the
    declaration is not visible."""
    guard_re = re.compile(
        rf"\b{re.escape(member)}\b\s*(?:\[[^\]]*\])?\s+GUARDED_BY\s*"
        rf"\(([^)]*)\)")
    decl_re = re.compile(
        rf"^\s*(?!(?:return|delete|throw|new|else|case|goto|co_return)\b)"
        rf"(?:mutable\s+)?[A-Za-z_][\w:<>,\s*&\.]*[\s*&]"
        rf"{re.escape(member)}\s*(?:\[[^\]]*\])?\s*(?:=[^=]|;|\{{)",
        re.MULTILINE)
    # An annotated declaration anywhere beats an unannotated decl-looking
    # line elsewhere (e.g. `stats = member_;` statements in the .cc).
    for text in decl_texts:
        m = guard_re.search(text)
        if m:
            return _norm_mutex(m.group(1))
    for text in decl_texts:
        if decl_re.search(text):
            return ""
    return None


def check_c4(root: pathlib.Path, files: list[str],
             stripped_by_rel: dict[str, str],
             tokens_by_rel: dict[str, list[Token]],
             waivers_by_rel: dict[str, dict[int, dict[str, str]]],
             ) -> Iterable[Finding]:
    used_waivers: set[str] = set()
    for rel in files:
        for demand in c4_demands(rel, tokens_by_rel[rel]):
            if "C4" in waivers_by_rel[rel].get(demand.lineno, {}):
                continue
            key = f"{rel}::{demand.member}"
            if key in C4_STATIC_WAIVERS:
                used_waivers.add(key)
                continue
            # Declaration search: same file, then sibling headers.
            rel_path = pathlib.PurePosixPath(rel)
            candidates = [rel]
            sibling = str(rel_path.with_suffix(".h"))
            if sibling != rel and sibling in stripped_by_rel:
                candidates.append(sibling)
            for other in files:
                if other not in candidates and \
                        str(pathlib.PurePosixPath(other).parent) == \
                        str(rel_path.parent) and other.endswith(".h"):
                    candidates.append(other)
            guard = c4_lookup_guard(
                demand.member, [stripped_by_rel[c] for c in candidates])
            if guard is None:
                continue  # declaration not visible — out of heuristic reach
            if guard == "":
                yield Finding(
                    rel, demand.lineno, "C4",
                    f"'{demand.member}' is written under MutexLock("
                    f"{demand.mutex}) but its declaration has no "
                    f"GUARDED_BY({demand.mutex}) annotation")
            elif guard != _norm_mutex(demand.mutex):
                yield Finding(
                    rel, demand.lineno, "C4",
                    f"'{demand.member}' is written under MutexLock("
                    f"{demand.mutex}) but is GUARDED_BY({guard})")
    for key in sorted(set(C4_STATIC_WAIVERS) - used_waivers):
        yield Finding(
            "tools/srcheck.py", 1, "C4",
            f"stale C4 waiver '{key}': the member is no longer written "
            f"under a lock — delete the entry (the list must shrink)")


# ---------------------------------------------------------------------------
# Whole-program infrastructure shared by C6/C7: a token-level function
# segmenter (name, REQUIRES set, body span) and a body scanner that tracks
# the set of mutexes held (MutexLock scopes + REQUIRES preconditions) at
# every acquisition and call site. Functions are merged across translation
# units *by name* — the same approximation the codebase's single-namespace
# layout makes sound in practice, and the reason srcheck can see that
# `CommitState()` (declared REQUIRES(writer_mu_) in the header) satisfies
# C7 at its definition in the .cc.

FN_ANNOTATIONS = {
    "REQUIRES", "REQUIRES_SHARED", "EXCLUDES", "ACQUIRE", "ACQUIRE_SHARED",
    "RELEASE", "RELEASE_SHARED", "RELEASE_GENERIC", "TRY_ACQUIRE",
    "TRY_ACQUIRE_SHARED", "ASSERT_CAPABILITY", "ASSERT_SHARED_CAPABILITY",
    "RETURN_CAPABILITY", "NO_THREAD_SAFETY_ANALYSIS",
}

IDENT_RE = re.compile(r"[A-Za-z_]\w*$")


class _Func(NamedTuple):
    rel: str
    name: str
    line: int
    requires: tuple[str, ...]
    body: tuple[int, int]  # token index range (start, end), exclusive


class _CallEvent(NamedTuple):
    callee: str
    held: tuple[str, ...]
    line: int


class _Acquire(NamedTuple):
    mutex: str
    held: tuple[str, ...]
    line: int


class _Program(NamedTuple):
    funcs: list[_Func]
    decl_requires: dict[str, set[str]]
    scans: list[tuple[_Func, list[_Acquire], list[_CallEvent]]]


def _match_fwd(tokens: list[Token], start: int, open_t: str,
               close_t: str) -> int:
    d = 0
    for j in range(start, len(tokens)):
        t = tokens[j].text
        if t == open_t:
            d += 1
        elif t == close_t:
            d -= 1
            if d == 0:
                return j
    return len(tokens) - 1


def _mutex_names(tokens: list[Token], start: int, end: int) -> list[str]:
    """Last identifier of each comma-separated group in tokens[start:end)
    (so `REQUIRES(writer_mu_)` -> writer_mu_, `shard.mu` -> mu). Negated
    capabilities (`!mu`) name what must NOT be held and are skipped."""
    names: list[str] = []
    group: list[str] = []
    d = 0
    for j in range(start, end):
        t = tokens[j].text
        if t in "([":
            d += 1
        elif t in ")]":
            d -= 1
        elif t == "," and d == 0:
            if "!" not in group:
                ids = [g for g in group if IDENT_RE.match(g)]
                if ids:
                    names.append(ids[-1])
            group = []
            continue
        group.append(t)
    if group and "!" not in group:
        ids = [g for g in group if IDENT_RE.match(g)]
        if ids:
            names.append(ids[-1])
    return names


def parse_functions(rel: str, tokens: list[Token]
                    ) -> tuple[list[_Func], dict[str, set[str]]]:
    """Segment a token stream into function definitions and collect the
    REQUIRES sets of function *declarations* (headers carry the annotation;
    definitions usually do not repeat it)."""
    funcs: list[_Func] = []
    decl_requires: dict[str, set[str]] = {}
    n = len(tokens)
    i = 0
    while i < n:
        tok = tokens[i]
        if not IDENT_RE.match(tok.text) or \
                tok.text in STATEMENT_KEYWORDS or \
                tok.text in FN_ANNOTATIONS or \
                i + 1 >= n or tokens[i + 1].text != "(":
            i += 1
            continue
        close = _match_fwd(tokens, i + 1, "(", ")")
        name = tok.text
        if i >= 1 and tokens[i - 1].text == "~":
            name = "~" + name
        j = close + 1
        requires: list[str] = []
        body_start = None
        is_decl = False
        while j < n:
            t = tokens[j].text
            if t in ("const", "noexcept", "override", "final", "mutable",
                     "&", "&&", "try"):
                j += 1
            elif t == "->":
                j += 1
                while j < n and tokens[j].text not in ("{", ";"):
                    j += 1
            elif t in FN_ANNOTATIONS:
                if j + 1 < n and tokens[j + 1].text == "(":
                    pc = _match_fwd(tokens, j + 1, "(", ")")
                    if t in ("REQUIRES", "REQUIRES_SHARED"):
                        requires.extend(_mutex_names(tokens, j + 2, pc))
                    j = pc + 1
                else:
                    j += 1
            elif t == "=":
                is_decl = True  # `= 0;` / `= default;` / `= delete;`
                break
            elif t == ":":
                # Constructor init list: scan for the body '{' (skipping
                # member brace-inits, whose '{' follows an identifier).
                j += 1
                d = 0
                while j < n:
                    tt = tokens[j].text
                    if tt == "(":
                        d += 1
                    elif tt == ")":
                        d -= 1
                    elif tt == "{" and d == 0:
                        prev = tokens[j - 1].text if j >= 1 else ""
                        if IDENT_RE.match(prev) or prev == ">":
                            j = _match_fwd(tokens, j, "{", "}") + 1
                            if j < n and tokens[j].text == ",":
                                j += 1
                            continue
                        body_start = j
                        break
                    elif tt == ";" and d == 0:
                        is_decl = True
                        break
                    j += 1
                break
            elif t == "{":
                body_start = j
                break
            elif t == ";":
                is_decl = True
                break
            else:
                break
        if body_start is not None:
            body_end = _match_fwd(tokens, body_start, "{", "}")
            funcs.append(_Func(rel, name, tok.line, tuple(requires),
                               (body_start + 1, body_end)))
            i = body_end
        elif is_decl and requires:
            decl_requires.setdefault(name, set()).update(requires)
            i = j
        else:
            i = close
        i += 1
    return funcs, decl_requires


def scan_body(tokens: list[Token], span: tuple[int, int],
              requires: Iterable[str]
              ) -> tuple[list[_Acquire], list[_CallEvent]]:
    start, end = span
    held: list[tuple[str, int]] = [(m, -1) for m in sorted(set(requires))]
    depth = 0
    acquires: list[_Acquire] = []
    calls: list[_CallEvent] = []
    i = start
    while i < end:
        t = tokens[i].text
        if t == "{":
            depth += 1
        elif t == "}":
            depth -= 1
            held = [h for h in held if h[1] <= depth]
        elif t == "MutexLock":
            # Canonical `MutexLock <var>(<mu-expr>);` only (same shape
            # filter as C4).
            if i + 3 < end and IDENT_RE.match(tokens[i + 1].text) \
                    and tokens[i + 1].text not in STATEMENT_KEYWORDS \
                    and tokens[i + 2].text == "(" \
                    and tokens[i + 3].text != ")":
                close = _match_fwd(tokens, i + 2, "(", ")")
                names = _mutex_names(tokens, i + 3, close)
                if names:
                    mu = names[0]
                    acquires.append(_Acquire(
                        mu, tuple(h[0] for h in held), tokens[i].line))
                    held.append((mu, depth))
                i = close
        elif IDENT_RE.match(t) and t not in STATEMENT_KEYWORDS and \
                t != "MutexLock" and i + 1 < end and \
                tokens[i + 1].text == "(":
            calls.append(_CallEvent(t, tuple(h[0] for h in held),
                                    tokens[i].line))
        i += 1
    return acquires, calls


def parse_program(analysis: "Analysis") -> _Program:
    """Parse every src/ file (two passes: declarations' REQUIRES first,
    then body scans seeded with the merged REQUIRES sets)."""
    funcs: list[_Func] = []
    decl_requires: dict[str, set[str]] = {}
    for rel in analysis.files:
        if not rel.startswith("src/"):
            continue
        fs, dr = parse_functions(rel, analysis.tokens_by_rel[rel])
        funcs.extend(fs)
        for k, v in dr.items():
            decl_requires.setdefault(k, set()).update(v)
    scans = []
    for fn in funcs:
        req = set(fn.requires) | decl_requires.get(fn.name, set())
        acq, calls = scan_body(analysis.tokens_by_rel[fn.rel], fn.body, req)
        scans.append((fn, acq, calls))
    return _Program(funcs, decl_requires, scans)


def _transitive_acquires(program: _Program) -> dict[str, set[str]]:
    direct: dict[str, set[str]] = {}
    callees: dict[str, set[str]] = {}
    for fn, acq, calls in program.scans:
        direct.setdefault(fn.name, set()).update(a.mutex for a in acq)
        callees.setdefault(fn.name, set()).update(c.callee for c in calls)
    trans = {k: set(v) for k, v in direct.items()}
    changed = True
    while changed:
        changed = False
        for name, cs in callees.items():
            cur = trans.setdefault(name, set())
            for c in cs:
                extra = trans.get(c)
                if extra and not extra <= cur:
                    cur |= extra
                    changed = True
    return trans


# ---------------------------------------------------------------------------
# C6 — global lock-order graph.

def build_lock_graph(program: _Program) -> dict[tuple[str, str], set[str]]:
    """Edges (held, acquires) -> sites. Direct edges come from a MutexLock
    nested under held locks; interprocedural edges from a call, made while
    holding locks, to a function that (transitively) acquires. Same-name
    self-edges are suppressed: the by-name abstraction cannot tell two
    instances of `mu` apart, and the codebase's per-object locks make
    them overwhelmingly distinct objects."""
    trans = _transitive_acquires(program)
    edges: dict[tuple[str, str], set[str]] = {}
    for fn, acq, calls in program.scans:
        for a in acq:
            for h in a.held:
                if h != a.mutex:
                    edges.setdefault((h, a.mutex), set()).add(
                        f"{fn.rel}:{a.line}")
        for c in calls:
            if not c.held:
                continue
            for mu in sorted(trans.get(c.callee, ())):
                for h in c.held:
                    if h != mu:
                        edges.setdefault((h, mu), set()).add(
                            f"{fn.rel}:{c.line} (via {c.callee})")
    return edges


def lock_order_json(edges: dict[tuple[str, str], set[str]]) -> str:
    nodes = sorted({a for a, _ in edges} | {b for _, b in edges})
    payload = {
        "_comment": "Lock-acquisition order extracted by tools/srcheck.py "
                    "(rule C6). An edge means the 'held' mutex is held "
                    "while 'acquires' is taken at the listed sites. Do not "
                    "edit by hand; regenerate with "
                    "`tools/srcheck.py --emit-lock-order` whenever the "
                    "repo-wide run reports it stale.",
        "nodes": nodes,
        "edges": [
            {"held": a, "acquires": b, "sites": sorted(edges[(a, b)])}
            for a, b in sorted(edges)
        ],
    }
    return json.dumps(payload, indent=2, sort_keys=True) + "\n"


def _sccs(nodes: list[str],
          adj: dict[str, set[str]]) -> list[list[str]]:
    index: dict[str, int] = {}
    low: dict[str, int] = {}
    stack: list[str] = []
    on: set[str] = set()
    out: list[list[str]] = []
    counter = [0]

    def strong(v: str) -> None:
        index[v] = low[v] = counter[0]
        counter[0] += 1
        stack.append(v)
        on.add(v)
        for w in sorted(adj.get(v, ())):
            if w not in index:
                strong(w)
                low[v] = min(low[v], low[w])
            elif w in on:
                low[v] = min(low[v], index[w])
        if low[v] == index[v]:
            comp = []
            while True:
                w = stack.pop()
                on.discard(w)
                comp.append(w)
                if w == v:
                    break
            out.append(comp)

    for v in nodes:
        if v not in index:
            strong(v)
    return out


def _site_loc(site: str) -> tuple[str, int]:
    rel, _, rest = site.partition(":")
    return rel, int(rest.split()[0])


def check_c6(root: pathlib.Path, analysis: "Analysis", program: _Program,
             check_artifact: bool = True) -> Iterable[Finding]:
    edges = build_lock_graph(program)
    adj: dict[str, set[str]] = {}
    for a, b in edges:
        adj.setdefault(a, set()).add(b)
    nodes = sorted(adj.keys() | {b for _, b in edges})
    for comp in _sccs(nodes, adj):
        if len(comp) < 2:
            continue
        cyc = " -> ".join(sorted(comp))
        in_cycle = {e for e in edges if e[0] in comp and e[1] in comp}
        for a, b in sorted(in_cycle):
            for site in sorted(edges[(a, b)]):
                rel, lineno = _site_loc(site)
                if "C6" in analysis.waivers_by_rel.get(rel, {}).get(
                        lineno, {}):
                    continue
                yield Finding(
                    rel, lineno, "C6",
                    f"lock-order cycle ({cyc}): '{b}' is acquired here "
                    f"while '{a}' is held, but the reverse nesting also "
                    f"exists — a potential deadlock; pick one global "
                    f"order")
    if check_artifact:
        artifact = root / LOCK_ORDER_ARTIFACT
        want = lock_order_json(edges)
        if not artifact.is_file():
            yield Finding(
                LOCK_ORDER_ARTIFACT, 1, "C6",
                "lock-order artifact is missing; generate it with "
                "`tools/srcheck.py --emit-lock-order` and check it in")
        elif artifact.read_text(encoding="utf-8") != want:
            yield Finding(
                LOCK_ORDER_ARTIFACT, 1, "C6",
                "lock-order artifact is stale — the acquisition graph "
                "changed; regenerate with `tools/srcheck.py "
                "--emit-lock-order` so reviewers see the ordering diff")


# ---------------------------------------------------------------------------
# C7 — commit-protocol completeness.

def _c7_summaries(program: _Program) -> tuple[dict[str, bool],
                                              dict[str, bool]]:
    """(stages, resolves) per function name, transitively: does calling
    this function stage a write / publish-or-discard staged writes?"""
    stages: dict[str, bool] = {}
    resolves: dict[str, bool] = {}
    callees: dict[str, set[str]] = {}
    for fn, _, calls in program.scans:
        st = stages.setdefault(fn.name, False)
        rs = resolves.setdefault(fn.name, False)
        for c in calls:
            if c.callee == C7_STAGE_NAME:
                st = True
            if c.callee == C7_COMMIT_NAME or \
                    C7_DISCHARGE_RE.search(c.callee):
                rs = True
        stages[fn.name] = st
        resolves[fn.name] = rs
        callees.setdefault(fn.name, set()).update(c.callee for c in calls)
    changed = True
    while changed:
        changed = False
        for name, cs in callees.items():
            for c in cs:
                if stages.get(c) and not stages[name]:
                    stages[name] = True
                    changed = True
                if resolves.get(c) and not resolves[name]:
                    resolves[name] = True
                    changed = True
    return stages, resolves


def check_c7(analysis: "Analysis", program: _Program) -> Iterable[Finding]:
    stages, resolves = _c7_summaries(program)
    callers: dict[str, set[str]] = {}
    for fn, _, calls in program.scans:
        for c in calls:
            if c.callee != fn.name:
                callers.setdefault(c.callee, set()).add(fn.name)

    def waived(rel: str, line: int) -> bool:
        return "C7" in analysis.waivers_by_rel.get(rel, {}).get(line, {})

    seen_defs: set[str] = set()
    for fn, _, calls in program.scans:
        if fn.rel.startswith(C7_ALLOWED_PREFIX):
            continue  # the protocol's own implementation
        tokens = analysis.tokens_by_rel[fn.rel]

        # Root check: a function nobody (in src/) calls that stages but
        # never commits/discards leaks staged pages into the working state.
        if fn.name not in seen_defs and not callers.get(fn.name) and \
                stages.get(fn.name) and not resolves.get(fn.name):
            seen_defs.add(fn.name)
            site = next((c.line for c in calls
                         if c.callee == C7_STAGE_NAME or
                         stages.get(c.callee)), fn.line)
            if not waived(fn.rel, site):
                yield Finding(
                    fn.rel, site, "C7",
                    f"'{fn.name}' stages page writes (via "
                    f"{C7_STAGE_NAME}) but no path reaches Commit or a "
                    f"discard/rollback — staged pages would leak into the "
                    f"next commit")

        # Commit-under-writer_mu_: every direct Commit call needs the
        # writer capability (MutexLock in scope or REQUIRES precondition).
        for c in calls:
            if c.callee == C7_COMMIT_NAME and \
                    C7_WRITER_MUTEX not in c.held:
                if not waived(fn.rel, c.line):
                    yield Finding(
                        fn.rel, c.line, "C7",
                        f"Commit called without {C7_WRITER_MUTEX} held; "
                        f"publication must be serialized by the writer "
                        f"lock (MutexLock or REQUIRES"
                        f"({C7_WRITER_MUTEX}))")

        # Intra-path walk: once a path stages (directly or through a
        # helper), it must not return before a Commit/discard, and must
        # not commit twice without staging in between. Linear over the
        # body; exclusive branches are approximated by clearing the
        # "resolved" state at the enclosing brace boundary.
        has_stage = any(c.callee == C7_STAGE_NAME or stages.get(c.callee)
                        for c in calls)
        has_resolve = any(c.callee == C7_COMMIT_NAME or
                          C7_DISCHARGE_RE.search(c.callee) or
                          resolves.get(c.callee) for c in calls)
        if not (has_stage and has_resolve):
            continue
        start, end = fn.body
        depth = 0
        staged = False
        resolve_depth: int | None = None
        i = start
        while i < end:
            t = tokens[i].text
            if t == "{":
                depth += 1
            elif t == "}":
                depth -= 1
                if resolve_depth is not None and depth < resolve_depth:
                    resolve_depth = None
            elif IDENT_RE.match(t) and i + 1 < end and \
                    tokens[i + 1].text == "(":
                st = t == C7_STAGE_NAME or (
                    stages.get(t, False) and not resolves.get(t, False))
                rs = t == C7_COMMIT_NAME or \
                    bool(C7_DISCHARGE_RE.search(t)) or \
                    (resolves.get(t, False) and not stages.get(t, False))
                if st:
                    staged = True
                elif rs:
                    if t == C7_COMMIT_NAME and not staged and \
                            resolve_depth is not None and \
                            not waived(fn.rel, tokens[i].line):
                        yield Finding(
                            fn.rel, tokens[i].line, "C7",
                            "this path commits twice for one staged "
                            "mutation; each mutation publishes through "
                            "exactly one Commit")
                    staged = False
                    resolve_depth = depth
            elif t == "return" and staged:
                if not waived(fn.rel, tokens[i].line):
                    yield Finding(
                        fn.rel, tokens[i].line, "C7",
                        "returning with staged writes uncommitted; every "
                        "path from StageWrite must reach Commit or a "
                        "discard/rollback before control escapes")
                # Report once per path; fall through to keep scanning.
                staged = False
            i += 1
        if staged and not waived(fn.rel, tokens[end].line
                                 if end < len(tokens) else fn.line):
            yield Finding(
                fn.rel, tokens[end].line if end < len(tokens) else fn.line,
                "C7",
                f"'{fn.name}' can fall off the end with staged writes "
                f"uncommitted; finish the path with Commit or a "
                f"discard/rollback")


# ---------------------------------------------------------------------------
# C8 — guarded-coverage ratchet.

class _Member(NamedTuple):
    rel: str
    cls: str
    name: str
    line: int
    compliant: bool
    why: str


def parse_classes(rel: str, tokens: list[Token]
                  ) -> list[tuple[str, tuple[int, int], int, bool]]:
    """(name, body span, line, is_capability) for every class/struct
    definition in the stream (nested ones included as their own entries)."""
    out = []
    n = len(tokens)
    i = 0
    while i < n:
        t = tokens[i].text
        if t not in ("class", "struct") or \
                (i >= 1 and tokens[i - 1].text == "enum"):
            i += 1
            continue
        j = i + 1
        is_capability = False
        name = None
        while j < n:
            tt = tokens[j].text
            if tt in ("CAPABILITY", "SCOPED_CAPABILITY"):
                is_capability = True
                if j + 1 < n and tokens[j + 1].text == "(":
                    j = _match_fwd(tokens, j + 1, "(", ")") + 1
                else:
                    j += 1
            elif tt == "alignas" and j + 1 < n and \
                    tokens[j + 1].text == "(":
                j = _match_fwd(tokens, j + 1, "(", ")") + 1
            elif IDENT_RE.match(tt) and tt != "final":
                name = tt
                j += 1
            elif tt == "final":
                j += 1
            elif tt == ":":
                # base-class list: scan to the body '{'
                while j < n and tokens[j].text != "{":
                    j += 1
                break
            else:
                break
        if name is None or j >= n or tokens[j].text != "{":
            i += 1
            continue
        body_end = _match_fwd(tokens, j, "{", "}")
        out.append((name, (j + 1, body_end), tokens[i].line,
                    is_capability))
        i = j + 1  # descend into the body so nested classes are found
    return out


C8_MEMBER_SKIP = {"static", "using", "friend", "typedef", "template",
                  "enum", "class", "struct", "operator", "virtual",
                  "explicit", "public", "private", "protected"}
C8_ANNOT_MACROS = {"GUARDED_BY", "PT_GUARDED_BY", "UNGUARDED_OK",
                   "ACQUIRED_AFTER", "ACQUIRED_BEFORE"}


def _class_member_stmts(tokens: list[Token], span: tuple[int, int]
                        ) -> Iterable[list[Token]]:
    """Member-declaration statements at depth 0 of a class body (method
    bodies, nested classes, and brace initializers skipped over)."""
    start, end = span
    stmt: list[Token] = []
    i = start
    while i < end:
        t = tokens[i].text
        if t == "{":
            close = _match_fwd(tokens, i, "{", "}")
            if close + 1 < end and tokens[close + 1].text == ";":
                # brace initializer `x_{...};` or nested `class C {...};`
                if stmt:
                    yield stmt
                stmt = []
                i = close + 2
                continue
            stmt = []  # method definition body: not a member decl
            i = close + 1
            continue
        if t == ";":
            if stmt:
                yield stmt
            stmt = []
        elif t == ":" and stmt and \
                stmt[-1].text in ("public", "private", "protected"):
            stmt = []
        else:
            stmt.append(tokens[i])
        i += 1


def _strip_annotations(stmt: list[Token]) -> tuple[list[Token], set[str]]:
    """Remove `MACRO(...)` annotation groups; return (rest, macros seen)."""
    out: list[Token] = []
    seen: set[str] = set()
    i = 0
    n = len(stmt)
    while i < n:
        if stmt[i].text in C8_ANNOT_MACROS and i + 1 < n and \
                stmt[i + 1].text == "(":
            seen.add(stmt[i].text)
            close = _match_fwd(stmt, i + 1, "(", ")")
            i = close + 1
            continue
        out.append(stmt[i])
        i += 1
    return out, seen


class _DataMember(NamedTuple):
    decl: list[Token]       # type + declarator tokens (annotations gone)
    name_tok: Token
    type_texts: list[str]
    macros: set[str]


def _data_members(tokens: list[Token],
                  span: tuple[int, int]) -> list[_DataMember]:
    out: list[_DataMember] = []
    for stmt in _class_member_stmts(tokens, span):
        rest, macros = _strip_annotations(stmt)
        if not rest or rest[0].text in C8_MEMBER_SKIP:
            continue
        texts = [t.text for t in rest]
        if "operator" in texts:
            continue
        # A '(' in the stripped declaration (not behind '=') means a
        # function declarator, not a data member.
        eq = texts.index("=") if "=" in texts else len(texts)
        if "(" in texts[:eq]:
            continue
        decl = rest[:eq]
        # Array declarator: the name precedes the '['. Only brackets at
        # template-angle depth 0 count (`unique_ptr<char[]>` does not).
        angle = 0
        for k, t in enumerate(decl):
            if t.text == "<":
                angle += 1
            elif t.text == ">":
                angle = max(0, angle - 1)
            elif t.text == ">>":
                angle = max(0, angle - 2)
            elif t.text == "[" and angle == 0:
                decl = decl[:k]
                break
        ids = [t for t in decl if IDENT_RE.match(t.text) and
               t.text not in ("const", "mutable", "constexpr",
                              "volatile", "std")]
        if len(ids) < 2:
            continue  # need at least a type and a name
        name_tok = ids[-1]
        type_texts = [t.text for t in decl[:decl.index(name_tok)]]
        out.append(_DataMember(decl, name_tok, type_texts, macros))
    return out


def _owns_mutex(members: list[_DataMember]) -> bool:
    return any("Mutex" in m.type_texts for m in members)


def collect_members(rel: str, tokens: list[Token],
                    raw_lines: list[str],
                    sync_types: set[str]) -> list[_Member]:
    """Classify every data member of every mutex-owning class in `rel`."""
    members: list[_Member] = []
    for cls, span, _, _ in parse_classes(rel, tokens):
        data = _data_members(tokens, span)
        if not _owns_mutex(data):
            continue
        for m in data:
            name_tok, type_texts, macros = m.name_tok, m.type_texts, \
                m.macros
            compliant, why = True, ""
            if "GUARDED_BY" in macros or "PT_GUARDED_BY" in macros:
                why = "guarded"
            elif "UNGUARDED_OK" in macros:
                line_blob = " ".join(
                    raw_lines[max(0, name_tok.line - 1):
                              name_tok.line + 2])
                mm = re.search(r'UNGUARDED_OK\s*\(\s*"([^"]*)"', line_blob)
                if mm and mm.group(1).strip():
                    why = "unguarded-ok"
                else:
                    compliant = False
                    why = "UNGUARDED_OK without a non-empty contract string"
            elif "atomic" in type_texts:
                why = "atomic"
            elif "const" in [t.text for t in m.decl] or \
                    "constexpr" in [t.text for t in m.decl]:
                why = "const"
            elif "&" in type_texts:
                why = "reference"
            elif any(t in sync_types for t in type_texts):
                why = "sync-type"
            else:
                compliant = False
                why = "unguarded"
            members.append(_Member(rel, cls, name_tok.text, name_tok.line,
                                   compliant, why))
    return members


def c8_sync_types(analysis: "Analysis") -> set[str]:
    """Mutex/CondVar + CAPABILITY classes + mutex-owning classes (which
    police their own members and synchronize internally)."""
    sync = set(C8_SYNC_TYPES)
    for rel in analysis.files:
        if not rel.startswith("src/"):
            continue
        for cls, span, _, is_cap in parse_classes(
                rel, analysis.tokens_by_rel[rel]):
            if is_cap:
                sync.add(cls)
            elif _owns_mutex(_data_members(
                    analysis.tokens_by_rel[rel], span)):
                sync.add(cls)
    return sync


def load_c8_baseline(root: pathlib.Path) -> dict[str, str]:
    path = root / C8_BASELINE_FILE
    if not path.is_file():
        return {}
    try:
        data = json.loads(path.read_text(encoding="utf-8"))
        entries = data.get("entries", {})
        return {str(k): str(v) for k, v in entries.items()}
    except ValueError:
        return {}


def check_c8(analysis: "Analysis", baseline: dict[str, str]
             ) -> Iterable[Finding]:
    sync = c8_sync_types(analysis)
    used: set[str] = set()
    for rel in analysis.files:
        if not rel.startswith("src/"):
            continue
        for m in collect_members(rel, analysis.tokens_by_rel[rel],
                                 analysis.raw_by_rel[rel], sync):
            key = f"{m.rel}::{m.cls}::{m.name}"
            if m.compliant:
                continue
            if "C8" in analysis.waivers_by_rel[rel].get(m.line, {}):
                continue
            if key in baseline:
                if any(rel.startswith(d) for d in C8_NO_BASELINE_DIRS):
                    yield Finding(
                        rel, m.line, "C8",
                        f"baseline entry '{key}' is banned under "
                        f"{'/'.join(C8_NO_BASELINE_DIRS)}: coverage there "
                        f"moves only through GUARDED_BY/atomic/"
                        f"UNGUARDED_OK annotations")
                else:
                    used.add(key)
                continue
            if m.why.startswith("UNGUARDED_OK"):
                yield Finding(rel, m.line, "C8",
                              f"member '{m.cls}::{m.name}': {m.why}")
            else:
                yield Finding(
                    rel, m.line, "C8",
                    f"mutable member '{m.name}' of mutex-owning class "
                    f"'{m.cls}' has no GUARDED_BY, is not atomic/const/"
                    f"internally-synchronized, and carries no "
                    f"UNGUARDED_OK(\"contract\") annotation")
    for key in sorted(set(baseline) - used):
        yield Finding(
            C8_BASELINE_FILE, 1, "C8",
            f"stale C8 baseline entry '{key}': the member is now "
            f"compliant or gone — delete the entry (the baseline only "
            f"shrinks)")


# ---------------------------------------------------------------------------
# Clang engine: precise C1/C2 on the real AST. Activated when python
# libclang is importable; C3/C4 stay token-grounded (see module docstring).

def load_libclang():
    try:
        from clang import cindex  # type: ignore
    except ImportError:
        return None
    try:
        cindex.Index.create()
        return cindex
    except Exception:  # library missing or version skew
        # CI pins python3-clang-18/libclang1-18 (see .github/workflows/
        # ci.yml); the older sonames keep local installs working.
        for name in ("libclang.so", "libclang-18.so", "libclang.so.18",
                     "libclang-18.so.18", "libclang-18.so.1",
                     "libclang-17.so", "libclang.so.17",
                     "libclang-16.so", "libclang.so.16",
                     "libclang-14.so", "libclang.so.14", "libclang-15.so"):
            try:
                cindex.Config.loaded = False
                cindex.Config.set_library_file(name)
                cindex.Index.create()
                return cindex
            except Exception:
                continue
    return None


def _canonical_status(type_obj) -> bool:
    s = type_obj.get_canonical().spelling
    s = s.replace("const", "").replace("&", "").strip()
    base = s.split("::")[-1]
    return base == "Status" or base.startswith("StatusOr<")


class ClangEngine:
    def __init__(self, cindex, root: pathlib.Path,
                 build_dir: pathlib.Path | None):
        self.cindex = cindex
        self.root = root.resolve()
        self.build_dir = build_dir
        self.index = cindex.Index.create()

    def _args_for(self, rel: str) -> list[str]:
        db_path = (self.build_dir or self.root / "build")
        db_file = db_path / "compile_commands.json"
        if db_file.is_file():
            try:
                db = self.cindex.CompilationDatabase.fromDirectory(
                    str(db_path))
                cmds = db.getCompileCommands(str(self.root / rel))
                if cmds:
                    args = list(cmds[0].arguments)[1:]
                    # Strip output/input and options clang rejects here.
                    cleaned, skip = [], False
                    for a in args:
                        if skip:
                            skip = False
                            continue
                        if a in ("-o", "-c"):
                            skip = a == "-o"
                            continue
                        if a == str(self.root / rel) or a.endswith(rel):
                            continue
                        cleaned.append(a)
                    return cleaned
            except Exception:
                pass
        return ["-std=c++20", "-x", "c++",
                f"-I{self.root}"]

    def parse(self, rel: str):
        path = str(self.root / rel)
        try:
            return self.index.parse(path, args=self._args_for(rel))
        except Exception:
            return None

    def check_file(self, rel: str, raw_lines: list[str],
                   waivers: dict[int, dict[str, str]],
                   status_names: set[str]) -> list[Finding] | None:
        del status_names  # the AST carries the real return types
        tu = self.parse(rel)
        if tu is None:
            return None
        ck = self.cindex.CursorKind
        findings: list[Finding] = []
        target = str((self.root / rel).resolve())

        def in_this_file(cursor) -> bool:
            loc = cursor.location
            return bool(loc.file) and str(
                pathlib.Path(loc.file.name).resolve()) == target

        def descendants(cursor):
            for child in cursor.get_children():
                yield child
                yield from descendants(child)

        def refs_any(cursor, names: set[str]) -> str | None:
            for d in descendants(cursor):
                if d.kind == ck.DECL_REF_EXPR and d.spelling in names:
                    return d.spelling
                if d.kind == ck.MEMBER_REF_EXPR and d.spelling == "data":
                    for dd in descendants(d):
                        if dd.kind == ck.DECL_REF_EXPR and \
                                dd.spelling in names:
                            return dd.spelling
            return None

        def add(line: int, rule: str, message: str):
            if rule in waivers.get(line, {}):
                return
            findings.append(Finding(rel, line, rule, message))

        def visit_compound(cursor):
            for child in cursor.get_children():
                k = child.kind
                if k == ck.CALL_EXPR and in_this_file(child) and \
                        child.type is not None and \
                        _canonical_status(child.type):
                    add(child.location.line, "C1",
                        f"discarded Status from {child.spelling or 'call'}"
                        f"(); handle the error or (void)-waive it with "
                        f"`// srcheck: allow(C1) <reason>`")
                elif k == ck.CSTYLE_CAST_EXPR and in_this_file(child):
                    for d in descendants(child):
                        if d.kind == ck.CALL_EXPR and d.type is not None \
                                and _canonical_status(d.type):
                            add(child.location.line, "C1",
                                f"(void)-discarded Status from "
                                f"{d.spelling or 'call'}() without the "
                                f"waiver comment; write `// srcheck: "
                                f"allow(C1) <reason>` on the call line")
                            break

        def visit_function(cursor):
            if rel in C2_ALLOWED_FILES:
                return
            pins: set[str] = set()
            derived: set[str] = set()
            for d in descendants(cursor):
                if d.kind == ck.VAR_DECL:
                    t = d.type.get_canonical().spelling
                    if any(p in t for p in PIN_TYPES):
                        pins.add(d.spelling)
                    elif pins and refs_any(d, pins):
                        if "*" in t or t == "auto":
                            derived.add(d.spelling)
            if not pins:
                return
            tracked = pins | derived
            for d in descendants(cursor):
                if not in_this_file(d):
                    continue
                if d.kind == ck.RETURN_STMT:
                    hit = refs_any(d, derived) or None
                    if hit is None:
                        for dd in descendants(d):
                            if dd.kind == ck.MEMBER_REF_EXPR and \
                                    dd.spelling == "data" and \
                                    refs_any(dd, pins):
                                hit = "data()"
                                break
                    if hit:
                        add(d.location.line, "C2",
                            "returning a page pointer derived from a "
                            "pinned frame; the pin dies with this scope")
                elif d.kind == ck.LAMBDA_EXPR:
                    hit = refs_any(d, tracked)
                    if hit:
                        add(d.location.line, "C2",
                            f"lambda captures pin-derived state ('{hit}') "
                            f"and may outlive the pin; invoke it in place "
                            f"or copy the bytes")
                elif d.kind == ck.BINARY_OPERATOR:
                    children = list(d.get_children())
                    if len(children) == 2 and \
                            children[0].kind == ck.MEMBER_REF_EXPR:
                        tokens = [t.spelling for t in d.get_tokens()]
                        if "=" in tokens:
                            hit = refs_any(children[1], tracked)
                            if hit:
                                add(d.location.line, "C2",
                                    f"pin-derived '{hit}' stored into "
                                    f"member '{children[0].spelling}', "
                                    f"outliving the pin's scope")

        def _unwrap(cursor):
            kids = list(cursor.get_children())
            while len(kids) == 1:
                cursor = kids[0]
                kids = list(cursor.get_children())
            return cursor

        def visit_function_c5(cursor):
            if rel in C5_ALLOWED_FILES:
                return
            guards: set[str] = set()
            views: set[str] = set()
            owners: set[str] = set()
            for d in descendants(cursor):
                if d.kind != ck.VAR_DECL:
                    continue
                t = d.type.get_canonical().spelling
                snapshotish = ("Snapshot" in t or "VersionState" in t)
                if any(g in t for g in C5_GUARD_TYPES):
                    guards.add(d.spelling)
                elif snapshotish and any(o in t for o in C5_OWNER_MARKERS):
                    owners.add(d.spelling)
                elif snapshotish:
                    views.add(d.spelling)
                elif owners and "*" in t and refs_any(d, owners):
                    views.add(d.spelling)  # laundered raw pointer
            if not (guards or views or owners):
                return
            escaping = guards | views

            def laundered(cursor) -> str | None:
                """A .get()/& that peels the raw pointer off an owner."""
                for d in descendants(cursor):
                    if d.kind == ck.MEMBER_REF_EXPR and \
                            d.spelling == "get":
                        for dd in descendants(d):
                            if dd.kind == ck.DECL_REF_EXPR and \
                                    dd.spelling in owners:
                                return dd.spelling
                    if d.kind == ck.UNARY_OPERATOR:
                        kids = list(d.get_children())
                        if kids:
                            hit = refs_any(kids[0], owners | views)
                            toks = [t.spelling for t in d.get_tokens()]
                            if hit and toks[:1] == ["&"]:
                                return hit
                return None

            for d in descendants(cursor):
                if not in_this_file(d):
                    continue
                if d.kind == ck.RETURN_STMT:
                    inner = _unwrap(d)
                    hit = None
                    if inner.kind == ck.DECL_REF_EXPR and \
                            inner.spelling in views:
                        hit = inner.spelling
                    else:
                        hit = laundered(d)
                    if hit:
                        add(d.location.line, "C5",
                            f"returning snapshot view '{hit}' that dies "
                            f"with its epoch guard at end of scope; "
                            f"return the owning handle (unique_ptr/"
                            f"shared_ptr) instead")
                elif d.kind == ck.LAMBDA_EXPR:
                    hit = refs_any(d, escaping)
                    if hit:
                        add(d.location.line, "C5",
                            f"lambda captures epoch-scoped state "
                            f"('{hit}') and may outlive the guard; invoke "
                            f"it in place or hand it an owning snapshot "
                            f"handle")
                elif d.kind == ck.BINARY_OPERATOR:
                    children = list(d.get_children())
                    if len(children) == 2 and \
                            children[0].kind == ck.MEMBER_REF_EXPR:
                        toks = [t.spelling for t in d.get_tokens()]
                        if "=" in toks:
                            hit = refs_any(children[1], views) or \
                                laundered(children[1])
                            if hit:
                                add(d.location.line, "C5",
                                    f"epoch-scoped snapshot '{hit}' "
                                    f"stored into member "
                                    f"'{children[0].spelling}', outliving "
                                    f"its guard; store an owning handle "
                                    f"(shared_ptr) instead")

        fn_kinds = {ck.FUNCTION_DECL, ck.CXX_METHOD, ck.CONSTRUCTOR,
                    ck.DESTRUCTOR, ck.FUNCTION_TEMPLATE}
        for cursor in descendants(tu.cursor):
            if not in_this_file(cursor):
                continue
            if cursor.kind == ck.COMPOUND_STMT:
                visit_compound(cursor)
            elif cursor.kind in fn_kinds and cursor.is_definition():
                visit_function(cursor)
                visit_function_c5(cursor)

        # The nodiscard anchor check stays textual (attributes are awkward
        # to read back through libclang).
        stripped = strip_comments_and_strings("\n".join(raw_lines))
        for lineno, line in enumerate(stripped.split("\n"), start=1):
            m = STATUS_CLASS_RE.match(line)
            if m and not NODISCARD_RE.search(line):
                add(lineno, "C1",
                    f"class {m.group(1)} is not [[nodiscard]]; the "
                    f"attribute is what makes every dropped error a "
                    f"compile error")
        return findings


# ---------------------------------------------------------------------------
# Discovery and driver (same shape as srlint).

def git_tracked(root: pathlib.Path) -> set[str]:
    try:
        out = subprocess.run(
            ["git", "ls-files", "--"] + [d for d in FIRST_PARTY_DIRS
                                         if (root / d).is_dir()],
            cwd=root, capture_output=True, text=True, check=True)
        return {line for line in out.stdout.splitlines()
                if line.endswith(SOURCE_SUFFIXES)}
    except (subprocess.CalledProcessError, FileNotFoundError):
        return set()


def walk_tree(root: pathlib.Path) -> set[str]:
    found = set()
    for d in FIRST_PARTY_DIRS:
        base = root / d
        if not base.is_dir():
            continue
        for p in base.rglob("*"):
            if p.suffix in SOURCE_SUFFIXES and p.is_file():
                found.add(p.relative_to(root).as_posix())
    return found


def discover(root: pathlib.Path) -> list[str]:
    files = git_tracked(root) or walk_tree(root)
    files = {f for f in files
             if not any(d in f for d in FIXTURE_DIRS)}
    return sorted(files)


class Analysis(NamedTuple):
    files: list[str]
    raw_by_rel: dict[str, list[str]]
    stripped_by_rel: dict[str, str]
    tokens_by_rel: dict[str, list[Token]]
    waivers_by_rel: dict[str, dict[int, dict[str, str]]]
    status_names: set[str]


def load_tree(root: pathlib.Path, files: list[str]) -> Analysis:
    raw_by_rel = {}
    stripped_by_rel = {}
    tokens_by_rel = {}
    waivers_by_rel = {}
    for rel in files:
        raw = (root / rel).read_text(encoding="utf-8", errors="replace")
        raw_by_rel[rel] = raw.splitlines()
        stripped = blank_preprocessor(strip_comments_and_strings(raw))
        stripped_by_rel[rel] = stripped
        tokens_by_rel[rel] = tokenize(stripped)
        waivers_by_rel[rel] = collect_waivers(raw_by_rel[rel])
    return Analysis(files, raw_by_rel, stripped_by_rel, tokens_by_rel,
                    waivers_by_rel, collect_status_fn_names(stripped_by_rel))


def run_checks(root: pathlib.Path, build_dir: pathlib.Path | None,
               analysis: Analysis, clang_engine: ClangEngine | None,
               wiring: bool = True) -> list[Finding]:
    findings: list[Finding] = []
    for rel in analysis.files:
        waivers = analysis.waivers_by_rel[rel]
        clang_done = False
        if clang_engine is not None:
            got = clang_engine.check_file(rel, analysis.raw_by_rel[rel],
                                          waivers, analysis.status_names)
            if got is not None:
                findings.extend(got)
                clang_done = True
        if not clang_done:
            findings.extend(check_c1(rel, analysis.stripped_by_rel[rel],
                                     analysis.tokens_by_rel[rel],
                                     analysis.raw_by_rel[rel],
                                     analysis.status_names, waivers))
            findings.extend(check_c2(rel, analysis.tokens_by_rel[rel],
                                     waivers))
            findings.extend(check_c5(rel, analysis.tokens_by_rel[rel],
                                     waivers))
        findings.extend(check_c3_file(rel, analysis.tokens_by_rel[rel],
                                      waivers))
    findings.extend(check_c4(root, analysis.files,
                             analysis.stripped_by_rel,
                             analysis.tokens_by_rel,
                             analysis.waivers_by_rel))
    program = parse_program(analysis)
    findings.extend(check_c6(root, analysis, program,
                             check_artifact=wiring))
    findings.extend(check_c7(analysis, program))
    findings.extend(check_c8(analysis, load_c8_baseline(root)))
    if wiring:
        findings.extend(check_c3_wiring(root, build_dir))
    return sorted(set(findings))


def pick_engine(requested: str) -> tuple[object | None, str]:
    cindex = load_libclang() if requested in ("auto", "clang") else None
    if requested == "clang" and cindex is None:
        print("srcheck.py: ERROR: --engine clang requested but python "
              "libclang is unavailable (pip install libclang, or apt "
              "python3-clang + libclang1)", file=sys.stderr)
        sys.exit(2)
    if requested == "auto" and cindex is None:
        print("srcheck.py: NOTICE: python libclang unavailable — C1/C2 run "
              "on the built-in tokenizer engine (reduced AST depth). CI "
              "runs the clang engine; install python3-clang + libclang1 "
              "to match locally.", file=sys.stderr)
    return cindex, ("clang" if cindex is not None else "textual")


def run_lint(root: pathlib.Path, build_dir: pathlib.Path | None,
             engine: str) -> int:
    cindex, engine_name = pick_engine(engine)
    files = discover(root)
    analysis = load_tree(root, files)
    clang_engine = ClangEngine(cindex, root, build_dir) if cindex else None
    findings = run_checks(root, build_dir, analysis, clang_engine)
    for f in findings:
        print(f"{f.rel}:{f.lineno}: [{f.rule}] {f.message}")
    print(f"srcheck.py [{engine_name} engine]: {len(files)} files, "
          f"{len(findings)} finding(s)")
    return 1 if findings else 0


def emit_lock_order(root: pathlib.Path,
                    out: pathlib.Path | None = None) -> int:
    files = discover(root)
    analysis = load_tree(root, files)
    edges = build_lock_graph(parse_program(analysis))
    path = out or (root / LOCK_ORDER_ARTIFACT)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(lock_order_json(edges), encoding="utf-8")
    print(f"srcheck.py: wrote {path} "
          f"({len(edges)} edge(s), "
          f"{len({a for a, _ in edges} | {b for _, b in edges})} "
          f"mutex(es))")
    return 0


def check_lock_order(root: pathlib.Path) -> int:
    files = discover(root)
    analysis = load_tree(root, files)
    program = parse_program(analysis)
    findings = sorted(set(check_c6(root, analysis, program)))
    for f in findings:
        print(f"{f.rel}:{f.lineno}: [{f.rule}] {f.message}")
    print(f"srcheck.py --check-lock-order: {len(findings)} finding(s)")
    return 1 if findings else 0


def list_waivers(root: pathlib.Path) -> int:
    files = discover(root)
    count = 0
    for rel in files:
        raw = (root / rel).read_text(encoding="utf-8", errors="replace")
        for lineno, line in enumerate(raw.splitlines(), start=1):
            for m in WAIVER_RE.finditer(line):
                print(f"{rel}:{lineno}: allow({m.group(1)}) — "
                      f"{m.group(2).strip()}")
                count += 1
    for key, reason in sorted(C4_STATIC_WAIVERS.items()):
        print(f"tools/srcheck.py: static C4 waiver {key} — {reason}")
        count += 1
    for key, reason in sorted(load_c8_baseline(root).items()):
        print(f"{C8_BASELINE_FILE}: C8 baseline {key} — {reason}")
        count += 1
    print(f"srcheck.py: {count} active waiver(s)")
    return 0


# ---------------------------------------------------------------------------
# Self-test: run the fixture tree, require findings == `srcheck-expect(Cn)`
# markers exactly (textual engine), and — when libclang is available — the
# clang engine must reproduce the same per-file rule coverage.

def run_self_test(engine: str) -> int:
    fixture_root = pathlib.Path(__file__).resolve().parent / \
        "srcheck_testdata"
    if not fixture_root.is_dir():
        print(f"srcheck.py: missing fixture tree {fixture_root}",
              file=sys.stderr)
        return 2
    files = sorted(walk_tree(fixture_root))
    analysis = load_tree(fixture_root, files)

    want: set[tuple[str, int, str]] = set()
    for rel in files:
        for lineno, line in enumerate(analysis.raw_by_rel[rel], start=1):
            for m in EXPECT_RE.finditer(line):
                want.add((rel, lineno, m.group(1)))

    got = {(f.rel, f.lineno, f.rule)
           for f in run_checks(fixture_root, None, analysis, None,
                               wiring=False)}
    ok = True
    for rel, lineno, rule in sorted(want - got):
        ok = False
        print(f"self-test: MISSED expected finding {rule} at "
              f"{rel}:{lineno}")
    for rel, lineno, rule in sorted(got - want):
        ok = False
        print(f"self-test: SPURIOUS finding {rule} at {rel}:{lineno}")
    for rule in RULES:
        if rule not in {r for _, _, r in want}:
            ok = False
            print(f"self-test: fixture tree seeds no {rule} violation")

    # C8 baseline mechanics, exercised with a synthetic baseline (the
    # fixture tree ships none, so the main run above already proved the
    # empty-baseline path): an entry suppresses its finding, an entry under
    # a no-baseline dir is rejected, and a stale entry is flagged.
    key_sup = "src/core/guard_coverage_bad.cc::LegacyCounters::value_"
    key_ban = ("src/engine/guard_coverage_banned_bad.cc::"
               "BannedCounters::value_")
    key_stale = "src/core/long_gone.cc::Ghost::member_"
    base = {key_sup: "pre-ratchet gap", key_ban: "should be rejected",
            key_stale: "file no longer exists"}
    got8 = list(check_c8(analysis, base))
    if any(f.rel == "src/core/guard_coverage_bad.cc" and
           "'value_'" in f.message for f in got8):
        ok = False
        print("self-test: C8 baseline entry failed to suppress "
              f"{key_sup}")
    if not any(key_ban in f.message and "banned" in f.message
               for f in got8):
        ok = False
        print("self-test: C8 baseline entry under src/engine/ was not "
              "rejected")
    if not any(key_stale in f.message and "stale" in f.message
               for f in got8):
        ok = False
        print("self-test: stale C8 baseline entry was not flagged")

    clang_note = "libclang not available, clang engine untested"
    if engine != "textual":
        cindex = load_libclang()
        if cindex is not None:
            clang_engine = ClangEngine(cindex, fixture_root, None)
            got_clang = {
                (f.rel, f.rule)
                for f in run_checks(fixture_root, None, analysis,
                                    clang_engine, wiring=False)}
            want_pairs = {(rel, rule) for rel, _, rule in want}
            for rel, rule in sorted(want_pairs - got_clang):
                ok = False
                print(f"self-test[clang]: MISSED {rule} in {rel}")
            for rel, rule in sorted(got_clang - want_pairs):
                ok = False
                print(f"self-test[clang]: SPURIOUS {rule} in {rel}")
            clang_note = "clang engine verified"
        elif engine == "clang":
            print("srcheck.py: ERROR: --engine clang but libclang "
                  "unavailable", file=sys.stderr)
            return 2
    print(f"srcheck.py --self-test: {len(files)} fixture files, "
          f"{len(want)} expected findings ({clang_note}), "
          f"{'PASS' if ok else 'FAIL'}")
    return 0 if ok else 1


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--root", type=pathlib.Path,
                        default=pathlib.Path(__file__).resolve().parent
                        .parent)
    parser.add_argument("--build-dir", type=pathlib.Path, default=None,
                        help="build tree holding compile_commands.json "
                             "(default: <root>/build if present)")
    parser.add_argument("--engine", choices=("auto", "clang", "textual"),
                        default="auto",
                        help="auto: clang AST when python libclang is "
                             "importable, else the built-in tokenizer")
    parser.add_argument("--self-test", action="store_true",
                        help="check every rule against srcheck_testdata/")
    parser.add_argument("--list-waivers", action="store_true",
                        help="print all active waivers and exit")
    parser.add_argument("--emit-lock-order", nargs="?", const="",
                        metavar="PATH", default=None,
                        help="regenerate the C6 lock-order artifact "
                             "(default: <root>/docs/lock_order.json)")
    parser.add_argument("--check-lock-order", action="store_true",
                        help="run only C6: cycle + artifact freshness "
                             "(the srcheck_lockorder_fresh ctest)")
    args = parser.parse_args()
    if args.self_test:
        return run_self_test(args.engine)
    if args.list_waivers:
        return list_waivers(args.root)
    if args.emit_lock_order is not None:
        out = pathlib.Path(args.emit_lock_order) if args.emit_lock_order \
            else None
        return emit_lock_order(args.root, out)
    if args.check_lock_order:
        return check_lock_order(args.root)
    return run_lint(args.root, args.build_dir, args.engine)


if __name__ == "__main__":
    sys.exit(main())
