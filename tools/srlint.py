#!/usr/bin/env python3
"""srlint: contract linter for project-specific API and layering rules.

tools/lint.py checks file *shape* (guards, include style); srlint checks
*contracts* that a plain compiler accepts but the project forbids:

  R1  deprecated-API calls: no member calls to ResetIoStats() or the
      removed NearestNeighbors()/NearestNeighborsBestFirst()/RangeSearch()
      wrappers, anywhere. The wrappers are gone from PointIndex; new code
      uses Search() and per-query QueryResult::io deltas, or GetIoStats()
      snapshots. There is no allowlist — a legitimate exception (e.g. the
      quiesced-reset contract check) carries an explicit waiver.
  R2  naked standard locks: no std::lock_guard / std::unique_lock /
      std::scoped_lock under src/ outside src/base/mutex.h. First-party
      state is locked through the annotated srtree::Mutex/MutexLock so
      -Wthread-safety sees every critical section; a naked std lock opts
      out of the analysis silently.
  R3  layering: src/engine/ and src/benchlib/ depend on the PointIndex
      interface (and the src/index/ factory), never on a concrete tree
      header. Including one re-couples the serving/bench layers to tree
      internals.
  R4  test registration: every file under tests/ that defines a gtest TEST
      must be listed in tests/CMakeLists.txt, otherwise it builds nowhere
      and silently stops running.
  R5  raw file streams on index images: no std::ifstream / std::ofstream /
      std::fstream under src/ outside src/storage/ (checksummed image I/O)
      and src/workload/ (text CSV datasets). Index images go through
      storage::AtomicWriteFile / IndexImageFile / ReadFileToString so every
      byte on disk is covered by the durability contract — a raw stream
      silently opts out of checksums, atomic rename, and fault injection.
  R6  direct page writes: no PageFile Write() member calls (receivers named
      *file*) under src/ outside src/storage/, where the copy-on-write
      commit protocol lives. Snapshot-isolated structures stage mutations
      with StageWrite() and publish them with Commit(); a direct Write()
      mutates a page in place, tearing any committed version that still
      references its buffer. The frozen-tree structures (no snapshot
      readers) waive their writer line explicitly.
  R7  kernel bypass: no free SquaredDistance()/Distance() calls in the
      tree directories. Those wrappers are deprecated scalar shims; tree
      code computes distances through GetDistanceKernel() — the batched
      SoA forms on the search path, the single-point forms elsewhere — so
      every distance benefits from the dispatched implementation and the
      partial-distance-pruning contract (src/geometry/kernel.h).
  R8  tier isolation: src/statictier/ never includes a dynamic-tree
      header. The static tier composes its delta through the PointIndex
      interface and the src/index/ factory; a concrete tree include would
      couple the read-optimized tier to one tree's internals and defeat
      the point of the tiered split.

A finding on one line can be waived in place with a comment naming the rule
and a reason, e.g.

    index.ResetIoStats();  // srlint: allow(R1) quiesced-reset contract check

Discovery is git-based (tracked files under the first-party dirs) and
compile_commands-aware: entries from <build>/compile_commands.json are
unioned in, so generated or not-yet-tracked sources still get linted.

Usage:
  tools/srlint.py [--root DIR] [--build-dir DIR]   lint the repo
  tools/srlint.py --self-test                      run against the fixture
                                                   tree in srlint_testdata/

Exit status: 0 clean, 1 findings, 2 usage/internal error.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import re
import subprocess
import sys
from typing import NamedTuple

FIRST_PARTY_DIRS = ("src", "tests", "bench", "tools", "examples")
SOURCE_SUFFIXES = (".h", ".hpp", ".cc", ".cpp")

WAIVER_RE = re.compile(r"srlint:\s*allow\((R[1-8])\)")
EXPECT_RE = re.compile(r"srlint-expect\((R[1-8])\)")  # self-test fixtures


class Finding(NamedTuple):
    rel: str
    lineno: int
    rule: str
    message: str


# --------------------------------------------------------------------------
# Tokenizer: blank out comments and string/char literals, preserving line
# structure and column positions, so the rule regexes never match inside
# either. Handles //, /* */, "..." with escapes, '...', and R"delim(...)".


def strip_comments_and_strings(text: str) -> str:
    out = []
    i, n = 0, len(text)
    NORMAL, LINE_COMMENT, BLOCK_COMMENT, STRING, CHAR = range(5)
    state = NORMAL
    raw_end = ""  # sentinel that terminates the current raw string
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state == NORMAL:
            if c == "/" and nxt == "/":
                state = LINE_COMMENT
                out.append("  ")
                i += 2
            elif c == "/" and nxt == "*":
                state = BLOCK_COMMENT
                out.append("  ")
                i += 2
            elif c == '"':
                # R"delim( opens a raw string; plain " a normal one.
                m = re.match(r'R"([^\s()\\]{0,16})\(', text[i - 1 : i + 18]) \
                    if i > 0 and text[i - 1] == "R" else None
                if m:
                    raw_end = ")" + m.group(1) + '"'
                    state = STRING
                    skip = 1 + len(m.group(1)) + 1  # "delim(
                    out.append(" " * skip)
                    i += skip
                else:
                    raw_end = ""
                    state = STRING
                    out.append(" ")
                    i += 1
            elif c == "'":
                state = CHAR
                out.append(" ")
                i += 1
            else:
                out.append(c)
                i += 1
        elif state == LINE_COMMENT:
            if c == "\n":
                state = NORMAL
                out.append(c)
            else:
                out.append(" ")
            i += 1
        elif state == BLOCK_COMMENT:
            if c == "*" and nxt == "/":
                state = NORMAL
                out.append("  ")
                i += 2
            else:
                out.append(c if c == "\n" else " ")
                i += 1
        elif state == STRING:
            if raw_end:
                if text.startswith(raw_end, i):
                    state = NORMAL
                    out.append(" " * len(raw_end))
                    i += len(raw_end)
                else:
                    out.append(c if c == "\n" else " ")
                    i += 1
            elif c == "\\" and nxt:
                out.append("  ")
                i += 2
            elif c == '"':
                state = NORMAL
                out.append(" ")
                i += 1
            else:
                out.append(c if c == "\n" else " ")
                i += 1
        else:  # CHAR
            if c == "\\" and nxt:
                out.append("  ")
                i += 2
            elif c == "'":
                state = NORMAL
                out.append(" ")
                i += 1
            else:
                out.append(" ")
                i += 1
    return "".join(out)


# --------------------------------------------------------------------------
# Rules. Each takes (rel, code_lines) with comments/strings stripped and
# yields Finding tuples; per-line waivers are applied by the caller.

# Member-call syntax only (obj.X( / ptr->X(), so the definitions of these
# methods — which the project must keep — never match.
R1_CALL_RE = re.compile(
    r"(?:\.|->)\s*(ResetIoStats|NearestNeighborsBestFirst|NearestNeighbors|"
    r"RangeSearch)\s*\("
)
# No allowlist: the wrappers were removed from PointIndex, so every R1 hit
# is either dead-API resurrection or needs an explicit waiver.
R1_ALLOWED_FILES: set[str] = set()

R2_LOCK_RE = re.compile(r"\bstd\s*::\s*(lock_guard|unique_lock|scoped_lock)\b")
R2_ALLOWED_FILES = {"src/base/mutex.h"}

R3_CONSUMER_DIRS = ("src/engine/", "src/benchlib/")
R3_TREE_DIRS = (
    "src/core/",
    "src/kdb/",
    "src/rstar/",
    "src/sstree/",
    "src/tvtree/",
    "src/vamsplit/",
    "src/xtree/",
)
R3_INCLUDE_RE = re.compile(r'^\s*#\s*include\s+"([^"]+)"')

R4_TEST_RE = re.compile(r"^\s*(TEST|TEST_F|TEST_P|TYPED_TEST)\s*\(")

R5_STREAM_RE = re.compile(r"\bstd\s*::\s*(ifstream|ofstream|fstream)\b")
R5_ALLOWED_DIRS = ("src/storage/", "src/workload/")

# Member Write() calls on a receiver whose name contains "file" — the
# PageFile idiom throughout the codebase (file_, file, image_file, ...).
# StageWrite()/WriteBack() and non-file receivers do not match.
R6_WRITE_RE = re.compile(r"\b\w*[Ff]ile\w*\s*(?:\.|->)\s*Write\s*\(")
R6_ALLOWED_DIRS = ("src/storage/",)

# Free-function calls (qualified or not): the lookbehind rejects member
# access (., ->) and longer identifiers, so sphere.MinDist(),
# cand.PruneDistance() and kernel_detail::ScalarSquaredL2() never match,
# while srtree::SquaredDistance() still does.
R7_CALL_RE = re.compile(r"(?<![\w.>])(SquaredDistance|Distance)\s*\(")
R7_TREE_DIRS = R3_TREE_DIRS

# The static tier talks to its dynamic delta through PointIndex and the
# factory only; the dirs it must never include are the dynamic trees'.
R8_CONSUMER_DIRS = ("src/statictier/",)
R8_TREE_DIRS = R3_TREE_DIRS


def check_r1(rel: str, lines: list[str]):
    if rel in R1_ALLOWED_FILES:
        return
    for lineno, line in enumerate(lines, start=1):
        for m in R1_CALL_RE.finditer(line):
            yield Finding(
                rel, lineno, "R1",
                f"call to deprecated {m.group(1)}(); use Search() / "
                f"GetIoStats() (see src/index/point_index.h)")


def check_r2(rel: str, lines: list[str]):
    if not rel.startswith("src/") or rel in R2_ALLOWED_FILES:
        return
    for lineno, line in enumerate(lines, start=1):
        m = R2_LOCK_RE.search(line)
        if m:
            yield Finding(
                rel, lineno, "R2",
                f"naked std::{m.group(1)}; lock first-party state with "
                f"srtree::MutexLock (src/base/mutex.h) so -Wthread-safety "
                f"sees the critical section")


def check_r3(rel: str, lines: list[str], raw_lines: list[str]):
    if not rel.startswith(R3_CONSUMER_DIRS):
        return
    # The stripped line proves the directive is real code (not commented
    # out), but the path itself is a string literal, so it is read from the
    # raw line.
    for lineno, (line, raw) in enumerate(zip(lines, raw_lines), start=1):
        if not re.match(r"^\s*#\s*include\b", line):
            continue
        m = R3_INCLUDE_RE.match(raw)
        if m and m.group(1).startswith(R3_TREE_DIRS):
            yield Finding(
                rel, lineno, "R3",
                f'include of tree header "{m.group(1)}"; this layer depends '
                f"on PointIndex / src/index/index_factory.h only")


def check_r4(rel: str, lines: list[str], registered: str):
    if not rel.startswith("tests/") or not rel.endswith((".cc", ".cpp")):
        return
    for lineno, line in enumerate(lines, start=1):
        if R4_TEST_RE.match(line):
            name = pathlib.PurePosixPath(rel).name
            if not re.search(rf"\b{re.escape(name)}\b", registered):
                yield Finding(
                    rel, lineno, "R4",
                    f"{name} defines tests but is not registered in "
                    f"tests/CMakeLists.txt, so they never run")
            return  # one finding per file is enough


def check_r5(rel: str, lines: list[str]):
    if not rel.startswith("src/") or rel.startswith(R5_ALLOWED_DIRS):
        return
    for lineno, line in enumerate(lines, start=1):
        m = R5_STREAM_RE.search(line)
        if m:
            yield Finding(
                rel, lineno, "R5",
                f"raw std::{m.group(1)} under src/; file I/O goes through "
                f"storage::AtomicWriteFile / IndexImageFile / "
                f"ReadFileToString (src/storage/image_io.h) so images keep "
                f"checksums and atomic-rename durability")


def check_r7(rel: str, lines: list[str]):
    if not rel.startswith(R7_TREE_DIRS):
        return
    for lineno, line in enumerate(lines, start=1):
        for m in R7_CALL_RE.finditer(line):
            yield Finding(
                rel, lineno, "R7",
                f"free {m.group(1)}() in tree code; compute distances "
                f"through GetDistanceKernel() — batched SoA forms on the "
                f"search path, SquaredL2()/L2() elsewhere "
                f"(src/geometry/kernel.h)")


def check_r8(rel: str, lines: list[str], raw_lines: list[str]):
    if not rel.startswith(R8_CONSUMER_DIRS):
        return
    for lineno, (line, raw) in enumerate(zip(lines, raw_lines), start=1):
        if not re.match(r"^\s*#\s*include\b", line):
            continue
        m = R3_INCLUDE_RE.match(raw)
        if m and m.group(1).startswith(R8_TREE_DIRS):
            yield Finding(
                rel, lineno, "R8",
                f'include of dynamic-tree header "{m.group(1)}"; the static '
                f"tier composes its delta through PointIndex / "
                f"src/index/index_factory.h only")


def check_r6(rel: str, lines: list[str]):
    if not rel.startswith("src/") or rel.startswith(R6_ALLOWED_DIRS):
        return
    for lineno, line in enumerate(lines, start=1):
        m = R6_WRITE_RE.search(line)
        if m:
            yield Finding(
                rel, lineno, "R6",
                "direct PageFile Write() outside src/storage/; stage "
                "mutations with StageWrite() and publish with Commit() so "
                "committed snapshots stay immutable (frozen-tree writers "
                "carry an explicit waiver)")


# --------------------------------------------------------------------------
# Discovery and driver.


def git_tracked(root: pathlib.Path) -> set[str]:
    try:
        out = subprocess.run(
            ["git", "ls-files", "--"] + [d for d in FIRST_PARTY_DIRS
                                         if (root / d).is_dir()],
            cwd=root, capture_output=True, text=True, check=True)
        return {line for line in out.stdout.splitlines()
                if line.endswith(SOURCE_SUFFIXES)}
    except (subprocess.CalledProcessError, FileNotFoundError):
        return set()


def walk_tree(root: pathlib.Path) -> set[str]:
    found = set()
    for d in FIRST_PARTY_DIRS:
        base = root / d
        if not base.is_dir():
            continue
        for p in base.rglob("*"):
            if p.suffix in SOURCE_SUFFIXES and p.is_file():
                found.add(p.relative_to(root).as_posix())
    return found


def compile_commands_files(root: pathlib.Path,
                           build_dir: pathlib.Path | None) -> set[str]:
    candidates = [build_dir] if build_dir else [root / "build"]
    for cand in candidates:
        db = cand / "compile_commands.json" if cand else None
        if db is None or not db.is_file():
            continue
        found = set()
        for entry in json.loads(db.read_text(encoding="utf-8")):
            path = pathlib.Path(entry["file"])
            if not path.is_absolute():
                path = pathlib.Path(entry["directory"]) / path
            try:
                rel = path.resolve().relative_to(root.resolve()).as_posix()
            except ValueError:
                continue  # outside the repo (system/third-party)
            if rel.startswith(tuple(d + "/" for d in FIRST_PARTY_DIRS)):
                found.add(rel)
        return found
    return set()


def discover(root: pathlib.Path,
             build_dir: pathlib.Path | None) -> list[str]:
    files = git_tracked(root) or walk_tree(root)
    files |= compile_commands_files(root, build_dir)
    # Fixture trees (ours and srcheck's) are linted only by their own
    # --self-test harnesses, never as repo code.
    files = {f for f in files
             if "srlint_testdata" not in f and "srcheck_testdata" not in f}
    return sorted(files)


def lint_files(root: pathlib.Path, files: list[str]) -> list[Finding]:
    cml = root / "tests" / "CMakeLists.txt"
    registered = cml.read_text(encoding="utf-8") if cml.is_file() else ""
    registered = strip_comments_and_strings_cmake(registered)

    findings: list[Finding] = []
    for rel in files:
        raw = (root / rel).read_text(encoding="utf-8", errors="replace")
        raw_lines = raw.splitlines()
        code_lines = strip_comments_and_strings(raw).splitlines()
        waived: dict[int, set[str]] = {}
        for lineno, line in enumerate(raw_lines, start=1):
            for m in WAIVER_RE.finditer(line):
                waived.setdefault(lineno, set()).add(m.group(1))
        for f in (*check_r1(rel, code_lines), *check_r2(rel, code_lines),
                  *check_r3(rel, code_lines, raw_lines),
                  *check_r4(rel, code_lines, registered),
                  *check_r5(rel, code_lines), *check_r6(rel, code_lines),
                  *check_r7(rel, code_lines),
                  *check_r8(rel, code_lines, raw_lines)):
            if f.rule not in waived.get(f.lineno, set()):
                findings.append(f)
    return sorted(findings)


def strip_comments_and_strings_cmake(text: str) -> str:
    return "\n".join(line.split("#", 1)[0] for line in text.splitlines())


def run_lint(root: pathlib.Path, build_dir: pathlib.Path | None) -> int:
    files = discover(root, build_dir)
    findings = lint_files(root, files)
    for f in findings:
        print(f"{f.rel}:{f.lineno}: [{f.rule}] {f.message}")
    print(f"srlint.py: {len(files)} files, {len(findings)} finding(s)")
    return 1 if findings else 0


# --------------------------------------------------------------------------
# Self-test: lint the fixture tree and require the findings to equal the
# `srlint-expect(Rn)` markers embedded in the fixtures, exactly. This checks
# both directions: every rule catches its seeded violation, and the waiver
# mechanism plus the allowlists suppress exactly what they should.


def run_self_test() -> int:
    fixture_root = pathlib.Path(__file__).resolve().parent / "srlint_testdata"
    if not fixture_root.is_dir():
        print(f"srlint.py: missing fixture tree {fixture_root}",
              file=sys.stderr)
        return 2
    files = sorted(walk_tree(fixture_root))
    got = {(f.rel, f.lineno, f.rule)
           for f in lint_files(fixture_root, files)}
    want = set()
    for rel in files:
        text = (fixture_root / rel).read_text(encoding="utf-8")
        for lineno, line in enumerate(text.splitlines(), start=1):
            for m in EXPECT_RE.finditer(line):
                want.add((rel, lineno, m.group(1)))
    ok = True
    for rel, lineno, rule in sorted(want - got):
        ok = False
        print(f"self-test: MISSED expected finding {rule} at {rel}:{lineno}")
    for rel, lineno, rule in sorted(got - want):
        ok = False
        print(f"self-test: SPURIOUS finding {rule} at {rel}:{lineno}")
    rules_seen = {rule for _, _, rule in want}
    for rule in ("R1", "R2", "R3", "R4", "R5", "R6", "R7", "R8"):
        if rule not in rules_seen:
            ok = False
            print(f"self-test: fixture tree seeds no {rule} violation")
    print(f"srlint.py --self-test: {len(files)} fixture files, "
          f"{len(want)} expected findings, "
          f"{'PASS' if ok else 'FAIL'}")
    return 0 if ok else 1


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--root", type=pathlib.Path,
                        default=pathlib.Path(__file__).resolve().parent.parent)
    parser.add_argument("--build-dir", type=pathlib.Path, default=None,
                        help="build tree holding compile_commands.json "
                             "(default: <root>/build if present)")
    parser.add_argument("--self-test", action="store_true",
                        help="lint the srlint_testdata fixture tree and "
                             "verify the findings match its markers")
    args = parser.parse_args()
    if args.self_test:
        return run_self_test()
    return run_lint(args.root, args.build_dir)


if __name__ == "__main__":
    sys.exit(main())
