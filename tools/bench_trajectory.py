#!/usr/bin/env python3
"""Maintain the repo-root BENCH_*.json perf trajectories (ROADMAP item #3).

A bench run writes a point-in-time snapshot to bench/snapshots/BENCH_<x>.json
(`--json`, see bench/snapshots/README.md). The *trajectory* is the repo-root
BENCH_<x>.json: a checked-in history of those snapshots, one entry appended
per PR that re-runs the bench, so reviewers can see how the numbers moved
across the project's life instead of only the latest value:

    {"bench": "BENCH_<x>", "history": [{"label": ..., "tables": [...]}, ...]}

`tools/bench_diff.py` understands both forms (a trajectory diffs as its most
recent entry).

Usage:
  bench_trajectory.py append SNAPSHOT TRAJECTORY --label LABEL
      Append SNAPSHOT's tables as a new history entry (creates the
      trajectory if missing; no-op when the latest entry is identical).
  bench_trajectory.py check SNAPSHOT TRAJECTORY
      Verify the trajectory's latest entry structurally matches SNAPSHOT.
  bench_trajectory.py check-all --root DIR
      For every DIR/bench/snapshots/BENCH_*.json there must be a DIR/
      BENCH_*.json trajectory whose latest entry structurally matches it,
      and every root trajectory must have a snapshot counterpart. This is
      the ctest freshness gate keeping the two in sync.

Exit status: 0 ok, 1 mismatch/missing, 2 usage or unreadable input.
"""

import argparse
import glob
import io
import json
import os
import sys

import bench_diff


def load_doc(path):
    try:
        with open(path, "r", encoding="utf-8") as f:
            return json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        sys.exit(f"bench_trajectory.py: cannot read {path}: {e}")


def load_snapshot_tables(path):
    doc = load_doc(path)
    tables = doc.get("tables")
    if not isinstance(tables, list):
        sys.exit(f"bench_trajectory.py: {path}: missing 'tables' list")
    return tables


def write_atomic(path, doc):
    tmp = path + ".tmp"
    with open(tmp, "w", encoding="utf-8") as f:
        json.dump(doc, f, indent=1)
        f.write("\n")
    os.replace(tmp, path)


def do_append(args):
    tables = load_snapshot_tables(args.snapshot)
    if os.path.exists(args.trajectory):
        doc = load_doc(args.trajectory)
        history = doc.get("history")
        if not isinstance(history, list):
            sys.exit(f"bench_trajectory.py: {args.trajectory}: "
                     "missing 'history' list")
    else:
        doc = {"bench": os.path.splitext(
            os.path.basename(args.trajectory))[0], "history": []}
        history = doc["history"]
    if history and history[-1].get("tables") == tables:
        print(f"{args.trajectory}: latest entry already identical, no-op")
        return 0
    history.append({"label": args.label, "tables": tables})
    write_atomic(args.trajectory, doc)
    print(f"{args.trajectory}: appended entry '{args.label}' "
          f"({len(history)} total)")
    return 0


def structural_match(snapshot_path, trajectory_path, out):
    base = load_snapshot_tables(snapshot_path)
    doc = load_doc(trajectory_path)
    history = doc.get("history")
    if not isinstance(history, list) or not history:
        print(f"MISSING {trajectory_path}: empty or missing 'history'",
              file=out)
        return False
    latest = history[-1].get("tables")
    if not isinstance(latest, list):
        print(f"MISSING {trajectory_path}: latest entry has no 'tables'",
              file=out)
        return False
    sink = io.StringIO()
    structural, _ = bench_diff.diff_tables(base, latest, sink)
    if structural:
        print(f"STALE {trajectory_path} vs {snapshot_path}:", file=out)
        for line in structural:
            print(f"  {line}", file=out)
        return False
    return True


def do_check(args):
    ok = structural_match(args.snapshot, args.trajectory, sys.stdout)
    if ok:
        print("trajectory is fresh")
    return 0 if ok else 1


def do_check_all(args):
    root = os.path.abspath(args.root)
    snapshots = sorted(
        glob.glob(os.path.join(root, "bench", "snapshots", "BENCH_*.json")))
    trajectories = sorted(glob.glob(os.path.join(root, "BENCH_*.json")))
    failures = 0
    seen = set()
    for snapshot in snapshots:
        name = os.path.basename(snapshot)
        seen.add(name)
        trajectory = os.path.join(root, name)
        if not os.path.exists(trajectory):
            print(f"MISSING {name}: snapshot has no repo-root trajectory "
                  f"(seed it with bench_trajectory.py append)")
            failures += 1
            continue
        if not structural_match(snapshot, trajectory, sys.stdout):
            failures += 1
    for trajectory in trajectories:
        name = os.path.basename(trajectory)
        if name not in seen:
            print(f"ORPHAN {name}: repo-root trajectory has no "
                  f"bench/snapshots counterpart")
            failures += 1
    total = len(snapshots)
    if failures == 0:
        print(f"all {total} trajectories fresh")
        return 0
    print(f"{failures} stale/missing of {total} snapshot(s)")
    return 1


def main(argv):
    parser = argparse.ArgumentParser(
        description="maintain repo-root bench trajectories")
    sub = parser.add_subparsers(dest="command", required=True)

    p_append = sub.add_parser("append")
    p_append.add_argument("snapshot")
    p_append.add_argument("trajectory")
    p_append.add_argument("--label", required=True,
                          help="history entry label (e.g. PR or commit)")
    p_append.set_defaults(func=do_append)

    p_check = sub.add_parser("check")
    p_check.add_argument("snapshot")
    p_check.add_argument("trajectory")
    p_check.set_defaults(func=do_check)

    p_all = sub.add_parser("check-all")
    p_all.add_argument("--root", default=".")
    p_all.set_defaults(func=do_check_all)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
