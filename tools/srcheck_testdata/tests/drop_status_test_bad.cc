// C1 negative fixture under tests/: discovery covers test trees, so a
// Status dropped inside a TEST body is caught like any src/ call site.

#define TEST(suite, name) void suite##_##name()

class [[nodiscard]] Status {
 public:
  bool ok() const { return true; }
};

Status Prepare();

TEST(DropStatusTest, DiscardsPrepare) {
  Prepare();  // srcheck-expect(C1)
}
