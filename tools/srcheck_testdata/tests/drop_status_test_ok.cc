// C1 positive fixture under tests/: the Status is checked, and the one
// sanctioned drop carries an explicit waiver. Zero findings.

#define TEST(suite, name) void suite##_##name()

class [[nodiscard]] Status {
 public:
  bool ok() const { return true; }
};

Status Prepare();

TEST(DropStatusTest, HandlesPrepare) {
  const Status status = Prepare();
  if (!status.ok()) {
    return;
  }
  (void)Prepare();  // srcheck: allow(C1) teardown best-effort re-run
}
