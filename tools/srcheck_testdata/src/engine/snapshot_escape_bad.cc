// C5 negative fixture: epoch/snapshot lifetime escapes. Every marked
// line must be flagged — a snapshot view (raw VersionState pointer, a
// by-value Snapshot, state behind an EpochGuard) dies with its guard, so
// returning it, stashing it in a member, or deferring it in a lambda is
// a use-after-reclaim in the making.

class Index;

class EpochGuard {
 public:
  explicit EpochGuard(Index& index);
  unsigned long announced_epoch() const;
};

struct VersionState {
  unsigned long version;
};

class Snapshot {
 public:
  const VersionState* state() const;
};

class Index {
 public:
  Snapshot AcquireSnapshot(EpochGuard& guard);
  const VersionState* Peek() const;
};

template <typename T>
void Use(const T& value);

class EscapingReader {
 public:
  const VersionState* LeakReturn(Index& index);
  Snapshot LeakCopy(Index& index);
  void LeakMember(Index& index);
  void LeakLambda(Index& index);

 private:
  const VersionState* state_ = nullptr;
};

// The canonical escape: the raw view outlives whatever pinned it.
const VersionState* EscapingReader::LeakReturn(Index& index) {
  const VersionState* state = index.Peek();
  return state;  // srcheck-expect(C5)
}

// Copying the view object does not copy the guard that keeps it alive.
Snapshot EscapingReader::LeakCopy(Index& index) {
  EpochGuard guard(index);
  auto snap = index.AcquireSnapshot(guard);
  return snap;  // srcheck-expect(C5)
}

// Member store: every later read through state_ races reclamation.
void EscapingReader::LeakMember(Index& index) {
  const VersionState* state = index.Peek();
  state_ = state;  // srcheck-expect(C5)
}

// Deferred lambda: the guard is gone by the time the callback runs.
void EscapingReader::LeakLambda(Index& index) {
  EpochGuard guard(index);
  auto deferred = [&guard]() { return guard.announced_epoch(); };  // srcheck-expect(C5)
  Use(deferred);
}
