// C5 positive fixture: sanctioned snapshot lifetimes. srcheck must
// report zero findings — views are consumed inside their scope, and the
// only thing that crosses a scope boundary is an owning handle (which
// carries its guard with it, exactly like PageGuard does for pins).

template <typename T>
class shared_ptr {
 public:
  T* get() const;
  const T& operator*() const;
};

struct VersionState {
  unsigned long version;
};

class Index {
 public:
  shared_ptr<const VersionState> Share() const;
};

// The raw view exists only between acquire and the value read.
unsigned long UseWithinScope(Index& index) {
  shared_ptr<const VersionState> state = index.Share();
  const VersionState* view = state.get();
  unsigned long version = view->version;
  return version;
}

// Returning the owning handle transfers the guard — the sanctioned way
// to extend a snapshot's lifetime across a call boundary.
shared_ptr<const VersionState> PassOwnership(Index& index) {
  shared_ptr<const VersionState> state = index.Share();
  return state;
}

class CachingReader {
 public:
  void Adopt(Index& index);

 private:
  shared_ptr<const VersionState> state_;
};

// Storing the owning handle in a member keeps the pinned version alive
// for as long as the member does; nothing dangles.
void CachingReader::Adopt(Index& index) {
  shared_ptr<const VersionState> state = index.Share();
  state_ = state;
}
