// C8 negative fixture under src/engine/, where the ratchet accepts no
// baseline entries at all: the self-test plants
// src/engine/guard_coverage_banned_bad.cc::BannedCounters::value_ in a
// synthetic baseline and expects a "banned" finding, not a suppression.
// In the normal self-test pass (empty baseline) value_ is an ordinary
// unguarded-member finding.

#define GUARDED_BY(x)

class Mutex {};

class BannedCounters {
 public:
  void Bump();

 private:
  Mutex mu_;
  unsigned long total_ GUARDED_BY(mu_) = 0;
  unsigned long value_ = 0;  // srcheck-expect(C8)
};
