// C6 negative fixture, half B: acquires beta_mu_ and then — through
// PinAlpha(), so the cross-TU interprocedural edge is what closes the
// cycle — alpha_mu_. Together with src/core/lock_cycle_a_bad.cc (which
// nests alpha before beta) this is the classic AB/BA deadlock.

class Mutex {};

class MutexLock {
 public:
  explicit MutexLock(Mutex& mu);
};

Mutex alpha_mu_;
Mutex beta_mu_;

void PinAlpha() {
  MutexLock lock(alpha_mu_);
}

void BetaThenAlpha() {
  MutexLock lock(beta_mu_);
  PinAlpha();  // srcheck-expect(C6)
}
