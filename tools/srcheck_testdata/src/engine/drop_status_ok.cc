// C1 positive fixture: every sanctioned way of consuming a Status.
// srcheck must report zero findings for this file.

class [[nodiscard]] Status {
 public:
  bool ok() const { return true; }
};

Status DoWork();
Status Cleanup();

int Caller() {
  const Status status = DoWork();  // bound to a variable: handled
  if (!status.ok()) {
    return 1;
  }
  if (!DoWork().ok()) {  // consumed inline
    return 2;
  }
  // Deliberate discard in the project's greppable waiver form.
  (void)Cleanup();  // srcheck: allow(C1) best-effort cleanup on shutdown
  return 0;
}
