// C1 negative fixture: every way of dropping a Status on the floor.
// Each marked line must be flagged by srcheck's C1 rule.

class [[nodiscard]] Status {
 public:
  bool ok() const { return true; }
};

Status DoWork();
Status Cleanup();

struct Writer {
  Status Save(int image);
};

int Caller(Writer& writer) {
  DoWork();  // srcheck-expect(C1)
  (void)Cleanup();  // srcheck-expect(C1)
  writer.Save(42);  // srcheck-expect(C1)
  return 0;
}
