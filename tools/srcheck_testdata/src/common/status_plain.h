// C1 anchor fixture: a Status class that forgot its [[nodiscard]].
//
// The real src/common/status.h declares `class [[nodiscard]] Status` so
// that *every* function returning one is covered without per-function
// annotations. If someone removes the attribute, the compiler silently
// stops enforcing the discipline — this fixture proves srcheck catches
// exactly that regression.

#ifndef SRTREE_TOOLS_SRCHECK_TESTDATA_SRC_COMMON_STATUS_PLAIN_H_
#define SRTREE_TOOLS_SRCHECK_TESTDATA_SRC_COMMON_STATUS_PLAIN_H_

class Status {  // srcheck-expect(C1)
 public:
  bool ok() const { return true; }
};

#endif  // SRTREE_TOOLS_SRCHECK_TESTDATA_SRC_COMMON_STATUS_PLAIN_H_
