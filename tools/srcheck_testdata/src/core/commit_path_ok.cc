// C7 positive fixture: every path that stages a write resolves it
// exactly once — Commit on success, Rollback on the bail-out path —
// always under writer_mu_. Also exercises the transitive case: a helper
// that only stages is fine as long as every caller completes the
// protocol. Zero findings.

class Mutex {};

class MutexLock {
 public:
  explicit MutexLock(Mutex& mu);
};

class PageStore {
 public:
  void StageWrite(int page_id, int payload);
  void Commit();
  void Rollback();
};

Mutex writer_mu_;

bool WriteCommitting(PageStore& store, bool flaky) {
  MutexLock lock(writer_mu_);
  store.StageWrite(1, 41);
  if (flaky) {
    store.Rollback();
    return false;
  }
  store.Commit();
  return true;
}

// Stages on behalf of its caller; resolution is the caller's job.
void StageThrough(PageStore& store) {
  store.StageWrite(2, 42);
}

void StageViaHelper(PageStore& store) {
  MutexLock lock(writer_mu_);
  StageThrough(store);
  store.Commit();
}
