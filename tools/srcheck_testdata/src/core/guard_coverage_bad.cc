// C8 negative fixture: a mutex-owning class with members the checker
// must reject — one with no annotation at all, and one whose
// UNGUARDED_OK carries an empty contract string (a waiver with no
// stated reason is not a contract). LegacyCounters::value_ doubles as
// the key the self-test plants in a synthetic ratchet baseline to prove
// suppression works.

#define GUARDED_BY(x)
#define UNGUARDED_OK(x)

class Mutex {};

class LegacyCounters {
 public:
  void Bump();

 private:
  Mutex mu_;
  unsigned long hits_ GUARDED_BY(mu_) = 0;
  unsigned long value_ = 0;  // srcheck-expect(C8)
  unsigned long skipped_ UNGUARDED_OK("") = 0;  // srcheck-expect(C8)
};
