// C8 positive fixture: every compliance path through the ladder, plus a
// mutex-free class the rule must ignore entirely. Zero findings.

#define GUARDED_BY(x)
#define UNGUARDED_OK(x)

class Mutex {};

template <typename T>
struct atomic {
  T value;
};

class CoveredCounters {
 public:
  void Bump();

 private:
  mutable Mutex mu_;
  unsigned long guarded_ GUARDED_BY(mu_) = 0;
  atomic<unsigned long> dropped_;
  const unsigned long limit_ = 64;
  unsigned long scratch_ UNGUARDED_OK(
      "bench-only scratch; harness runs single-threaded") = 0;
};

// No mutex member, so C8 does not apply: plain mutable members are the
// caller's problem, exactly like the frozen-tree contract.
class PlainPair {
 public:
  unsigned long first = 0;
  unsigned long second = 0;
};
