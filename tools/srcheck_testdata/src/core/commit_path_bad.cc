// C7 negative fixture: staged writes that never reach exactly one
// Commit/Rollback, plus a Commit published without the writer mutex.
// (Lives under src/core/ because the real commit protocol inside
// src/storage/ is exempt — it IS the implementation being protected.)

class Mutex {};

class MutexLock {
 public:
  explicit MutexLock(Mutex& mu);
};

class PageStore {
 public:
  void StageWrite(int page_id, int payload);
  void Commit();
  void Rollback();
};

Mutex writer_mu_;

// Early return abandons the staged page: neither committed nor rolled
// back, so the next writer inherits a half-built shadow tree.
bool WriteAbandoning(PageStore& store, bool flaky) {
  MutexLock lock(writer_mu_);
  store.StageWrite(1, 41);
  if (flaky) {
    return false;  // srcheck-expect(C7)
  }
  store.Commit();
  return true;
}

// Commit without writer_mu_ held: racing writers can interleave their
// publication steps.
void PublishUnlocked(PageStore& store) {
  store.StageWrite(2, 42);
  store.Commit();  // srcheck-expect(C7)
}

// Stages and simply forgets: no resolution on any path.
void StageForgetting(PageStore& store) {
  MutexLock lock(writer_mu_);
  store.StageWrite(3, 43);  // srcheck-expect(C7)
}
