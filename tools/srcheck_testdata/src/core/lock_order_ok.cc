// C6 positive fixture: two mutexes nested in one consistent global
// order (outer before inner), both directly and through a helper call.
// A DAG is exactly what the rule wants — zero findings.

class Mutex {};

class MutexLock {
 public:
  explicit MutexLock(Mutex& mu);
};

Mutex outer_mu_;
Mutex inner_mu_;

void TouchInner() {
  MutexLock lock(inner_mu_);
}

void OuterThenInnerDirect() {
  MutexLock outer(outer_mu_);
  MutexLock inner(inner_mu_);
}

void OuterThenInnerViaCall() {
  MutexLock outer(outer_mu_);
  TouchInner();
}
