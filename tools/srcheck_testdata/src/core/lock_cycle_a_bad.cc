// C6 negative fixture, half A: acquires alpha_mu_ then beta_mu_. On its
// own this file is fine — the cycle only exists together with
// src/engine/lock_cycle_b_bad.cc, which nests the same two mutexes in
// the opposite order (through a helper call, so the interprocedural
// edge is exercised too). C6 is a whole-program rule: both sites of the
// cycle must be flagged.

class Mutex {};

class MutexLock {
 public:
  explicit MutexLock(Mutex& mu);
};

Mutex alpha_mu_;
Mutex beta_mu_;

void AlphaThenBeta() {
  MutexLock alpha(alpha_mu_);
  MutexLock beta(beta_mu_);  // srcheck-expect(C6)
}
