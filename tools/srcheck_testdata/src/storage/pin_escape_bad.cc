// C2 negative fixture: raw pointers derived from a pin guard escaping
// the guard's scope. Each marked line must be flagged.
//
// The member-store case (CacheBytes) is the canonical bug this rule
// exists for: the pointer is stashed in `cached_`, the PageGuard is
// destroyed at end of function, and every later read through `cached_`
// is a use-after-evict race.

class Pool;

class PageGuard {
 public:
  const char* data() const;
};

class ScopedPin {
 public:
  ScopedPin(Pool& pool, int id);
  const char* data() const;
};

class Pool {
 public:
  PageGuard Acquire(int id);
};

template <typename T>
void Use(const T& value);

class LeakyReader {
 public:
  const char* ReadEscaping(Pool& pool);
  void CacheBytes(Pool& pool);
  void DeferRead(Pool& pool);

 private:
  const char* cached_ = nullptr;
};

const char* LeakyReader::ReadEscaping(Pool& pool) {
  PageGuard guard = pool.Acquire(7);
  const char* bytes = guard.data();
  return bytes;  // srcheck-expect(C2)
}

void LeakyReader::CacheBytes(Pool& pool) {
  PageGuard guard = pool.Acquire(9);
  cached_ = guard.data();  // srcheck-expect(C2)
}

void LeakyReader::DeferRead(Pool& pool) {
  PageGuard guard = pool.Acquire(11);
  auto deferred = [&guard]() { return guard.data(); };  // srcheck-expect(C2)
  Use(deferred);
}
