// C3 positive fixture: the same conversions spelled out explicitly.
// srcheck must report zero findings — a static_cast documents that the
// narrowing is intentional and bounds-checked by the author.

struct ByteBuffer {
  unsigned long size() const;
};

unsigned int CountBytes(const ByteBuffer& buffer) {
  unsigned int n = static_cast<unsigned int>(buffer.size());
  return n;
}

int TruncateOffset(unsigned long total) {
  int offset = static_cast<int>(total);
  return offset;
}

unsigned long KeepWide(const ByteBuffer& buffer) {
  unsigned long n = buffer.size();  // no narrowing: types match
  return n;
}
