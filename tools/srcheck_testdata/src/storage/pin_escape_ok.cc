// C2 positive fixture: legitimate pin usage. srcheck must report zero
// findings for this file — every pointer derived from a guard stays
// inside the guard's scope, and the only thing that crosses a scope
// boundary is the guard object itself (which carries the pin with it).

class Pool;

class PageGuard {
 public:
  const char* data() const;
};

class ScopedPin {
 public:
  ScopedPin(Pool& pool, int id);
  const char* data() const;
};

class Pool {
 public:
  PageGuard Acquire(int id);
};

// Pointer consumed within the pin's scope; only a value escapes.
unsigned CountPrefix(Pool& pool) {
  PageGuard guard = pool.Acquire(3);
  const char* bytes = guard.data();
  unsigned count = 0;
  for (int i = 0; i < 8; ++i) {
    if (bytes[i] != 0) {
      ++count;
    }
  }
  return count;
}

// Lambda reads through the pin but is invoked immediately, so it cannot
// outlive the guard.
unsigned CountNonZero(Pool& pool) {
  ScopedPin pin(pool, 5);
  unsigned count = 0;
  [&]() {
    const char* bytes = pin.data();
    for (int i = 0; i < 4; ++i) {
      if (bytes[i] != 0) {
        ++count;
      }
    }
  }();
  return count;
}

// Returning the guard itself transfers the pin — that is the sanctioned
// way to extend a page's lifetime across a call boundary.
PageGuard PassThrough(Pool& pool) {
  PageGuard guard = pool.Acquire(1);
  return guard;
}
