// C4 fixture declarations: a stats class with one member correctly
// GUARDED_BY its mutex, one missing the annotation, and one covered by
// an in-line waiver at the write site (see page_cache_stats.cc).

#ifndef SRTREE_TOOLS_SRCHECK_TESTDATA_SRC_STORAGE_PAGE_CACHE_STATS_H_
#define SRTREE_TOOLS_SRCHECK_TESTDATA_SRC_STORAGE_PAGE_CACHE_STATS_H_

#define GUARDED_BY(x)

class Mutex {};

class MutexLock {
 public:
  explicit MutexLock(Mutex& mu);
};

class PageCacheStats {
 public:
  void RecordHit();
  void RecordMiss();
  void ResetForTest();

 private:
  Mutex mu_;
  unsigned long hits_ = 0;    // srcheck-expect(C8)
  unsigned long misses_ GUARDED_BY(mu_) = 0;
  unsigned long resets_ = 0;  // srcheck-expect(C8)
};

#endif  // SRTREE_TOOLS_SRCHECK_TESTDATA_SRC_STORAGE_PAGE_CACHE_STATS_H_
