// C4 fixture: writes to members under a held MutexLock.
//
//  - hits_   is written under mu_ but not GUARDED_BY anything -> finding
//  - misses_ is GUARDED_BY(mu_) in the header                 -> clean
//  - resets_ is unguarded but the write carries an in-line
//    waiver with a reason                                     -> clean

#include "tools/srcheck_testdata/src/storage/page_cache_stats.h"

void PageCacheStats::RecordHit() {
  MutexLock lock(mu_);
  hits_ += 1;  // srcheck-expect(C4)
}

void PageCacheStats::RecordMiss() {
  MutexLock lock(mu_);
  misses_ += 1;
}

void PageCacheStats::ResetForTest() {
  MutexLock lock(mu_);
  resets_ = 0;  // srcheck: allow(C4) test-only reset before workers spawn
}
