// C3 negative fixture: implicit narrowing initializations in storage
// code. Each marked line must be flagged. (In the real tree these are
// hard compile errors — the storage TUs build with
// -Werror=conversion -Werror=sign-conversion; srcheck's C3 rule is the
// backstop that verifies the wiring and catches new files.)

struct ByteBuffer {
  unsigned long size() const;
};

unsigned int CountBytes(const ByteBuffer& buffer) {
  unsigned int n = buffer.size();  // srcheck-expect(C3)
  return n;
}

int TruncateOffset(unsigned long total) {
  int offset = total;  // srcheck-expect(C3)
  return offset;
}
