# ctest driver for the srtree_cli pipeline: generate a dataset, index it,
# check the index, and run a query. Any non-zero exit fails the test.

function(run_step)
  execute_process(COMMAND ${ARGV} RESULT_VARIABLE rc)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "step failed (${rc}): ${ARGV}")
  endif()
endfunction()

set(csv ${WORK_DIR}/cli_test_data.csv)
set(idx ${WORK_DIR}/cli_test_index.srt)

run_step(${CLI} generate --kind real --n 2000 --dim 16 --seed 5
         --output ${csv})
run_step(${CLI} build --input ${csv} --index ${idx})
run_step(${CLI} stats --index ${idx})
run_step(${CLI} query --index ${idx} --k 5 --point
         0.0625,0.0625,0.0625,0.0625,0.0625,0.0625,0.0625,0.0625,0.0625,0.0625,0.0625,0.0625,0.0625,0.0625,0.0625,0.0625)
run_step(${CLI} range --index ${idx} --radius 0.5 --point
         0.0625,0.0625,0.0625,0.0625,0.0625,0.0625,0.0625,0.0625,0.0625,0.0625,0.0625,0.0625,0.0625,0.0625,0.0625,0.0625)
