// Content-based image retrieval — the paper's motivating application
// (Section 1): index 16-d color histograms of an image collection and
// answer "find images similar to this one" with k-NN queries.
//
// The collection is synthetic (see workload/histogram.h); the point of the
// example is the workflow and the I/O advantage over a sequential scan.
//
//   $ ./image_search [--images 20000] [--k 10]

#include <cstdio>

#include "src/common/flags.h"
#include "src/core/sr_tree.h"
#include "src/index/brute_force.h"
#include "src/workload/histogram.h"
#include "src/workload/queries.h"

int main(int argc, char** argv) {
  using namespace srtree;

  FlagParser parser;
  parser.AddInt("images", 20000, "number of images in the collection");
  parser.AddInt("k", 10, "similar images to retrieve");
  parser.AddInt("seed", 42, "random seed for the synthetic collection");
  const Status flag_status = parser.Parse(argc, argv);
  if (flag_status.IsNotFound()) return 0;
  if (!flag_status.ok()) {
    std::fprintf(stderr, "%s\n", flag_status.ToString().c_str());
    return 1;
  }
  const size_t num_images = static_cast<size_t>(parser.GetInt("images"));
  const int k = static_cast<int>(parser.GetInt("k"));

  // "Extract" color histograms for the collection.
  HistogramConfig config;
  config.n = num_images;
  config.dim = 16;
  config.seed = static_cast<uint64_t>(parser.GetInt("seed"));
  const Dataset features = MakeHistogramDataset(config);
  std::printf("collection: %zu images, %d-bin color histograms\n",
              features.size(), features.dim());

  // Index them in an SR-tree. Each leaf entry carries a 512-byte data area
  // — in a real system the image's metadata record.
  SRTree::Options options;
  options.dim = features.dim();
  SRTree index(options);
  for (size_t i = 0; i < features.size(); ++i) {
    const Status status =
        index.Insert(features.point(i), static_cast<uint32_t>(i));
    if (!status.ok()) {
      std::fprintf(stderr, "indexing failed: %s\n",
                    status.ToString().c_str());
      return 1;
    }
  }
  const TreeStats stats = index.GetTreeStats();
  std::printf("SR-tree built: height %d, %llu nodes, %llu leaves\n",
              stats.height, static_cast<unsigned long long>(stats.node_count),
              static_cast<unsigned long long>(stats.leaf_count));

  // Pick a query image and retrieve its k most similar images. The
  // QueryResult carries the query's own I/O delta, so no counter reset is
  // needed before measuring.
  const PointView query_image = features.point(features.size() / 2);
  const QueryResult found =
      index.Search(query_image, QuerySpec::Knn(k + 1));  // first hit = query
  const std::vector<Neighbor>& similar = found.neighbors;
  const uint64_t tree_reads = found.io.reads;

  std::printf("\n%d images most similar to image #%zu:\n", k,
              features.size() / 2);
  for (size_t i = 1; i < similar.size(); ++i) {  // skip the query itself
    std::printf("  image #%-7u histogram distance %.5f\n", similar[i].oid,
                similar[i].distance);
  }

  // The same query answered by a sequential scan, for the I/O comparison.
  BruteForceIndex::Options scan_options;
  scan_options.dim = features.dim();
  BruteForceIndex scan(scan_options);
  const Status loaded =
      scan.BulkLoad(features.ToPoints(), features.SequentialOids());
  if (!loaded.ok()) {
    std::printf("scan build failed: %s\n", loaded.ToString().c_str());
    return 1;
  }
  const QueryResult scanned =
      scan.Search(query_image, QuerySpec::Knn(k + 1));

  std::printf("\ndisk blocks read: SR-tree %llu vs sequential scan %llu "
              "(%.1fx fewer)\n",
              static_cast<unsigned long long>(tree_reads),
              static_cast<unsigned long long>(scanned.io.reads),
              static_cast<double>(scanned.io.reads) /
                  static_cast<double>(tree_reads));
  return 0;
}
