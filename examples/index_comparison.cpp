// Side-by-side comparison of all five index structures on a workload of
// your choosing — a miniature of the paper's evaluation you can point at
// your own parameters.
//
//   $ ./index_comparison --n 10000 --dim 16 --workload real --k 21

#include <cstdio>

#include "src/benchlib/experiment.h"
#include "src/benchlib/report.h"
#include "src/common/flags.h"
#include "src/workload/cluster.h"
#include "src/workload/histogram.h"
#include "src/workload/queries.h"
#include "src/workload/uniform.h"

namespace {

srtree::Dataset MakeData(const std::string& workload, size_t n, int dim,
                         uint64_t seed) {
  if (workload == "uniform") {
    return srtree::MakeUniformDataset(n, dim, seed);
  }
  if (workload == "cluster") {
    srtree::ClusterConfig config;
    config.num_clusters = 100;
    config.points_per_cluster = (n + 99) / 100;
    config.dim = dim;
    config.seed = seed;
    return srtree::MakeClusterDataset(config);
  }
  srtree::HistogramConfig config;
  config.n = n;
  config.dim = dim;
  config.seed = seed;
  return srtree::MakeHistogramDataset(config);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace srtree;

  FlagParser parser;
  parser.AddInt("n", 10000, "number of points");
  parser.AddInt("dim", 16, "dimensionality");
  parser.AddString("workload", "real", "uniform | cluster | real");
  parser.AddInt("k", 21, "nearest neighbors per query");
  parser.AddInt("queries", 100, "number of query trials");
  parser.AddInt("seed", 1, "random seed");
  const Status flag_status = parser.Parse(argc, argv);
  if (flag_status.IsNotFound()) return 0;
  if (!flag_status.ok()) {
    std::fprintf(stderr, "%s\n", flag_status.ToString().c_str());
    return 1;
  }

  const size_t n = static_cast<size_t>(parser.GetInt("n"));
  const int dim = static_cast<int>(parser.GetInt("dim"));
  const uint64_t seed = static_cast<uint64_t>(parser.GetInt("seed"));
  const Dataset data = MakeData(parser.GetString("workload"), n, dim, seed);
  const std::vector<Point> queries = SampleQueriesFromDataset(
      data, static_cast<size_t>(parser.GetInt("queries")), seed + 17);
  const int k = static_cast<int>(parser.GetInt("k"));

  Table table("Index comparison — " + parser.GetString("workload") +
                  " workload, n=" + std::to_string(data.size()) + ", D=" +
                  std::to_string(dim) + ", k=" + std::to_string(k),
              {"index", "height", "leaves", "build CPU [s]",
               "reads/query", "CPU ms/query"});

  std::vector<IndexType> types = AllTreeTypes();
  types.push_back(IndexType::kScan);
  for (const IndexType type : types) {
    IndexConfig config;
    config.dim = dim;
    auto index = MakeIndex(type, config);
    const BuildMetrics build = BuildIndexFromDataset(*index, data);
    const Status invariants = index->CheckInvariants();
    if (!invariants.ok()) {
      std::fprintf(stderr, "%s: %s\n", index->name().c_str(),
                   invariants.ToString().c_str());
      return 1;
    }
    const QueryMetrics query = RunKnnWorkload(*index, queries, k);
    const TreeStats stats = index->GetTreeStats();
    table.AddRow({index->name(), std::to_string(stats.height),
                  std::to_string(stats.leaf_count),
                  FormatNum(build.total_cpu_seconds),
                  FormatNum(query.disk_reads), FormatNum(query.cpu_ms)});
  }
  table.Print();
  return 0;
}
