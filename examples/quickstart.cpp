// Quickstart: build an SR-tree over a handful of 2-d points, run a k-NN
// query and a range query, and inspect the tree.
//
//   $ ./quickstart

#include <cstdio>

#include "src/core/sr_tree.h"

int main() {
  using srtree::Point;
  using srtree::SRTree;

  // An SR-tree over 2-d points. Every option has a paper-faithful default
  // (8 KB pages, 40% minimum utilization, 30% forced reinsertion); only
  // the dimensionality is required.
  SRTree::Options options;
  options.dim = 2;
  options.leaf_data_size = 0;  // no per-point payload in this demo
  SRTree tree(options);

  // Insert a few labeled points: (point, object id).
  const Point cities[] = {
      {0.10, 0.20},  // 0: harbor
      {0.15, 0.25},  // 1: old town
      {0.80, 0.75},  // 2: airport
      {0.82, 0.70},  // 3: business park
      {0.45, 0.55},  // 4: central station
      {0.05, 0.90},  // 5: lighthouse
  };
  const char* names[] = {"harbor",          "old town",   "airport",
                         "business park",   "central sta", "lighthouse"};
  for (uint32_t id = 0; id < 6; ++id) {
    const srtree::Status status = tree.Insert(cities[id], id);
    if (!status.ok()) {
      std::fprintf(stderr, "insert failed: %s\n", status.ToString().c_str());
      return 1;
    }
  }

  // The 3 nearest neighbors of a query point, via the unified Search()
  // entry point (QuerySpec picks the query kind).
  const Point query = {0.12, 0.22};
  std::printf("3 nearest neighbors of (%.2f, %.2f):\n", query[0], query[1]);
  for (const srtree::Neighbor& n :
       tree.Search(query, srtree::QuerySpec::Knn(3)).neighbors) {
    std::printf("  %-13s  distance %.4f\n", names[n.oid], n.distance);
  }

  // Everything within radius 0.2.
  std::printf("\nwithin radius 0.20:\n");
  for (const srtree::Neighbor& n :
       tree.Search(query, srtree::QuerySpec::Range(0.2)).neighbors) {
    std::printf("  %-13s  distance %.4f\n", names[n.oid], n.distance);
  }

  // Deletion keeps the structure valid.
  const srtree::Status deleted = tree.Delete(cities[1], 1);
  if (!deleted.ok()) {
    std::printf("delete failed: %s\n", deleted.ToString().c_str());
    return 1;
  }
  std::printf("\nafter deleting 'old town': %zu points, invariants %s\n",
              tree.size(),
              tree.CheckInvariants().ok() ? "hold" : "VIOLATED");

  const srtree::TreeStats stats = tree.GetTreeStats();
  std::printf("tree height %d, %llu leaves, %llu disk reads so far\n",
              stats.height,
              static_cast<unsigned long long>(stats.leaf_count),
              static_cast<unsigned long long>(tree.GetIoStats().reads));
  return 0;
}
