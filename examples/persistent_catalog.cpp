// Persistence workflow: build an SR-tree over a feature catalog, save it to
// a single index file, reopen it (options restore from the file), and
// verify the reopened index serves identical queries and accepts updates.
//
//   $ ./persistent_catalog [--vectors 5000] [--path /tmp/catalog.srt]

#include <cstdio>

#include "src/common/flags.h"
#include "src/core/sr_tree.h"
#include "src/workload/histogram.h"
#include "src/workload/queries.h"

int main(int argc, char** argv) {
  using namespace srtree;

  FlagParser parser;
  parser.AddInt("vectors", 5000, "catalog size");
  parser.AddString("path", "/tmp/catalog.srt", "index file path");
  parser.AddInt("seed", 11, "random seed");
  const Status flag_status = parser.Parse(argc, argv);
  if (flag_status.IsNotFound()) return 0;
  if (!flag_status.ok()) {
    std::fprintf(stderr, "%s\n", flag_status.ToString().c_str());
    return 1;
  }
  const std::string path = parser.GetString("path");

  // Phase 1: ingest the catalog and save the index.
  HistogramConfig config;
  config.n = static_cast<size_t>(parser.GetInt("vectors"));
  config.dim = 16;
  config.seed = static_cast<uint64_t>(parser.GetInt("seed"));
  const Dataset features = MakeHistogramDataset(config);

  {
    SRTree::Options options;
    options.dim = features.dim();
    SRTree index(options);
    for (size_t i = 0; i < features.size(); ++i) {
      const Status status =
          index.Insert(features.point(i), static_cast<uint32_t>(i));
      if (!status.ok()) {
        std::fprintf(stderr, "insert: %s\n", status.ToString().c_str());
        return 1;
      }
    }
    const Status status = index.Save(path);
    if (!status.ok()) {
      std::fprintf(stderr, "save: %s\n", status.ToString().c_str());
      return 1;
    }
    std::printf("saved %zu vectors (height %d) to %s\n", index.size(),
                index.height(), path.c_str());
  }  // the in-memory index is gone here

  // Phase 2: reopen and serve queries.
  auto reopened = SRTree::Open(path);
  if (!reopened.ok()) {
    std::fprintf(stderr, "open: %s\n", reopened.status().ToString().c_str());
    return 1;
  }
  SRTree& index = **reopened;
  std::printf("reopened: %zu vectors, dim %d, invariants %s\n", index.size(),
              index.dim(), index.CheckInvariants().ok() ? "hold" : "VIOLATED");

  const PointView query = features.point(0);
  std::printf("\n5 nearest catalog entries to vector #0:\n");
  for (const Neighbor& n : index.Search(query, QuerySpec::Knn(5)).neighbors) {
    std::printf("  #%-7u distance %.5f\n", n.oid, n.distance);
  }

  // The reopened index is fully writable.
  const Status status = index.Insert(Point(16, 1.0 / 16.0), 999999);
  std::printf("\ninsert after reopen: %s; new size %zu\n",
              status.ok() ? "ok" : status.ToString().c_str(), index.size());
  return 0;
}
