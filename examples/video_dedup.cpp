// Near-duplicate video frame detection — the Informedia-style digital
// video library use case from the paper's introduction: frames of the
// same scene yield near-identical feature vectors, and range queries over
// an SR-tree find them without scanning the whole archive.
//
// Synthetic archive: `scenes` clusters of frame features; frames within a
// scene differ by small jitter. The example streams frames in, and for
// each new frame asks the index "have we effectively seen this before?"
//
//   $ ./video_dedup [--scenes 50] [--frames_per_scene 40]

#include <cstdio>

#include "src/common/flags.h"
#include "src/core/sr_tree.h"
#include "src/workload/cluster.h"

int main(int argc, char** argv) {
  using namespace srtree;

  FlagParser parser;
  parser.AddInt("scenes", 50, "number of distinct scenes in the archive");
  parser.AddInt("frames_per_scene", 40, "frames sampled from each scene");
  parser.AddDouble("threshold", 0.05,
                   "feature distance below which frames are duplicates");
  parser.AddInt("seed", 7, "random seed");
  const Status flag_status = parser.Parse(argc, argv);
  if (flag_status.IsNotFound()) return 0;
  if (!flag_status.ok()) {
    std::fprintf(stderr, "%s\n", flag_status.ToString().c_str());
    return 1;
  }
  const size_t scenes = static_cast<size_t>(parser.GetInt("scenes"));
  const size_t frames_per_scene =
      static_cast<size_t>(parser.GetInt("frames_per_scene"));
  const double threshold = parser.GetDouble("threshold");

  // Frame features: tight clusters, one per scene.
  ClusterConfig config;
  config.num_clusters = scenes;
  config.points_per_cluster = frames_per_scene;
  config.dim = 16;
  config.max_radius = 0.02;  // within-scene jitter
  config.seed = static_cast<uint64_t>(parser.GetInt("seed"));
  const Dataset frames = MakeClusterDataset(config);

  SRTree::Options options;
  options.dim = frames.dim();
  SRTree index(options);

  // Stream the frames; a frame is "new" when no indexed frame lies within
  // the duplicate threshold. Only new frames get stored.
  size_t kept = 0, duplicates = 0;
  for (size_t i = 0; i < frames.size(); ++i) {
    const bool is_duplicate =
        index.size() > 0 &&
        !index.Search(frames.point(i), QuerySpec::Range(threshold))
             .neighbors.empty();
    if (is_duplicate) {
      ++duplicates;
      continue;
    }
    const Status status =
        index.Insert(frames.point(i), static_cast<uint32_t>(i));
    if (!status.ok()) {
      std::fprintf(stderr, "insert failed: %s\n", status.ToString().c_str());
      return 1;
    }
    ++kept;
  }

  std::printf("processed %zu frames from %zu scenes\n", frames.size(),
              scenes);
  std::printf("kept %zu representative frames, skipped %zu near-duplicates "
              "(%.1f%% dedup)\n",
              kept, duplicates,
              100.0 * static_cast<double>(duplicates) /
                  static_cast<double>(frames.size()));
  const TreeStats stats = index.GetTreeStats();
  std::printf("index: height %d, %llu leaves, invariants %s\n", stats.height,
              static_cast<unsigned long long>(stats.leaf_count),
              index.CheckInvariants().ok() ? "hold" : "VIOLATED");
  std::printf("average disk reads per dedup check: %.1f\n",
              static_cast<double>(index.GetIoStats().reads) /
                  static_cast<double>(frames.size()));
  return 0;
}
