# Empty dependencies file for srtree_cli.
# This may be replaced when dependencies are built.
