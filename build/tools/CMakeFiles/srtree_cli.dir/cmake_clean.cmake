file(REMOVE_RECURSE
  "CMakeFiles/srtree_cli.dir/srtree_cli.cc.o"
  "CMakeFiles/srtree_cli.dir/srtree_cli.cc.o.d"
  "srtree_cli"
  "srtree_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/srtree_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
