# Empty dependencies file for srtree.
# This may be replaced when dependencies are built.
