file(REMOVE_RECURSE
  "libsrtree.a"
)
