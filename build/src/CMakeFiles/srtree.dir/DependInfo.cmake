
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/benchlib/experiment.cc" "src/CMakeFiles/srtree.dir/benchlib/experiment.cc.o" "gcc" "src/CMakeFiles/srtree.dir/benchlib/experiment.cc.o.d"
  "/root/repo/src/benchlib/options.cc" "src/CMakeFiles/srtree.dir/benchlib/options.cc.o" "gcc" "src/CMakeFiles/srtree.dir/benchlib/options.cc.o.d"
  "/root/repo/src/benchlib/report.cc" "src/CMakeFiles/srtree.dir/benchlib/report.cc.o" "gcc" "src/CMakeFiles/srtree.dir/benchlib/report.cc.o.d"
  "/root/repo/src/common/flags.cc" "src/CMakeFiles/srtree.dir/common/flags.cc.o" "gcc" "src/CMakeFiles/srtree.dir/common/flags.cc.o.d"
  "/root/repo/src/common/random.cc" "src/CMakeFiles/srtree.dir/common/random.cc.o" "gcc" "src/CMakeFiles/srtree.dir/common/random.cc.o.d"
  "/root/repo/src/common/status.cc" "src/CMakeFiles/srtree.dir/common/status.cc.o" "gcc" "src/CMakeFiles/srtree.dir/common/status.cc.o.d"
  "/root/repo/src/core/sr_tree.cc" "src/CMakeFiles/srtree.dir/core/sr_tree.cc.o" "gcc" "src/CMakeFiles/srtree.dir/core/sr_tree.cc.o.d"
  "/root/repo/src/geometry/rect.cc" "src/CMakeFiles/srtree.dir/geometry/rect.cc.o" "gcc" "src/CMakeFiles/srtree.dir/geometry/rect.cc.o.d"
  "/root/repo/src/geometry/sphere.cc" "src/CMakeFiles/srtree.dir/geometry/sphere.cc.o" "gcc" "src/CMakeFiles/srtree.dir/geometry/sphere.cc.o.d"
  "/root/repo/src/geometry/volume.cc" "src/CMakeFiles/srtree.dir/geometry/volume.cc.o" "gcc" "src/CMakeFiles/srtree.dir/geometry/volume.cc.o.d"
  "/root/repo/src/index/brute_force.cc" "src/CMakeFiles/srtree.dir/index/brute_force.cc.o" "gcc" "src/CMakeFiles/srtree.dir/index/brute_force.cc.o.d"
  "/root/repo/src/index/knn.cc" "src/CMakeFiles/srtree.dir/index/knn.cc.o" "gcc" "src/CMakeFiles/srtree.dir/index/knn.cc.o.d"
  "/root/repo/src/index/point_index.cc" "src/CMakeFiles/srtree.dir/index/point_index.cc.o" "gcc" "src/CMakeFiles/srtree.dir/index/point_index.cc.o.d"
  "/root/repo/src/index/region_stats.cc" "src/CMakeFiles/srtree.dir/index/region_stats.cc.o" "gcc" "src/CMakeFiles/srtree.dir/index/region_stats.cc.o.d"
  "/root/repo/src/kdb/kdb_tree.cc" "src/CMakeFiles/srtree.dir/kdb/kdb_tree.cc.o" "gcc" "src/CMakeFiles/srtree.dir/kdb/kdb_tree.cc.o.d"
  "/root/repo/src/rstar/rstar_tree.cc" "src/CMakeFiles/srtree.dir/rstar/rstar_tree.cc.o" "gcc" "src/CMakeFiles/srtree.dir/rstar/rstar_tree.cc.o.d"
  "/root/repo/src/sstree/ss_tree.cc" "src/CMakeFiles/srtree.dir/sstree/ss_tree.cc.o" "gcc" "src/CMakeFiles/srtree.dir/sstree/ss_tree.cc.o.d"
  "/root/repo/src/storage/buffer_pool.cc" "src/CMakeFiles/srtree.dir/storage/buffer_pool.cc.o" "gcc" "src/CMakeFiles/srtree.dir/storage/buffer_pool.cc.o.d"
  "/root/repo/src/storage/page_file.cc" "src/CMakeFiles/srtree.dir/storage/page_file.cc.o" "gcc" "src/CMakeFiles/srtree.dir/storage/page_file.cc.o.d"
  "/root/repo/src/tvtree/tv_r_tree.cc" "src/CMakeFiles/srtree.dir/tvtree/tv_r_tree.cc.o" "gcc" "src/CMakeFiles/srtree.dir/tvtree/tv_r_tree.cc.o.d"
  "/root/repo/src/vamsplit/vam_split_r_tree.cc" "src/CMakeFiles/srtree.dir/vamsplit/vam_split_r_tree.cc.o" "gcc" "src/CMakeFiles/srtree.dir/vamsplit/vam_split_r_tree.cc.o.d"
  "/root/repo/src/workload/cluster.cc" "src/CMakeFiles/srtree.dir/workload/cluster.cc.o" "gcc" "src/CMakeFiles/srtree.dir/workload/cluster.cc.o.d"
  "/root/repo/src/workload/dataset.cc" "src/CMakeFiles/srtree.dir/workload/dataset.cc.o" "gcc" "src/CMakeFiles/srtree.dir/workload/dataset.cc.o.d"
  "/root/repo/src/workload/histogram.cc" "src/CMakeFiles/srtree.dir/workload/histogram.cc.o" "gcc" "src/CMakeFiles/srtree.dir/workload/histogram.cc.o.d"
  "/root/repo/src/workload/queries.cc" "src/CMakeFiles/srtree.dir/workload/queries.cc.o" "gcc" "src/CMakeFiles/srtree.dir/workload/queries.cc.o.d"
  "/root/repo/src/workload/uniform.cc" "src/CMakeFiles/srtree.dir/workload/uniform.cc.o" "gcc" "src/CMakeFiles/srtree.dir/workload/uniform.cc.o.d"
  "/root/repo/src/xtree/x_tree.cc" "src/CMakeFiles/srtree.dir/xtree/x_tree.cc.o" "gcc" "src/CMakeFiles/srtree.dir/xtree/x_tree.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
