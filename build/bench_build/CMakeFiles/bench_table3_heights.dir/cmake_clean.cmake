file(REMOVE_RECURSE
  "../bench/bench_table3_heights"
  "../bench/bench_table3_heights.pdb"
  "CMakeFiles/bench_table3_heights.dir/bench_table3_heights.cc.o"
  "CMakeFiles/bench_table3_heights.dir/bench_table3_heights.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_heights.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
