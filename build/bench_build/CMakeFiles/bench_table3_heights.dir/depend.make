# Empty dependencies file for bench_table3_heights.
# This may be replaced when dependencies are built.
