file(REMOVE_RECURSE
  "../bench/bench_ext_xtree"
  "../bench/bench_ext_xtree.pdb"
  "CMakeFiles/bench_ext_xtree.dir/bench_ext_xtree.cc.o"
  "CMakeFiles/bench_ext_xtree.dir/bench_ext_xtree.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_xtree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
