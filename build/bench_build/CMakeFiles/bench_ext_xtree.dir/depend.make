# Empty dependencies file for bench_ext_xtree.
# This may be replaced when dependencies are built.
