# Empty dependencies file for bench_fig18_dimensionality_cluster.
# This may be replaced when dependencies are built.
