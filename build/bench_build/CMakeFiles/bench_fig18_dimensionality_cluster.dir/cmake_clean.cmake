file(REMOVE_RECURSE
  "../bench/bench_fig18_dimensionality_cluster"
  "../bench/bench_fig18_dimensionality_cluster.pdb"
  "CMakeFiles/bench_fig18_dimensionality_cluster.dir/bench_fig18_dimensionality_cluster.cc.o"
  "CMakeFiles/bench_fig18_dimensionality_cluster.dir/bench_fig18_dimensionality_cluster.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig18_dimensionality_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
