file(REMOVE_RECURSE
  "../bench/bench_fig5_region_geometry"
  "../bench/bench_fig5_region_geometry.pdb"
  "CMakeFiles/bench_fig5_region_geometry.dir/bench_fig5_region_geometry.cc.o"
  "CMakeFiles/bench_fig5_region_geometry.dir/bench_fig5_region_geometry.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_region_geometry.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
