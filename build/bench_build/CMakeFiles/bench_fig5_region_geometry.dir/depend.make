# Empty dependencies file for bench_fig5_region_geometry.
# This may be replaced when dependencies are built.
