# Empty dependencies file for bench_fig19_cluster_count.
# This may be replaced when dependencies are built.
