file(REMOVE_RECURSE
  "../bench/bench_fig19_cluster_count"
  "../bench/bench_fig19_cluster_count.pdb"
  "CMakeFiles/bench_fig19_cluster_count.dir/bench_fig19_cluster_count.cc.o"
  "CMakeFiles/bench_fig19_cluster_count.dir/bench_fig19_cluster_count.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig19_cluster_count.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
