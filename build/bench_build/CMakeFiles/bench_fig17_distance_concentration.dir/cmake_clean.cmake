file(REMOVE_RECURSE
  "../bench/bench_fig17_distance_concentration"
  "../bench/bench_fig17_distance_concentration.pdb"
  "CMakeFiles/bench_fig17_distance_concentration.dir/bench_fig17_distance_concentration.cc.o"
  "CMakeFiles/bench_fig17_distance_concentration.dir/bench_fig17_distance_concentration.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig17_distance_concentration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
