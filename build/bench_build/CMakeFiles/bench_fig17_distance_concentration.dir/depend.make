# Empty dependencies file for bench_fig17_distance_concentration.
# This may be replaced when dependencies are built.
