file(REMOVE_RECURSE
  "../bench/bench_fig11_sr_real"
  "../bench/bench_fig11_sr_real.pdb"
  "CMakeFiles/bench_fig11_sr_real.dir/bench_fig11_sr_real.cc.o"
  "CMakeFiles/bench_fig11_sr_real.dir/bench_fig11_sr_real.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_sr_real.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
