# Empty dependencies file for bench_fig11_sr_real.
# This may be replaced when dependencies are built.
