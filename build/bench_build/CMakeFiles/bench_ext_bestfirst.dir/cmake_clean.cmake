file(REMOVE_RECURSE
  "../bench/bench_ext_bestfirst"
  "../bench/bench_ext_bestfirst.pdb"
  "CMakeFiles/bench_ext_bestfirst.dir/bench_ext_bestfirst.cc.o"
  "CMakeFiles/bench_ext_bestfirst.dir/bench_ext_bestfirst.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_bestfirst.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
