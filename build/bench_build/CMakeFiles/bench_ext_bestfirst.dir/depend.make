# Empty dependencies file for bench_ext_bestfirst.
# This may be replaced when dependencies are built.
