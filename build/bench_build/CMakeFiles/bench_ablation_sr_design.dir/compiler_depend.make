# Empty compiler generated dependencies file for bench_ablation_sr_design.
# This may be replaced when dependencies are built.
