file(REMOVE_RECURSE
  "../bench/bench_micro_geometry"
  "../bench/bench_micro_geometry.pdb"
  "CMakeFiles/bench_micro_geometry.dir/bench_micro_geometry.cc.o"
  "CMakeFiles/bench_micro_geometry.dir/bench_micro_geometry.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_geometry.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
