# Empty compiler generated dependencies file for bench_fig4_baselines_real.
# This may be replaced when dependencies are built.
