# Empty compiler generated dependencies file for bench_fig13_region_sr_real.
# This may be replaced when dependencies are built.
