file(REMOVE_RECURSE
  "../bench/bench_fig15_dimensionality_uniform"
  "../bench/bench_fig15_dimensionality_uniform.pdb"
  "CMakeFiles/bench_fig15_dimensionality_uniform.dir/bench_fig15_dimensionality_uniform.cc.o"
  "CMakeFiles/bench_fig15_dimensionality_uniform.dir/bench_fig15_dimensionality_uniform.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig15_dimensionality_uniform.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
