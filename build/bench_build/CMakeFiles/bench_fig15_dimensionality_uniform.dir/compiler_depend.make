# Empty compiler generated dependencies file for bench_fig15_dimensionality_uniform.
# This may be replaced when dependencies are built.
