file(REMOVE_RECURSE
  "../bench/bench_ext_tvtree"
  "../bench/bench_ext_tvtree.pdb"
  "CMakeFiles/bench_ext_tvtree.dir/bench_ext_tvtree.cc.o"
  "CMakeFiles/bench_ext_tvtree.dir/bench_ext_tvtree.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_tvtree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
