# Empty compiler generated dependencies file for bench_ext_tvtree.
# This may be replaced when dependencies are built.
