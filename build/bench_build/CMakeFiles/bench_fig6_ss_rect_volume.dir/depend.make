# Empty dependencies file for bench_fig6_ss_rect_volume.
# This may be replaced when dependencies are built.
