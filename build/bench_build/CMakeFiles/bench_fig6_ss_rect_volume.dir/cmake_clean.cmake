file(REMOVE_RECURSE
  "../bench/bench_fig6_ss_rect_volume"
  "../bench/bench_fig6_ss_rect_volume.pdb"
  "CMakeFiles/bench_fig6_ss_rect_volume.dir/bench_fig6_ss_rect_volume.cc.o"
  "CMakeFiles/bench_fig6_ss_rect_volume.dir/bench_fig6_ss_rect_volume.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_ss_rect_volume.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
