# Empty dependencies file for bench_fig16_leaf_access_ratio.
# This may be replaced when dependencies are built.
