# Empty compiler generated dependencies file for bench_fig3_baselines_uniform.
# This may be replaced when dependencies are built.
