file(REMOVE_RECURSE
  "../bench/bench_ext_buffer_pool"
  "../bench/bench_ext_buffer_pool.pdb"
  "CMakeFiles/bench_ext_buffer_pool.dir/bench_ext_buffer_pool.cc.o"
  "CMakeFiles/bench_ext_buffer_pool.dir/bench_ext_buffer_pool.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_buffer_pool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
