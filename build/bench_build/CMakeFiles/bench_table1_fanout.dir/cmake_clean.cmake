file(REMOVE_RECURSE
  "../bench/bench_table1_fanout"
  "../bench/bench_table1_fanout.pdb"
  "CMakeFiles/bench_table1_fanout.dir/bench_table1_fanout.cc.o"
  "CMakeFiles/bench_table1_fanout.dir/bench_table1_fanout.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_fanout.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
