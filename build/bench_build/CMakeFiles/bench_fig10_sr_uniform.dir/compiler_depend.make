# Empty compiler generated dependencies file for bench_fig10_sr_uniform.
# This may be replaced when dependencies are built.
