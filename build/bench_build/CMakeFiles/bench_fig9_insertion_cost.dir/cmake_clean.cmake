file(REMOVE_RECURSE
  "../bench/bench_fig9_insertion_cost"
  "../bench/bench_fig9_insertion_cost.pdb"
  "CMakeFiles/bench_fig9_insertion_cost.dir/bench_fig9_insertion_cost.cc.o"
  "CMakeFiles/bench_fig9_insertion_cost.dir/bench_fig9_insertion_cost.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_insertion_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
