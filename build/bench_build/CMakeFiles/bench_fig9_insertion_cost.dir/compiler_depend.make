# Empty compiler generated dependencies file for bench_fig9_insertion_cost.
# This may be replaced when dependencies are built.
