# Empty compiler generated dependencies file for bench_fig12_region_sr_uniform.
# This may be replaced when dependencies are built.
