file(REMOVE_RECURSE
  "../bench/bench_fig12_region_sr_uniform"
  "../bench/bench_fig12_region_sr_uniform.pdb"
  "CMakeFiles/bench_fig12_region_sr_uniform.dir/bench_fig12_region_sr_uniform.cc.o"
  "CMakeFiles/bench_fig12_region_sr_uniform.dir/bench_fig12_region_sr_uniform.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_region_sr_uniform.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
