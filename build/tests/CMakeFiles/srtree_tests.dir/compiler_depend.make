# Empty compiler generated dependencies file for srtree_tests.
# This may be replaced when dependencies are built.
