
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/brute_force_test.cc" "tests/CMakeFiles/srtree_tests.dir/brute_force_test.cc.o" "gcc" "tests/CMakeFiles/srtree_tests.dir/brute_force_test.cc.o.d"
  "/root/repo/tests/buffer_pool_test.cc" "tests/CMakeFiles/srtree_tests.dir/buffer_pool_test.cc.o" "gcc" "tests/CMakeFiles/srtree_tests.dir/buffer_pool_test.cc.o.d"
  "/root/repo/tests/experiment_test.cc" "tests/CMakeFiles/srtree_tests.dir/experiment_test.cc.o" "gcc" "tests/CMakeFiles/srtree_tests.dir/experiment_test.cc.o.d"
  "/root/repo/tests/flags_test.cc" "tests/CMakeFiles/srtree_tests.dir/flags_test.cc.o" "gcc" "tests/CMakeFiles/srtree_tests.dir/flags_test.cc.o.d"
  "/root/repo/tests/geometry_test.cc" "tests/CMakeFiles/srtree_tests.dir/geometry_test.cc.o" "gcc" "tests/CMakeFiles/srtree_tests.dir/geometry_test.cc.o.d"
  "/root/repo/tests/integration_test.cc" "tests/CMakeFiles/srtree_tests.dir/integration_test.cc.o" "gcc" "tests/CMakeFiles/srtree_tests.dir/integration_test.cc.o.d"
  "/root/repo/tests/kdb_tree_test.cc" "tests/CMakeFiles/srtree_tests.dir/kdb_tree_test.cc.o" "gcc" "tests/CMakeFiles/srtree_tests.dir/kdb_tree_test.cc.o.d"
  "/root/repo/tests/knn_test.cc" "tests/CMakeFiles/srtree_tests.dir/knn_test.cc.o" "gcc" "tests/CMakeFiles/srtree_tests.dir/knn_test.cc.o.d"
  "/root/repo/tests/page_file_test.cc" "tests/CMakeFiles/srtree_tests.dir/page_file_test.cc.o" "gcc" "tests/CMakeFiles/srtree_tests.dir/page_file_test.cc.o.d"
  "/root/repo/tests/page_test.cc" "tests/CMakeFiles/srtree_tests.dir/page_test.cc.o" "gcc" "tests/CMakeFiles/srtree_tests.dir/page_test.cc.o.d"
  "/root/repo/tests/persistence_test.cc" "tests/CMakeFiles/srtree_tests.dir/persistence_test.cc.o" "gcc" "tests/CMakeFiles/srtree_tests.dir/persistence_test.cc.o.d"
  "/root/repo/tests/random_test.cc" "tests/CMakeFiles/srtree_tests.dir/random_test.cc.o" "gcc" "tests/CMakeFiles/srtree_tests.dir/random_test.cc.o.d"
  "/root/repo/tests/region_stats_test.cc" "tests/CMakeFiles/srtree_tests.dir/region_stats_test.cc.o" "gcc" "tests/CMakeFiles/srtree_tests.dir/region_stats_test.cc.o.d"
  "/root/repo/tests/report_test.cc" "tests/CMakeFiles/srtree_tests.dir/report_test.cc.o" "gcc" "tests/CMakeFiles/srtree_tests.dir/report_test.cc.o.d"
  "/root/repo/tests/rstar_tree_test.cc" "tests/CMakeFiles/srtree_tests.dir/rstar_tree_test.cc.o" "gcc" "tests/CMakeFiles/srtree_tests.dir/rstar_tree_test.cc.o.d"
  "/root/repo/tests/sr_tree_test.cc" "tests/CMakeFiles/srtree_tests.dir/sr_tree_test.cc.o" "gcc" "tests/CMakeFiles/srtree_tests.dir/sr_tree_test.cc.o.d"
  "/root/repo/tests/ss_tree_test.cc" "tests/CMakeFiles/srtree_tests.dir/ss_tree_test.cc.o" "gcc" "tests/CMakeFiles/srtree_tests.dir/ss_tree_test.cc.o.d"
  "/root/repo/tests/status_test.cc" "tests/CMakeFiles/srtree_tests.dir/status_test.cc.o" "gcc" "tests/CMakeFiles/srtree_tests.dir/status_test.cc.o.d"
  "/root/repo/tests/stress_test.cc" "tests/CMakeFiles/srtree_tests.dir/stress_test.cc.o" "gcc" "tests/CMakeFiles/srtree_tests.dir/stress_test.cc.o.d"
  "/root/repo/tests/timer_test.cc" "tests/CMakeFiles/srtree_tests.dir/timer_test.cc.o" "gcc" "tests/CMakeFiles/srtree_tests.dir/timer_test.cc.o.d"
  "/root/repo/tests/tree_property_test.cc" "tests/CMakeFiles/srtree_tests.dir/tree_property_test.cc.o" "gcc" "tests/CMakeFiles/srtree_tests.dir/tree_property_test.cc.o.d"
  "/root/repo/tests/tv_r_tree_test.cc" "tests/CMakeFiles/srtree_tests.dir/tv_r_tree_test.cc.o" "gcc" "tests/CMakeFiles/srtree_tests.dir/tv_r_tree_test.cc.o.d"
  "/root/repo/tests/vam_split_r_tree_test.cc" "tests/CMakeFiles/srtree_tests.dir/vam_split_r_tree_test.cc.o" "gcc" "tests/CMakeFiles/srtree_tests.dir/vam_split_r_tree_test.cc.o.d"
  "/root/repo/tests/volume_test.cc" "tests/CMakeFiles/srtree_tests.dir/volume_test.cc.o" "gcc" "tests/CMakeFiles/srtree_tests.dir/volume_test.cc.o.d"
  "/root/repo/tests/workload_test.cc" "tests/CMakeFiles/srtree_tests.dir/workload_test.cc.o" "gcc" "tests/CMakeFiles/srtree_tests.dir/workload_test.cc.o.d"
  "/root/repo/tests/x_tree_test.cc" "tests/CMakeFiles/srtree_tests.dir/x_tree_test.cc.o" "gcc" "tests/CMakeFiles/srtree_tests.dir/x_tree_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/srtree.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
