# Empty dependencies file for persistent_catalog.
# This may be replaced when dependencies are built.
