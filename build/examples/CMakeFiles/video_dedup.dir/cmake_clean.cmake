file(REMOVE_RECURSE
  "CMakeFiles/video_dedup.dir/video_dedup.cpp.o"
  "CMakeFiles/video_dedup.dir/video_dedup.cpp.o.d"
  "video_dedup"
  "video_dedup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/video_dedup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
