# Empty compiler generated dependencies file for video_dedup.
# This may be replaced when dependencies are built.
