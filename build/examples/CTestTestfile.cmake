# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;10;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_image_search "/root/repo/build/examples/image_search" "--images" "2000" "--k" "5")
set_tests_properties(example_image_search PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;11;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_video_dedup "/root/repo/build/examples/video_dedup" "--scenes" "10" "--frames_per_scene" "20")
set_tests_properties(example_video_dedup PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;12;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_index_comparison "/root/repo/build/examples/index_comparison" "--n" "2000" "--queries" "20")
set_tests_properties(example_index_comparison PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;14;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_persistent_catalog "/root/repo/build/examples/persistent_catalog" "--vectors" "2000" "--path" "/root/repo/build/examples/catalog.srt")
set_tests_properties(example_persistent_catalog PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;16;add_test;/root/repo/examples/CMakeLists.txt;0;")
